// lint-fixture-as: src/sched/metric_prefix.cc
// lint-expect: metric-prefix
// A sched-layer file defining an instrument that claims the net layer:
// the name's layer segment must match the defining file's layer.
struct Registry;
Counter* Register(Registry* registry) {
  return registry->GetCounter("avdb_net_transfers_total");
}

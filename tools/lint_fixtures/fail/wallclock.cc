// lint-fixture-as: src/sched/bad_clock.cc
// lint-expect: wallclock
// Fixture: library code reading the wall clock and sleeping for real —
// both violate the virtual-time discipline.
#include <chrono>
#include <thread>

namespace avdb {

long long NowNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

void Nap() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

}  // namespace avdb

// lint-fixture-as: src/base/bad_include.cc
// lint-expect: layer-cycle
// Fixture: the base layer reaching up into db — an edge against the
// layer DAG (base -> time -> media -> codec|sched -> storage|net ->
// activity -> db -> hyper|vworld).
#include "db/database.h"

namespace avdb {}

// lint-fixture-as: src/net/bad_everything.cc
// lint-expect: naked-new,wallclock
// Fixture: several rules at once — the report must name each distinct
// rule that fires, not stop at the first.
#include <chrono>

namespace avdb {

struct Packet {
  long long t_ns = 0;
};

Packet* Stamp() {
  Packet* p = new Packet;
  p->t_ns = std::chrono::system_clock::now().time_since_epoch().count();
  return p;
}

}  // namespace avdb

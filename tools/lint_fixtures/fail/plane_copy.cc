// lint-fixture-as: src/codec/bad_plane_copy.cc
// lint-expect: plane-copy
// Fixture: the copy-per-frame idioms the zero-copy pipeline removed — a
// copying frame accessor and a by-value byte-plane temporary in a codec
// hot path. Borrow PlaneView/PlaneSpan or lease from BufferPool instead.
#include <cstdint>
#include <vector>

#include "media/frame.h"

namespace avdb {

void EncodeOnePlane(const VideoFrame& frame) {
  std::vector<uint8_t> plane = frame.ExtractPlane(0);  // two violations
  std::vector<uint8_t> scratch(plane.size());          // one more
  (void)scratch;
}

}  // namespace avdb

// lint-fixture-as: src/media/bad_alloc.cc
// lint-expect: naked-new
// Fixture: raw owning allocations outside buffer code.
#include <cstdlib>

namespace avdb {

int* MakeInts() {
  return new int[16];
}

void* MakeRaw(unsigned n) {
  return malloc(n);
}

}  // namespace avdb

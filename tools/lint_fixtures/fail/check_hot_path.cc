// lint-fixture-as: src/storage/bad_check.cc
// lint-expect: check-in-hot-path
// Fixture: aborting on data-dependent state in a storage hot path instead
// of returning Status.
#include "base/logging.h"

namespace avdb {

void VerifyPage(bool checksum_ok) {
  AVDB_CHECK(checksum_ok) << "corrupt page";  // should be Status::DataLoss
}

}  // namespace avdb

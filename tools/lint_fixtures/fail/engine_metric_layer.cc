// lint-fixture-as: src/activity/engine_metric_layer.cc
// lint-expect: metric-prefix
// An activity-layer file must not define the engine's sched-layer
// instruments — the layer segment of the metric name has to match the
// defining file's layer, so scrapes stay attributable.
struct Registry;
Counter* Register(Registry* registry) {
  return registry->GetCounter("avdb_sched_engine_cancelled_total");
}

// lint-fixture-as: src/cluster/bad_retry.cc
// lint-expect: naked-retry
// Fixture: a hand-rolled retry loop around a channel transfer. Retries
// charge no virtual time and ignore the deadline budget and jitter policy.
#include "base/status.h"

namespace avdb {

Status SendWithHomegrownRetry(Channel* link, int64_t bytes) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto done = link->Transfer(0, bytes);
    if (done.ok()) return Status::OK();
  }
  return Status::Unavailable("gave up");
}

}  // namespace avdb

// lint-fixture-as: src/storage/bad_discard.cc
// lint-expect: void-cast-call
// Fixture: a void-cast call is an invisible status drop; deliberate
// discards must go through AVDB_IGNORE_STATUS with a justification.
#include "base/status.h"

namespace avdb {

Status Flush();

void Shutdown() {
  (void)Flush();
}

}  // namespace avdb

// lint-fixture-as: src/storage/bad_retry.cc
// lint-expect: naked-retry
// Fixture: an unbounded while-loop around a device read — retries forever,
// for free, with no backoff. Must go through RetryState.
#include "base/status.h"

namespace avdb {

Status ReadUntilItWorks(BlockDevice* device, Buffer* out) {
  while (true) {
    auto cost = device->Read(0, 0, 4096, out);
    if (cost.ok()) return Status::OK();
  }
}

}  // namespace avdb

// lint-fixture-as: src/cluster/rogue_writer.cc
// lint-expect: direct-replica-write
// Fixture: a cluster-layer component mutating a replica's MediaStore
// directly. The write skips ServeWrite's fault model, virtual-time
// pricing, and the quorum accounting — replicas silently diverge.
#include "base/status.h"

namespace avdb {

Status RogueWriter::Flush(const Buffer& data) {
  AVDB_RETURN_IF_ERROR(replica_.server->store().Put("blob", data).status());
  return store_->Delete("stale");
}

}  // namespace avdb

// analyze-fixture-as: src/media/lease_return_local.cc
// analyze-expect: lease-escape
// Returns a PlaneView of a function-local VideoFrame: the view outlives
// the frame's storage (the PR 6 pooled-BitWriter bug class).

PlaneView FirstPlane() {
  VideoFrame frame(640, 480);
  PlaneView view = frame.View(0);
  return view;
}

// analyze-fixture-as: src/net/budget_unused.cc
// analyze-expect: budget-propagation
// Accepts a DeadlineBudget but never charges, tests or forwards it —
// the caller's deadline silently stops here.

Status SendFrame(Channel* ch, const Payload& p, DeadlineBudget* budget) {
  return ch->Send(p);
}

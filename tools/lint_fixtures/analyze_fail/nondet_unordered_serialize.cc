// analyze-fixture-as: src/storage/nondet_unordered_serialize.cc
// analyze-expect: determinism
// Serializes in unordered_map iteration order: the manifest bytes differ
// between runs for identical content.

class Manifest {
 public:
  void SerializeInto(std::string* out);

 private:
  std::unordered_map<std::string, uint64_t> sizes_;
};

void Manifest::SerializeInto(std::string* out) {
  for (const auto& [name, size] : sizes_) {
    AppendString(out, name);
    AppendU64(out, size);
  }
}

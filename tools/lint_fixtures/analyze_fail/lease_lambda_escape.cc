// analyze-fixture-as: src/media/lease_lambda_escape.cc
// analyze-expect: lease-escape
// A lambda posted to the pool outlives this stack frame, but captures a
// borrow of a local frame by reference.

void Enqueue(WorkPool& pool) {
  VideoFrame frame(640, 480);
  PlaneView view = frame.View(0);
  pool.Submit([&] { Consume(view); });
}

// analyze-fixture-as: src/base/lock_double_acquire.cc
// analyze-expect: lock-order
// Drain() holds mu_ and calls Flush(), which re-acquires mu_ — a
// self-deadlock, because avdb::Mutex is not recursive.

class Queue {
 public:
  void Drain();
  void Flush();

 private:
  Mutex mu_;
};

void Queue::Flush() {
  MutexLock lock(mu_);
}

void Queue::Drain() {
  MutexLock lock(mu_);
  Flush();
}

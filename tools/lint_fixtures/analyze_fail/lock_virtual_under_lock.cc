// analyze-fixture-as: src/base/lock_virtual_under_lock.cc
// analyze-expect: lock-foreign-call
// Render() is virtual; calling it through a base pointer while holding
// mu_ dispatches into arbitrary override code under the lock.

class Sink {
 public:
  virtual void Render();
};

class Stage {
 public:
  void Draw();

 private:
  Mutex mu_;
  Sink* sink_;
};

void Stage::Draw() {
  MutexLock lock(mu_);
  sink_->Render();
}

// analyze-fixture-as: src/base/lock_cycle.cc
// analyze-expect: lock-order
// Two paths acquire the same two locks in opposite orders: AB holds a_
// and takes b_, BA holds b_ and takes a_ — a classic deadlock cycle.

class Pair {
 public:
  void AB();
  void BA();

 private:
  Mutex a_;
  Mutex b_;
};

void Pair::AB() {
  MutexLock la(a_);
  MutexLock lb(b_);
}

void Pair::BA() {
  MutexLock lb(b_);
  MutexLock la(a_);
}

// analyze-fixture-as: src/activity/nondet_ptr_map.cc
// analyze-expect: determinism
// Iterating a pointer-keyed map: heap addresses differ run to run, so
// the configuration order this loop applies is nondeterministic.

class Group {
 public:
  Status Reconfigure(SyncController* sync);

 private:
  std::map<MediaActivity*, std::string> track_of_;
};

Status Group::Reconfigure(SyncController* sync) {
  for (const auto& [child, track] : track_of_) {
    AVDB_RETURN_IF_ERROR(child->ConfigureSync(sync, track));
  }
  return Status::OK();
}

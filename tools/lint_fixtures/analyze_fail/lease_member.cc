// analyze-fixture-as: src/media/lease_member.cc
// analyze-expect: lease-escape
// Borrows stored in members outlive the scope that produced them: a
// PlaneView member and a container of pool leases are both escapes.

class FrameCache {
 private:
  PlaneView last_view_;
  std::vector<BufferPool::BytesLease> scratch_;
};

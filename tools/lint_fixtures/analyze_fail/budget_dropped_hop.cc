// analyze-fixture-as: src/cluster/budget_dropped_hop.cc
// analyze-expect: budget-propagation
// ServeRead holds a budget and ReadRange has a budget-taking overload,
// but the call binds the budget-free one: the deadline stops propagating
// at this hop.

Status ReadRange(Device* device, const std::string& name, uint64_t off,
                 uint64_t len) {
  return device->ReadAt(name, off, len);
}

Status ReadRange(Device* device, const std::string& name, uint64_t off,
                 uint64_t len, DeadlineBudget& budget) {
  if (!budget.Charge(1000)) return Status::DeadlineExceeded("budget");
  return device->ReadAt(name, off, len);
}

Status ServeRead(Device* device, const std::string& name,
                 DeadlineBudget& budget) {
  if (budget.expired()) return Status::DeadlineExceeded("admission");
  return ReadRange(device, name, 0, 4096);
}

// analyze-fixture-as: src/storage/budget_free_retry.cc
// analyze-expect: budget-propagation
// The retry loop never consults the budget it was handed: it charges
// nothing per attempt and retries past the caller's deadline. (The
// budget-unused arm also fires: the parameter is never touched at all.)

Status ReadWithRetry(Device* device, Extent e, DeadlineBudget* budget) {
  Status s = Status::OK();
  for (int attempt = 0; attempt < 5; ++attempt) {
    s = device->Read(e);
    if (s.ok()) return s;
  }
  return s;
}

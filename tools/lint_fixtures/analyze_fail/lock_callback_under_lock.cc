// analyze-fixture-as: src/base/lock_callback_under_lock.cc
// analyze-expect: lock-foreign-call
// Notify() invokes the injected on_change_ callback while holding mu_ —
// through the NotifyLocked helper, so the analyzer must see it
// transitively. The callback can re-enter this class and deadlock.

class Watcher {
 public:
  void Notify();

 private:
  int NotifyLocked();

  Mutex mu_;
  std::function<int()> on_change_;
};

int Watcher::NotifyLocked() { return on_change_ ? on_change_() : 0; }

void Watcher::Notify() {
  MutexLock lock(mu_);
  NotifyLocked();
}

// lint-fixture-as: src/cluster/quorum_writer.cc
// Fixture: the sanctioned shapes. Replica mutations ride the serving arms
// (ServeWrite / ServeDelete / ApplyRepair) so they are fault-injected and
// priced; directory reads through store() are not mutations and are fine.
#include "base/status.h"

namespace avdb {

Status QuorumWriter::WriteTo(Replica& replica, const Buffer& data) {
  auto existing = replica.server->store().Lookup("blob");
  if (existing.ok()) return Status::OK();
  int64_t latency_ns = 0;
  return replica.server->ServeWrite("blob", data, now_ns_, &budget_,
                                    &latency_ns);
}

Status QuorumWriter::RemoveFrom(Replica& replica) {
  int64_t latency_ns = 0;
  return replica.server->ServeDelete("blob", now_ns_, &budget_, &latency_ns);
}

}  // namespace avdb

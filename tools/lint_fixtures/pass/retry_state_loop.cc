// lint-fixture-as: src/storage/good_retry.cc
// Fixture: the sanctioned shapes. A retry loop driven by RetryState (each
// attempt charges virtual time and honors backoff/jitter/deadline), and a
// parsing loop over a buffer whose ReadU32-style helpers are not retries.
#include "base/retry.h"
#include "base/status.h"

namespace avdb {

Result<int64_t> ReadWithPolicy(BlockDevice* device, Buffer* out) {
  RetryState state(RetryPolicy{});
  for (;;) {
    auto cost = device->Read(0, 0, 4096, out);
    if (cost.ok()) return cost.value();
    const Status verdict = state.BeforeRetry(cost.status());
    if (!verdict.ok()) return verdict;
  }
}

Result<int64_t> SumHeader(BufferReader* r, int64_t count) {
  int64_t total = 0;
  for (int64_t i = 0; i < count; ++i) {
    auto word = r->ReadU32();
    if (!word.ok()) return word.status();
    total += word.value();
  }
  return total;
}

}  // namespace avdb

// lint-fixture-as: src/codec/plane_ok.cc
// Fixture: the sanctioned zero-copy idioms stay accepted in the codec hot
// path — borrowing plane views, leasing pooled scratch, and passing byte
// planes by reference.
#include <cstdint>
#include <vector>

#include "base/buffer_pool.h"
#include "media/frame.h"

namespace avdb {

void EncodeOnePlane(VideoFrame* frame, const std::vector<uint8_t>& table) {
  const PlaneView src = frame->plane(0);
  const PlaneSpan dst = frame->plane_span(0);
  BufferPool::BytesLease scratch(&BufferPool::Shared(), src.size());
  for (size_t i = 0; i < src.size(); ++i) {
    (*scratch)[i] = static_cast<uint8_t>(src.data()[i] + table[i % 2]);
  }
  for (size_t i = 0; i < src.size(); ++i) dst.data()[i] = (*scratch)[i];
}

}  // namespace avdb

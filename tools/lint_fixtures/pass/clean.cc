// lint-fixture-as: src/storage/clean.cc
// Fixture: idiomatic avdb code none of the rules should flag — smart-
// pointer-owned `new` (private-ctor factory idiom), downward includes,
// Status-returning failure handling, rule names quoted in comments and
// strings (steady_clock, AVDB_CHECK, new) that must not trip anything.
#include <memory>
#include <string>

#include "base/status.h"
#include "codec/bitio.h"

namespace avdb {

class Widget {
 public:
  static std::unique_ptr<Widget> Make() {
    return std::unique_ptr<Widget>(new Widget());
  }

  // A renewable lease; "renew" and "new lines" must not look like `new`.
  Status Renew(const std::string& reason) {
    if (reason.empty()) return Status::InvalidArgument("empty reason");
    const char* label = "uses steady_clock only in prose";
    (void)label;
    return Status();
  }

 private:
  Widget() = default;
};

/* Block comment mentioning malloc( and sleep_for — still prose. */

}  // namespace avdb

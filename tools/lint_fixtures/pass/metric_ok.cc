// lint-fixture-as: src/net/metric_ok.cc
// Correctly prefixed instrument for its layer; mentions of other layers'
// instruments in comments (e.g. avdb_sched_stream_misses_total) are prose,
// not definitions, and must not fire.
struct Registry;
Counter* Register(Registry* registry) {
  return registry->GetCounter("avdb_net_transfers_total");  // avdb_storage_reads_total is only a comment
}

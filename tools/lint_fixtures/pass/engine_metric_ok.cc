// lint-fixture-as: src/sched/engine_metric_ok.cc
// The session-scale engine instruments belong to the sched layer, so a
// sched-layer file registering them is clean; other layers' names in
// comments (avdb_db_streams_open) are prose, not definitions.
struct Registry;
void Register(Registry* registry) {
  registry->GetGauge("avdb_sched_engine_pending");
  registry->GetCounter("avdb_sched_engine_cancelled_total");
  registry->GetCounter("avdb_sched_engine_compactions_total");
  registry->GetCounter("avdb_sched_admission_over_releases_total");
}

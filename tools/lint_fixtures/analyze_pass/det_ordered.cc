// analyze-fixture-as: src/obs/det_ordered.cc
// Ordered iteration serializes byte-stably; the unordered map is only
// probed by key (never iterated), which is order-independent.

class Registry {
 public:
  void SerializeInto(std::string* out);
  uint64_t Lookup(const std::string& name) const;

 private:
  std::map<std::string, uint64_t> ordered_;
  std::unordered_map<std::string, uint64_t> index_;
};

void Registry::SerializeInto(std::string* out) {
  for (const auto& [name, value] : ordered_) {
    AppendString(out, name);
    AppendU64(out, value);
  }
}

uint64_t Registry::Lookup(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0 : it->second;
}

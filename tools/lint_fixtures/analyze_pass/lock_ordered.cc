// analyze-fixture-as: src/base/lock_ordered.cc
// Both paths take a_ before b_ — a consistent global order, no cycle.

class Pair {
 public:
  void First();
  void Second();

 private:
  Mutex a_;
  Mutex b_;
};

void Pair::First() {
  MutexLock la(a_);
  MutexLock lb(b_);
}

void Pair::Second() {
  MutexLock la(a_);
  MutexLock lb(b_);
}

// analyze-fixture-as: src/storage/budget_forwarded.cc
// The budget is charged on the local step and forwarded at the hop, and
// the retry loop consults it — the discipline the rule enforces. The
// explicitly Unlimited background path is a deliberate, visible choice.

Status ReadLower(const std::string& name, DeadlineBudget& budget);

Status Serve(Device* device, const std::string& name,
             DeadlineBudget& budget) {
  Status s = Status::OK();
  for (int attempt = 0; attempt < 5; ++attempt) {
    if (budget.expired()) return Status::DeadlineExceeded("budget");
    s = device->Read(name);
    if (s.ok()) break;
  }
  if (!s.ok()) return s;
  return ReadLower(name, budget);
}

Status BackgroundResync(const std::string& name) {
  DeadlineBudget budget = DeadlineBudget::Unlimited();
  return ReadLower(name, budget);
}

// analyze-fixture-as: src/base/lock_scoped_callback.cc
// The WorkerLoop idiom: the task is dequeued under the lock, but invoked
// only after the lock scope closes. The scope model must not attribute
// the call to the lock.

class Pool {
 public:
  void WorkerLoop();

 private:
  Mutex mu_;
  std::deque<std::function<void()>> queue_;
};

void Pool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

// analyze-fixture-as: src/media/lease_scoped.cc
// Borrows used strictly within their owner's scope: a view over a local
// frame consumed before the frame dies, and a pool lease released by
// RAII at the end of the function. Nothing escapes.

uint64_t Checksum(BufferPool& pool) {
  VideoFrame frame(640, 480);
  PlaneView view = frame.View(0);
  BufferPool::BytesLease lease = pool.AcquireBytes(4096);
  uint64_t sum = 0;
  for (size_t i = 0; i < view.size(); ++i) {
    sum += view.data()[i];
  }
  return sum;
}

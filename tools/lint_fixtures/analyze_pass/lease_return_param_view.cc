// analyze-fixture-as: src/media/lease_return_param_view.cc
// Returning a view of a *parameter* is fine: the caller owns the frame,
// so the borrow cannot outlive its storage from here.

PlaneView LumaPlane(const VideoFrame& frame) {
  PlaneView view = frame.View(0);
  return view;
}

#!/usr/bin/env python3
"""avdb-analyze: semantic whole-tree analyzer over src/**.

Where avdb-lint is a line-regex tool, avdb-analyze tokenizes every source
file, builds a declaration index (classes, members, virtual methods,
function signatures) and a per-function scope model, and checks four
semantic rules (see DESIGN.md §15 "Semantic static analysis model"):

  lock-order           Extracts the lock-acquisition graph from
                       avdb::MutexLock scopes tree-wide, including locks
                       acquired transitively through calls. Cycles (and
                       same-lock re-acquisition, a self-deadlock for the
                       non-recursive avdb::Mutex) are findings. The
                       canonical acquisition order is emitted into the
                       checked-in tools/lock_order.json; a default run
                       verifies the file is in sync, --write-lock-order
                       regenerates it.
  lock-foreign-call    No foreign code under a lock: invoking a
                       std::function member/local (an injected callback),
                       a virtual method, or an out-of-layer function while
                       holding a MutexLock — directly or through any
                       transitive callee — can re-enter the lock's class
                       or block it on arbitrary work.
  lease-escape         A BufferPool lease (BytesLease / I16Lease) or a
                       PlaneView / PlaneSpan is a borrow: it must not be
                       stored in a member (including member containers of
                       borrow type), captured by an escaping lambda, or
                       returned when its owner is a function-local (the
                       PR 6 pooled-BitWriter bug class, generalized).
                       Borrows of parameters/members may be returned —
                       the caller owns the backing storage.
  budget-propagation   A function in src/storage, src/net or src/cluster
                       that accepts a DeadlineBudget must use it: charge
                       it, test it, or forward it. Every retry loop in
                       such a function must consult the budget, and a call
                       to a callee that has a budget-taking overload must
                       forward a budget rather than silently selecting the
                       budget-free overload. A deliberately background
                       operation says so by constructing
                       DeadlineBudget::Unlimited() — that is exempt.
  determinism          Iteration over unordered_map/unordered_set whose
                       element order can reach serialized bytes, exported
                       JSON/Prometheus text, trace events or
                       replica-selection decisions; iteration over any
                       pointer-keyed std::map/std::set is flagged
                       unconditionally (pointer order varies run to run).

Suppressions share tools/avdb_lint_allowlist.json with avdb-lint: each
tool applies and staleness-checks only its own rules' entries.

    python3 tools/avdb_analyze.py --root .                   # analyze tree
    python3 tools/avdb_analyze.py --root . --self-test       # rule fixtures
    python3 tools/avdb_analyze.py --root . --write-lock-order
    python3 tools/avdb_analyze.py --root . --json findings.json
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import avdb_lint  # noqa: E402  (shared allowlist, layer ranks, file walk)

RULES = frozenset({
    "lock-order", "lock-foreign-call", "lease-escape",
    "budget-propagation", "determinism",
})
assert RULES == avdb_lint.ANALYZE_RULES, "rule registry drift vs avdb_lint"

LAYER_RANK = avdb_lint.LAYER_RANK
BUDGET_DIRS = ("src/storage/", "src/net/", "src/cluster/")
BORROW_TYPES = frozenset({"PlaneView", "PlaneSpan", "BytesLease", "I16Lease"})
# Methods/factories whose result borrows from the receiver object.
BORROW_FACTORIES = frozenset({
    "View", "Span", "MutableView", "MutableSpan", "AcquireBytes",
    "AcquireI16", "plane", "view", "span",
})
# Call targets that keep a passed callable beyond the caller's scope.
ESCAPE_SINKS = frozenset({
    "Submit", "Post", "Schedule", "Defer", "Spawn", "Start", "SetClock",
})
ESCAPE_SINK_PREFIXES = ("Set", "Register", "On")
# Method names too generic (and too obviously value-ish) to treat as
# dynamic dispatch when they appear in the tree-wide virtual set.
SAFE_CALLEES = frozenset({
    "size", "empty", "begin", "end", "clear", "find", "count", "at",
    "push_back", "pop_back", "pop_front", "emplace_back", "emplace",
    "insert", "erase", "reserve", "resize", "front", "back", "get",
    "reset", "release", "swap", "load", "store", "fetch_add", "exchange",
    "c_str", "data", "str", "substr", "append", "value", "has_value",
    "ok", "min", "max", "abs", "move", "forward", "to_string",
    "make_unique", "make_shared", "make_pair", "push", "pop", "top",
    "Wait", "NotifyOne", "NotifyAll", "lock", "unlock", "assign",
})
# Retryable device/channel operations (mirrors avdb-lint's naked-retry).
RETRYABLE_CALLEES = frozenset({
    "Read", "ReadRange", "Transfer", "TransferWithDeadline", "ServeRead",
    "ServeWrite", "WriteAttempt",
})
CONTROL_KEYWORDS = frozenset({
    "if", "for", "while", "switch", "catch", "return", "sizeof", "do",
    "else", "new", "delete", "throw", "case", "default", "alignas",
    "alignof", "decltype", "static_assert", "static_cast", "const_cast",
    "dynamic_cast", "reinterpret_cast", "operator", "co_return",
    "constexpr",
})
# Function names whose output is a serialization / export / decision sink
# for the determinism rule.
SINK_FN_RE = re.compile(
    r"Serial|Json|Dump|Export|Prometheus|Text|Save|Encode|Digest|Hash"
    r"|Summary|Pick|Select|Choose|Plan|Repair|Write|Manifest")
# Callees inside a loop body that serialize or emit in iteration order.
SINK_CALLEE_RE = re.compile(
    r"^(?:Append|Serialize|Write|Emit|Event|EventAt|BeginSpan|Add)")
MACRO_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")


def is_macro(name):
    """SHOUT_CASE with at least one underscore (AVDB_GUARDED_BY, …);
    requiring the underscore keeps short all-caps identifiers like a
    method named `AB` out of the macro bucket."""
    return bool(MACRO_RE.match(name)) and "_" in name

SOURCE_EXTS = avdb_lint.SOURCE_EXTS


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind    # 'id' | 'num' | 'str' | 'punct'
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.kind}:{self.text}@{self.line}"


_ID_START = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
# Multi-char punctuators we keep fused because the analysis keys on them.
# '<' '>' stay single chars so template-argument scanning is uniform
# (shift operators then tokenize as two tokens, which none of the rules
# mind).
_PUNCT2 = {"::", "->", "+=", "-=", "*=", "/=", "|=", "&=", "^=", "==",
           "!=", "<=", ">=", "&&", "||", "++", "--"}


def tokenize(text):
    """Tokenizes C++ source. Comments and preprocessor lines are dropped
    (continuation lines of a macro definition included); string and char
    literals become single 'str' tokens."""
    toks = []
    i, n, line = 0, len(text), 1
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\v\f":
            i += 1
            continue
        if at_line_start and c == "#":
            # Preprocessor directive: skip to end of line, honoring
            # backslash continuations.
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                i += 1
            continue
        at_line_start = False
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                while i < n and text[i] != "\n":
                    i += 1
                continue
            if text[i + 1] == "*":
                i += 2
                while i + 1 < n and not (text[i] == "*"
                                         and text[i + 1] == "/"):
                    if text[i] == "\n":
                        line += 1
                    i += 1
                i += 2
                continue
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            word = text[i:j]
            # Raw string literal R"delim( ... )delim"
            if word.endswith("R") and j < n and text[j] == '"':
                k = j + 1
                while k < n and text[k] != "(":
                    k += 1
                delim = text[j + 1:k]
                close = ")" + delim + '"'
                endpos = text.find(close, k)
                if endpos == -1:
                    endpos = n - len(close)
                line += text.count("\n", i, endpos)
                toks.append(Tok("str", '""', line))
                i = endpos + len(close)
                continue
            kind = "id" if not word[0].isdigit() else "num"
            toks.append(Tok(kind, word, line))
            i = j
            continue
        if c.isdigit():
            j = i + 1
            while j < n and (text[j] in _ID_CONT or text[j] in ".'"):
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        if c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    line += 1
                j += 1
            toks.append(Tok("str", text[i:j + 1], line))
            i = j + 1
            continue
        two = text[i:i + 2]
        if two in _PUNCT2:
            toks.append(Tok("punct", two, line))
            i += 2
            continue
        toks.append(Tok("punct", c, line))
        i += 1
    return toks


def match_forward(toks, i, opener, closer):
    """Index of the token closing the opener at toks[i]."""
    depth = 0
    for j in range(i, len(toks)):
        t = toks[j].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return j
    return len(toks) - 1


def match_back(toks, i, closer, opener):
    """Index of the token opening the closer at toks[i]."""
    depth = 0
    for j in range(i, -1, -1):
        t = toks[j].text
        if t == closer:
            depth += 1
        elif t == opener:
            depth -= 1
            if depth == 0:
                return j
    return 0


# ---------------------------------------------------------------------------
# Declaration index
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, rule, path, line, text):
        self.rule = rule
        self.path = path
        self.line_no = line
        self.text = text

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.text}"

    def as_json(self):
        return {"rule": self.rule, "path": self.path,
                "line": self.line_no, "message": self.text}


class ClassInfo:
    def __init__(self, name, path, line):
        self.name = name              # qualified by nesting: Outer::Inner
        self.path = path
        self.line = line
        self.mutex_members = {}       # member name -> line
        self.fn_members = {}          # std::function member name -> line
        self.borrow_members = {}      # member name -> (line, type text)
        self.unordered_members = {}   # member name -> line
        self.ptrkey_members = {}      # member name -> (line, type text)
        self.methods = set()


class FuncDef:
    def __init__(self, name, cls, path, line, layer):
        self.name = name              # unqualified
        self.cls = cls                # enclosing/qualifying class name or None
        self.path = path
        self.line = line
        self.layer = layer
        self.params = []              # [(type_text, name)]
        self.budget_params = []       # names of DeadlineBudget params
        self.body = (0, 0)            # token index range (open, close brace)
        # Analysis summaries (filled by analyze_function):
        self.direct_locks = []        # [(canonical, line)]
        self.calls = []               # [CallSite]
        self.foreign = []             # [(kind, detail, line)] direct only

    @property
    def key(self):
        return f"{self.cls}::{self.name}" if self.cls else self.name


class CallSite:
    def __init__(self, callee, qual, receiver, line, held, in_loop, args):
        self.callee = callee          # last identifier of the callee chain
        self.qual = qual              # 'Cls' when written Cls::callee(...)
        self.receiver = receiver     # head id of recv chain (x->f(): 'x')
        self.line = line
        self.held = held              # tuple of canonical locks held here
        self.in_loop = in_loop
        self.args = args              # flat arg token texts


def _strip_member_macros(stmt):
    """Removes SHOUT_CASE macro invocations (AVDB_GUARDED_BY(mu_), …) from
    a member-declaration token list so they don't read as methods."""
    out = []
    i = 0
    while i < len(stmt):
        t = stmt[i]
        if (t.kind == "id" and is_macro(t.text)
                and i + 1 < len(stmt) and stmt[i + 1].text == "("):
            i = match_forward(stmt, i + 1, "(", ")") + 1
            continue
        out.append(t)
        i += 1
    return out


def _first_template_arg(stmt, idx):
    """Token texts of the first template argument after stmt[idx] ('map' or
    'set'), or []."""
    i = idx + 1
    if i >= len(stmt) or stmt[i].text != "<":
        return []
    depth = 0
    arg = []
    for j in range(i, len(stmt)):
        t = stmt[j].text
        if t == "<":
            depth += 1
            if depth == 1:
                continue
        elif t == ">":
            depth -= 1
            if depth == 0:
                return arg
        elif t == "," and depth == 1:
            return arg
        if depth >= 1:
            arg.append(t)
    return arg


def _classify_member(cls, stmt, path):
    """Classifies one class-member declaration statement (tokens, ';' not
    included) into the ClassInfo buckets."""
    stmt = _strip_member_macros(stmt)
    if not stmt:
        return
    texts = [t.text for t in stmt]
    # Method or data member? A top-level '(' before any '=' means method —
    # top-level meaning outside template angle brackets, so the '()' in
    # `std::function<int64_t()>` doesn't read as a parameter list.
    eq_at = texts.index("=") if "=" in texts else len(texts)
    paren_at = len(texts)
    angle = 0
    for j, tx in enumerate(texts):
        if tx == "<":
            angle += 1
        elif tx == ">":
            angle -= 1
        elif tx == "(" and angle == 0:
            paren_at = j
            break
    if paren_at < eq_at:
        # Method declaration: name is the id right before the '('.
        name = None
        for j in range(paren_at - 1, -1, -1):
            if stmt[j].kind == "id":
                name = stmt[j].text
                break
        if name and name not in CONTROL_KEYWORDS:
            cls.methods.add(name)
            if "virtual" in texts or "override" in texts or "final" in texts:
                VIRTUAL_METHODS.add(name)
        return
    # Data member: last id before '=' (or end of stmt).
    decl = stmt[:eq_at]
    name = None
    for j in range(len(decl) - 1, -1, -1):
        if decl[j].kind == "id":
            name = decl[j].text
            name_at = j
            break
    if name is None:
        return
    typ = [t.text for t in decl[:name_at]]
    line = stmt[0].line
    type_text = " ".join(typ)
    if "Mutex" in typ and "MutexLock" not in typ:
        cls.mutex_members[name] = line
    if "function" in typ:
        cls.fn_members[name] = line
    if any(t in BORROW_TYPES for t in typ):
        cls.borrow_members[name] = (line, type_text)
    if "unordered_map" in typ or "unordered_set" in typ:
        cls.unordered_members[name] = line
    for container in ("map", "set"):
        if container in typ:
            arg = _first_template_arg(decl, typ.index(container))
            if arg and arg[-1] == "*":
                cls.ptrkey_members[name] = (line, type_text)
            break


# Global (tree-wide) declaration index, reset per run.
CLASSES = {}           # qualified class name -> ClassInfo
VIRTUAL_METHODS = set()
FUNCS = []             # all FuncDefs
FUNCS_BY_NAME = {}     # unqualified name -> [FuncDef]
MUTEX_OWNERS = {}      # mutex member name -> [class name]
LOCK_NODES = {}        # canonical lock -> first witness "path:line"
LOCK_EDGES = {}        # (held, acquired) -> [witness "path:line", ...]


def reset_index():
    CLASSES.clear()
    VIRTUAL_METHODS.clear()
    del FUNCS[:]
    FUNCS_BY_NAME.clear()
    MUTEX_OWNERS.clear()
    LOCK_NODES.clear()
    LOCK_EDGES.clear()


# ---------------------------------------------------------------------------
# File walk: scopes, members, function definitions
# ---------------------------------------------------------------------------

def _try_func_def(toks, brace_at):
    """If the '{' at brace_at opens a function body, returns
    (name, qual, params_open, params_close, decl_line); else None. Walks
    backwards over trailers (const/noexcept/override, SHOUT_CASE macro
    calls, trailing return types) and constructor init-lists."""
    j = brace_at - 1
    guard = 0
    while j >= 0 and guard < 400:
        guard += 1
        t = toks[j]
        if t.kind == "id" and t.text in ("const", "noexcept", "override",
                                         "final", "mutable", "try"):
            j -= 1
            continue
        if t.text == ">":          # trailing return type `-> T<...>` tail
            j = match_back(toks, j, ">", "<") - 1
            continue
        if t.kind in ("id", "num", "str") or t.text in ("::", "->", "*",
                                                        "&", ",", "<"):
            # Could be a trailing return type or an init-list fragment;
            # keep scanning back until we hit a ')' / '}' / terminator.
            j -= 1
            continue
        if t.text == "}":
            # Brace-init entry in a ctor init-list: `, member{}` — walk
            # past it and require ',' or ':' before the member name.
            k = match_back(toks, j, "}", "{")
            m = k - 1
            if m >= 0 and toks[m].kind == "id":
                prev = toks[m - 1].text if m - 1 >= 0 else ""
                if prev in (",", ":"):
                    j = m - 2
                    continue
            return None
        if t.text == ")":
            k = match_back(toks, j, ")", "(")
            m = k - 1
            if m < 0 or toks[m].kind != "id":
                return None
            name = toks[m].text
            prev = toks[m - 1].text if m - 1 >= 0 else ""
            if is_macro(name) or name == "noexcept":
                j = m - 1       # attribute-macro / noexcept(...) trailer
                continue
            if prev in (",", ":") and not prev == "::":
                j = m - 2       # ctor init-list entry `member(...)`
                continue
            if name in CONTROL_KEYWORDS:
                return None
            # Qualified name chain: A::B::name (destructors carry a '~'
            # between the qualifier and the name).
            qual = None
            q = m - 1
            if q >= 0 and toks[q].text == "~":
                name = "~" + name
                q -= 1
            while q - 1 >= 0 and toks[q].text == "::" \
                    and toks[q - 1].kind == "id":
                qual = toks[q - 1].text
                q -= 2
            if m - 1 >= 0 and toks[m - 1].text in ("]",):
                return None     # lambda: `](...) {`
            return (name, qual, k, j, toks[m].line)
        return None
    return None


def index_file(path, toks):
    """Pass over one file: collects classes/members, finds function
    definitions (recording body ranges), maintains a class scope stack.
    Returns the file's FuncDefs (already appended to the globals)."""
    layer = avdb_lint.layer_of(path)
    scopes = []                   # (kind, name) with kind class|ns|block|enum
    pending = None                # scope to open at the next '{'
    stmt = []                     # member-decl accumulator inside a class
    out = []
    i = 0
    n = len(toks)

    def cur_class():
        for kind, name in reversed(scopes):
            if kind == "class":
                return name
            if kind == "block":
                return None
        return None

    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text in ("class", "struct"):
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1] if i + 1 < n else None
            if prev != "enum" and nxt is not None and nxt.kind == "id":
                outer = cur_class()
                qname = f"{outer}::{nxt.text}" if outer else nxt.text
                pending = ("class", qname, t.line)
            i += 1
            continue
        if t.kind == "id" and t.text == "namespace":
            nxt = toks[i + 1] if i + 1 < n else None
            pending = ("ns", nxt.text if nxt and nxt.kind == "id" else "")
            i += 1
            continue
        if t.kind == "id" and t.text == "enum":
            pending = ("enum", "")
            i += 1
            continue
        if t.text == ";":
            pending = None        # forward declaration
            stmt = []
            i += 1
            continue
        if t.text == "{":
            if pending:
                if pending[0] == "class":
                    qname = pending[1]
                    if qname not in CLASSES:
                        CLASSES[qname] = ClassInfo(qname, path, pending[2])
                    scopes.append(("class", qname))
                elif pending[0] == "enum":
                    i = match_forward(toks, i, "{", "}") + 1
                    pending = None
                    stmt = []
                    continue
                else:
                    scopes.append(("ns", pending[1]))
                pending = None
                stmt = []
                i += 1
                continue
            fd_info = _try_func_def(toks, i)
            if fd_info:
                name, qual, po, pc, line = fd_info
                cls = qual or cur_class()
                fd = FuncDef(name, cls, path, line, layer)
                # Parameters: split toks[po+1:pc] on top-level ','.
                depth = 0
                cur = []
                groups = []
                for pt in toks[po + 1:pc]:
                    if pt.text in "(<[":
                        depth += 1
                    elif pt.text in ")>]":
                        depth -= 1
                    if pt.text == "," and depth == 0:
                        groups.append(cur)
                        cur = []
                    else:
                        cur.append(pt)
                if cur:
                    groups.append(cur)
                for g in groups:
                    ids = [x.text for x in g if x.kind == "id"]
                    if not ids:
                        continue
                    pname = ids[-1]
                    ptype = " ".join(x.text for x in g[:-1])
                    fd.params.append((ptype, pname))
                    if "DeadlineBudget" in ids[:-1] or \
                            (len(ids) == 1 and ids[0] == "DeadlineBudget"):
                        fd.budget_params.append(pname)
                close = match_forward(toks, i, "{", "}")
                fd.body = (i, close)
                FUNCS.append(fd)
                FUNCS_BY_NAME.setdefault(name, []).append(fd)
                out.append(fd)
                if cls and cls in CLASSES:
                    CLASSES[cls].methods.add(name)
                    if any(x.text in ("virtual", "override", "final")
                           for x in toks[max(0, po - 8):po]):
                        VIRTUAL_METHODS.add(name)
                i = close + 1
                stmt = []
                continue
            scopes.append(("block", ""))
            i += 1
            continue
        if t.text == "}":
            if scopes:
                scopes.pop()
            stmt = []
            i += 1
            continue
        # Member-declaration accumulation at class scope.
        if scopes and scopes[-1][0] == "class":
            cname = scopes[-1][1]
            if t.text == ":" and stmt and stmt[-1].kind == "id" \
                    and stmt[-1].text in ("public", "private", "protected"):
                stmt = []
                i += 1
                continue
            stmt.append(t)
            if i + 1 < n and toks[i + 1].text == ";":
                _classify_member(CLASSES[cname], stmt, path)
                stmt = []
        i += 1
    return out


# ---------------------------------------------------------------------------
# Function-body analysis
# ---------------------------------------------------------------------------

def canonical_lock(expr_toks, fd):
    """Canonical identity for a lock expression: Class::member when the
    expression names a Mutex member (of the enclosing class, else of a
    unique class tree-wide), otherwise file-stem:expr."""
    ids = [t.text for t in expr_toks if t.kind == "id" and t.text != "this"]
    if ids:
        last = ids[-1]
        if fd.cls and fd.cls in CLASSES \
                and last in CLASSES[fd.cls].mutex_members:
            return f"{fd.cls}::{last}"
        owners = MUTEX_OWNERS.get(last, [])
        if len(owners) == 1:
            return f"{owners[0]}::{last}"
        same_file = [c for c in owners if CLASSES[c].path == fd.path]
        if len(same_file) == 1:
            return f"{same_file[0]}::{last}"
    stem = os.path.splitext(os.path.basename(fd.path))[0]
    text = "".join(t.text for t in expr_toks if t.text not in ("&", "this"))
    return f"{stem}:{text.lstrip('.').lstrip('->')}"


class _Block:
    __slots__ = ("locks", "borrows", "is_loop", "loop_start")

    def __init__(self, is_loop=False, loop_start=0):
        self.locks = []         # canonical names acquired in this block
        self.borrows = {}       # borrow local name -> (source_id, line)
        self.is_loop = is_loop
        self.loop_start = loop_start


def _receiver_of(toks, call_at):
    """For the callee id at call_at, walks the receiver chain back over
    `.`/`->`; returns (head_id or None, qual or None)."""
    qual = None
    j = call_at - 1
    if j >= 0 and toks[j].text == "::" and j - 1 >= 0 \
            and toks[j - 1].kind == "id":
        qual = toks[j - 1].text
        return None, qual
    head = None
    while j >= 1 and toks[j].text in (".", "->"):
        k = j - 1
        if toks[k].text in (")", "]"):
            k = match_back(toks, k, toks[k].text,
                           "(" if toks[k].text == ")" else "[") - 1
        if k >= 0 and toks[k].kind == "id":
            head = toks[k].text
            j = k - 1
        else:
            break
    return head, qual


def _collect_args(toks, open_paren):
    close = match_forward(toks, open_paren, "(", ")")
    return [t.text for t in toks[open_paren + 1:close]], close


def analyze_function(fd, toks, findings):
    """Walks fd's body with a block-scope stack: lock scopes, borrow
    locals, calls (with held-lock snapshots), loops, lambdas, returns and
    range-for iterations. Fills fd's summaries and emits the intra-
    procedural findings."""
    start, end = fd.body
    cls = CLASSES.get(fd.cls) if fd.cls else None
    blocks = [_Block()]
    held = []                    # [(canonical, line)] in acquisition order
    locals_ = {p[1] for p in fd.params}
    local_objs = set()           # locals declared as owning objects here
    unordered_locals = {}
    ptrkey_locals = {}
    fn_locals = set()            # local std::function variables
    pending_loop = 0             # '{' at this depth opens a loop block
    param_names = {p[1] for p in fd.params}
    ret_type_ids = set()
    # Return type ids: tokens before the name on the decl line — approximate
    # by scanning a few tokens before the body's param list.
    for t in toks[max(0, start - 40):start]:
        if t.kind == "id":
            ret_type_ids.add(t.text)
        if t.text == "(":
            break

    def borrow_lookup(name):
        for b in reversed(blocks):
            if name in b.borrows:
                return b.borrows[name]
        return None

    i = start + 1
    while i < end:
        t = toks[i]
        txt = t.text

        if txt == "{":
            blocks.append(_Block(is_loop=pending_loop > 0, loop_start=i))
            pending_loop = 0
            i += 1
            continue
        if txt == "}":
            b = blocks.pop() if len(blocks) > 1 else blocks[0]
            for name in b.locks:
                for k in range(len(held) - 1, -1, -1):
                    if held[k][0] == name:
                        del held[k]
                        break
            i += 1
            continue

        # for/while: remember that the next block is a loop; handle
        # range-for iteration for the determinism rule.
        if t.kind == "id" and txt in ("for", "while") and i + 1 < end \
                and toks[i + 1].text == "(":
            close = match_forward(toks, i + 1, "(", ")")
            head = toks[i + 2:close]
            pending_loop = 1
            if txt == "for":
                colon_at = None
                depth = 0
                for j, ht in enumerate(head):
                    if ht.text in "(<[":
                        depth += 1
                    elif ht.text in ")>]":
                        depth -= 1
                    elif ht.text == ":" and depth == 0:
                        colon_at = j
                        break
                    elif ht.text in ("?", ";") and depth == 0:
                        break
                if colon_at is not None:
                    range_ids = [x.text for x in head[colon_at + 1:]
                                 if x.kind == "id"]
                    if range_ids:
                        _check_iteration(fd, cls, range_ids[-1], t.line,
                                         toks, close, end,
                                         unordered_locals, ptrkey_locals,
                                         findings)
            i = close + 1
            continue

        # MutexLock scope: `[avdb::]MutexLock name(expr);`
        if t.kind == "id" and txt == "MutexLock" and i + 2 < end \
                and toks[i + 1].kind == "id" and toks[i + 2].text == "(":
            args, close = _collect_args(toks, i + 2)
            expr = toks[i + 3:close]
            canon = canonical_lock(expr, fd)
            for held_name, held_line in held:
                if held_name == canon:
                    findings.append(Finding(
                        "lock-order", fd.path, t.line,
                        f"re-acquires {canon} already held since line "
                        f"{held_line} (self-deadlock: avdb::Mutex is not "
                        f"recursive)"))
            for held_name, _ in held:
                if held_name != canon:
                    LOCK_EDGES.setdefault((held_name, canon), []).append(
                        f"{fd.path}:{t.line}")
            LOCK_NODES.setdefault(canon, f"{fd.path}:{t.line}")
            held.append((canon, t.line))
            blocks[-1].locks.append(canon)
            fd.direct_locks.append((canon, t.line))
            i = close + 1
            continue

        # Lambda introducer: a '[' in expression position (not a
        # subscript, which follows an id / ')' / ']').
        if txt == "[":
            prev = toks[i - 1] if i > start else None
            is_lambda = (prev is None
                         or prev.text == "return"
                         or (prev.kind == "punct"
                             and prev.text not in (")", "]")))
            if is_lambda:
                i = _handle_lambda(fd, toks, i, end, blocks, borrow_lookup,
                                   fn_locals, cls, findings)
                continue

        # return statement.
        if t.kind == "id" and txt == "return":
            j = i + 1
            depth = 0
            expr = []
            while j < end:
                jt = toks[j].text
                if jt in "([{":
                    depth += 1
                elif jt in ")]}":
                    depth -= 1
                if jt == ";" and depth == 0:
                    break
                expr.append(toks[j])
                j += 1
            _check_return(fd, expr, ret_type_ids, borrow_lookup,
                          local_objs, param_names, findings, t.line)
            i += 1      # re-walk the expression: calls in it still count
            continue

        # Declarations and calls: id followed by something interesting.
        if t.kind == "id" and txt not in CONTROL_KEYWORDS:
            nxt = toks[i + 1] if i + 1 < end else None
            prev = toks[i - 1] if i > start else None
            prev_is_type = prev is not None and (
                prev.kind == "id" and prev.text not in CONTROL_KEYWORDS
                or prev.text in (">", "*", "&"))
            if nxt is not None and nxt.text == "(" and not prev_is_type:
                recv, qual = _receiver_of(toks, i)
                args, close = _collect_args(toks, i + 1)
                in_loop = any(b.is_loop for b in blocks)
                site = CallSite(txt, qual, recv, t.line,
                                tuple(h[0] for h in held), in_loop, args)
                fd.calls.append(site)
                _check_call_under_lock(fd, cls, site, fn_locals, findings)
                i += 1      # step into the arg tokens (nested calls)
                continue
            if nxt is not None and nxt.text == "(" and prev_is_type:
                # `Type name(args);` — a local object declaration.
                locals_.add(txt)
                local_objs.add(txt)
                _maybe_local_decl(fd, toks, i, blocks, locals_, local_objs,
                                  unordered_locals, ptrkey_locals,
                                  fn_locals, borrow_lookup, param_names,
                                  findings)
                close = match_forward(toks, i + 1, "(", ")")
                i = close + 1
                continue
            if nxt is not None and nxt.text in ("=", ";", "{") \
                    and prev_is_type:
                locals_.add(txt)
                if nxt.text != ";":
                    local_objs.add(txt)
                _maybe_local_decl(fd, toks, i, blocks, locals_, local_objs,
                                  unordered_locals, ptrkey_locals,
                                  fn_locals, borrow_lookup, param_names,
                                  findings)
                i += 1
                continue
            # `.begin()` on an interesting container (explicit-iterator
            # loops).
            if nxt is not None and nxt.text in (".", "->") and i + 2 < end \
                    and toks[i + 2].text == "begin":
                _check_iteration(fd, cls, txt, t.line, toks, i, end,
                                 unordered_locals, ptrkey_locals, findings)
        i += 1

    # Budget-propagation over the finished call/loop picture.
    _check_budget(fd, toks, findings)


def _maybe_local_decl(fd, toks, name_at, blocks, locals_, local_objs,
                      unordered_locals, ptrkey_locals, fn_locals,
                      borrow_lookup, param_names, findings):
    """Classifies the local declaration whose declared name sits at
    name_at. The type tokens run backwards from name_at to the start of
    the statement (';', '{', '}', or ')')."""
    j = name_at - 1
    typ = []
    while j >= 0:
        tt = toks[j]
        if tt.text in (";", "{", "}", "(") or tt.text == ")" and not typ:
            break
        if tt.text == ")":
            break
        typ.append(tt)
        j -= 1
    typ.reverse()
    type_ids = [t.text for t in typ if t.kind == "id"]
    name = toks[name_at].text
    line = toks[name_at].line

    if "unordered_map" in type_ids or "unordered_set" in type_ids:
        unordered_locals[name] = line
    for container in ("map", "set"):
        if container in type_ids:
            idx = next((k for k, t in enumerate(typ)
                        if t.text == container), None)
            if idx is not None:
                arg = _first_template_arg(typ, idx)
                if arg and arg[-1] == "*":
                    ptrkey_locals[name] = line
            break
    if "function" in type_ids:
        fn_locals.add(name)

    # Borrow local: declared with a borrow type, or `auto` initialized
    # from a borrow factory. Record the source object (head of the
    # initializer chain) so escape checks know who owns the storage.
    init = []
    k = name_at + 1
    if k < len(toks) and toks[k].text == "=":
        depth = 0
        k += 1
        while k < len(toks):
            kt = toks[k].text
            if kt in "([{":
                depth += 1
            elif kt in ")]}":
                depth -= 1
            if kt == ";" and depth == 0:
                break
            init.append(toks[k])
            k += 1
    init_ids = [t.text for t in init if t.kind == "id"]
    is_borrow = any(t in BORROW_TYPES for t in type_ids)
    if not is_borrow and "auto" in type_ids and init:
        is_borrow = any(x in BORROW_FACTORIES for x in init_ids) or \
            any(x in BORROW_TYPES for x in init_ids)
    if is_borrow:
        source = init_ids[0] if init_ids else None
        blocks[-1].borrows[name] = (source, line)


def _source_locality(source, local_objs, param_names, cls):
    if source is None:
        return "unknown"
    if source in local_objs:
        return "local"
    if source in param_names:
        return "param"
    if cls is not None and (source in cls.borrow_members
                            or source.endswith("_")):
        return "member"
    return "unknown"


def _check_return(fd, expr, ret_type_ids, borrow_lookup, local_objs,
                  param_names, findings, line):
    """Returning a borrow whose owner is a function-local: the borrow
    outlives its storage (PR 6 bug class)."""
    if not (ret_type_ids & BORROW_TYPES):
        return
    cls = CLASSES.get(fd.cls) if fd.cls else None
    ids = [t.text for t in expr if t.kind == "id"]
    if not ids:
        return
    # `return view;` where view is a borrow local of a local owner.
    b = borrow_lookup(ids[0]) if len(ids) == 1 else None
    if b is not None:
        source, _ = b
        if _source_locality(source, local_objs, param_names, cls) == "local":
            findings.append(Finding(
                "lease-escape", fd.path, line,
                f"returns borrow {ids[0]!r} of function-local "
                f"{source!r}: the storage dies with this frame"))
        return
    # `return frame.View(0);` where frame is a local object.
    if any(x in BORROW_FACTORIES for x in ids):
        head = ids[0]
        if head in local_objs:
            findings.append(Finding(
                "lease-escape", fd.path, line,
                f"returns a borrow of function-local {head!r}: the "
                f"storage dies with this frame"))


def _handle_lambda(fd, toks, open_bracket, end, blocks, borrow_lookup,
                   fn_locals, cls, findings):
    """Parses one lambda. If it escapes the enclosing scope (assigned to a
    member / std::function local, passed to an escape sink, or returned)
    and captures a borrow local, that borrow outlives its owner."""
    cap_close = match_forward(toks, open_bracket, "[", "]")
    captures = [t.text for t in toks[open_bracket + 1:cap_close]]
    j = cap_close + 1
    if j < end and toks[j].text == "(":
        j = match_forward(toks, j, "(", ")") + 1
    while j < end and toks[j].text != "{":
        if toks[j].text == ";" or toks[j].text in (")", ","):
            return cap_close + 1      # not a lambda after all
        j += 1
    if j >= end:
        return cap_close + 1
    body_close = match_forward(toks, j, "{", "}")
    body_ids = {t.text for t in toks[j + 1:body_close] if t.kind == "id"}

    # Escape context.
    escapes = None
    k = open_bracket - 1
    while k >= 0 and toks[k].text in ("(", ","):
        k -= 1
    if k >= 0 and toks[k].kind == "id":
        callee = toks[k].text
        if callee in ESCAPE_SINKS or \
                any(callee.startswith(p) for p in ESCAPE_SINK_PREFIXES):
            escapes = f"passed to {callee}()"
    if escapes is None and k >= 0 and toks[k].text == "=":
        lhs = toks[k - 1].text if k - 1 >= 0 and toks[k - 1].kind == "id" \
            else None
        if lhs and cls is not None and lhs in cls.fn_members:
            escapes = f"stored in member {lhs!r}"
    if escapes is None and k >= 0 and toks[k].text == "return":
        escapes = "returned"

    if escapes:
        explicit = [c for c in captures if c not in ("&", "=", ",", "this")]
        default_cap = "&" in captures or "=" in captures
        suspects = set()
        for c in explicit:
            if borrow_lookup(c) is not None:
                suspects.add(c)
        if default_cap:
            for name in body_ids:
                if borrow_lookup(name) is not None:
                    suspects.add(name)
        for s in sorted(suspects):
            findings.append(Finding(
                "lease-escape", fd.path, toks[open_bracket].line,
                f"lambda {escapes} captures borrow {s!r}, which dies "
                f"with the enclosing scope"))

    # Analyze the lambda body as an anonymous nested function: its locks
    # register in the global graph and its own call sites are checked,
    # but with an empty held-lock context (the body runs when invoked,
    # not where it is written) and without entering name resolution.
    lam = FuncDef(fd.name + "$lambda", fd.cls, fd.path,
                  toks[open_bracket].line, fd.layer)
    lam.body = (j, body_close)
    analyze_function(lam, toks, findings)
    return body_close + 1


def _check_call_under_lock(fd, cls, site, fn_locals, findings):
    """Classifies one call site as foreign (injected callback / virtual
    dispatch) — recorded in fd's summary regardless of lock state so the
    interprocedural pass can see through helpers — and emits the direct
    finding when a lock is held here."""
    callee = site.callee
    if callee in CONTROL_KEYWORDS or is_macro(callee):
        return
    locks = ", ".join(site.held)
    if (cls is not None and callee in cls.fn_members) or \
            callee in fn_locals:
        fd.foreign.append(("callback", callee, site.line))
        if site.held:
            findings.append(Finding(
                "lock-foreign-call", fd.path, site.line,
                f"invokes injected callback {callee!r} while holding "
                f"{locks}: the callback can re-enter and deadlock"))
        return
    if callee in VIRTUAL_METHODS and callee not in SAFE_CALLEES \
            and site.receiver is not None:
        fd.foreign.append(("virtual", callee, site.line))
        if site.held:
            findings.append(Finding(
                "lock-foreign-call", fd.path, site.line,
                f"virtual call {site.receiver}->{callee}() while holding "
                f"{locks}: dynamic dispatch under a lock runs arbitrary "
                f"override code"))


def _check_iteration(fd, cls, name, line, toks, loop_at, end,
                     unordered_locals, ptrkey_locals, findings):
    """Determinism rule at one iteration site over container `name`."""
    ptr_line = None
    if name in ptrkey_locals:
        ptr_line = ptrkey_locals[name]
    elif cls is not None and name in cls.ptrkey_members:
        ptr_line = cls.ptrkey_members[name][0]
    if ptr_line is not None:
        findings.append(Finding(
            "determinism", fd.path, line,
            f"iterates pointer-keyed container {name!r} (declared line "
            f"{ptr_line}): pointer order differs run to run, so any "
            f"effect of this loop is nondeterministic"))
        return
    is_unordered = name in unordered_locals or (
        cls is not None and name in cls.unordered_members)
    if not is_unordered:
        return
    # Unordered iteration is a finding only when the order can reach an
    # output: a serialization-flavored enclosing function, or sink
    # calls / string accumulation in the loop body.
    sink = bool(SINK_FN_RE.search(fd.name))
    if not sink:
        brace = loop_at
        while brace < end and toks[brace].text != "{":
            if toks[brace].text == ";":
                break
            brace += 1
        if brace < end and toks[brace].text == "{":
            close = match_forward(toks, brace, "{", "}")
            for t in toks[brace + 1:close]:
                if (t.kind == "id" and SINK_CALLEE_RE.match(t.text)) or \
                        t.text == "+=":
                    sink = True
                    break
    if sink:
        findings.append(Finding(
            "determinism", fd.path, line,
            f"iterates unordered container {name!r} where element order "
            f"reaches serialized/exported output; use an ordered "
            f"container or sort first"))


def _check_budget(fd, toks, findings):
    """Deadline-budget propagation for budget-accepting functions in the
    serving layers."""
    if not fd.budget_params:
        return
    if not any(fd.path.startswith(d) for d in BUDGET_DIRS):
        return
    start, end = fd.body
    body_ids = [t for t in toks[start + 1:end] if t.kind == "id"]
    body_id_set = {t.text for t in body_ids}
    for b in fd.budget_params:
        if b not in body_id_set:
            findings.append(Finding(
                "budget-propagation", fd.path, fd.line,
                f"{fd.key}() accepts DeadlineBudget {b!r} but never "
                f"charges, tests or forwards it: callers' deadlines are "
                f"silently dropped"))
    budget_names = set(fd.budget_params)
    # Locals of type DeadlineBudget count as budget carriers, except
    # explicit DeadlineBudget::Unlimited() (a deliberate background op).
    i = start + 1
    while i < end - 1:
        if toks[i].kind == "id" and toks[i].text == "DeadlineBudget" \
                and toks[i + 1].kind == "id":
            nxt2 = toks[i + 2].text if i + 2 < end else ""
            if nxt2 in ("=", "(", ";"):
                tail = {t.text for t in toks[i + 2:min(end, i + 12)]}
                if "Unlimited" not in tail:
                    budget_names.add(toks[i + 1].text)
        i += 1
    if not budget_names:
        return
    # Retry loops must consult a budget carrier.
    for site in fd.calls:
        if not site.in_loop or site.callee not in RETRYABLE_CALLEES \
                or site.receiver is None:
            continue
        # Coarse by design: a budget mention anywhere in the body
        # satisfies the loop (per-loop precision is handled by keeping
        # functions small; see DESIGN.md §15 soundness caveats).
        loop_ok = any(b in body_id_set for b in budget_names)
        if not loop_ok:
            findings.append(Finding(
                "budget-propagation", fd.path, site.line,
                f"retry loop calls {site.callee}() without consulting "
                f"the DeadlineBudget: retries are budget-free"))
    # Calls that drop the budget at a hop: callee has a budget-taking
    # overload, caller holds a budget, none is passed.
    for site in fd.calls:
        defs = FUNCS_BY_NAME.get(site.callee, [])
        if not defs:
            continue
        has_budget_overload = any(d.budget_params for d in defs)
        if not has_budget_overload:
            continue
        arg_ids = set(site.args)
        if arg_ids & budget_names or "DeadlineBudget" in arg_ids \
                or "Unlimited" in arg_ids:
            continue
        # Only flag when a budget-free overload actually exists to bind
        # to (otherwise the compiler would have rejected the call) and
        # the call isn't the budget-taking definition resolving itself.
        budget_free = any(not d.budget_params for d in defs)
        if budget_free:
            findings.append(Finding(
                "budget-propagation", fd.path, site.line,
                f"calls {site.callee}() without the DeadlineBudget "
                f"{sorted(budget_names)} in scope, but a budget-taking "
                f"overload exists: the deadline stops propagating here"))


# ---------------------------------------------------------------------------
# Interprocedural pass: transitive lock acquisition and foreign calls
# ---------------------------------------------------------------------------

def _resolve(site, fd):
    """Candidate FuncDefs for a call site. Same-class definitions win for
    unqualified/this calls; a cross-class name only resolves when it is
    unambiguous tree-wide (soundness caveat: an ambiguous name is not
    propagated)."""
    defs = FUNCS_BY_NAME.get(site.callee, [])
    if not defs:
        return []
    if site.qual:
        q = [d for d in defs if d.cls and d.cls.split("::")[-1] == site.qual]
        if q:
            return q
    if site.receiver is None and fd.cls:
        same = [d for d in defs if d.cls == fd.cls]
        if same:
            return same
    classes = {d.cls for d in defs}
    if len(classes) == 1:
        return defs
    return []


def _transitive(fd, getter, memo, stack):
    key = id(fd)
    if key in memo:
        return memo[key]
    if key in stack:
        return set()
    stack.add(key)
    acc = set(getter(fd))
    for site in fd.calls:
        for callee in _resolve(site, fd):
            acc |= _transitive(callee, getter, memo, stack)
    stack.discard(key)
    memo[key] = acc
    return acc


def interprocedural_pass(findings):
    """Propagates lock acquisition and foreign calls through the call
    graph: a call made while holding L to a function that (transitively)
    acquires M adds edge L->M; to one that (transitively) invokes a
    callback/virtual is a lock-foreign-call at the call site."""
    lock_memo, foreign_memo = {}, {}
    for fd in FUNCS:
        for site in fd.calls:
            if not site.held:
                continue
            for callee in _resolve(site, fd):
                tlocks = _transitive(
                    callee, lambda f: {c for c, _ in f.direct_locks},
                    lock_memo, set())
                for acquired in tlocks:
                    for held in site.held:
                        if held == acquired:
                            findings.append(Finding(
                                "lock-order", fd.path, site.line,
                                f"calls {callee.key}() while holding "
                                f"{held}, and it re-acquires {held} "
                                f"(self-deadlock: avdb::Mutex is not "
                                f"recursive)"))
                        else:
                            LOCK_EDGES.setdefault(
                                (held, acquired), []).append(
                                f"{fd.path}:{site.line} via {callee.key}")
                tforeign = _transitive(
                    callee, lambda f: set(f.foreign), foreign_memo, set())
                for kind, detail, _line in sorted(tforeign):
                    findings.append(Finding(
                        "lock-foreign-call", fd.path, site.line,
                        f"calls {callee.key}() while holding "
                        f"{', '.join(site.held)}, which reaches a "
                        f"{kind} invocation of {detail!r}"))


def borrow_member_findings(findings):
    """A borrow stored in a member outlives every scope; flag the
    declaration itself (the borrow classes' own files are exempt — they
    implement the borrow)."""
    for cls in CLASSES.values():
        short = cls.name.split("::")[-1]
        if short in BORROW_TYPES:
            continue
        for name, (line, typ) in sorted(cls.borrow_members.items()):
            findings.append(Finding(
                "lease-escape", cls.path, line,
                f"{cls.name}::{name} stores a borrow ({typ.strip()}): a "
                f"member outlives the lease/view scope; store the owning "
                f"object (Buffer, VideoFrame) instead"))


# ---------------------------------------------------------------------------
# Lock-order graph: cycles and the canonical order file
# ---------------------------------------------------------------------------

def lock_cycle_findings(findings):
    """DFS over LOCK_EDGES for cycles; each cycle is reported once with
    its witness chain."""
    adj = {}
    for (a, b), wit in LOCK_EDGES.items():
        adj.setdefault(a, []).append((b, wit[0]))
    seen_cycles = set()
    color = {}

    def dfs(node, path):
        color[node] = 1
        for nxt, wit in sorted(adj.get(node, [])):
            if color.get(nxt) == 1:
                at = [n for n, _ in path].index(nxt)
                cyc = [n for n, _ in path[at:]] + [nxt]
                key = frozenset(cyc)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    chain = " -> ".join(cyc)
                    wfile, _, wline = wit.partition(":")
                    findings.append(Finding(
                        "lock-order", wfile,
                        int(wline.split(":")[0].split()[0] or 0)
                        if wline else 0,
                        f"lock acquisition cycle: {chain} (witness "
                        f"{wit}); a consistent global order is required"))
            elif color.get(nxt, 0) == 0:
                dfs(nxt, path + [(nxt, wit)])
        color[node] = 2

    for node in sorted(adj):
        if color.get(node, 0) == 0:
            dfs(node, [(node, "")])


def canonical_lock_order():
    """Kahn topological sort of the acquisition graph, lexicographic
    tie-break, cyclic leftovers appended lexicographically."""
    nodes = sorted(LOCK_NODES)
    indeg = {n: 0 for n in nodes}
    out = {n: set() for n in nodes}
    for (a, b) in LOCK_EDGES:
        if b not in out.get(a, set()):
            out.setdefault(a, set()).add(b)
            indeg[b] = indeg.get(b, 0) + 1
            indeg.setdefault(a, 0)
    order = []
    ready = sorted(n for n, d in indeg.items() if d == 0)
    while ready:
        n = ready.pop(0)
        order.append(n)
        for m in sorted(out.get(n, ())):
            indeg[m] -= 1
            if indeg[m] == 0:
                ready.append(m)
        ready.sort()
    order += sorted(n for n in nodes if n not in set(order))
    return order


def lock_order_document():
    return {
        "__doc": "Canonical lock acquisition order, generated by "
                 "tools/avdb_analyze.py --write-lock-order. A lock may "
                 "only be acquired while holding locks that appear "
                 "EARLIER in `locks`. Edges carry one witness site each. "
                 "Regenerate after adding or nesting locks; the analyze "
                 "test fails if this file is out of sync.",
        "locks": [{"id": n, "witness": LOCK_NODES[n]}
                  for n in canonical_lock_order()],
        "edges": [{"from": a, "to": b, "witness": wit[0]}
                  for (a, b), wit in sorted(LOCK_EDGES.items())],
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def analyze_tree(files):
    """Runs the whole pipeline over {relpath: source text}. Returns the
    finding list (unfiltered by the allowlist)."""
    reset_index()
    findings = []
    tokenized = {}
    for rel in sorted(files):
        toks = tokenize(files[rel])
        tokenized[rel] = toks
        index_file(rel, toks)
    for cls in CLASSES.values():
        for m in cls.mutex_members:
            MUTEX_OWNERS.setdefault(m, []).append(cls.name)
    for fd in FUNCS:
        analyze_function(fd, tokenized[fd.path], findings)
    interprocedural_pass(findings)
    borrow_member_findings(findings)
    lock_cycle_findings(findings)
    return findings


def tree_files(root):
    files = {}
    for rel in avdb_lint.iter_source_files(root):
        if not rel.startswith("src/"):
            continue
        with open(os.path.join(root, rel), encoding="utf-8",
                  errors="replace") as f:
            files[rel] = f.read()
    return files


def run_analyze(root, json_out=None, write_lock_order=False):
    entries, errors = avdb_lint.load_allowlist(root)
    findings = analyze_tree(tree_files(root))
    kept, stale = avdb_lint.apply_allowlist(findings, entries, RULES)
    for e in stale:
        errors.append(
            f"stale allowlist entry (matched nothing — remove it): "
            f"rule={e['rule']} file={e['file']} pattern={e['pattern']}")

    doc = lock_order_document()
    lock_path = os.path.join(root, "tools", "lock_order.json")
    if write_lock_order:
        with open(lock_path, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2, sort_keys=False)
            f.write("\n")
        print(f"avdb-analyze: wrote {os.path.relpath(lock_path, root)} "
              f"({len(doc['locks'])} locks, {len(doc['edges'])} edges)")
    else:
        try:
            with open(lock_path, encoding="utf-8") as f:
                on_disk = json.load(f)
        except (OSError, ValueError):
            on_disk = None
        if on_disk != doc:
            errors.append(
                "tools/lock_order.json is out of sync with the tree; "
                "run tools/avdb_analyze.py --write-lock-order and commit "
                "the result")

    if json_out:
        payload = {
            "tool": "avdb-analyze",
            "root": os.path.abspath(root),
            "findings": [v.as_json() for v in kept],
            "suppressed": len(findings) - len(kept),
            "summary": {r: sum(1 for v in kept if v.rule == r)
                        for r in sorted(RULES)},
            "lock_order": doc,
            "errors": errors,
        }
        with open(json_out, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")

    for v in kept:
        print(v)
    for err in errors:
        print(f"avdb-analyze: error: {err}")
    if kept or errors:
        print(f"avdb-analyze: {len(kept)} finding(s), "
              f"{len(errors)} error(s)")
        return 1
    print(f"avdb-analyze: clean ({len(findings) - len(kept)} allowlisted, "
          f"{len(LOCK_NODES)} locks, {len(LOCK_EDGES)} edges)")
    return 0


# ---------------------------------------------------------------------------
# Self-test over labelled fixtures
# ---------------------------------------------------------------------------

FIXTURE_AS_RE = re.compile(r"//\s*analyze-fixture-as:\s*(\S+)")
FIXTURE_EXPECT_RE = re.compile(r"//\s*analyze-expect:\s*([\w,-]+)")


def run_self_test(root):
    """Each fixture under tools/lint_fixtures/analyze_fail must trip
    exactly the rules its `// analyze-expect:` header names, analyzed
    as-if at its `// analyze-fixture-as:` path; each fixture under
    analyze_pass must be clean. Every fixture is its own one-file tree."""
    fixture_root = os.path.join(root, "tools", "lint_fixtures")
    failures = []
    checked = 0
    for kind in ("analyze_fail", "analyze_pass"):
        kind_dir = os.path.join(fixture_root, kind)
        for name in sorted(os.listdir(kind_dir)):
            if not name.endswith(SOURCE_EXTS):
                continue
            checked += 1
            with open(os.path.join(kind_dir, name), encoding="utf-8") as f:
                text = f.read()
            header = "\n".join(text.splitlines()[:5])
            as_m = FIXTURE_AS_RE.search(header)
            rel = as_m.group(1) if as_m else f"src/base/{name}"
            got = sorted({v.rule for v in analyze_tree({rel: text})})
            if kind == "analyze_pass":
                want = []
            else:
                exp_m = FIXTURE_EXPECT_RE.search(header)
                if not exp_m:
                    failures.append(
                        f"{kind}/{name}: missing // analyze-expect:")
                    continue
                want = sorted(exp_m.group(1).split(","))
            if got != want:
                failures.append(
                    f"{kind}/{name} (as {rel}): expected rules {want}, "
                    f"got {got}")
    for f in failures:
        print(f"avdb-analyze self-test: FAIL {f}")
    if failures:
        return 1
    print(f"avdb-analyze self-test: {checked} fixtures ok")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="semantic whole-tree analyzer (see module docstring)")
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/, tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="check the rule engine against the fixtures")
    parser.add_argument("--write-lock-order", action="store_true",
                        help="regenerate tools/lock_order.json")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write findings + lock order as JSON")
    args = parser.parse_args()
    root = os.path.abspath(args.root)
    if args.self_test:
        return run_self_test(root)
    return run_analyze(root, json_out=args.json,
                       write_lock_order=args.write_lock_order)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""avdb-lint: repo-specific static rules the compiler can't enforce.

Run as a ctest (label `lint`) so violations fail the build farm, or by hand:

    python3 tools/avdb_lint.py --root .            # lint the tree
    python3 tools/avdb_lint.py --root . --self-test  # rule fixtures

Rules (see DESIGN.md §10 "Static correctness model"):

  wallclock          No std::chrono::{system,steady,high_resolution}_clock,
                     sleep_for/sleep_until/usleep/nanosleep, gettimeofday,
                     clock_gettime in library/test code. All delay must be
                     charged in virtual time (base/virtual_clock) so
                     schedules are deterministic and fault traces replay.
  naked-new          No raw `new` / malloc-family calls outside
                     src/base/buffer* . A `new` immediately owned by a
                     unique_ptr/shared_ptr constructor (the private-ctor
                     factory idiom) is allowed.
  check-in-hot-path  No AVDB_CHECK / AVDB_DCHECK in the streaming hot-path
                     layers (src/storage, src/net, src/codec): data-
                     dependent failures there must surface as Status, not
                     abort the process. Constructor preconditions and
                     encode-side self-checks are allowlisted individually.
  layer-cycle        `#include "dir/…"` across src/ layers must follow the
                     layer DAG (base → time → media → codec|sched →
                     storage|net → activity → cluster → db →
                     hyper|vworld). An include into a higher or sibling
                     layer is a cycle.
  void-cast-call     No `(void)call(...)` in src/: a void-cast of a call is
                     an invisible status drop. Use AVDB_IGNORE_STATUS with
                     a justification instead.
  metric-prefix      Instrument-name string literals in src/ must follow
                     `avdb_<layer>_<metric>` where `<layer>` is the layer
                     (include-DAG directory) of the defining file, so a
                     metric's name always says which layer owns it.
  plane-copy         No per-frame byte-plane copies in the codec/activity
                     hot paths (src/codec, src/activity): the copying
                     frame accessors (ExtractPlane / ExtractPlaneInto /
                     SetPlane) and by-value `std::vector<uint8_t>`
                     temporaries allocate per frame. Use PlaneView /
                     PlaneSpan over the frame's planar storage, or lease
                     scratch from BufferPool (BytesLease / AcquireBuffer).
  naked-retry        No hand-rolled retry loops around device reads or
                     channel transfers in src/cluster or src/storage: a
                     `for`/`while` whose body calls ->Read / ->ReadRange /
                     ->Transfer / ->TransferWithDeadline / ->ServeRead
                     must drive the loop through RetryState, so every
                     retry charges virtual time, honors the deadline
                     budget, and applies the configured backoff+jitter.
                     A naked loop retries for free and forever.
  direct-replica-write
                     No MediaStore::Put/Delete called directly from
                     src/cluster/: every replica mutation must ride
                     ServerNode's serving arms (ServeWrite / ServeDelete /
                     ApplyRepair) so it is fault-injected, priced in
                     virtual time, and journaled exactly once. A direct
                     store write from the cluster layer bypasses the
                     quorum/repair path and silently diverges replicas.
                     The serving arms themselves are allowlisted.

Suppressions live in tools/avdb_lint_allowlist.json — machine-readable,
justification required, stale entries are themselves errors. Never silence
a rule inline. The allowlist is SHARED with tools/avdb_analyze.py (the
semantic whole-tree analyzer): each tool applies and staleness-checks only
the entries for its own rules and leaves the other tool's entries alone;
an entry naming a rule neither tool implements is an error in both.
"""

import argparse
import fnmatch
import json
import os
import re
import sys

# Rule-name registry for the shared allowlist. avdb_lint owns LINT_RULES;
# avdb_analyze (which imports this module) owns ANALYZE_RULES and asserts
# at startup that the rules it implements match this list.
LINT_RULES = frozenset({
    "wallclock", "naked-new", "check-in-hot-path", "layer-cycle",
    "void-cast-call", "metric-prefix", "plane-copy", "naked-retry",
    "direct-replica-write",
})
ANALYZE_RULES = frozenset({
    "lock-order", "lock-foreign-call", "lease-escape",
    "budget-propagation", "determinism",
})

# Layer ranks: an #include may only point at a strictly lower rank (or the
# same directory). Keep in sync with DESIGN.md §10.
LAYER_RANK = {
    "base": 0,
    "time": 1,
    "obs": 2,
    "media": 2,
    "codec": 3,
    "sched": 3,
    "storage": 4,
    "net": 4,
    "activity": 5,
    "cluster": 6,
    "db": 7,
    "hyper": 8,
    "vworld": 8,
}

HOT_PATH_DIRS = ("src/storage/", "src/net/", "src/codec/")
PLANE_COPY_DIRS = ("src/codec/", "src/activity/")
NAKED_RETRY_DIRS = ("src/cluster/", "src/storage/")
# How far a retryable call may sit below its loop header, and how far above
# the header a RetryState declaration still governs the loop.
NAKED_RETRY_WINDOW = 12
NAKED_RETRY_LOOKBACK = 4

WALLCLOCK_RE = re.compile(
    r"std::chrono::(?:system|steady|high_resolution)_clock"
    r"|\bsleep_for\b|\bsleep_until\b|\busleep\s*\(|\bnanosleep\s*\("
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
)
NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")  # `new (addr)` placement ok
ALLOC_RE = re.compile(r"\b(?:malloc|calloc|realloc|free)\s*\(")
SMART_PTR_CONTEXT_RE = re.compile(r"(?:unique_ptr|shared_ptr)\s*<[^;{}]*\(\s*$")
CHECK_RE = re.compile(r"\bAVDB_D?CHECK\s*\(")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
VOID_CAST_CALL_RE = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_][\w:.]*(?:->\w+)*\s*\(")
# An instrument name inside a string literal: "avdb_<layer>_..."
METRIC_LITERAL_RE = re.compile(r'"(avdb_([a-z0-9]+)_[a-z0-9_]+)')
PLANE_ACCESSOR_RE = re.compile(
    r"\b(?:ExtractPlane|ExtractPlaneInto|SetPlane)\s*\(")
# A by-value byte-plane object; reference/rvalue-reference types are fine
# (borrowing, not allocating).
PLANE_TEMP_RE = re.compile(r"std::vector<uint8_t>\s*(?!&)")
LOOP_HEAD_RE = re.compile(r"\b(?:for|while)\s*\(")
# Exact retryable-operation names only: parsing helpers (ReadU32, ReadBytes,
# ReadString, …) loop legitimately over a buffer and must not match.
RETRYABLE_CALL_RE = re.compile(
    r"->\s*(?:Read|ReadRange|Transfer|TransferWithDeadline|ServeRead"
    r"|ServeWrite)\s*\(")
RETRY_STATE_RE = re.compile(r"\bRetryState\b")

DIRECT_WRITE_DIRS = ("src/cluster/",)
# A MediaStore mutation through any store-named receiver: `store_->Put(`,
# `store().Delete(`, `target_store.Put(`, … Reads (Lookup/ReadRange) are
# fine; only the mutating verbs divert around the quorum/repair path.
DIRECT_REPLICA_WRITE_RE = re.compile(
    r"(?:\bstore\(\)\s*\.|\bstore_\s*(?:->|\.)|_store\s*(?:\.|->))"
    r"\s*(?:Put|Delete)\s*\(")

SOURCE_EXTS = (".cc", ".h", ".cpp", ".hpp")


class Violation:
    def __init__(self, rule, path, line_no, text):
        self.rule = rule
        self.path = path
        self.line_no = line_no
        self.text = text.strip()

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.text}"


def strip_comments_and_strings(lines):
    """Returns lines with //, /* */ comments and string/char literals blanked
    so rule regexes don't fire on prose. #include lines are kept verbatim
    (the include rule needs the quoted path)."""
    out = []
    in_block = False
    for raw in lines:
        if INCLUDE_RE.match(raw):
            out.append(raw)
            continue
        res = []
        i = 0
        n = len(raw)
        quote = None  # "'" or '"' while inside a literal
        while i < n:
            c = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if quote:
                if c == "\\":
                    i += 2
                    continue
                if c == quote:
                    quote = None
                i += 1
                continue
            if c == "/" and nxt == "/":
                break
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                res.append(c)
                i += 1
                continue
            res.append(c)
            i += 1
        out.append("".join(res))
    return out


def layer_of(rel_path):
    parts = rel_path.split("/")
    if len(parts) >= 2 and parts[0] == "src":
        return parts[1]
    return None


def lint_file(rel_path, lines):
    """Runs every applicable rule; returns a list of Violations."""
    violations = []
    stripped = strip_comments_and_strings(lines)
    in_src = rel_path.startswith("src/")
    layer = layer_of(rel_path)
    is_buffer_code = in_src and os.path.basename(rel_path).startswith("buffer")
    in_hot_path = any(rel_path.startswith(d) for d in HOT_PATH_DIRS)
    in_plane_hot_path = any(rel_path.startswith(d) for d in PLANE_COPY_DIRS)
    in_retry_dirs = any(rel_path.startswith(d) for d in NAKED_RETRY_DIRS)
    in_direct_write_dirs = any(
        rel_path.startswith(d) for d in DIRECT_WRITE_DIRS)

    for idx, line in enumerate(stripped, start=1):
        m = INCLUDE_RE.match(line)
        if m and layer is not None:
            target = m.group(1).split("/")[0]
            if target in LAYER_RANK and target != layer:
                if LAYER_RANK[target] >= LAYER_RANK[layer]:
                    violations.append(Violation(
                        "layer-cycle", rel_path, idx,
                        f'#include "{m.group(1)}" from layer {layer!r} '
                        f"(rank {LAYER_RANK[layer]}) into layer {target!r} "
                        f"(rank {LAYER_RANK[target]}) breaks the layer DAG"))
            continue

        if WALLCLOCK_RE.search(line):
            violations.append(Violation(
                "wallclock", rel_path, idx, lines[idx - 1]))

        # Preprocessor lines cannot allocate; without this, `#include <new>`
        # (needed for placement new) trips the word-match below.
        if in_src and not is_buffer_code and not line.startswith("#"):
            if NEW_RE.search(line):
                # The private-ctor factory idiom wraps `new` in a smart-
                # pointer constructor, often split across lines; look back
                # through the joined statement prefix for `…_ptr<…>(`.
                prefix = " ".join(stripped[max(0, idx - 3):idx])
                head = prefix[:prefix.rfind("new")] if "new" in prefix else prefix
                if not SMART_PTR_CONTEXT_RE.search(head.rstrip()):
                    violations.append(Violation(
                        "naked-new", rel_path, idx, lines[idx - 1]))
            if ALLOC_RE.search(line):
                violations.append(Violation(
                    "naked-new", rel_path, idx, lines[idx - 1]))

        if in_hot_path and CHECK_RE.search(line):
            violations.append(Violation(
                "check-in-hot-path", rel_path, idx, lines[idx - 1]))

        if in_plane_hot_path and (PLANE_ACCESSOR_RE.search(line)
                                  or PLANE_TEMP_RE.search(line)):
            violations.append(Violation(
                "plane-copy", rel_path, idx, lines[idx - 1]))

        if in_retry_dirs and LOOP_HEAD_RE.search(line):
            # A loop whose body (the next NAKED_RETRY_WINDOW lines) issues a
            # retryable device/channel call is a retry loop; it must be
            # driven by a RetryState declared just above or inside it.
            body = stripped[idx - 1:idx - 1 + NAKED_RETRY_WINDOW]
            context = stripped[max(0, idx - 1 - NAKED_RETRY_LOOKBACK):
                               idx - 1 + NAKED_RETRY_WINDOW]
            call = next((b for b in body if RETRYABLE_CALL_RE.search(b)),
                        None)
            if (call is not None
                    and not any(RETRY_STATE_RE.search(c) for c in context)):
                violations.append(Violation(
                    "naked-retry", rel_path, idx,
                    f"loop retries `{call.strip()}` without RetryState: "
                    "unbudgeted, unjittered retry"))

        if in_direct_write_dirs and DIRECT_REPLICA_WRITE_RE.search(line):
            violations.append(Violation(
                "direct-replica-write", rel_path, idx, lines[idx - 1]))

        if in_src and VOID_CAST_CALL_RE.search(line):
            violations.append(Violation(
                "void-cast-call", rel_path, idx, lines[idx - 1]))

        # metric-prefix scans the *raw* line: string literals are blanked in
        # the stripped copy, and the instrument names live in literals.
        if layer is not None:
            raw = lines[idx - 1]
            comment_at = raw.find("//")
            for m in METRIC_LITERAL_RE.finditer(raw):
                if 0 <= comment_at < m.start():
                    continue  # mention in a comment, not a definition
                if m.group(2) != layer:
                    violations.append(Violation(
                        "metric-prefix", rel_path, idx,
                        f'instrument "{m.group(1)}" claims layer '
                        f"{m.group(2)!r} but is defined in layer {layer!r}"))

    return violations


def iter_source_files(root):
    scan_dirs = ("src", "tests", "bench", "examples")
    for top in scan_dirs:
        for dirpath, dirnames, filenames in os.walk(os.path.join(root, top)):
            dirnames[:] = [d for d in dirnames if d not in ("build",)]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTS):
                    full = os.path.join(dirpath, name)
                    yield os.path.relpath(full, root).replace(os.sep, "/")


def load_allowlist(root):
    path = os.path.join(root, "tools", "avdb_lint_allowlist.json")
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    entries = data["entries"]
    errors = []
    known = LINT_RULES | ANALYZE_RULES
    for i, e in enumerate(entries):
        for key in ("rule", "file", "pattern", "justification"):
            if not e.get(key):
                errors.append(
                    f"allowlist entry #{i} missing non-empty {key!r}: {e}")
        if e.get("rule") and e["rule"] not in known:
            errors.append(
                f"allowlist entry #{i} names unknown rule {e['rule']!r} "
                f"(neither avdb-lint nor avdb-analyze implements it)")
        e["_used"] = False
        e["_re"] = re.compile(e.get("pattern") or r"(?!)")
    return entries, errors


def apply_allowlist(violations, entries, own_rules=LINT_RULES):
    """Suppresses violations matched by an allowlist entry. Only entries for
    `own_rules` participate: the shared file also carries the other tool's
    entries, which must be neither applied nor reported stale here."""
    own = [e for e in entries if e.get("rule") in own_rules]
    kept = []
    for v in violations:
        suppressed = False
        for e in own:
            if (e["rule"] == v.rule
                    and fnmatch.fnmatch(v.path, e["file"])
                    and e["_re"].search(v.text)):
                e["_used"] = True
                suppressed = True
                break
        if not suppressed:
            kept.append(v)
    stale = [e for e in own if not e["_used"]]
    return kept, stale


def run_lint(root):
    entries, errors = load_allowlist(root)
    violations = []
    for rel in iter_source_files(root):
        if "/lint_fixtures/" in rel or "/compile_fail/" in rel:
            continue
        with open(os.path.join(root, rel), encoding="utf-8",
                  errors="replace") as f:
            lines = f.read().splitlines()
        violations.extend(lint_file(rel, lines))
    kept, stale = apply_allowlist(violations, entries, LINT_RULES)
    for v in kept:
        print(v)
    for e in stale:
        errors.append(
            f"stale allowlist entry (matched nothing — remove it): "
            f"rule={e['rule']} file={e['file']} pattern={e['pattern']}")
    for err in errors:
        print(f"avdb-lint: error: {err}")
    if kept or errors:
        print(f"avdb-lint: {len(kept)} violation(s), {len(errors)} error(s)")
        return 1
    print("avdb-lint: clean")
    return 0


FIXTURE_AS_RE = re.compile(r"//\s*lint-fixture-as:\s*(\S+)")
FIXTURE_EXPECT_RE = re.compile(r"//\s*lint-expect:\s*([\w,-]+)")


def run_self_test(root):
    """Every fixture under tools/lint_fixtures/fail must trip exactly the
    rules its `// lint-expect:` header names (checked as-if at its
    `// lint-fixture-as:` path); every fixture under pass/ must be clean."""
    fixture_root = os.path.join(root, "tools", "lint_fixtures")
    failures = []
    checked = 0
    for kind in ("fail", "pass"):
        kind_dir = os.path.join(fixture_root, kind)
        for name in sorted(os.listdir(kind_dir)):
            if not name.endswith(SOURCE_EXTS):
                continue
            checked += 1
            with open(os.path.join(kind_dir, name), encoding="utf-8") as f:
                lines = f.read().splitlines()
            header = "\n".join(lines[:5])
            as_m = FIXTURE_AS_RE.search(header)
            rel = as_m.group(1) if as_m else f"src/base/{name}"
            got = sorted({v.rule for v in lint_file(rel, lines)})
            if kind == "pass":
                want = []
            else:
                exp_m = FIXTURE_EXPECT_RE.search(header)
                if not exp_m:
                    failures.append(f"{kind}/{name}: missing // lint-expect:")
                    continue
                want = sorted(exp_m.group(1).split(","))
            if got != want:
                failures.append(
                    f"{kind}/{name} (as {rel}): expected rules {want}, "
                    f"got {got}")
    for f in failures:
        print(f"avdb-lint self-test: FAIL {f}")
    if failures:
        return 1
    print(f"avdb-lint self-test: {checked} fixtures ok")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/, tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="check the rule engine against the fixtures")
    args = parser.parse_args()
    root = os.path.abspath(args.root)
    if args.self_test:
        return run_self_test(root)
    return run_lint(root)


if __name__ == "__main__":
    sys.exit(main())

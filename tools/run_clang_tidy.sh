#!/usr/bin/env sh
# Runs clang-tidy (config: .clang-tidy at the repo root) over every library
# source file, using the compile database from a configured build tree.
#
#   tools/run_clang_tidy.sh [build-dir]     # default build dir: ./build
#
# Wired as the optional `tidy` ctest when clang-tidy is found; CMake
# exports compile_commands.json unconditionally (CMAKE_EXPORT_COMPILE_COMMANDS).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: $build_dir/compile_commands.json not found." >&2
  echo "Configure first: cmake -B \"$build_dir\" -S \"$repo_root\"" >&2
  exit 2
fi

rc=0
for f in "$repo_root"/src/*/*.cc; do
  clang-tidy -p "$build_dir" --quiet "$f" || rc=1
done

if [ "$rc" -ne 0 ]; then
  echo "clang-tidy: findings above (WarningsAsErrors promotes all)" >&2
fi
exit "$rc"

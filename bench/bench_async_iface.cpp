// Ablation — §3.3 "client interface: should be asynchronous, stream-based".
//
// The same playback request served two ways:
//   A. call-by-value ("conventional database"): the client issues a request
//      and receives the complete value in the reply, blocking until the
//      whole transfer finishes, then plays locally;
//   B. stream redirection (the paper's interface): the client binds the
//      value to a database source, connects it to its sink, starts the
//      stream, and proceeds with other work.
//
// The table reports time-to-first-frame and total client-blocked time —
// the two numbers §3.3's argument turns on.

#include <cstdio>
#include <iostream>

#include "activity/sinks.h"
#include "base/logging.h"
#include "base/strings.h"
#include "db/database.h"
#include "media/synthetic.h"

using namespace avdb;

namespace {

const MediaDataType kType = MediaDataType::RawVideo(320, 240, 8, Rational(15));
constexpr int kFrames = 90;  // 6 s of video

struct InterfaceReport {
  double first_frame_s = 0;
  double blocked_s = 0;
  double total_s = 0;
};

}  // namespace

int main() {
  std::cout << "==============================================================\n"
               "Client-interface experiment: call-by-value vs stream-based\n"
               "==============================================================\n\n"
               "workload: play a 6 s, 320x240x8@15 value over 10 Mb/s "
               "Ethernet\n\n";

  InterfaceReport by_value;
  InterfaceReport streamed;

  // --- A: issue-request / receive-reply ---------------------------------------
  {
    AvDatabase db;
    AVDB_MUST(db.AddDevice("disk0", DeviceProfile::MagneticDisk()));
    auto channel = db.AddChannel("net", Channel::Profile::Ethernet10()).value();
    ClassDef clip_class("Clip");
    AVDB_MUST(clip_class.AddAttribute({"footage", AttrType::kVideo, {}, {}}));
    AVDB_MUST(db.DefineClass(clip_class));
    auto value = synthetic::GenerateVideo(
                     kType, kFrames, synthetic::VideoPattern::kMovingBox)
                     .value();
    Oid oid = db.NewObject("Clip").value();
    AVDB_MUST(db.SetMediaAttribute(oid, "footage", *value, "disk0"));

    // The reply contains all the data: read the whole blob from disk, then
    // ship it across the network in one transfer; the client blocks.
    const auto blob_name =
        db.MediaHistory(oid, "footage").value().back().blob_name;
    auto read = db.devices().Fetch(blob_name).value();
    const int64_t disk_done_ns = VirtualClock::ToNs(read.duration);
    const int64_t reply_ns =
        channel->Transfer(disk_done_ns,
                          static_cast<int64_t>(read.data.size()));
    by_value.blocked_s = reply_ns / 1e9;
    // Local playback: first frame as soon as the reply lands.
    by_value.first_frame_s = reply_ns / 1e9;
    by_value.total_s = reply_ns / 1e9 + kFrames / 15.0;
  }

  // --- B: bind / connect / start (the paper's interface) ----------------------
  {
    AvDatabase db;
    AVDB_MUST(db.AddDevice("disk0", DeviceProfile::MagneticDisk()));
    AVDB_MUST(db.AddChannel("net", Channel::Profile::Ethernet10()));
    ClassDef clip_class("Clip");
    AVDB_MUST(clip_class.AddAttribute({"footage", AttrType::kVideo, {}, {}}));
    AVDB_MUST(db.DefineClass(clip_class));
    auto value = synthetic::GenerateVideo(
                     kType, kFrames, synthetic::VideoPattern::kMovingBox)
                     .value();
    Oid oid = db.NewObject("Clip").value();
    AVDB_MUST(db.SetMediaAttribute(oid, "footage", *value, "disk0"));

    auto stream = db.NewSourceFor("client", oid, "footage").value();
    auto window =
        VideoWindow::Create("win", ActivityLocation::kClient, db.env(),
                            VideoQuality(320, 240, 8, Rational(15)));
    AVDB_MUST(db.graph().Add(window));
    AVDB_MUST(db.NewConnection(stream.source, VideoSource::kPortOut, window.get(),
                     VideoWindow::kPortIn, "net"));
    AVDB_MUST(db.StartStream(stream));
    db.RunUntilIdle();
    streamed.first_frame_s = window->stats().first_element_ns / 1e9;
    streamed.blocked_s = 0;  // the interface never blocks the client
    streamed.total_s = window->stats().last_element_ns / 1e9;
  }

  std::printf("%-34s %16s %16s %12s\n", "interface", "first-frame(s)",
              "client-blocked(s)", "total(s)");
  std::printf("%-34s %16.2f %16.2f %12.2f\n",
              "A: call-by-value reply", by_value.first_frame_s,
              by_value.blocked_s, by_value.total_s);
  std::printf("%-34s %16.2f %16.2f %12.2f\n",
              "B: stream redirection (paper)", streamed.first_frame_s,
              streamed.blocked_s, streamed.total_s);

  std::printf(
      "\nShape check: the stream-based interface starts presenting within\n"
      "the preroll and never blocks the client; call-by-value blocks for\n"
      "the entire disk+network transfer before the first frame appears.\n");
  return streamed.first_frame_s < by_value.first_frame_s ? 0 : 1;
}

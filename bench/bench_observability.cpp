// Observability overhead — the "free when off" contract.
//
// The obs layer's deal with the streaming stack is: bespoke stats structs
// stay authoritative and cheap, and the registry forwarding they gained is
// one null pointer check when unbound. This bench prices that promise on
// the hottest instrumented path — StreamStats::Record, called once per
// presented element by every sink — against a plain replica of the
// pre-obs accounting with no forwarding members at all.
//
// Three variants, best-of-reps wall time (steady_clock is sanctioned in
// bench/):
//   plain     the old struct, re-declared locally: no obs members
//   disabled  StreamStats unbound (the shipped default) — gate: <2% over
//             plain
//   enabled   StreamStats bound to a registry (counters + one histogram
//             observe per element) — informational, not gated
// A checksum over the accumulated fields is consumed so the optimizer
// cannot delete the loops.
//
// The jitter section exercises JitterModel::Reset between scenarios: one
// model, one RNG stream, three profiles measured back to back — each
// scenario's spike count must start from zero instead of smearing the
// previous scenario's tail into the next report.
//
// Output: BENCH_observability.json. Exit code is non-zero when the
// disabled-path overhead gate fails.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/jitter.h"
#include "sched/stream_stats.h"

using namespace avdb;

namespace {

constexpr int kElements = 2 * 1000 * 1000;  // per rep
constexpr int kReps = 7;                    // best-of to damp scheduler noise

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The pre-obs StreamStats accounting, re-declared without the forwarding
/// members: the baseline the disabled path is gated against. Arithmetic is
/// kept line-for-line identical so the measured delta is the null check,
/// not a different loop body.
struct PlainStats {
  int64_t elements_presented = 0;
  int64_t late_elements = 0;
  int64_t deadline_misses = 0;
  int64_t total_lateness_ns = 0;
  int64_t max_lateness_ns = 0;
  int64_t first_element_ns = -1;
  int64_t last_element_ns = -1;
  int64_t bytes_delivered = 0;
  double smoothed_lateness_ns = 0;

  void Record(int64_t now_ns, int64_t lateness_ns, int64_t bytes) {
    ++elements_presented;
    if (first_element_ns < 0) first_element_ns = now_ns;
    last_element_ns = now_ns;
    bytes_delivered += bytes;
    smoothed_lateness_ns +=
        StreamStats::kLatenessAlpha *
        (static_cast<double>(lateness_ns > 0 ? lateness_ns : 0) -
         smoothed_lateness_ns);
    if (lateness_ns > 0) {
      ++late_elements;
      total_lateness_ns += lateness_ns;
      max_lateness_ns = std::max(max_lateness_ns, lateness_ns);
      if (lateness_ns >= StreamStats::kMissThresholdNs) ++deadline_misses;
    }
  }
};

/// Deterministic lateness pattern: mostly on time, a late tail, the
/// occasional outright miss — the branch mix a real sink sees.
inline int64_t LatenessFor(int i) {
  const int m = i % 16;
  if (m < 10) return -1 * 1000 * 1000;            // early
  if (m < 15) return (m - 9) * 4 * 1000 * 1000;   // 4..24 ms late
  return 60 * 1000 * 1000;                        // past the 50 ms threshold
}

template <typename Stats>
double TimeRecordLoop(Stats& stats, int64_t& checksum) {
  double best = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kElements; ++i) {
      stats.Record(/*now_ns=*/static_cast<int64_t>(i) * 100 * 1000,
                   LatenessFor(i), /*bytes=*/4096);
    }
    best = std::min(best, SecondsSince(start));
    // Consume every accumulated field: anything the checksum does not read
    // the optimizer may delete from one loop but not the other, and the
    // comparison stops being apples to apples.
    checksum += stats.elements_presented + stats.late_elements +
                stats.deadline_misses + stats.total_lateness_ns +
                stats.max_lateness_ns + stats.bytes_delivered +
                stats.last_element_ns +
                static_cast<int64_t>(stats.smoothed_lateness_ns);
  }
  return best;
}

struct JitterScenario {
  std::string name;
  int samples;
  int64_t total_ns;
  int64_t spikes;
  int64_t max_ns;
};

}  // namespace

int main() {
  std::printf("==============================================================\n"
              "Observability overhead: StreamStats::Record, %d elements x %d "
              "reps (best)\n"
              "==============================================================\n\n",
              kElements, kReps);

  int64_t checksum = 0;

  PlainStats plain;
  const double plain_s = TimeRecordLoop(plain, checksum);

  StreamStats disabled;  // never bound: the shipped default
  const double disabled_s = TimeRecordLoop(disabled, checksum);

  obs::MetricsRegistry registry;
  StreamStats enabled;
  enabled.BindTo(&registry);
  const double enabled_s = TimeRecordLoop(enabled, checksum);

  const double disabled_overhead_pct = (disabled_s / plain_s - 1.0) * 100.0;
  const double enabled_overhead_pct = (enabled_s / plain_s - 1.0) * 100.0;
  const double per_element_disabled_ns = disabled_s / kElements * 1e9;
  const double per_element_enabled_ns = enabled_s / kElements * 1e9;

  std::printf("%-10s %12s %16s %12s\n", "variant", "best (s)", "ns/element",
              "overhead");
  std::printf("%-10s %12.4f %16.2f %12s\n", "plain", plain_s,
              plain_s / kElements * 1e9, "--");
  std::printf("%-10s %12.4f %16.2f %11.2f%%\n", "disabled", disabled_s,
              per_element_disabled_ns, disabled_overhead_pct);
  std::printf("%-10s %12.4f %16.2f %11.2f%%\n", "enabled", enabled_s,
              per_element_enabled_ns, enabled_overhead_pct);

  // The gate. Negative overhead (disabled measured faster than plain) is
  // scheduler noise and passes trivially.
  const bool gate_ok = disabled_overhead_pct < 2.0;
  std::printf("\ngate: metrics-disabled overhead %.2f%% < 2%%: %s\n",
              disabled_overhead_pct, gate_ok ? "PASS" : "FAIL");

  // -------------------------------------------------------------------
  // One JitterModel across scenarios, Reset() between them: spike counts
  // are per scenario, and the RNG stream keeps advancing (no replay).
  JitterModel jitter = JitterModel::Workstation(/*seed=*/42);
  jitter.BindTo(&registry);
  const struct { const char* name; int samples; } kScenarios[] = {
      {"warmup", 1000}, {"steady", 10000}, {"spike_tail", 5000}};
  std::vector<JitterScenario> scenarios;
  bool reset_ok = true;
  std::printf("\njitter scenarios (one model, Reset between):\n");
  std::printf("%-12s %10s %10s %12s %12s\n", "scenario", "samples", "spikes",
              "mean (us)", "max (us)");
  for (const auto& sc : kScenarios) {
    jitter.Reset();
    reset_ok = reset_ok && jitter.stats().samples == 0 &&
               jitter.stats().spikes == 0 && jitter.stats().total_ns == 0;
    for (int i = 0; i < sc.samples; ++i) checksum += jitter.Sample();
    const auto& stats = jitter.stats();
    reset_ok = reset_ok && stats.samples == sc.samples;
    scenarios.push_back({sc.name, sc.samples, stats.total_ns, stats.spikes,
                         stats.max_ns});
    std::printf("%-12s %10d %10lld %12.1f %12.1f\n", sc.name, sc.samples,
                static_cast<long long>(stats.spikes),
                static_cast<double>(stats.total_ns) / sc.samples / 1e3,
                static_cast<double>(stats.max_ns) / 1e3);
  }
  std::printf("reset check: per-scenario stats start from zero: %s\n",
              reset_ok ? "YES" : "NO");

  // -------------------------------------------------------------------
  // Export surface: the sizes a scrape or figure pipeline pulls.
  obs::Tracer tracer(256);
  for (int i = 0; i < 300; ++i) {
    tracer.EventAt(i * 1000, "sched", "tick", "bench");
  }
  const size_t prom_bytes = registry.PrometheusText().size();
  const size_t json_bytes = registry.Json().size();
  const size_t trace_bytes = tracer.DumpJson().size();
  std::printf("\nexports: prometheus=%zu B, metrics json=%zu B, "
              "trace dump=%zu B (ring %zu/%zu kept)\n",
              prom_bytes, json_bytes, trace_bytes, tracer.Events().size(),
              static_cast<size_t>(256));

  FILE* out = std::fopen("BENCH_observability.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_observability.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"observability\",\n");
  std::fprintf(out, "  \"elements_per_rep\": %d,\n", kElements);
  std::fprintf(out, "  \"reps\": %d,\n", kReps);
  std::fprintf(out, "  \"plain_seconds\": %.6f,\n", plain_s);
  std::fprintf(out, "  \"disabled_seconds\": %.6f,\n", disabled_s);
  std::fprintf(out, "  \"enabled_seconds\": %.6f,\n", enabled_s);
  std::fprintf(out, "  \"disabled_ns_per_element\": %.3f,\n",
               per_element_disabled_ns);
  std::fprintf(out, "  \"enabled_ns_per_element\": %.3f,\n",
               per_element_enabled_ns);
  std::fprintf(out, "  \"disabled_overhead_pct\": %.3f,\n",
               disabled_overhead_pct);
  std::fprintf(out, "  \"enabled_overhead_pct\": %.3f,\n",
               enabled_overhead_pct);
  std::fprintf(out, "  \"disabled_gate_pct\": 2.0,\n");
  std::fprintf(out, "  \"disabled_gate_ok\": %s,\n",
               gate_ok ? "true" : "false");
  std::fprintf(out, "  \"jitter_reset_ok\": %s,\n", reset_ok ? "true" : "false");
  std::fprintf(out, "  \"jitter_scenarios\": [\n");
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const auto& sc = scenarios[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"samples\": %d, \"spikes\": %lld, "
                 "\"total_ns\": %lld, \"max_ns\": %lld}%s\n",
                 sc.name.c_str(), sc.samples,
                 static_cast<long long>(sc.spikes),
                 static_cast<long long>(sc.total_ns),
                 static_cast<long long>(sc.max_ns),
                 i + 1 < scenarios.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"prometheus_bytes\": %zu,\n", prom_bytes);
  std::fprintf(out, "  \"metrics_json_bytes\": %zu,\n", json_bytes);
  std::fprintf(out, "  \"trace_dump_bytes\": %zu,\n", trace_bytes);
  std::fprintf(out, "  \"checksum\": %lld\n",
               static_cast<long long>(checksum));
  std::fprintf(out, "}\n");
  std::fclose(out);

  return (gate_ok && reset_ok) ? 0 : 1;
}

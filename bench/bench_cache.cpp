// Ablation — buffer memory as a limited resource (§3.3: "system resources
// (buffers, processor cycles, bus bandwidth, network bandwidth) are
// limited").
//
// Two clients watch the *same* stored clip slightly offset in time (the
// second joins two seconds in) — the canonical popular-content workload.
// The shared page cache lets the follower ride the leader's fetches; the
// sweep shows hit rate and total device busy-time against cache size.

#include <cstdio>
#include <iostream>

#include "activity/graph.h"
#include "activity/sinks.h"
#include "activity/sources.h"
#include "base/logging.h"
#include "base/strings.h"
#include "media/synthetic.h"
#include "sched/event_engine.h"
#include "storage/media_store.h"
#include "storage/value_serializer.h"

using namespace avdb;

namespace {

const MediaDataType kType = MediaDataType::RawVideo(176, 144, 8, Rational(10));
constexpr int kFrames = 80;  // 8 s

struct CacheReport {
  double hit_rate = 0;
  double device_busy_s = 0;
  int64_t late_frames = 0;
};

CacheReport Run(int64_t cache_bytes) {
  EventEngine engine;
  ActivityEnv env{&engine, nullptr};
  ActivityGraph graph(env);
  auto device =
      std::make_shared<BlockDevice>("disk0", DeviceProfile::MagneticDisk());
  auto cache = cache_bytes > 0 ? std::make_shared<BufferCache>(cache_bytes)
                               : nullptr;
  MediaStore store(device, cache);
  ServiceQueue queue("disk0");

  auto value = synthetic::GenerateVideo(kType, kFrames,
                                        synthetic::VideoPattern::kMovingBox)
                   .value();
  AVDB_MUST(store.Put("clip", value_serializer::Serialize(*value).value()));

  for (int client = 0; client < 2; ++client) {
    SourceOptions options;
    options.store = &store;
    options.blob_name = "clip";
    options.device_queue = &queue;
    // The second client joins 2 s later.
    options.start_offset = WorldTime::FromSeconds(client * 2);
    auto source = VideoSource::Create("src" + std::to_string(client),
                                      ActivityLocation::kDatabase, env,
                                      options);
    AVDB_MUST(source->Bind(value, VideoSource::kPortOut));
    auto window = VideoWindow::Create(
        "win" + std::to_string(client), ActivityLocation::kClient, env,
        VideoQuality(176, 144, 8, Rational(10)));
    AVDB_MUST(graph.Add(source));
    AVDB_MUST(graph.Add(window));
    AVDB_MUST(graph.Connect(source.get(), VideoSource::kPortOut, window.get(),
                  VideoWindow::kPortIn));
  }
  AVDB_MUST(graph.StartAll());
  graph.RunUntilIdle();

  CacheReport report;
  report.hit_rate = cache != nullptr ? cache->HitRate() : 0.0;
  report.device_busy_s = device->stats().busy_time.ToSecondsF();
  for (const auto& activity : graph.activities()) {
    if (auto* window = dynamic_cast<VideoWindow*>(activity.get())) {
      report.late_frames += window->stats().late_elements;
    }
  }
  return report;
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
               "Buffer-cache experiment: two staggered viewers of one clip\n"
               "==============================================================\n\n"
               "clip: 176x144x8@10, 8 s (~2 MB stored); viewer 2 joins at "
               "t=2 s\n\n";

  std::printf("%-14s %12s %18s %12s\n", "cache", "hit-rate",
              "device-busy(s)", "late-frames");
  for (int64_t kb : {0, 256, 1024, 4096}) {
    const CacheReport report = Run(kb * 1024);
    std::printf("%-14s %12.2f %18.2f %12lld\n",
                kb == 0 ? "none" : FormatBytes(kb * 1024).c_str(),
                report.hit_rate, report.device_busy_s,
                static_cast<long long>(report.late_frames));
  }
  std::printf(
      "\nShape check: a cache big enough to hold the inter-viewer gap\n"
      "(2 s of video ~ 500 KB) halves device busy-time — the follower is\n"
      "served from buffer memory; an undersized cache buys nothing because\n"
      "pages are evicted before the follower reaches them.\n");
  return 0;
}

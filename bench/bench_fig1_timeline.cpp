// Figure 1 — "Timeline diagram for a Newscast.clip value."
//
// Regenerates the paper's timeline artifact from a live Newscast instance
// and then *measures* what the timeline is for: the database coordinating
// presentation of temporally-composed tracks (§3.3 scheduling). A 4-track
// clip plays under injected workstation jitter, with the resynchronization
// controller off and on; the table reports per-track start accuracy and
// inter-track skew. Paper claim: "AV values tend to jitter and require
// regular resynchronization."

#include <cstdio>
#include <iostream>

#include "activity/composite.h"
#include "activity/sinks.h"
#include "base/logging.h"
#include "base/strings.h"
#include "db/database.h"
#include "media/synthetic.h"

using namespace avdb;

namespace {

struct TrackReport {
  std::string track;
  int64_t presented = 0;
  int64_t skipped = 0;
  double start_error_ms = 0;
  double mean_late_ms = 0;
};

struct RunReport {
  std::vector<TrackReport> tracks;
  double max_skew_ms = 0;
  double final_skew_ms = 0;
  int64_t resyncs = 0;
};

RunReport Run(bool resync_enabled, uint64_t jitter_seed,
              bool congested_video_link) {
  AvDatabaseConfig config;
  config.jitter_seed = jitter_seed;
  AvDatabase db(config);
  AVDB_MUST(db.AddDevice("disk0", DeviceProfile::MagneticDisk()));
  AVDB_MUST(db.AddDevice("disk1", DeviceProfile::MagneticDisk()));
  // In the stressed configuration the video track crosses a T1 that barely
  // carries its 192 KB/s, pre-loaded with a burst, so the track starts
  // behind and stays behind unless resynchronization skips it forward. The
  // clean configuration uses a comfortable Ethernet link.
  AVDB_MUST(db.AddChannel("video-link", congested_video_link
                                  ? Channel::Profile::T1()
                                  : Channel::Profile::Ethernet10()));
  if (congested_video_link) {
    db.GetChannel("video-link").value()->Transfer(0, 150 * 1000);
  }

  ClassDef newscast("Newscast");
  AVDB_MUST(newscast.AddAttribute({"title", AttrType::kString, {}, {}}));
  TcompDef clip;
  clip.name = "clip";
  clip.tracks.push_back({"videoTrack", AttrType::kVideo, {}, {}});
  clip.tracks.push_back({"englishTrack", AttrType::kAudio, {}, {}});
  clip.tracks.push_back({"frenchTrack", AttrType::kAudio, {}, {}});
  clip.tracks.push_back({"subtitleTrack", AttrType::kText, {}, {}});
  AVDB_MUST(newscast.AddTcomp(clip));
  AVDB_MUST(db.DefineClass(newscast));

  const auto vtype = MediaDataType::RawVideo(160, 120, 8, Rational(10));
  auto video = synthetic::GenerateVideo(vtype, 60,
                                        synthetic::VideoPattern::kMovingBox)
                   .value();
  auto english =
      synthetic::GenerateAudio(MediaDataType::VoiceAudio(), 4 * 8000,
                               synthetic::AudioPattern::kSpeechLike, 1)
          .value();
  auto french =
      synthetic::GenerateAudio(MediaDataType::VoiceAudio(), 4 * 8000,
                               synthetic::AudioPattern::kSpeechLike, 2)
          .value();
  auto subtitles =
      synthetic::GenerateSubtitles(MediaDataType::Text(Rational(10)), 5, 6, 2,
                                   "Sub")
          .value();

  Oid oid = db.NewObject("Newscast").value();
  AVDB_MUST(db.SetScalar(oid, "title", std::string("Fig1")));
  // The Fig. 1 shape: video spans the whole clip, other tracks [t1, t2).
  AVDB_MUST(db.SetTcompTrack(oid, "clip", "videoTrack", *video, "disk0", WorldTime(),
                   WorldTime::FromSeconds(6)));
  AVDB_MUST(db.SetTcompTrack(oid, "clip", "englishTrack", *english, "disk1",
                   WorldTime::FromSeconds(2), WorldTime::FromSeconds(4)));
  AVDB_MUST(db.SetTcompTrack(oid, "clip", "frenchTrack", *french, "disk1",
                   WorldTime::FromSeconds(2), WorldTime::FromSeconds(4)));
  AVDB_MUST(db.SetTcompTrack(oid, "clip", "subtitleTrack", *subtitles, "disk1",
                   WorldTime::FromSeconds(2), WorldTime::FromSeconds(4)));

  static bool printed_timeline = false;
  if (!printed_timeline) {
    printed_timeline = true;
    std::cout << "Fig. 1 timeline regenerated from the stored instance\n"
              << "(videoTrack t0..t2, other tracks t1..t2):\n\n"
              << db.GetTcomp(oid, "clip").value()->timeline.Render(52)
              << "\n";
  }

  auto sink = MultiSink::Create("sink", ActivityLocation::kClient, db.env());
  SyncController::Params params;
  if (!resync_enabled) {
    // Effectively disable skipping.
    params.skew_threshold_ns = int64_t{1} << 60;
  }
  *sink->sync() = SyncController(params);

  auto audio_en = AudioSink::Create("en", ActivityLocation::kClient, db.env(),
                                    AudioQuality::kVoice);
  auto audio_fr = AudioSink::Create("fr", ActivityLocation::kClient, db.env(),
                                    AudioQuality::kVoice);
  auto window = VideoWindow::Create("win", ActivityLocation::kClient,
                                    db.env(),
                                    VideoQuality(160, 120, 8, Rational(10)));
  auto subs = TextSink::Create("subs", ActivityLocation::kClient, db.env());
  AVDB_MUST(sink->InstallSynced(audio_en, "englishTrack", /*master=*/true));
  AVDB_MUST(sink->InstallSynced(audio_fr, "frenchTrack"));
  AVDB_MUST(sink->InstallSynced(window, "videoTrack"));
  AVDB_MUST(sink->InstallSynced(subs, "subtitleTrack"));
  AVDB_MUST(db.graph().Add(sink));

  auto stream = db.NewMultiSourceFor("bench", oid, "clip", sink->sync());
  if (!stream.ok()) {
    std::cerr << "stream failed: " << stream.status() << "\n";
    return {};
  }
  auto* source = stream.value().source;
  subs->FindPort(TextSink::kPortIn)
      .value()
      ->set_data_type(
          source->FindPort("subtitleTrack_out").value()->data_type());
  AVDB_MUST(db.graph()
      .Connect(source->FindPort("videoTrack_out").value()->owner(),
               "video_out", sink.get(), "videoTrack_in",
               db.GetChannel("video-link").value()));
  AVDB_MUST(db.NewConnection(source, "englishTrack_out", sink.get(), "englishTrack_in"));
  AVDB_MUST(db.NewConnection(source, "frenchTrack_out", sink.get(), "frenchTrack_in"));
  AVDB_MUST(db.NewConnection(source, "subtitleTrack_out", sink.get(),
                   "subtitleTrack_in"));
  AVDB_MUST(db.StartStream(stream.value()));
  db.RunUntilIdle();

  RunReport report;
  report.max_skew_ms = sink->sync()->stats().max_observed_skew_ns / 1e6;
  report.final_skew_ms = sink->sync()->CurrentMaxSkewNs() / 1e6;
  report.resyncs = sink->sync()->stats().resyncs;
  auto add_track = [&](const std::string& name, const StreamStats& stats,
                       double expected_start_s) {
    TrackReport tr;
    tr.track = name;
    tr.presented = stats.elements_presented;
    tr.mean_late_ms = stats.MeanLatenessMs();
    tr.start_error_ms =
        stats.first_element_ns < 0
            ? -1
            : stats.first_element_ns / 1e6 - expected_start_s * 1000;
    report.tracks.push_back(tr);
  };
  // Streams begin after the source preroll (80 ms).
  const double preroll_s = 0.08;
  add_track("videoTrack", window->stats(), preroll_s);
  add_track("englishTrack", audio_en->stats(), preroll_s + 2.0);
  add_track("frenchTrack", audio_fr->stats(), preroll_s + 2.0);
  add_track("subtitleTrack", subs->stats(), preroll_s + 2.0);
  AVDB_MUST(db.StopStream(stream.value()));
  return report;
}

void PrintReport(const char* label, const RunReport& report) {
  std::printf("%s\n", label);
  std::printf("  %-14s %10s %14s %14s\n", "track", "presented",
              "start-err(ms)", "mean-late(ms)");
  for (const auto& t : report.tracks) {
    std::printf("  %-14s %10lld %14.1f %14.2f\n", t.track.c_str(),
                static_cast<long long>(t.presented), t.start_error_ms,
                t.mean_late_ms);
  }
  std::printf("  skew: peak %.1f ms, at end of clip %.1f ms; "
              "resynchronizations: %lld\n\n",
              report.max_skew_ms, report.final_skew_ms,
              static_cast<long long>(report.resyncs));
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
               "Figure 1 experiment: temporal composition + synchronization\n"
               "==============================================================\n\n";

  std::cout << "--- clean platform (no jitter, uncongested) ---\n";
  PrintReport("resync ON", Run(true, 0, false));

  std::cout << "--- stressed platform (workstation jitter + congested video "
               "link) ---\n";
  PrintReport("resync OFF", Run(false, 42, true));
  PrintReport("resync ON ", Run(true, 42, true));

  std::cout << "Shape check (paper's §3.3 claim): without resynchronization\n"
               "the lagging video track stays ~0.8 s behind the audio for the\n"
               "whole clip; with it the track skips frames, halves its mean\n"
               "lateness and ends the clip back in sync.\n";
  return 0;
}

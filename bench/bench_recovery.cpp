// Durability bench — DESIGN.md §9 "Durability model".
//
// Three measurements, all host time (the journal and checksum machinery is
// pure CPU overhead; modeled device time is charged identically either way):
//
//   1. Recovery time vs journal length: Recover() replays the journal and
//      re-reserves every extent; its cost must scale with the journal, not
//      with stored bytes.
//   2. Scrub throughput: page-by-page verification of every stored byte.
//   3. Zero-fault page-checksum overhead on Get/ReadRange: with no injector
//      attached, verification must cost < 5% of a mixed read workload
//      (acceptance gate — exit code 1 on violation).
//
// Output: BENCH_recovery.json.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/logging.h"
#include "base/rng.h"
#include "storage/block_device.h"
#include "storage/buffer_cache.h"
#include "storage/media_store.h"

using namespace avdb;

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Buffer RandomBlob(Rng* rng, int64_t size) {
  Buffer b;
  b.Resize(static_cast<size_t>(size));
  for (int64_t i = 0; i + 8 <= size; i += 8) {
    const uint64_t v = rng->NextU64();
    std::memcpy(b.data() + i, &v, 8);
  }
  return b;
}

// --- 1. recovery time vs journal length ------------------------------------

struct RecoveryPoint {
  int ops = 0;
  int64_t records = 0;
  int64_t journal_bytes = 0;
  int64_t blobs = 0;
  double recover_us = 0;
};

RecoveryPoint MeasureRecovery(int ops) {
  auto dev = std::make_shared<BlockDevice>("bench",
                                           DeviceProfile::MagneticDisk());
  Rng rng(42);
  {
    MediaStore store(dev, nullptr);
    store.Mount(/*journal_bytes=*/1024 * 1024).value();
    // Put-heavy churn: every third op deletes the previous blob, so the
    // journal carries a mix of put and delete records.
    for (int i = 0; i < ops; ++i) {
      // A failed op here would silently shrink the journal the benchmark
      // claims to measure — abort loudly instead.
      if (i % 3 == 2) {
        AVDB_CHECK(store.Delete("b" + std::to_string(i - 1)).ok());
      } else {
        AVDB_CHECK(
            store.Put("b" + std::to_string(i), RandomBlob(&rng, 16 * 1024))
                .ok());
      }
    }
  }
  MediaStore revived(dev, nullptr);
  RecoveryPoint point;
  point.ops = ops;
  // Recover() is idempotent: time repeated runs and keep the fastest.
  double best_ms = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    const double t0 = NowMs();
    auto report = revived.Recover();
    const double t1 = NowMs();
    if (!report.ok()) {
      std::printf("RECOVERY FAILED: %s\n", report.status().message().c_str());
      std::exit(1);
    }
    best_ms = std::min(best_ms, t1 - t0);
    point.records = report.value().records_replayed;
    point.journal_bytes = report.value().journal_bytes_scanned;
    point.blobs = report.value().blobs;
  }
  point.recover_us = best_ms * 1000.0;
  return point;
}

// --- 2. scrub throughput ----------------------------------------------------

struct ScrubPoint {
  int64_t bytes = 0;
  int64_t pages = 0;
  double host_ms = 0;
  double mb_per_s = 0;
  int64_t corrupt_found = 0;  // sanity: 1 after the deliberate corruption
};

ScrubPoint MeasureScrub() {
  auto dev = std::make_shared<BlockDevice>("bench",
                                           DeviceProfile::MagneticDisk());
  MediaStore store(dev, nullptr);
  store.Mount().value();
  Rng rng(7);
  constexpr int kBlobs = 32;
  constexpr int64_t kBlobBytes = 2 * 1024 * 1024;
  for (int i = 0; i < kBlobs; ++i) {
    store.Put("s" + std::to_string(i), RandomBlob(&rng, kBlobBytes)).value();
  }
  ScrubPoint point;
  point.bytes = kBlobs * kBlobBytes;
  const double t0 = NowMs();
  auto clean = store.Scrub();
  const double t1 = NowMs();
  point.host_ms = t1 - t0;
  point.pages = clean.value().pages_scanned;
  point.mb_per_s =
      static_cast<double>(point.bytes) / (1024.0 * 1024.0) /
      (point.host_ms / 1000.0);
  // Sanity (untimed): a flipped media byte is found and quarantined.
  Buffer junk(1, 0xFF);
  auto blob = store.Lookup("s0").value();
  dev->Write(0, blob->extents[0].offset + 99, junk).value();
  auto dirty = store.Scrub();
  point.corrupt_found =
      static_cast<int64_t>(dirty.value().corrupt_pages.size());
  return point;
}

// --- 3. zero-fault read overhead gate ---------------------------------------

struct OverheadPoint {
  double verify_on_ms = 0;
  double verify_off_ms = 0;
  double overhead_pct = 0;
};

double RunReadWorkload(MediaStore* store, int blobs, int64_t blob_bytes) {
  // Mixed workload: one bulk Get per blob (uncached) plus a sweep of ranged
  // reads (first pass fetches pages into cache, later passes hit).
  double total = 0;
  const double t0 = NowMs();
  for (int i = 0; i < blobs; ++i) {
    auto got = store->Get("o" + std::to_string(i));
    if (!got.ok()) {
      std::printf("GET FAILED: %s\n", got.status().message().c_str());
      std::exit(1);
    }
    total += static_cast<double>(got.value().data.size());
  }
  for (int pass = 0; pass < 3; ++pass) {
    for (int i = 0; i < blobs; ++i) {
      for (int64_t off = 0; off + 256 * 1024 <= blob_bytes;
           off += 256 * 1024) {
        auto range =
            store->ReadRange("o" + std::to_string(i), off, 256 * 1024);
        if (!range.ok()) {
          std::printf("READRANGE FAILED: %s\n",
                      range.status().message().c_str());
          std::exit(1);
        }
        total += static_cast<double>(range.value().data.size());
      }
    }
  }
  (void)total;
  return NowMs() - t0;
}

OverheadPoint MeasureOverhead() {
  constexpr int kBlobs = 8;
  constexpr int64_t kBlobBytes = 4 * 1024 * 1024;
  auto dev = std::make_shared<BlockDevice>("bench",
                                           DeviceProfile::MagneticDisk());
  auto cache = std::make_shared<BufferCache>(64 * 1024 * 1024);
  MediaStore store(dev, cache);  // unmounted: pure read-path comparison
  Rng rng(3);
  for (int i = 0; i < kBlobs; ++i) {
    store.Put("o" + std::to_string(i), RandomBlob(&rng, kBlobBytes)).value();
  }
  OverheadPoint point;
  double on = 1e18, off = 1e18;
  for (int rep = 0; rep < 5; ++rep) {
    store.set_verify_pages(true);
    on = std::min(on, RunReadWorkload(&store, kBlobs, kBlobBytes));
    store.set_verify_pages(false);
    off = std::min(off, RunReadWorkload(&store, kBlobs, kBlobBytes));
  }
  store.set_verify_pages(true);
  point.verify_on_ms = on;
  point.verify_off_ms = off;
  point.overhead_pct = (on - off) / off * 100.0;
  return point;
}

}  // namespace

int main() {
  std::printf("== recovery time vs journal length ==\n");
  std::printf("%6s %8s %14s %6s %12s\n", "ops", "records", "journal_bytes",
              "blobs", "recover_us");
  std::vector<RecoveryPoint> recovery;
  for (int ops : {8, 32, 128, 512}) {
    recovery.push_back(MeasureRecovery(ops));
    const RecoveryPoint& p = recovery.back();
    std::printf("%6d %8lld %14lld %6lld %12.1f\n", p.ops,
                static_cast<long long>(p.records),
                static_cast<long long>(p.journal_bytes),
                static_cast<long long>(p.blobs), p.recover_us);
  }

  std::printf("\n== scrub throughput ==\n");
  const ScrubPoint scrub = MeasureScrub();
  std::printf("%lld bytes in %.1f ms -> %.0f MB/s (corrupt pages found on "
              "dirty pass: %lld)\n",
              static_cast<long long>(scrub.bytes), scrub.host_ms,
              scrub.mb_per_s, static_cast<long long>(scrub.corrupt_found));

  std::printf("\n== zero-fault read overhead (page checksums on vs off) ==\n");
  const OverheadPoint overhead = MeasureOverhead();
  std::printf("verify on %.1f ms, off %.1f ms -> overhead %.2f%%\n",
              overhead.verify_on_ms, overhead.verify_off_ms,
              overhead.overhead_pct);

  FILE* out = std::fopen("BENCH_recovery.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"recovery_scaling\": [\n");
    for (size_t i = 0; i < recovery.size(); ++i) {
      const RecoveryPoint& p = recovery[i];
      std::fprintf(out,
                   "    {\"ops\": %d, \"records\": %lld, \"journal_bytes\": "
                   "%lld, \"blobs\": %lld, \"recover_us\": %.1f}%s\n",
                   p.ops, static_cast<long long>(p.records),
                   static_cast<long long>(p.journal_bytes),
                   static_cast<long long>(p.blobs), p.recover_us,
                   i + 1 < recovery.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"scrub\": {\"bytes\": %lld, \"pages\": %lld, "
                 "\"host_ms\": %.2f, \"mb_per_s\": %.1f, "
                 "\"corrupt_found\": %lld},\n",
                 static_cast<long long>(scrub.bytes),
                 static_cast<long long>(scrub.pages), scrub.host_ms,
                 scrub.mb_per_s, static_cast<long long>(scrub.corrupt_found));
    std::fprintf(out,
                 "  \"read_overhead\": {\"verify_on_ms\": %.2f, "
                 "\"verify_off_ms\": %.2f, \"overhead_pct\": %.2f, "
                 "\"gate_pct\": 5.0}\n}\n",
                 overhead.verify_on_ms, overhead.verify_off_ms,
                 overhead.overhead_pct);
    std::fclose(out);
    std::printf("\nwrote BENCH_recovery.json\n");
  }

  // Acceptance gates.
  int failures = 0;
  auto gate = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::printf("ACCEPTANCE FAIL: %s\n", what);
      ++failures;
    }
  };
  gate(overhead.overhead_pct < 5.0,
       "page-checksum overhead on Get/ReadRange < 5%");
  gate(scrub.corrupt_found == 1, "scrub finds the one corrupted page");
  gate(recovery.back().records >= 512,
       "512-op journal replayed in full");
  if (failures == 0) std::printf("\nAll acceptance gates passed.\n");
  return failures == 0 ? 0 : 1;
}

// Session scale — idle sessions must be truly free.
//
// ROADMAP item 1's target is hundreds of thousands of concurrent streams
// on one engine. That only works if the scheduler's cost is O(1) per
// *active* element, not per session: a torn-down session must remove its
// pending events (no `std::function` tombstones riding the heap until
// their deadlines), event dispatch must not malloc per closure, and
// admission must not walk a string map per demand.
//
// The sweep plays N identical tiny video sessions (one shared synthetic
// value, source -> window, 6 frames at 10 fps) in virtual time for
// N = 10^2 .. 10^5 and gates on:
//
//   events/frame flat    events-run-per-presented-frame at 10^5 within
//                        10% (+0.1 absolute) of the 10^2 ratio — per-frame
//                        dispatch work must not grow with session count
//   p99 miss rate == 0   jitterless local sessions must never miss
//   engine bytes/session engine-owned memory (heap + slot table + free
//                        list) <= 2 KiB per session at 10^5
//   teardown drains      after StartAll + half the stream + StopAll at
//                        10^5, PendingEvents() returns to 0 (cancellation
//                        actually removed the events; RunUntilIdle then
//                        executes nothing)
//   over_releases == 0   the interned-id admission churn phase (10^5
//                        admit/release pairs over 64 sharded pools) keeps
//                        perfectly balanced accounting
//
// Wall-clock (steady_clock, sanctioned in bench/) is reported for context;
// the gates are structural, so the bench is deterministic.
//
// Output: BENCH_scale.json. Exit code is non-zero when any gate fails.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "activity/graph.h"
#include "activity/sinks.h"
#include "activity/sources.h"
#include "media/synthetic.h"
#include "sched/admission.h"
#include "sched/event_engine.h"

using namespace avdb;

namespace {

constexpr int kFrames = 6;
constexpr int kSweep[] = {100, 1000, 10000, 100000};
constexpr int kMaxSessions = 100000;
constexpr int kAdmissionPools = 64;
constexpr double kBytesPerSessionGate = 2048.0;
constexpr double kEventsPerFrameSlack = 0.10;  // relative, plus 0.1 absolute

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

MediaDataType TinyVideoType() {
  return MediaDataType::RawVideo(4, 4, 8, Rational(10));
}

struct Fleet {
  EventEngine engine;
  std::unique_ptr<ActivityGraph> graph;
  std::vector<std::shared_ptr<VideoWindow>> windows;
};

/// N identical sessions: one shared tiny value, source -> window, local
/// connection (no channel, no jitter) so presentation is deterministic.
std::unique_ptr<Fleet> BuildFleet(int sessions,
                                  const std::shared_ptr<RawVideoValue>& value,
                                  double* build_seconds) {
  const auto t0 = std::chrono::steady_clock::now();
  auto fleet = std::make_unique<Fleet>();
  fleet->graph = std::make_unique<ActivityGraph>(
      ActivityEnv{&fleet->engine, nullptr});
  fleet->windows.reserve(sessions);
  const MediaDataType type = value->type();
  const VideoQuality quality(type.width(), type.height(), type.depth_bits(),
                             type.element_rate());
  for (int i = 0; i < sessions; ++i) {
    const std::string id = std::to_string(i);
    auto source = VideoSource::Create("src" + id, ActivityLocation::kDatabase,
                                      fleet->graph->env());
    if (!source->Bind(value, VideoSource::kPortOut).ok()) return nullptr;
    auto window = VideoWindow::Create("win" + id, ActivityLocation::kClient,
                                      fleet->graph->env(), quality);
    if (!fleet->graph->Add(source).ok()) return nullptr;
    if (!fleet->graph->Add(window).ok()) return nullptr;
    if (!fleet->graph
             ->Connect(source.get(), VideoSource::kPortOut, window.get(),
                       VideoWindow::kPortIn)
             .ok()) {
      return nullptr;
    }
    fleet->windows.push_back(std::move(window));
  }
  *build_seconds = SecondsSince(t0);
  return fleet;
}

struct SweepRow {
  int sessions = 0;
  int64_t events_run = 0;
  int64_t frames_presented = 0;
  double events_per_frame = 0;
  double p99_miss_rate = 0;
  double bytes_per_session = 0;
  double build_seconds = 0;
  double run_seconds = 0;
};

bool RunSweepPoint(int sessions, const std::shared_ptr<RawVideoValue>& value,
                   SweepRow* row) {
  double build_seconds = 0;
  auto fleet = BuildFleet(sessions, value, &build_seconds);
  if (fleet == nullptr || !fleet->graph->StartAll().ok()) return false;
  const auto t0 = std::chrono::steady_clock::now();
  fleet->graph->RunUntilIdle();
  row->run_seconds = SecondsSince(t0);
  row->build_seconds = build_seconds;
  row->sessions = sessions;
  row->events_run = fleet->engine.EventsRun();
  std::vector<double> miss_rates;
  miss_rates.reserve(fleet->windows.size());
  for (const auto& w : fleet->windows) {
    row->frames_presented += w->stats().elements_presented;
    miss_rates.push_back(w->stats().MissRate());
  }
  if (row->frames_presented == 0) return false;
  row->events_per_frame = static_cast<double>(row->events_run) /
                          static_cast<double>(row->frames_presented);
  std::sort(miss_rates.begin(), miss_rates.end());
  row->p99_miss_rate =
      miss_rates[static_cast<size_t>(0.99 * (miss_rates.size() - 1))];
  row->bytes_per_session =
      static_cast<double>(fleet->engine.MemoryFootprintBytes()) /
      static_cast<double>(sessions);
  return true;
}

struct TeardownResult {
  size_t pending_before = 0;
  size_t pending_after = 0;
  size_t heap_entries_after = 0;
  int64_t cancelled = 0;
  int64_t compactions = 0;
  int64_t events_after_stop = 0;
  double stop_seconds = 0;
};

bool RunTeardown(int sessions, const std::shared_ptr<RawVideoValue>& value,
                 TeardownResult* out) {
  double build_seconds = 0;
  auto fleet = BuildFleet(sessions, value, &build_seconds);
  if (fleet == nullptr || !fleet->graph->StartAll().ok()) return false;
  // Half the 0.6 s stream, then the whole fleet aborts at once.
  fleet->graph->RunUntil(WorldTime::FromMillis(300));
  out->pending_before = fleet->engine.PendingEvents();
  const auto t0 = std::chrono::steady_clock::now();
  if (!fleet->graph->StopAll().ok()) return false;
  out->stop_seconds = SecondsSince(t0);
  out->pending_after = fleet->engine.PendingEvents();
  out->heap_entries_after = fleet->engine.HeapEntries();
  out->cancelled = fleet->engine.EventsCancelled();
  out->compactions = fleet->engine.Compactions();
  out->events_after_stop = fleet->engine.RunUntilIdle();
  return true;
}

struct AdmissionResult {
  double id_admits_per_sec = 0;
  double string_admits_per_sec = 0;
  int64_t over_releases = -1;
  bool all_admitted = false;
};

bool RunAdmissionChurn(int sessions, AdmissionResult* out) {
  AdmissionController ac;
  std::vector<PoolId> ids;
  std::vector<std::string> names;
  for (int i = 0; i < kAdmissionPools; ++i) {
    names.push_back("pool" + std::to_string(i));
    if (!ac.RegisterPool(names.back(), 1e12).ok()) return false;
    ids.push_back(ac.FindPool(names.back()));
  }
  // Interned-id path: the per-session demands carry dense ids, so each
  // admit touches its pools by index.
  std::vector<AdmissionTicket> tickets;
  tickets.reserve(sessions);
  bool ok = true;
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < sessions; ++s) {
    auto t = ac.Admit(std::vector<PooledDemand>{
        {ids[s % kAdmissionPools], 1.0},
        {ids[(s * 7 + 3) % kAdmissionPools], 2.0}});
    if (!t.ok()) ok = false;
    tickets.push_back(std::move(t).value());
  }
  for (auto& t : tickets) ac.Release(&t);
  out->id_admits_per_sec =
      static_cast<double>(sessions) / SecondsSince(t0);
  // String path for comparison: same demands, name-keyed.
  tickets.clear();
  const auto t1 = std::chrono::steady_clock::now();
  for (int s = 0; s < sessions; ++s) {
    auto t = ac.Admit(std::vector<ResourceDemand>{
        {names[s % kAdmissionPools], 1.0},
        {names[(s * 7 + 3) % kAdmissionPools], 2.0}});
    if (!t.ok()) ok = false;
    tickets.push_back(std::move(t).value());
  }
  for (auto& t : tickets) ac.Release(&t);
  out->string_admits_per_sec =
      static_cast<double>(sessions) / SecondsSince(t1);
  out->over_releases = ac.stats().over_releases;
  out->all_admitted = ok;
  return true;
}

}  // namespace

int main() {
  auto value =
      synthetic::GenerateVideo(TinyVideoType(), kFrames,
                               synthetic::VideoPattern::kMovingBox)
          .value();

  std::vector<SweepRow> rows;
  printf("session sweep: %d frames @ 10 fps per session, shared value\n\n",
         kFrames);
  printf("%9s %12s %12s %11s %9s %11s %9s %9s\n", "sessions", "events",
         "frames", "ev/frame", "p99miss", "engB/sess", "build_s", "run_s");
  for (int sessions : kSweep) {
    SweepRow row;
    if (!RunSweepPoint(sessions, value, &row)) {
      fprintf(stderr, "sweep point %d failed to run\n", sessions);
      return 1;
    }
    printf("%9d %12lld %12lld %11.3f %9.4f %11.1f %9.3f %9.3f\n",
           row.sessions, static_cast<long long>(row.events_run),
           static_cast<long long>(row.frames_presented), row.events_per_frame,
           row.p99_miss_rate, row.bytes_per_session, row.build_seconds,
           row.run_seconds);
    rows.push_back(row);
  }

  TeardownResult teardown;
  if (!RunTeardown(kMaxSessions, value, &teardown)) {
    fprintf(stderr, "teardown phase failed to run\n");
    return 1;
  }
  printf("\nmass teardown at %d sessions: pending %zu -> %zu "
         "(heap entries %zu, %lld cancelled, %lld compactions) in %.3f s; "
         "%lld events ran after stop\n",
         kMaxSessions, teardown.pending_before, teardown.pending_after,
         teardown.heap_entries_after,
         static_cast<long long>(teardown.cancelled),
         static_cast<long long>(teardown.compactions), teardown.stop_seconds,
         static_cast<long long>(teardown.events_after_stop));

  AdmissionResult admission;
  if (!RunAdmissionChurn(kMaxSessions, &admission)) {
    fprintf(stderr, "admission phase failed to run\n");
    return 1;
  }
  printf("\nadmission churn: %d sessions x 2 demands over %d pools: "
         "%.0f admits/s interned vs %.0f admits/s string-keyed (%.2fx), "
         "%lld over-releases\n",
         kMaxSessions, kAdmissionPools, admission.id_admits_per_sec,
         admission.string_admits_per_sec,
         admission.id_admits_per_sec / admission.string_admits_per_sec,
         static_cast<long long>(admission.over_releases));

  // ------------------------------------------------------------- gates ----
  const SweepRow& small = rows.front();
  const SweepRow& large = rows.back();
  const bool gate_events_flat =
      large.events_per_frame <=
      small.events_per_frame * (1 + kEventsPerFrameSlack) + 0.1;
  const bool gate_p99 = large.p99_miss_rate == 0.0;
  const bool gate_bytes = large.bytes_per_session <= kBytesPerSessionGate;
  const bool gate_teardown = teardown.pending_after == 0 &&
                             teardown.cancelled > 0 &&
                             teardown.events_after_stop == 0;
  const bool gate_admission =
      admission.all_admitted && admission.over_releases == 0;

  printf("\ngates:\n");
  printf("  events/frame flat 10^2 -> 10^5 (%.3f -> %.3f): %s\n",
         small.events_per_frame, large.events_per_frame,
         gate_events_flat ? "PASS" : "FAIL");
  printf("  p99 deadline-miss rate at 10^5 == 0 (%.4f): %s\n",
         large.p99_miss_rate, gate_p99 ? "PASS" : "FAIL");
  printf("  engine bytes/session at 10^5 <= %.0f (%.1f): %s\n",
         kBytesPerSessionGate, large.bytes_per_session,
         gate_bytes ? "PASS" : "FAIL");
  printf("  teardown drains pending to 0 (%zu, %lld ran after stop): %s\n",
         teardown.pending_after,
         static_cast<long long>(teardown.events_after_stop),
         gate_teardown ? "PASS" : "FAIL");
  printf("  admission churn balanced (%lld over-releases): %s\n",
         static_cast<long long>(admission.over_releases),
         gate_admission ? "PASS" : "FAIL");

  FILE* out = fopen("BENCH_scale.json", "w");
  if (out != nullptr) {
    fprintf(out, "{\n  \"sweep\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& r = rows[i];
      fprintf(out,
              "    {\"sessions\": %d, \"events_run\": %lld, "
              "\"frames_presented\": %lld, \"events_per_frame\": %.4f, "
              "\"p99_miss_rate\": %.6f, \"engine_bytes_per_session\": %.1f, "
              "\"build_seconds\": %.4f, \"run_seconds\": %.4f}%s\n",
              r.sessions, static_cast<long long>(r.events_run),
              static_cast<long long>(r.frames_presented), r.events_per_frame,
              r.p99_miss_rate, r.bytes_per_session, r.build_seconds,
              r.run_seconds, i + 1 < rows.size() ? "," : "");
    }
    fprintf(out, "  ],\n");
    fprintf(out,
            "  \"teardown\": {\"sessions\": %d, \"pending_before\": %zu, "
            "\"pending_after\": %zu, \"heap_entries_after\": %zu, "
            "\"cancelled\": %lld, \"compactions\": %lld, "
            "\"events_after_stop\": %lld, \"stop_seconds\": %.4f},\n",
            kMaxSessions, teardown.pending_before, teardown.pending_after,
            teardown.heap_entries_after,
            static_cast<long long>(teardown.cancelled),
            static_cast<long long>(teardown.compactions),
            static_cast<long long>(teardown.events_after_stop),
            teardown.stop_seconds);
    fprintf(out,
            "  \"admission\": {\"sessions\": %d, \"pools\": %d, "
            "\"id_admits_per_sec\": %.0f, \"string_admits_per_sec\": %.0f, "
            "\"over_releases\": %lld},\n",
            kMaxSessions, kAdmissionPools, admission.id_admits_per_sec,
            admission.string_admits_per_sec,
            static_cast<long long>(admission.over_releases));
    fprintf(out,
            "  \"gates\": {\"events_per_frame_flat\": %s, "
            "\"p99_miss_rate_zero\": %s, \"bytes_per_session\": %s, "
            "\"teardown_drains\": %s, \"admission_balanced\": %s}\n}\n",
            gate_events_flat ? "true" : "false", gate_p99 ? "true" : "false",
            gate_bytes ? "true" : "false", gate_teardown ? "true" : "false",
            gate_admission ? "true" : "false");
    fclose(out);
    printf("\nwrote BENCH_scale.json\n");
  }

  const bool all = gate_events_flat && gate_p99 && gate_bytes &&
                   gate_teardown && gate_admission;
  return all ? 0 : 1;
}

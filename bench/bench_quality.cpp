// Ablation — §4.1 "data representation: applications should deal with
// quality factors" via scalable video.
//
// One value is stored once with the layered (scalable) codec. Clients then
// request three different quality factors; the database maps each factor
// to a layer subset of the same stored representation — "a video value
// encoded at one quality can be viewed at a lower quality by ignoring some
// of the encoded data" ([14] in the paper). The table reports bytes/frame
// actually touched, decode CPU, and picture error per requested quality.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "codec/scalable_codec.h"
#include "media/quality.h"
#include "media/synthetic.h"

using namespace avdb;

int main() {
  std::cout << "==============================================================\n"
               "Quality-factor experiment: one stored value, many qualities\n"
               "==============================================================\n\n";

  const auto stored_type =
      MediaDataType::RawVideo(320, 240, 8, Rational(30));
  auto original = synthetic::GenerateVideo(
                      stored_type, 12, synthetic::VideoPattern::kMovingBox)
                      .value();
  ScalableCodec codec;
  VideoCodecParams params;
  params.quality = 85;
  params.layer_count = 3;
  auto encoded = codec.Encode(*original, params).value();

  std::printf("stored once: %s, %lld bytes total (%.1fx vs raw)\n\n",
              stored_type.ToString().c_str(),
              static_cast<long long>(encoded.TotalBytes()),
              static_cast<double>(original->StoredBytes()) /
                  static_cast<double>(encoded.TotalBytes()));

  struct QualityCase {
    const char* requested;
  };
  const QualityCase cases[] = {
      {"80x60x8@30"},
      {"160x120x8@30"},
      {"320x240x8@30"},
  };

  std::printf("%-16s %8s %14s %14s %12s\n", "requested", "layers",
              "bytes/frame", "decode(ms)", "mean-err");
  for (const auto& c : cases) {
    const VideoQuality quality = VideoQuality::Parse(c.requested).value();
    const int layers = ScalableCodec::LayersForResolution(
        stored_type, quality.width(), quality.height());
    const int64_t bytes =
        ScalableCodec::BytesPerFrameAtLayers(encoded, layers).value();

    auto session = codec.NewDecoderWithLayers(encoded, layers).value();
    const auto start = std::chrono::steady_clock::now();
    double err = 0;
    for (int64_t i = 0; i < 12; ++i) {
      auto frame = session->DecodeFrame(i).value();
      err += frame.MeanAbsoluteError(original->Frame(i).value()).value();
    }
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count() /
        12.0;
    std::printf("%-16s %8d %14lld %14.2f %12.2f\n", c.requested, layers,
                static_cast<long long>(bytes), ms, err / 12.0);
  }

  std::printf(
      "\nShape check: lower requested quality touches fewer stored bytes\n"
      "and decodes faster; full quality recovers the picture closely. The\n"
      "application never named a representation — only quality factors.\n");
  return 0;
}

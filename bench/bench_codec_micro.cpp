// Codec kernel micro-bench + acceptance gates — DESIGN.md §12 "SIMD
// dispatch + zero-copy frame model".
//
// Four measurements on the transform-dominated intra config (QCIF):
//
//   1. Per-kernel ns/op: every entry of the simd::CodecKernels dispatch
//      table, scalar reference vs the runtime-dispatched implementation.
//   2. End-to-end single-thread encode fps vs the pre-PR baseline — the
//      double-precision DCT + divide quantizer + copy-per-plane pipeline
//      this PR replaced, kept alive below as LegacyEncodeFrame so the
//      speedup is measured against the real thing, not a guess.
//      Acceptance gate: dispatched fps >= 2x legacy fps (exit 1).
//   3. Byte identity: every kernel level available in this binary must
//      encode the intra frame and an inter GOP to the exact bytes the
//      scalar reference emits (exit 1 on any diff).
//   4. Steady-state allocations/frame: after one warm-up cycle, a full
//      inter encode+decode cycle must be served entirely from the shared
//      BufferPool — zero pool misses (exit 1 otherwise).
//
// Output: BENCH_codec_micro.json.

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/buffer_pool.h"
#include "codec/bitio.h"
#include "codec/block_transform.h"
#include "codec/inter_codec.h"
#include "codec/intra_codec.h"
#include "codec/simd/kernels.h"
#include "media/frame.h"
#include "media/synthetic.h"

using namespace avdb;

namespace {

constexpr int kWidth = 176;
constexpr int kHeight = 144;
constexpr int kQuality = 75;

double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Defeats dead-code elimination without fencing the timed region.
volatile uint32_t g_sink = 0;
void Sink(uint32_t v) { g_sink = g_sink + v; }

// Best-of-reps ns per call of `fn` (which must already fold its output
// into g_sink).
template <typename Fn>
double MeasureNs(int iters, int reps, Fn&& fn) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowNs();
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, (NowNs() - t0) / iters);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Pre-PR baseline, verbatim from the old block_transform.cc: float DCT-II
// basis, naive triple-loop transform, divide-and-round quantizer, and a
// fresh heap copy of every plane (the ExtractPlane pattern the zero-copy
// pipeline removed). The entropy coder (EncodeBlock) is shared with the
// current pipeline, so the comparison isolates transform + memory traffic.

using Block = block_transform::Block;
using CoeffBlock = block_transform::CoeffBlock;
constexpr int kBS = block_transform::kBlockSize;
constexpr int kBA = block_transform::kBlockArea;

struct LegacyDctTables {
  double basis[kBS][kBS];
  LegacyDctTables() {
    for (int u = 0; u < kBS; ++u) {
      const double a = u == 0 ? std::sqrt(1.0 / kBS) : std::sqrt(2.0 / kBS);
      for (int x = 0; x < kBS; ++x) {
        basis[u][x] = a * std::cos((2 * x + 1) * u * M_PI / (2 * kBS));
      }
    }
  }
};

const LegacyDctTables& LegacyTables() {
  static const LegacyDctTables tables;
  return tables;
}

CoeffBlock LegacyForwardDct(const Block& spatial) {
  const auto& t = LegacyTables();
  double tmp[kBS][kBS];
  for (int y = 0; y < kBS; ++y) {
    for (int u = 0; u < kBS; ++u) {
      double acc = 0;
      for (int x = 0; x < kBS; ++x) acc += t.basis[u][x] * spatial[y * kBS + x];
      tmp[y][u] = acc;
    }
  }
  CoeffBlock out;
  for (int v = 0; v < kBS; ++v) {
    for (int u = 0; u < kBS; ++u) {
      double acc = 0;
      for (int y = 0; y < kBS; ++y) acc += t.basis[v][y] * tmp[y][u];
      out[v * kBS + u] = static_cast<int32_t>(std::lround(acc));
    }
  }
  return out;
}

void LegacyQuantize(CoeffBlock* coeffs, int quality) {
  for (int i = 0; i < kBA; ++i) {
    const int step = block_transform::QuantStep(i, quality);
    const int32_t v = (*coeffs)[i];
    (*coeffs)[i] = v >= 0 ? (v + step / 2) / step : -((-v + step / 2) / step);
  }
}

void LegacyEncodePlane(const std::vector<int16_t>& plane, int width,
                       int height, int quality, BitWriter* out) {
  int32_t dc_predictor = 0;
  for (int by = 0; by < height; by += kBS) {
    for (int bx = 0; bx < width; bx += kBS) {
      Block block;
      for (int y = 0; y < kBS; ++y) {
        const int sy = std::min(by + y, height - 1);
        for (int x = 0; x < kBS; ++x) {
          const int sx = std::min(bx + x, width - 1);
          block[y * kBS + x] = plane[static_cast<size_t>(sy) * width + sx];
        }
      }
      CoeffBlock coeffs = LegacyForwardDct(block);
      LegacyQuantize(&coeffs, quality);
      block_transform::EncodeBlock(coeffs, &dc_predictor, out);
    }
  }
}

Buffer LegacyEncodeFrame(const VideoFrame& frame, int quality) {
  BitWriter writer;
  for (int p = 0; p < frame.plane_count(); ++p) {
    const std::vector<uint8_t> bytes = frame.ExtractPlane(p);  // heap copy
    std::vector<int16_t> centered(bytes.size());               // heap alloc
    for (size_t i = 0; i < bytes.size(); ++i) {
      centered[i] = static_cast<int16_t>(static_cast<int>(bytes[i]) - 128);
    }
    LegacyEncodePlane(centered, frame.width(), frame.height(), quality,
                      &writer);
  }
  return writer.Finish();
}

// ---------------------------------------------------------------------------

struct KernelPoint {
  const char* name;
  double scalar_ns = 0;
  double simd_ns = 0;
  double speedup() const { return simd_ns > 0 ? scalar_ns / simd_ns : 0; }
};

// Times every dispatch-table entry under `k` against realistic inputs: a
// pattern-frame luma plane for the element-wise kernels, a transformed
// block for quant/dequant/idct.
std::vector<KernelPoint> MeasureKernels(const simd::CodecKernels& scalar,
                                        const simd::CodecKernels& active) {
  const VideoFrame frame = synthetic::GeneratePatternFrame(
      kWidth, kHeight, 8, 0, synthetic::VideoPattern::kMovingBox);
  const PlaneView luma = frame.plane(0);
  const size_t n = luma.size();
  const simd::QuantTable& qt = block_transform::QualityQuantTable(kQuality);

  // Shared scratch, written by every timed kernel.
  std::vector<int16_t> i16_a(n), i16_b(n), i16_out(n);
  std::vector<uint8_t> u8_out(n);
  scalar.u8_to_i16_center(luma.data(), i16_a.data(), n);
  for (size_t i = 0; i < n; ++i) {
    i16_b[i] = static_cast<int16_t>((static_cast<int>(i16_a[i]) * 3) / 4);
  }

  alignas(32) int16_t block[kBA];
  alignas(32) int32_t coeffs[kBA];
  std::memcpy(block, i16_a.data(), sizeof(block));
  scalar.fdct8x8(block, coeffs);  // valid quantize input by construction

  std::vector<KernelPoint> points;
  auto bench = [&](const char* name, auto&& make_call) {
    KernelPoint p;
    p.name = name;
    p.scalar_ns = MeasureNs(2000, 5, make_call(scalar));
    p.simd_ns = MeasureNs(2000, 5, make_call(active));
    points.push_back(p);
  };

  bench("fdct8x8", [&](const simd::CodecKernels& k) {
    return [&k, &block, &coeffs] {
      alignas(32) int32_t out[kBA];
      k.fdct8x8(block, out);
      Sink(static_cast<uint32_t>(out[0]));
      (void)coeffs;
    };
  });
  bench("idct8x8", [&](const simd::CodecKernels& k) {
    return [&k, &coeffs] {
      alignas(32) int16_t out[kBA];
      k.idct8x8(coeffs, out);
      Sink(static_cast<uint32_t>(out[0]));
    };
  });
  bench("quantize", [&](const simd::CodecKernels& k) {
    return [&k, &coeffs, &qt] {
      alignas(32) int32_t work[kBA];
      std::memcpy(work, coeffs, sizeof(work));
      k.quantize(work, qt);
      Sink(static_cast<uint32_t>(work[0]));
    };
  });
  bench("dequantize", [&](const simd::CodecKernels& k) {
    return [&k, &coeffs, &qt] {
      alignas(32) int32_t work[kBA];
      std::memcpy(work, coeffs, sizeof(work));
      k.dequantize(work, qt);
      Sink(static_cast<uint32_t>(work[0]));
    };
  });
  bench("u8_to_i16_center", [&](const simd::CodecKernels& k) {
    return [&k, &luma, &i16_out, n] {
      k.u8_to_i16_center(luma.data(), i16_out.data(), n);
      Sink(static_cast<uint32_t>(i16_out[0]));
    };
  });
  bench("i16_center_to_u8", [&](const simd::CodecKernels& k) {
    return [&k, &i16_a, &u8_out, n] {
      k.i16_center_to_u8(i16_a.data(), u8_out.data(), n);
      Sink(u8_out[0]);
    };
  });
  bench("residual_u8", [&](const simd::CodecKernels& k) {
    return [&k, &luma, &u8_out, &i16_out, n] {
      k.residual_u8(luma.data(), u8_out.data(), i16_out.data(), n);
      Sink(static_cast<uint32_t>(i16_out[0]));
    };
  });
  bench("reconstruct_u8", [&](const simd::CodecKernels& k) {
    return [&k, &luma, &i16_b, &u8_out, n] {
      k.reconstruct_u8(luma.data(), i16_b.data(), u8_out.data(), n);
      Sink(u8_out[0]);
    };
  });
  bench("sub_i16", [&](const simd::CodecKernels& k) {
    return [&k, &i16_a, &i16_b, &i16_out, n] {
      k.sub_i16(i16_a.data(), i16_b.data(), i16_out.data(), n);
      Sink(static_cast<uint32_t>(i16_out[0]));
    };
  });
  bench("add_i16", [&](const simd::CodecKernels& k) {
    return [&k, &i16_a, &i16_b, &i16_out, n] {
      k.add_i16(i16_a.data(), i16_b.data(), i16_out.data(), n);
      Sink(static_cast<uint32_t>(i16_out[0]));
    };
  });
  bench("sad_u8", [&](const simd::CodecKernels& k) {
    return [&k, &luma, &u8_out, n] {
      Sink(k.sad_u8(luma.data(), u8_out.data(), n));
    };
  });
  bench("sad16xh_u8", [&](const simd::CodecKernels& k) {
    const uint8_t* a = luma.row(8) + 16;
    const uint8_t* b = luma.row(24) + 40;
    return [&k, a, b] { Sink(k.sad16xh_u8(a, kWidth, b, kWidth, 16)); };
  });
  return points;
}

struct FpsPoint {
  double legacy_fps = 0;
  double current_fps = 0;
  double speedup = 0;
};

FpsPoint MeasureIntraFps() {
  const VideoFrame frame = synthetic::GeneratePatternFrame(
      kWidth, kHeight, 8, 0, synthetic::VideoPattern::kMovingBox);
  FpsPoint p;
  const double legacy_ns = MeasureNs(20, 3, [&frame] {
    Sink(static_cast<uint32_t>(LegacyEncodeFrame(frame, kQuality).size()));
  });
  const double current_ns = MeasureNs(60, 3, [&frame] {
    Sink(static_cast<uint32_t>(
        IntraCodec::EncodeFrame(frame, kQuality).size()));
  });
  p.legacy_fps = 1e9 / legacy_ns;
  p.current_fps = 1e9 / current_ns;
  p.speedup = p.current_fps / p.legacy_fps;
  return p;
}

struct IdentityPoint {
  std::vector<std::string> levels;
  bool pass = true;
};

// Encodes the intra frame and a 6-frame inter GOP at every available
// kernel level; all streams must match the scalar reference byte for byte.
IdentityPoint CheckByteIdentity() {
  IdentityPoint point;
  const VideoFrame frame = synthetic::GeneratePatternFrame(
      kWidth, kHeight, 8, 0, synthetic::VideoPattern::kMovingBox);
  const auto type = MediaDataType::RawVideo(64, 48, 24, Rational(10));
  auto video = synthetic::GenerateVideo(type, 6,
                                        synthetic::VideoPattern::kMovingBox)
                   .value();
  VideoCodecParams params;
  params.gop_size = 3;

  if (!simd::ForceKernelsForTest(simd::KernelLevel::kScalar)) {
    std::printf("BYTE IDENTITY: cannot force scalar kernels\n");
    point.pass = false;
    return point;
  }
  const Buffer intra_ref = IntraCodec::EncodeFrame(frame, kQuality);
  const auto inter_ref = InterCodec().Encode(*video, params).value();

  for (simd::KernelLevel level : simd::AvailableKernelLevels()) {
    if (level == simd::KernelLevel::kScalar) continue;
    if (!simd::ForceKernelsForTest(level)) continue;
    point.levels.push_back(simd::KernelLevelName(level));
    const Buffer intra = IntraCodec::EncodeFrame(frame, kQuality);
    if (!(intra == intra_ref)) {
      std::printf("BYTE IDENTITY: intra stream differs under %s\n",
                  simd::KernelLevelName(level));
      point.pass = false;
    }
    const auto inter = InterCodec().Encode(*video, params).value();
    for (size_t i = 0; i < inter.frames.size(); ++i) {
      if (!(inter.frames[i].data == inter_ref.frames[i].data)) {
        std::printf("BYTE IDENTITY: inter frame %zu differs under %s\n", i,
                    simd::KernelLevelName(level));
        point.pass = false;
      }
    }
  }
  simd::ResetKernelsForTest();
  return point;
}

struct SteadyStatePoint {
  int frames = 0;
  int64_t acquires = 0;
  int64_t reuses = 0;
  int64_t allocations = 0;
  double allocations_per_frame = 0;
};

// One warm-up inter encode+decode cycle, then a measured cycle: every
// Acquire must be served from the free list (see
// ZeroCopyTest.SteadyStateEncodeDecodeHasZeroPoolMisses for the same
// invariant as a unit test).
SteadyStatePoint MeasureSteadyState() {
  SteadyStatePoint point;
  point.frames = 6;
  const auto type = MediaDataType::RawVideo(64, 48, 24, Rational(10));
  auto video = synthetic::GenerateVideo(type, point.frames,
                                        synthetic::VideoPattern::kMovingBox)
                   .value();
  VideoCodecParams params;
  params.gop_size = 3;
  BufferPool& pool = BufferPool::Shared();

  auto run_cycle = [&] {
    auto encoded = InterCodec().Encode(*video, params).value();
    auto session = InterCodec().NewDecoder(encoded).value();
    for (int64_t i = 0; i < point.frames; ++i) {
      Sink(session->DecodeFrame(i).value().At(0, 0));
    }
  };

  run_cycle();  // warm the pool
  pool.ResetStats();
  run_cycle();

  const BufferPool::Stats stats = pool.stats();
  point.acquires = stats.acquires;
  point.reuses = stats.reuses;
  point.allocations = stats.allocations;
  point.allocations_per_frame =
      static_cast<double>(stats.allocations) / point.frames;
  return point;
}

}  // namespace

int main() {
  const simd::CodecKernels& scalar = simd::ScalarKernels();
  const simd::CodecKernels& active = simd::ActiveKernels();
  std::printf("dispatched kernel level: %s\n\n",
              simd::KernelLevelName(active.level));

  std::printf("== per-kernel ns/op (scalar vs %s) ==\n",
              simd::KernelLevelName(active.level));
  std::printf("%-18s %12s %12s %9s\n", "kernel", "scalar_ns", "simd_ns",
              "speedup");
  const std::vector<KernelPoint> kernels = MeasureKernels(scalar, active);
  for (const KernelPoint& p : kernels) {
    std::printf("%-18s %12.1f %12.1f %8.2fx\n", p.name, p.scalar_ns,
                p.simd_ns, p.speedup());
  }

  std::printf("\n== intra encode fps, %dx%d q%d (legacy double-DCT vs "
              "dispatched) ==\n",
              kWidth, kHeight, kQuality);
  const FpsPoint fps = MeasureIntraFps();
  std::printf("legacy %.1f fps, current %.1f fps -> %.2fx\n", fps.legacy_fps,
              fps.current_fps, fps.speedup);

  std::printf("\n== byte identity across kernel levels ==\n");
  const IdentityPoint identity = CheckByteIdentity();
  std::printf("levels checked beyond scalar: %zu -> %s\n",
              identity.levels.size(), identity.pass ? "identical" : "DIFFER");

  std::printf("\n== steady-state pool behaviour (warm inter cycle) ==\n");
  const SteadyStatePoint steady = MeasureSteadyState();
  std::printf("acquires %lld, reuses %lld, allocations %lld "
              "(%.2f allocations/frame)\n",
              static_cast<long long>(steady.acquires),
              static_cast<long long>(steady.reuses),
              static_cast<long long>(steady.allocations),
              steady.allocations_per_frame);

  FILE* out = std::fopen("BENCH_codec_micro.json", "w");
  if (out != nullptr) {
    std::fprintf(out, "{\n  \"dispatched_level\": \"%s\",\n",
                 simd::KernelLevelName(active.level));
    std::fprintf(out, "  \"kernels\": [\n");
    for (size_t i = 0; i < kernels.size(); ++i) {
      const KernelPoint& p = kernels[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"scalar_ns\": %.1f, "
                   "\"simd_ns\": %.1f, \"speedup\": %.2f}%s\n",
                   p.name, p.scalar_ns, p.simd_ns, p.speedup(),
                   i + 1 < kernels.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out,
                 "  \"intra_fps\": {\"legacy_fps\": %.1f, \"current_fps\": "
                 "%.1f, \"speedup\": %.2f, \"gate_min_speedup\": 2.0, "
                 "\"gate_enforced\": %s},\n",
                 fps.legacy_fps, fps.current_fps, fps.speedup,
                 active.level != simd::KernelLevel::kScalar ? "true"
                                                            : "false");
    std::fprintf(out, "  \"byte_identity\": {\"levels\": [");
    for (size_t i = 0; i < identity.levels.size(); ++i) {
      std::fprintf(out, "\"%s\"%s", identity.levels[i].c_str(),
                   i + 1 < identity.levels.size() ? ", " : "");
    }
    std::fprintf(out, "], \"identical\": %s},\n",
                 identity.pass ? "true" : "false");
    std::fprintf(out,
                 "  \"steady_state\": {\"frames\": %d, \"acquires\": %lld, "
                 "\"reuses\": %lld, \"allocations\": %lld, "
                 "\"allocations_per_frame\": %.2f}\n",
                 steady.frames, static_cast<long long>(steady.acquires),
                 static_cast<long long>(steady.reuses),
                 static_cast<long long>(steady.allocations),
                 steady.allocations_per_frame);
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("\nwrote BENCH_codec_micro.json\n");
  }

  bool ok = true;
  // The 2x gate prices the *dispatched SIMD* pipeline; in a scalar-only
  // build (AVDB_SIMD=OFF or an unsupported CPU) the fps is reported but
  // not enforced — the identity and zero-allocation gates still are.
  if (active.level == simd::KernelLevel::kScalar) {
    std::printf("note: scalar-only dispatch, fps gate reported but not "
                "enforced (%.2fx)\n",
                fps.speedup);
  } else if (fps.speedup < 2.0) {
    std::printf("GATE FAILED: intra speedup %.2fx < 2.0x over legacy\n",
                fps.speedup);
    ok = false;
  }
  if (!identity.pass) {
    std::printf("GATE FAILED: kernel levels are not byte-identical\n");
    ok = false;
  }
  if (steady.allocations != 0) {
    std::printf("GATE FAILED: %lld steady-state pool misses (want 0)\n",
                static_cast<long long>(steady.allocations));
    ok = false;
  }
  std::printf("%s\n", ok ? "ALL GATES PASS" : "GATES FAILED");
  return ok ? 0 : 1;
}

// Micro-benchmarks (google-benchmark) for the compute kernels behind the
// activity catalog: transform coding, motion search, delta coding, audio
// companding and the raycaster. These are the real-CPU costs that the
// simulation's CostModel abstracts; run them to recalibrate the model for
// a different host.

#include <benchmark/benchmark.h>

#include "codec/audio_codec.h"
#include "codec/block_transform.h"
#include "codec/delta_codec.h"
#include "codec/inter_codec.h"
#include "codec/intra_codec.h"
#include "codec/scalable_codec.h"
#include "media/synthetic.h"
#include "vworld/raycaster.h"

namespace avdb {
namespace {

VideoFrame QcifFrame(int index = 0) {
  return synthetic::GeneratePatternFrame(176, 144, 8, index,
                                         synthetic::VideoPattern::kMovingBox);
}

void BM_Dct8x8Forward(benchmark::State& state) {
  block_transform::Block block;
  for (int i = 0; i < block_transform::kBlockArea; ++i) {
    block[i] = static_cast<int16_t>((i * 7) % 256 - 128);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(block_transform::ForwardDct(block));
  }
}
BENCHMARK(BM_Dct8x8Forward);

void BM_IntraEncodeQcif(benchmark::State& state) {
  const VideoFrame frame = QcifFrame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntraCodec::EncodeFrame(frame, 75));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntraEncodeQcif);

void BM_IntraDecodeQcif(benchmark::State& state) {
  const VideoFrame frame = QcifFrame();
  const Buffer bits = IntraCodec::EncodeFrame(frame, 75);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntraCodec::DecodeFrame(bits, 176, 144, 8, 75));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntraDecodeQcif);

void BM_InterEncodeGop(benchmark::State& state) {
  const auto type = MediaDataType::RawVideo(176, 144, 8, Rational(15));
  auto video = synthetic::GenerateVideo(
                   type, 10, synthetic::VideoPattern::kMovingBox)
                   .value();
  InterCodec codec;
  VideoCodecParams params;
  params.gop_size = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Encode(*video, params));
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_InterEncodeGop);

void BM_DeltaEncodeQcif(benchmark::State& state) {
  const auto type = MediaDataType::RawVideo(176, 144, 8, Rational(15));
  auto video = synthetic::GenerateVideo(
                   type, 8, synthetic::VideoPattern::kMovingBox)
                   .value();
  DeltaCodec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Encode(*video, {}));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_DeltaEncodeQcif);

void BM_ScalableDecodeLayers(benchmark::State& state) {
  const auto type = MediaDataType::RawVideo(176, 144, 8, Rational(15));
  auto video = synthetic::GenerateVideo(
                   type, 2, synthetic::VideoPattern::kMovingBox)
                   .value();
  ScalableCodec codec;
  VideoCodecParams params;
  params.layer_count = 3;
  auto encoded = codec.Encode(*video, params).value();
  auto session =
      codec.NewDecoderWithLayers(encoded, static_cast<int>(state.range(0)))
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(session->DecodeFrame(0));
  }
}
BENCHMARK(BM_ScalableDecodeLayers)->Arg(1)->Arg(2)->Arg(3);

void BM_MulawBlock(benchmark::State& state) {
  auto audio = synthetic::GenerateAudio(MediaDataType::CdAudio(), 1024,
                                        synthetic::AudioPattern::kChirp)
                   .value();
  MulawCodec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Encode(*audio));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MulawBlock);

void BM_AdpcmBlock(benchmark::State& state) {
  auto audio = synthetic::GenerateAudio(MediaDataType::CdAudio(), 1024,
                                        synthetic::AudioPattern::kChirp)
                   .value();
  AdpcmCodec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Encode(*audio));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_AdpcmBlock);

void BM_RaycastFrame(benchmark::State& state) {
  static Scene scene = Scene::MuseumRoom();
  Raycaster::Options options;
  options.width = static_cast<int>(state.range(0));
  options.height = options.width * 3 / 4;
  Raycaster caster(&scene, options);
  const VideoFrame wall = QcifFrame();
  const Pose pose = scene.DefaultPose();
  for (auto _ : state) {
    benchmark::DoNotOptimize(caster.Render(pose, &wall));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RaycastFrame)->Arg(160)->Arg(320);

}  // namespace
}  // namespace avdb

BENCHMARK_MAIN();

// Ablation — §3.3 "scheduling: should allow application involvement"
// (resource pre-allocation / admission control).
//
// N clients request concurrent playback from one disk. With admission
// control the database admits only what the device can carry and refuses
// the rest up front; with admission disabled every stream starts and all
// of them degrade together. The paper: "concurrent access to AV data may
// require explicit scheduling (in particular, resource pre-allocation) by
// clients."

#include <cstdio>
#include <iostream>
#include <vector>

#include "activity/sinks.h"
#include "base/logging.h"
#include "db/database.h"
#include "media/synthetic.h"

using namespace avdb;

namespace {

// One raw stream needs ~1.15 MB/s plus seek overhead: only one fits cleanly.
const MediaDataType kType = MediaDataType::RawVideo(320, 240, 8, Rational(15));
constexpr int kFrames = 30;  // 2 s

struct Outcome {
  int requested = 0;
  int admitted = 0;
  double mean_fps = 0;      // across started streams
  double mean_late_ms = 0;  // across started streams
  int64_t total_misses = 0;
};

Outcome Run(int clients, bool admission_enabled) {
  AvDatabase db;
  AVDB_MUST(db.AddDevice("disk0", DeviceProfile::MagneticDisk()));
  ClassDef clip_class("Clip");
  AVDB_MUST(clip_class.AddAttribute({"footage", AttrType::kVideo, {}, {}}));
  AVDB_MUST(db.DefineClass(clip_class));

  // Each client plays its own object (separate extents -> seeks between
  // concurrent readers, as on a real spindle).
  std::vector<Oid> oids;
  for (int i = 0; i < clients; ++i) {
    auto value = synthetic::GenerateVideo(
                     kType, kFrames, synthetic::VideoPattern::kMovingBox,
                     static_cast<uint64_t>(i + 1))
                     .value();
    Oid oid = db.NewObject("Clip").value();
    AVDB_MUST(db.SetMediaAttribute(oid, "footage", *value, "disk0"));
    oids.push_back(oid);
  }

  Outcome outcome;
  outcome.requested = clients;
  std::vector<std::shared_ptr<VideoWindow>> windows;
  std::vector<StreamHandle> streams;
  for (int i = 0; i < clients; ++i) {
    Result<StreamHandle> stream = Status::Internal("");
    if (admission_enabled) {
      stream = db.NewSourceFor("client" + std::to_string(i), oids[i],
                               "footage");
      if (!stream.ok()) continue;  // refused up front
    } else {
      // Bypass the controller: build the same source by hand.
      auto value = db.LoadMediaAttribute(oids[i], "footage").value();
      SourceOptions options;
      options.store = db.devices().GetStore("disk0").value();
      options.blob_name =
          db.MediaHistory(oids[i], "footage").value().back().blob_name;
      options.device_queue = db.DeviceQueue("disk0").value();
      auto source = VideoSource::Create("src" + std::to_string(i),
                                        ActivityLocation::kDatabase, db.env(),
                                        options);
      AVDB_MUST(source->Bind(value, VideoSource::kPortOut));
      AVDB_MUST(db.graph().Add(source));
      StreamHandle handle;
      handle.source = source.get();
      stream = handle;
    }
    auto window = VideoWindow::Create("win" + std::to_string(i),
                                      ActivityLocation::kClient, db.env(),
                                      VideoQuality(320, 240, 8, Rational(15)));
    AVDB_MUST(db.graph().Add(window));
    AVDB_MUST(db.graph()
        .Connect(stream.value().source, VideoSource::kPortOut, window.get(),
                 VideoWindow::kPortIn));
    windows.push_back(window);
    streams.push_back(stream.value());
    ++outcome.admitted;
  }
  // Start everything that was admitted.
  for (const auto& a : db.graph().activities()) {
    if (a->state() == MediaActivity::State::kIdle) AVDB_MUST(a->Start());
  }
  db.RunUntilIdle();

  for (const auto& window : windows) {
    outcome.mean_fps += window->stats().AchievedRate();
    outcome.mean_late_ms += window->stats().MeanLatenessMs();
    outcome.total_misses += window->stats().deadline_misses;
  }
  if (!windows.empty()) {
    outcome.mean_fps /= static_cast<double>(windows.size());
    outcome.mean_late_ms /= static_cast<double>(windows.size());
  }
  return outcome;
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
               "Admission experiment: N concurrent playbacks from one disk\n"
               "==============================================================\n\n"
               "raw stream demand ~1.15 MB/s + seek overhead; one disk carries one\n\n";

  std::printf("%-10s | %-30s | %-30s\n", "", "admission control ON",
              "admission control OFF");
  std::printf("%-10s | %8s %8s %12s | %8s %8s %12s\n", "clients", "started",
              "fps", "misses", "started", "fps", "misses");
  std::printf("--------------------------------------------------------------"
              "------------------\n");
  for (int clients : {1, 2, 3, 4, 6, 8}) {
    const Outcome on = Run(clients, true);
    const Outcome off = Run(clients, false);
    std::printf("%-10d | %8d %8.2f %12lld | %8d %8.2f %12lld\n", clients,
                on.admitted, on.mean_fps,
                static_cast<long long>(on.total_misses), off.admitted,
                off.mean_fps, static_cast<long long>(off.total_misses));
  }
  std::printf(
      "\nShape check: with admission ON the started count saturates at the\n"
      "device's capacity and every admitted stream keeps its rate; with it\n"
      "OFF everything starts and, past the knee, *all* streams miss\n"
      "deadlines — the §3.3 argument for client-visible pre-allocation.\n");
  return 0;
}

// Replicated multi-node serving: node-level fault injection, failover,
// hedged reads, and deadline propagation.
//
// Three client sessions stream a stored scalable clip through per-session
// StreamRouters over three ServerNode replicas (per-link ATM channels).
// Replica node0 is deterministically killed mid-stream (FaultSpec node
// crash) while every replica's device also degrades under the standard
// transient-error / latency-spike / stuck-head mix at the sweep's fault
// rate. The routers' health tracking (EWMA + circuit breaker) fails the
// sessions over, p95-hedged reads race slow primaries, and the
// presentation-deadline budget propagates through router -> channel ->
// server -> store so doomed work is cancelled instead of executed.
//
// Part 1 is the parity gate: a single co-located replica behind the router
// must stream *exactly* like a direct MediaStore — replication off changes
// nothing.
//
// Everything runs in virtual time: same seed, same spec, same numbers.
//
// Output: BENCH_replication.json. Exit code is non-zero when the ISSUE
// acceptance gates fail (at the 5% sweep point with node0 killed: every
// session completes, zero aborted streams, bounded rebuffer, and the
// cluster metrics show at least one failover, one hedge win, and one
// breaker open).

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "activity/graph.h"
#include "activity/sinks.h"
#include "activity/sources.h"
#include "base/fault_injector.h"
#include "base/logging.h"
#include "cluster/node.h"
#include "cluster/replica_set.h"
#include "cluster/replicated_store.h"
#include "cluster/stream_router.h"
#include "codec/encoded_value.h"
#include "codec/scalable_codec.h"
#include "media/synthetic.h"
#include "net/channel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/degradation.h"
#include "sched/event_engine.h"
#include "storage/media_store.h"
#include "storage/value_serializer.h"

using namespace avdb;

namespace {

const MediaDataType kType = MediaDataType::RawVideo(176, 144, 8, Rational(10));
constexpr int kFrames = 300;  // 30 s of video
constexpr uint64_t kSeed = 42;
constexpr int kSessions = 3;
constexpr int kReplicas = 3;
// node0 dies at its Nth served operation: with three sessions spreading
// ~900 fetches over three replicas this lands mid-stream.
constexpr int64_t kKillAtOp = 150;

/// Device-level fault mix (identical to bench_fault_degradation's sweep):
/// transient read errors, 30 ms bus spikes, rare 400 ms stuck heads.
FaultSpec DeviceSpec(double p) {
  FaultSpec spec;
  spec.read_error_rate = p;
  spec.latency_spike_rate = p;
  spec.latency_spike_ns = 30 * 1000 * 1000;
  spec.stuck_head_rate = p / 2;
  spec.stuck_head_stall_ns = 400 * 1000 * 1000;
  return spec;
}

std::shared_ptr<EncodedVideoValue> MakeClip() {
  auto raw = synthetic::GenerateVideo(kType, kFrames,
                                      synthetic::VideoPattern::kMovingBox)
                 .value();
  VideoCodecParams params;
  params.layer_count = 3;
  auto codec = std::make_shared<ScalableCodec>();
  auto encoded = codec->Encode(*raw, params).value();
  return EncodedVideoValue::Create(codec, std::move(encoded)).value();
}

/// One replica machine: device (+ optional device-fault injector), store
/// with the clip, the serving node (+ optional node-fault injector).
struct Replica {
  std::shared_ptr<BlockDevice> device;
  ServerNodePtr node;
  std::unique_ptr<FaultInjector> device_faults;
  std::unique_ptr<FaultInjector> node_faults;
};

Replica MakeReplicaMachine(const std::string& name, const Buffer& blob) {
  Replica r;
  r.device = std::make_shared<BlockDevice>(name + ".dev",
                                           DeviceProfile::MagneticDisk());
  auto store = std::make_shared<MediaStore>(r.device, nullptr);
  AVDB_MUST(store->Put("clip", Buffer(blob)));
  r.node = std::make_shared<ServerNode>(name, store);
  return r;
}

struct SessionReport {
  bool completed = false;
  int64_t presented = 0;
  int64_t dropped = 0;
  int64_t late = 0;
  int64_t deadline_misses = 0;
  double stall_total_ms = 0;
  double stall_max_ms = 0;
  int64_t aborts = 0;
  int64_t pauses = 0;
  StreamRouter::Stats router;
};

struct ClusterReport {
  double fault_rate = 0;
  SessionReport sessions[kSessions];
  // Aggregates across the three session routers.
  int64_t failovers = 0;
  int64_t hedges = 0;
  int64_t hedge_wins = 0;
  int64_t breaker_opens = 0;
  int64_t deadline_fast_fails = 0;
  int64_t deadline_give_ups = 0;
  int64_t exhausted = 0;
  // node0 (the killed machine) and the survivors.
  int64_t node0_refused = 0;
  int64_t node0_served = 0;
  int64_t survivor_served = 0;
  // The same failover/hedge facts read back from the metrics registry —
  // the gate checks observability agrees with the router's own counters.
  int64_t metric_failovers = 0;
  int64_t metric_hedge_wins = 0;
  int64_t metric_breaker_opens = 0;
  int64_t trace_failover_events = 0;
  int64_t trace_hedge_events = 0;
};

ClusterReport RunCluster(const std::shared_ptr<EncodedVideoValue>& clip,
                         double fault_rate) {
  ClusterReport report;
  report.fault_rate = fault_rate;

  EventEngine engine;
  ActivityEnv env{&engine, nullptr};
  ActivityGraph graph(env);
  obs::MetricsRegistry registry;
  obs::Tracer tracer(8192);

  const Buffer blob = value_serializer::Serialize(*clip).value();
  std::vector<Replica> replicas;
  for (int i = 0; i < kReplicas; ++i) {
    replicas.push_back(MakeReplicaMachine("node" + std::to_string(i), blob));
    Replica& r = replicas.back();
    if (fault_rate > 0) {
      r.device_faults = std::make_unique<FaultInjector>(
          DeviceSpec(fault_rate), kSeed + static_cast<uint64_t>(i));
      r.device->set_fault_injector(r.device_faults.get());
    }
  }
  // The mid-stream node loss: node0's kKillAtOp-th served operation finds
  // the machine dead, and it stays dead for the rest of the run.
  replicas[0].node_faults =
      std::make_unique<FaultInjector>(FaultSpec::NodeCrash(kKillAtOp), kSeed);
  replicas[0].node->set_fault_injector(replicas[0].node_faults.get());

  std::vector<std::unique_ptr<StreamRouter>> routers;
  std::vector<std::unique_ptr<DegradationController>> degraders;
  std::vector<std::shared_ptr<VideoSource>> sources;
  std::vector<std::shared_ptr<VideoWindow>> windows;

  for (int s = 0; s < kSessions; ++s) {
    RouterPolicy policy;  // defaults: 3 attempts, hedging armed at 8 samples
    routers.push_back(std::make_unique<StreamRouter>(
        "client" + std::to_string(s), policy, [&engine] {
          return engine.now_ns();
        }));
    StreamRouter* router = routers.back().get();
    for (int i = 0; i < kReplicas; ++i) {
      // Per-(session, server) ATM link: transfer cost and link faults are
      // private to the pair, like a switched fabric.
      auto channel = std::make_shared<Channel>(
          "lan." + std::to_string(s) + "." + std::to_string(i),
          Channel::Profile::Atm155());
      router->AddReplica(replicas[static_cast<size_t>(i)].node, channel);
    }
    router->BindObservability(&registry, &tracer);

    degraders.push_back(std::make_unique<DegradationController>());
    SourceOptions source_options;
    source_options.blob_name = "clip";
    source_options.degrade = degraders.back().get();
    source_options.fetcher = [router](const std::string& blob_name,
                                      int64_t offset, int64_t length,
                                      int64_t budget_ns) {
      return router->Fetch(blob_name, offset, length, budget_ns);
    };
    auto source =
        VideoSource::Create("src" + std::to_string(s),
                            ActivityLocation::kDatabase, env, source_options);
    AVDB_MUST(source->Bind(clip, VideoSource::kPortOut));

    SinkOptions sink_options;
    sink_options.degrade = degraders.back().get();
    auto window = VideoWindow::Create(
        "win" + std::to_string(s), ActivityLocation::kClient, env,
        VideoQuality(176, 144, 8, Rational(10)), sink_options);

    SessionReport* session = &report.sessions[s];
    AVDB_MUST(source->Catch(VideoSource::kFrameDropped,
                            [session](const ActivityEvent&) {
                              ++session->dropped;
                            }));
    AVDB_MUST(window->Catch(VideoWindow::kLastFrame,
                            [session](const ActivityEvent&) {
                              session->completed = true;
                            }));

    AVDB_MUST(graph.Add(source));
    AVDB_MUST(graph.Add(window));
    AVDB_MUST(graph.Connect(source.get(), VideoSource::kPortOut, window.get(),
                            VideoWindow::kPortIn));
    sources.push_back(std::move(source));
    windows.push_back(std::move(window));
  }

  AVDB_MUST(graph.StartAll());
  graph.RunUntilIdle();

  for (int s = 0; s < kSessions; ++s) {
    SessionReport& session = report.sessions[s];
    const StreamStats& stats = windows[static_cast<size_t>(s)]->stats();
    session.presented = stats.elements_presented;
    session.late = stats.late_elements;
    session.deadline_misses = stats.deadline_misses;
    session.stall_total_ms = stats.total_lateness_ns / 1e6;
    session.stall_max_ms = stats.max_lateness_ns / 1e6;
    session.aborts = degraders[static_cast<size_t>(s)]->stats().aborts_taken;
    session.pauses = degraders[static_cast<size_t>(s)]->stats().pauses_taken;
    session.router = routers[static_cast<size_t>(s)]->stats();
    report.failovers += session.router.failovers;
    report.hedges += session.router.hedges;
    report.hedge_wins += session.router.hedge_wins;
    report.breaker_opens += session.router.breaker_opens;
    report.deadline_fast_fails += session.router.deadline_fast_fails;
    report.deadline_give_ups += session.router.deadline_give_ups;
    report.exhausted += session.router.exhausted;
  }
  report.node0_refused = replicas[0].node->stats().refused;
  report.node0_served = replicas[0].node->stats().served;
  for (int i = 1; i < kReplicas; ++i) {
    report.survivor_served += replicas[static_cast<size_t>(i)].node->stats().served;
  }
  report.metric_failovers =
      registry.GetCounter("avdb_cluster_failovers_total", "")->Value();
  report.metric_hedge_wins =
      registry.GetCounter("avdb_cluster_hedge_wins_total", "")->Value();
  report.metric_breaker_opens =
      registry.GetCounter("avdb_cluster_breaker_opens_total", "")->Value();
  for (const auto& event : tracer.Events()) {
    if (event.name == "failover") ++report.trace_failover_events;
    if (event.name == "hedge_win") ++report.trace_hedge_events;
  }
  return report;
}

/// Streams the clip once through a plain MediaStore + device queue (the
/// pre-cluster pipeline) or through a router with one co-located replica,
/// and returns the window's stream stats. The two must be identical.
StreamStats RunSingleNode(const std::shared_ptr<EncodedVideoValue>& clip,
                          bool routed) {
  EventEngine engine;
  ActivityEnv env{&engine, nullptr};
  ActivityGraph graph(env);

  const Buffer blob = value_serializer::Serialize(*clip).value();
  Replica machine = MakeReplicaMachine("solo", blob);
  std::unique_ptr<StreamRouter> router;

  SourceOptions source_options;
  source_options.blob_name = "clip";
  if (routed) {
    router = std::make_unique<StreamRouter>(
        "solo-client", RouterPolicy{}, [&engine] { return engine.now_ns(); });
    router->AddReplica(machine.node, nullptr);  // co-located: no link
    StreamRouter* raw = router.get();
    source_options.fetcher = [raw](const std::string& blob_name,
                                   int64_t offset, int64_t length,
                                   int64_t budget_ns) {
      return raw->Fetch(blob_name, offset, length, budget_ns);
    };
  } else {
    source_options.store = &machine.node->store();
    source_options.device_queue = &machine.node->device_queue();
  }

  auto source = VideoSource::Create("src", ActivityLocation::kDatabase, env,
                                    source_options);
  AVDB_MUST(source->Bind(clip, VideoSource::kPortOut));
  auto window =
      VideoWindow::Create("win", ActivityLocation::kClient, env,
                          VideoQuality(176, 144, 8, Rational(10)),
                          SinkOptions{});
  AVDB_MUST(graph.Add(source));
  AVDB_MUST(graph.Add(window));
  AVDB_MUST(graph.Connect(source.get(), VideoSource::kPortOut, window.get(),
                          VideoWindow::kPortIn));
  AVDB_MUST(graph.StartAll());
  graph.RunUntilIdle();
  return window->stats();
}


// ------------------------------------------------------------- self-heal --

// Part 3 — the ISSUE's write+kill+revive scenario: a quorum-write workload
// (W=2/N=3) over journaled replica stores at the 5% device-fault point,
// node0 crashed mid-workload, a survivor's media deterministically rotted.
// The gates demand that every put still acks within budget, that at least
// one read-repair and one hinted-handoff replay are observed, that the
// revived node converges to a byte-identical directory (digest
// comparison), that zero data-loss events occur across the seed sweep,
// and that the avdb_cluster_* metrics agree with the store's own stats.

constexpr int kSelfHealPuts = 40;
constexpr int64_t kSelfHealKillAtOp = 15;  // node0's Nth served write
constexpr int64_t kSelfHealPutBudgetNs = 2'000'000'000;  // 2 s per put
constexpr uint64_t kSelfHealSeeds = 10;
constexpr size_t kSelfHealBlobBytes = 64 * 1024;  // one checksum page

Buffer PatternBlob(size_t size, uint64_t seed) {
  Buffer b;
  for (size_t i = 0; i < size; ++i) {
    b.AppendU8(static_cast<uint8_t>((seed * 131 + i * 31) & 0xFF));
  }
  return b;
}

/// Flips one media byte of `blob` directly on the device — simulated bit
/// rot behind the store's back. Retried because the device's own fault
/// injector may transiently refuse the poke.
bool CorruptOneByte(MediaStore& store, BlockDevice& device,
                    const std::string& blob) {
  auto entry = store.Lookup(blob);
  if (!entry.ok() || entry.value()->extents.size() != 1) return false;
  const Extent& extent = entry.value()->extents[0];
  for (int attempt = 0; attempt < 5; ++attempt) {
    Buffer current;
    if (!device.Read(extent.disc, extent.offset + 10, 1, &current).ok()) {
      continue;
    }
    Buffer flipped(1, static_cast<uint8_t>(~current.data()[0]));
    if (device.Write(extent.disc, extent.offset + 10, flipped).ok()) {
      return true;
    }
  }
  return false;
}

struct SelfHealReport {
  uint64_t seed = 0;
  double fault_rate = 0;
  int64_t puts = 0;
  int64_t put_failures = 0;
  int64_t deletes = 0;
  int64_t read_failures = 0;       ///< acked blobs unreadable afterwards
  int64_t hints_recorded = 0;
  int64_t hints_replayed = 0;
  int64_t repairs = 0;
  int64_t repair_pages_streamed = 0;
  int64_t resync_rounds = 0;
  int64_t resync_blobs_streamed = 0;
  int64_t data_loss_events = 0;
  bool node0_crashed = false;
  bool revived = false;
  bool resync_paced = false;       ///< MaybeRunAntiEntropy honors interval
  bool converged = false;
  bool summaries_identical = false;
  bool metrics_agree = false;
  int64_t trace_read_repair = 0;
  int64_t trace_handoff = 0;
  int64_t trace_resync = 0;
};

SelfHealReport RunSelfHeal(double fault_rate, uint64_t seed) {
  SelfHealReport report;
  report.seed = seed;
  report.fault_rate = fault_rate;

  obs::MetricsRegistry registry;
  obs::Tracer tracer(4096);
  int64_t now_ns = 0;

  auto set = std::make_shared<ReplicaSet>(BreakerPolicy{});
  std::vector<Replica> machines;
  for (int i = 0; i < kReplicas; ++i) {
    Replica r;
    r.device = std::make_shared<BlockDevice>(
        "heal" + std::to_string(i) + ".dev", DeviceProfile::MagneticDisk());
    auto store = std::make_shared<MediaStore>(r.device, nullptr);
    AVDB_MUST(store->Mount());
    r.node = std::make_shared<ServerNode>("heal" + std::to_string(i), store);
    if (fault_rate > 0) {
      r.device_faults = std::make_unique<FaultInjector>(
          DeviceSpec(fault_rate), seed * 3 + static_cast<uint64_t>(i));
      r.device->set_fault_injector(r.device_faults.get());
    }
    auto channel = std::make_shared<Channel>("heal.lan." + std::to_string(i),
                                             Channel::Profile::Atm155());
    set->Add(r.node, channel);
    machines.push_back(std::move(r));
  }
  machines[0].node_faults = std::make_unique<FaultInjector>(
      FaultSpec::NodeCrash(kSelfHealKillAtOp), seed);
  machines[0].node->set_fault_injector(machines[0].node_faults.get());

  ReplicationPolicy policy;  // W=2 of N=3
  policy.retry.jitter_seed = seed;
  // Small hint cap: the dead node misses ~25 writes but only 8 hints are
  // retained, so revival alone cannot converge — the digest-diff
  // anti-entropy stream has to carry the rest (both repair paths gate).
  policy.max_hints_per_replica = 8;
  ReplicatedStore store("heal", policy, [&now_ns] { return now_ns; }, set);
  store.BindObservability(&registry, &tracer);

  // The workload: unique-content puts, one quorum delete mixed in. node0
  // dies at its kSelfHealKillAtOp-th served write, so the tail of the
  // workload runs on a 2-of-3 cluster and accumulates hinted handoff.
  std::vector<std::pair<std::string, Buffer>> written;
  for (int i = 0; i < kSelfHealPuts; ++i) {
    const std::string name = "blob" + std::to_string(i);
    Buffer data = PatternBlob(kSelfHealBlobBytes, seed * 1000 + i);
    auto put = store.Put(name, data, kSelfHealPutBudgetNs);
    ++report.puts;
    if (put.ok()) {
      written.emplace_back(name, std::move(data));
    } else {
      ++report.put_failures;
    }
    now_ns += 250 * 1000 * 1000;  // 4 puts/s pacing
    if (i == 25) {
      ++report.deletes;
      if (store.Delete("blob2", kSelfHealPutBudgetNs).ok()) {
        written.erase(written.begin() + 2);
      }
      now_ns += 250 * 1000 * 1000;
    }
  }
  report.node0_crashed = machines[0].node->stats().refused > 0;

  // Media rot on a survivor: a routed read of the rotted blob either heals
  // it in-line (the router's DataLoss hook) or the explicit scrub+repair
  // sweep does — either way the heal must be observed.
  CorruptOneByte(machines[1].node->store(), *machines[1].device,
                 written.front().first);
  auto rotted = store.Read(written.front().first, 0,
                           static_cast<int64_t>(kSelfHealBlobBytes),
                           kSelfHealPutBudgetNs);
  if (!rotted.ok() || rotted.value().data != written.front().second) {
    ++report.read_failures;
  }
  if (store.stats().repairs == 0) {
    AVDB_IGNORE_STATUS(store.RepairQuarantined(1).status(),
                       "the gate below demands repairs >= 1 either way");
  }

  // Crash-restart of node0. A reboot clears the transient device
  // condition, so the fault injector detaches for the remount+recover and
  // reattaches after.
  machines[0].device->set_fault_injector(nullptr);
  report.revived = store.ReviveReplica(0).ok();
  if (machines[0].device_faults != nullptr) {
    machines[0].device->set_fault_injector(machines[0].device_faults.get());
  }

  // Anti-entropy on its virtual-time cadence until byte-identical
  // convergence (a few rounds may be needed when device faults interrupt
  // a stream). A second poll at the same instant must be interval-gated.
  report.resync_paced = true;
  for (int round = 0; round < 8; ++round) {
    now_ns += policy.resync_interval_ns;
    if (store.MaybeRunAntiEntropy() && store.MaybeRunAntiEntropy()) {
      report.resync_paced = false;  // ran twice at one instant: pacing broke
    }
    if (store.Converged()) break;  // always at least one verification round
  }
  report.converged = store.Converged();

  // Every blob the quorum ever acked must read back byte-identical.
  for (const auto& [name, data] : written) {
    now_ns += 50 * 1000 * 1000;
    auto read = store.Read(name, 0, static_cast<int64_t>(data.size()),
                           kSelfHealPutBudgetNs);
    if (!read.ok() || read.value().data != data) ++report.read_failures;
  }

  // Byte-identical directory: the digest comparison the ISSUE gates on.
  report.summaries_identical = true;
  auto s0 = store.ReplicaSummary(0);
  for (int i = 1; i < kReplicas; ++i) {
    auto si = store.ReplicaSummary(i);
    if (!s0.ok() || !si.ok() || !(s0.value() == si.value())) {
      report.summaries_identical = false;
    }
  }

  const ReplicatedStore::Stats& stats = store.stats();
  report.hints_recorded = stats.hints_recorded;
  report.hints_replayed = stats.hints_replayed;
  report.repairs = stats.repairs;
  report.repair_pages_streamed = stats.repair_pages_streamed;
  report.resync_rounds = stats.resync_rounds;
  report.resync_blobs_streamed = stats.resync_blobs_streamed;
  report.data_loss_events = stats.data_loss_events;

  auto counter = [&registry](const char* name) {
    return registry.GetCounter(name, "")->Value();
  };
  report.metrics_agree =
      counter("avdb_cluster_quorum_puts_total") == stats.quorum_puts &&
      counter("avdb_cluster_quorum_acks_total") == stats.write_acks &&
      counter("avdb_cluster_handoff_hints_total") == stats.hints_recorded &&
      counter("avdb_cluster_handoff_replays_total") == stats.hints_replayed &&
      counter("avdb_cluster_repair_successes_total") == stats.repairs &&
      counter("avdb_cluster_repair_pages_streamed_total") ==
          stats.repair_pages_streamed &&
      counter("avdb_cluster_resync_rounds_total") == stats.resync_rounds &&
      counter("avdb_cluster_data_loss_events_total") ==
          stats.data_loss_events &&
      registry.GetGauge("avdb_cluster_pending_hints", "")->Value() == 0;
  for (const auto& event : tracer.Events()) {
    if (event.name == "read_repair") ++report.trace_read_repair;
    if (event.name == "handoff_replay") ++report.trace_handoff;
    if (event.name == "anti_entropy") ++report.trace_resync;
  }
  return report;
}

void PrintSessionRow(int s, const SessionReport& r) {
  std::printf(
      "  s%d: done=%s shown=%lld drop=%lld fo=%lld hedge=%lld/%lld "
      "brk=%lld ff=%lld give=%lld stall_max=%.1fms\n",
      s, r.completed ? "yes" : "NO", static_cast<long long>(r.presented),
      static_cast<long long>(r.dropped),
      static_cast<long long>(r.router.failovers),
      static_cast<long long>(r.router.hedge_wins),
      static_cast<long long>(r.router.hedges),
      static_cast<long long>(r.router.breaker_opens),
      static_cast<long long>(r.router.deadline_fast_fails),
      static_cast<long long>(r.router.deadline_give_ups), r.stall_max_ms);
}

}  // namespace

int main() {
  std::cout
      << "==============================================================\n"
         "Replicated serving: 3 sessions x 3 replicas, node0 killed\n"
         "mid-stream, device faults swept; failover + hedged reads +\n"
         "deadline propagation keep every stream alive\n"
         "==============================================================\n\n";

  auto clip = MakeClip();

  // Part 1 — parity: the router with one co-located replica is the direct
  // store in disguise.
  const StreamStats direct = RunSingleNode(clip, /*routed=*/false);
  const StreamStats routed = RunSingleNode(clip, /*routed=*/true);
  std::printf("parity: direct shown=%lld late=%lld miss=%lld "
              "stall=%.3f/%.3f ms\n",
              static_cast<long long>(direct.elements_presented),
              static_cast<long long>(direct.late_elements),
              static_cast<long long>(direct.deadline_misses),
              direct.total_lateness_ns / 1e6, direct.max_lateness_ns / 1e6);
  std::printf("parity: routed shown=%lld late=%lld miss=%lld "
              "stall=%.3f/%.3f ms\n\n",
              static_cast<long long>(routed.elements_presented),
              static_cast<long long>(routed.late_elements),
              static_cast<long long>(routed.deadline_misses),
              routed.total_lateness_ns / 1e6, routed.max_lateness_ns / 1e6);

  // Part 2 — the replicated sweep.
  const std::vector<double> rates = {0.0, 0.02, 0.05, 0.10};
  std::vector<ClusterReport> runs;
  for (double rate : rates) {
    runs.push_back(RunCluster(clip, rate));
    const ClusterReport& r = runs.back();
    std::printf("rate %.2f: node0 served=%lld refused=%lld, survivors "
                "served=%lld\n",
                rate, static_cast<long long>(r.node0_served),
                static_cast<long long>(r.node0_refused),
                static_cast<long long>(r.survivor_served));
    for (int s = 0; s < kSessions; ++s) PrintSessionRow(s, r.sessions[s]);
  }

  // Part 3 — self-heal: write+kill+revive at the 5% point, seed-swept.
  std::printf("\nself-heal: %d puts, node0 killed at write %lld, "
              "%llu seeds @ 5%% device faults\n",
              kSelfHealPuts, static_cast<long long>(kSelfHealKillAtOp),
              static_cast<unsigned long long>(kSelfHealSeeds));
  std::vector<SelfHealReport> heals;
  for (uint64_t seed = 1; seed <= kSelfHealSeeds; ++seed) {
    heals.push_back(RunSelfHeal(0.05, seed));
    const SelfHealReport& h = heals.back();
    std::printf("  seed %llu: puts=%lld/%lld hints=%lld replayed=%lld "
                "repairs=%lld resync=%lld streamed=%lld conv=%s loss=%lld\n",
                static_cast<unsigned long long>(h.seed),
                static_cast<long long>(h.puts - h.put_failures),
                static_cast<long long>(h.puts),
                static_cast<long long>(h.hints_recorded),
                static_cast<long long>(h.hints_replayed),
                static_cast<long long>(h.repairs),
                static_cast<long long>(h.resync_rounds),
                static_cast<long long>(h.resync_blobs_streamed),
                h.converged ? "yes" : "NO",
                static_cast<long long>(h.data_loss_events));
  }

  // ---------------------------------------------------------------- JSON --
  FILE* out = std::fopen("BENCH_replication.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"replication\",\n"
                 "  \"config\": {\"frames\": %d, \"sessions\": %d, "
                 "\"replicas\": %d, \"kill_at_op\": %lld, \"seed\": %llu},\n"
                 "  \"parity\": {\"direct\": {\"presented\": %lld, "
                 "\"late\": %lld, \"misses\": %lld, \"lateness_ns\": %lld},\n"
                 "             \"routed\": {\"presented\": %lld, "
                 "\"late\": %lld, \"misses\": %lld, \"lateness_ns\": %lld}},\n"
                 "  \"sweep\": [\n",
                 kFrames, kSessions, kReplicas,
                 static_cast<long long>(kKillAtOp),
                 static_cast<unsigned long long>(kSeed),
                 static_cast<long long>(direct.elements_presented),
                 static_cast<long long>(direct.late_elements),
                 static_cast<long long>(direct.deadline_misses),
                 static_cast<long long>(direct.total_lateness_ns),
                 static_cast<long long>(routed.elements_presented),
                 static_cast<long long>(routed.late_elements),
                 static_cast<long long>(routed.deadline_misses),
                 static_cast<long long>(routed.total_lateness_ns));
    for (size_t i = 0; i < runs.size(); ++i) {
      const ClusterReport& r = runs[i];
      int64_t presented = 0, dropped = 0, aborts = 0;
      double stall_max = 0;
      bool all_completed = true;
      for (const SessionReport& s : r.sessions) {
        presented += s.presented;
        dropped += s.dropped;
        aborts += s.aborts;
        if (s.stall_max_ms > stall_max) stall_max = s.stall_max_ms;
        all_completed = all_completed && s.completed;
      }
      std::fprintf(
          out,
          "    {\"fault_rate\": %.2f, \"all_completed\": %s, "
          "\"frames_presented\": %lld, \"frames_dropped\": %lld, "
          "\"stream_aborts\": %lld, \"stall_max_ms\": %.3f, "
          "\"failovers\": %lld, \"hedges\": %lld, \"hedge_wins\": %lld, "
          "\"breaker_opens\": %lld, \"deadline_fast_fails\": %lld, "
          "\"deadline_give_ups\": %lld, \"exhausted\": %lld, "
          "\"node0_served\": %lld, \"node0_refused\": %lld, "
          "\"survivor_served\": %lld, \"metric_failovers\": %lld, "
          "\"metric_hedge_wins\": %lld, \"metric_breaker_opens\": %lld, "
          "\"trace_failover_events\": %lld, \"trace_hedge_win_events\": "
          "%lld}%s\n",
          r.fault_rate, all_completed ? "true" : "false",
          static_cast<long long>(presented), static_cast<long long>(dropped),
          static_cast<long long>(aborts), stall_max,
          static_cast<long long>(r.failovers),
          static_cast<long long>(r.hedges),
          static_cast<long long>(r.hedge_wins),
          static_cast<long long>(r.breaker_opens),
          static_cast<long long>(r.deadline_fast_fails),
          static_cast<long long>(r.deadline_give_ups),
          static_cast<long long>(r.exhausted),
          static_cast<long long>(r.node0_served),
          static_cast<long long>(r.node0_refused),
          static_cast<long long>(r.survivor_served),
          static_cast<long long>(r.metric_failovers),
          static_cast<long long>(r.metric_hedge_wins),
          static_cast<long long>(r.metric_breaker_opens),
          static_cast<long long>(r.trace_failover_events),
          static_cast<long long>(r.trace_hedge_events),
          i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"self_heal\": [\n");
    for (size_t i = 0; i < heals.size(); ++i) {
      const SelfHealReport& h = heals[i];
      std::fprintf(
          out,
          "    {\"seed\": %llu, \"fault_rate\": %.2f, \"puts\": %lld, "
          "\"put_failures\": %lld, \"read_failures\": %lld, "
          "\"hints_recorded\": %lld, \"hints_replayed\": %lld, "
          "\"repairs\": %lld, \"repair_pages_streamed\": %lld, "
          "\"resync_rounds\": %lld, \"resync_blobs_streamed\": %lld, "
          "\"data_loss_events\": %lld, \"node0_crashed\": %s, "
          "\"revived\": %s, \"resync_paced\": %s, \"converged\": %s, "
          "\"summaries_identical\": %s, \"metrics_agree\": %s, "
          "\"trace_read_repair\": %lld, \"trace_handoff\": %lld, "
          "\"trace_anti_entropy\": %lld}%s\n",
          static_cast<unsigned long long>(h.seed), h.fault_rate,
          static_cast<long long>(h.puts),
          static_cast<long long>(h.put_failures),
          static_cast<long long>(h.read_failures),
          static_cast<long long>(h.hints_recorded),
          static_cast<long long>(h.hints_replayed),
          static_cast<long long>(h.repairs),
          static_cast<long long>(h.repair_pages_streamed),
          static_cast<long long>(h.resync_rounds),
          static_cast<long long>(h.resync_blobs_streamed),
          static_cast<long long>(h.data_loss_events),
          h.node0_crashed ? "true" : "false", h.revived ? "true" : "false",
          h.resync_paced ? "true" : "false", h.converged ? "true" : "false",
          h.summaries_identical ? "true" : "false",
          h.metrics_agree ? "true" : "false",
          static_cast<long long>(h.trace_read_repair),
          static_cast<long long>(h.trace_handoff),
          static_cast<long long>(h.trace_resync),
          i + 1 < heals.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote BENCH_replication.json\n");
  }

  // ----------------------------------------------------- acceptance gates --
  int failures = 0;
  auto gate = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::printf("ACCEPTANCE FAIL: %s\n", what);
      ++failures;
    }
  };

  // Gate 1 — parity: replication off changes nothing about the stream.
  gate(routed.elements_presented == direct.elements_presented &&
           routed.late_elements == direct.late_elements &&
           routed.deadline_misses == direct.deadline_misses &&
           routed.total_lateness_ns == direct.total_lateness_ns &&
           routed.max_lateness_ns == direct.max_lateness_ns,
       "parity: single co-located replica streams identically to the "
       "direct store");
  gate(direct.elements_presented == kFrames, "parity: clean run presents "
                                             "every frame");

  // Gate 2 — every sweep point survives the node kill: all sessions
  // complete, nothing aborts, every frame is presented or deliberately
  // shed, and the kill actually happened.
  for (const ClusterReport& r : runs) {
    for (int s = 0; s < kSessions; ++s) {
      const SessionReport& session = r.sessions[s];
      gate(session.completed, "sweep: session completes despite node kill");
      gate(session.aborts == 0, "sweep: zero aborted streams");
      gate(session.presented + session.dropped == kFrames,
           "sweep: every frame accounted for");
    }
    gate(r.node0_refused > 0, "sweep: the node kill fired");
    gate(r.failovers >= 1, "sweep: at least one failover");
  }

  // Gate 3 — the ISSUE's 5% point: bounded rebuffer and the full
  // failover/hedge/breaker story visible in stats, metrics, and traces.
  const ClusterReport* at5 = nullptr;
  for (const ClusterReport& r : runs) {
    if (r.fault_rate == 0.05) at5 = &r;
  }
  gate(at5 != nullptr, "5% sweep point present");
  if (at5 != nullptr) {
    for (int s = 0; s < kSessions; ++s) {
      gate(at5->sessions[s].stall_max_ms < 2000,
           "5%: rebuffer bounded (max stall < 2000 ms)");
    }
    gate(at5->hedge_wins >= 1, "5%: at least one hedged read won");
    gate(at5->breaker_opens >= 1, "5%: node0's breaker opened");
    gate(at5->metric_failovers == at5->failovers &&
             at5->metric_hedge_wins == at5->hedge_wins &&
             at5->metric_breaker_opens == at5->breaker_opens,
         "5%: avdb_cluster_* metrics agree with router stats");
    gate(at5->trace_failover_events > 0 && at5->trace_hedge_events > 0,
         "5%: failover and hedge-win trace events recorded");
  }

  // Gate 4 — self-heal, every seed: all quorum puts ack within budget
  // despite the mid-workload node kill, every acked blob reads back, at
  // least one read-repair and one handoff replay are observed, the revived
  // node converges to a byte-identical directory, zero data-loss events,
  // and the repair/handoff metrics agree with the store's stats.
  for (const SelfHealReport& h : heals) {
    gate(h.put_failures == 0,
         "self-heal: every W=2/N=3 put acks within budget");
    gate(h.node0_crashed, "self-heal: the mid-workload node kill fired");
    gate(h.read_failures == 0,
         "self-heal: every acked blob reads back byte-identical");
    gate(h.hints_recorded >= 1 && h.hints_replayed >= 1,
         "self-heal: at least one hinted handoff recorded and replayed");
    gate(h.repairs >= 1 && h.trace_read_repair >= 1,
         "self-heal: at least one read-repair observed");
    gate(h.revived, "self-heal: crash-restart revive succeeded");
    gate(h.resync_paced,
         "self-heal: MaybeRunAntiEntropy honors the resync interval");
    gate(h.converged && h.summaries_identical,
         "self-heal: revived node converges to a byte-identical directory");
    gate(h.data_loss_events == 0, "self-heal: zero data-loss events");
    gate(h.metrics_agree,
         "self-heal: avdb_cluster_* metrics agree with store stats");
    gate(h.trace_handoff >= 1 && h.trace_resync >= 1,
         "self-heal: handoff_replay and anti_entropy trace events recorded");
  }

  if (failures == 0) {
    std::printf("\nAll acceptance gates passed.\n");
  }
  return failures == 0 ? 0 : 1;
}

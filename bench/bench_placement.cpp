// Ablation — §3.3 "data placement: should allow application involvement".
//
// The paper's exact example: an application mixing two video values.
// "Depending upon the characteristics of the storage devices in use, it may
// simply not be possible for the database to simultaneously produce the two
// video values unless they reside on different devices... the database
// would need to copy one value to a temporary area on a second device.
// This could be so time-consuming as to destroy any sense of
// interactivity."
//
// Three configurations of the same two-stream mix:
//   A. both values on one disk (placement hidden, naive),
//   B. values placed on two disks by the application (client-visible),
//   C. same-disk start, database transparently copies first (the paper's
//      "preserve physical data independence" fallback).

#include <cstdio>
#include <iostream>

#include "activity/sinks.h"
#include "activity/transformers.h"
#include "base/logging.h"
#include "db/database.h"
#include "media/synthetic.h"

using namespace avdb;

namespace {

// 320x240x8 @ 15 fps: ~21 ms transfer per frame on a 3.5 MB/s disk; two
// interleaved streams also pay an ~18 ms seek per frame, which does not fit
// in the 66.7 ms frame period.
const MediaDataType kType = MediaDataType::RawVideo(320, 240, 8, Rational(15));
constexpr int kFrames = 45;  // 3 s

struct MixReport {
  double fps = 0;
  int64_t misses = 0;
  double mean_late_ms = 0;
  double copy_cost_s = 0;
};

MixReport Run(bool two_devices, bool copy_first) {
  AvDatabase db;
  AVDB_MUST(db.AddDevice("disk0", DeviceProfile::MagneticDisk()));
  AVDB_MUST(db.AddDevice("disk1", DeviceProfile::MagneticDisk()));

  ClassDef clip_class("Clip");
  AVDB_MUST(clip_class.AddAttribute({"footage", AttrType::kVideo, {}, {}}));
  AVDB_MUST(db.DefineClass(clip_class));

  auto value_a = synthetic::GenerateVideo(
                     kType, kFrames, synthetic::VideoPattern::kMovingBox, 1)
                     .value();
  auto value_b = synthetic::GenerateVideo(
                     kType, kFrames, synthetic::VideoPattern::kMovingGradient,
                     2)
                     .value();
  Oid oid_a = db.NewObject("Clip").value();
  Oid oid_b = db.NewObject("Clip").value();
  AVDB_MUST(db.SetMediaAttribute(oid_a, "footage", *value_a, "disk0"));
  AVDB_MUST(db.SetMediaAttribute(oid_b, "footage", *value_b,
                       two_devices ? "disk1" : "disk0"));

  MixReport report;
  if (copy_first) {
    // The "physical data independence" path: relocate B before playing.
    auto moved = db.MoveAttribute(oid_b, "footage", "disk1");
    if (!moved.ok()) {
      std::cerr << "move failed: " << moved.status() << "\n";
      return report;
    }
    report.copy_cost_s = moved.value().ToSecondsF();
  }

  // Build the sources directly (bypassing admission): this experiment
  // measures what the device actually delivers per placement — admission
  // control would simply refuse configuration A outright (see
  // bench_admission for that side of the argument).
  auto make_source = [&](const char* name, Oid oid) {
    const MediaVersion version =
        db.MediaHistory(oid, "footage").value().back();
    auto value = db.LoadMediaAttribute(oid, "footage").value();
    SourceOptions options;
    options.store = db.devices().GetStore(version.device).value();
    options.blob_name = version.blob_name;
    options.device_queue = db.DeviceQueue(version.device).value();
    auto source = VideoSource::Create(name, ActivityLocation::kDatabase,
                                      db.env(), options);
    AVDB_MUST(source->Bind(value, VideoSource::kPortOut));
    AVDB_MUST(db.graph().Add(source));
    StreamHandle handle;
    handle.source = source.get();
    return handle;
  };
  StreamHandle stream_a = make_source("srcA", oid_a);
  StreamHandle stream_b = make_source("srcB", oid_b);
  auto mixer = VideoMixer::Create("mix", ActivityLocation::kDatabase,
                                  db.env(), kType, 0.5);
  auto window = VideoWindow::Create("monitor", ActivityLocation::kClient,
                                    db.env(),
                                    VideoQuality(320, 240, 8, Rational(15)));
  AVDB_MUST(db.graph().Add(mixer));
  AVDB_MUST(db.graph().Add(window));
  AVDB_MUST(db.NewConnection(stream_a.source, VideoSource::kPortOut, mixer.get(),
                   VideoMixer::kPortInA));
  AVDB_MUST(db.NewConnection(stream_b.source, VideoSource::kPortOut, mixer.get(),
                   VideoMixer::kPortInB));
  AVDB_MUST(db.NewConnection(mixer.get(), VideoMixer::kPortOut, window.get(),
                   VideoWindow::kPortIn));
  // Start sinks/transformers first, then the (hand-built) sources.
  for (const auto& a : db.graph().activities()) {
    if (a->state() == MediaActivity::State::kIdle &&
        a->Kind() != ActivityKind::kSource) {
      AVDB_MUST(a->Start());
    }
  }
  AVDB_MUST(stream_a.source->Start());
  AVDB_MUST(stream_b.source->Start());
  db.RunUntilIdle();

  report.fps = window->stats().AchievedRate();
  report.misses = window->stats().deadline_misses;
  report.mean_late_ms = window->stats().MeanLatenessMs();
  return report;
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
               "Placement experiment: two-stream video mix (\"video mixing is\n"
               "commonly used during video editing\", §3.3)\n"
               "==============================================================\n\n"
               "workload: mix two 320x240x8@15 values (" << kFrames
            << " frames) on 3.5 MB/s disks\n\n";

  const MixReport shared = Run(/*two_devices=*/false, /*copy_first=*/false);
  const MixReport split = Run(/*two_devices=*/true, /*copy_first=*/false);
  const MixReport copied = Run(/*two_devices=*/false, /*copy_first=*/true);

  std::printf("%-34s %10s %8s %12s %12s\n", "configuration", "fps", "misses",
              "late(ms)", "copy-cost(s)");
  std::printf("%-34s %10.2f %8lld %12.2f %12s\n",
              "A: both values on one disk", shared.fps,
              static_cast<long long>(shared.misses), shared.mean_late_ms,
              "-");
  std::printf("%-34s %10.2f %8lld %12.2f %12s\n",
              "B: placed on two disks (visible)", split.fps,
              static_cast<long long>(split.misses), split.mean_late_ms, "-");
  std::printf("%-34s %10.2f %8lld %12.2f %12.2f\n",
              "C: transparent copy, then play", copied.fps,
              static_cast<long long>(copied.misses), copied.mean_late_ms,
              copied.copy_cost_s);

  std::printf(
      "\nShape check: A thrashes the single arm (low fps, misses); B runs\n"
      "at rate; C runs at rate only after a multi-second copy — §3.3's\n"
      "\"destroys any sense of interactivity\". Client-visible placement\n"
      "is the only configuration that is both immediate and smooth.\n");
  return (split.misses < shared.misses || shared.fps < split.fps) ? 0 : 1;
}

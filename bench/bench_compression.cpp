// Ablation — §1's enabling claim: "the compressed video has data rates
// comparable to bus and disk bandwidths and so opens the possibility of
// video recording and playback from conventional secondary storage
// devices."
//
// The same content is encoded with every stored representation; the table
// reports the measured stored data rate against the two 1993 device
// bandwidths, and the number of concurrent streams each representation
// admits from one magnetic disk.

#include <cstdio>
#include <iostream>

#include "base/logging.h"
#include "base/strings.h"
#include "codec/registry.h"
#include "db/database.h"
#include "media/synthetic.h"

using namespace avdb;

namespace {

const MediaDataType kType = MediaDataType::RawVideo(320, 240, 8, Rational(15));
constexpr int kFrames = 45;

/// Streams admitted by a fresh database holding one copy of `value` per
/// prospective client.
int AdmittedStreams(const MediaValue& value) {
  // Plenty of decoders and buffers: the experiment isolates disk bandwidth.
  AvDatabaseConfig config;
  config.decoder_units = 64;
  config.buffer_pool_bytes = 64LL * 1024 * 1024;
  AvDatabase db(config);
  AVDB_MUST(db.AddDevice("disk0", DeviceProfile::MagneticDisk()));
  ClassDef clip_class("Clip");
  AVDB_MUST(clip_class.AddAttribute({"footage", AttrType::kVideo, {}, {}}));
  AVDB_MUST(db.DefineClass(clip_class));
  int admitted = 0;
  for (int i = 0; i < 64; ++i) {
    Oid oid = db.NewObject("Clip").value();
    if (!db.SetMediaAttribute(oid, "footage", value, "disk0").ok()) break;
    auto stream = db.NewSourceFor("c" + std::to_string(i), oid, "footage");
    if (!stream.ok()) break;
    ++admitted;
  }
  return admitted;
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
               "Compression experiment: stored rate vs device bandwidth (§1)\n"
               "==============================================================\n\n"
               "content: 320x240x8@15 (raw 1.15 MB/s); devices: magnetic disk "
               "3.5 MB/s, CD-ROM 300 KB/s\n\n";

  auto raw = synthetic::GenerateVideo(kType, kFrames,
                                      synthetic::VideoPattern::kMovingBox)
                 .value();
  const double duration_s = raw->NaturalDuration().ToSecondsF();
  const int64_t disk_bw = DeviceProfile::MagneticDisk().transfer_bytes_per_sec;
  const int64_t cdrom_bw = DeviceProfile::CdRom().transfer_bytes_per_sec;

  std::printf("%-14s %12s %12s %10s %10s %14s\n", "representation",
              "bytes", "rate(KB/s)", "disk?", "CD-ROM?", "streams/disk");

  // Raw first.
  {
    const double rate = raw->StoredBytes() / duration_s;
    std::printf("%-14s %12lld %12.0f %10s %10s %14d\n", "raw",
                static_cast<long long>(raw->StoredBytes()), rate / 1024,
                rate <= disk_bw ? "yes" : "NO",
                rate <= cdrom_bw ? "yes" : "NO", AdmittedStreams(*raw));
  }
  for (EncodingFamily family :
       {EncodingFamily::kIntra, EncodingFamily::kDelta, EncodingFamily::kInter,
        EncodingFamily::kScalable}) {
    auto codec = CodecRegistry::Default().VideoCodecFor(family).value();
    VideoCodecParams params;
    params.quality = 75;
    params.gop_size = 15;
    auto encoded = codec->Encode(*raw, params).value();
    auto value = EncodedVideoValue::Create(codec, encoded).value();
    const double rate = value->StoredBytes() / duration_s;
    std::printf("%-14s %12lld %12.0f %10s %10s %14d\n",
                std::string(EncodingFamilyName(family)).c_str(),
                static_cast<long long>(value->StoredBytes()), rate / 1024,
                rate <= disk_bw ? "yes" : "NO",
                rate <= cdrom_bw ? "yes" : "NO", AdmittedStreams(*value));
  }

  std::printf(
      "\nShape check: raw video monopolizes the disk (and cannot come off a\n"
      "CD-ROM at all); intra coding multiplies the stream count; predictive\n"
      "coding multiplies it again and fits CD-ROM rates — the confluence §1\n"
      "says makes AV databases viable.\n");
  return 0;
}

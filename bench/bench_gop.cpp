// Ablation — the GOP-size design choice inside the inter codec: the
// §3.1 observation that a media data type "governs the encoding and
// interpretation of its elements" has operational consequences — longer
// GOPs compress better but make random access (cueing, §4.2) pay more
// decode work. This trade-off is why the editing scenario favours intra
// representations while the archive favours predictive ones.

#include <cstdio>
#include <iostream>

#include "base/rng.h"
#include "codec/inter_codec.h"
#include "media/synthetic.h"

using namespace avdb;

int main() {
  std::cout << "==============================================================\n"
               "GOP-size experiment: storage vs random-access cost\n"
               "==============================================================\n\n";

  const auto type = MediaDataType::RawVideo(176, 144, 8, Rational(15));
  const int kFrames = 60;
  auto video = synthetic::GenerateVideo(type, kFrames,
                                        synthetic::VideoPattern::kMovingBox)
                   .value();
  const int64_t raw_bytes = video->StoredBytes();
  InterCodec codec;

  std::printf("content: %d frames of %s (%lld raw bytes)\n\n", kFrames,
              type.ToString().c_str(), static_cast<long long>(raw_bytes));
  std::printf("%8s %14s %12s %24s %22s\n", "GOP", "stored bytes", "ratio",
              "frames decoded per seek", "mean err (q75)");

  for (int gop : {1, 5, 15, 30, 60}) {
    VideoCodecParams params;
    params.quality = 75;
    params.gop_size = gop;
    auto encoded = codec.Encode(*video, params).value();

    // Random access cost: 40 random seeks, counting internally decoded
    // frames per requested frame.
    Rng rng(42);
    auto session = codec.NewDecoder(encoded).value();
    int64_t decoded_before = 0;
    double total_cost = 0;
    double total_err = 0;
    for (int trial = 0; trial < 40; ++trial) {
      const int64_t target = rng.NextInRange(0, kFrames - 1);
      auto frame = session->DecodeFrame(target).value();
      total_cost += static_cast<double>(
          session->FramesDecodedInternally() - decoded_before);
      decoded_before = session->FramesDecodedInternally();
      total_err +=
          frame.MeanAbsoluteError(video->Frame(target).value()).value();
    }

    std::printf("%8d %14lld %11.1fx %24.1f %22.2f\n", gop,
                static_cast<long long>(encoded.TotalBytes()),
                static_cast<double>(raw_bytes) /
                    static_cast<double>(encoded.TotalBytes()),
                total_cost / 40.0, total_err / 40.0);
  }

  std::printf(
      "\nShape check: compression improves monotonically with GOP size while\n"
      "random access degrades linearly (~GOP/2 extra decodes per seek) —\n"
      "the trade DESIGN.md calls out between editing (intra, GOP=1) and\n"
      "archival playback (long GOPs).\n");
  return 0;
}

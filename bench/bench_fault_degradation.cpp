// Robustness — degrade, don't stall (§3.3: continuous delivery must
// survive the resource faults 1993 hardware takes for granted).
//
// A stored scalable clip (3 layers) is streamed to a video window while a
// deterministic fault injector perturbs the device: transient read errors
// (retried with backoff charged in virtual time), 30 ms latency spikes, and
// 400 ms stuck-head stalls. The shared DegradationController turns sink
// lateness into ladder actions at the source — drop frame, lower quality,
// pause/re-anchor, abort — so playback finishes late-but-complete instead
// of stopping at the first fault.
//
// Part 2 revokes network bandwidth mid-stream (Channel::SetLineRate to 1/8
// of nominal at t=10 s), re-admits the stream at reduced demand through
// AdmissionController::Readmit, and checks the accounting invariants:
// availability clamps at zero and the shortfall reads as oversubscription
// until the readmission resolves it.
//
// Everything is virtual-time deterministic: same seed, same spec, same
// numbers — the robustness tests pin exactly that.
//
// Output: BENCH_fault_degradation.json. Exit code is non-zero when the
// ISSUE acceptance gates fail (5% fault rate must complete with zero
// unhandled errors, bounded stall, and at least one quality-degradation
// event; fault injection off must look exactly like the fault-free path).

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "activity/graph.h"
#include "activity/sinks.h"
#include "activity/sources.h"
#include "base/fault_injector.h"
#include "base/logging.h"
#include "codec/encoded_value.h"
#include "codec/scalable_codec.h"
#include "media/synthetic.h"
#include "net/channel.h"
#include "sched/admission.h"
#include "sched/degradation.h"
#include "sched/event_engine.h"
#include "storage/media_store.h"
#include "storage/value_serializer.h"

using namespace avdb;

namespace {

const MediaDataType kType = MediaDataType::RawVideo(176, 144, 8, Rational(10));
constexpr int kFrames = 300;  // 30 s of video
constexpr uint64_t kSeed = 42;

/// The sweep's fault profile: transient errors at `p`, bus spikes at `p`,
/// and rarer-but-long head recalibrations — the mix that exercises every
/// rung of the ladder without making completion impossible.
FaultSpec SweepSpec(double p) {
  FaultSpec spec;
  spec.read_error_rate = p;
  spec.latency_spike_rate = p;
  spec.latency_spike_ns = 30 * 1000 * 1000;  // 30 ms
  spec.stuck_head_rate = p / 2;
  spec.stuck_head_stall_ns = 400 * 1000 * 1000;  // 400 ms recalibration
  return spec;
}

/// Builds the scalable clip once (host-side); every run re-serializes it
/// into a fresh store so device state never leaks between sweep points.
std::shared_ptr<EncodedVideoValue> MakeClip() {
  auto raw = synthetic::GenerateVideo(kType, kFrames,
                                      synthetic::VideoPattern::kMovingBox)
                 .value();
  VideoCodecParams params;
  params.layer_count = 3;
  auto codec = std::make_shared<ScalableCodec>();
  auto encoded = codec->Encode(*raw, params).value();
  return EncodedVideoValue::Create(codec, std::move(encoded)).value();
}

struct RunReport {
  double fault_rate = 0;
  bool completed = false;       // window saw end of stream
  int64_t presented = 0;
  int64_t dropped = 0;          // FRAME_DROPPED events
  int64_t late = 0;
  int64_t deadline_misses = 0;
  double stall_total_ms = 0;    // summed positive lateness at the window
  double stall_max_ms = 0;
  int64_t retries = 0;          // transient faults absorbed by the store
  int64_t exhausted = 0;        // reads that failed even after retries
  double backoff_ms = 0;        // virtual time charged to retry backoff
  int64_t injected_faults = 0;  // device-level injected read failures
  double injected_latency_ms = 0;
  int64_t fault_retry_events = 0;
  int64_t quality_lowers = 0;
  int64_t quality_raises = 0;
  int64_t pauses = 0;
  int64_t aborts = 0;
  int min_layers = 3;           // lowest active layer count seen
};

RunReport RunSweepPoint(const std::shared_ptr<EncodedVideoValue>& clip,
                        double fault_rate) {
  RunReport report;
  report.fault_rate = fault_rate;

  EventEngine engine;
  ActivityEnv env{&engine, nullptr};
  ActivityGraph graph(env);
  auto device =
      std::make_shared<BlockDevice>("disk0", DeviceProfile::MagneticDisk());
  MediaStore store(device, nullptr);
  ServiceQueue queue("disk0");
  AVDB_MUST(store.Put("clip", value_serializer::Serialize(*clip).value()));

  FaultInjector injector(SweepSpec(fault_rate), kSeed);
  if (fault_rate > 0) device->set_fault_injector(&injector);

  DegradationController degrade;

  SourceOptions source_options;
  source_options.store = &store;
  source_options.blob_name = "clip";
  source_options.device_queue = &queue;
  source_options.degrade = &degrade;
  auto source = VideoSource::Create("src", ActivityLocation::kDatabase, env,
                                    source_options);
  AVDB_MUST(source->Bind(clip, VideoSource::kPortOut));

  SinkOptions sink_options;
  sink_options.degrade = &degrade;
  auto window =
      VideoWindow::Create("win", ActivityLocation::kClient, env,
                          VideoQuality(176, 144, 8, Rational(10)),
                          sink_options);

  AVDB_MUST(source->Catch(VideoSource::kFaultRetry, [&](const ActivityEvent&) {
    ++report.fault_retry_events;
  }));
  AVDB_MUST(source->Catch(VideoSource::kFrameDropped, [&](const ActivityEvent&) {
    ++report.dropped;
  }));
  VideoSource* source_raw = source.get();
  AVDB_MUST(source->Catch(VideoSource::kQualityChanged, [&](const ActivityEvent&) {
    if (source_raw->active_layers() < report.min_layers) {
      report.min_layers = source_raw->active_layers();
    }
  }));
  AVDB_MUST(window->Catch(VideoWindow::kLastFrame, [&](const ActivityEvent&) {
    report.completed = true;
  }));

  AVDB_MUST(graph.Add(source));
  AVDB_MUST(graph.Add(window));
  AVDB_MUST(graph.Connect(source.get(), VideoSource::kPortOut, window.get(),
                VideoWindow::kPortIn));
  AVDB_MUST(graph.StartAll());
  graph.RunUntilIdle();

  const StreamStats& stats = window->stats();
  report.presented = stats.elements_presented;
  report.late = stats.late_elements;
  report.deadline_misses = stats.deadline_misses;
  report.stall_total_ms = stats.total_lateness_ns / 1e6;
  report.stall_max_ms = stats.max_lateness_ns / 1e6;
  report.retries = store.stats().retries;
  report.exhausted = store.stats().exhausted;
  report.backoff_ms = store.stats().backoff_ns / 1e6;
  report.injected_faults = device->stats().injected_faults;
  report.injected_latency_ms = device->stats().injected_latency.ToSecondsF() * 1e3;
  report.quality_lowers = degrade.stats().lowers_taken;
  report.quality_raises = degrade.stats().raises_taken;
  report.pauses = degrade.stats().pauses_taken;
  report.aborts = degrade.stats().aborts_taken;
  return report;
}

struct RevocationReport {
  int64_t line_rate_before = 0;
  int64_t line_rate_after = 0;
  int64_t excess_on_revoke = 0;     // reserved B/s beyond the new line rate
  double pool_over_on_revoke = 0;   // admission-pool oversubscription
  int64_t available_floor = 0;      // min AvailableBandwidth observed (>= 0)
  int64_t oversub_after_readmit = 0;
  bool readmitted = false;
  double demand_before = 0;
  double demand_after = 0;
  bool completed = false;
  int64_t presented = 0;
  int64_t dropped = 0;
  int64_t pauses = 0;
  int64_t aborts = 0;
  double stall_max_ms = 0;
};

RevocationReport RunRevocation(const std::shared_ptr<EncodedVideoValue>& clip) {
  RevocationReport report;

  EventEngine engine;
  ActivityEnv env{&engine, nullptr};
  ActivityGraph graph(env);
  auto device =
      std::make_shared<BlockDevice>("disk0", DeviceProfile::MagneticDisk());
  MediaStore store(device, nullptr);
  ServiceQueue queue("disk0");
  AVDB_MUST(store.Put("clip", value_serializer::Serialize(*clip).value()));

  // A light background fault load keeps the retry path warm; the main event
  // is the deterministic revocation below.
  FaultInjector device_faults(SweepSpec(0.02), kSeed);
  device->set_fault_injector(&device_faults);

  auto channel =
      std::make_shared<Channel>("lan", Channel::Profile::Ethernet10());
  FaultSpec collapse;
  collapse.bandwidth_collapse_rate = 0.05;
  collapse.bandwidth_collapse_factor = 0.25;
  FaultInjector channel_faults(collapse, kSeed + 1);
  channel->set_fault_injector(&channel_faults);

  DegradationController degrade;

  SourceOptions source_options;
  source_options.store = &store;
  source_options.blob_name = "clip";
  source_options.device_queue = &queue;
  source_options.degrade = &degrade;
  auto source = VideoSource::Create("src", ActivityLocation::kDatabase, env,
                                    source_options);
  AVDB_MUST(source->Bind(clip, VideoSource::kPortOut));

  SinkOptions sink_options;
  sink_options.degrade = &degrade;
  auto window =
      VideoWindow::Create("win", ActivityLocation::kClient, env,
                          VideoQuality(176, 144, 8, Rational(10)),
                          sink_options);
  AVDB_MUST(source->Catch(VideoSource::kFrameDropped, [&](const ActivityEvent&) {
    ++report.dropped;
  }));
  AVDB_MUST(window->Catch(VideoWindow::kLastFrame, [&](const ActivityEvent&) {
    report.completed = true;
  }));

  // Admission: the stream's raw-frame rate on the wire.
  const double frame_bytes = 176.0 * 144.0;  // raw 8-bit frames on the wire
  const double demand = frame_bytes * 10.0;  // bytes/sec at 10 fps
  report.demand_before = demand;
  report.line_rate_before = channel->LineRate();
  AdmissionController admission;
  AVDB_MUST(admission.RegisterPool("net.bw", static_cast<double>(channel->LineRate())));
  AdmissionTicket ticket =
      admission.Admit({{"net.bw", demand}}).value();
  channel->ReserveBandwidth(static_cast<int64_t>(demand)).value();
  report.available_floor = channel->AvailableBandwidth();

  AVDB_MUST(graph.Add(source));
  AVDB_MUST(graph.Add(window));
  AVDB_MUST(graph.Connect(source.get(), VideoSource::kPortOut, window.get(),
                VideoWindow::kPortIn, channel));

  // t = 10 s: the link loses 7/8 of its rate (failover onto a loaded
  // backup). Revoke, surface the oversubscription, readmit at a demand the
  // shrunken link can actually carry.
  engine.ScheduleAt(WorldTime::FromSeconds(10), [&] {
    const int64_t new_rate = report.line_rate_before / 8;
    report.excess_on_revoke = channel->SetLineRate(new_rate);
    report.line_rate_after = channel->LineRate();
    report.pool_over_on_revoke =
        admission.SetPoolCapacity("net.bw", static_cast<double>(new_rate))
            .value();
    if (channel->AvailableBandwidth() < report.available_floor) {
      report.available_floor = channel->AvailableBandwidth();
    }
    // Reduced demand: half the new line rate — room for the retransmits
    // and cross traffic that shrank the link in the first place.
    const double reduced = static_cast<double>(new_rate) / 2.0;
    channel->ReleaseBandwidth(static_cast<int64_t>(demand));
    auto readmit = admission.Readmit(&ticket, {{"net.bw", reduced}});
    if (readmit.ok()) {
      ticket = std::move(readmit).value();
      report.readmitted = true;
      report.demand_after = reduced;
      AVDB_MUST(channel->ReserveBandwidth(static_cast<int64_t>(reduced)));
    }
    report.oversub_after_readmit = channel->OversubscribedBandwidth();
    if (channel->AvailableBandwidth() < report.available_floor) {
      report.available_floor = channel->AvailableBandwidth();
    }
  });

  AVDB_MUST(graph.StartAll());
  graph.RunUntilIdle();

  report.presented = window->stats().elements_presented;
  report.stall_max_ms = window->stats().max_lateness_ns / 1e6;
  report.pauses = degrade.stats().pauses_taken;
  report.aborts = degrade.stats().aborts_taken;
  admission.Release(&ticket);
  return report;
}

}  // namespace

int main() {
  std::cout
      << "==============================================================\n"
         "Fault injection + graceful degradation: stream a 30 s scalable\n"
         "clip through injected storage faults; degrade, don't stall\n"
         "==============================================================\n\n";

  auto clip = MakeClip();

  const std::vector<double> rates = {0.0, 0.01, 0.02, 0.05, 0.10};
  std::vector<RunReport> runs;
  std::printf("%-6s %5s %6s %6s %7s %6s %6s %6s %6s %9s %9s\n", "rate",
              "done", "shown", "drop", "retry", "exh", "lower", "raise",
              "pause", "stall(ms)", "max(ms)");
  for (double rate : rates) {
    runs.push_back(RunSweepPoint(clip, rate));
    const RunReport& r = runs.back();
    std::printf("%-6.2f %5s %6lld %6lld %7lld %6lld %6lld %6lld %6lld %9.1f "
                "%9.1f\n",
                r.fault_rate, r.completed ? "yes" : "NO",
                static_cast<long long>(r.presented),
                static_cast<long long>(r.dropped),
                static_cast<long long>(r.retries),
                static_cast<long long>(r.exhausted),
                static_cast<long long>(r.quality_lowers),
                static_cast<long long>(r.quality_raises),
                static_cast<long long>(r.pauses), r.stall_total_ms,
                r.stall_max_ms);
  }

  const RevocationReport rev = RunRevocation(clip);
  std::printf(
      "\nrevocation: line %lld -> %lld B/s at t=10 s; excess %lld, pool "
      "over %.0f,\n  readmitted=%s at %.0f B/s, available floor %lld, "
      "oversub after %lld,\n  presented %lld, dropped %lld, pauses %lld, "
      "completed=%s\n",
      static_cast<long long>(rev.line_rate_before),
      static_cast<long long>(rev.line_rate_after),
      static_cast<long long>(rev.excess_on_revoke), rev.pool_over_on_revoke,
      rev.readmitted ? "yes" : "NO", rev.demand_after,
      static_cast<long long>(rev.available_floor),
      static_cast<long long>(rev.oversub_after_readmit),
      static_cast<long long>(rev.presented),
      static_cast<long long>(rev.dropped),
      static_cast<long long>(rev.pauses), rev.completed ? "yes" : "NO");

  // ---------------------------------------------------------------- JSON --
  FILE* out = std::fopen("BENCH_fault_degradation.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"fault_degradation\",\n"
                 "  \"config\": {\"frames\": %d, \"rate_fps\": 10, "
                 "\"layers\": 3, \"seed\": %llu},\n"
                 "  \"sweep\": [\n",
                 kFrames, static_cast<unsigned long long>(kSeed));
    for (size_t i = 0; i < runs.size(); ++i) {
      const RunReport& r = runs[i];
      std::fprintf(
          out,
          "    {\"fault_rate\": %.2f, \"completed\": %s, "
          "\"frames_presented\": %lld, \"frames_dropped\": %lld, "
          "\"late_frames\": %lld, \"deadline_misses\": %lld, "
          "\"stall_total_ms\": %.3f, \"stall_max_ms\": %.3f, "
          "\"retries\": %lld, \"exhausted_reads\": %lld, "
          "\"backoff_ms\": %.3f, \"injected_faults\": %lld, "
          "\"injected_latency_ms\": %.3f, \"fault_retry_events\": %lld, "
          "\"quality_lowers\": %lld, \"quality_raises\": %lld, "
          "\"pauses\": %lld, \"aborts\": %lld, \"min_layers\": %d}%s\n",
          r.fault_rate, r.completed ? "true" : "false",
          static_cast<long long>(r.presented),
          static_cast<long long>(r.dropped), static_cast<long long>(r.late),
          static_cast<long long>(r.deadline_misses), r.stall_total_ms,
          r.stall_max_ms, static_cast<long long>(r.retries),
          static_cast<long long>(r.exhausted), r.backoff_ms,
          static_cast<long long>(r.injected_faults), r.injected_latency_ms,
          static_cast<long long>(r.fault_retry_events),
          static_cast<long long>(r.quality_lowers),
          static_cast<long long>(r.quality_raises),
          static_cast<long long>(r.pauses), static_cast<long long>(r.aborts),
          r.min_layers, i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(
        out,
        "  ],\n"
        "  \"revocation\": {\"line_rate_before\": %lld, "
        "\"line_rate_after\": %lld, \"excess_on_revoke\": %lld, "
        "\"pool_oversubscription\": %.0f, \"readmitted\": %s, "
        "\"demand_before\": %.0f, \"demand_after\": %.0f, "
        "\"available_floor\": %lld, \"oversub_after_readmit\": %lld, "
        "\"frames_presented\": %lld, \"frames_dropped\": %lld, "
        "\"pauses\": %lld, \"aborts\": %lld, \"stall_max_ms\": %.3f, "
        "\"completed\": %s}\n"
        "}\n",
        static_cast<long long>(rev.line_rate_before),
        static_cast<long long>(rev.line_rate_after),
        static_cast<long long>(rev.excess_on_revoke),
        rev.pool_over_on_revoke, rev.readmitted ? "true" : "false",
        rev.demand_before, rev.demand_after,
        static_cast<long long>(rev.available_floor),
        static_cast<long long>(rev.oversub_after_readmit),
        static_cast<long long>(rev.presented),
        static_cast<long long>(rev.dropped),
        static_cast<long long>(rev.pauses),
        static_cast<long long>(rev.aborts), rev.stall_max_ms,
        rev.completed ? "true" : "false");
    std::fclose(out);
    std::printf("\nwrote BENCH_fault_degradation.json\n");
  }

  // ----------------------------------------------------- acceptance gates --
  int failures = 0;
  auto gate = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::printf("ACCEPTANCE FAIL: %s\n", what);
      ++failures;
    }
  };

  // Gate 1 — injection off is the fault-free path: nothing retried,
  // dropped, degraded, or late.
  const RunReport& clean = runs[0];
  gate(clean.completed && clean.presented == kFrames,
       "rate 0: all frames presented");
  gate(clean.retries == 0 && clean.dropped == 0 && clean.quality_lowers == 0 &&
           clean.pauses == 0 && clean.aborts == 0,
       "rate 0: no retries, drops, or ladder actions");
  gate(clean.stall_max_ms == 0, "rate 0: zero stall");

  // Gate 2 — the ISSUE's 5% acceptance point: playback completes with zero
  // unhandled errors, stall time bounded, and at least one
  // quality-degradation event.
  const RunReport* at5 = nullptr;
  for (const RunReport& r : runs) {
    if (r.fault_rate == 0.05) at5 = &r;
  }
  gate(at5 != nullptr, "5% sweep point present");
  if (at5 != nullptr) {
    gate(at5->completed, "5%: playback completes");
    gate(at5->aborts == 0, "5%: no aborted stream (unhandled error)");
    gate(at5->presented + at5->dropped == kFrames,
         "5%: every frame accounted for (presented or deliberately shed)");
    gate(at5->quality_lowers + at5->pauses >= 1,
         "5%: at least one quality-degradation event");
    gate(at5->stall_max_ms > 0 && at5->stall_max_ms < 2000,
         "5%: stall bounded (0 < max < 2000 ms)");
    gate(at5->retries > 0, "5%: retry policy absorbed transient faults");
  }

  // Gate 3 — revocation invariants: availability never negative, the
  // shortfall is visible as oversubscription, and the reduced-demand
  // readmission resolves it while the stream still finishes.
  gate(rev.available_floor >= 0, "revocation: AvailableBandwidth() >= 0");
  gate(rev.excess_on_revoke > 0 && rev.pool_over_on_revoke > 0,
       "revocation: oversubscription surfaced on revoke");
  gate(rev.readmitted, "revocation: reduced-demand readmission succeeded");
  gate(rev.oversub_after_readmit == 0,
       "revocation: readmission resolves oversubscription");
  gate(rev.completed && rev.aborts == 0,
       "revocation: stream still completes without abort");

  if (failures == 0) {
    std::printf("\nAll acceptance gates passed.\n");
  }
  return failures == 0 ? 0 : 1;
}

// Figure 3 — "AV database system and applications."
//
// Regenerates the architecture as a running system: database-resident
// activities bound to stored, temporally-composed AV values, streaming
// over network connections to application-resident sinks, with requests
// mediated by the database. The measured table covers the client
// interaction the figure frames: query latency vs stream setup vs
// transfer, and the asynchrony of the interface (the client issues further
// requests while its stream plays).

#include <cstdio>
#include <iostream>

#include "activity/sinks.h"
#include "base/logging.h"
#include "base/strings.h"
#include "codec/registry.h"
#include "db/database.h"
#include "media/synthetic.h"

using namespace avdb;

namespace {

constexpr int kCatalogSize = 200;

}  // namespace

int main() {
  std::cout << "==============================================================\n"
               "Figure 3 experiment: database/application interaction\n"
               "==============================================================\n\n";

  AvDatabase db;
  AVDB_MUST(db.AddDevice("disk0", DeviceProfile::MagneticDisk()));
  AVDB_MUST(db.AddDevice("disk1", DeviceProfile::MagneticDisk()));
  AVDB_MUST(db.AddChannel("net", Channel::Profile::Ethernet10()));

  ClassDef newscast("SimpleNewscast");
  AVDB_MUST(newscast.AddAttribute({"title", AttrType::kString, {}, {}}));
  AVDB_MUST(newscast.AddAttribute({"whenBroadcast", AttrType::kDate, {}, {}}));
  AVDB_MUST(newscast.AddAttribute({"videoTrack", AttrType::kVideo, {}, {}}));
  AVDB_MUST(db.DefineClass(newscast));

  // Populate a catalog; one entry carries real (encoded) footage.
  const auto vtype = MediaDataType::RawVideo(176, 144, 8, Rational(10));
  auto raw = synthetic::GenerateVideo(vtype, 50,
                                      synthetic::VideoPattern::kMovingBox)
                 .value();
  auto codec =
      CodecRegistry::Default().VideoCodecFor(EncodingFamily::kIntra).value();
  VideoCodecParams cparams;
  cparams.quality = 80;
  auto footage =
      EncodedVideoValue::Create(codec, codec->Encode(*raw, cparams).value())
          .value();

  Oid target;
  for (int i = 0; i < kCatalogSize; ++i) {
    Oid oid = db.NewObject("SimpleNewscast").value();
    AVDB_MUST(db.SetScalar(oid, "title",
                 std::string(i == 137 ? "60 Minutes"
                                      : "Broadcast #" + std::to_string(i))));
    AVDB_MUST(db.SetScalar(oid, "whenBroadcast",
                 std::string("1992-11-" + std::to_string(1 + i % 28))));
    if (i == 137) {
      AVDB_MUST(db.SetMediaAttribute(oid, "videoTrack", *footage,
                           i % 2 == 0 ? "disk0" : "disk1"));
      target = oid;
    }
  }

  // --- Measured §4.3 sequence ------------------------------------------------
  // Query: CPU-side catalog scan/index work is instantaneous in virtual
  // time; we report the candidate-set behaviour instead.
  auto hits = db.Select("SimpleNewscast", "title = \"60 Minutes\"");
  std::printf("query:   select over %d objects -> %zu reference(s) "
              "(equality-indexed)\n",
              kCatalogSize, hits.value().size());

  const int64_t t0 = db.engine().now_ns();
  auto stream = db.NewSourceFor("app", hits.value()[0], "videoTrack");
  if (!stream.ok()) {
    std::cerr << "setup failed: " << stream.status() << "\n";
    return 1;
  }
  const int64_t t_setup = db.engine().now_ns();

  auto window = VideoWindow::Create("appSink", ActivityLocation::kClient,
                                    db.env(),
                                    VideoQuality(176, 144, 8, Rational(10)));
  AVDB_MUST(db.graph().Add(window));
  AVDB_MUST(db.NewConnection(stream.value().source, VideoSource::kPortOut, window.get(),
                   VideoWindow::kPortIn, "net"));

  // The client interleaves its own work with the running stream: issue
  // three more queries *while* the transfer proceeds, proving the
  // asynchronous, stream-based interface (§3.3).
  AVDB_MUST(db.StartStream(stream.value()));
  int64_t interleaved_queries = 0;
  for (int tick = 1; tick <= 4; ++tick) {
    db.RunUntil(WorldTime::FromMillis(tick * 1000));
    auto q = db.Select("SimpleNewscast",
                       "whenBroadcast >= '1992-11-2' and not title contains "
                       "'60'");
    if (q.ok()) ++interleaved_queries;
  }
  db.RunUntilIdle();

  const StreamStats& stats = window->stats();
  const double setup_ms = (t_setup - t0) / 1e6;
  const double first_frame_ms =
      stats.first_element_ns < 0 ? -1 : (stats.first_element_ns - t0) / 1e6;
  const double stream_s =
      (stats.last_element_ns - stats.first_element_ns) / 1e9;

  std::printf("setup:   activity creation + admission + bind: %.2f ms "
              "(virtual)\n", setup_ms);
  std::printf("start:   time to first presented frame: %.1f ms\n",
              first_frame_ms);
  std::printf("stream:  %lld frames over %.2f s (%.2f fps), %lld late, "
              "%s across the network\n",
              static_cast<long long>(stats.elements_presented), stream_s,
              stats.AchievedRate(),
              static_cast<long long>(stats.late_elements),
              FormatBytes(static_cast<uint64_t>(stats.bytes_delivered))
                  .c_str());
  std::printf("async:   client issued %lld catalog queries while the stream "
              "played (never blocked)\n",
              static_cast<long long>(interleaved_queries));

  // Resource mediation visible to the client.
  std::printf("\nresource state during playback is client-visible:\n");
  for (const auto* pool :
       {"disk0.bandwidth", "disk1.bandwidth", "db.decoders", "db.buffers"}) {
    std::printf("  %-16s %12.0f of %12.0f available\n", pool,
                db.admission().Available(pool).value_or(-1),
                db.admission().Capacity(pool).value_or(-1));
  }
  auto channel = db.GetChannel("net").value();
  std::printf("  %-16s %12lld of %12lld available (reserved by the "
              "connection)\n",
              "net.bandwidth",
              static_cast<long long>(channel->AvailableBandwidth()),
              static_cast<long long>(
                  channel->profile().bandwidth_bytes_per_sec));
  AVDB_MUST(db.StopStream(stream.value()));
  return stats.elements_presented == 50 ? 0 : 1;
}

// Figure 4 — "Alternative activity graphs for a virtual world application."
//
// The paper's claim: "depending upon the capabilities and resources of the
// database system and the client, rendering may be done by the database or
// locally by the client." This bench sweeps client rendering capability ×
// network bandwidth, runs BOTH placements for each cell, and reports who
// wins — reproducing the crossover the figure argues for.

#include <cstdio>
#include <iostream>

#include "activity/sinks.h"
#include "base/logging.h"
#include "db/database.h"
#include "media/synthetic.h"
#include "vworld/activities.h"

using namespace avdb;

namespace {

struct CellResult {
  double fps = 0;
  int64_t deadline_misses = 0;
  int64_t net_bytes = 0;
};

CellResult RunPlacement(bool render_at_db, double client_speed_factor,
                        Channel::Profile net_profile) {
  AvDatabase db;
  AVDB_MUST(db.AddDevice("disk0", DeviceProfile::MagneticDisk()));
  AVDB_MUST(db.AddChannel("net", net_profile));

  ClassDef world_class("WorldAsset");
  AVDB_MUST(world_class.AddAttribute({"wallVideo", AttrType::kVideo, {}, {}}));
  AVDB_MUST(db.DefineClass(world_class));

  const auto vtype = MediaDataType::RawVideo(64, 64, 8, Rational(10));
  auto wall = synthetic::GenerateVideo(vtype, 40,
                                       synthetic::VideoPattern::kMovingBox)
                  .value();
  Oid oid = db.NewObject("WorldAsset").value();
  AVDB_MUST(db.SetMediaAttribute(oid, "wallVideo", *wall, "disk0"));

  static Scene scene = Scene::MuseumRoom();
  Raycaster::Options ropts;
  ropts.width = 320;
  ropts.height = 240;

  // Client capability scales the software render cost.
  CostModel client_costs;
  client_costs.render_ns_per_pixel =
      CostModel().render_ns_per_pixel / client_speed_factor;
  const CostModel render_costs =
      render_at_db ? CostModel::Accelerated() : client_costs;
  const ActivityLocation render_loc =
      render_at_db ? ActivityLocation::kDatabase : ActivityLocation::kClient;

  auto stream = db.NewSourceFor("vr", oid, "wallVideo").value();
  auto move = MoveSource::Create(
      "move", render_loc, db.env(),
      {{2.5, 6.0, 0.0}, {12.5, 5.5, 0.3}}, WorldTime::FromSeconds(4),
      Rational(10));
  auto render = RenderActivity::Create("render", render_loc, db.env(), &scene,
                                       ropts, vtype, render_costs);
  render->FindPort(RenderActivity::kPortPose)
      .value()
      ->set_data_type(
          move->FindPort(MoveSource::kPortOut).value()->data_type());
  auto display =
      VideoWindow::Create("display", ActivityLocation::kClient, db.env(),
                          VideoQuality(ropts.width, ropts.height, 8,
                                       Rational(10)));
  AVDB_MUST(db.graph().Add(move));
  AVDB_MUST(db.graph().Add(render));
  AVDB_MUST(db.graph().Add(display));

  if (render_at_db) {
    AVDB_MUST(db.NewConnection(stream.source, VideoSource::kPortOut, render.get(),
                     RenderActivity::kPortVideo));
    AVDB_MUST(db.NewConnection(move.get(), MoveSource::kPortOut, render.get(),
                     RenderActivity::kPortPose));
    // Rendered rasters cross the network. NOTE: no admission reservation —
    // we want to observe saturation, not be refused.
    AVDB_MUST(db.graph()
        .Connect(render.get(), RenderActivity::kPortOut, display.get(),
                 VideoWindow::kPortIn, db.GetChannel("net").value()));
  } else {
    AVDB_MUST(db.graph()
        .Connect(stream.source, VideoSource::kPortOut, render.get(),
                 RenderActivity::kPortVideo, db.GetChannel("net").value()));
    AVDB_MUST(db.NewConnection(move.get(), MoveSource::kPortOut, render.get(),
                     RenderActivity::kPortPose));
    AVDB_MUST(db.NewConnection(render.get(), RenderActivity::kPortOut, display.get(),
                     VideoWindow::kPortIn));
  }
  AVDB_MUST(db.StartStream(stream));
  AVDB_MUST(move->Start());
  db.RunUntilIdle();

  CellResult result;
  result.fps = display->stats().AchievedRate();
  result.deadline_misses = display->stats().deadline_misses;
  for (const auto& connection : db.graph().connections()) {
    if (connection->channel() != nullptr) {
      result.net_bytes += connection->stats().bytes;
    }
  }
  return result;
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
               "Figure 4 experiment: render placement, client vs database\n"
               "==============================================================\n\n"
               "view: 320x240@10 rasters (768 KB/s raw); wall video 64x64@10 "
               "(41 KB/s)\n"
               "client x-speed 0.05 = thin terminal, 4.0 = 3D workstation\n\n";

  struct NetCase {
    const char* name;
    Channel::Profile profile;
  };
  const NetCase nets[] = {
      {"T1 (193 KB/s)", Channel::Profile::T1()},
      {"Ethernet (1.25 MB/s)", Channel::Profile::Ethernet10()},
      {"ATM (19 MB/s)", Channel::Profile::Atm155()},
  };
  const double client_speeds[] = {0.05, 0.5, 4.0};

  std::printf("%-22s %-8s | %-21s | %-21s | %s\n", "network", "client",
              "client-render", "database-render", "winner");
  std::printf("%-22s %-8s | %10s %10s | %10s %10s |\n", "", "x-speed", "fps",
              "miss", "fps", "miss");
  std::printf("---------------------------------------------------------------"
              "----------------------\n");
  for (const auto& net : nets) {
    for (double speed : client_speeds) {
      const CellResult client = RunPlacement(false, speed, net.profile);
      const CellResult dbside = RunPlacement(true, speed, net.profile);
      // Winner: fewer misses, then higher fps.
      const bool client_wins =
          client.deadline_misses != dbside.deadline_misses
              ? client.deadline_misses < dbside.deadline_misses
              : client.fps >= dbside.fps;
      std::printf("%-22s %-8.2f | %10.2f %10lld | %10.2f %10lld | %s\n",
                  net.name, speed, client.fps,
                  static_cast<long long>(client.deadline_misses), dbside.fps,
                  static_cast<long long>(dbside.deadline_misses),
                  client_wins ? "client" : "database");
    }
  }
  std::printf(
      "\nShape check (paper's claim): weak clients and fat links favour\n"
      "database-side rendering; capable clients or thin links favour\n"
      "client-side rendering, since rasters are an order of magnitude\n"
      "bigger than the wall video they are rendered from.\n");
  return 0;
}

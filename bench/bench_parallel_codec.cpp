// Parallel codec throughput: sweeps the codec concurrency knob over the
// intra, inter and scalable codecs, verifies the parallel output is
// byte-identical to serial, and writes BENCH_parallel_codec.json with
// throughput, speedup-vs-serial and buffer-pool allocation stats. The
// speedup a given machine can show is bounded by its core count — the
// JSON records hardware_concurrency and the pool size so numbers from
// single-core CI boxes are read in context.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/buffer_pool.h"
#include "base/work_pool.h"
#include "codec/inter_codec.h"
#include "codec/intra_codec.h"
#include "codec/scalable_codec.h"
#include "media/synthetic.h"

using namespace avdb;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool SameBytes(const EncodedVideo& a, const EncodedVideo& b) {
  if (a.frames.size() != b.frames.size()) return false;
  for (size_t i = 0; i < a.frames.size(); ++i) {
    if (!(a.frames[i].data == b.frames[i].data)) return false;
    if (a.frames[i].layers != b.frames[i].layers) return false;
  }
  return true;
}

struct Run {
  std::string codec;
  int concurrency = 1;
  double fps = 0;
  double speedup = 1.0;
  bool byte_identical = true;
  int64_t pool_acquires = 0;
  int64_t pool_reuses = 0;
};

}  // namespace

int main() {
  // Size the shared pool before its first use so the sweep has lanes to
  // fan out on even where hardware_concurrency is low.
  setenv("AVDB_POOL_WORKERS", "8", /*overwrite=*/0);

  const auto type = MediaDataType::RawVideo(176, 144, 24, Rational(15));
  const int kFrames = 48;
  auto video = synthetic::GenerateVideo(type, kFrames,
                                        synthetic::VideoPattern::kMovingBox)
                   .value();

  const IntraCodec intra;
  const InterCodec inter;
  const ScalableCodec scalable;
  const std::vector<std::pair<std::string, const VideoCodec*>> codecs = {
      {"intra", &intra}, {"inter", &inter}, {"scalable", &scalable}};
  const std::vector<int> widths = {1, 2, 4, 8};

  std::printf("parallel codec sweep: %d frames of %s\n", kFrames,
              type.ToString().c_str());
  std::printf("hardware_concurrency=%u pool_workers=%d\n\n",
              std::thread::hardware_concurrency(),
              WorkPool::Shared().worker_count());
  std::printf("%10s %6s %10s %9s %11s %10s %8s\n", "codec", "width", "fps",
              "speedup", "identical", "acquires", "reuses");

  std::vector<Run> runs;
  for (const auto& [name, codec] : codecs) {
    VideoCodecParams params;
    params.quality = 75;
    params.gop_size = 12;
    params.concurrency = 1;
    // Warm-up + serial reference (also fills the buffer pool free lists).
    EncodedVideo reference = codec->Encode(*video, params).value();
    double serial_fps = 0;
    for (int width : widths) {
      params.concurrency = width;
      BufferPool::Shared().ResetStats();
      const auto start = std::chrono::steady_clock::now();
      int reps = 0;
      EncodedVideo last;
      do {
        last = codec->Encode(*video, params).value();
        ++reps;
      } while (SecondsSince(start) < 0.5);
      const double fps = reps * kFrames / SecondsSince(start);
      const BufferPool::Stats stats = BufferPool::Shared().stats();

      Run run;
      run.codec = name;
      run.concurrency = width;
      run.fps = fps;
      if (width == 1) serial_fps = fps;
      run.speedup = serial_fps > 0 ? fps / serial_fps : 1.0;
      run.byte_identical = SameBytes(last, reference);
      run.pool_acquires = stats.acquires;
      run.pool_reuses = stats.reuses;
      runs.push_back(run);
      std::printf("%10s %6d %10.1f %8.2fx %11s %10lld %8lld\n", name.c_str(),
                  width, fps, run.speedup,
                  run.byte_identical ? "yes" : "NO",
                  static_cast<long long>(stats.acquires),
                  static_cast<long long>(stats.reuses));
    }
  }

  // Decode sweep over the intra codec (DecodeRange fan-out).
  std::printf("\n%10s %6s %10s %9s\n", "decode", "width", "fps", "speedup");
  {
    VideoCodecParams params;
    params.quality = 75;
    EncodedVideo encoded = intra.Encode(*video, params).value();
    double serial_fps = 0;
    for (int width : widths) {
      encoded.params.concurrency = width;
      auto session = intra.NewDecoder(encoded).value();
      const auto start = std::chrono::steady_clock::now();
      int reps = 0;
      do {
        session->DecodeRange(0, kFrames).value();
        ++reps;
      } while (SecondsSince(start) < 0.5);
      const double fps = reps * kFrames / SecondsSince(start);
      if (width == 1) serial_fps = fps;

      Run run;
      run.codec = "intra-decode";
      run.concurrency = width;
      run.fps = fps;
      run.speedup = serial_fps > 0 ? fps / serial_fps : 1.0;
      runs.push_back(run);
      std::printf("%10s %6d %10.1f %8.2fx\n", "intra", width, fps,
                  run.speedup);
    }
  }

  bool all_identical = true;
  for (const Run& r : runs) all_identical = all_identical && r.byte_identical;

  FILE* out = std::fopen("BENCH_parallel_codec.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_parallel_codec.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"parallel_codec\",\n");
  std::fprintf(out, "  \"frames\": %d,\n", kFrames);
  std::fprintf(out, "  \"geometry\": \"176x144x24\",\n");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"pool_workers\": %d,\n",
               WorkPool::Shared().worker_count());
  std::fprintf(out, "  \"all_byte_identical\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    std::fprintf(out,
                 "    {\"codec\": \"%s\", \"concurrency\": %d, "
                 "\"fps\": %.1f, \"speedup_vs_serial\": %.3f, "
                 "\"byte_identical\": %s, \"pool_acquires\": %lld, "
                 "\"pool_reuses\": %lld}%s\n",
                 r.codec.c_str(), r.concurrency, r.fps, r.speedup,
                 r.byte_identical ? "true" : "false",
                 static_cast<long long>(r.pool_acquires),
                 static_cast<long long>(r.pool_reuses),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_parallel_codec.json (all byte-identical: %s)\n",
              all_identical ? "yes" : "NO");
  return all_identical ? 0 : 1;
}

// Table 1 — "Examples of video activities."
//
// Regenerates the paper's catalog from *live* activity objects (name, kind
// and port data types are read from the instantiated activities, not
// hard-coded), then measures each activity's real CPU throughput at QCIF on
// this machine — the modern analogue of asking whether each 1993 component
// could run at rate.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "activity/graph.h"
#include "activity/sinks.h"
#include "activity/sources.h"
#include "activity/transformers.h"
#include "base/logging.h"
#include "codec/registry.h"
#include "media/synthetic.h"
#include "storage/media_store.h"

using namespace avdb;

namespace {

const MediaDataType kQcif = MediaDataType::RawVideo(176, 144, 8, Rational(15));

std::string PortTypes(const std::vector<Port*>& ports) {
  if (ports.empty()) return "-";
  std::string out;
  for (const Port* p : ports) {
    if (!out.empty()) out += ", ";
    out += std::string(EncodingFamilyName(p->data_type().family()));
  }
  return out;
}

void PrintRow(const MediaActivity& activity, const char* paper_name,
              double fps) {
  std::printf("  %-16s %-12s %-18s %-18s %10.0f\n", paper_name,
              std::string(ActivityKindName(activity.Kind())).c_str(),
              PortTypes(activity.InputPorts()).c_str(),
              PortTypes(activity.OutputPorts()).c_str(), fps);
}

/// Wall-clock frames/second of `work` run `iterations` times.
template <typename Fn>
double MeasureFps(int iterations, Fn&& work) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) work(i);
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(end - start).count();
  return seconds <= 0 ? 0 : iterations / seconds;
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
               "Table 1 experiment: the video-activity catalog, live\n"
               "==============================================================\n\n";

  EventEngine engine;
  ActivityEnv env{&engine, nullptr};

  // Content and codec state shared by the measurements.
  auto raw = synthetic::GenerateVideo(kQcif, 30,
                                      synthetic::VideoPattern::kMovingBox)
                 .value();
  auto intra =
      CodecRegistry::Default().VideoCodecFor(EncodingFamily::kIntra).value();
  VideoCodecParams params;
  params.quality = 75;
  auto encoded_stream = intra->Encode(*raw, params).value();
  auto encoded =
      EncodedVideoValue::Create(intra, encoded_stream).value();
  auto device =
      std::make_shared<BlockDevice>("disk", DeviceProfile::MagneticDisk());
  MediaStore store(device, nullptr);
  AVDB_MUST(store.Put("clip", encoded_stream.Serialize()));

  // --- Instantiate every row of Table 1 -------------------------------------
  auto digitizer = VideoDigitizer::Create("digitizer",
                                          ActivityLocation::kDatabase, env,
                                          kQcif,
                                          synthetic::VideoPattern::kMovingBox);
  SourceOptions reader_options;
  reader_options.store = &store;
  reader_options.blob_name = "clip";
  auto reader = VideoSource::Create("reader", ActivityLocation::kDatabase,
                                    env, reader_options,
                                    /*emit_encoded=*/true);
  AVDB_MUST(reader->Bind(encoded, VideoSource::kPortOut));
  auto encoder = VideoEncoderActivity::Create(
      "encoder", ActivityLocation::kDatabase, env, kQcif, 75);
  auto decoder =
      VideoDecoderActivity::Create("decoder", ActivityLocation::kDatabase,
                                   env);
  AVDB_MUST(decoder->Bind(encoded, VideoDecoderActivity::kPortIn));
  auto mixer = VideoMixer::Create("mixer", ActivityLocation::kDatabase, env,
                                  kQcif, 0.5);
  auto tee = VideoTee::Create("tee", ActivityLocation::kDatabase, env, kQcif,
                              2);
  auto window = VideoWindow::Create("window", ActivityLocation::kClient, env,
                                    VideoQuality(176, 144, 8, Rational(15)));
  auto writer = VideoWriter::Create("writer", ActivityLocation::kDatabase,
                                    env, kQcif);

  // --- Measurements (real CPU, frames/s) -------------------------------------
  const VideoFrame frame = raw->Frame(0).value();
  const VideoFrame frame2 = raw->Frame(1).value();

  const double fps_digitize = MeasureFps(60, [&](int i) {
    synthetic::GeneratePatternFrame(176, 144, 8, i,
                                    synthetic::VideoPattern::kMovingBox);
  });
  const double fps_read = MeasureFps(200, [&](int i) {
    const auto& ef =
        encoded_stream.frames[static_cast<size_t>(i) %
                              encoded_stream.frames.size()];
    AVDB_MUST(store.ReadRange("clip", 0, ef.SizeBytes()));
  });
  const double fps_encode = MeasureFps(40, [&](int) {
    IntraCodec::EncodeFrame(frame, 75);
  });
  auto session = intra->NewDecoder(encoded_stream).value();
  const double fps_decode = MeasureFps(60, [&](int i) {
    AVDB_MUST(session->DecodeFrame(i % 30));
  });
  const double fps_mix = MeasureFps(100, [&](int) {
    VideoFrame out(176, 144, 8);
    for (size_t i = 0; i < out.data().size(); ++i) {
      out.data()[i] =
          static_cast<uint8_t>((frame.data()[i] + frame2.data()[i]) / 2);
    }
  });
  const double fps_tee = MeasureFps(2000, [&](int) {
    // Tee shares payload pointers; the work is two shared_ptr copies.
    auto a = std::make_shared<const VideoFrame>(frame);
    auto b = a;
    (void)b;
  });
  const double fps_window = MeasureFps(1000, [&](int) {
    volatile uint8_t sink_byte = frame.data()[0];
    (void)sink_byte;
  });
  const double fps_write = MeasureFps(200, [&](int) {
    VideoFrame copy = frame;
    (void)copy;
  });

  // --- The regenerated table ---------------------------------------------------
  std::printf("  %-16s %-12s %-18s %-18s %10s\n", "activity", "kind",
              "input port", "output port", "QCIF fps");
  std::printf("  ------------------------------------------------------------"
              "---------------\n");
  PrintRow(*digitizer, "video digitizer", fps_digitize);
  PrintRow(*reader, "video reader", fps_read);
  PrintRow(*encoder, "video encoder", fps_encode);
  PrintRow(*decoder, "video decoder", fps_decode);
  PrintRow(*mixer, "video mixer", fps_mix);
  PrintRow(*tee, "video tee", fps_tee);
  PrintRow(*window, "video window", fps_window);
  PrintRow(*writer, "video writer", fps_write);

  std::printf(
      "\nevery activity classifies itself from its ports (§3.1): sources\n"
      "have only outputs, sinks only inputs, transformers both — matching\n"
      "the paper's kind column exactly.\n");
  return 0;
}

// Figure 2 — "Flow composition: simple activities (top) and a composite
// activity (bottom)."
//
// Regenerates both graphs — the flat chain read -> decode -> display and
// the composite source{read, decode} -> display — and verifies the paper's
// encapsulation claim: "the difference now being that an application
// working with a source activity need not be aware of its internal
// configuration." Dataflow results must be identical; the table reports
// frames, end-to-end latency, and per-connection bytes (the compressed hop
// carries far less than the raw hop).

#include <cstdio>
#include <iostream>

#include "base/logging.h"

#include "activity/composite.h"
#include "activity/graph.h"
#include "activity/sinks.h"
#include "activity/sources.h"
#include "activity/transformers.h"
#include "codec/registry.h"
#include "media/synthetic.h"

using namespace avdb;

namespace {

constexpr int kFrames = 60;

struct FlowReport {
  int64_t frames = 0;
  double mean_latency_ms = 0;  // arrival - ideal (can be <= 0 on time)
  double achieved_fps = 0;
  int64_t compressed_bytes = 0;
  int64_t raw_bytes = 0;
  uint64_t final_frame_hash = 0;
};

std::shared_ptr<EncodedVideoValue> MakeEncodedClip() {
  const auto type = MediaDataType::RawVideo(176, 144, 8, Rational(10));
  auto raw = synthetic::GenerateVideo(type, kFrames,
                                      synthetic::VideoPattern::kMovingBox)
                 .value();
  auto codec =
      CodecRegistry::Default().VideoCodecFor(EncodingFamily::kIntra).value();
  VideoCodecParams params;
  params.quality = 80;
  return EncodedVideoValue::Create(codec, codec->Encode(*raw, params).value())
      .value();
}

uint64_t HashFrame(const VideoFrame& frame) {
  Buffer b;
  b.AppendBytes(frame.data().data(), frame.data().size());
  return b.Hash64();
}

FlowReport RunFlat(bool print_topology) {
  EventEngine engine;
  ActivityEnv env{&engine, nullptr};
  ActivityGraph graph(env);
  auto clip = MakeEncodedClip();

  auto reader = VideoSource::Create("read", ActivityLocation::kDatabase, env,
                                    {}, /*emit_encoded=*/true);
  AVDB_MUST(reader->Bind(clip, VideoSource::kPortOut));
  auto decoder =
      VideoDecoderActivity::Create("decode", ActivityLocation::kDatabase, env);
  AVDB_MUST(decoder->Bind(clip, VideoDecoderActivity::kPortIn));
  auto display =
      VideoWindow::Create("display", ActivityLocation::kClient, env,
                          VideoQuality(176, 144, 8, Rational(10)));
  AVDB_MUST(graph.Add(reader));
  AVDB_MUST(graph.Add(decoder));
  AVDB_MUST(graph.Add(display));
  AVDB_MUST(graph.Connect(reader.get(), VideoSource::kPortOut, decoder.get(),
                     VideoDecoderActivity::kPortIn));
  AVDB_MUST(graph.Connect(decoder.get(), VideoDecoderActivity::kPortOut,
                     display.get(), VideoWindow::kPortIn));
  if (print_topology) {
    std::cout << "Fig. 2 top — simple activities in a chain:\n"
              << graph.Describe() << "\n";
  }
  AVDB_MUST(graph.StartAll());
  graph.RunUntilIdle();

  FlowReport report;
  report.frames = display->stats().elements_presented;
  report.mean_latency_ms = display->stats().MeanLatenessMs();
  report.achieved_fps = display->stats().AchievedRate();
  report.compressed_bytes = graph.connections()[0]->stats().bytes;
  report.raw_bytes = graph.connections()[1]->stats().bytes;
  report.final_frame_hash = HashFrame(display->last_frame());
  return report;
}

FlowReport RunComposite(bool print_topology) {
  EventEngine engine;
  ActivityEnv env{&engine, nullptr};
  ActivityGraph graph(env);
  auto clip = MakeEncodedClip();

  auto source =
      CompositeActivity::Create("source", ActivityLocation::kDatabase, env);
  auto reader = VideoSource::Create("read", ActivityLocation::kDatabase, env,
                                    {}, /*emit_encoded=*/true);
  AVDB_MUST(reader->Bind(clip, VideoSource::kPortOut));
  auto decoder =
      VideoDecoderActivity::Create("decode", ActivityLocation::kDatabase, env);
  AVDB_MUST(decoder->Bind(clip, VideoDecoderActivity::kPortIn));
  AVDB_MUST(source->Install(reader));
  AVDB_MUST(source->Install(decoder));
  AVDB_MUST(source->ConnectChildren("read", VideoSource::kPortOut, "decode",
                               VideoDecoderActivity::kPortIn));
  AVDB_MUST(source->ExposePort("decode", VideoDecoderActivity::kPortOut, "out"));

  auto display =
      VideoWindow::Create("display", ActivityLocation::kClient, env,
                          VideoQuality(176, 144, 8, Rational(10)));
  AVDB_MUST(graph.Add(source));
  AVDB_MUST(graph.Add(display));
  AVDB_MUST(graph.Connect(source.get(), "out", display.get(),
                     VideoWindow::kPortIn));
  if (print_topology) {
    std::cout << "Fig. 2 bottom — read and decode grouped in a composite:\n"
              << graph.Describe() << "\n";
  }
  AVDB_MUST(graph.StartAll());
  graph.RunUntilIdle();

  FlowReport report;
  report.frames = display->stats().elements_presented;
  report.mean_latency_ms = display->stats().MeanLatenessMs();
  report.achieved_fps = display->stats().AchievedRate();
  // The internal compressed hop lives inside the composite's child graph;
  // the external connection carries raw frames.
  report.raw_bytes = graph.connections()[0]->stats().bytes;
  report.compressed_bytes = static_cast<int64_t>(clip->StoredBytes());
  report.final_frame_hash = HashFrame(display->last_frame());
  return report;
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
               "Figure 2 experiment: flow composition, flat vs composite\n"
               "==============================================================\n\n";

  const FlowReport flat = RunFlat(true);
  const FlowReport composite = RunComposite(true);

  std::printf("%-22s %10s %12s %12s %14s %14s\n", "configuration", "frames",
              "fps", "late(ms)", "bytes(comp)", "bytes(raw)");
  std::printf("%-22s %10lld %12.2f %12.2f %14lld %14lld\n", "flat chain",
              static_cast<long long>(flat.frames), flat.achieved_fps,
              flat.mean_latency_ms,
              static_cast<long long>(flat.compressed_bytes),
              static_cast<long long>(flat.raw_bytes));
  std::printf("%-22s %10lld %12.2f %12.2f %14lld %14lld\n", "composite source",
              static_cast<long long>(composite.frames),
              composite.achieved_fps, composite.mean_latency_ms,
              static_cast<long long>(composite.compressed_bytes),
              static_cast<long long>(composite.raw_bytes));

  const bool same_output =
      flat.final_frame_hash == composite.final_frame_hash &&
      flat.frames == composite.frames;
  std::printf("\nencapsulation check: dataflow identical across the two "
              "configurations: %s\n",
              same_output ? "YES" : "NO");
  std::printf("compression check: the compressed hop carried %.1fx fewer "
              "bytes than the raw hop\n",
              flat.compressed_bytes == 0
                  ? 0.0
                  : static_cast<double>(flat.raw_bytes) /
                        static_cast<double>(flat.compressed_bytes));
  return same_output ? 0 : 1;
}

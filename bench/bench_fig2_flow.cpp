// Figure 2 — "Flow composition: simple activities (top) and a composite
// activity (bottom)."
//
// Regenerates both graphs — the flat chain read -> decode -> display and
// the composite source{read, decode} -> display — and verifies the paper's
// encapsulation claim: "the difference now being that an application
// working with a source activity need not be aware of its internal
// configuration." Dataflow results must be identical; the table reports
// frames, end-to-end latency, and per-connection bytes (the compressed hop
// carries far less than the raw hop).
//
// A third, traced run replays the flat flow from a faulted store with the
// observability stack attached and writes the Tracer timeline to
// BENCH_fig2_trace.json — the machine-readable bind -> cue -> start -> stop
// record, with the degradation ladder's actions interleaved at their
// virtual times. The exit code also gates on that timeline containing all
// four lifecycle spans and at least one degradation event.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "base/fault_injector.h"
#include "base/logging.h"

#include "activity/composite.h"
#include "activity/graph.h"
#include "activity/sinks.h"
#include "activity/sources.h"
#include "activity/transformers.h"
#include "codec/registry.h"
#include "codec/scalable_codec.h"
#include "media/synthetic.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/degradation.h"
#include "storage/media_store.h"
#include "storage/value_serializer.h"

using namespace avdb;

namespace {

constexpr int kFrames = 60;

struct FlowReport {
  int64_t frames = 0;
  double mean_latency_ms = 0;  // arrival - ideal (can be <= 0 on time)
  double achieved_fps = 0;
  int64_t compressed_bytes = 0;
  int64_t raw_bytes = 0;
  uint64_t final_frame_hash = 0;
};

std::shared_ptr<EncodedVideoValue> MakeEncodedClip() {
  const auto type = MediaDataType::RawVideo(176, 144, 8, Rational(10));
  auto raw = synthetic::GenerateVideo(type, kFrames,
                                      synthetic::VideoPattern::kMovingBox)
                 .value();
  auto codec =
      CodecRegistry::Default().VideoCodecFor(EncodingFamily::kIntra).value();
  VideoCodecParams params;
  params.quality = 80;
  return EncodedVideoValue::Create(codec, codec->Encode(*raw, params).value())
      .value();
}

uint64_t HashFrame(const VideoFrame& frame) {
  Buffer b;
  b.AppendBytes(frame.data().data(), frame.data().size());
  return b.Hash64();
}

FlowReport RunFlat(bool print_topology) {
  EventEngine engine;
  ActivityEnv env{&engine, nullptr};
  ActivityGraph graph(env);
  auto clip = MakeEncodedClip();

  auto reader = VideoSource::Create("read", ActivityLocation::kDatabase, env,
                                    {}, /*emit_encoded=*/true);
  AVDB_MUST(reader->Bind(clip, VideoSource::kPortOut));
  auto decoder =
      VideoDecoderActivity::Create("decode", ActivityLocation::kDatabase, env);
  AVDB_MUST(decoder->Bind(clip, VideoDecoderActivity::kPortIn));
  auto display =
      VideoWindow::Create("display", ActivityLocation::kClient, env,
                          VideoQuality(176, 144, 8, Rational(10)));
  AVDB_MUST(graph.Add(reader));
  AVDB_MUST(graph.Add(decoder));
  AVDB_MUST(graph.Add(display));
  AVDB_MUST(graph.Connect(reader.get(), VideoSource::kPortOut, decoder.get(),
                     VideoDecoderActivity::kPortIn));
  AVDB_MUST(graph.Connect(decoder.get(), VideoDecoderActivity::kPortOut,
                     display.get(), VideoWindow::kPortIn));
  if (print_topology) {
    std::cout << "Fig. 2 top — simple activities in a chain:\n"
              << graph.Describe() << "\n";
  }
  AVDB_MUST(graph.StartAll());
  graph.RunUntilIdle();

  FlowReport report;
  report.frames = display->stats().elements_presented;
  report.mean_latency_ms = display->stats().MeanLatenessMs();
  report.achieved_fps = display->stats().AchievedRate();
  report.compressed_bytes = graph.connections()[0]->stats().bytes;
  report.raw_bytes = graph.connections()[1]->stats().bytes;
  report.final_frame_hash = HashFrame(display->last_frame());
  return report;
}

FlowReport RunComposite(bool print_topology) {
  EventEngine engine;
  ActivityEnv env{&engine, nullptr};
  ActivityGraph graph(env);
  auto clip = MakeEncodedClip();

  auto source =
      CompositeActivity::Create("source", ActivityLocation::kDatabase, env);
  auto reader = VideoSource::Create("read", ActivityLocation::kDatabase, env,
                                    {}, /*emit_encoded=*/true);
  AVDB_MUST(reader->Bind(clip, VideoSource::kPortOut));
  auto decoder =
      VideoDecoderActivity::Create("decode", ActivityLocation::kDatabase, env);
  AVDB_MUST(decoder->Bind(clip, VideoDecoderActivity::kPortIn));
  AVDB_MUST(source->Install(reader));
  AVDB_MUST(source->Install(decoder));
  AVDB_MUST(source->ConnectChildren("read", VideoSource::kPortOut, "decode",
                               VideoDecoderActivity::kPortIn));
  AVDB_MUST(source->ExposePort("decode", VideoDecoderActivity::kPortOut, "out"));

  auto display =
      VideoWindow::Create("display", ActivityLocation::kClient, env,
                          VideoQuality(176, 144, 8, Rational(10)));
  AVDB_MUST(graph.Add(source));
  AVDB_MUST(graph.Add(display));
  AVDB_MUST(graph.Connect(source.get(), "out", display.get(),
                     VideoWindow::kPortIn));
  if (print_topology) {
    std::cout << "Fig. 2 bottom — read and decode grouped in a composite:\n"
              << graph.Describe() << "\n";
  }
  AVDB_MUST(graph.StartAll());
  graph.RunUntilIdle();

  FlowReport report;
  report.frames = display->stats().elements_presented;
  report.mean_latency_ms = display->stats().MeanLatenessMs();
  report.achieved_fps = display->stats().AchievedRate();
  // The internal compressed hop lives inside the composite's child graph;
  // the external connection carries raw frames.
  report.raw_bytes = graph.connections()[0]->stats().bytes;
  report.compressed_bytes = static_cast<int64_t>(clip->StoredBytes());
  report.final_frame_hash = HashFrame(display->last_frame());
  return report;
}

struct TracedReport {
  int64_t frames = 0;
  int64_t degrade_events = 0;
  bool has_bind = false;
  bool has_cue = false;
  bool has_start = false;
  bool has_stop = false;
  int64_t trace_events = 0;
};

/// The flat flow again, but from a faulted store with the observability
/// stack attached: every lifecycle verb lands in the tracer as a span, and
/// the degradation ladder's reactions to the injected faults interleave at
/// their virtual times. The dump is what a figure pipeline consumes.
TracedReport RunTraced() {
  EventEngine engine;
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  tracer.SetClock([&engine] { return engine.now_ns(); });
  ActivityEnv env{&engine, nullptr, &metrics, &tracer};
  ActivityGraph graph(env);

  // A scalable clip through a faulted magnetic disk: latency spikes push
  // sink lateness over the drop threshold, so the ladder visibly acts.
  const auto type = MediaDataType::RawVideo(176, 144, 8, Rational(10));
  auto raw = synthetic::GenerateVideo(type, kFrames,
                                      synthetic::VideoPattern::kMovingBox)
                 .value();
  VideoCodecParams params;
  params.layer_count = 3;
  auto codec = std::make_shared<ScalableCodec>();
  auto clip =
      EncodedVideoValue::Create(codec, codec->Encode(*raw, params).value())
          .value();

  auto device =
      std::make_shared<BlockDevice>("disk0", DeviceProfile::MagneticDisk());
  MediaStore store(device, nullptr);
  store.BindObservability(&metrics, &tracer);
  ServiceQueue queue("disk0");
  AVDB_MUST(store.Put("clip", value_serializer::Serialize(*clip).value()));

  FaultSpec spec;
  spec.read_error_rate = 0.05;
  spec.latency_spike_rate = 0.05;
  spec.latency_spike_ns = 30 * 1000 * 1000;
  spec.stuck_head_rate = 0.025;
  spec.stuck_head_stall_ns = 400 * 1000 * 1000;
  FaultInjector injector(spec, /*seed=*/42);
  device->set_fault_injector(&injector);

  DegradationController degrade;
  degrade.BindObservability(&metrics, &tracer, "read");

  SourceOptions source_options;
  source_options.store = &store;
  source_options.blob_name = "clip";
  source_options.device_queue = &queue;
  source_options.degrade = &degrade;
  auto source = VideoSource::Create("read", ActivityLocation::kDatabase, env,
                                    source_options);
  AVDB_MUST(source->Bind(clip, VideoSource::kPortOut));
  AVDB_MUST(source->Cue(WorldTime()));

  SinkOptions sink_options;
  sink_options.degrade = &degrade;
  auto display =
      VideoWindow::Create("display", ActivityLocation::kClient, env,
                          VideoQuality(176, 144, 8, Rational(10)),
                          sink_options);
  AVDB_MUST(graph.Add(source));
  AVDB_MUST(graph.Add(display));
  AVDB_MUST(graph.Connect(source.get(), VideoSource::kPortOut, display.get(),
                          VideoWindow::kPortIn));
  AVDB_MUST(graph.StartAll());
  graph.RunUntilIdle();
  AVDB_MUST(source->Stop());
  AVDB_MUST(display->Stop());

  TracedReport report;
  report.frames = display->stats().elements_presented;
  for (const auto& event : tracer.Events()) {
    ++report.trace_events;
    if (event.phase == 'B') {
      if (event.name == "bind") report.has_bind = true;
      if (event.name == "cue") report.has_cue = true;
      if (event.name == "start") report.has_start = true;
      if (event.name == "stop") report.has_stop = true;
    }
    if (event.name == "degrade") ++report.degrade_events;
  }
  std::ofstream out("BENCH_fig2_trace.json");
  out << tracer.DumpJson() << "\n";
  return report;
}

}  // namespace

int main() {
  std::cout << "==============================================================\n"
               "Figure 2 experiment: flow composition, flat vs composite\n"
               "==============================================================\n\n";

  const FlowReport flat = RunFlat(true);
  const FlowReport composite = RunComposite(true);

  std::printf("%-22s %10s %12s %12s %14s %14s\n", "configuration", "frames",
              "fps", "late(ms)", "bytes(comp)", "bytes(raw)");
  std::printf("%-22s %10lld %12.2f %12.2f %14lld %14lld\n", "flat chain",
              static_cast<long long>(flat.frames), flat.achieved_fps,
              flat.mean_latency_ms,
              static_cast<long long>(flat.compressed_bytes),
              static_cast<long long>(flat.raw_bytes));
  std::printf("%-22s %10lld %12.2f %12.2f %14lld %14lld\n", "composite source",
              static_cast<long long>(composite.frames),
              composite.achieved_fps, composite.mean_latency_ms,
              static_cast<long long>(composite.compressed_bytes),
              static_cast<long long>(composite.raw_bytes));

  const bool same_output =
      flat.final_frame_hash == composite.final_frame_hash &&
      flat.frames == composite.frames;
  std::printf("\nencapsulation check: dataflow identical across the two "
              "configurations: %s\n",
              same_output ? "YES" : "NO");
  std::printf("compression check: the compressed hop carried %.1fx fewer "
              "bytes than the raw hop\n",
              flat.compressed_bytes == 0
                  ? 0.0
                  : static_cast<double>(flat.raw_bytes) /
                        static_cast<double>(flat.compressed_bytes));

  const TracedReport traced = RunTraced();
  std::printf("\ntraced run (faulted store): %lld frames, %lld trace events "
              "-> BENCH_fig2_trace.json\n",
              static_cast<long long>(traced.frames),
              static_cast<long long>(traced.trace_events));
  std::printf("timeline check: bind=%s cue=%s start=%s stop=%s "
              "degradation events=%lld\n",
              traced.has_bind ? "YES" : "NO", traced.has_cue ? "YES" : "NO",
              traced.has_start ? "YES" : "NO", traced.has_stop ? "YES" : "NO",
              static_cast<long long>(traced.degrade_events));
  const bool timeline_ok = traced.has_bind && traced.has_cue &&
                           traced.has_start && traced.has_stop &&
                           traced.degrade_events > 0;
  return (same_output && timeline_ok) ? 0 : 1;
}

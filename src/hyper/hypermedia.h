#ifndef AVDB_HYPER_HYPERMEDIA_H_
#define AVDB_HYPER_HYPERMEDIA_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "db/object.h"
#include "time/world_time.h"

namespace avdb {

/// Target of a hypermedia link: either another document, or a cue point
/// inside a stored AV value (object + media attribute path + world time).
/// The latter realizes Scenario I: "the video material is accessible
/// through a hypermedia interface which links, for example, the documents
/// describing a project to the video of a presentation."
struct LinkTarget {
  enum class Kind { kDocument, kAvCue };
  Kind kind = Kind::kDocument;

  std::string document;  ///< for kDocument

  Oid oid;               ///< for kAvCue
  std::string attr_path;
  WorldTime cue;
};

/// An anchored link: from a named anchor within a document to a target.
struct Link {
  std::string from_document;
  std::string anchor;  ///< anchor id within the document text
  LinkTarget target;
};

/// A text document carrying named anchors.
struct Document {
  std::string name;
  std::string text;
  std::vector<std::string> anchors;

  bool HasAnchor(const std::string& anchor) const;
};

/// The corporate archive's hypermedia layer: documents, anchors, and links
/// into the AV database. Navigation (`Follow`) resolves an anchor to its
/// target; `BacklinksTo` answers "which documents reference this video?" —
/// the browsing structure of Scenario I.
class HypermediaStore {
 public:
  HypermediaStore() = default;

  Status AddDocument(Document document);
  Result<const Document*> GetDocument(const std::string& name) const;
  std::vector<std::string> DocumentNames() const;

  /// Adds a link; the source document and anchor must exist.
  Status AddLink(Link link);

  /// Resolves the link at `document`/`anchor` (NotFound when unlinked).
  Result<LinkTarget> Follow(const std::string& document,
                            const std::string& anchor) const;

  /// All links pointing at AV cues on `oid` (any attribute).
  std::vector<Link> BacklinksTo(Oid oid) const;

  /// All links out of a document.
  std::vector<Link> LinksFrom(const std::string& document) const;

  size_t LinkCount() const { return links_.size(); }

 private:
  std::map<std::string, Document> documents_;
  std::vector<Link> links_;
};

}  // namespace avdb

#endif  // AVDB_HYPER_HYPERMEDIA_H_

#include "hyper/hypermedia.h"

namespace avdb {

bool Document::HasAnchor(const std::string& anchor) const {
  for (const auto& a : anchors) {
    if (a == anchor) return true;
  }
  return false;
}

Status HypermediaStore::AddDocument(Document document) {
  if (document.name.empty()) {
    return Status::InvalidArgument("document needs a name");
  }
  if (documents_.count(document.name) > 0) {
    return Status::AlreadyExists("document exists: " + document.name);
  }
  const std::string name = document.name;
  documents_.emplace(name, std::move(document));
  return Status::OK();
}

Result<const Document*> HypermediaStore::GetDocument(
    const std::string& name) const {
  auto it = documents_.find(name);
  if (it == documents_.end()) return Status::NotFound("document: " + name);
  return &it->second;
}

std::vector<std::string> HypermediaStore::DocumentNames() const {
  std::vector<std::string> names;
  names.reserve(documents_.size());
  for (const auto& [name, doc] : documents_) names.push_back(name);
  return names;
}

Status HypermediaStore::AddLink(Link link) {
  auto doc = GetDocument(link.from_document);
  if (!doc.ok()) return doc.status();
  if (!doc.value()->HasAnchor(link.anchor)) {
    return Status::NotFound("anchor " + link.anchor + " in document " +
                            link.from_document);
  }
  if (link.target.kind == LinkTarget::Kind::kDocument) {
    AVDB_RETURN_IF_ERROR(GetDocument(link.target.document).status());
  }
  for (const auto& existing : links_) {
    if (existing.from_document == link.from_document &&
        existing.anchor == link.anchor) {
      return Status::AlreadyExists("anchor already linked: " + link.anchor);
    }
  }
  links_.push_back(std::move(link));
  return Status::OK();
}

Result<LinkTarget> HypermediaStore::Follow(const std::string& document,
                                           const std::string& anchor) const {
  for (const auto& link : links_) {
    if (link.from_document == document && link.anchor == anchor) {
      return link.target;
    }
  }
  return Status::NotFound("no link at " + document + "#" + anchor);
}

std::vector<Link> HypermediaStore::BacklinksTo(Oid oid) const {
  std::vector<Link> out;
  for (const auto& link : links_) {
    if (link.target.kind == LinkTarget::Kind::kAvCue &&
        link.target.oid == oid) {
      out.push_back(link);
    }
  }
  return out;
}

std::vector<Link> HypermediaStore::LinksFrom(
    const std::string& document) const {
  std::vector<Link> out;
  for (const auto& link : links_) {
    if (link.from_document == document) out.push_back(link);
  }
  return out;
}

}  // namespace avdb

#include "net/channel.h"

#include "base/logging.h"

namespace avdb {

Channel::Profile Channel::Profile::Ethernet10() {
  Profile p;
  p.model = "ethernet-10mbps";
  p.bandwidth_bytes_per_sec = 10 * 1000 * 1000 / 8;
  p.propagation_delay_ns = 2 * 1000 * 1000;  // 2 ms campus RTT share
  return p;
}

Channel::Profile Channel::Profile::Atm155() {
  Profile p;
  p.model = "atm-155mbps";
  p.bandwidth_bytes_per_sec = 155LL * 1000 * 1000 / 8;
  p.propagation_delay_ns = 1 * 1000 * 1000;
  return p;
}

Channel::Profile Channel::Profile::T1() {
  Profile p;
  p.model = "t1-1.5mbps";
  p.bandwidth_bytes_per_sec = 1544 * 1000 / 8;
  p.propagation_delay_ns = 8 * 1000 * 1000;
  return p;
}

Channel::Channel(std::string name, Profile profile)
    : name_(std::move(name)),
      profile_(profile),
      line_rate_bytes_per_sec_(profile.bandwidth_bytes_per_sec),
      link_(name_ + ".link") {
  AVDB_CHECK(profile_.bandwidth_bytes_per_sec > 0)
      << "channel needs positive bandwidth";
}

Result<int64_t> Channel::ReserveBandwidth(int64_t bytes_per_sec) {
  if (bytes_per_sec <= 0) {
    return Status::InvalidArgument("reservation must be positive");
  }
  if (bytes_per_sec > AvailableBandwidth()) {
    return Status::ResourceExhausted(
        "channel " + name_ + " has " + std::to_string(AvailableBandwidth()) +
        " B/s unreserved, need " + std::to_string(bytes_per_sec));
  }
  reserved_bytes_per_sec_ += bytes_per_sec;
  return bytes_per_sec;
}

void Channel::ReleaseBandwidth(int64_t bytes_per_sec) {
  if (bytes_per_sec > reserved_bytes_per_sec_) {
    AVDB_LOG(Warning) << "channel " << name_ << ": released "
                      << bytes_per_sec << " B/s but only "
                      << reserved_bytes_per_sec_
                      << " B/s reserved; clamping at zero";
    ++stats_.over_releases;
    if (over_releases_counter_ != nullptr) over_releases_counter_->Increment();
    if (tracer_ != nullptr) {
      tracer_->Event("net", "over_release", name_,
                     std::to_string(bytes_per_sec) + " B/s over " +
                         std::to_string(reserved_bytes_per_sec_));
    }
    reserved_bytes_per_sec_ = 0;
    return;
  }
  reserved_bytes_per_sec_ -= bytes_per_sec;
}

int64_t Channel::SetLineRate(int64_t bytes_per_sec) {
  if (bytes_per_sec <= 0) {
    // Total rate collapse ("the link went dark"). Clamp to 1 B/s instead of
    // asserting: serialization stays finite, AvailableBandwidth() reads zero,
    // and every reservation shows up as oversubscription for readmission.
    AVDB_LOG(Warning) << "channel " << name_ << ": line rate "
                      << bytes_per_sec << " B/s clamped to 1 B/s";
    ++stats_.rate_clamps;
    bytes_per_sec = 1;
  }
  if (tracer_ != nullptr && bytes_per_sec != line_rate_bytes_per_sec_) {
    tracer_->Event("net", "line_rate_set", name_,
                   std::to_string(line_rate_bytes_per_sec_) + " -> " +
                       std::to_string(bytes_per_sec) + " B/s");
  }
  line_rate_bytes_per_sec_ = bytes_per_sec;
  return OversubscribedBandwidth();
}

int64_t Channel::SerializationNs(int64_t bytes) const {
  return bytes * 1000000000LL / line_rate_bytes_per_sec_;
}

int64_t Channel::Transfer(int64_t request_ns, int64_t bytes) {
  int64_t serialization_ns = SerializationNs(bytes);
  if (fault_injector_ != nullptr) {
    const double slowdown = fault_injector_->OnTransfer();
    if (slowdown > 1.0) {
      serialization_ns = static_cast<int64_t>(
          static_cast<double>(serialization_ns) * slowdown);
      ++stats_.collapsed_transfers;
      if (collapsed_counter_ != nullptr) collapsed_counter_->Increment();
      if (tracer_ != nullptr) {
        tracer_->EventAt(request_ns, "net", "bandwidth_collapse", name_,
                         "x" + std::to_string(slowdown));
      }
    }
  }
  const int64_t done = link_.Submit(request_ns, serialization_ns);
  ++stats_.transfers;
  stats_.bytes += bytes;
  if (transfers_counter_ != nullptr) {
    transfers_counter_->Increment();
    transfer_bytes_counter_->Increment(bytes);
  }
  return done + profile_.propagation_delay_ns;
}

Result<int64_t> Channel::TransferWithDeadline(int64_t request_ns,
                                              int64_t bytes,
                                              DeadlineBudget budget) {
  if (budget.expired()) {
    // Fast-fail before touching the injector or the link queue: a spent
    // budget must not perturb the fault trace or cost other streams time.
    ++stats_.deadline_cancelled;
    return Status::DeadlineExceeded("deadline budget already spent; " +
                                    std::to_string(bytes) + " B transfer on " +
                                    name_ + " not attempted");
  }
  int64_t serialization_ns = SerializationNs(bytes);
  if (fault_injector_ != nullptr) {
    const double slowdown = fault_injector_->OnTransfer();
    if (slowdown > 1.0) {
      serialization_ns = static_cast<int64_t>(
          static_cast<double>(serialization_ns) * slowdown);
      ++stats_.collapsed_transfers;
      if (collapsed_counter_ != nullptr) collapsed_counter_->Increment();
      if (tracer_ != nullptr) {
        tracer_->EventAt(request_ns, "net", "bandwidth_collapse", name_,
                         "x" + std::to_string(slowdown));
      }
    }
  }
  const int64_t predicted_done =
      link_.PeekCompletion(request_ns, serialization_ns) +
      profile_.propagation_delay_ns;
  if (budget.CannotAfford(predicted_done - request_ns)) {
    // Doomed before it serializes: cancel without occupying the link. The
    // injector draw above stands (the collapse is what doomed it), keeping
    // the fault trace a pure function of the attempt sequence.
    ++stats_.deadline_cancelled;
    if (deadline_cancelled_counter_ != nullptr) {
      deadline_cancelled_counter_->Increment();
    }
    if (tracer_ != nullptr) {
      tracer_->EventAt(request_ns, "net", "deadline_cancel", name_,
                       std::to_string(predicted_done - request_ns) +
                           " ns needed, " +
                           std::to_string(budget.remaining_ns()) + " ns left");
    }
    return Status::DeadlineExceeded(
        "transfer of " + std::to_string(bytes) + " B on " + name_ +
        " needs " + std::to_string(predicted_done - request_ns) +
        " ns but only " + std::to_string(budget.remaining_ns()) +
        " ns of budget remain");
  }
  const int64_t done = link_.Submit(request_ns, serialization_ns);
  ++stats_.transfers;
  stats_.bytes += bytes;
  if (transfers_counter_ != nullptr) {
    transfers_counter_->Increment();
    transfer_bytes_counter_->Increment(bytes);
  }
  return done + profile_.propagation_delay_ns;
}

int64_t Channel::PeekTransfer(int64_t request_ns, int64_t bytes) const {
  return link_.PeekCompletion(request_ns, SerializationNs(bytes)) +
         profile_.propagation_delay_ns;
}

void Channel::BindObservability(obs::MetricsRegistry* registry,
                                obs::Tracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) {
    transfers_counter_ = nullptr;
    transfer_bytes_counter_ = nullptr;
    collapsed_counter_ = nullptr;
    over_releases_counter_ = nullptr;
    deadline_cancelled_counter_ = nullptr;
    return;
  }
  transfers_counter_ = registry->GetCounter("avdb_net_transfers_total",
                                            "transfers submitted to the link");
  transfer_bytes_counter_ = registry->GetCounter(
      "avdb_net_transfer_bytes_total", "payload bytes sent over the link");
  collapsed_counter_ =
      registry->GetCounter("avdb_net_collapsed_transfers_total",
                           "transfers slowed by an injected fault");
  over_releases_counter_ =
      registry->GetCounter("avdb_net_over_releases_total",
                           "bandwidth releases clamped at zero");
  deadline_cancelled_counter_ =
      registry->GetCounter("avdb_net_deadline_cancelled_total",
                           "transfers cancelled before serializing because "
                           "the propagated deadline budget could not fit");
}

}  // namespace avdb

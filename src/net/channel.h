#ifndef AVDB_NET_CHANNEL_H_
#define AVDB_NET_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "base/deadline.h"
#include "base/fault_injector.h"
#include "base/result.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/service_queue.h"

namespace avdb {

/// A simulated network channel between the database site and a client —
/// stand-in for the paper's broadband ISDN / ATM links (DESIGN.md §5).
/// Bandwidth is reservable (§4.3: "this statement would fail if
/// insufficient network bandwidth were available") and transfers serialize
/// on the link, so an unreserved second stream visibly degrades both.
class Channel {
 public:
  struct Profile {
    std::string model;
    int64_t bandwidth_bytes_per_sec = 0;
    int64_t propagation_delay_ns = 0;

    /// 10 Mb/s shared LAN (≈1.25 MB/s), campus latency.
    static Profile Ethernet10();
    /// 155 Mb/s ATM / B-ISDN class link.
    static Profile Atm155();
    /// 1.5 Mb/s T1 tail circuit.
    static Profile T1();
  };

  Channel(std::string name, Profile profile);

  const std::string& name() const { return name_; }
  const Profile& profile() const { return profile_; }

  /// Reserves `bytes_per_sec` of the link for a stream; ResourceExhausted
  /// when the remaining unreserved bandwidth is insufficient.
  Result<int64_t> ReserveBandwidth(int64_t bytes_per_sec);
  /// Releases a prior reservation amount. Releasing more than is currently
  /// reserved clamps the total at zero and logs the over-release — a caller
  /// bug the accounting must survive, not propagate.
  void ReleaseBandwidth(int64_t bytes_per_sec);
  int64_t ReservedBandwidth() const { return reserved_bytes_per_sec_; }
  /// Unreserved line rate, never negative: when a fault shrinks the line
  /// rate below what is already reserved, availability is zero (not a
  /// negative number that could admit a new stream via a signed compare)
  /// and the shortfall shows up in OversubscribedBandwidth().
  int64_t AvailableBandwidth() const {
    const int64_t avail = line_rate_bytes_per_sec_ - reserved_bytes_per_sec_;
    return avail > 0 ? avail : 0;
  }
  /// Reserved bandwidth in excess of the current line rate (zero in normal
  /// operation; positive after a mid-stream rate collapse until callers
  /// re-admit at reduced demand).
  int64_t OversubscribedBandwidth() const {
    const int64_t over = reserved_bytes_per_sec_ - line_rate_bytes_per_sec_;
    return over > 0 ? over : 0;
  }

  /// Current effective line rate; equals profile().bandwidth_bytes_per_sec
  /// until a revocation fault shrinks it.
  int64_t LineRate() const { return line_rate_bytes_per_sec_; }
  /// Changes the effective line rate mid-simulation (models a revoked or
  /// degraded reservation: link failover, competing traffic class). Returns
  /// the number of reserved bytes/sec now in excess of the new rate so the
  /// caller can revoke/readmit streams. Existing reservations stay counted;
  /// only future transfers serialize at the new rate. A rate <= 0 (total
  /// collapse — the link went dark) is clamped to 1 B/s: serialization
  /// math stays finite, every in-flight reservation reads as
  /// oversubscription, and transfers effectively stall until the rate is
  /// restored.
  int64_t SetLineRate(int64_t bytes_per_sec);

  /// Models sending `bytes` at `request_ns`: serializes on the link at full
  /// line rate, then adds propagation delay. Returns delivery time.
  int64_t Transfer(int64_t request_ns, int64_t bytes);

  /// Transfer under a propagated per-request deadline. A spent budget fails
  /// fast with DeadlineExceeded; a transfer whose predicted delivery (queue
  /// wait + serialization + propagation) cannot fit the remaining budget is
  /// cancelled *before* occupying the link — doomed bytes never serialize,
  /// so they cost other streams nothing. Note the fault injector is still
  /// consulted for a cancelled-after-prediction transfer (the decision to
  /// abandon is made with the collapse in view), so fault traces remain a
  /// pure function of the attempt sequence.
  Result<int64_t> TransferWithDeadline(int64_t request_ns, int64_t bytes,
                                       DeadlineBudget budget);

  /// Delivery time a transfer would get without submitting it.
  int64_t PeekTransfer(int64_t request_ns, int64_t bytes) const;

  /// Seconds per byte at line rate (for cost estimation).
  int64_t SerializationNs(int64_t bytes) const;

  /// Attaches a fault injector consulted on every Transfer (non-owning;
  /// nullptr detaches). An injected bandwidth collapse multiplies that
  /// transfer's serialization time. With no injector the transfer path is
  /// exactly the fault-free one.
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_ = injector;
  }
  FaultInjector* fault_injector() const { return fault_injector_; }

  struct Stats {
    int64_t transfers = 0;
    int64_t bytes = 0;
    int64_t over_releases = 0;       ///< ReleaseBandwidth clamps at zero
    int64_t collapsed_transfers = 0; ///< transfers slowed by injected faults
    int64_t deadline_cancelled = 0;  ///< transfers refused: budget unfittable
    int64_t rate_clamps = 0;         ///< SetLineRate(<= 0) clamped to 1 B/s
  };
  const Stats& stats() const { return stats_; }
  const ServiceQueue& queue() const { return link_; }

  /// Forwards transfer/over-release stats into shared `avdb_net_*` counters
  /// and traces line-rate revocations, fault-collapsed transfers, and
  /// over-releases (actor = channel name). nullptr detaches; unbound the
  /// channel is cost-identical to the uninstrumented one.
  void BindObservability(obs::MetricsRegistry* registry, obs::Tracer* tracer);

 private:
  std::string name_;
  Profile profile_;
  int64_t line_rate_bytes_per_sec_ = 0;
  int64_t reserved_bytes_per_sec_ = 0;
  ServiceQueue link_;
  FaultInjector* fault_injector_ = nullptr;
  Stats stats_;
  obs::Counter* transfers_counter_ = nullptr;
  obs::Counter* transfer_bytes_counter_ = nullptr;
  obs::Counter* collapsed_counter_ = nullptr;
  obs::Counter* over_releases_counter_ = nullptr;
  obs::Counter* deadline_cancelled_counter_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

using ChannelPtr = std::shared_ptr<Channel>;

}  // namespace avdb

#endif  // AVDB_NET_CHANNEL_H_

#ifndef AVDB_NET_CHANNEL_H_
#define AVDB_NET_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "base/result.h"
#include "sched/service_queue.h"

namespace avdb {

/// A simulated network channel between the database site and a client —
/// stand-in for the paper's broadband ISDN / ATM links (DESIGN.md §5).
/// Bandwidth is reservable (§4.3: "this statement would fail if
/// insufficient network bandwidth were available") and transfers serialize
/// on the link, so an unreserved second stream visibly degrades both.
class Channel {
 public:
  struct Profile {
    std::string model;
    int64_t bandwidth_bytes_per_sec = 0;
    int64_t propagation_delay_ns = 0;

    /// 10 Mb/s shared LAN (≈1.25 MB/s), campus latency.
    static Profile Ethernet10();
    /// 155 Mb/s ATM / B-ISDN class link.
    static Profile Atm155();
    /// 1.5 Mb/s T1 tail circuit.
    static Profile T1();
  };

  Channel(std::string name, Profile profile);

  const std::string& name() const { return name_; }
  const Profile& profile() const { return profile_; }

  /// Reserves `bytes_per_sec` of the link for a stream; ResourceExhausted
  /// when the remaining unreserved bandwidth is insufficient.
  Result<int64_t> ReserveBandwidth(int64_t bytes_per_sec);
  /// Releases a prior reservation amount.
  void ReleaseBandwidth(int64_t bytes_per_sec);
  int64_t ReservedBandwidth() const { return reserved_bytes_per_sec_; }
  int64_t AvailableBandwidth() const {
    return profile_.bandwidth_bytes_per_sec - reserved_bytes_per_sec_;
  }

  /// Models sending `bytes` at `request_ns`: serializes on the link at full
  /// line rate, then adds propagation delay. Returns delivery time.
  int64_t Transfer(int64_t request_ns, int64_t bytes);

  /// Delivery time a transfer would get without submitting it.
  int64_t PeekTransfer(int64_t request_ns, int64_t bytes) const;

  /// Seconds per byte at line rate (for cost estimation).
  int64_t SerializationNs(int64_t bytes) const;

  struct Stats {
    int64_t transfers = 0;
    int64_t bytes = 0;
  };
  const Stats& stats() const { return stats_; }
  const ServiceQueue& queue() const { return link_; }

 private:
  std::string name_;
  Profile profile_;
  int64_t reserved_bytes_per_sec_ = 0;
  ServiceQueue link_;
  Stats stats_;
};

using ChannelPtr = std::shared_ptr<Channel>;

}  // namespace avdb

#endif  // AVDB_NET_CHANNEL_H_

#include "codec/scalable_codec.h"

#include <algorithm>

#include "base/work_pool.h"
#include "codec/bitio.h"
#include "codec/block_transform.h"
#include "codec/simd/kernels.h"

namespace avdb {

namespace {

struct PlaneI16 {
  int width = 0;
  int height = 0;
  std::vector<int16_t> data;
};

// Centered copy of one component plane, read zero-copy from the frame.
PlaneI16 ToI16(const PlaneView& plane) {
  PlaneI16 out{plane.width(), plane.height(),
               std::vector<int16_t>(plane.size())};
  simd::ActiveKernels().u8_to_i16_center(plane.data(), out.data.data(),
                                         plane.size());
  return out;
}

// Box-filter downsample by 2 (ceil geometry).
PlaneI16 Downsample2(const PlaneI16& src) {
  PlaneI16 out;
  out.width = (src.width + 1) / 2;
  out.height = (src.height + 1) / 2;
  out.data.resize(static_cast<size_t>(out.width) * out.height);
  for (int y = 0; y < out.height; ++y) {
    for (int x = 0; x < out.width; ++x) {
      int sum = 0;
      int count = 0;
      for (int dy = 0; dy < 2; ++dy) {
        const int sy = 2 * y + dy;
        if (sy >= src.height) continue;
        for (int dx = 0; dx < 2; ++dx) {
          const int sx = 2 * x + dx;
          if (sx >= src.width) continue;
          sum += src.data[static_cast<size_t>(sy) * src.width + sx];
          ++count;
        }
      }
      out.data[static_cast<size_t>(y) * out.width + x] =
          static_cast<int16_t>(sum / (count == 0 ? 1 : count));
    }
  }
  return out;
}

// Bilinear upsample to an exact target geometry.
PlaneI16 UpsampleTo(const PlaneI16& src, int width, int height) {
  PlaneI16 out{width, height,
               std::vector<int16_t>(static_cast<size_t>(width) * height)};
  if (src.width == 0 || src.height == 0) return out;
  for (int y = 0; y < height; ++y) {
    const double fy = height > 1
                          ? static_cast<double>(y) * (src.height - 1) /
                                (height - 1 == 0 ? 1 : height - 1)
                          : 0.0;
    const int y0 = static_cast<int>(fy);
    const int y1 = y0 + 1 < src.height ? y0 + 1 : y0;
    const double wy = fy - y0;
    for (int x = 0; x < width; ++x) {
      const double fx = width > 1
                            ? static_cast<double>(x) * (src.width - 1) /
                                  (width - 1 == 0 ? 1 : width - 1)
                            : 0.0;
      const int x0 = static_cast<int>(fx);
      const int x1 = x0 + 1 < src.width ? x0 + 1 : x0;
      const double wx = fx - x0;
      const double v00 = src.data[static_cast<size_t>(y0) * src.width + x0];
      const double v01 = src.data[static_cast<size_t>(y0) * src.width + x1];
      const double v10 = src.data[static_cast<size_t>(y1) * src.width + x0];
      const double v11 = src.data[static_cast<size_t>(y1) * src.width + x1];
      const double v = v00 * (1 - wx) * (1 - wy) + v01 * wx * (1 - wy) +
                       v10 * (1 - wx) * wy + v11 * wx * wy;
      out.data[static_cast<size_t>(y) * width + x] =
          static_cast<int16_t>(v >= 0 ? v + 0.5 : v - 0.5);
    }
  }
  return out;
}

// Geometry of layer `L` (0-based) for a full size `full`: full >> (2-L).
int LayerDim(int full, int layer) {
  int shift = ScalableCodec::kMaxLayers - 1 - layer;
  int v = full;
  for (int i = 0; i < shift; ++i) v = (v + 1) / 2;
  return v;
}

// Encodes one plane into `layer_count` layers; returns per-layer buffers
// and the final reconstruction (for potential chaining; unused here since
// all frames are intra).
std::vector<Buffer> EncodePlaneLayers(const PlaneI16& full, int layer_count,
                                      int quality) {
  std::vector<Buffer> layers;
  // Build the pyramid: pyramid[0] = base (smallest), up to full size.
  std::vector<PlaneI16> pyramid(static_cast<size_t>(layer_count));
  pyramid[static_cast<size_t>(layer_count - 1)] = full;
  for (int l = layer_count - 2; l >= 0; --l) {
    pyramid[static_cast<size_t>(l)] =
        Downsample2(pyramid[static_cast<size_t>(l + 1)]);
  }
  const simd::CodecKernels& k = simd::ActiveKernels();
  PlaneI16 recon;  // reconstruction so far, at pyramid[l] geometry
  for (int l = 0; l < layer_count; ++l) {
    const PlaneI16& target = pyramid[static_cast<size_t>(l)];
    const size_t n = target.data.size();
    BitWriter writer;
    PlaneI16 new_recon{target.width, target.height, std::vector<int16_t>(n)};
    if (l == 0) {
      // EncodePlaneWithRecon hands back the decoder-exact reconstruction,
      // so no layer is ever re-parsed to maintain the prediction chain.
      block_transform::EncodePlaneWithRecon(target.data.data(), target.width,
                                            target.height, quality, &writer,
                                            new_recon.data.data());
    } else {
      const PlaneI16 pred = UpsampleTo(recon, target.width, target.height);
      PlaneI16 residual{target.width, target.height,
                        std::vector<int16_t>(n)};
      k.sub_i16(target.data.data(), pred.data.data(), residual.data.data(),
                n);
      block_transform::EncodePlaneWithRecon(residual.data.data(),
                                            target.width, target.height,
                                            quality, &writer,
                                            new_recon.data.data());
      k.add_i16(pred.data.data(), new_recon.data.data(),
                new_recon.data.data(), n);
    }
    recon = std::move(new_recon);
    layers.push_back(writer.Finish());
  }
  return layers;
}

// Encodes one full frame into layer_count layers per plane. Enhancement
// layers chain on the layer below, so layers stay serial; the colour
// planes are the independent unit and fan out across the pool when
// plane_concurrency > 1. Pure function of the frame, so whole frames can
// also run on any pool thread. Packing: layer 0 of all planes goes into
// `data` (u32-size-prefixed), enhancement layer L plane p lands at
// layers[(L-1)*planes + p].
EncodedFrame EncodeScalableFrame(const VideoFrame& frame,
                                 const VideoCodecParams& params,
                                 int plane_concurrency) {
  const int planes = frame.plane_count();
  EncodedFrame ef;
  ef.is_intra = true;
  ef.layers.resize(static_cast<size_t>(params.layer_count - 1) * planes);
  std::vector<std::vector<Buffer>> per_plane =
      WorkPool::Shared().ParallelMap<std::vector<Buffer>>(
          std::min(plane_concurrency, planes), planes, [&](int64_t p) {
            const PlaneI16 full = ToI16(frame.plane(static_cast<int>(p)));
            return EncodePlaneLayers(full, params.layer_count, params.quality);
          });
  Buffer base;
  for (int p = 0; p < planes; ++p) {
    std::vector<Buffer>& layer_bits = per_plane[static_cast<size_t>(p)];
    base.AppendU32(static_cast<uint32_t>(layer_bits[0].size()));
    base.AppendBuffer(layer_bits[0]);
    for (int l = 1; l < params.layer_count; ++l) {
      ef.layers[static_cast<size_t>(l - 1) * planes + p] =
          std::move(layer_bits[static_cast<size_t>(l)]);
    }
  }
  ef.data = std::move(base);
  return ef;
}

// Decodes `layers` layers of one plane and upsamples to full geometry.
Result<PlaneI16> DecodePlaneLayers(const std::vector<const Buffer*>& bits,
                                   int layers, int full_width,
                                   int full_height, int quality,
                                   int stored_layers) {
  PlaneI16 recon;
  for (int l = 0; l < layers; ++l) {
    const int w = LayerDim(full_width, l + (ScalableCodec::kMaxLayers -
                                            stored_layers));
    const int h = LayerDim(full_height, l + (ScalableCodec::kMaxLayers -
                                             stored_layers));
    BitReader reader(*bits[static_cast<size_t>(l)]);
    auto decoded = block_transform::DecodePlane(w, h, quality, &reader);
    if (!decoded.ok()) return decoded.status();
    if (l == 0) {
      recon = {w, h, std::move(decoded).value()};
    } else {
      const PlaneI16 pred = UpsampleTo(recon, w, h);
      recon = {w, h, std::move(decoded).value()};
      simd::ActiveKernels().add_i16(pred.data.data(), recon.data.data(),
                                    recon.data.data(), recon.data.size());
    }
  }
  return UpsampleTo(recon, full_width, full_height);
}

class ScalableDecoderSession final : public VideoDecoderSession {
 public:
  ScalableDecoderSession(const EncodedVideo& video, int layers)
      : video_(video), layers_(layers) {}

  Result<VideoFrame> DecodeFrame(int64_t index) override {
    AVDB_ASSIGN_OR_RETURN(VideoFrame frame,
                          DecodeOne(index, video_.params.concurrency));
    ++decoded_;
    return frame;
  }

  Result<std::vector<VideoFrame>> DecodeRange(int64_t first,
                                              int64_t count) override {
    if (first < 0 || count < 0 ||
        first + count > static_cast<int64_t>(video_.frames.size())) {
      return Status::InvalidArgument("decode range out of bounds");
    }
    const int width = video_.params.concurrency;
    if (width <= 1 || count <= 1) {
      return VideoDecoderSession::DecodeRange(first, count);
    }
    // Every frame is intra-coded, so frames are the parallel grain here
    // (planes stay serial inside each task).
    std::vector<Result<VideoFrame>> frames =
        WorkPool::Shared().ParallelMap<Result<VideoFrame>>(
            width, count, [&](int64_t i) {
              return DecodeOne(first + i, /*plane_concurrency=*/1);
            });
    std::vector<VideoFrame> out;
    out.reserve(static_cast<size_t>(count));
    for (auto& f : frames) {
      if (!f.ok()) return f.status();
      out.push_back(std::move(f).value());
    }
    decoded_ += count;
    return out;
  }

  int64_t FramesDecodedInternally() const override { return decoded_; }

 private:
  Result<VideoFrame> DecodeOne(int64_t index, int plane_concurrency) const {
    if (index < 0 || index >= static_cast<int64_t>(video_.frames.size())) {
      return Status::InvalidArgument("frame index out of range");
    }
    const auto& ef = video_.frames[static_cast<size_t>(index)];
    const auto& t = video_.raw_type;
    const int stored = video_.params.layer_count;
    const int use = layers_ < stored ? layers_ : stored;
    const int planes = t.depth_bits() / 8;

    VideoFrame frame(t.width(), t.height(), t.depth_bits());
    // Layer buffers are stored per frame as: data = all planes of layer 0
    // concatenated? No — per plane per layer. Layout: layer L of plane p is
    // at ef.layers[(L-1)*planes + p] for L>=1; layer 0 of plane p is packed
    // inside ef.data sequentially with a u32 size prefix each.
    BufferReader base_reader(ef.data);
    std::vector<Buffer> base_planes;
    for (int p = 0; p < planes; ++p) {
      auto size = base_reader.ReadU32();
      if (!size.ok()) return size.status();
      if (size.value() > base_reader.remaining()) {
        return Status::DataLoss("base layer size exceeds payload");
      }
      Buffer b;
      b.Resize(size.value());
      AVDB_RETURN_IF_ERROR(base_reader.ReadBytes(b.data(), size.value()));
      base_planes.push_back(std::move(b));
    }
    // Planes chain layers internally but are independent of each other;
    // storage is planar, so concurrent plane tasks write disjoint
    // contiguous runs and never touch the same byte.
    std::vector<Status> statuses = WorkPool::Shared().ParallelMap<Status>(
        std::min(plane_concurrency, planes), planes, [&](int64_t p64) {
          const int p = static_cast<int>(p64);
          std::vector<const Buffer*> bits;
          bits.push_back(&base_planes[static_cast<size_t>(p)]);
          for (int l = 1; l < use; ++l) {
            const size_t li = static_cast<size_t>(l - 1) * planes + p;
            if (li >= ef.layers.size()) {
              return Status::DataLoss("missing enhancement layer");
            }
            bits.push_back(&ef.layers[li]);
          }
          auto plane = DecodePlaneLayers(bits, use, t.width(), t.height(),
                                         video_.params.quality, stored);
          if (!plane.ok()) return plane.status();
          const PlaneSpan out = frame.plane_span(p);
          simd::ActiveKernels().i16_center_to_u8(plane.value().data.data(),
                                                 out.data(), out.size());
          return Status::OK();
        });
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
    return frame;
  }

  const EncodedVideo video_;
  const int layers_;
  int64_t decoded_ = 0;
};

}  // namespace

Result<EncodedVideo> ScalableCodec::Encode(
    const VideoValue& value, const VideoCodecParams& params) const {
  if (value.type().IsCompressed()) {
    return Status::InvalidArgument("encoder input must be raw video");
  }
  if (params.layer_count < 1 || params.layer_count > kMaxLayers) {
    return Status::InvalidArgument("layer_count must be in [1, 3]");
  }
  EncodedVideo out;
  out.raw_type = value.type();
  out.family = family();
  out.params = params;

  const int64_t n = value.FrameCount();
  out.frames.reserve(static_cast<size_t>(n));
  if (params.concurrency <= 1) {
    for (int64_t i = 0; i < n; ++i) {
      auto frame = value.Frame(i);
      if (!frame.ok()) return frame.status();
      out.frames.push_back(
          EncodeScalableFrame(frame.value(), params, /*plane_concurrency=*/1));
    }
    return out;
  }
  // Every frame is intra-coded, so frames fan out across the pool; raw
  // frames are fetched serially in bounded batches first (VideoValue::Frame
  // is not required to be thread-safe). Ordered join keeps the output
  // byte-identical to the serial loop.
  const int64_t batch =
      std::max<int64_t>(static_cast<int64_t>(params.concurrency) * 4, 16);
  for (int64_t start = 0; start < n; start += batch) {
    const int64_t count = std::min(batch, n - start);
    std::vector<VideoFrame> raw;
    raw.reserve(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      auto frame = value.Frame(start + i);
      if (!frame.ok()) return frame.status();
      raw.push_back(std::move(frame).value());
    }
    std::vector<EncodedFrame> encoded =
        WorkPool::Shared().ParallelMap<EncodedFrame>(
            params.concurrency, count, [&](int64_t i) {
              return EncodeScalableFrame(raw[static_cast<size_t>(i)], params,
                                         /*plane_concurrency=*/1);
            });
    for (EncodedFrame& ef : encoded) {
      out.frames.push_back(std::move(ef));
    }
  }
  return out;
}

Result<std::unique_ptr<VideoDecoderSession>> ScalableCodec::NewDecoder(
    const EncodedVideo& video) const {
  return NewDecoderWithLayers(video, video.params.layer_count);
}

Result<std::unique_ptr<VideoDecoderSession>> ScalableCodec::NewDecoderWithLayers(
    const EncodedVideo& video, int layers) const {
  if (video.family != EncodingFamily::kScalable) {
    return Status::InvalidArgument("stream is not scalable-coded");
  }
  if (layers < 1 || layers > video.params.layer_count) {
    return Status::InvalidArgument("requested layer count not stored");
  }
  return std::unique_ptr<VideoDecoderSession>(
      new ScalableDecoderSession(video, layers));
}

Result<int64_t> ScalableCodec::BytesPerFrameAtLayers(const EncodedVideo& video,
                                                     int layers) {
  if (video.frames.empty()) return Status::InvalidArgument("empty stream");
  if (layers < 1 || layers > video.params.layer_count) {
    return Status::InvalidArgument("requested layer count not stored");
  }
  const int planes = video.raw_type.depth_bits() / 8;
  int64_t total = 0;
  for (const auto& ef : video.frames) {
    total += static_cast<int64_t>(ef.data.size());
    for (int l = 1; l < layers; ++l) {
      for (int p = 0; p < planes; ++p) {
        total += static_cast<int64_t>(
            ef.layers[static_cast<size_t>(l - 1) * planes + p].size());
      }
    }
  }
  return total / static_cast<int64_t>(video.frames.size());
}

Result<std::shared_ptr<ScalableVideoView>> ScalableVideoView::Create(
    EncodedVideo video, int layers) {
  if (video.family != EncodingFamily::kScalable) {
    return Status::InvalidArgument("view requires a scalable stream");
  }
  if (layers < 1 || layers > video.params.layer_count) {
    return Status::InvalidArgument("requested layer count not stored");
  }
  MediaDataType type = MediaDataType::CompressedVideo(
      EncodingFamily::kScalable, video.raw_type.width(),
      video.raw_type.height(), video.raw_type.depth_bits(),
      video.raw_type.element_rate());
  return std::shared_ptr<ScalableVideoView>(
      new ScalableVideoView(std::move(type), std::move(video), layers));
}

Result<VideoFrame> ScalableVideoView::Frame(int64_t index) const {
  if (session_ == nullptr) {
    ScalableCodec codec;
    auto session = codec.NewDecoderWithLayers(video_, layers_);
    if (!session.ok()) return session.status();
    session_ = std::move(session).value();
  }
  return session_->DecodeFrame(index);
}

Result<std::vector<VideoFrame>> ScalableVideoView::Frames(
    int64_t first, int64_t count) const {
  if (session_ == nullptr) {
    ScalableCodec codec;
    auto session = codec.NewDecoderWithLayers(video_, layers_);
    if (!session.ok()) return session.status();
    session_ = std::move(session).value();
  }
  return session_->DecodeRange(first, count);
}

int64_t ScalableVideoView::StoredBytes() const {
  int64_t total = 0;
  for (int64_t i = 0; i < ElementCount(); ++i) total += StoredFrameBytes(i);
  return total;
}

int64_t ScalableVideoView::StoredFrameBytes(int64_t index) const {
  if (index < 0 || index >= ElementCount()) return 0;
  const EncodedFrame& ef = video_.frames[static_cast<size_t>(index)];
  const int planes = video_.raw_type.depth_bits() / 8;
  int64_t bytes = static_cast<int64_t>(ef.data.size());
  for (int l = 1; l < layers_; ++l) {
    for (int p = 0; p < planes; ++p) {
      bytes += static_cast<int64_t>(
          ef.layers[static_cast<size_t>(l - 1) * planes + p].size());
    }
  }
  return bytes;
}

std::string ScalableVideoView::Describe() const {
  return MediaValue::Describe() + " (scalable view, " +
         std::to_string(layers_) + "/" +
         std::to_string(video_.params.layer_count) + " layers)";
}

int ScalableCodec::LayersForResolution(const MediaDataType& stored,
                                       int req_width, int req_height) {
  for (int layers = 1; layers <= kMaxLayers; ++layers) {
    const int shift = kMaxLayers - layers;
    int w = stored.width();
    int h = stored.height();
    for (int i = 0; i < shift; ++i) {
      w = (w + 1) / 2;
      h = (h + 1) / 2;
    }
    if (w >= req_width && h >= req_height) return layers;
  }
  return kMaxLayers;
}

}  // namespace avdb

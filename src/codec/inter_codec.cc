#include "codec/inter_codec.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "base/buffer_pool.h"
#include "base/logging.h"
#include "base/work_pool.h"
#include "codec/bitio.h"
#include "codec/block_transform.h"
#include "codec/intra_codec.h"
#include "codec/simd/kernels.h"

namespace avdb {

namespace {

constexpr int kMacroblock = 16;

struct MotionVector {
  int dx = 0;
  int dy = 0;
};

// Clamped sample fetch from a plane (replicating edges), so motion vectors
// may point partially outside the frame.
inline int SampleClamped(const PlaneView& plane, int x, int y) {
  if (x < 0) x = 0;
  if (x >= plane.width()) x = plane.width() - 1;
  if (y < 0) y = 0;
  if (y >= plane.height()) y = plane.height() - 1;
  return plane.at(x, y);
}

// Sum of absolute differences between the macroblock at (bx,by) in `cur`
// and the block displaced by (dx,dy) in `ref`. The common case — a full
// 16×16 block whose displaced twin lies entirely inside the frame — runs
// on the strided SAD kernel; partial/edge blocks fall back to the clamped
// scalar walk. Both paths compute the identical sum.
int64_t MacroblockSad(const PlaneView& cur, const PlaneView& ref, int bx,
                      int by, int dx, int dy) {
  const int width = cur.width();
  const int height = cur.height();
  if (bx + kMacroblock <= width && by + kMacroblock <= height &&
      bx + dx >= 0 && bx + dx + kMacroblock <= width && by + dy >= 0 &&
      by + dy + kMacroblock <= height) {
    return simd::ActiveKernels().sad16xh_u8(cur.row(by) + bx, width,
                                            ref.row(by + dy) + (bx + dx),
                                            width, kMacroblock);
  }
  int64_t sad = 0;
  for (int y = 0; y < kMacroblock; ++y) {
    const int cy = by + y;
    if (cy >= height) break;
    for (int x = 0; x < kMacroblock; ++x) {
      const int cx = bx + x;
      if (cx >= width) break;
      const int a = cur.at(cx, cy);
      const int b = SampleClamped(ref, cx + dx, cy + dy);
      sad += std::abs(a - b);
    }
  }
  return sad;
}

// Three-step search: classic logarithmic motion estimation. Returns the
// best vector within ±range.
MotionVector ThreeStepSearch(const PlaneView& cur, const PlaneView& ref,
                             int bx, int by, int range) {
  MotionVector best;
  int64_t best_sad = MacroblockSad(cur, ref, bx, by, 0, 0);
  int step = range / 2;
  if (step < 1) step = 1;
  while (step >= 1) {
    MotionVector round_best = best;
    int64_t round_sad = best_sad;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const int cx = best.dx + dx * step;
        const int cy = best.dy + dy * step;
        if (std::abs(cx) > range || std::abs(cy) > range) continue;
        const int64_t sad = MacroblockSad(cur, ref, bx, by, cx, cy);
        if (sad < round_sad) {
          round_sad = sad;
          round_best = {cx, cy};
        }
      }
    }
    best = round_best;
    best_sad = round_sad;
    step /= 2;
  }
  return best;
}

// Builds the motion-compensated prediction of a whole plane from `ref`
// given per-macroblock vectors, into caller-owned (pooled) storage of
// width×height bytes. Macroblocks whose displaced source sits fully inside
// the frame copy row-wise; edge macroblocks take the clamped per-sample
// path. Output matches the per-pixel definition exactly.
void PredictPlaneInto(const PlaneView& ref,
                      const std::vector<MotionVector>& mvs, int mb_cols,
                      uint8_t* out) {
  const int width = ref.width();
  const int height = ref.height();
  const int mb_rows = (height + kMacroblock - 1) / kMacroblock;
  for (int my = 0; my < mb_rows; ++my) {
    const int by = my * kMacroblock;
    const int bh = std::min(kMacroblock, height - by);
    for (int mx = 0; mx < mb_cols; ++mx) {
      const int bx = mx * kMacroblock;
      const int bw = std::min(kMacroblock, width - bx);
      const MotionVector& mv = mvs[static_cast<size_t>(my) * mb_cols + mx];
      if (bx + mv.dx >= 0 && bx + mv.dx + bw <= width && by + mv.dy >= 0 &&
          by + mv.dy + bh <= height) {
        for (int y = 0; y < bh; ++y) {
          std::memcpy(out + static_cast<size_t>(by + y) * width + bx,
                      ref.row(by + y + mv.dy) + (bx + mv.dx),
                      static_cast<size_t>(bw));
        }
      } else {
        for (int y = 0; y < bh; ++y) {
          uint8_t* dst = out + static_cast<size_t>(by + y) * width + bx;
          for (int x = 0; x < bw; ++x) {
            dst[x] = static_cast<uint8_t>(
                SampleClamped(ref, bx + x + mv.dx, by + y + mv.dy));
          }
        }
      }
    }
  }
}

struct PFrameData {
  std::vector<MotionVector> mvs;
  // Residual plane bitstream is appended after the vectors in `data`.
};

// Encodes a P-frame: motion vectors from plane 0, shared across planes;
// residuals transform-coded per plane. Returns the encoded bits and the
// reconstructed frame (which becomes the next reference). All plane data
// moves through zero-copy views and pooled scratch; the reference frame's
// reconstruction comes straight out of EncodePlaneWithRecon, so nothing is
// re-encoded or re-parsed.
Buffer EncodePFrame(const VideoFrame& cur, const VideoFrame& recon_ref,
                    int quality, int search_range, VideoFrame* recon_out) {
  const simd::CodecKernels& kernels = simd::ActiveKernels();
  BufferPool& pool = BufferPool::Shared();
  const int width = cur.width();
  const int height = cur.height();
  const size_t pixels = cur.plane_size();
  const int mb_cols = (width + kMacroblock - 1) / kMacroblock;
  const int mb_rows = (height + kMacroblock - 1) / kMacroblock;

  // Plane views are borrowed once per frame — motion search and every
  // per-plane pass below read the frames in place.
  const PlaneView cur_luma = cur.plane(0);
  const PlaneView ref_luma = recon_ref.plane(0);

  std::vector<MotionVector> mvs;
  mvs.reserve(static_cast<size_t>(mb_cols) * mb_rows);
  for (int my = 0; my < mb_rows; ++my) {
    for (int mx = 0; mx < mb_cols; ++mx) {
      mvs.push_back(ThreeStepSearch(cur_luma, ref_luma, mx * kMacroblock,
                                    my * kMacroblock, search_range));
    }
  }

  // Not pooled: the finished buffer escapes into the EncodedVideo result
  // and is owned by the caller, so its storage never comes back to the
  // pool. Leasing it would bleed pool capacity every frame.
  BitWriter writer;
  for (const auto& mv : mvs) {
    writer.WriteSignedVarint(mv.dx);
    writer.WriteSignedVarint(mv.dy);
  }

  *recon_out = VideoFrame(width, height, cur.depth_bits());
  BufferPool::BytesLease pred(&pool, pixels);
  BufferPool::I16Lease residual(&pool, pixels);
  BufferPool::I16Lease recon_res(&pool, pixels);
  for (int p = 0; p < cur.plane_count(); ++p) {
    const PlaneView cur_plane = cur.plane(p);
    const PlaneView ref_plane = recon_ref.plane(p);
    PredictPlaneInto(ref_plane, mvs, mb_cols, pred->data());
    kernels.residual_u8(cur_plane.data(), pred->data(), residual->data(),
                        pixels);
    block_transform::EncodePlaneWithRecon(residual->data(), width, height,
                                          quality, &writer,
                                          recon_res->data());
    const PlaneSpan recon_plane = recon_out->plane_span(p);
    kernels.reconstruct_u8(pred->data(), recon_res->data(),
                           recon_plane.data(), pixels);
  }
  return writer.Finish();
}

// Decodes a P-frame given the previously reconstructed reference.
Result<VideoFrame> DecodePFrame(const Buffer& data,
                                const VideoFrame& recon_ref, int quality) {
  const simd::CodecKernels& kernels = simd::ActiveKernels();
  BufferPool& pool = BufferPool::Shared();
  const int width = recon_ref.width();
  const int height = recon_ref.height();
  const size_t pixels = recon_ref.plane_size();
  const int mb_cols = (width + kMacroblock - 1) / kMacroblock;
  const int mb_rows = (height + kMacroblock - 1) / kMacroblock;

  BitReader reader(data);
  std::vector<MotionVector> mvs(static_cast<size_t>(mb_cols) * mb_rows);
  for (auto& mv : mvs) {
    auto dx = reader.ReadSignedVarint();
    if (!dx.ok()) return dx.status();
    auto dy = reader.ReadSignedVarint();
    if (!dy.ok()) return dy.status();
    mv.dx = static_cast<int>(dx.value());
    mv.dy = static_cast<int>(dy.value());
  }

  VideoFrame out(width, height, recon_ref.depth_bits());
  BufferPool::BytesLease pred(&pool, pixels);
  BufferPool::I16Lease residual(&pool, pixels);
  for (int p = 0; p < recon_ref.plane_count(); ++p) {
    const PlaneView ref_plane = recon_ref.plane(p);
    PredictPlaneInto(ref_plane, mvs, mb_cols, pred->data());
    AVDB_RETURN_IF_ERROR(block_transform::DecodePlaneInto(
        width, height, quality, &reader, residual->data()));
    const PlaneSpan out_plane = out.plane_span(p);
    kernels.reconstruct_u8(pred->data(), residual->data(), out_plane.data(),
                           pixels);
  }
  return out;
}

/// Sequential decoder holding the reconstructed reference frame. Random
/// access re-enters at the nearest preceding I-frame and decodes forward.
class InterDecoderSession final : public VideoDecoderSession {
 public:
  explicit InterDecoderSession(const EncodedVideo& video) : video_(video) {}

  Result<VideoFrame> DecodeFrame(int64_t index) override {
    if (index < 0 || index >= static_cast<int64_t>(video_.frames.size())) {
      return Status::InvalidArgument("frame index out of range");
    }
    if (index != next_index_) {
      // Seek: if moving forward within the current GOP we can decode
      // through; otherwise re-enter at the access point.
      const bool can_roll_forward =
          next_index_ >= 0 && index > next_index_ - 1 && have_ref_;
      auto access = video_.AccessPointBefore(index);
      if (!access.ok()) return access.status();
      if (!can_roll_forward || access.value() >= next_index_) {
        next_index_ = access.value();
        have_ref_ = false;
      }
    }
    VideoFrame frame;
    while (next_index_ <= index) {
      auto decoded = DecodeNext();
      if (!decoded.ok()) return decoded.status();
      frame = std::move(decoded).value();
    }
    return frame;
  }

  int64_t FramesDecodedInternally() const override { return decoded_; }

 private:
  Result<VideoFrame> DecodeNext() {
    const auto& ef = video_.frames[static_cast<size_t>(next_index_)];
    const auto& t = video_.raw_type;
    Result<VideoFrame> frame = Status::Internal("unreachable");
    if (ef.is_intra) {
      frame = IntraCodec::DecodeFrame(ef.data, t.width(), t.height(),
                                      t.depth_bits(), video_.params.quality);
    } else {
      if (!have_ref_) {
        return Status::DataLoss("P-frame without reference at frame " +
                                std::to_string(next_index_));
      }
      frame = DecodePFrame(ef.data, ref_, video_.params.quality);
    }
    if (!frame.ok()) return frame.status();
    ref_ = frame.value();
    have_ref_ = true;
    ++next_index_;
    ++decoded_;
    return frame;
  }

  const EncodedVideo video_;
  VideoFrame ref_;
  bool have_ref_ = false;
  int64_t next_index_ = 0;
  int64_t decoded_ = 0;
};

// Encodes one closed GOP: frames[0] becomes the I-frame (access point),
// the rest are P-chained off the running reconstruction. A pure function
// of the raw frames, so GOPs can encode on any thread in any order and
// still produce the bytes the serial loop would.
Result<std::vector<EncodedFrame>> EncodeGop(
    const std::vector<VideoFrame>& frames, const VideoCodecParams& params) {
  std::vector<EncodedFrame> out;
  out.reserve(frames.size());
  VideoFrame recon;
  for (size_t k = 0; k < frames.size(); ++k) {
    const VideoFrame& frame = frames[k];
    EncodedFrame ef;
    if (k == 0) {
      ef.is_intra = true;
      ef.data = IntraCodec::EncodeFrame(frame, params.quality);
      // Reconstruct the I-frame the way the decoder sees it.
      auto decoded =
          IntraCodec::DecodeFrame(ef.data, frame.width(), frame.height(),
                                  frame.depth_bits(), params.quality);
      if (!decoded.ok()) return decoded.status();
      recon = std::move(decoded).value();
    } else {
      ef.is_intra = false;
      VideoFrame new_recon;
      ef.data = EncodePFrame(frame, recon, params.quality,
                             params.search_range, &new_recon);
      recon = std::move(new_recon);
    }
    out.push_back(std::move(ef));
  }
  return out;
}

}  // namespace

Result<EncodedVideo> InterCodec::Encode(const VideoValue& value,
                                        const VideoCodecParams& params) const {
  if (value.type().IsCompressed()) {
    return Status::InvalidArgument("encoder input must be raw video");
  }
  if (params.gop_size < 1) {
    return Status::InvalidArgument("gop_size must be >= 1");
  }
  if (params.search_range < 1 || params.search_range > 64) {
    return Status::InvalidArgument("search_range must be in [1, 64]");
  }
  EncodedVideo out;
  out.raw_type = value.type();
  out.family = family();
  out.params = params;
  const int64_t n = value.FrameCount();
  out.frames.reserve(static_cast<size_t>(n));

  // GOPs are closed units (every GOP starts with an I-frame, P-frames
  // never reference across the boundary), so they are the parallel grain:
  // intra-GOP frame dependencies stay serial inside EncodeGop, whole GOPs
  // fan out across the work pool. Raw frames are fetched serially
  // (VideoValue::Frame need not be thread-safe), a bounded batch of GOPs
  // at a time.
  const int64_t gop = params.gop_size;
  const int64_t gop_count = (n + gop - 1) / gop;
  const int64_t gop_batch =
      params.concurrency <= 1
          ? 1
          : std::max<int64_t>(static_cast<int64_t>(params.concurrency) * 2, 4);
  for (int64_t g0 = 0; g0 < gop_count; g0 += gop_batch) {
    const int64_t batch = std::min(gop_batch, gop_count - g0);
    std::vector<std::vector<VideoFrame>> raw(static_cast<size_t>(batch));
    for (int64_t g = 0; g < batch; ++g) {
      const int64_t first = (g0 + g) * gop;
      const int64_t count = std::min(gop, n - first);
      raw[static_cast<size_t>(g)].reserve(static_cast<size_t>(count));
      for (int64_t i = 0; i < count; ++i) {
        auto frame = value.Frame(first + i);
        if (!frame.ok()) return frame.status();
        raw[static_cast<size_t>(g)].push_back(std::move(frame).value());
      }
    }
    std::vector<Result<std::vector<EncodedFrame>>> encoded =
        WorkPool::Shared().ParallelMap<Result<std::vector<EncodedFrame>>>(
            params.concurrency, batch, [&](int64_t g) {
              return EncodeGop(raw[static_cast<size_t>(g)], params);
            });
    for (auto& gop_frames : encoded) {
      if (!gop_frames.ok()) return gop_frames.status();
      for (EncodedFrame& ef : gop_frames.value()) {
        out.frames.push_back(std::move(ef));
      }
    }
  }
  return out;
}

Result<std::unique_ptr<VideoDecoderSession>> InterCodec::NewDecoder(
    const EncodedVideo& video) const {
  if (video.family != EncodingFamily::kInter) {
    return Status::InvalidArgument("stream is not inter-coded");
  }
  return std::unique_ptr<VideoDecoderSession>(new InterDecoderSession(video));
}

}  // namespace avdb

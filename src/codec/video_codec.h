#ifndef AVDB_CODEC_VIDEO_CODEC_H_
#define AVDB_CODEC_VIDEO_CODEC_H_

#include <memory>
#include <string>
#include <vector>

#include "base/buffer.h"
#include "base/result.h"
#include "media/frame.h"
#include "media/media_type.h"
#include "media/video_value.h"

namespace avdb {

/// Encoder knobs shared by all video codecs. Defaults give visually decent
/// mid-range compression.
struct VideoCodecParams {
  /// Transform quality 1..100 (JPEG-style; 50 = base table, 100 near
  /// lossless).
  int quality = 75;
  /// I-frame period for the inter codec (1 = all-intra).
  int gop_size = 12;
  /// Motion search range in pixels for the inter codec.
  int search_range = 8;
  /// Resolution/detail layers for the scalable codec (1..3).
  int layer_count = 3;
  /// Codec execution width: how many work-pool lanes encode/decode may use
  /// (1 = fully serial, the default — virtual-time activity semantics are
  /// untouched unless a caller opts in). This is an *execution policy*,
  /// not part of the stream format: it is never serialized, and parallel
  /// output is guaranteed byte-identical to serial output (frames, GOPs
  /// and planes are independent coding units). See DESIGN.md,
  /// "Concurrency model".
  int concurrency = 1;
};

/// One encoded frame. `is_intra` marks random-access points (the decoder
/// can start here without history). For the scalable codec `layers` holds
/// enhancement layers beyond the base in `data`.
struct EncodedFrame {
  bool is_intra = true;
  Buffer data;
  std::vector<Buffer> layers;

  int64_t SizeBytes() const;
};

/// A complete encoded video stream: the stored representation behind the
/// paper's JPEG-VideoValue / MPEG-VideoValue / DVI-VideoValue subclasses.
/// Self-describing and serializable for the media store.
struct EncodedVideo {
  MediaDataType raw_type;  ///< Geometry/rate of the decoded frames.
  EncodingFamily family = EncodingFamily::kIntra;
  VideoCodecParams params;
  std::vector<EncodedFrame> frames;

  int64_t TotalBytes() const;

  /// Index of the latest random-access frame at or before `index`
  /// (InvalidArgument when out of range).
  Result<int64_t> AccessPointBefore(int64_t index) const;

  /// Serializes stream header + all frames.
  Buffer Serialize() const;
  static Result<EncodedVideo> Deserialize(const Buffer& buffer);
};

/// Decode session over one EncodedVideo. Sessions hold reference-frame
/// state so sequential decoding of predictive streams is O(1) per frame;
/// random access re-enters at the nearest preceding access point (the GOP
/// cost that makes inter-coded video expensive to seek — a property the
/// storage and scheduling layers must respect, per §3.1).
class VideoDecoderSession {
 public:
  virtual ~VideoDecoderSession() = default;

  /// Decodes frame `index`. Sequential calls are cheap; backward or far
  /// forward jumps pay GOP re-entry.
  virtual Result<VideoFrame> DecodeFrame(int64_t index) = 0;

  /// Bulk decode of frames [first, first+count), returned in order. The
  /// base implementation is a serial DecodeFrame loop; sessions over
  /// independently coded frames (intra, scalable) override it with
  /// work-pool parallel decode when the stream's params.concurrency > 1.
  virtual Result<std::vector<VideoFrame>> DecodeRange(int64_t first,
                                                      int64_t count);

  /// Frames decoded internally since construction (measures seek overhead).
  virtual int64_t FramesDecodedInternally() const = 0;
};

/// A video compression scheme. Implementations are stateless; per-stream
/// state lives in the session. This is the "video encoder"/"video decoder"
/// activity substrate of Table 1.
class VideoCodec {
 public:
  virtual ~VideoCodec() = default;

  virtual std::string name() const = 0;
  virtual EncodingFamily family() const = 0;

  /// Encodes all frames of `value`.
  virtual Result<EncodedVideo> Encode(const VideoValue& value,
                                      const VideoCodecParams& params) const = 0;

  /// Opens a decode session over a stream this codec produced.
  virtual Result<std::unique_ptr<VideoDecoderSession>> NewDecoder(
      const EncodedVideo& video) const = 0;
};

}  // namespace avdb

#endif  // AVDB_CODEC_VIDEO_CODEC_H_

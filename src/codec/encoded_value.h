#ifndef AVDB_CODEC_ENCODED_VALUE_H_
#define AVDB_CODEC_ENCODED_VALUE_H_

#include <memory>

#include "codec/audio_codec.h"
#include "codec/video_codec.h"
#include "media/audio_value.h"
#include "media/video_value.h"

namespace avdb {

/// A `VideoValue` whose representation is an encoded stream — the concrete
/// analogue of the paper's `JPEG_VideoValue` / `MPEG_VideoValue` /
/// `DVI_VideoValue` subclasses (§4.1). Applications use it through the
/// generic `VideoValue` interface and stay "screened from underlying
/// differences in representation"; `Frame(i)` decodes on demand through a
/// cached decoder session (so sequential access is cheap even for
/// predictive streams).
class EncodedVideoValue final : public VideoValue {
 public:
  /// Wraps an encoded stream; the codec must match the stream family.
  static Result<std::shared_ptr<EncodedVideoValue>> Create(
      std::shared_ptr<const VideoCodec> codec, EncodedVideo video);

  int64_t ElementCount() const override {
    return static_cast<int64_t>(video_.frames.size());
  }
  Result<VideoFrame> Frame(int64_t index) const override;
  /// Bulk decode through the session's DecodeRange — parallel across the
  /// work pool when the stream's params.concurrency > 1.
  Result<std::vector<VideoFrame>> Frames(int64_t first,
                                         int64_t count) const override;
  int64_t StoredBytes() const override { return video_.TotalBytes(); }
  int64_t StoredFrameBytes(int64_t index) const override {
    if (index < 0 || index >= ElementCount()) return 0;
    return video_.frames[static_cast<size_t>(index)].SizeBytes();
  }

  const EncodedVideo& encoded() const { return video_; }
  const VideoCodec& codec() const { return *codec_; }

  /// Frames the internal session has decoded (exposes GOP seek cost).
  int64_t FramesDecodedInternally() const;

  std::string Describe() const override;

 private:
  EncodedVideoValue(MediaDataType decoded_type,
                    std::shared_ptr<const VideoCodec> codec,
                    EncodedVideo video)
      : VideoValue(std::move(decoded_type)),
        codec_(std::move(codec)),
        video_(std::move(video)) {}

  std::shared_ptr<const VideoCodec> codec_;
  EncodedVideo video_;
  mutable std::unique_ptr<VideoDecoderSession> session_;
};

/// An `AudioValue` stored as an encoded stream; decodes chunks on demand.
class EncodedAudioValue final : public AudioValue {
 public:
  static Result<std::shared_ptr<EncodedAudioValue>> Create(
      std::shared_ptr<const AudioCodec> codec, EncodedAudio audio);

  int64_t ElementCount() const override { return audio_.total_frames; }
  Result<AudioBlock> Samples(int64_t first, int64_t count) const override;
  int64_t StoredBytes() const override { return audio_.TotalBytes(); }

  const EncodedAudio& encoded() const { return audio_; }

  std::string Describe() const override;

 private:
  EncodedAudioValue(MediaDataType decoded_type,
                    std::shared_ptr<const AudioCodec> codec,
                    EncodedAudio audio)
      : AudioValue(std::move(decoded_type)),
        codec_(std::move(codec)),
        audio_(std::move(audio)) {}

  std::shared_ptr<const AudioCodec> codec_;
  EncodedAudio audio_;
};

}  // namespace avdb

#endif  // AVDB_CODEC_ENCODED_VALUE_H_

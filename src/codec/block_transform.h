#ifndef AVDB_CODEC_BLOCK_TRANSFORM_H_
#define AVDB_CODEC_BLOCK_TRANSFORM_H_

#include <array>
#include <cstdint>
#include <vector>

#include "codec/bitio.h"
#include "codec/simd/kernels.h"

namespace avdb {

/// 8×8 transform-coding kernel shared by the intra, inter (residual) and
/// scalable codecs: DCT-II, quality-scaled quantization, zigzag scan and
/// run-length entropy coding. Works on int16 samples so it can code both
/// pixel blocks (0..255) and prediction residuals (-255..255).
///
/// The transform and quantizer run on the runtime-dispatched integer
/// kernels in codec/simd — fixed-point DCT, reciprocal-multiply
/// quantization — so every dispatch level produces byte-identical streams.
namespace block_transform {

inline constexpr int kBlockSize = 8;
inline constexpr int kBlockArea = kBlockSize * kBlockSize;

using Block = std::array<int16_t, kBlockArea>;
using CoeffBlock = std::array<int32_t, kBlockArea>;

/// Forward 8×8 DCT-II (fixed-point integer internals; see simd/kernels.h).
CoeffBlock ForwardDct(const Block& spatial);

/// Inverse 8×8 DCT-III (saturating int16 output).
Block InverseDct(const CoeffBlock& coeffs);

/// The precomputed step/reciprocal table for `quality` (clamped to
/// [1,100]); steps equal QuantStep(i, quality). Exposed for the kernel
/// identity tests and benchmarks.
const simd::QuantTable& QualityQuantTable(int quality);

/// Quantization step for coefficient position `index` (zigzag order) at
/// `quality` in [1,100]; JPEG-style luminance table scaled so quality 50 is
/// the base table, 100 is near-lossless.
int QuantStep(int index, int quality);

/// Quantizes in place (divide + round toward nearest).
void Quantize(CoeffBlock* coeffs, int quality);

/// Dequantizes in place (multiply).
void Dequantize(CoeffBlock* coeffs, int quality);

/// Entropy-codes a quantized block: zigzag scan, DC delta against
/// `*dc_predictor` (updated), then (run, level) pairs with an end-of-block
/// marker.
void EncodeBlock(const CoeffBlock& coeffs, int32_t* dc_predictor,
                 BitWriter* out);

/// Reverses EncodeBlock.
Result<CoeffBlock> DecodeBlock(int32_t* dc_predictor, BitReader* in);

/// Splits a width×height int16 plane into 8×8 blocks (edge blocks padded by
/// replicating the last row/column), transforms, quantizes and entropy-codes
/// the whole plane. `plane` must hold width*height samples.
void EncodePlane(const int16_t* plane, int width, int height, int quality,
                 BitWriter* out);

/// Convenience overload over a vector (size-checked).
void EncodePlane(const std::vector<int16_t>& plane, int width, int height,
                 int quality, BitWriter* out);

/// EncodePlane that additionally writes the decoder-exact reconstruction of
/// the plane into `recon` (width*height samples, caller-owned, may not alias
/// `plane`). Because the transform/quant kernels are pure integer code,
/// `recon` is bit-for-bit what DecodePlaneInto would produce from the bits
/// just written — predictive coders use it to maintain their reference
/// without re-encoding or re-parsing the stream.
void EncodePlaneWithRecon(const int16_t* plane, int width, int height,
                          int quality, BitWriter* out, int16_t* recon);

/// Reverses EncodePlane into caller-owned storage of width*height samples —
/// the zero-allocation decode path.
[[nodiscard]] Status DecodePlaneInto(int width, int height, int quality,
                                     BitReader* in, int16_t* out);

/// Reverses EncodePlane; output plane is width×height.
Result<std::vector<int16_t>> DecodePlane(int width, int height, int quality,
                                         BitReader* in);

}  // namespace block_transform
}  // namespace avdb

#endif  // AVDB_CODEC_BLOCK_TRANSFORM_H_

#ifndef AVDB_CODEC_BLOCK_TRANSFORM_H_
#define AVDB_CODEC_BLOCK_TRANSFORM_H_

#include <array>
#include <cstdint>
#include <vector>

#include "codec/bitio.h"

namespace avdb {

/// 8×8 transform-coding kernel shared by the intra, inter (residual) and
/// scalable codecs: DCT-II, quality-scaled quantization, zigzag scan and
/// run-length entropy coding. Works on int16 samples so it can code both
/// pixel blocks (0..255) and prediction residuals (-255..255).
namespace block_transform {

inline constexpr int kBlockSize = 8;
inline constexpr int kBlockArea = kBlockSize * kBlockSize;

using Block = std::array<int16_t, kBlockArea>;
using CoeffBlock = std::array<int32_t, kBlockArea>;

/// Forward 8×8 DCT-II (separable, float internals, rounded to int).
CoeffBlock ForwardDct(const Block& spatial);

/// Inverse 8×8 DCT-III.
Block InverseDct(const CoeffBlock& coeffs);

/// Quantization step for coefficient position `index` (zigzag order) at
/// `quality` in [1,100]; JPEG-style luminance table scaled so quality 50 is
/// the base table, 100 is near-lossless.
int QuantStep(int index, int quality);

/// Quantizes in place (divide + round toward nearest).
void Quantize(CoeffBlock* coeffs, int quality);

/// Dequantizes in place (multiply).
void Dequantize(CoeffBlock* coeffs, int quality);

/// Entropy-codes a quantized block: zigzag scan, DC delta against
/// `*dc_predictor` (updated), then (run, level) pairs with an end-of-block
/// marker.
void EncodeBlock(const CoeffBlock& coeffs, int32_t* dc_predictor,
                 BitWriter* out);

/// Reverses EncodeBlock.
Result<CoeffBlock> DecodeBlock(int32_t* dc_predictor, BitReader* in);

/// Splits a width×height int16 plane into 8×8 blocks (edge blocks padded by
/// replicating the last row/column), transforms, quantizes and entropy-codes
/// the whole plane.
void EncodePlane(const std::vector<int16_t>& plane, int width, int height,
                 int quality, BitWriter* out);

/// Reverses EncodePlane; output plane is width×height.
Result<std::vector<int16_t>> DecodePlane(int width, int height, int quality,
                                         BitReader* in);

}  // namespace block_transform
}  // namespace avdb

#endif  // AVDB_CODEC_BLOCK_TRANSFORM_H_

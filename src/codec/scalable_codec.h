#ifndef AVDB_CODEC_SCALABLE_CODEC_H_
#define AVDB_CODEC_SCALABLE_CODEC_H_

#include "codec/video_codec.h"

namespace avdb {

/// Layered intra codec implementing §4.1's *scalable video* ([14] in the
/// paper): "a video value encoded at one quality can be viewed at a lower
/// quality by ignoring some of the encoded data."
///
/// Each frame carries up to three spatial layers:
///   layer 0 (base)   — 1/4-resolution intra-coded image,
///   layer 1          — 1/2-resolution residual against upsampled layer 0,
///   layer 2          — full-resolution residual against upsampled layer 1.
/// Decoding with fewer layers reads proportionally fewer bytes and yields a
/// softer full-size picture; the quality-factor machinery in `src/db/`
/// picks the cheapest layer set satisfying the requested VideoQuality.
class ScalableCodec final : public VideoCodec {
 public:
  static constexpr int kMaxLayers = 3;

  std::string name() const override { return "avdb-scalable"; }
  EncodingFamily family() const override { return EncodingFamily::kScalable; }

  Result<EncodedVideo> Encode(const VideoValue& value,
                              const VideoCodecParams& params) const override;

  /// Full-quality decoder (all stored layers).
  Result<std::unique_ptr<VideoDecoderSession>> NewDecoder(
      const EncodedVideo& video) const override;

  /// Decoder that reads only the first `layers` layers (1..stored count).
  /// The returned frames are always full geometry; fewer layers = less
  /// detail and fewer bytes touched.
  Result<std::unique_ptr<VideoDecoderSession>> NewDecoderWithLayers(
      const EncodedVideo& video, int layers) const;

  /// Bytes that must be read per frame when decoding `layers` layers.
  static Result<int64_t> BytesPerFrameAtLayers(const EncodedVideo& video,
                                               int layers);

  /// Smallest layer count whose decoded detail resolution is >= the
  /// requested width/height (1 layer = 1/4 res, 2 = 1/2, 3 = full).
  static int LayersForResolution(const MediaDataType& stored, int req_width,
                                 int req_height);
};

/// A `VideoValue` view over a scalable stream restricted to its first
/// `layers` layers — what the database binds to a source when a client's
/// quality factor asks for less than the stored quality (§4.1: viewing "at
/// a lower quality by ignoring some of the encoded data"). StoredBytes
/// reports only the bytes the restricted decode touches, so placement and
/// admission cost the reduced stream, not the full one.
class ScalableVideoView final : public VideoValue {
 public:
  /// Wraps `video` (must be scalable) at `layers` (1..stored count).
  static Result<std::shared_ptr<ScalableVideoView>> Create(
      EncodedVideo video, int layers);

  int64_t ElementCount() const override {
    return static_cast<int64_t>(video_.frames.size());
  }
  Result<VideoFrame> Frame(int64_t index) const override;
  /// Bulk decode via the restricted session's DecodeRange (parallel when
  /// the stream's params.concurrency > 1).
  Result<std::vector<VideoFrame>> Frames(int64_t first,
                                         int64_t count) const override;
  int64_t StoredBytes() const override;
  int64_t StoredFrameBytes(int64_t index) const override;

  int layers() const { return layers_; }
  const EncodedVideo& encoded() const { return video_; }

  std::string Describe() const override;

 private:
  ScalableVideoView(MediaDataType type, EncodedVideo video, int layers)
      : VideoValue(std::move(type)),
        video_(std::move(video)),
        layers_(layers) {}

  EncodedVideo video_;
  int layers_;
  mutable std::unique_ptr<VideoDecoderSession> session_;
};

}  // namespace avdb

#endif  // AVDB_CODEC_SCALABLE_CODEC_H_

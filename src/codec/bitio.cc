#include "codec/bitio.h"

#include "base/logging.h"

namespace avdb {

void BitWriter::WriteBits(uint64_t bits, int count) {
  AVDB_CHECK(count >= 0 && count <= 57) << "bit count out of range";
  if (count < 64) bits &= (uint64_t{1} << count) - 1;
  acc_ = (acc_ << count) | bits;
  acc_bits_ += count;
  total_bits_ += count;
  while (acc_bits_ >= 8) {
    acc_bits_ -= 8;
    out_.AppendU8(static_cast<uint8_t>((acc_ >> acc_bits_) & 0xFF));
  }
}

void BitWriter::WriteVarint(uint64_t v) {
  while (v >= 0x80) {
    WriteBits(0x80 | (v & 0x7F), 8);
    v >>= 7;
  }
  WriteBits(v, 8);
}

void BitWriter::WriteSignedVarint(int64_t v) {
  const uint64_t zz =
      (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  WriteVarint(zz);
}

Buffer BitWriter::Finish() {
  if (acc_bits_ > 0) {
    out_.AppendU8(static_cast<uint8_t>((acc_ << (8 - acc_bits_)) & 0xFF));
    acc_bits_ = 0;
    acc_ = 0;
  }
  return std::move(out_);
}

Result<uint64_t> BitReader::ReadBits(int count) {
  AVDB_CHECK(count >= 0 && count <= 57) << "bit count out of range";
  if (pos_bits_ + count > size_bits_) {
    return Status::DataLoss("bitstream underrun");
  }
  uint64_t v = 0;
  int need = count;
  while (need > 0) {
    const int64_t byte_index = pos_bits_ >> 3;
    const int bit_offset = static_cast<int>(pos_bits_ & 7);
    const int avail = 8 - bit_offset;
    const int take = need < avail ? need : avail;
    const uint8_t byte = data_[byte_index];
    const uint8_t chunk =
        static_cast<uint8_t>(byte >> (avail - take)) &
        static_cast<uint8_t>((1u << take) - 1);
    v = (v << take) | chunk;
    pos_bits_ += take;
    need -= take;
  }
  return v;
}

Result<uint64_t> BitReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    auto byte = ReadBits(8);
    if (!byte.ok()) return byte.status();
    v |= (byte.value() & 0x7F) << shift;
    if ((byte.value() & 0x80) == 0) return v;
    shift += 7;
  }
  return Status::DataLoss("varint too long");
}

Result<int64_t> BitReader::ReadSignedVarint() {
  auto zz = ReadVarint();
  if (!zz.ok()) return zz.status();
  const uint64_t v = zz.value();
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace avdb

// NEON implementations of the codec kernels for AArch64, where Advanced
// SIMD is architectural. Exact-match strategy: every multiply-accumulate
// uses int16×int16→int32 (vmlal), every rounding shift uses VRSHR (which
// computes (v + 2^(s-1)) >> s, the shared rounding rule), and every
// narrowing uses saturating VQMOVN — the same integer arithmetic as the
// scalar reference.
#if defined(AVDB_SIMD_NEON)

#include <arm_neon.h>

#include <cstdint>

#include "codec/simd/kernels.h"

namespace avdb {
namespace simd {

namespace {

/// One DCT pass: out16[i][j] = sat16((Σ_k B(i,k)·in16[k][j] + 2^(S-1)) >> S)
/// where the basis element is looked up by the caller-provided indexer.
template <int S, typename BasisAt>
inline void DctPass(const int16x8_t in[kBlockSize], int16x8_t out[kBlockSize],
                    BasisAt basis_at) {
  for (int i = 0; i < kBlockSize; ++i) {
    int32x4_t acc_lo = vdupq_n_s32(0);
    int32x4_t acc_hi = vdupq_n_s32(0);
    for (int k = 0; k < kBlockSize; ++k) {
      const int16x4_t b = vdup_n_s16(basis_at(i, k));
      acc_lo = vmlal_s16(acc_lo, vget_low_s16(in[k]), b);
      acc_hi = vmlal_s16(acc_hi, vget_high_s16(in[k]), b);
    }
    out[i] = vcombine_s16(vqmovn_s32(vrshrq_n_s32(acc_lo, S)),
                          vqmovn_s32(vrshrq_n_s32(acc_hi, S)));
  }
}

void Fdct8x8Neon(const int16_t in[kBlockArea], int32_t out[kBlockArea]) {
  const DctTables& t = GetDctTables();
  // Pass 1 over rows needs columns of `in` as vectors; transpose via the
  // pass itself by treating rows as the vectorized axis:
  // tmp[u] (vector over y) = Σ_x B[u][x] · col_x where col_x is vector
  // over y — load columns by strided gathers is slow, so instead run the
  // pass on the transposed orientation: vectors are rows over x? The
  // simplest exact formulation: vector over u is produced per y in scalar
  // order; here we vectorize over y by first loading rows and transposing.
  int16x8_t rows[kBlockSize];
  for (int y = 0; y < kBlockSize; ++y) rows[y] = vld1q_s16(in + y * kBlockSize);
  // Transpose 8×8 i16 so cols[x] is the vector over y.
  int16x8_t cols[kBlockSize];
  {
    int16x8x2_t a0 = vtrnq_s16(rows[0], rows[1]);
    int16x8x2_t a1 = vtrnq_s16(rows[2], rows[3]);
    int16x8x2_t a2 = vtrnq_s16(rows[4], rows[5]);
    int16x8x2_t a3 = vtrnq_s16(rows[6], rows[7]);
    int32x4x2_t b0 = vtrnq_s32(vreinterpretq_s32_s16(a0.val[0]),
                               vreinterpretq_s32_s16(a1.val[0]));
    int32x4x2_t b1 = vtrnq_s32(vreinterpretq_s32_s16(a0.val[1]),
                               vreinterpretq_s32_s16(a1.val[1]));
    int32x4x2_t b2 = vtrnq_s32(vreinterpretq_s32_s16(a2.val[0]),
                               vreinterpretq_s32_s16(a3.val[0]));
    int32x4x2_t b3 = vtrnq_s32(vreinterpretq_s32_s16(a2.val[1]),
                               vreinterpretq_s32_s16(a3.val[1]));
    cols[0] = vreinterpretq_s16_s32(
        vcombine_s32(vget_low_s32(b0.val[0]), vget_low_s32(b2.val[0])));
    cols[1] = vreinterpretq_s16_s32(
        vcombine_s32(vget_low_s32(b1.val[0]), vget_low_s32(b3.val[0])));
    cols[2] = vreinterpretq_s16_s32(
        vcombine_s32(vget_low_s32(b0.val[1]), vget_low_s32(b2.val[1])));
    cols[3] = vreinterpretq_s16_s32(
        vcombine_s32(vget_low_s32(b1.val[1]), vget_low_s32(b3.val[1])));
    cols[4] = vreinterpretq_s16_s32(
        vcombine_s32(vget_high_s32(b0.val[0]), vget_high_s32(b2.val[0])));
    cols[5] = vreinterpretq_s16_s32(
        vcombine_s32(vget_high_s32(b1.val[0]), vget_high_s32(b3.val[0])));
    cols[6] = vreinterpretq_s16_s32(
        vcombine_s32(vget_high_s32(b0.val[1]), vget_high_s32(b2.val[1])));
    cols[7] = vreinterpretq_s16_s32(
        vcombine_s32(vget_high_s32(b1.val[1]), vget_high_s32(b3.val[1])));
  }
  // Pass 1: tmpT[u] (vector over y) = sat16(rshift(Σ_x B[u][x]·cols[x], 10)).
  int16x8_t tmp_t[kBlockSize];
  DctPass<kFdctPass1Shift>(cols, tmp_t,
                           [&t](int u, int x) { return t.basis[u][x]; });
  // Pass 2: outT[v] (vector over u)? out[v][u] = Σ_y B[v][y]·tmp[y][u];
  // tmp_t[u] is the vector over y, so compute per (v,u) dot products with
  // the vector axis over u: transpose tmp_t back so tmp_rows[y] is the
  // vector over u.
  int16x8_t tmp_rows[kBlockSize];
  {
    int16x8x2_t a0 = vtrnq_s16(tmp_t[0], tmp_t[1]);
    int16x8x2_t a1 = vtrnq_s16(tmp_t[2], tmp_t[3]);
    int16x8x2_t a2 = vtrnq_s16(tmp_t[4], tmp_t[5]);
    int16x8x2_t a3 = vtrnq_s16(tmp_t[6], tmp_t[7]);
    int32x4x2_t b0 = vtrnq_s32(vreinterpretq_s32_s16(a0.val[0]),
                               vreinterpretq_s32_s16(a1.val[0]));
    int32x4x2_t b1 = vtrnq_s32(vreinterpretq_s32_s16(a0.val[1]),
                               vreinterpretq_s32_s16(a1.val[1]));
    int32x4x2_t b2 = vtrnq_s32(vreinterpretq_s32_s16(a2.val[0]),
                               vreinterpretq_s32_s16(a3.val[0]));
    int32x4x2_t b3 = vtrnq_s32(vreinterpretq_s32_s16(a2.val[1]),
                               vreinterpretq_s32_s16(a3.val[1]));
    tmp_rows[0] = vreinterpretq_s16_s32(
        vcombine_s32(vget_low_s32(b0.val[0]), vget_low_s32(b2.val[0])));
    tmp_rows[1] = vreinterpretq_s16_s32(
        vcombine_s32(vget_low_s32(b1.val[0]), vget_low_s32(b3.val[0])));
    tmp_rows[2] = vreinterpretq_s16_s32(
        vcombine_s32(vget_low_s32(b0.val[1]), vget_low_s32(b2.val[1])));
    tmp_rows[3] = vreinterpretq_s16_s32(
        vcombine_s32(vget_low_s32(b1.val[1]), vget_low_s32(b3.val[1])));
    tmp_rows[4] = vreinterpretq_s16_s32(
        vcombine_s32(vget_high_s32(b0.val[0]), vget_high_s32(b2.val[0])));
    tmp_rows[5] = vreinterpretq_s16_s32(
        vcombine_s32(vget_high_s32(b1.val[0]), vget_high_s32(b3.val[0])));
    tmp_rows[6] = vreinterpretq_s16_s32(
        vcombine_s32(vget_high_s32(b0.val[1]), vget_high_s32(b2.val[1])));
    tmp_rows[7] = vreinterpretq_s16_s32(
        vcombine_s32(vget_high_s32(b1.val[1]), vget_high_s32(b3.val[1])));
  }
  // out[v] (vector over u) = rshift(Σ_y B[v][y]·tmp_rows[y], 16), no sat —
  // keep full int32.
  for (int v = 0; v < kBlockSize; ++v) {
    int32x4_t acc_lo = vdupq_n_s32(0);
    int32x4_t acc_hi = vdupq_n_s32(0);
    for (int y = 0; y < kBlockSize; ++y) {
      const int16x4_t b = vdup_n_s16(t.basis[v][y]);
      acc_lo = vmlal_s16(acc_lo, vget_low_s16(tmp_rows[y]), b);
      acc_hi = vmlal_s16(acc_hi, vget_high_s16(tmp_rows[y]), b);
    }
    vst1q_s32(out + v * kBlockSize, vrshrq_n_s32(acc_lo, kFdctPass2Shift));
    vst1q_s32(out + v * kBlockSize + 4, vrshrq_n_s32(acc_hi, kFdctPass2Shift));
  }
}

void Idct8x8Neon(const int32_t in[kBlockArea], int16_t out[kBlockArea]) {
  const DctTables& t = GetDctTables();
  int16x8_t rows[kBlockSize];  // saturated coeff rows, vector over u
  for (int v = 0; v < kBlockSize; ++v) {
    rows[v] = vcombine_s16(vqmovn_s32(vld1q_s32(in + v * kBlockSize)),
                           vqmovn_s32(vld1q_s32(in + v * kBlockSize + 4)));
  }
  // Pass 1: tmp[y] (vector over u) = sat16(rshift(Σ_v B[v][y]·rows[v], 11)).
  int16x8_t tmp[kBlockSize];
  DctPass<kIdctPass1Shift>(rows, tmp,
                           [&t](int y, int v) { return t.basis[v][y]; });
  // Pass 2: out[y][x] = sat16(rshift(Σ_u B[u][x]·tmp[y][u], 15)). The
  // vector axis must be x, so transpose-free: for each y, accumulate
  // basis rows (vector over x) scaled by scalar tmp[y][u].
  int16_t tmp_s[kBlockArea];
  for (int y = 0; y < kBlockSize; ++y) vst1q_s16(tmp_s + y * kBlockSize, tmp[y]);
  for (int y = 0; y < kBlockSize; ++y) {
    int32x4_t acc_lo = vdupq_n_s32(0);
    int32x4_t acc_hi = vdupq_n_s32(0);
    for (int u = 0; u < kBlockSize; ++u) {
      const int16x8_t brow = vld1q_s16(t.basis[u]);
      const int16x4_t s = vdup_n_s16(tmp_s[y * kBlockSize + u]);
      acc_lo = vmlal_s16(acc_lo, vget_low_s16(brow), s);
      acc_hi = vmlal_s16(acc_hi, vget_high_s16(brow), s);
    }
    vst1q_s16(out + y * kBlockSize,
              vcombine_s16(vqmovn_s32(vrshrq_n_s32(acc_lo, kIdctPass2Shift)),
                           vqmovn_s32(vrshrq_n_s32(acc_hi, kIdctPass2Shift))));
  }
}

void QuantizeNeon(int32_t coeffs[kBlockArea], const QuantTable& qt) {
  for (int i = 0; i < kBlockArea; i += 4) {
    const int32x4_t v = vld1q_s32(coeffs + i);
    const uint32x4_t n = vaddq_u32(
        vreinterpretq_u32_s32(vabsq_s32(v)),
        vreinterpretq_u32_s32(vld1q_s32(qt.half + i)));
    const uint32x4_t recip = vld1q_u32(qt.recip + i);
    // (n · recip) >> 32 per lane.
    const uint64x2_t p_lo = vmull_u32(vget_low_u32(n), vget_low_u32(recip));
    const uint64x2_t p_hi = vmull_u32(vget_high_u32(n), vget_high_u32(recip));
    uint32x4_t q = vcombine_u32(vshrn_n_u64(p_lo, 32), vshrn_n_u64(p_hi, 32));
    const uint32x4_t is_one =
        vceqq_s32(vld1q_s32(qt.step + i), vdupq_n_s32(1));
    q = vbslq_u32(is_one, n, q);
    const int32x4_t qs = vreinterpretq_s32_u32(q);
    const uint32x4_t neg = vcltq_s32(v, vdupq_n_s32(0));
    vst1q_s32(coeffs + i, vbslq_s32(neg, vnegq_s32(qs), qs));
  }
}

void DequantizeNeon(int32_t coeffs[kBlockArea], const QuantTable& qt) {
  const int32x4_t hi = vdupq_n_s32(kDequantClamp);
  const int32x4_t lo = vdupq_n_s32(-kDequantClamp);
  for (int i = 0; i < kBlockArea; i += 4) {
    const int32x4_t v = vmaxq_s32(lo, vminq_s32(hi, vld1q_s32(coeffs + i)));
    vst1q_s32(coeffs + i, vmulq_s32(v, vld1q_s32(qt.step + i)));
  }
}

void U8ToI16CenterNeon(const uint8_t* src, int16_t* dst, size_t n) {
  const int16x8_t c128 = vdupq_n_s16(128);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vld1q_u8(src + i);
    vst1q_s16(dst + i,
              vsubq_s16(vreinterpretq_s16_u16(vmovl_u8(vget_low_u8(v))),
                        c128));
    vst1q_s16(dst + i + 8,
              vsubq_s16(vreinterpretq_s16_u16(vmovl_u8(vget_high_u8(v))),
                        c128));
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<int16_t>(static_cast<int16_t>(src[i]) - 128);
  }
}

void I16CenterToU8Neon(const int16_t* src, uint8_t* dst, size_t n) {
  const int16x8_t c128 = vdupq_n_s16(128);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const int16x8_t lo = vqaddq_s16(vld1q_s16(src + i), c128);
    const int16x8_t hi = vqaddq_s16(vld1q_s16(src + i + 8), c128);
    vst1q_u8(dst + i, vcombine_u8(vqmovun_s16(lo), vqmovun_s16(hi)));
  }
  for (; i < n; ++i) {
    const int32_t v = static_cast<int32_t>(src[i]) + 128;
    dst[i] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
  }
}

void ResidualU8Neon(const uint8_t* cur, const uint8_t* pred, int16_t* out,
                    size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const uint16x8_t c = vmovl_u8(vld1_u8(cur + i));
    const uint16x8_t p = vmovl_u8(vld1_u8(pred + i));
    vst1q_s16(out + i, vsubq_s16(vreinterpretq_s16_u16(c),
                                 vreinterpretq_s16_u16(p)));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<int16_t>(static_cast<int32_t>(cur[i]) -
                                  static_cast<int32_t>(pred[i]));
  }
}

void ReconstructU8Neon(const uint8_t* pred, const int16_t* res, uint8_t* out,
                       size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const int16x8_t p =
        vreinterpretq_s16_u16(vmovl_u8(vld1_u8(pred + i)));
    const int16x8_t sum = vqaddq_s16(p, vld1q_s16(res + i));
    vst1_u8(out + i, vqmovun_s16(sum));
  }
  for (; i < n; ++i) {
    const int32_t v = static_cast<int32_t>(pred[i]) + res[i];
    out[i] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
  }
}

void SubI16Neon(const int16_t* a, const int16_t* b, int16_t* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vst1q_s16(out + i, vsubq_s16(vld1q_s16(a + i), vld1q_s16(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<int16_t>(static_cast<int32_t>(a[i]) - b[i]);
  }
}

void AddI16Neon(const int16_t* a, const int16_t* b, int16_t* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vst1q_s16(out + i, vaddq_s16(vld1q_s16(a + i), vld1q_s16(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<int16_t>(static_cast<int32_t>(a[i]) + b[i]);
  }
}

uint32_t SadU8Neon(const uint8_t* a, const uint8_t* b, size_t n) {
  uint32x4_t acc = vdupq_n_u32(0);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t d = vabdq_u8(vld1q_u8(a + i), vld1q_u8(b + i));
    acc = vpadalq_u16(acc, vpaddlq_u8(d));
  }
  uint32_t sum = vaddvq_u32(acc);
  for (; i < n; ++i) {
    const int32_t d = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    sum += static_cast<uint32_t>(d < 0 ? -d : d);
  }
  return sum;
}

uint32_t Sad16xHU8Neon(const uint8_t* a, ptrdiff_t a_stride, const uint8_t* b,
                       ptrdiff_t b_stride, int rows) {
  uint32x4_t acc = vdupq_n_u32(0);
  for (int r = 0; r < rows; ++r) {
    const uint8x16_t d =
        vabdq_u8(vld1q_u8(a + r * a_stride), vld1q_u8(b + r * b_stride));
    acc = vpadalq_u16(acc, vpaddlq_u8(d));
  }
  return vaddvq_u32(acc);
}

}  // namespace

const CodecKernels& NeonKernels() {
  static const CodecKernels kernels = [] {
    CodecKernels k;
    k.level = KernelLevel::kNeon;
    k.fdct8x8 = Fdct8x8Neon;
    k.idct8x8 = Idct8x8Neon;
    k.quantize = QuantizeNeon;
    k.dequantize = DequantizeNeon;
    k.u8_to_i16_center = U8ToI16CenterNeon;
    k.i16_center_to_u8 = I16CenterToU8Neon;
    k.residual_u8 = ResidualU8Neon;
    k.reconstruct_u8 = ReconstructU8Neon;
    k.sub_i16 = SubI16Neon;
    k.add_i16 = AddI16Neon;
    k.sad_u8 = SadU8Neon;
    k.sad16xh_u8 = Sad16xHU8Neon;
    return k;
  }();
  return kernels;
}

}  // namespace simd
}  // namespace avdb

#endif  // AVDB_SIMD_NEON

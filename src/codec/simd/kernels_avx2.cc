// AVX2 implementations of the codec kernels. This TU is compiled with
// -mavx2 (see src/codec/CMakeLists.txt) and is only entered after runtime
// CPU detection; it deliberately includes almost nothing so AVX2 codegen
// cannot leak into symbols shared with other TUs.
#if defined(AVDB_SIMD_X86)

#include <immintrin.h>

#include <cstdint>

#include "codec/simd/kernels.h"

namespace avdb {
namespace simd {

namespace {

inline __m128i Load128(const void* p) {
  return _mm_loadu_si128(static_cast<const __m128i*>(p));
}
inline __m256i Load256(const void* p) {
  return _mm256_loadu_si256(static_cast<const __m256i*>(p));
}
inline void Store128(void* p, __m128i v) {
  _mm_storeu_si128(static_cast<__m128i*>(p), v);
}
inline void Store256(void* p, __m256i v) {
  _mm256_storeu_si256(static_cast<__m256i*>(p), v);
}

template <int S>
inline __m256i RoundShift32(__m256i v) {
  return _mm256_srai_epi32(_mm256_add_epi32(v, _mm256_set1_epi32(1 << (S - 1))),
                           S);
}

/// Narrow 8×i32 (one 256-bit register) to 8×i16 with saturation,
/// preserving lane order.
inline __m128i Packs256To128(__m256i v) {
  return _mm_packs_epi32(_mm256_castsi256_si128(v),
                         _mm256_extracti128_si256(v, 1));
}

/// Broadcast 16-bit pair k (i32 lane k) of an 8×i16 vector to all 8 i32
/// lanes of a 256-bit register.
template <int K>
inline __m256i BroadcastPair(__m128i row) {
  return _mm256_broadcastd_epi32(
      _mm_shuffle_epi32(row, _MM_SHUFFLE(K, K, K, K)));
}

void Fdct8x8Avx2(const int16_t in[kBlockArea], int32_t out[kBlockArea]) {
  const DctTables& t = GetDctTables();
  // Pass 1 (rows): tmp[y][u] = sat16((Σ_x B[u][x]·in[y][x] + 2^9) >> 10).
  __m128i tmp[kBlockSize];  // tmp[y] = 8×i16 over u
  const __m256i p0 = Load256(t.fwd_pairs[0]);
  const __m256i p1 = Load256(t.fwd_pairs[1]);
  const __m256i p2 = Load256(t.fwd_pairs[2]);
  const __m256i p3 = Load256(t.fwd_pairs[3]);
  for (int y = 0; y < kBlockSize; ++y) {
    const __m128i row = Load128(in + y * kBlockSize);
    __m256i acc = _mm256_madd_epi16(BroadcastPair<0>(row), p0);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(BroadcastPair<1>(row), p1));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(BroadcastPair<2>(row), p2));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(BroadcastPair<3>(row), p3));
    tmp[y] = Packs256To128(RoundShift32<kFdctPass1Shift>(acc));
  }
  // Pass 2 (columns): out[v][u] = (Σ_y B[v][y]·tmp[y][u] + 2^15) >> 16.
  __m256i pairs[4];  // (tmp[2m][u], tmp[2m+1][u]) for u0..7
  for (int m = 0; m < 4; ++m) {
    pairs[m] = _mm256_set_m128i(
        _mm_unpackhi_epi16(tmp[2 * m], tmp[2 * m + 1]),
        _mm_unpacklo_epi16(tmp[2 * m], tmp[2 * m + 1]));
  }
  for (int v = 0; v < kBlockSize; ++v) {
    __m256i acc = _mm256_madd_epi16(pairs[0],
                                    _mm256_set1_epi32(t.fwd_bcast[0][v]));
    for (int m = 1; m < 4; ++m) {
      acc = _mm256_add_epi32(
          acc,
          _mm256_madd_epi16(pairs[m], _mm256_set1_epi32(t.fwd_bcast[m][v])));
    }
    Store256(out + v * kBlockSize, RoundShift32<kFdctPass2Shift>(acc));
  }
}

void Idct8x8Avx2(const int32_t in[kBlockArea], int16_t out[kBlockArea]) {
  const DctTables& t = GetDctTables();
  __m128i rows[kBlockSize];  // saturated coeff rows, 8×i16 over u
  for (int v = 0; v < kBlockSize; ++v) {
    rows[v] = Packs256To128(Load256(in + v * kBlockSize));
  }
  __m256i pairs[4];  // (c[2m][u], c[2m+1][u]) for u0..7
  for (int m = 0; m < 4; ++m) {
    pairs[m] = _mm256_set_m128i(
        _mm_unpackhi_epi16(rows[2 * m], rows[2 * m + 1]),
        _mm_unpacklo_epi16(rows[2 * m], rows[2 * m + 1]));
  }
  // Pass 1 (columns): tmp[y][u] = sat16((Σ_v B[v][y]·c[v][u] + 2^10) >> 11).
  __m128i tmp[kBlockSize];
  for (int y = 0; y < kBlockSize; ++y) {
    __m256i acc = _mm256_madd_epi16(pairs[0],
                                    _mm256_set1_epi32(t.inv_bcast[0][y]));
    for (int m = 1; m < 4; ++m) {
      acc = _mm256_add_epi32(
          acc,
          _mm256_madd_epi16(pairs[m], _mm256_set1_epi32(t.inv_bcast[m][y])));
    }
    tmp[y] = Packs256To128(RoundShift32<kIdctPass1Shift>(acc));
  }
  // Pass 2 (rows): out[y][x] = sat16((Σ_u B[u][x]·tmp[y][u] + 2^14) >> 15).
  const __m256i q0 = Load256(t.inv_pairs[0]);
  const __m256i q1 = Load256(t.inv_pairs[1]);
  const __m256i q2 = Load256(t.inv_pairs[2]);
  const __m256i q3 = Load256(t.inv_pairs[3]);
  for (int y = 0; y < kBlockSize; ++y) {
    __m256i acc = _mm256_madd_epi16(BroadcastPair<0>(tmp[y]), q0);
    acc = _mm256_add_epi32(acc,
                           _mm256_madd_epi16(BroadcastPair<1>(tmp[y]), q1));
    acc = _mm256_add_epi32(acc,
                           _mm256_madd_epi16(BroadcastPair<2>(tmp[y]), q2));
    acc = _mm256_add_epi32(acc,
                           _mm256_madd_epi16(BroadcastPair<3>(tmp[y]), q3));
    Store128(out + y * kBlockSize,
             Packs256To128(RoundShift32<kIdctPass2Shift>(acc)));
  }
}

/// Unsigned per-lane (n·m) >> 32 for 8×u32.
inline __m256i MulHiU32(__m256i n, __m256i m) {
  const __m256i prod_even = _mm256_mul_epu32(n, m);
  const __m256i prod_odd = _mm256_mul_epu32(_mm256_srli_epi64(n, 32),
                                            _mm256_srli_epi64(m, 32));
  const __m256i hi_even = _mm256_srli_epi64(prod_even, 32);
  const __m256i hi_odd = _mm256_and_si256(
      prod_odd,
      _mm256_set1_epi64x(static_cast<int64_t>(0xFFFFFFFF00000000)));
  return _mm256_or_si256(hi_even, hi_odd);
}

void QuantizeAvx2(int32_t coeffs[kBlockArea], const QuantTable& qt) {
  const __m256i one = _mm256_set1_epi32(1);
  for (int i = 0; i < kBlockArea; i += 8) {
    const __m256i v = Load256(coeffs + i);
    const __m256i sign = _mm256_srai_epi32(v, 31);
    const __m256i n = _mm256_add_epi32(_mm256_abs_epi32(v),
                                       Load256(qt.half + i));
    __m256i q = MulHiU32(n, Load256(qt.recip + i));
    const __m256i is_one = _mm256_cmpeq_epi32(Load256(qt.step + i), one);
    q = _mm256_blendv_epi8(q, n, is_one);
    q = _mm256_sub_epi32(_mm256_xor_si256(q, sign), sign);
    Store256(coeffs + i, q);
  }
}

void DequantizeAvx2(int32_t coeffs[kBlockArea], const QuantTable& qt) {
  const __m256i hi = _mm256_set1_epi32(kDequantClamp);
  const __m256i lo = _mm256_set1_epi32(-kDequantClamp);
  for (int i = 0; i < kBlockArea; i += 8) {
    const __m256i v = _mm256_max_epi32(
        lo, _mm256_min_epi32(hi, Load256(coeffs + i)));
    Store256(coeffs + i, _mm256_mullo_epi32(v, Load256(qt.step + i)));
  }
}

void U8ToI16CenterAvx2(const uint8_t* src, int16_t* dst, size_t n) {
  const __m256i c128 = _mm256_set1_epi16(128);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i v = _mm256_cvtepu8_epi16(Load128(src + i));
    Store256(dst + i, _mm256_sub_epi16(v, c128));
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<int16_t>(static_cast<int16_t>(src[i]) - 128);
  }
}

void I16CenterToU8Avx2(const int16_t* src, uint8_t* dst, size_t n) {
  const __m256i c128 = _mm256_set1_epi16(128);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i lo = _mm256_adds_epi16(Load256(src + i), c128);
    const __m256i hi = _mm256_adds_epi16(Load256(src + i + 16), c128);
    // packus interleaves 128-bit lanes; permute restores element order.
    const __m256i packed = _mm256_permute4x64_epi64(
        _mm256_packus_epi16(lo, hi), _MM_SHUFFLE(3, 1, 2, 0));
    Store256(dst + i, packed);
  }
  for (; i < n; ++i) {
    const int32_t v = static_cast<int32_t>(src[i]) + 128;
    dst[i] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
  }
}

void ResidualU8Avx2(const uint8_t* cur, const uint8_t* pred, int16_t* out,
                    size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i c = _mm256_cvtepu8_epi16(Load128(cur + i));
    const __m256i p = _mm256_cvtepu8_epi16(Load128(pred + i));
    Store256(out + i, _mm256_sub_epi16(c, p));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<int16_t>(static_cast<int32_t>(cur[i]) -
                                  static_cast<int32_t>(pred[i]));
  }
}

void ReconstructU8Avx2(const uint8_t* pred, const int16_t* res, uint8_t* out,
                       size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i p = _mm256_cvtepu8_epi16(Load128(pred + i));
    const __m256i sum = _mm256_adds_epi16(p, Load256(res + i));
    const __m128i packed = _mm_packus_epi16(
        _mm256_castsi256_si128(sum), _mm256_extracti128_si256(sum, 1));
    Store128(out + i, packed);
  }
  for (; i < n; ++i) {
    const int32_t v = static_cast<int32_t>(pred[i]) + res[i];
    out[i] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
  }
}

void SubI16Avx2(const int16_t* a, const int16_t* b, int16_t* out, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    Store256(out + i, _mm256_sub_epi16(Load256(a + i), Load256(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<int16_t>(static_cast<int32_t>(a[i]) - b[i]);
  }
}

void AddI16Avx2(const int16_t* a, const int16_t* b, int16_t* out, size_t n) {
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    Store256(out + i, _mm256_add_epi16(Load256(a + i), Load256(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<int16_t>(static_cast<int32_t>(a[i]) + b[i]);
  }
}

inline uint32_t ReduceSad(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<uint32_t>(_mm_cvtsi128_si32(sum)) +
         static_cast<uint32_t>(
             _mm_cvtsi128_si32(_mm_srli_si128(sum, 8)));
}

uint32_t SadU8Avx2(const uint8_t* a, const uint8_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(Load256(a + i), Load256(b + i)));
  }
  uint32_t sum = ReduceSad(acc);
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_sad_epu8(Load128(a + i), Load128(b + i));
    sum += static_cast<uint32_t>(_mm_cvtsi128_si32(s)) +
           static_cast<uint32_t>(_mm_cvtsi128_si32(_mm_srli_si128(s, 8)));
  }
  for (; i < n; ++i) {
    const int32_t d = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    sum += static_cast<uint32_t>(d < 0 ? -d : d);
  }
  return sum;
}

uint32_t Sad16xHU8Avx2(const uint8_t* a, ptrdiff_t a_stride, const uint8_t* b,
                       ptrdiff_t b_stride, int rows) {
  __m128i acc = _mm_setzero_si128();
  for (int r = 0; r < rows; ++r) {
    acc = _mm_add_epi64(acc, _mm_sad_epu8(Load128(a + r * a_stride),
                                          Load128(b + r * b_stride)));
  }
  return static_cast<uint32_t>(_mm_cvtsi128_si32(acc)) +
         static_cast<uint32_t>(_mm_cvtsi128_si32(_mm_srli_si128(acc, 8)));
}

}  // namespace

const CodecKernels& Avx2Kernels() {
  static const CodecKernels kernels = [] {
    CodecKernels k;
    k.level = KernelLevel::kAvx2;
    k.fdct8x8 = Fdct8x8Avx2;
    k.idct8x8 = Idct8x8Avx2;
    k.quantize = QuantizeAvx2;
    k.dequantize = DequantizeAvx2;
    k.u8_to_i16_center = U8ToI16CenterAvx2;
    k.i16_center_to_u8 = I16CenterToU8Avx2;
    k.residual_u8 = ResidualU8Avx2;
    k.reconstruct_u8 = ReconstructU8Avx2;
    k.sub_i16 = SubI16Avx2;
    k.add_i16 = AddI16Avx2;
    k.sad_u8 = SadU8Avx2;
    k.sad16xh_u8 = Sad16xHU8Avx2;
    return k;
  }();
  return kernels;
}

}  // namespace simd
}  // namespace avdb

#endif  // AVDB_SIMD_X86

#include <algorithm>
#include <cstdint>

#include "codec/simd/kernels.h"

namespace avdb {
namespace simd {

namespace {

inline int16_t Sat16(int32_t v) {
  return static_cast<int16_t>(std::clamp(v, -32768, 32767));
}

inline int32_t RoundShift(int32_t acc, int shift) {
  // Arithmetic right shift of a possibly-negative value; C++20 defines this
  // and it matches SRAI/VRSHR exactly.
  return (acc + (1 << (shift - 1))) >> shift;
}

void Fdct8x8Scalar(const int16_t in[kBlockArea], int32_t out[kBlockArea]) {
  const DctTables& t = GetDctTables();
  int16_t tmp[kBlockArea];  // tmp[y][u], spatial scale ×8
  for (int y = 0; y < kBlockSize; ++y) {
    for (int u = 0; u < kBlockSize; ++u) {
      int32_t acc = 0;
      for (int x = 0; x < kBlockSize; ++x) {
        acc += static_cast<int32_t>(t.basis[u][x]) * in[y * kBlockSize + x];
      }
      tmp[y * kBlockSize + u] = Sat16(RoundShift(acc, kFdctPass1Shift));
    }
  }
  for (int v = 0; v < kBlockSize; ++v) {
    for (int u = 0; u < kBlockSize; ++u) {
      int32_t acc = 0;
      for (int y = 0; y < kBlockSize; ++y) {
        acc += static_cast<int32_t>(t.basis[v][y]) * tmp[y * kBlockSize + u];
      }
      out[v * kBlockSize + u] = RoundShift(acc, kFdctPass2Shift);
    }
  }
}

void Idct8x8Scalar(const int32_t in[kBlockArea], int16_t out[kBlockArea]) {
  const DctTables& t = GetDctTables();
  int16_t c16[kBlockArea];
  for (int i = 0; i < kBlockArea; ++i) c16[i] = Sat16(in[i]);
  int16_t tmp[kBlockArea];  // tmp[y][u], spatial scale ×4
  for (int y = 0; y < kBlockSize; ++y) {
    for (int u = 0; u < kBlockSize; ++u) {
      int32_t acc = 0;
      for (int v = 0; v < kBlockSize; ++v) {
        acc += static_cast<int32_t>(t.basis[v][y]) * c16[v * kBlockSize + u];
      }
      tmp[y * kBlockSize + u] = Sat16(RoundShift(acc, kIdctPass1Shift));
    }
  }
  for (int y = 0; y < kBlockSize; ++y) {
    for (int x = 0; x < kBlockSize; ++x) {
      int32_t acc = 0;
      for (int u = 0; u < kBlockSize; ++u) {
        acc += static_cast<int32_t>(t.basis[u][x]) * tmp[y * kBlockSize + u];
      }
      out[y * kBlockSize + x] = Sat16(RoundShift(acc, kIdctPass2Shift));
    }
  }
}

void QuantizeScalar(int32_t coeffs[kBlockArea], const QuantTable& qt) {
  for (int i = 0; i < kBlockArea; ++i) {
    const int32_t v = coeffs[i];
    // Branch-free-safe |v|: wraps at INT32_MIN like the SIMD abs tricks do.
    const uint32_t n =
        (v < 0 ? 0u - static_cast<uint32_t>(v) : static_cast<uint32_t>(v)) +
        static_cast<uint32_t>(qt.half[i]);
    uint32_t q;
    if (qt.step[i] == 1) {
      q = n;
    } else {
      q = static_cast<uint32_t>(
          (static_cast<uint64_t>(n) * qt.recip[i]) >> 32);
    }
    coeffs[i] = v < 0 ? -static_cast<int32_t>(q) : static_cast<int32_t>(q);
  }
}

void DequantizeScalar(int32_t coeffs[kBlockArea], const QuantTable& qt) {
  for (int i = 0; i < kBlockArea; ++i) {
    const int32_t q = std::clamp(coeffs[i], -kDequantClamp, kDequantClamp);
    coeffs[i] = q * qt.step[i];
  }
}

void U8ToI16CenterScalar(const uint8_t* src, int16_t* dst, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<int16_t>(static_cast<int16_t>(src[i]) - 128);
  }
}

void I16CenterToU8Scalar(const int16_t* src, uint8_t* dst, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const int32_t v = static_cast<int32_t>(src[i]) + 128;
    dst[i] = static_cast<uint8_t>(std::clamp(v, 0, 255));
  }
}

void ResidualU8Scalar(const uint8_t* cur, const uint8_t* pred, int16_t* out,
                      size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<int16_t>(static_cast<int32_t>(cur[i]) -
                                  static_cast<int32_t>(pred[i]));
  }
}

void ReconstructU8Scalar(const uint8_t* pred, const int16_t* res, uint8_t* out,
                         size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const int32_t v = static_cast<int32_t>(pred[i]) + res[i];
    out[i] = static_cast<uint8_t>(std::clamp(v, 0, 255));
  }
}

void SubI16Scalar(const int16_t* a, const int16_t* b, int16_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    // Wrapping difference: C++20 defines the narrowing conversion as modular,
    // matching PSUBW/VSUB exactly.
    out[i] = static_cast<int16_t>(static_cast<int32_t>(a[i]) - b[i]);
  }
}

void AddI16Scalar(const int16_t* a, const int16_t* b, int16_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<int16_t>(static_cast<int32_t>(a[i]) + b[i]);
  }
}

uint32_t SadU8Scalar(const uint8_t* a, const uint8_t* b, size_t n) {
  uint32_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    const int32_t d = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    sum += static_cast<uint32_t>(d < 0 ? -d : d);
  }
  return sum;
}

uint32_t Sad16xHU8Scalar(const uint8_t* a, ptrdiff_t a_stride,
                         const uint8_t* b, ptrdiff_t b_stride, int rows) {
  uint32_t sum = 0;
  for (int r = 0; r < rows; ++r) {
    sum += SadU8Scalar(a + r * a_stride, b + r * b_stride, 16);
  }
  return sum;
}

}  // namespace

const CodecKernels& ScalarKernels() {
  static const CodecKernels kernels = [] {
    CodecKernels k;
    k.level = KernelLevel::kScalar;
    k.fdct8x8 = Fdct8x8Scalar;
    k.idct8x8 = Idct8x8Scalar;
    k.quantize = QuantizeScalar;
    k.dequantize = DequantizeScalar;
    k.u8_to_i16_center = U8ToI16CenterScalar;
    k.i16_center_to_u8 = I16CenterToU8Scalar;
    k.residual_u8 = ResidualU8Scalar;
    k.reconstruct_u8 = ReconstructU8Scalar;
    k.sub_i16 = SubI16Scalar;
    k.add_i16 = AddI16Scalar;
    k.sad_u8 = SadU8Scalar;
    k.sad16xh_u8 = Sad16xHU8Scalar;
    return k;
  }();
  return kernels;
}

}  // namespace simd
}  // namespace avdb

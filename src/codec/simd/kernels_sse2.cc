// SSE2 implementations of the codec kernels. Compiled only when
// AVDB_SIMD_X86 is defined (x86-64 builds with AVDB_SIMD=ON); SSE2 is the
// x86-64 baseline, so no extra target flags are needed for this TU.
#if defined(AVDB_SIMD_X86)

#include <emmintrin.h>

#include <cstdint>

#include "codec/simd/kernels.h"

namespace avdb {
namespace simd {

namespace {

inline __m128i LoadU(const void* p) {
  return _mm_loadu_si128(static_cast<const __m128i*>(p));
}
inline void StoreU(void* p, __m128i v) {
  _mm_storeu_si128(static_cast<__m128i*>(p), v);
}

/// Rounded arithmetic shift of 4×i32: (v + 2^(s-1)) >> s.
template <int S>
inline __m128i RoundShift32(__m128i v) {
  return _mm_srai_epi32(_mm_add_epi32(v, _mm_set1_epi32(1 << (S - 1))), S);
}

void Fdct8x8Sse2(const int16_t in[kBlockArea], int32_t out[kBlockArea]) {
  const DctTables& t = GetDctTables();
  // Pass 1 (rows): tmp[y][u] = sat16((Σ_x B[u][x]·in[y][x] + 2^9) >> 10).
  __m128i tmp[kBlockSize];  // tmp[y] = 8×i16 over u
  for (int y = 0; y < kBlockSize; ++y) {
    const __m128i row = LoadU(in + y * kBlockSize);
    __m128i acc_lo = _mm_setzero_si128();  // u0..3
    __m128i acc_hi = _mm_setzero_si128();  // u4..7
    for (int k = 0; k < 4; ++k) {
      // Broadcast the (x=2k, x=2k+1) input pair to every i32 lane.
      __m128i d;
      switch (k) {
        case 0: d = _mm_shuffle_epi32(row, _MM_SHUFFLE(0, 0, 0, 0)); break;
        case 1: d = _mm_shuffle_epi32(row, _MM_SHUFFLE(1, 1, 1, 1)); break;
        case 2: d = _mm_shuffle_epi32(row, _MM_SHUFFLE(2, 2, 2, 2)); break;
        default: d = _mm_shuffle_epi32(row, _MM_SHUFFLE(3, 3, 3, 3)); break;
      }
      acc_lo = _mm_add_epi32(acc_lo, _mm_madd_epi16(d, LoadU(t.fwd_pairs[k])));
      acc_hi = _mm_add_epi32(
          acc_hi, _mm_madd_epi16(d, LoadU(t.fwd_pairs[k] + kBlockSize)));
    }
    tmp[y] = _mm_packs_epi32(RoundShift32<kFdctPass1Shift>(acc_lo),
                             RoundShift32<kFdctPass1Shift>(acc_hi));
  }
  // Pass 2 (columns): out[v][u] = (Σ_y B[v][y]·tmp[y][u] + 2^15) >> 16.
  __m128i pair_lo[4];  // (tmp[2m][u], tmp[2m+1][u]) for u0..3
  __m128i pair_hi[4];  // ... for u4..7
  for (int m = 0; m < 4; ++m) {
    pair_lo[m] = _mm_unpacklo_epi16(tmp[2 * m], tmp[2 * m + 1]);
    pair_hi[m] = _mm_unpackhi_epi16(tmp[2 * m], tmp[2 * m + 1]);
  }
  for (int v = 0; v < kBlockSize; ++v) {
    __m128i acc_lo = _mm_setzero_si128();
    __m128i acc_hi = _mm_setzero_si128();
    for (int m = 0; m < 4; ++m) {
      const __m128i b = _mm_set1_epi32(t.fwd_bcast[m][v]);
      acc_lo = _mm_add_epi32(acc_lo, _mm_madd_epi16(pair_lo[m], b));
      acc_hi = _mm_add_epi32(acc_hi, _mm_madd_epi16(pair_hi[m], b));
    }
    StoreU(out + v * kBlockSize, RoundShift32<kFdctPass2Shift>(acc_lo));
    StoreU(out + v * kBlockSize + 4, RoundShift32<kFdctPass2Shift>(acc_hi));
  }
}

void Idct8x8Sse2(const int32_t in[kBlockArea], int16_t out[kBlockArea]) {
  const DctTables& t = GetDctTables();
  // Saturate coefficient rows to int16 (hostile levels collapse here).
  __m128i rows[kBlockSize];  // rows[v] = 8×i16 over u
  for (int v = 0; v < kBlockSize; ++v) {
    rows[v] = _mm_packs_epi32(LoadU(in + v * kBlockSize),
                              LoadU(in + v * kBlockSize + 4));
  }
  __m128i pair_lo[4];  // (c[2m][u], c[2m+1][u]) for u0..3
  __m128i pair_hi[4];
  for (int m = 0; m < 4; ++m) {
    pair_lo[m] = _mm_unpacklo_epi16(rows[2 * m], rows[2 * m + 1]);
    pair_hi[m] = _mm_unpackhi_epi16(rows[2 * m], rows[2 * m + 1]);
  }
  // Pass 1 (columns): tmp[y][u] = sat16((Σ_v B[v][y]·c[v][u] + 2^10) >> 11).
  __m128i tmp[kBlockSize];  // tmp[y] = 8×i16 over u
  for (int y = 0; y < kBlockSize; ++y) {
    __m128i acc_lo = _mm_setzero_si128();
    __m128i acc_hi = _mm_setzero_si128();
    for (int m = 0; m < 4; ++m) {
      const __m128i b = _mm_set1_epi32(t.inv_bcast[m][y]);
      acc_lo = _mm_add_epi32(acc_lo, _mm_madd_epi16(pair_lo[m], b));
      acc_hi = _mm_add_epi32(acc_hi, _mm_madd_epi16(pair_hi[m], b));
    }
    tmp[y] = _mm_packs_epi32(RoundShift32<kIdctPass1Shift>(acc_lo),
                             RoundShift32<kIdctPass1Shift>(acc_hi));
  }
  // Pass 2 (rows): out[y][x] = sat16((Σ_u B[u][x]·tmp[y][u] + 2^14) >> 15).
  for (int y = 0; y < kBlockSize; ++y) {
    __m128i acc_lo = _mm_setzero_si128();  // x0..3
    __m128i acc_hi = _mm_setzero_si128();  // x4..7
    for (int k = 0; k < 4; ++k) {
      __m128i d;
      switch (k) {
        case 0: d = _mm_shuffle_epi32(tmp[y], _MM_SHUFFLE(0, 0, 0, 0)); break;
        case 1: d = _mm_shuffle_epi32(tmp[y], _MM_SHUFFLE(1, 1, 1, 1)); break;
        case 2: d = _mm_shuffle_epi32(tmp[y], _MM_SHUFFLE(2, 2, 2, 2)); break;
        default: d = _mm_shuffle_epi32(tmp[y], _MM_SHUFFLE(3, 3, 3, 3)); break;
      }
      acc_lo = _mm_add_epi32(acc_lo, _mm_madd_epi16(d, LoadU(t.inv_pairs[k])));
      acc_hi = _mm_add_epi32(
          acc_hi, _mm_madd_epi16(d, LoadU(t.inv_pairs[k] + kBlockSize)));
    }
    StoreU(out + y * kBlockSize,
           _mm_packs_epi32(RoundShift32<kIdctPass2Shift>(acc_lo),
                           RoundShift32<kIdctPass2Shift>(acc_hi)));
  }
}

/// Unsigned per-lane (n·m) >> 32 for 4×u32.
inline __m128i MulHiU32(__m128i n, __m128i m) {
  const __m128i prod_even = _mm_mul_epu32(n, m);  // lanes 0,2 → 64-bit
  const __m128i prod_odd = _mm_mul_epu32(_mm_srli_epi64(n, 32),
                                         _mm_srli_epi64(m, 32));  // lanes 1,3
  const __m128i hi_even = _mm_srli_epi64(prod_even, 32);
  const __m128i hi_odd =
      _mm_and_si128(prod_odd, _mm_set1_epi64x(
                                  static_cast<int64_t>(0xFFFFFFFF00000000)));
  return _mm_or_si128(hi_even, hi_odd);
}

/// Per-lane low 32 bits of i32×i32 (SSE2 has no PMULLD).
inline __m128i MulLo32(__m128i a, __m128i b) {
  const __m128i even = _mm_mul_epu32(a, b);
  const __m128i odd =
      _mm_mul_epu32(_mm_srli_si128(a, 4), _mm_srli_si128(b, 4));
  return _mm_unpacklo_epi32(_mm_shuffle_epi32(even, _MM_SHUFFLE(0, 0, 2, 0)),
                            _mm_shuffle_epi32(odd, _MM_SHUFFLE(0, 0, 2, 0)));
}

void QuantizeSse2(int32_t coeffs[kBlockArea], const QuantTable& qt) {
  const __m128i one = _mm_set1_epi32(1);
  for (int i = 0; i < kBlockArea; i += 4) {
    const __m128i v = LoadU(coeffs + i);
    const __m128i sign = _mm_srai_epi32(v, 31);
    const __m128i n = _mm_add_epi32(
        _mm_sub_epi32(_mm_xor_si128(v, sign), sign), LoadU(qt.half + i));
    const __m128i step = LoadU(qt.step + i);
    __m128i q = MulHiU32(n, LoadU(qt.recip + i));
    const __m128i is_one = _mm_cmpeq_epi32(step, one);
    q = _mm_or_si128(_mm_and_si128(is_one, n), _mm_andnot_si128(is_one, q));
    q = _mm_sub_epi32(_mm_xor_si128(q, sign), sign);
    StoreU(coeffs + i, q);
  }
}

void DequantizeSse2(int32_t coeffs[kBlockArea], const QuantTable& qt) {
  const __m128i hi = _mm_set1_epi32(kDequantClamp);
  const __m128i lo = _mm_set1_epi32(-kDequantClamp);
  for (int i = 0; i < kBlockArea; i += 4) {
    __m128i v = LoadU(coeffs + i);
    const __m128i gt = _mm_cmpgt_epi32(v, hi);
    v = _mm_or_si128(_mm_and_si128(gt, hi), _mm_andnot_si128(gt, v));
    const __m128i lt = _mm_cmpgt_epi32(lo, v);
    v = _mm_or_si128(_mm_and_si128(lt, lo), _mm_andnot_si128(lt, v));
    StoreU(coeffs + i, MulLo32(v, LoadU(qt.step + i)));
  }
}

void U8ToI16CenterSse2(const uint8_t* src, int16_t* dst, size_t n) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i c128 = _mm_set1_epi16(128);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = LoadU(src + i);
    StoreU(dst + i, _mm_sub_epi16(_mm_unpacklo_epi8(v, zero), c128));
    StoreU(dst + i + 8, _mm_sub_epi16(_mm_unpackhi_epi8(v, zero), c128));
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<int16_t>(static_cast<int16_t>(src[i]) - 128);
  }
}

void I16CenterToU8Sse2(const int16_t* src, uint8_t* dst, size_t n) {
  const __m128i c128 = _mm_set1_epi16(128);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // Saturating add + unsigned pack equals the scalar int-add-then-clamp:
    // they differ only above 32639, where both clamp to 255.
    const __m128i lo = _mm_adds_epi16(LoadU(src + i), c128);
    const __m128i hi = _mm_adds_epi16(LoadU(src + i + 8), c128);
    StoreU(dst + i, _mm_packus_epi16(lo, hi));
  }
  for (; i < n; ++i) {
    const int32_t v = static_cast<int32_t>(src[i]) + 128;
    dst[i] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
  }
}

void ResidualU8Sse2(const uint8_t* cur, const uint8_t* pred, int16_t* out,
                    size_t n) {
  const __m128i zero = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i c = LoadU(cur + i);
    const __m128i p = LoadU(pred + i);
    StoreU(out + i, _mm_sub_epi16(_mm_unpacklo_epi8(c, zero),
                                  _mm_unpacklo_epi8(p, zero)));
    StoreU(out + i + 8, _mm_sub_epi16(_mm_unpackhi_epi8(c, zero),
                                      _mm_unpackhi_epi8(p, zero)));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<int16_t>(static_cast<int32_t>(cur[i]) -
                                  static_cast<int32_t>(pred[i]));
  }
}

void ReconstructU8Sse2(const uint8_t* pred, const int16_t* res, uint8_t* out,
                       size_t n) {
  const __m128i zero = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i p = LoadU(pred + i);
    const __m128i lo =
        _mm_adds_epi16(_mm_unpacklo_epi8(p, zero), LoadU(res + i));
    const __m128i hi =
        _mm_adds_epi16(_mm_unpackhi_epi8(p, zero), LoadU(res + i + 8));
    StoreU(out + i, _mm_packus_epi16(lo, hi));
  }
  for (; i < n; ++i) {
    const int32_t v = static_cast<int32_t>(pred[i]) + res[i];
    out[i] = static_cast<uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
  }
}

void SubI16Sse2(const int16_t* a, const int16_t* b, int16_t* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    StoreU(out + i, _mm_sub_epi16(LoadU(a + i), LoadU(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<int16_t>(static_cast<int32_t>(a[i]) - b[i]);
  }
}

void AddI16Sse2(const int16_t* a, const int16_t* b, int16_t* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    StoreU(out + i, _mm_add_epi16(LoadU(a + i), LoadU(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<int16_t>(static_cast<int32_t>(a[i]) + b[i]);
  }
}

inline uint32_t ReduceSad(__m128i acc) {
  return static_cast<uint32_t>(_mm_cvtsi128_si32(acc)) +
         static_cast<uint32_t>(
             _mm_cvtsi128_si32(_mm_srli_si128(acc, 8)));
}

uint32_t SadU8Sse2(const uint8_t* a, const uint8_t* b, size_t n) {
  __m128i acc = _mm_setzero_si128();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc = _mm_add_epi64(acc, _mm_sad_epu8(LoadU(a + i), LoadU(b + i)));
  }
  uint32_t sum = ReduceSad(acc);
  for (; i < n; ++i) {
    const int32_t d = static_cast<int32_t>(a[i]) - static_cast<int32_t>(b[i]);
    sum += static_cast<uint32_t>(d < 0 ? -d : d);
  }
  return sum;
}

uint32_t Sad16xHU8Sse2(const uint8_t* a, ptrdiff_t a_stride, const uint8_t* b,
                       ptrdiff_t b_stride, int rows) {
  __m128i acc = _mm_setzero_si128();
  for (int r = 0; r < rows; ++r) {
    acc = _mm_add_epi64(
        acc, _mm_sad_epu8(LoadU(a + r * a_stride), LoadU(b + r * b_stride)));
  }
  return ReduceSad(acc);
}

}  // namespace

const CodecKernels& Sse2Kernels() {
  static const CodecKernels kernels = [] {
    CodecKernels k;
    k.level = KernelLevel::kSse2;
    k.fdct8x8 = Fdct8x8Sse2;
    k.idct8x8 = Idct8x8Sse2;
    k.quantize = QuantizeSse2;
    k.dequantize = DequantizeSse2;
    k.u8_to_i16_center = U8ToI16CenterSse2;
    k.i16_center_to_u8 = I16CenterToU8Sse2;
    k.residual_u8 = ResidualU8Sse2;
    k.reconstruct_u8 = ReconstructU8Sse2;
    k.sub_i16 = SubI16Sse2;
    k.add_i16 = AddI16Sse2;
    k.sad_u8 = SadU8Sse2;
    k.sad16xh_u8 = Sad16xHU8Sse2;
    return k;
  }();
  return kernels;
}

}  // namespace simd
}  // namespace avdb

#endif  // AVDB_SIMD_X86

#include "codec/simd/kernels.h"

#include <atomic>
#include <cmath>

#include "base/cpuid.h"

namespace avdb {
namespace simd {

#if defined(AVDB_SIMD_X86)
// Defined in kernels_sse2.cc / kernels_avx2.cc (compiled with the matching
// target flags); declared here so only the dispatcher names them.
const CodecKernels& Sse2Kernels();
const CodecKernels& Avx2Kernels();
#elif defined(AVDB_SIMD_NEON)
const CodecKernels& NeonKernels();
#endif

namespace {

DctTables BuildDctTables() {
  DctTables t;
  const double pi = std::acos(-1.0);
  for (int u = 0; u < kBlockSize; ++u) {
    const double a = (u == 0) ? std::sqrt(1.0 / kBlockSize)
                              : std::sqrt(2.0 / kBlockSize);
    for (int x = 0; x < kBlockSize; ++x) {
      const double c =
          a * std::cos((2.0 * x + 1.0) * u * pi / (2.0 * kBlockSize));
      t.basis[u][x] = static_cast<int16_t>(
          std::lround(c * (1 << kDctConstBits)));
    }
  }
  auto pack_pair = [](int16_t lo, int16_t hi) {
    return static_cast<int32_t>(
        (static_cast<uint32_t>(static_cast<uint16_t>(hi)) << 16) |
        static_cast<uint16_t>(lo));
  };
  for (int k = 0; k < kBlockSize / 2; ++k) {
    for (int u = 0; u < kBlockSize; ++u) {
      t.fwd_pairs[k][2 * u + 0] = t.basis[u][2 * k + 0];
      t.fwd_pairs[k][2 * u + 1] = t.basis[u][2 * k + 1];
      t.inv_pairs[k][2 * u + 0] = t.basis[2 * k + 0][u];
      t.inv_pairs[k][2 * u + 1] = t.basis[2 * k + 1][u];
      t.fwd_bcast[k][u] = pack_pair(t.basis[u][2 * k], t.basis[u][2 * k + 1]);
      t.inv_bcast[k][u] = pack_pair(t.basis[2 * k][u], t.basis[2 * k + 1][u]);
    }
  }
  return t;
}

const CodecKernels* SelectKernels() {
  const CpuFeatures& cpu = DetectCpuFeatures();
  (void)cpu;
#if defined(AVDB_SIMD_X86)
  if (cpu.avx2) return &Avx2Kernels();
  if (cpu.sse2) return &Sse2Kernels();
#elif defined(AVDB_SIMD_NEON)
  if (cpu.neon) return &NeonKernels();
#endif
  return &ScalarKernels();
}

std::atomic<const CodecKernels*>& ActiveSlot() {
  static std::atomic<const CodecKernels*> slot{SelectKernels()};
  return slot;
}

}  // namespace

const DctTables& GetDctTables() {
  static const DctTables tables = BuildDctTables();
  return tables;
}

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kSse2:
      return "sse2";
    case KernelLevel::kAvx2:
      return "avx2";
    case KernelLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

const CodecKernels& ActiveKernels() {
  return *ActiveSlot().load(std::memory_order_acquire);
}

std::vector<KernelLevel> AvailableKernelLevels() {
  std::vector<KernelLevel> levels{KernelLevel::kScalar};
  const CpuFeatures& cpu = DetectCpuFeatures();
  (void)cpu;
#if defined(AVDB_SIMD_X86)
  if (cpu.sse2) levels.push_back(KernelLevel::kSse2);
  if (cpu.avx2) levels.push_back(KernelLevel::kAvx2);
#elif defined(AVDB_SIMD_NEON)
  if (cpu.neon) levels.push_back(KernelLevel::kNeon);
#endif
  return levels;
}

bool ForceKernelsForTest(KernelLevel level) {
  const CpuFeatures& cpu = DetectCpuFeatures();
  (void)cpu;
  const CodecKernels* table = nullptr;
  switch (level) {
    case KernelLevel::kScalar:
      table = &ScalarKernels();
      break;
#if defined(AVDB_SIMD_X86)
    case KernelLevel::kSse2:
      if (cpu.sse2) table = &Sse2Kernels();
      break;
    case KernelLevel::kAvx2:
      if (cpu.avx2) table = &Avx2Kernels();
      break;
#elif defined(AVDB_SIMD_NEON)
    case KernelLevel::kNeon:
      if (cpu.neon) table = &NeonKernels();
      break;
#endif
    default:
      break;
  }
  if (table == nullptr) return false;
  ActiveSlot().store(table, std::memory_order_release);
  return true;
}

void ResetKernelsForTest() {
  ActiveSlot().store(SelectKernels(), std::memory_order_release);
}

}  // namespace simd
}  // namespace avdb

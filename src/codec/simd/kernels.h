#ifndef AVDB_CODEC_SIMD_KERNELS_H_
#define AVDB_CODEC_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace avdb {
namespace simd {

/// Vectorized inner loops for the transform codecs, behind a runtime
/// dispatch table. Every implementation (scalar reference, SSE2, AVX2,
/// NEON) computes the *same integer arithmetic* — fixed-point transforms,
/// saturating narrowings, reciprocal-multiply quantization — so dispatched
/// output is byte-identical to the always-built scalar path by
/// construction. No float enters any kernel.
///
/// Fixed-point model (see DESIGN.md §12):
///  - DCT basis B[u][x] = round(2^13 · a(u) · cos((2x+1)uπ/16)), int16.
///  - Forward: pass 1 over rows keeps 3 fractional bits
///    (tmp = sat16((Σ B·s + 2^9) >> 10)), pass 2 over columns removes them
///    (out = (Σ B·tmp + 2^15) >> 16). All products are int16×int16→int32;
///    sums of 8 such products stay below 2^31, so scalar and
///    pmaddwd/vmlal orderings agree exactly.
///  - Inverse: inputs saturate to int16 first (hostile bitstreams can carry
///    huge levels); pass 1 keeps 2 fractional bits (shift 11), pass 2
///    shifts 15 and saturates to int16 — the old float path's clamp, made
///    deterministic.
///  - Rounding is uniformly `(acc + 2^(s-1)) >> s` with an arithmetic
///    shift, matching SRAI/VRSHR semantics.
inline constexpr int kBlockSize = 8;
inline constexpr int kBlockArea = kBlockSize * kBlockSize;

inline constexpr int kDctConstBits = 13;    ///< basis scale 2^13
inline constexpr int kFdctPass1Shift = 10;  ///< keep 3 fractional bits
inline constexpr int kFdctPass2Shift = 16;  ///< remove scale + fraction
inline constexpr int kIdctPass1Shift = 11;  ///< keep 2 fractional bits
inline constexpr int kIdctPass2Shift = 15;  ///< remove scale + fraction

/// Dequantized levels are clamped to ±2^20 before the multiply so a
/// hostile level can never overflow int32 (step ≤ 1024 ⇒ |q·step| < 2^31).
inline constexpr int32_t kDequantClamp = 1 << 20;

/// Precomputed fixed-point DCT basis, shared by every implementation. The
/// pair layouts feed PMADDWD-style multiply-accumulate directly: each i32
/// lane of a pair vector holds two adjacent i16 basis entries.
struct DctTables {
  /// basis[u][x] = round(2^13 · a(u) cos((2x+1)uπ/16)).
  alignas(32) int16_t basis[kBlockSize][kBlockSize];
  /// fwd_pairs[k][2u+j] = basis[u][2k+j] — x-pairs across u (fdct pass 1).
  alignas(32) int16_t fwd_pairs[kBlockSize / 2][2 * kBlockSize];
  /// inv_pairs[k][2x+j] = basis[2k+j][x] — u-pairs across x (idct pass 2).
  alignas(32) int16_t inv_pairs[kBlockSize / 2][2 * kBlockSize];
  /// fwd_bcast[m][v] = basis[v][2m] | basis[v][2m+1]<<16 (fdct pass 2).
  alignas(32) int32_t fwd_bcast[kBlockSize / 2][kBlockSize];
  /// inv_bcast[m][y] = basis[2m][y] | basis[2m+1][y]<<16 (idct pass 1).
  alignas(32) int32_t inv_bcast[kBlockSize / 2][kBlockSize];
};
const DctTables& GetDctTables();

/// Per-quality quantization table: steps (identical to
/// block_transform::QuantStep) plus the reciprocal magic for exact
/// division by multiplication. With n = |coeff| + step/2 < 2^21 and
/// recip = ceil(2^32/step), `(n · recip) >> 32 == n / step` exactly for
/// every step in [2, 1024]; step == 1 short-circuits to n.
struct QuantTable {
  alignas(32) int32_t step[kBlockArea];
  alignas(32) uint32_t recip[kBlockArea];  ///< unused where step == 1
  alignas(32) int32_t half[kBlockArea];    ///< step/2, the rounding bias
};

enum class KernelLevel {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

const char* KernelLevelName(KernelLevel level);

/// Dispatch table of the codec inner loops. All pointers are non-null in
/// every published table.
struct CodecKernels {
  KernelLevel level = KernelLevel::kScalar;

  /// Forward 8×8 fixed-point DCT-II (spatial int16 → coefficient int32).
  void (*fdct8x8)(const int16_t in[kBlockArea], int32_t out[kBlockArea]);
  /// Inverse 8×8 DCT (coefficient int32 → spatial int16, saturated).
  void (*idct8x8)(const int32_t in[kBlockArea], int16_t out[kBlockArea]);
  /// In-place divide-and-round by the per-position step. Inputs must be
  /// forward-transform outputs (|coeff| < 2^21 − 512), the exactness
  /// condition of the reciprocal multiply.
  void (*quantize)(int32_t coeffs[kBlockArea], const QuantTable& qt);
  /// In-place multiply by the per-position step (levels clamped to
  /// ±kDequantClamp first).
  void (*dequantize)(int32_t coeffs[kBlockArea], const QuantTable& qt);

  /// dst[i] = int16(src[i]) − 128 (pixel centering).
  void (*u8_to_i16_center)(const uint8_t* src, int16_t* dst, size_t n);
  /// dst[i] = clamp(src[i] + 128, 0, 255) (un-centering).
  void (*i16_center_to_u8)(const int16_t* src, uint8_t* dst, size_t n);
  /// out[i] = int16(cur[i]) − int16(pred[i]) (motion-compensated residual).
  void (*residual_u8)(const uint8_t* cur, const uint8_t* pred, int16_t* out,
                      size_t n);
  /// out[i] = clamp(pred[i] + res[i], 0, 255).
  void (*reconstruct_u8)(const uint8_t* pred, const int16_t* res,
                         uint8_t* out, size_t n);
  /// out[i] = int16(a[i] − b[i]) (two's-complement wrap, scalable-layer
  /// residuals).
  void (*sub_i16)(const int16_t* a, const int16_t* b, int16_t* out, size_t n);
  /// out[i] = int16(a[i] + b[i]) (wrap, scalable-layer reconstruction).
  void (*add_i16)(const int16_t* a, const int16_t* b, int16_t* out, size_t n);

  /// Σ |a[i] − b[i]| over a contiguous run. n must stay below 2^24 so the
  /// sum fits uint32 (callers pass at most one plane row).
  uint32_t (*sad_u8)(const uint8_t* a, const uint8_t* b, size_t n);
  /// SAD of a 16-wide block: rows at the given byte strides. The motion
  /// search's fully-in-bounds fast path.
  uint32_t (*sad16xh_u8)(const uint8_t* a, ptrdiff_t a_stride,
                         const uint8_t* b, ptrdiff_t b_stride, int rows);
};

/// The always-built integer reference implementation.
const CodecKernels& ScalarKernels();

/// The widest implementation the CPU supports among those compiled in
/// (scalar when AVDB_SIMD is OFF). Stable for the life of the process
/// unless a test forces a level.
const CodecKernels& ActiveKernels();

/// Levels usable in this binary on this CPU (always includes kScalar).
std::vector<KernelLevel> AvailableKernelLevels();

/// Test hook: pins ActiveKernels() to `level`. Returns false (and changes
/// nothing) when the level is not compiled in or not supported by the CPU.
bool ForceKernelsForTest(KernelLevel level);
/// Test hook: reverts ActiveKernels() to runtime detection.
void ResetKernelsForTest();

}  // namespace simd
}  // namespace avdb

#endif  // AVDB_CODEC_SIMD_KERNELS_H_

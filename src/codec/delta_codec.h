#ifndef AVDB_CODEC_DELTA_CODEC_H_
#define AVDB_CODEC_DELTA_CODEC_H_

#include "codec/video_codec.h"

namespace avdb {

/// DVI RTV-class delta codec: cheap frame-difference coding with no
/// transform and no motion search. Each pixel is coded as a quantized
/// difference against the reconstructed previous frame (frame 0 against a
/// mid-grey reference), run-length coding zero runs. Much cheaper to
/// encode/decode than the transform codecs at a worse rate/distortion point
/// — the "real-time video" trade-off DVI made in 1990 hardware. Structural
/// stand-in for the paper's `DVI_VideoValue` (DESIGN.md §5).
class DeltaCodec final : public VideoCodec {
 public:
  std::string name() const override { return "avdb-delta"; }
  EncodingFamily family() const override { return EncodingFamily::kDelta; }

  Result<EncodedVideo> Encode(const VideoValue& value,
                              const VideoCodecParams& params) const override;
  Result<std::unique_ptr<VideoDecoderSession>> NewDecoder(
      const EncodedVideo& video) const override;

  /// Quantization step derived from quality (1..100 -> 16..1).
  static int StepForQuality(int quality);
};

}  // namespace avdb

#endif  // AVDB_CODEC_DELTA_CODEC_H_

#ifndef AVDB_CODEC_INTRA_CODEC_H_
#define AVDB_CODEC_INTRA_CODEC_H_

#include "codec/video_codec.h"

namespace avdb {

/// JPEG-class intra-frame codec: every frame is independently transform-
/// coded (8×8 DCT + quantization + run-length entropy coding, one pass per
/// colour plane). Every frame is a random-access point, which is why the
/// paper's editing scenarios favour intra representations. Structural
/// stand-in for the paper's `JPEG_VideoValue` encoding (see DESIGN.md §5).
class IntraCodec final : public VideoCodec {
 public:
  std::string name() const override { return "avdb-intra"; }
  EncodingFamily family() const override { return EncodingFamily::kIntra; }

  Result<EncodedVideo> Encode(const VideoValue& value,
                              const VideoCodecParams& params) const override;
  Result<std::unique_ptr<VideoDecoderSession>> NewDecoder(
      const EncodedVideo& video) const override;

  /// Encodes one frame independently (shared with the inter codec's
  /// I-frames and the streaming encoder activity).
  static Buffer EncodeFrame(const VideoFrame& frame, int quality);

  /// Decodes one independently coded frame of the given geometry.
  static Result<VideoFrame> DecodeFrame(const Buffer& data, int width,
                                        int height, int depth_bits,
                                        int quality);
};

}  // namespace avdb

#endif  // AVDB_CODEC_INTRA_CODEC_H_

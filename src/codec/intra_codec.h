#ifndef AVDB_CODEC_INTRA_CODEC_H_
#define AVDB_CODEC_INTRA_CODEC_H_

#include "codec/video_codec.h"

namespace avdb {

/// JPEG-class intra-frame codec: every frame is independently transform-
/// coded (8×8 DCT + quantization + run-length entropy coding, one pass per
/// colour plane). Every frame is a random-access point, which is why the
/// paper's editing scenarios favour intra representations. Structural
/// stand-in for the paper's `JPEG_VideoValue` encoding (see DESIGN.md §5).
///
/// Frame layout: each colour plane is entropy-coded into its own
/// byte-aligned sub-stream prefixed with a u32 byte size. The prefixes
/// make planes independently addressable, so both encode and decode of a
/// single frame can fan plane work out across the work pool with output
/// byte-identical to the serial path.
class IntraCodec final : public VideoCodec {
 public:
  std::string name() const override { return "avdb-intra"; }
  EncodingFamily family() const override { return EncodingFamily::kIntra; }

  /// Parallel over frames when params.concurrency > 1 (frames are
  /// independent coding units); output is byte-identical to serial.
  Result<EncodedVideo> Encode(const VideoValue& value,
                              const VideoCodecParams& params) const override;
  Result<std::unique_ptr<VideoDecoderSession>> NewDecoder(
      const EncodedVideo& video) const override;

  /// Encodes one frame independently (shared with the inter codec's
  /// I-frames and the streaming encoder activity). `concurrency` > 1
  /// spreads the colour planes across the work pool.
  static Buffer EncodeFrame(const VideoFrame& frame, int quality,
                            int concurrency = 1);

  /// Decodes one independently coded frame of the given geometry;
  /// `concurrency` > 1 decodes the colour planes in parallel.
  static Result<VideoFrame> DecodeFrame(const Buffer& data, int width,
                                        int height, int depth_bits,
                                        int quality, int concurrency = 1);
};

}  // namespace avdb

#endif  // AVDB_CODEC_INTRA_CODEC_H_

#include "codec/registry.h"

#include <atomic>

#include "codec/delta_codec.h"
#include "codec/inter_codec.h"
#include "codec/intra_codec.h"
#include "codec/scalable_codec.h"

namespace avdb {

namespace {
std::atomic<int> g_default_concurrency{1};
}  // namespace

int CodecRegistry::default_concurrency() {
  return g_default_concurrency.load(std::memory_order_relaxed);
}

void CodecRegistry::set_default_concurrency(int concurrency) {
  g_default_concurrency.store(concurrency < 1 ? 1 : concurrency,
                              std::memory_order_relaxed);
}

const CodecRegistry& CodecRegistry::Default() {
  static const CodecRegistry* registry = new CodecRegistry();
  return *registry;
}

CodecRegistry::CodecRegistry() {
  video_codecs_.push_back(std::make_shared<IntraCodec>());
  video_codecs_.push_back(std::make_shared<InterCodec>());
  video_codecs_.push_back(std::make_shared<DeltaCodec>());
  video_codecs_.push_back(std::make_shared<ScalableCodec>());
  audio_codecs_.push_back(std::make_shared<MulawCodec>());
  audio_codecs_.push_back(std::make_shared<AdpcmCodec>());
}

Result<std::shared_ptr<const VideoCodec>> CodecRegistry::VideoCodecFor(
    EncodingFamily family) const {
  for (const auto& c : video_codecs_) {
    if (c->family() == family) return c;
  }
  return Status::NotFound("no video codec for family " +
                          std::string(EncodingFamilyName(family)));
}

Result<std::shared_ptr<const AudioCodec>> CodecRegistry::AudioCodecFor(
    EncodingFamily family) const {
  for (const auto& c : audio_codecs_) {
    if (c->family() == family) return c;
  }
  return Status::NotFound("no audio codec for family " +
                          std::string(EncodingFamilyName(family)));
}

}  // namespace avdb

#ifndef AVDB_CODEC_REGISTRY_H_
#define AVDB_CODEC_REGISTRY_H_

#include <memory>
#include <vector>

#include "base/result.h"
#include "codec/audio_codec.h"
#include "codec/video_codec.h"

namespace avdb {

/// Lookup of codecs by encoding family — the §4.1 machinery that lets the
/// database pick a representation for a quality factor and lets generic
/// activities decode "whatever the bound value's class is" (the dynamic
/// configuration of `dbSource` in §4.3).
class CodecRegistry {
 public:
  /// Registry pre-populated with every built-in codec.
  static const CodecRegistry& Default();

  CodecRegistry();

  Result<std::shared_ptr<const VideoCodec>> VideoCodecFor(
      EncodingFamily family) const;
  Result<std::shared_ptr<const AudioCodec>> AudioCodecFor(
      EncodingFamily family) const;

  const std::vector<std::shared_ptr<const VideoCodec>>& video_codecs() const {
    return video_codecs_;
  }
  const std::vector<std::shared_ptr<const AudioCodec>>& audio_codecs() const {
    return audio_codecs_;
  }

 private:
  std::vector<std::shared_ptr<const VideoCodec>> video_codecs_;
  std::vector<std::shared_ptr<const AudioCodec>> audio_codecs_;
};

}  // namespace avdb

#endif  // AVDB_CODEC_REGISTRY_H_

#ifndef AVDB_CODEC_REGISTRY_H_
#define AVDB_CODEC_REGISTRY_H_

#include <memory>
#include <vector>

#include "base/result.h"
#include "codec/audio_codec.h"
#include "codec/video_codec.h"

namespace avdb {

/// Lookup of codecs by encoding family — the §4.1 machinery that lets the
/// database pick a representation for a quality factor and lets generic
/// activities decode "whatever the bound value's class is" (the dynamic
/// configuration of `dbSource` in §4.3).
class CodecRegistry {
 public:
  /// Registry pre-populated with every built-in codec.
  static const CodecRegistry& Default();

  /// Process-wide default for VideoCodecParams::concurrency, applied where
  /// codec work is kicked off without an explicit params value (decoder
  /// sessions rebuilt from storage, the streaming encoder activity). It is
  /// an execution policy only — output bytes never depend on it. Defaults
  /// to 1 (fully serial) so the single-threaded virtual-time EventEngine
  /// semantics are untouched unless a deployment opts in.
  static int default_concurrency();
  static void set_default_concurrency(int concurrency);

  CodecRegistry();

  Result<std::shared_ptr<const VideoCodec>> VideoCodecFor(
      EncodingFamily family) const;
  Result<std::shared_ptr<const AudioCodec>> AudioCodecFor(
      EncodingFamily family) const;

  const std::vector<std::shared_ptr<const VideoCodec>>& video_codecs() const {
    return video_codecs_;
  }
  const std::vector<std::shared_ptr<const AudioCodec>>& audio_codecs() const {
    return audio_codecs_;
  }

 private:
  std::vector<std::shared_ptr<const VideoCodec>> video_codecs_;
  std::vector<std::shared_ptr<const AudioCodec>> audio_codecs_;
};

}  // namespace avdb

#endif  // AVDB_CODEC_REGISTRY_H_

#include "codec/encoded_value.h"

namespace avdb {

namespace {

MediaDataType DecodedTypeFor(const EncodedVideo& video) {
  // The value presents compressed type information (so activities can type
  // ports as "compressed video"), but geometry/rate follow the raw type.
  return MediaDataType::CompressedVideo(
      video.family, video.raw_type.width(), video.raw_type.height(),
      video.raw_type.depth_bits(), video.raw_type.element_rate());
}

}  // namespace

Result<std::shared_ptr<EncodedVideoValue>> EncodedVideoValue::Create(
    std::shared_ptr<const VideoCodec> codec, EncodedVideo video) {
  if (codec == nullptr) return Status::InvalidArgument("null codec");
  if (codec->family() != video.family) {
    return Status::InvalidArgument("codec family does not match stream");
  }
  return std::shared_ptr<EncodedVideoValue>(new EncodedVideoValue(
      DecodedTypeFor(video), std::move(codec), std::move(video)));
}

Result<VideoFrame> EncodedVideoValue::Frame(int64_t index) const {
  if (session_ == nullptr) {
    auto session = codec_->NewDecoder(video_);
    if (!session.ok()) return session.status();
    session_ = std::move(session).value();
  }
  return session_->DecodeFrame(index);
}

Result<std::vector<VideoFrame>> EncodedVideoValue::Frames(
    int64_t first, int64_t count) const {
  if (session_ == nullptr) {
    auto session = codec_->NewDecoder(video_);
    if (!session.ok()) return session.status();
    session_ = std::move(session).value();
  }
  return session_->DecodeRange(first, count);
}

int64_t EncodedVideoValue::FramesDecodedInternally() const {
  return session_ == nullptr ? 0 : session_->FramesDecodedInternally();
}

std::string EncodedVideoValue::Describe() const {
  return MediaValue::Describe() + " (" + codec_->name() + ", " +
         std::to_string(StoredBytes()) + " bytes)";
}

Result<std::shared_ptr<EncodedAudioValue>> EncodedAudioValue::Create(
    std::shared_ptr<const AudioCodec> codec, EncodedAudio audio) {
  if (codec == nullptr) return Status::InvalidArgument("null codec");
  if (codec->family() != audio.family) {
    return Status::InvalidArgument("codec family does not match stream");
  }
  MediaDataType decoded_type = MediaDataType::CompressedAudio(
      audio.family, audio.raw_type.channels(), audio.raw_type.element_rate());
  return std::shared_ptr<EncodedAudioValue>(new EncodedAudioValue(
      std::move(decoded_type), std::move(codec), std::move(audio)));
}

Result<AudioBlock> EncodedAudioValue::Samples(int64_t first,
                                              int64_t count) const {
  if (first < 0 || count < 0 || first + count > ElementCount()) {
    return Status::InvalidArgument("sample range out of bounds");
  }
  const int channels = audio_.raw_type.channels();
  AudioBlock out(channels, static_cast<int>(count));
  int64_t written = 0;
  while (written < count) {
    const int64_t frame = first + written;
    const int64_t chunk_index = frame / audio_.chunk_frames;
    const int64_t offset = frame % audio_.chunk_frames;
    auto chunk = codec_->DecodeChunk(audio_, chunk_index);
    if (!chunk.ok()) return chunk.status();
    const int64_t available = chunk.value().frame_count() - offset;
    const int64_t take = std::min(available, count - written);
    for (int64_t f = 0; f < take; ++f) {
      for (int c = 0; c < channels; ++c) {
        out.Set(static_cast<int>(written + f), c,
                chunk.value().At(static_cast<int>(offset + f), c));
      }
    }
    written += take;
  }
  return out;
}

std::string EncodedAudioValue::Describe() const {
  return MediaValue::Describe() + " (" +
         std::string(EncodingFamilyName(audio_.family)) + ", " +
         std::to_string(StoredBytes()) + " bytes)";
}

}  // namespace avdb

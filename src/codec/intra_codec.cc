#include "codec/intra_codec.h"

#include <algorithm>

#include "base/buffer_pool.h"
#include "base/work_pool.h"
#include "codec/bitio.h"
#include "codec/block_transform.h"
#include "codec/simd/kernels.h"

namespace avdb {

namespace {

/// Decoder over independently coded frames. Sequential random access needs
/// no inter-frame state; bulk ranges fan out across the work pool when the
/// stream was opened with concurrency > 1.
class IntraDecoderSession final : public VideoDecoderSession {
 public:
  explicit IntraDecoderSession(const EncodedVideo& video) : video_(video) {}

  Result<VideoFrame> DecodeFrame(int64_t index) override {
    if (index < 0 || index >= static_cast<int64_t>(video_.frames.size())) {
      return Status::InvalidArgument("frame index out of range");
    }
    ++decoded_;
    const auto& t = video_.raw_type;
    return IntraCodec::DecodeFrame(video_.frames[index].data, t.width(),
                                   t.height(), t.depth_bits(),
                                   video_.params.quality,
                                   video_.params.concurrency);
  }

  Result<std::vector<VideoFrame>> DecodeRange(int64_t first,
                                              int64_t count) override {
    if (first < 0 || count < 0 ||
        first + count > static_cast<int64_t>(video_.frames.size())) {
      return Status::InvalidArgument("decode range out of bounds");
    }
    const int width = video_.params.concurrency;
    if (width <= 1 || count <= 1) {
      return VideoDecoderSession::DecodeRange(first, count);
    }
    const auto& t = video_.raw_type;
    std::vector<Result<VideoFrame>> frames =
        WorkPool::Shared().ParallelMap<Result<VideoFrame>>(
            width, count, [&](int64_t i) {
              return IntraCodec::DecodeFrame(
                  video_.frames[static_cast<size_t>(first + i)].data,
                  t.width(), t.height(), t.depth_bits(),
                  video_.params.quality, /*concurrency=*/1);
            });
    std::vector<VideoFrame> out;
    out.reserve(static_cast<size_t>(count));
    for (auto& f : frames) {
      if (!f.ok()) return f.status();
      out.push_back(std::move(f).value());
    }
    decoded_ += count;
    return out;
  }

  int64_t FramesDecodedInternally() const override { return decoded_; }

 private:
  const EncodedVideo video_;
  int64_t decoded_ = 0;
};

/// Entropy-codes one colour plane into its own byte-aligned buffer. The
/// plane is read in place through a zero-copy view; the centered scratch
/// and the output backing store are pooled, so a warm encode allocates
/// nothing.
Buffer EncodePlaneBits(const VideoFrame& frame, int p, int quality) {
  BufferPool& pool = BufferPool::Shared();
  const PlaneView plane = frame.plane(p);
  BufferPool::I16Lease centered(&pool, plane.size());
  simd::ActiveKernels().u8_to_i16_center(plane.data(), centered->data(),
                                         plane.size());
  BitWriter writer(pool.AcquireBuffer(plane.size() / 2));
  block_transform::EncodePlane(centered->data(), frame.width(),
                               frame.height(), quality, &writer);
  return writer.Finish();
}

/// Decodes one plane sub-stream straight into `frame`'s plane `p` (planes
/// are disjoint storage, so concurrent plane tasks never alias).
Status DecodePlaneBits(const uint8_t* bits, size_t size, int p, int quality,
                       VideoFrame* frame) {
  BitReader reader(bits, size);
  BufferPool& pool = BufferPool::Shared();
  BufferPool::I16Lease centered(&pool, frame->plane_size());
  AVDB_RETURN_IF_ERROR(block_transform::DecodePlaneInto(
      frame->width(), frame->height(), quality, &reader, centered->data()));
  const PlaneSpan out = frame->plane_span(p);
  simd::ActiveKernels().i16_center_to_u8(centered->data(), out.data(),
                                         out.size());
  return Status::OK();
}

}  // namespace

Buffer IntraCodec::EncodeFrame(const VideoFrame& frame, int quality,
                               int concurrency) {
  const int planes = frame.plane_count();
  std::vector<Buffer> plane_bits = WorkPool::Shared().ParallelMap<Buffer>(
      std::min(concurrency, planes), planes,
      [&](int64_t p) {
        return EncodePlaneBits(frame, static_cast<int>(p), quality);
      });
  Buffer out;
  size_t total = 0;
  for (const Buffer& b : plane_bits) total += b.size() + 4;
  out.Reserve(total);
  for (Buffer& b : plane_bits) {
    out.AppendU32(static_cast<uint32_t>(b.size()));
    out.AppendBuffer(b);
    BufferPool::Shared().Release(std::move(b));  // pooled by EncodePlaneBits
  }
  return out;
}

Result<VideoFrame> IntraCodec::DecodeFrame(const Buffer& data, int width,
                                           int height, int depth_bits,
                                           int quality, int concurrency) {
  VideoFrame frame(width, height, depth_bits);
  const int planes = frame.plane_count();
  // Slice the per-plane sub-streams up front (cheap, sequential), then
  // decode each independently.
  BufferReader reader(data);
  std::vector<std::pair<size_t, size_t>> spans;  // offset, size
  spans.reserve(static_cast<size_t>(planes));
  for (int p = 0; p < planes; ++p) {
    auto size = reader.ReadU32();
    if (!size.ok()) return size.status();
    const size_t offset = reader.position();
    AVDB_RETURN_IF_ERROR(reader.Skip(size.value()));
    spans.emplace_back(offset, size.value());
  }
  if (concurrency > 1 && planes > 1) {
    std::vector<Status> statuses = WorkPool::Shared().ParallelMap<Status>(
        std::min(concurrency, planes), planes, [&](int64_t p) {
          const auto& span = spans[static_cast<size_t>(p)];
          return DecodePlaneBits(data.data() + span.first, span.second,
                                 static_cast<int>(p), quality, &frame);
        });
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
  } else {
    for (int p = 0; p < planes; ++p) {
      const auto& span = spans[static_cast<size_t>(p)];
      AVDB_RETURN_IF_ERROR(DecodePlaneBits(data.data() + span.first,
                                           span.second, p, quality, &frame));
    }
  }
  return frame;
}

Result<EncodedVideo> IntraCodec::Encode(const VideoValue& value,
                                        const VideoCodecParams& params) const {
  if (value.type().IsCompressed()) {
    return Status::InvalidArgument("encoder input must be raw video");
  }
  EncodedVideo out;
  out.raw_type = value.type();
  out.family = family();
  out.params = params;
  const int64_t n = value.FrameCount();
  out.frames.reserve(static_cast<size_t>(n));
  if (params.concurrency <= 1) {
    for (int64_t i = 0; i < n; ++i) {
      auto frame = value.Frame(i);
      if (!frame.ok()) return frame.status();
      EncodedFrame ef;
      ef.is_intra = true;
      ef.data = EncodeFrame(frame.value(), params.quality);
      out.frames.push_back(std::move(ef));
    }
    return out;
  }
  // Parallel path: frames are fetched serially (VideoValue::Frame may keep
  // per-value decode state and is not required to be thread-safe), in
  // batches to bound raw-frame memory, then encoded across the pool.
  // Ordered join keeps the output byte-identical to the serial loop.
  const int64_t batch =
      std::max<int64_t>(static_cast<int64_t>(params.concurrency) * 4, 16);
  for (int64_t start = 0; start < n; start += batch) {
    const int64_t count = std::min(batch, n - start);
    std::vector<VideoFrame> raw;
    raw.reserve(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      auto frame = value.Frame(start + i);
      if (!frame.ok()) return frame.status();
      raw.push_back(std::move(frame).value());
    }
    std::vector<Buffer> encoded = WorkPool::Shared().ParallelMap<Buffer>(
        params.concurrency, count, [&](int64_t i) {
          return EncodeFrame(raw[static_cast<size_t>(i)], params.quality);
        });
    for (Buffer& bits : encoded) {
      EncodedFrame ef;
      ef.is_intra = true;
      ef.data = std::move(bits);
      out.frames.push_back(std::move(ef));
    }
  }
  return out;
}

Result<std::unique_ptr<VideoDecoderSession>> IntraCodec::NewDecoder(
    const EncodedVideo& video) const {
  if (video.family != EncodingFamily::kIntra) {
    return Status::InvalidArgument("stream is not intra-coded");
  }
  return std::unique_ptr<VideoDecoderSession>(
      new IntraDecoderSession(video));
}

}  // namespace avdb

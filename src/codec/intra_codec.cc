#include "codec/intra_codec.h"

#include "codec/bitio.h"
#include "codec/block_transform.h"

namespace avdb {

namespace {

/// Plain sequential decoder: intra frames have no inter-frame state.
class IntraDecoderSession final : public VideoDecoderSession {
 public:
  explicit IntraDecoderSession(const EncodedVideo& video) : video_(video) {}

  Result<VideoFrame> DecodeFrame(int64_t index) override {
    if (index < 0 || index >= static_cast<int64_t>(video_.frames.size())) {
      return Status::InvalidArgument("frame index out of range");
    }
    ++decoded_;
    const auto& t = video_.raw_type;
    return IntraCodec::DecodeFrame(video_.frames[index].data, t.width(),
                                   t.height(), t.depth_bits(),
                                   video_.params.quality);
  }

  int64_t FramesDecodedInternally() const override { return decoded_; }

 private:
  const EncodedVideo video_;
  int64_t decoded_ = 0;
};

std::vector<int16_t> PlaneToCentered(const std::vector<uint8_t>& plane) {
  std::vector<int16_t> out(plane.size());
  for (size_t i = 0; i < plane.size(); ++i) {
    out[i] = static_cast<int16_t>(static_cast<int>(plane[i]) - 128);
  }
  return out;
}

std::vector<uint8_t> CenteredToPlane(const std::vector<int16_t>& centered) {
  std::vector<uint8_t> out(centered.size());
  for (size_t i = 0; i < centered.size(); ++i) {
    int v = centered[i] + 128;
    if (v < 0) v = 0;
    if (v > 255) v = 255;
    out[i] = static_cast<uint8_t>(v);
  }
  return out;
}

}  // namespace

Buffer IntraCodec::EncodeFrame(const VideoFrame& frame, int quality) {
  BitWriter writer;
  for (int p = 0; p < frame.plane_count(); ++p) {
    block_transform::EncodePlane(PlaneToCentered(frame.ExtractPlane(p)),
                                 frame.width(), frame.height(), quality,
                                 &writer);
  }
  return writer.Finish();
}

Result<VideoFrame> IntraCodec::DecodeFrame(const Buffer& data, int width,
                                           int height, int depth_bits,
                                           int quality) {
  VideoFrame frame(width, height, depth_bits);
  BitReader reader(data);
  for (int p = 0; p < frame.plane_count(); ++p) {
    auto plane = block_transform::DecodePlane(width, height, quality, &reader);
    if (!plane.ok()) return plane.status();
    AVDB_RETURN_IF_ERROR(frame.SetPlane(p, CenteredToPlane(plane.value())));
  }
  return frame;
}

Result<EncodedVideo> IntraCodec::Encode(const VideoValue& value,
                                        const VideoCodecParams& params) const {
  if (value.type().IsCompressed()) {
    return Status::InvalidArgument("encoder input must be raw video");
  }
  EncodedVideo out;
  out.raw_type = value.type();
  out.family = family();
  out.params = params;
  out.frames.reserve(static_cast<size_t>(value.FrameCount()));
  for (int64_t i = 0; i < value.FrameCount(); ++i) {
    auto frame = value.Frame(i);
    if (!frame.ok()) return frame.status();
    EncodedFrame ef;
    ef.is_intra = true;
    ef.data = EncodeFrame(frame.value(), params.quality);
    out.frames.push_back(std::move(ef));
  }
  return out;
}

Result<std::unique_ptr<VideoDecoderSession>> IntraCodec::NewDecoder(
    const EncodedVideo& video) const {
  if (video.family != EncodingFamily::kIntra) {
    return Status::InvalidArgument("stream is not intra-coded");
  }
  return std::unique_ptr<VideoDecoderSession>(
      new IntraDecoderSession(video));
}

}  // namespace avdb

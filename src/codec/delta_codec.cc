#include "codec/delta_codec.h"

#include "codec/bitio.h"

namespace avdb {

namespace {

// Encodes one frame's deltas against `ref` (all planes interleaved order),
// returning the reconstructed frame via `recon_out`.
Buffer EncodeDeltaFrame(const VideoFrame& cur, const VideoFrame& ref,
                        int step, VideoFrame* recon_out) {
  BitWriter writer;
  *recon_out = VideoFrame(cur.width(), cur.height(), cur.depth_bits());
  const auto& cur_data = cur.data();
  const auto& ref_data = ref.data();
  auto& recon = recon_out->data();
  // (zero-run, quantized-delta) pairs over the whole byte array.
  uint64_t run = 0;
  for (size_t i = 0; i < cur_data.size(); ++i) {
    const int delta = static_cast<int>(cur_data[i]) - ref_data[i];
    int q = delta >= 0 ? (delta + step / 2) / step : -((-delta + step / 2) / step);
    if (q == 0) {
      ++run;
      recon[i] = ref_data[i];
      continue;
    }
    writer.WriteVarint(run);
    writer.WriteSignedVarint(q);
    run = 0;
    int v = ref_data[i] + q * step;
    if (v < 0) v = 0;
    if (v > 255) v = 255;
    recon[i] = static_cast<uint8_t>(v);
  }
  // Trailing run terminator: run value with a zero delta sentinel.
  writer.WriteVarint(run);
  writer.WriteSignedVarint(0);
  return writer.Finish();
}

Result<VideoFrame> DecodeDeltaFrame(const Buffer& data, const VideoFrame& ref,
                                    int step) {
  VideoFrame out(ref.width(), ref.height(), ref.depth_bits());
  const auto& ref_data = ref.data();
  auto& out_data = out.data();
  BitReader reader(data);
  size_t i = 0;
  const size_t n = out_data.size();
  while (i < n) {
    auto run = reader.ReadVarint();
    if (!run.ok()) return run.status();
    auto q = reader.ReadSignedVarint();
    if (!q.ok()) return q.status();
    if (run.value() > n - i) return Status::DataLoss("delta run overflow");
    for (uint64_t r = 0; r < run.value(); ++r, ++i) out_data[i] = ref_data[i];
    if (q.value() == 0) {
      // Sentinel: remaining pixels (if any) are unchanged.
      for (; i < n; ++i) out_data[i] = ref_data[i];
      break;
    }
    if (i >= n) return Status::DataLoss("delta value past frame end");
    int v = ref_data[i] + static_cast<int>(q.value()) * step;
    if (v < 0) v = 0;
    if (v > 255) v = 255;
    out_data[i] = static_cast<uint8_t>(v);
    ++i;
  }
  return out;
}

VideoFrame GreyReference(int width, int height, int depth_bits) {
  VideoFrame f(width, height, depth_bits);
  for (auto& b : f.data()) b = 128;
  return f;
}

class DeltaDecoderSession final : public VideoDecoderSession {
 public:
  explicit DeltaDecoderSession(const EncodedVideo& video) : video_(video) {}

  Result<VideoFrame> DecodeFrame(int64_t index) override {
    if (index < 0 || index >= static_cast<int64_t>(video_.frames.size())) {
      return Status::InvalidArgument("frame index out of range");
    }
    const int step = DeltaCodec::StepForQuality(video_.params.quality);
    const auto& t = video_.raw_type;
    if (index < next_index_ || !have_ref_) {
      ref_ = GreyReference(t.width(), t.height(), t.depth_bits());
      have_ref_ = true;
      next_index_ = 0;
    }
    VideoFrame frame;
    while (next_index_ <= index) {
      auto decoded = DecodeDeltaFrame(
          video_.frames[static_cast<size_t>(next_index_)].data, ref_, step);
      if (!decoded.ok()) return decoded.status();
      frame = std::move(decoded).value();
      ref_ = frame;
      ++next_index_;
      ++decoded_;
    }
    return frame;
  }

  int64_t FramesDecodedInternally() const override { return decoded_; }

 private:
  const EncodedVideo video_;
  VideoFrame ref_;
  bool have_ref_ = false;
  int64_t next_index_ = 0;
  int64_t decoded_ = 0;
};

}  // namespace

int DeltaCodec::StepForQuality(int quality) {
  if (quality < 1) quality = 1;
  if (quality > 100) quality = 100;
  // quality 100 -> step 1 (lossless deltas), quality 1 -> step 16.
  return 1 + (100 - quality) * 15 / 99;
}

Result<EncodedVideo> DeltaCodec::Encode(const VideoValue& value,
                                        const VideoCodecParams& params) const {
  if (value.type().IsCompressed()) {
    return Status::InvalidArgument("encoder input must be raw video");
  }
  EncodedVideo out;
  out.raw_type = value.type();
  out.family = family();
  out.params = params;
  const int step = StepForQuality(params.quality);

  VideoFrame ref = GreyReference(value.width(), value.height(),
                                 value.depth_bits());
  for (int64_t i = 0; i < value.FrameCount(); ++i) {
    auto frame = value.Frame(i);
    if (!frame.ok()) return frame.status();
    EncodedFrame ef;
    // Only frame 0 is a (conventional) access point; every later frame
    // depends on its predecessor.
    ef.is_intra = i == 0;
    VideoFrame recon;
    ef.data = EncodeDeltaFrame(frame.value(), ref, step, &recon);
    ref = std::move(recon);
    out.frames.push_back(std::move(ef));
  }
  return out;
}

Result<std::unique_ptr<VideoDecoderSession>> DeltaCodec::NewDecoder(
    const EncodedVideo& video) const {
  if (video.family != EncodingFamily::kDelta) {
    return Status::InvalidArgument("stream is not delta-coded");
  }
  return std::unique_ptr<VideoDecoderSession>(new DeltaDecoderSession(video));
}

}  // namespace avdb

#include "codec/audio_codec.h"

namespace avdb {

namespace {

// IMA ADPCM tables (IMA Recommended Practices, 1992).
constexpr int kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                 -1, -1, -1, -1, 2, 4, 6, 8};
constexpr int kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

struct AdpcmState {
  int predictor = 0;  // int16 range
  int index = 0;      // 0..88
};

uint8_t AdpcmEncodeSample(AdpcmState* state, int16_t sample) {
  const int step = kStepTable[state->index];
  int diff = sample - state->predictor;
  uint8_t code = 0;
  if (diff < 0) {
    code = 8;
    diff = -diff;
  }
  int accum = step >> 3;
  if (diff >= step) {
    code |= 4;
    diff -= step;
    accum += step;
  }
  if (diff >= step >> 1) {
    code |= 2;
    diff -= step >> 1;
    accum += step >> 1;
  }
  if (diff >= step >> 2) {
    code |= 1;
    accum += step >> 2;
  }
  if (code & 8) {
    state->predictor -= accum;
  } else {
    state->predictor += accum;
  }
  if (state->predictor > 32767) state->predictor = 32767;
  if (state->predictor < -32768) state->predictor = -32768;
  state->index += kIndexTable[code];
  if (state->index < 0) state->index = 0;
  if (state->index > 88) state->index = 88;
  return code;
}

int16_t AdpcmDecodeSample(AdpcmState* state, uint8_t code) {
  const int step = kStepTable[state->index];
  int accum = step >> 3;
  if (code & 4) accum += step;
  if (code & 2) accum += step >> 1;
  if (code & 1) accum += step >> 2;
  if (code & 8) {
    state->predictor -= accum;
  } else {
    state->predictor += accum;
  }
  if (state->predictor > 32767) state->predictor = 32767;
  if (state->predictor < -32768) state->predictor = -32768;
  state->index += kIndexTable[code];
  if (state->index < 0) state->index = 0;
  if (state->index > 88) state->index = 88;
  return static_cast<int16_t>(state->predictor);
}

Status ValidateChunkIndex(const EncodedAudio& audio, int64_t index) {
  if (index < 0 || index >= static_cast<int64_t>(audio.chunks.size())) {
    return Status::InvalidArgument("chunk index out of range");
  }
  return Status::OK();
}

int FramesInChunk(const EncodedAudio& audio, int64_t index) {
  const int64_t start = index * audio.chunk_frames;
  int64_t n = audio.total_frames - start;
  if (n > audio.chunk_frames) n = audio.chunk_frames;
  return static_cast<int>(n);
}

}  // namespace

int64_t EncodedAudio::TotalBytes() const {
  int64_t total = 0;
  for (const auto& c : chunks) total += static_cast<int64_t>(c.size());
  return total;
}

Buffer EncodedAudio::Serialize() const {
  Buffer out;
  out.AppendU32(0x41564141);  // 'AVAA'
  out.AppendU8(static_cast<uint8_t>(family));
  out.AppendI32(raw_type.channels());
  out.AppendI64(raw_type.element_rate().num());
  out.AppendI64(raw_type.element_rate().den());
  out.AppendI32(chunk_frames);
  out.AppendI64(total_frames);
  out.AppendU32(static_cast<uint32_t>(chunks.size()));
  for (const auto& c : chunks) {
    out.AppendU32(static_cast<uint32_t>(c.size()));
    out.AppendBuffer(c);
  }
  return out;
}

Result<EncodedAudio> EncodedAudio::Deserialize(const Buffer& buffer) {
  BufferReader r(buffer);
  auto magic = r.ReadU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != 0x41564141) {
    return Status::DataLoss("bad encoded-audio magic");
  }
  EncodedAudio a;
  auto family = r.ReadU8();
  if (!family.ok()) return family.status();
  a.family = static_cast<EncodingFamily>(family.value());
  auto channels = r.ReadI32();
  if (!channels.ok()) return channels.status();
  auto rate_num = r.ReadI64();
  if (!rate_num.ok()) return rate_num.status();
  auto rate_den = r.ReadI64();
  if (!rate_den.ok()) return rate_den.status();
  if (rate_den.value() == 0) return Status::DataLoss("zero rate denominator");
  a.raw_type = MediaDataType::RawAudio(
      channels.value(), Rational(rate_num.value(), rate_den.value()));
  auto chunk_frames = r.ReadI32();
  if (!chunk_frames.ok()) return chunk_frames.status();
  a.chunk_frames = chunk_frames.value();
  auto total = r.ReadI64();
  if (!total.ok()) return total.status();
  a.total_frames = total.value();
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  for (uint32_t i = 0; i < count.value(); ++i) {
    auto size = r.ReadU32();
    if (!size.ok()) return size.status();
    Buffer c;
    c.Resize(size.value());
    AVDB_RETURN_IF_ERROR(r.ReadBytes(c.data(), size.value()));
    a.chunks.push_back(std::move(c));
  }
  return a;
}

uint8_t MulawCodec::CompandSample(int16_t pcm) {
  // G.711 µ-law with bias 0x84, 8 segments.
  const int kBias = 0x84;
  const int kClip = 32635;
  int sign = (pcm >> 8) & 0x80;
  int sample = sign != 0 ? -pcm : pcm;
  if (sample > kClip) sample = kClip;
  sample += kBias;
  int exponent = 7;
  for (int mask = 0x4000; (sample & mask) == 0 && exponent > 0; mask >>= 1) {
    --exponent;
  }
  const int mantissa = (sample >> (exponent + 3)) & 0x0F;
  return static_cast<uint8_t>(~(sign | (exponent << 4) | mantissa));
}

int16_t MulawCodec::ExpandSample(uint8_t mulaw) {
  const int kBias = 0x84;
  mulaw = static_cast<uint8_t>(~mulaw);
  const int sign = mulaw & 0x80;
  const int exponent = (mulaw >> 4) & 0x07;
  const int mantissa = mulaw & 0x0F;
  int sample = ((mantissa << 3) + kBias) << exponent;
  sample -= kBias;
  return static_cast<int16_t>(sign != 0 ? -sample : sample);
}

Result<EncodedAudio> MulawCodec::Encode(const AudioValue& value) const {
  EncodedAudio out;
  out.raw_type = value.type();
  out.family = family();
  out.chunk_frames = kDefaultChunkFrames;
  out.total_frames = value.SampleCount();
  const int channels = value.channels();
  for (int64_t start = 0; start < value.SampleCount();
       start += kDefaultChunkFrames) {
    const int64_t n =
        std::min<int64_t>(kDefaultChunkFrames, value.SampleCount() - start);
    auto block = value.Samples(start, n);
    if (!block.ok()) return block.status();
    Buffer chunk;
    chunk.Reserve(static_cast<size_t>(n) * channels);
    for (int f = 0; f < n; ++f) {
      for (int c = 0; c < channels; ++c) {
        chunk.AppendU8(CompandSample(block.value().At(f, c)));
      }
    }
    out.chunks.push_back(std::move(chunk));
  }
  return out;
}

Result<AudioBlock> MulawCodec::DecodeChunk(const EncodedAudio& audio,
                                           int64_t index) const {
  AVDB_RETURN_IF_ERROR(ValidateChunkIndex(audio, index));
  const int channels = audio.raw_type.channels();
  const int frames = FramesInChunk(audio, index);
  const Buffer& chunk = audio.chunks[static_cast<size_t>(index)];
  if (chunk.size() != static_cast<size_t>(frames) * channels) {
    return Status::DataLoss("mulaw chunk size mismatch");
  }
  AudioBlock block(channels, frames);
  size_t i = 0;
  for (int f = 0; f < frames; ++f) {
    for (int c = 0; c < channels; ++c) {
      block.Set(f, c, ExpandSample(chunk[i++]));
    }
  }
  return block;
}

Result<EncodedAudio> AdpcmCodec::Encode(const AudioValue& value) const {
  EncodedAudio out;
  out.raw_type = value.type();
  out.family = family();
  out.chunk_frames = kDefaultChunkFrames;
  out.total_frames = value.SampleCount();
  const int channels = value.channels();
  for (int64_t start = 0; start < value.SampleCount();
       start += kDefaultChunkFrames) {
    const int64_t n =
        std::min<int64_t>(kDefaultChunkFrames, value.SampleCount() - start);
    auto block = value.Samples(start, n);
    if (!block.ok()) return block.status();
    Buffer chunk;
    // Header: per channel, initial predictor (i16) + index (u8).
    std::vector<AdpcmState> states(static_cast<size_t>(channels));
    for (int c = 0; c < channels; ++c) {
      AdpcmState& s = states[static_cast<size_t>(c)];
      s.predictor = n > 0 ? block.value().At(0, c) : 0;
      s.index = 0;
      chunk.AppendU16(static_cast<uint16_t>(s.predictor));
      chunk.AppendU8(0);
    }
    // Body: 4-bit codes, two per byte, channel-interleaved.
    uint8_t pending = 0;
    bool have_pending = false;
    for (int f = 0; f < n; ++f) {
      for (int c = 0; c < channels; ++c) {
        const uint8_t code =
            AdpcmEncodeSample(&states[static_cast<size_t>(c)],
                              block.value().At(f, c));
        if (!have_pending) {
          pending = code;
          have_pending = true;
        } else {
          chunk.AppendU8(static_cast<uint8_t>((pending << 4) | code));
          have_pending = false;
        }
      }
    }
    if (have_pending) chunk.AppendU8(static_cast<uint8_t>(pending << 4));
    out.chunks.push_back(std::move(chunk));
  }
  return out;
}

Result<AudioBlock> AdpcmCodec::DecodeChunk(const EncodedAudio& audio,
                                           int64_t index) const {
  AVDB_RETURN_IF_ERROR(ValidateChunkIndex(audio, index));
  const int channels = audio.raw_type.channels();
  const int frames = FramesInChunk(audio, index);
  const Buffer& chunk = audio.chunks[static_cast<size_t>(index)];
  BufferReader r(chunk);
  std::vector<AdpcmState> states(static_cast<size_t>(channels));
  for (int c = 0; c < channels; ++c) {
    auto pred = r.ReadU16();
    if (!pred.ok()) return pred.status();
    auto idx = r.ReadU8();
    if (!idx.ok()) return idx.status();
    states[static_cast<size_t>(c)].predictor =
        static_cast<int16_t>(pred.value());
    states[static_cast<size_t>(c)].index = idx.value();
  }
  AudioBlock block(channels, frames);
  uint8_t byte = 0;
  bool low_nibble = false;
  for (int f = 0; f < frames; ++f) {
    for (int c = 0; c < channels; ++c) {
      uint8_t code;
      if (!low_nibble) {
        auto b = r.ReadU8();
        if (!b.ok()) return b.status();
        byte = b.value();
        code = byte >> 4;
        low_nibble = true;
      } else {
        code = byte & 0x0F;
        low_nibble = false;
      }
      block.Set(f, c,
                AdpcmDecodeSample(&states[static_cast<size_t>(c)], code));
    }
  }
  return block;
}

}  // namespace avdb

#include "codec/block_transform.h"

#include <cmath>

#include "base/logging.h"

namespace avdb {
namespace block_transform {

namespace {

// DCT-II basis, c[u][x] = a(u) cos((2x+1)uπ/16).
struct DctTables {
  double basis[kBlockSize][kBlockSize];
  DctTables() {
    for (int u = 0; u < kBlockSize; ++u) {
      const double a = u == 0 ? std::sqrt(1.0 / kBlockSize)
                              : std::sqrt(2.0 / kBlockSize);
      for (int x = 0; x < kBlockSize; ++x) {
        basis[u][x] = a * std::cos((2 * x + 1) * u * M_PI / (2 * kBlockSize));
      }
    }
  }
};

const DctTables& Tables() {
  static const DctTables* tables = new DctTables();
  return *tables;
}

// JPEG Annex K luminance quantization table, in raster order.
constexpr int kBaseQuant[kBlockArea] = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

// Zigzag scan order: zigzag index -> raster index.
constexpr int kZigzag[kBlockArea] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,   //
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,  //
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,  //
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

}  // namespace

CoeffBlock ForwardDct(const Block& spatial) {
  const auto& t = Tables();
  double tmp[kBlockSize][kBlockSize];
  // Rows.
  for (int y = 0; y < kBlockSize; ++y) {
    for (int u = 0; u < kBlockSize; ++u) {
      double acc = 0;
      for (int x = 0; x < kBlockSize; ++x) {
        acc += t.basis[u][x] * spatial[y * kBlockSize + x];
      }
      tmp[y][u] = acc;
    }
  }
  // Columns.
  CoeffBlock out;
  for (int v = 0; v < kBlockSize; ++v) {
    for (int u = 0; u < kBlockSize; ++u) {
      double acc = 0;
      for (int y = 0; y < kBlockSize; ++y) acc += t.basis[v][y] * tmp[y][u];
      out[v * kBlockSize + u] = static_cast<int32_t>(std::lround(acc));
    }
  }
  return out;
}

Block InverseDct(const CoeffBlock& coeffs) {
  const auto& t = Tables();
  double tmp[kBlockSize][kBlockSize];
  // Columns (inverse).
  for (int u = 0; u < kBlockSize; ++u) {
    for (int y = 0; y < kBlockSize; ++y) {
      double acc = 0;
      for (int v = 0; v < kBlockSize; ++v) {
        acc += t.basis[v][y] * coeffs[v * kBlockSize + u];
      }
      tmp[y][u] = acc;
    }
  }
  Block out;
  for (int y = 0; y < kBlockSize; ++y) {
    for (int x = 0; x < kBlockSize; ++x) {
      double acc = 0;
      for (int u = 0; u < kBlockSize; ++u) acc += t.basis[u][x] * tmp[y][u];
      long v = std::lround(acc);
      if (v < INT16_MIN) v = INT16_MIN;
      if (v > INT16_MAX) v = INT16_MAX;
      out[y * kBlockSize + x] = static_cast<int16_t>(v);
    }
  }
  return out;
}

int QuantStep(int index, int quality) {
  AVDB_CHECK(index >= 0 && index < kBlockArea);
  if (quality < 1) quality = 1;
  if (quality > 100) quality = 100;
  // libjpeg scaling: quality 50 -> base table, 100 -> all ones.
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  int step = (kBaseQuant[index] * scale + 50) / 100;
  if (step < 1) step = 1;
  if (step > 1024) step = 1024;
  return step;
}

void Quantize(CoeffBlock* coeffs, int quality) {
  for (int i = 0; i < kBlockArea; ++i) {
    const int step = QuantStep(i, quality);
    const int32_t v = (*coeffs)[i];
    (*coeffs)[i] = v >= 0 ? (v + step / 2) / step : -((-v + step / 2) / step);
  }
}

void Dequantize(CoeffBlock* coeffs, int quality) {
  for (int i = 0; i < kBlockArea; ++i) {
    (*coeffs)[i] *= QuantStep(i, quality);
  }
}

void EncodeBlock(const CoeffBlock& coeffs, int32_t* dc_predictor,
                 BitWriter* out) {
  // DC: delta against previous block's DC.
  const int32_t dc = coeffs[0];
  out->WriteSignedVarint(dc - *dc_predictor);
  *dc_predictor = dc;
  // AC: (zero-run, level) pairs in zigzag order; run==0x3F means EOB.
  int run = 0;
  for (int zi = 1; zi < kBlockArea; ++zi) {
    const int32_t level = coeffs[kZigzag[zi]];
    if (level == 0) {
      ++run;
      continue;
    }
    out->WriteVarint(static_cast<uint64_t>(run));
    out->WriteSignedVarint(level);
    run = 0;
  }
  out->WriteVarint(0x3F);  // end of block
}

Result<CoeffBlock> DecodeBlock(int32_t* dc_predictor, BitReader* in) {
  CoeffBlock coeffs{};
  auto dc_delta = in->ReadSignedVarint();
  if (!dc_delta.ok()) return dc_delta.status();
  *dc_predictor += static_cast<int32_t>(dc_delta.value());
  coeffs[0] = *dc_predictor;
  int zi = 1;
  for (;;) {
    auto run = in->ReadVarint();
    if (!run.ok()) return run.status();
    if (run.value() == 0x3F) break;
    zi += static_cast<int>(run.value());
    if (zi >= kBlockArea) return Status::DataLoss("AC run past block end");
    auto level = in->ReadSignedVarint();
    if (!level.ok()) return level.status();
    coeffs[kZigzag[zi]] = static_cast<int32_t>(level.value());
    ++zi;
  }
  return coeffs;
}

void EncodePlane(const std::vector<int16_t>& plane, int width, int height,
                 int quality, BitWriter* out) {
  AVDB_CHECK(plane.size() == static_cast<size_t>(width) * height);
  int32_t dc_predictor = 0;
  for (int by = 0; by < height; by += kBlockSize) {
    for (int bx = 0; bx < width; bx += kBlockSize) {
      Block block;
      for (int y = 0; y < kBlockSize; ++y) {
        const int sy = std::min(by + y, height - 1);
        for (int x = 0; x < kBlockSize; ++x) {
          const int sx = std::min(bx + x, width - 1);
          block[y * kBlockSize + x] =
              plane[static_cast<size_t>(sy) * width + sx];
        }
      }
      CoeffBlock coeffs = ForwardDct(block);
      Quantize(&coeffs, quality);
      EncodeBlock(coeffs, &dc_predictor, out);
    }
  }
}

Result<std::vector<int16_t>> DecodePlane(int width, int height, int quality,
                                         BitReader* in) {
  std::vector<int16_t> plane(static_cast<size_t>(width) * height, 0);
  int32_t dc_predictor = 0;
  for (int by = 0; by < height; by += kBlockSize) {
    for (int bx = 0; bx < width; bx += kBlockSize) {
      auto coeffs = DecodeBlock(&dc_predictor, in);
      if (!coeffs.ok()) return coeffs.status();
      Dequantize(&coeffs.value(), quality);
      const Block block = InverseDct(coeffs.value());
      for (int y = 0; y < kBlockSize && by + y < height; ++y) {
        for (int x = 0; x < kBlockSize && bx + x < width; ++x) {
          plane[static_cast<size_t>(by + y) * width + bx + x] =
              block[y * kBlockSize + x];
        }
      }
    }
  }
  return plane;
}

}  // namespace block_transform
}  // namespace avdb

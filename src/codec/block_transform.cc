#include "codec/block_transform.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "base/logging.h"
#include "codec/simd/kernels.h"

namespace avdb {
namespace block_transform {

namespace {

// JPEG Annex K luminance quantization table, in raster order.
constexpr int kBaseQuant[kBlockArea] = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

// Zigzag scan order: zigzag index -> raster index.
constexpr int kZigzag[kBlockArea] = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,   //
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,  //
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,  //
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

}  // namespace

const simd::QuantTable& QualityQuantTable(int quality) {
  static const std::array<simd::QuantTable, 100> tables = [] {
    std::array<simd::QuantTable, 100> t{};
    for (int q = 1; q <= 100; ++q) {
      simd::QuantTable& qt = t[q - 1];
      for (int i = 0; i < kBlockArea; ++i) {
        const int step = QuantStep(i, q);
        qt.step[i] = step;
        qt.half[i] = step / 2;
        // ceil(2^32/step); exact-division magic for step in [2, 1024].
        qt.recip[i] =
            step == 1 ? 0
                      : static_cast<uint32_t>(
                            ((uint64_t{1} << 32) + step - 1) /
                            static_cast<uint64_t>(step));
      }
    }
    return t;
  }();
  return tables[std::clamp(quality, 1, 100) - 1];
}

CoeffBlock ForwardDct(const Block& spatial) {
  CoeffBlock out;
  simd::ActiveKernels().fdct8x8(spatial.data(), out.data());
  return out;
}

Block InverseDct(const CoeffBlock& coeffs) {
  Block out;
  simd::ActiveKernels().idct8x8(coeffs.data(), out.data());
  return out;
}

int QuantStep(int index, int quality) {
  AVDB_CHECK(index >= 0 && index < kBlockArea);
  if (quality < 1) quality = 1;
  if (quality > 100) quality = 100;
  // libjpeg scaling: quality 50 -> base table, 100 -> all ones.
  const int scale = quality < 50 ? 5000 / quality : 200 - 2 * quality;
  int step = (kBaseQuant[index] * scale + 50) / 100;
  if (step < 1) step = 1;
  if (step > 1024) step = 1024;
  return step;
}

void Quantize(CoeffBlock* coeffs, int quality) {
  simd::ActiveKernels().quantize(coeffs->data(), QualityQuantTable(quality));
}

void Dequantize(CoeffBlock* coeffs, int quality) {
  simd::ActiveKernels().dequantize(coeffs->data(), QualityQuantTable(quality));
}

void EncodeBlock(const CoeffBlock& coeffs, int32_t* dc_predictor,
                 BitWriter* out) {
  // DC: delta against previous block's DC.
  const int32_t dc = coeffs[0];
  out->WriteSignedVarint(dc - *dc_predictor);
  *dc_predictor = dc;
  // AC: (zero-run, level) pairs in zigzag order; run==0x3F means EOB.
  int run = 0;
  for (int zi = 1; zi < kBlockArea; ++zi) {
    const int32_t level = coeffs[kZigzag[zi]];
    if (level == 0) {
      ++run;
      continue;
    }
    out->WriteVarint(static_cast<uint64_t>(run));
    out->WriteSignedVarint(level);
    run = 0;
  }
  out->WriteVarint(0x3F);  // end of block
}

Result<CoeffBlock> DecodeBlock(int32_t* dc_predictor, BitReader* in) {
  CoeffBlock coeffs{};
  auto dc_delta = in->ReadSignedVarint();
  if (!dc_delta.ok()) return dc_delta.status();
  *dc_predictor += static_cast<int32_t>(dc_delta.value());
  coeffs[0] = *dc_predictor;
  int zi = 1;
  for (;;) {
    auto run = in->ReadVarint();
    if (!run.ok()) return run.status();
    if (run.value() == 0x3F) break;
    zi += static_cast<int>(run.value());
    if (zi >= kBlockArea) return Status::DataLoss("AC run past block end");
    auto level = in->ReadSignedVarint();
    if (!level.ok()) return level.status();
    coeffs[kZigzag[zi]] = static_cast<int32_t>(level.value());
    ++zi;
  }
  return coeffs;
}

void EncodePlane(const int16_t* plane, int width, int height, int quality,
                 BitWriter* out) {
  const simd::CodecKernels& k = simd::ActiveKernels();
  const simd::QuantTable& qt = QualityQuantTable(quality);
  int32_t dc_predictor = 0;
  Block block;
  CoeffBlock coeffs;
  for (int by = 0; by < height; by += kBlockSize) {
    for (int bx = 0; bx < width; bx += kBlockSize) {
      if (by + kBlockSize <= height && bx + kBlockSize <= width) {
        // Interior block: straight row copies.
        for (int y = 0; y < kBlockSize; ++y) {
          std::memcpy(&block[y * kBlockSize],
                      plane + static_cast<size_t>(by + y) * width + bx,
                      kBlockSize * sizeof(int16_t));
        }
      } else {
        // Edge block: replicate the last row/column.
        for (int y = 0; y < kBlockSize; ++y) {
          const int sy = std::min(by + y, height - 1);
          for (int x = 0; x < kBlockSize; ++x) {
            const int sx = std::min(bx + x, width - 1);
            block[y * kBlockSize + x] =
                plane[static_cast<size_t>(sy) * width + sx];
          }
        }
      }
      k.fdct8x8(block.data(), coeffs.data());
      k.quantize(coeffs.data(), qt);
      EncodeBlock(coeffs, &dc_predictor, out);
    }
  }
}

void EncodePlane(const std::vector<int16_t>& plane, int width, int height,
                 int quality, BitWriter* out) {
  AVDB_CHECK(plane.size() == static_cast<size_t>(width) * height);
  EncodePlane(plane.data(), width, height, quality, out);
}

void EncodePlaneWithRecon(const int16_t* plane, int width, int height,
                          int quality, BitWriter* out, int16_t* recon) {
  const simd::CodecKernels& k = simd::ActiveKernels();
  const simd::QuantTable& qt = QualityQuantTable(quality);
  int32_t dc_predictor = 0;
  Block block;
  CoeffBlock coeffs;
  for (int by = 0; by < height; by += kBlockSize) {
    for (int bx = 0; bx < width; bx += kBlockSize) {
      const bool interior =
          by + kBlockSize <= height && bx + kBlockSize <= width;
      if (interior) {
        for (int y = 0; y < kBlockSize; ++y) {
          std::memcpy(&block[y * kBlockSize],
                      plane + static_cast<size_t>(by + y) * width + bx,
                      kBlockSize * sizeof(int16_t));
        }
      } else {
        for (int y = 0; y < kBlockSize; ++y) {
          const int sy = std::min(by + y, height - 1);
          for (int x = 0; x < kBlockSize; ++x) {
            const int sx = std::min(bx + x, width - 1);
            block[y * kBlockSize + x] =
                plane[static_cast<size_t>(sy) * width + sx];
          }
        }
      }
      k.fdct8x8(block.data(), coeffs.data());
      k.quantize(coeffs.data(), qt);
      EncodeBlock(coeffs, &dc_predictor, out);
      // The kernels are pure integer, so replaying dequant+idct on the
      // coefficients just written reproduces the decoder's output exactly —
      // no need to round-trip the entropy layer.
      k.dequantize(coeffs.data(), qt);
      k.idct8x8(coeffs.data(), block.data());
      if (interior) {
        for (int y = 0; y < kBlockSize; ++y) {
          std::memcpy(recon + static_cast<size_t>(by + y) * width + bx,
                      &block[y * kBlockSize], kBlockSize * sizeof(int16_t));
        }
      } else {
        for (int y = 0; y < kBlockSize && by + y < height; ++y) {
          for (int x = 0; x < kBlockSize && bx + x < width; ++x) {
            recon[static_cast<size_t>(by + y) * width + bx + x] =
                block[y * kBlockSize + x];
          }
        }
      }
    }
  }
}

Status DecodePlaneInto(int width, int height, int quality, BitReader* in,
                       int16_t* out) {
  const simd::CodecKernels& k = simd::ActiveKernels();
  const simd::QuantTable& qt = QualityQuantTable(quality);
  int32_t dc_predictor = 0;
  Block block;
  for (int by = 0; by < height; by += kBlockSize) {
    for (int bx = 0; bx < width; bx += kBlockSize) {
      auto coeffs = DecodeBlock(&dc_predictor, in);
      if (!coeffs.ok()) return coeffs.status();
      k.dequantize(coeffs.value().data(), qt);
      k.idct8x8(coeffs.value().data(), block.data());
      if (by + kBlockSize <= height && bx + kBlockSize <= width) {
        for (int y = 0; y < kBlockSize; ++y) {
          std::memcpy(out + static_cast<size_t>(by + y) * width + bx,
                      &block[y * kBlockSize], kBlockSize * sizeof(int16_t));
        }
      } else {
        for (int y = 0; y < kBlockSize && by + y < height; ++y) {
          for (int x = 0; x < kBlockSize && bx + x < width; ++x) {
            out[static_cast<size_t>(by + y) * width + bx + x] =
                block[y * kBlockSize + x];
          }
        }
      }
    }
  }
  return Status::OK();
}

Result<std::vector<int16_t>> DecodePlane(int width, int height, int quality,
                                         BitReader* in) {
  std::vector<int16_t> plane(static_cast<size_t>(width) * height, 0);
  Status s = DecodePlaneInto(width, height, quality, in, plane.data());
  if (!s.ok()) return s;
  return plane;
}

}  // namespace block_transform
}  // namespace avdb

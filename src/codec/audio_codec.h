#ifndef AVDB_CODEC_AUDIO_CODEC_H_
#define AVDB_CODEC_AUDIO_CODEC_H_

#include <memory>
#include <string>
#include <vector>

#include "base/buffer.h"
#include "base/result.h"
#include "media/audio_value.h"
#include "media/frame.h"
#include "media/media_type.h"

namespace avdb {

/// A complete encoded audio stream, chunked so the media store and stream
/// scheduler can fetch it incrementally. Each chunk decodes independently
/// (per-chunk predictor reset), so chunks are the audio random-access unit.
struct EncodedAudio {
  MediaDataType raw_type;  ///< Channels/rate of the decoded PCM.
  EncodingFamily family = EncodingFamily::kMulaw;
  /// Sample frames per chunk (last chunk may be short).
  int chunk_frames = 0;
  int64_t total_frames = 0;
  std::vector<Buffer> chunks;

  int64_t TotalBytes() const;

  Buffer Serialize() const;
  static Result<EncodedAudio> Deserialize(const Buffer& buffer);
};

/// An audio compression scheme; all implementations chunk at
/// `kDefaultChunkFrames` sample frames.
class AudioCodec {
 public:
  static constexpr int kDefaultChunkFrames = 1024;

  virtual ~AudioCodec() = default;

  virtual std::string name() const = 0;
  virtual EncodingFamily family() const = 0;

  /// Encodes all samples of `value`.
  virtual Result<EncodedAudio> Encode(const AudioValue& value) const = 0;

  /// Decodes chunk `index` back to PCM.
  virtual Result<AudioBlock> DecodeChunk(const EncodedAudio& audio,
                                         int64_t index) const = 0;
};

/// ITU G.711 µ-law companding: 16-bit PCM -> 8 bits/sample (2:1), the
/// classic voice-grade codec of early workstation audio.
class MulawCodec final : public AudioCodec {
 public:
  std::string name() const override { return "avdb-mulaw"; }
  EncodingFamily family() const override { return EncodingFamily::kMulaw; }
  Result<EncodedAudio> Encode(const AudioValue& value) const override;
  Result<AudioBlock> DecodeChunk(const EncodedAudio& audio,
                                 int64_t index) const override;

  /// Scalar companding helpers (exposed for tests).
  static uint8_t CompandSample(int16_t pcm);
  static int16_t ExpandSample(uint8_t mulaw);
};

/// IMA ADPCM: 4 bits/sample (4:1) with an adaptive step size; per-chunk
/// predictor header so chunks decode independently.
class AdpcmCodec final : public AudioCodec {
 public:
  std::string name() const override { return "avdb-adpcm"; }
  EncodingFamily family() const override { return EncodingFamily::kAdpcm; }
  Result<EncodedAudio> Encode(const AudioValue& value) const override;
  Result<AudioBlock> DecodeChunk(const EncodedAudio& audio,
                                 int64_t index) const override;
};

}  // namespace avdb

#endif  // AVDB_CODEC_AUDIO_CODEC_H_

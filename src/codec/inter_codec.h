#ifndef AVDB_CODEC_INTER_CODEC_H_
#define AVDB_CODEC_INTER_CODEC_H_

#include "codec/video_codec.h"

namespace avdb {

/// MPEG-class predictive codec: GOPs of `gop_size` frames opening with an
/// intra frame followed by P-frames, each P-frame coded as per-macroblock
/// motion vectors (16×16 three-step search against the *reconstructed*
/// previous frame, so encoder and decoder stay in lock-step) plus a
/// transform-coded residual. Random access only at I-frames — the property
/// that makes inter-coded video cheap to store but costly to seek (§3.1).
/// Structural stand-in for the paper's `MPEG_VideoValue` (DESIGN.md §5).
class InterCodec final : public VideoCodec {
 public:
  std::string name() const override { return "avdb-inter"; }
  EncodingFamily family() const override { return EncodingFamily::kInter; }

  Result<EncodedVideo> Encode(const VideoValue& value,
                              const VideoCodecParams& params) const override;
  Result<std::unique_ptr<VideoDecoderSession>> NewDecoder(
      const EncodedVideo& video) const override;

 private:
  friend class InterDecoderSession;
};

}  // namespace avdb

#endif  // AVDB_CODEC_INTER_CODEC_H_

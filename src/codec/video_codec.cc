#include "codec/video_codec.h"

namespace avdb {

Result<std::vector<VideoFrame>> VideoDecoderSession::DecodeRange(
    int64_t first, int64_t count) {
  if (first < 0 || count < 0) {
    return Status::InvalidArgument("bad decode range");
  }
  std::vector<VideoFrame> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    auto frame = DecodeFrame(first + i);
    if (!frame.ok()) return frame.status();
    out.push_back(std::move(frame).value());
  }
  return out;
}

int64_t EncodedFrame::SizeBytes() const {
  int64_t total = static_cast<int64_t>(data.size());
  for (const auto& l : layers) total += static_cast<int64_t>(l.size());
  return total + 2;  // is_intra flag + layer count
}

int64_t EncodedVideo::TotalBytes() const {
  int64_t total = 0;
  for (const auto& f : frames) total += f.SizeBytes();
  return total;
}

Result<int64_t> EncodedVideo::AccessPointBefore(int64_t index) const {
  if (index < 0 || index >= static_cast<int64_t>(frames.size())) {
    return Status::InvalidArgument("frame index out of range");
  }
  for (int64_t i = index; i >= 0; --i) {
    if (frames[static_cast<size_t>(i)].is_intra) return i;
  }
  return Status::DataLoss("no access point precedes frame " +
                          std::to_string(index));
}

Buffer EncodedVideo::Serialize() const {
  Buffer out;
  out.AppendU32(0x41564456);  // 'AVDV'
  out.AppendU8(static_cast<uint8_t>(family));
  out.AppendI32(raw_type.width());
  out.AppendI32(raw_type.height());
  out.AppendI32(raw_type.depth_bits());
  out.AppendI64(raw_type.element_rate().num());
  out.AppendI64(raw_type.element_rate().den());
  out.AppendI32(params.quality);
  out.AppendI32(params.gop_size);
  out.AppendI32(params.search_range);
  out.AppendI32(params.layer_count);
  out.AppendU32(static_cast<uint32_t>(frames.size()));
  for (const auto& f : frames) {
    out.AppendU8(f.is_intra ? 1 : 0);
    out.AppendU32(static_cast<uint32_t>(f.data.size()));
    out.AppendBuffer(f.data);
    out.AppendU8(static_cast<uint8_t>(f.layers.size()));
    for (const auto& l : f.layers) {
      out.AppendU32(static_cast<uint32_t>(l.size()));
      out.AppendBuffer(l);
    }
  }
  return out;
}

Result<EncodedVideo> EncodedVideo::Deserialize(const Buffer& buffer) {
  BufferReader r(buffer);
  auto magic = r.ReadU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != 0x41564456) {
    return Status::DataLoss("bad encoded-video magic");
  }
  EncodedVideo v;
  auto family = r.ReadU8();
  if (!family.ok()) return family.status();
  v.family = static_cast<EncodingFamily>(family.value());

  auto width = r.ReadI32();
  if (!width.ok()) return width.status();
  auto height = r.ReadI32();
  if (!height.ok()) return height.status();
  auto depth = r.ReadI32();
  if (!depth.ok()) return depth.status();
  auto rate_num = r.ReadI64();
  if (!rate_num.ok()) return rate_num.status();
  auto rate_den = r.ReadI64();
  if (!rate_den.ok()) return rate_den.status();
  if (rate_den.value() == 0) return Status::DataLoss("zero rate denominator");
  if (depth.value() != 8 && depth.value() != 24) {
    return Status::DataLoss("bad stored depth");
  }
  if (width.value() <= 0 || height.value() <= 0) {
    return Status::DataLoss("bad stored video geometry");
  }
  // Decoders allocate width*height planes before reading a single payload
  // byte, so implausible (corrupt) geometry must be rejected here rather
  // than surfacing as an allocation failure downstream.
  if (static_cast<int64_t>(width.value()) * height.value() >
      (int64_t{1} << 26)) {
    return Status::DataLoss("implausible stored video geometry");
  }
  v.raw_type =
      MediaDataType::RawVideo(width.value(), height.value(), depth.value(),
                              Rational(rate_num.value(), rate_den.value()));

  auto quality = r.ReadI32();
  if (!quality.ok()) return quality.status();
  v.params.quality = quality.value();
  auto gop = r.ReadI32();
  if (!gop.ok()) return gop.status();
  v.params.gop_size = gop.value();
  auto range = r.ReadI32();
  if (!range.ok()) return range.status();
  v.params.search_range = range.value();
  auto layers = r.ReadI32();
  if (!layers.ok()) return layers.status();
  v.params.layer_count = layers.value();

  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  // Every stored frame needs at least its is_intra byte, so a count beyond
  // the remaining payload is corrupt — reject before reserving, and size
  // every buffer only after checking the bytes are actually present, so a
  // corrupt length field surfaces as DataLoss instead of a huge alloc.
  if (count.value() > r.remaining()) {
    return Status::DataLoss("frame count exceeds payload");
  }
  v.frames.reserve(count.value());
  for (uint32_t i = 0; i < count.value(); ++i) {
    EncodedFrame f;
    auto intra = r.ReadU8();
    if (!intra.ok()) return intra.status();
    f.is_intra = intra.value() != 0;
    auto size = r.ReadU32();
    if (!size.ok()) return size.status();
    if (size.value() > r.remaining()) {
      return Status::DataLoss("frame size exceeds payload");
    }
    f.data.Resize(size.value());
    AVDB_RETURN_IF_ERROR(r.ReadBytes(f.data.data(), size.value()));
    auto layer_count = r.ReadU8();
    if (!layer_count.ok()) return layer_count.status();
    for (uint8_t l = 0; l < layer_count.value(); ++l) {
      auto lsize = r.ReadU32();
      if (!lsize.ok()) return lsize.status();
      if (lsize.value() > r.remaining()) {
        return Status::DataLoss("layer size exceeds payload");
      }
      Buffer layer;
      layer.Resize(lsize.value());
      AVDB_RETURN_IF_ERROR(r.ReadBytes(layer.data(), lsize.value()));
      f.layers.push_back(std::move(layer));
    }
    v.frames.push_back(std::move(f));
  }
  return v;
}

}  // namespace avdb

#ifndef AVDB_CODEC_BITIO_H_
#define AVDB_CODEC_BITIO_H_

#include <cstdint>

#include "base/buffer.h"
#include "base/result.h"

namespace avdb {

/// MSB-first bit writer over a Buffer. The entropy-coding layer of every
/// codec in `src/codec/` writes through this.
class BitWriter {
 public:
  BitWriter() = default;

  /// Writer over a caller-supplied backing store (typically leased from
  /// BufferPool::AcquireBuffer): contents are discarded, capacity is
  /// reused, and Finish() hands the same storage back — so warm encode
  /// paths append without touching the heap.
  explicit BitWriter(Buffer backing) : out_(std::move(backing)) {
    out_.Clear();
  }

  /// Appends the low `count` bits of `bits` (MSB first). count in [0, 57].
  void WriteBits(uint64_t bits, int count);

  /// Unsigned LEB128-style varint (7 bits per group).
  void WriteVarint(uint64_t v);

  /// Signed value via zigzag mapping then varint.
  void WriteSignedVarint(int64_t v);

  /// Pads to a byte boundary with zero bits and returns the buffer.
  Buffer Finish();

  /// Bits written so far (before padding).
  int64_t BitCount() const { return total_bits_; }

 private:
  Buffer out_;
  uint64_t acc_ = 0;
  int acc_bits_ = 0;
  int64_t total_bits_ = 0;
};

/// MSB-first bit reader; all reads fail with DataLoss past the end, so a
/// truncated stored chunk surfaces as a Status, never as UB.
class BitReader {
 public:
  explicit BitReader(const Buffer& buffer)
      : data_(buffer.data()), size_bits_(static_cast<int64_t>(buffer.size()) * 8) {}
  BitReader(const uint8_t* data, size_t size_bytes)
      : data_(data), size_bits_(static_cast<int64_t>(size_bytes) * 8) {}

  /// Reads `count` bits (MSB first). count in [0, 57].
  Result<uint64_t> ReadBits(int count);

  Result<uint64_t> ReadVarint();
  Result<int64_t> ReadSignedVarint();

  int64_t BitsRemaining() const { return size_bits_ - pos_bits_; }

 private:
  const uint8_t* data_;
  int64_t size_bits_;
  int64_t pos_bits_ = 0;
};

}  // namespace avdb

#endif  // AVDB_CODEC_BITIO_H_

#ifndef AVDB_DB_LOCK_MANAGER_H_
#define AVDB_DB_LOCK_MANAGER_H_

#include <map>
#include <set>
#include <string>

#include "base/result.h"
#include "db/object.h"

namespace avdb {

/// Lock mode on a database object.
enum class LockMode { kShared, kExclusive };

/// Object-granularity shared/exclusive locking — the concurrency-control
/// slice of "AV database systems should provide the functionality found in
/// traditional database systems" (§3.1). Non-blocking: a conflicting
/// request fails immediately with Unavailable (callers in a discrete-event
/// world retry or report), which also makes deadlock impossible.
///
/// Playback streams take shared locks for their whole (long!) duration —
/// the §3.3 observation that "client requests can tie up resources, or the
/// database itself, for significant periods of time" becomes directly
/// visible to writers.
class LockManager {
 public:
  LockManager() = default;

  /// Acquires `mode` on `oid` for `owner`. Re-acquisition by the same owner
  /// is idempotent; upgrade (shared->exclusive) succeeds only when the
  /// owner is the sole holder.
  Status Acquire(Oid oid, LockMode mode, const std::string& owner);

  /// Releases whatever `owner` holds on `oid`; idempotent.
  void Release(Oid oid, const std::string& owner);

  /// Releases everything `owner` holds.
  void ReleaseAll(const std::string& owner);

  /// True when `owner` holds at least `mode` on `oid`.
  bool Holds(Oid oid, LockMode mode, const std::string& owner) const;

  /// Number of holders on an object (0 = unlocked).
  size_t HolderCount(Oid oid) const;

  struct Stats {
    int64_t acquired = 0;
    int64_t conflicts = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::set<std::string> shared_holders;
    std::string exclusive_holder;  // empty when none
  };

  std::map<Oid, Entry> locks_;
  Stats stats_;
};

}  // namespace avdb

#endif  // AVDB_DB_LOCK_MANAGER_H_

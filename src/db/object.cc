#include "db/object.h"

namespace avdb {

std::ostream& operator<<(std::ostream& os, Oid oid) {
  return os << "oid:" << oid.value();
}

std::string ScalarToString(const ScalarValue& v) {
  if (std::holds_alternative<std::string>(v)) return std::get<std::string>(v);
  return std::to_string(std::get<int64_t>(v));
}

Status DbObject::SetScalar(const std::string& attr, ScalarValue value) {
  scalars_[attr] = std::move(value);
  return Status::OK();
}

Result<ScalarValue> DbObject::GetScalar(const std::string& attr) const {
  auto it = scalars_.find(attr);
  if (it == scalars_.end()) {
    return Status::NotFound("scalar attribute " + class_name_ + "." + attr +
                            " unset on object");
  }
  return it->second;
}

Result<const MediaAttrState*> DbObject::FindMediaAttr(
    const std::string& attr) const {
  auto it = media_.find(attr);
  if (it == media_.end() || !it->second.HasValue()) {
    return Status::NotFound("media attribute " + class_name_ + "." + attr +
                            " unset on object");
  }
  return &it->second;
}

Result<const TcompInstance*> DbObject::FindTcomp(
    const std::string& name) const {
  auto it = tcomps_.find(name);
  if (it == tcomps_.end()) {
    return Status::NotFound("tcomp " + class_name_ + "." + name +
                            " unset on object");
  }
  return &it->second;
}

}  // namespace avdb

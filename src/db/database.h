#ifndef AVDB_DB_DATABASE_H_
#define AVDB_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "activity/composite.h"
#include "activity/cost_model.h"
#include "activity/graph.h"
#include "activity/sinks.h"
#include "activity/sources.h"
#include "db/lock_manager.h"
#include "db/object.h"
#include "db/query.h"
#include "db/schema.h"
#include "net/channel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/admission.h"
#include "sched/event_engine.h"
#include "sched/jitter.h"
#include "sched/service_queue.h"
#include "storage/device_manager.h"

namespace avdb {

/// Construction knobs of an AV database system.
struct AvDatabaseConfig {
  /// Shared read-cache budget across devices (0 disables).
  int64_t cache_bytes = 8 * 1024 * 1024;
  /// Hardware decode/processing units at the database site (admission pool
  /// "db.decoders") — the shared special-purpose hardware of §3.3.
  int decoder_units = 4;
  /// Stream buffer memory at the database (admission pool "db.buffers").
  int64_t buffer_pool_bytes = 16 * 1024 * 1024;
  /// Per-admitted-stream buffer demand.
  int64_t buffer_bytes_per_stream = 512 * 1024;
  /// Jitter model seed; 0 runs without injected jitter.
  uint64_t jitter_seed = 0;
  /// Processing-cost model of the database platform.
  CostModel costs = CostModel::Accelerated();
  /// Fetch lead time handed to database-resident sources.
  WorldTime source_preroll = WorldTime::FromMillis(80);
  /// When true every added device's store is mounted for durability: its
  /// directory is journaled on-device (format on first open, recover on
  /// reopen) and survives crashes. Off by default — an unmounted store is
  /// byte-identical to the pre-journal storage format.
  bool durable_storage = false;
  /// Journal region size per device when `durable_storage` is set.
  int64_t journal_bytes = MediaStore::kDefaultJournalBytes;
  /// When true (the default) the database owns a MetricsRegistry and a
  /// virtual-time Tracer, and every layer it assembles — admission, jitter,
  /// stores, channels, activities — is bound to them. Off, nothing is
  /// allocated and every instrumented path degrades to one null check.
  bool observability = true;
  /// Trace ring capacity (events) when `observability` is set.
  int64_t trace_capacity =
      static_cast<int64_t>(obs::Tracer::kDefaultCapacity);
};

/// A started stream: the admission ticket and reservations it holds, so
/// stopping it returns every resource. Returned by StartStream.
struct StreamHandle {
  int64_t id = 0;
  MediaActivity* source = nullptr;
};

/// §3.1 definition 4 made concrete: "an AV database system is a software/
/// hardware entity managing a collection of AV values and AV activities."
///
/// This facade assembles the whole platform of Fig. 3 — devices with
/// modeled timing, admission control over their bandwidths and units,
/// network channels to clients, the shared event engine, schema/objects/
/// queries/locks/versions, and mediation of activity creation (§4.2:
/// "requests by applications to create and connect activities are mediated
/// by the database system which maintains responsibility for controlling
/// access to shared resources").
///
/// The §4.3 pseudo-code maps onto it almost line by line; see
/// examples/quickstart.cpp.
class AvDatabase {
 public:
  explicit AvDatabase(AvDatabaseConfig config = {});

  AvDatabase(const AvDatabase&) = delete;
  AvDatabase& operator=(const AvDatabase&) = delete;

  // --- platform ------------------------------------------------------------

  EventEngine& engine() { return engine_; }
  ActivityGraph& graph() { return graph_; }
  DeviceManager& devices() { return devices_; }
  AdmissionController& admission() { return admission_; }
  LockManager& locks() { return locks_; }
  const AvDatabaseConfig& config() const { return config_; }

  /// Environment for activities located at the database.
  ActivityEnv env() {
    return ActivityEnv{&engine_, jitter_.get(), metrics_.get(), tracer_.get()};
  }

  /// Shared instruments; nullptr when config().observability is off.
  obs::MetricsRegistry* metrics() { return metrics_.get(); }
  obs::Tracer* tracer() { return tracer_.get(); }

  /// Registers a storage device; creates its admission pools
  /// ("<name>.bandwidth" in bytes/s and, for exclusive devices,
  /// "<name>.arm" with capacity 1) and its service queue.
  Result<BlockDevice*> AddDevice(const std::string& name,
                                 DeviceProfile profile);

  /// Registers a network channel to a client site. The channel carries its
  /// own bandwidth-reservation ledger, drawn on by NewConnection.
  Result<ChannelPtr> AddChannel(const std::string& name,
                                Channel::Profile profile);

  Result<ChannelPtr> GetChannel(const std::string& name);
  Result<ServiceQueue*> DeviceQueue(const std::string& device_name);

  // --- schema ----------------------------------------------------------------

  Status DefineClass(ClassDef class_def);
  Result<const ClassDef*> GetClass(const std::string& name) const;
  std::vector<std::string> ClassNames() const;

  // --- objects ---------------------------------------------------------------

  /// Creates an instance of a defined class and returns its reference.
  Result<Oid> NewObject(const std::string& class_name);
  Result<DbObject*> GetObject(Oid oid);
  Result<const DbObject*> GetObject(Oid oid) const;

  /// Sets a scalar attribute (schema-checked; equality index maintained).
  Status SetScalar(Oid oid, const std::string& attr, ScalarValue value);
  Result<ScalarValue> GetScalar(Oid oid, const std::string& attr) const;

  // --- media attributes --------------------------------------------------------

  /// Stores `value` as the new current version of `oid.attr` on
  /// `device_name` (placement is the caller's, §3.3). Checks the schema's
  /// media type and quality factor (a stored value must be able to satisfy
  /// the declared quality). Earlier versions remain readable.
  Status SetMediaAttribute(Oid oid, const std::string& attr,
                           const MediaValue& value,
                           const std::string& device_name);

  /// Loads a stored version (-1 = current) back into memory.
  Result<MediaValuePtr> LoadMediaAttribute(Oid oid, const std::string& attr,
                                           int version = -1);

  /// Version history of a media attribute (oldest first).
  Result<std::vector<MediaVersion>> MediaHistory(Oid oid,
                                                 const std::string& attr) const;

  /// Device currently holding the current version — client-visible
  /// placement (§3.3).
  Result<std::string> WhereIsAttribute(Oid oid,
                                       const std::string& attr_path) const;

  /// Moves the current version to another device, paying the modeled copy
  /// time the paper warns about. Returns that duration.
  Result<WorldTime> MoveAttribute(Oid oid, const std::string& attr_path,
                                  const std::string& to_device);

  // --- temporal composites -----------------------------------------------------

  /// Stores `value` as track `track` of tcomp `tcomp` with the given
  /// timeline placement (Fig. 1's per-instance timing).
  Status SetTcompTrack(Oid oid, const std::string& tcomp,
                       const std::string& track, const MediaValue& value,
                       const std::string& device_name, WorldTime start,
                       WorldTime duration);

  Result<const TcompInstance*> GetTcomp(Oid oid,
                                        const std::string& tcomp) const;

  // --- query -------------------------------------------------------------------

  /// `select <class> where <predicate>` — returns *references* only
  /// (§3.1). Uses the equality index when the predicate pins an attribute.
  Result<std::vector<Oid>> Select(const std::string& class_name,
                                  const std::string& where) const;

  /// Pre-parsed variant.
  Result<std::vector<Oid>> Select(const std::string& class_name,
                                  const PredicatePtr& predicate) const;

  // --- activity mediation (§4.3 interface) ---------------------------------------

  /// `new activity VideoSource for <Class>.<attr>` + `bind`: creates a
  /// database-located source for the media attribute at `attr_path`
  /// (either "attr" or "tcomp.track"), wires its store/device queue, loads
  /// and binds the stored value, and admits its resource demands
  /// (device bandwidth, buffer, decoder, exclusive arm). Fails with
  /// ResourceExhausted when the platform cannot carry another stream —
  /// exactly the failure §4.3 assigns to statement 1.
  ///
  /// The stream also takes a shared lock on the object for its lifetime
  /// (owner = `session`).
  Result<StreamHandle> NewSourceFor(const std::string& session, Oid oid,
                                    const std::string& attr_path);

  /// Quality-negotiated variant (§4.1): the client names a quality factor,
  /// never a representation. When the stored representation is scalable and
  /// a layer subset satisfies `quality`, the source binds a restricted view
  /// that reads (and is admitted for) only those layers' bytes; otherwise
  /// the full value is used, provided it can satisfy the quality at all
  /// (InvalidArgument when it cannot).
  Result<StreamHandle> NewSourceFor(const std::string& session, Oid oid,
                                    const std::string& attr_path,
                                    const VideoQuality& quality);

  /// Recording (§4.2's active-state *recording* operation): creates a
  /// database-located VideoWriter whose captured frames become, at end of
  /// stream, the next version of `oid.attr` on `device`. The session holds
  /// an exclusive lock on the object while the recorder exists.
  Result<std::shared_ptr<VideoWriter>> NewRecorderFor(
      const std::string& session, Oid oid, const std::string& attr,
      const std::string& device, MediaDataType video_type);

  /// Composite variant for a whole tcomp: `new activity MultiSource` with
  /// one child per stored track, each offset per the instance timeline and
  /// joined to one sync domain. `sink_sync` (from the client's MultiSink)
  /// may be null for an unsynchronized run.
  Result<StreamHandle> NewMultiSourceFor(const std::string& session, Oid oid,
                                         const std::string& tcomp,
                                         SyncController* sink_sync);

  /// `new connection from <source>.<port> to <sink>.<port>` over an
  /// optional channel; reserves channel bandwidth for the port's nominal
  /// rate and fails when the link is oversubscribed (§4.3 statement 3).
  Result<Connection*> NewConnection(MediaActivity* from,
                                    const std::string& out_port,
                                    MediaActivity* to,
                                    const std::string& in_port,
                                    const std::string& channel_name = "");

  /// Starts a stream's source activity (`start videostream`).
  Status StartStream(const StreamHandle& handle);

  /// Pauses a running stream: production stops but the source keeps its
  /// position, its admission ticket and its locks (the "VCR pause" every
  /// §3.2 editing station needs).
  Status PauseStream(const StreamHandle& handle);

  /// Resumes a paused stream from where it stopped: remaining elements get
  /// a fresh presentation schedule starting one preroll from now.
  Status ResumeStream(const StreamHandle& handle);

  /// Stops the stream and returns every resource it held (admission
  /// ticket, channel reservations, locks).
  Status StopStream(const StreamHandle& handle);

  /// Ends a session: stops its streams and releases its locks.
  Status CloseSession(const std::string& session);

  /// Runs the platform's virtual time forward.
  int64_t RunUntilIdle() { return engine_.RunUntilIdle(); }
  int64_t RunUntil(WorldTime t) { return engine_.RunUntil(t); }

  /// Human-readable inventory of devices, channels, pools and streams.
  std::string DescribePlatform() const;

  // --- backup & recovery (§2's requirement list) -----------------------------

  /// Serializes the entire database — schema, objects, timelines, version
  /// records and every stored blob's bytes — into one self-contained
  /// backup image.
  Result<Buffer> SaveBackup() const;

  /// Restores a backup image into this (empty) database. Devices must be
  /// registered first under the same names; fails with FailedPrecondition
  /// if the database already holds classes or objects.
  Status RestoreBackup(const Buffer& image);

 private:
  struct StreamState {
    std::string session;
    Oid oid;
    MediaActivityPtr source;
    AdmissionTicket ticket;
    /// Channel reservations to undo: (channel, bytes/s).
    std::vector<std::pair<ChannelPtr, int64_t>> reservations;
  };

  /// Resolves "attr" or "tcomp.track" to the attribute state + defs.
  struct ResolvedAttr {
    const MediaAttrState* state;
    AttrType type;
    /// Track placement when the path names a tcomp track.
    WorldTime start_offset;
  };
  Result<ResolvedAttr> ResolveMediaPath(const DbObject& object,
                                        const std::string& attr_path) const;

  /// Blob naming: "o<id>.<attr path>.v<version>".
  static std::string BlobName(Oid oid, const std::string& attr_path,
                              int version);

  /// Stores one media value as the next version of `state`.
  Status StoreVersion(Oid oid, const std::string& attr_path,
                      const MediaValue& value, const std::string& device_name,
                      MediaAttrState* state);

  /// Creates (unstarted) a typed source for a resolved attribute and
  /// collects its admission demands, already interned to pool ids so
  /// FinishStream admits on the id fast path. `quality` (optional)
  /// restricts scalable representations to a satisfying layer subset.
  Result<MediaActivityPtr> MakeSource(const std::string& name, Oid oid,
                                      const std::string& attr_path,
                                      const ResolvedAttr& resolved,
                                      std::vector<PooledDemand>* demands,
                                      const VideoQuality* quality = nullptr);

  /// Registers a stream and takes its lock.
  Result<StreamHandle> FinishStream(const std::string& session, Oid oid,
                                    MediaActivityPtr source,
                                    std::vector<PooledDemand> demands);

  void UpdateIndex(const std::string& class_name, const std::string& attr,
                   const DbObject& object);

  AvDatabaseConfig config_;
  EventEngine engine_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<JitterModel> jitter_;
  ActivityGraph graph_;
  DeviceManager devices_;
  AdmissionController admission_;
  LockManager locks_;

  std::map<std::string, ClassDef> classes_;
  std::map<Oid, std::unique_ptr<DbObject>> objects_;
  std::map<std::string, std::vector<Oid>> extents_;  // class -> oids
  /// Equality index: class.attr -> rendered value -> oids.
  std::map<std::string, std::multimap<std::string, Oid>> index_;

  std::map<std::string, std::unique_ptr<ServiceQueue>> device_queues_;
  std::map<std::string, ChannelPtr> channels_;

  uint64_t next_oid_ = 1;
  int64_t next_stream_id_ = 1;
  std::map<int64_t, StreamState> streams_;
  int64_t next_activity_serial_ = 1;
};

}  // namespace avdb

#endif  // AVDB_DB_DATABASE_H_

#ifndef AVDB_DB_SCHEMA_H_
#define AVDB_DB_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "base/result.h"
#include "media/media_type.h"
#include "media/quality.h"

namespace avdb {

/// Types an attribute of a database class can take. Scalars are queryable;
/// media attributes hold AV values by reference; tracks of a temporal
/// composite are declared via `TcompDef` (§4.1's `tcomp` construct).
enum class AttrType {
  kString,
  kInt,
  kDate,   ///< stored as "YYYY-MM-DD" strings, compared lexicographically
  kVideo,
  kAudio,
  kText,
};

std::string_view AttrTypeName(AttrType type);
bool IsMediaAttrType(AttrType type);

/// One attribute of a class. Media attributes may carry a quality factor
/// (§4.1: "quality factors are optional in class definitions; if absent,
/// stored values can be of varying quality").
struct AttributeDef {
  std::string name;
  AttrType type = AttrType::kString;
  /// Quality factor for kVideo attributes.
  std::optional<VideoQuality> video_quality;
  /// Quality factor for kAudio attributes.
  std::optional<AudioQuality> audio_quality;
};

/// One track inside a temporal composite (e.g. Newscast.clip.videoTrack).
struct TrackDef {
  std::string name;
  AttrType type = AttrType::kVideo;  // must be a media type
  std::optional<VideoQuality> video_quality;
  std::optional<AudioQuality> audio_quality;
};

/// §4.1's `tcomp` construct: "within a class definition, temporally
/// correlated attributes are grouped using a tcomp construct"; per-instance
/// timing comes from a timeline diagram (Fig. 1).
struct TcompDef {
  std::string name;
  std::vector<TrackDef> tracks;

  const TrackDef* FindTrack(const std::string& track_name) const;
};

/// A database class: named attributes plus temporal composites. The running
/// example is the paper's `Newscast`:
///
///   class Newscast {
///     String title; ...
///     tcomp clip { VideoValue videoTrack; AudioValue englishTrack; ... }
///   }
class ClassDef {
 public:
  ClassDef() = default;
  explicit ClassDef(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a scalar or media attribute (AlreadyExists on name collision
  /// with any attribute or tcomp).
  Status AddAttribute(AttributeDef attr);

  /// Adds a temporal composite (tracks must be media-typed and uniquely
  /// named within the tcomp).
  Status AddTcomp(TcompDef tcomp);

  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  const std::vector<TcompDef>& tcomps() const { return tcomps_; }

  const AttributeDef* FindAttribute(const std::string& attr_name) const;
  const TcompDef* FindTcomp(const std::string& tcomp_name) const;

  /// Pretty declaration in the paper's §4.1 syntax.
  std::string ToString() const;

 private:
  bool NameTaken(const std::string& name) const;

  std::string name_;
  std::vector<AttributeDef> attributes_;
  std::vector<TcompDef> tcomps_;
};

}  // namespace avdb

#endif  // AVDB_DB_SCHEMA_H_

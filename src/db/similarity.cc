#include "db/similarity.h"

#include <algorithm>
#include <cmath>

namespace avdb {

Result<VideoSignature> VideoSignature::Extract(const VideoValue& video) {
  const int64_t frames = video.FrameCount();
  if (frames <= 0) return Status::InvalidArgument("empty video value");
  VideoSignature signature;

  for (int segment = 0; segment < kSegments; ++segment) {
    const int64_t first = segment * frames / kSegments;
    int64_t last = (segment + 1) * frames / kSegments;
    if (last <= first) last = first + 1;
    if (last > frames) last = frames;

    std::array<double, kBins> histogram{};
    double motion = 0;
    int64_t samples = 0;
    int64_t motion_samples = 0;
    VideoFrame previous;
    bool have_previous = false;

    // Up to 4 evenly spaced probe frames per segment keep extraction cheap
    // for long values.
    const int64_t span = last - first;
    const int64_t step = std::max<int64_t>(1, span / 4);
    for (int64_t i = first; i < last; i += step) {
      auto frame = video.Frame(i);
      if (!frame.ok()) return frame.status();
      // Luma histogram over component 0 (a contiguous plane).
      const PlaneView luma = frame.value().plane(0);
      const uint8_t* data = luma.data();
      for (size_t p = 0; p < luma.size(); ++p) {
        ++histogram[static_cast<size_t>(data[p]) * kBins / 256];
        ++samples;
      }
      if (have_previous) {
        auto mae = frame.value().MeanAbsoluteError(previous);
        if (mae.ok()) {
          motion += mae.value() / 255.0;
          ++motion_samples;
        }
      }
      previous = std::move(frame).value();
      have_previous = true;
    }

    double* segment_features =
        &signature.features_[static_cast<size_t>(segment) * (kBins + 1)];
    for (int b = 0; b < kBins; ++b) {
      segment_features[b] = samples == 0 ? 0 : histogram[static_cast<size_t>(b)] / static_cast<double>(samples);
    }
    segment_features[kBins] =
        motion_samples == 0 ? 0 : motion / static_cast<double>(motion_samples);
  }
  return signature;
}

double VideoSignature::DistanceTo(const VideoSignature& other) const {
  double distance = 0;
  for (size_t i = 0; i < features_.size(); ++i) {
    distance += std::abs(features_[i] - other.features_[i]);
  }
  return distance;
}

Buffer VideoSignature::Serialize() const {
  Buffer out;
  out.AppendU32(0x41565349);  // 'AVSI'
  out.AppendU32(static_cast<uint32_t>(features_.size()));
  for (double f : features_) out.AppendF64(f);
  return out;
}

Result<VideoSignature> VideoSignature::Deserialize(const Buffer& buffer) {
  BufferReader r(buffer);
  auto magic = r.ReadU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != 0x41565349) {
    return Status::DataLoss("bad signature magic");
  }
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  VideoSignature signature;
  if (count.value() != signature.features_.size()) {
    return Status::DataLoss("signature size mismatch");
  }
  for (auto& f : signature.features_) {
    auto v = r.ReadF64();
    if (!v.ok()) return v.status();
    f = v.value();
  }
  return signature;
}

void SimilarityIndex::Add(Oid oid, const std::string& attr_path,
                          VideoSignature signature) {
  for (auto& entry : entries_) {
    if (entry.oid == oid && entry.attr_path == attr_path) {
      entry.signature = std::move(signature);
      return;
    }
  }
  entries_.push_back({oid, attr_path, std::move(signature)});
}

bool SimilarityIndex::Remove(Oid oid, const std::string& attr_path) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->oid == oid && it->attr_path == attr_path) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<SimilarityIndex::Match> SimilarityIndex::FindSimilar(
    const VideoSignature& query, int k) const {
  std::vector<Match> matches;
  matches.reserve(entries_.size());
  for (const auto& entry : entries_) {
    matches.push_back(
        {entry.oid, entry.attr_path, query.DistanceTo(entry.signature)});
  }
  std::sort(matches.begin(), matches.end(),
            [](const Match& a, const Match& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.oid < b.oid;
            });
  if (k >= 0 && static_cast<size_t>(k) < matches.size()) {
    matches.resize(static_cast<size_t>(k));
  }
  return matches;
}

Result<std::vector<SimilarityIndex::Match>> SimilarityIndex::FindSimilarTo(
    Oid oid, const std::string& attr_path, int k) const {
  const Entry* self = nullptr;
  for (const auto& entry : entries_) {
    if (entry.oid == oid && entry.attr_path == attr_path) {
      self = &entry;
      break;
    }
  }
  if (self == nullptr) {
    return Status::NotFound("no signature registered for the query entry");
  }
  auto matches = FindSimilar(self->signature, k + 1);
  std::vector<Match> out;
  for (auto& match : matches) {
    if (match.oid == oid && match.attr_path == attr_path) continue;
    out.push_back(std::move(match));
    if (k >= 0 && out.size() == static_cast<size_t>(k)) break;
  }
  return out;
}

}  // namespace avdb

#include "db/database.h"

#include <algorithm>

#include "base/logging.h"
#include "codec/scalable_codec.h"
#include "storage/value_serializer.h"

namespace avdb {

namespace {

/// Bytes/second a stored representation demands from its device when
/// streamed at its natural rate. Bound video/audio values know their own
/// stored footprint (e.g. a scalable layer view reads fewer bytes than the
/// blob holds); other kinds fall back to the version record.
double StoredRate(const MediaVersion& version, const MediaValue& value) {
  const double seconds = value.NaturalDuration().ToSecondsF();
  if (seconds <= 0) return 0;
  int64_t bytes = version.stored_bytes;
  if (const auto* video = dynamic_cast<const VideoValue*>(&value)) {
    bytes = video->StoredBytes();
  } else if (const auto* audio = dynamic_cast<const AudioValue*>(&value)) {
    bytes = audio->StoredBytes();
  }
  return static_cast<double>(bytes) / seconds;
}

Status CheckMediaType(AttrType declared, const MediaValue& value) {
  switch (declared) {
    case AttrType::kVideo:
      if (value.kind() != MediaKind::kVideo) {
        return Status::InvalidArgument("attribute expects video");
      }
      return Status::OK();
    case AttrType::kAudio:
      if (value.kind() != MediaKind::kAudio) {
        return Status::InvalidArgument("attribute expects audio");
      }
      return Status::OK();
    case AttrType::kText:
      if (value.kind() != MediaKind::kText) {
        return Status::InvalidArgument("attribute expects a text stream");
      }
      return Status::OK();
    default:
      return Status::InvalidArgument("attribute is not media-typed");
  }
}

Status CheckQuality(const std::optional<VideoQuality>& vq,
                    const std::optional<AudioQuality>& aq,
                    const MediaValue& value) {
  if (vq.has_value() && !vq->SatisfiableBy(value.type())) {
    return Status::InvalidArgument(
        "stored value " + value.type().ToString() +
        " cannot satisfy declared quality " + vq->ToString());
  }
  if (aq.has_value() && !AudioQualitySatisfiableBy(*aq, value.type())) {
    return Status::InvalidArgument(
        "stored value " + value.type().ToString() +
        " cannot satisfy declared quality " +
        std::string(AudioQualityName(*aq)));
  }
  return Status::OK();
}

}  // namespace

AvDatabase::AvDatabase(AvDatabaseConfig config)
    : config_(config),
      graph_(ActivityEnv{&engine_, nullptr}),
      devices_(config.cache_bytes) {
  if (config_.observability) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    tracer_ = std::make_unique<obs::Tracer>(
        static_cast<size_t>(config_.trace_capacity));
    tracer_->SetClock([engine = &engine_] { return engine->now_ns(); });
    admission_.BindObservability(metrics_.get(), tracer_.get());
    engine_.BindObservability(metrics_.get());
  }
  if (config_.jitter_seed != 0) {
    jitter_ = std::make_unique<JitterModel>(
        JitterModel::Workstation(config_.jitter_seed));
    jitter_->BindTo(metrics_.get());
  }
  graph_ = ActivityGraph(env());
  AVDB_CHECK(admission_
                 .RegisterPool("db.decoders",
                               static_cast<double>(config_.decoder_units))
                 .ok());
  AVDB_CHECK(admission_
                 .RegisterPool("db.buffers",
                               static_cast<double>(config_.buffer_pool_bytes))
                 .ok());
}

// --- platform ----------------------------------------------------------------

Result<BlockDevice*> AvDatabase::AddDevice(const std::string& name,
                                           DeviceProfile profile) {
  const bool exclusive = profile.exclusive;
  const int64_t bandwidth = profile.transfer_bytes_per_sec;
  auto device = devices_.CreateDevice(name, std::move(profile));
  if (!device.ok()) return device.status();
  if (config_.durable_storage) {
    auto mounted = devices_.MountStore(name, config_.journal_bytes);
    if (!mounted.ok()) return mounted.status();
  }
  if (metrics_ != nullptr) {
    auto store = devices_.GetStore(name);
    if (store.ok()) {
      store.value()->BindObservability(metrics_.get(), tracer_.get());
    }
  }
  AVDB_RETURN_IF_ERROR(admission_.RegisterPool(
      name + ".bandwidth", static_cast<double>(bandwidth)));
  if (exclusive) {
    AVDB_RETURN_IF_ERROR(admission_.RegisterPool(name + ".arm", 1));
  }
  device_queues_[name] = std::make_unique<ServiceQueue>(name + ".queue");
  return device;
}

Result<ChannelPtr> AvDatabase::AddChannel(const std::string& name,
                                          Channel::Profile profile) {
  if (channels_.count(name) > 0) {
    return Status::AlreadyExists("channel exists: " + name);
  }
  // Channels keep their own reservation ledger (Channel::ReserveBandwidth);
  // no admission pool is duplicated for them.
  auto channel = std::make_shared<Channel>(name, profile);
  if (metrics_ != nullptr) {
    channel->BindObservability(metrics_.get(), tracer_.get());
  }
  channels_[name] = channel;
  return channel;
}

Result<ChannelPtr> AvDatabase::GetChannel(const std::string& name) {
  auto it = channels_.find(name);
  if (it == channels_.end()) return Status::NotFound("channel: " + name);
  return it->second;
}

Result<ServiceQueue*> AvDatabase::DeviceQueue(const std::string& device_name) {
  auto it = device_queues_.find(device_name);
  if (it == device_queues_.end()) {
    return Status::NotFound("device queue: " + device_name);
  }
  return it->second.get();
}

// --- schema --------------------------------------------------------------------

Status AvDatabase::DefineClass(ClassDef class_def) {
  if (class_def.name().empty()) {
    return Status::InvalidArgument("class needs a name");
  }
  if (classes_.count(class_def.name()) > 0) {
    return Status::AlreadyExists("class exists: " + class_def.name());
  }
  const std::string name = class_def.name();
  classes_.emplace(name, std::move(class_def));
  extents_[name];
  return Status::OK();
}

Result<const ClassDef*> AvDatabase::GetClass(const std::string& name) const {
  auto it = classes_.find(name);
  if (it == classes_.end()) return Status::NotFound("class: " + name);
  return &it->second;
}

std::vector<std::string> AvDatabase::ClassNames() const {
  std::vector<std::string> names;
  names.reserve(classes_.size());
  for (const auto& [name, def] : classes_) names.push_back(name);
  return names;
}

// --- objects --------------------------------------------------------------------

Result<Oid> AvDatabase::NewObject(const std::string& class_name) {
  AVDB_RETURN_IF_ERROR(GetClass(class_name).status());
  const Oid oid(next_oid_++);
  objects_[oid] = std::make_unique<DbObject>(oid, class_name);
  extents_[class_name].push_back(oid);
  return oid;
}

Result<DbObject*> AvDatabase::GetObject(Oid oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(oid.value()));
  }
  return it->second.get();
}

Result<const DbObject*> AvDatabase::GetObject(Oid oid) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(oid.value()));
  }
  return it->second.get();
}

void AvDatabase::UpdateIndex(const std::string& class_name,
                             const std::string& attr,
                             const DbObject& object) {
  const std::string key = class_name + "." + attr;
  auto& idx = index_[key];
  // Remove stale entries for this oid, then insert the new value.
  for (auto it = idx.begin(); it != idx.end();) {
    if (it->second == object.oid()) {
      it = idx.erase(it);
    } else {
      ++it;
    }
  }
  auto value = object.GetScalar(attr);
  if (value.ok()) {
    idx.emplace(ScalarToString(value.value()), object.oid());
  }
}

Status AvDatabase::SetScalar(Oid oid, const std::string& attr,
                             ScalarValue value) {
  auto object = GetObject(oid);
  if (!object.ok()) return object.status();
  auto class_def = GetClass(object.value()->class_name());
  if (!class_def.ok()) return class_def.status();
  const AttributeDef* attr_def = class_def.value()->FindAttribute(attr);
  if (attr_def == nullptr) {
    return Status::NotFound("attribute " + object.value()->class_name() +
                            "." + attr);
  }
  if (IsMediaAttrType(attr_def->type)) {
    return Status::InvalidArgument("attribute " + attr +
                                   " is media-typed; use SetMediaAttribute");
  }
  if (attr_def->type == AttrType::kInt &&
      !std::holds_alternative<int64_t>(value)) {
    return Status::InvalidArgument("attribute " + attr + " expects an Int");
  }
  if (attr_def->type != AttrType::kInt &&
      !std::holds_alternative<std::string>(value)) {
    return Status::InvalidArgument("attribute " + attr + " expects a string");
  }
  AVDB_RETURN_IF_ERROR(object.value()->SetScalar(attr, std::move(value)));
  UpdateIndex(object.value()->class_name(), attr, *object.value());
  return Status::OK();
}

Result<ScalarValue> AvDatabase::GetScalar(Oid oid,
                                          const std::string& attr) const {
  auto object = GetObject(oid);
  if (!object.ok()) return object.status();
  return object.value()->GetScalar(attr);
}

// --- media -----------------------------------------------------------------------

std::string AvDatabase::BlobName(Oid oid, const std::string& attr_path,
                                 int version) {
  return "o" + std::to_string(oid.value()) + "." + attr_path + ".v" +
         std::to_string(version);
}

Status AvDatabase::StoreVersion(Oid oid, const std::string& attr_path,
                                const MediaValue& value,
                                const std::string& device_name,
                                MediaAttrState* state) {
  auto blob = value_serializer::Serialize(value);
  if (!blob.ok()) return blob.status();
  const int version =
      state->versions.empty() ? 1 : state->Current().version + 1;
  const std::string blob_name = BlobName(oid, attr_path, version);
  auto stored = devices_.Store(blob_name, blob.value(), device_name);
  if (!stored.ok()) return stored.status();
  MediaVersion v;
  v.version = version;
  v.blob_name = blob_name;
  v.device = device_name;
  v.stored_type = value.type();
  v.stored_bytes = static_cast<int64_t>(blob.value().size());
  state->versions.push_back(std::move(v));
  return Status::OK();
}

Status AvDatabase::SetMediaAttribute(Oid oid, const std::string& attr,
                                     const MediaValue& value,
                                     const std::string& device_name) {
  auto object = GetObject(oid);
  if (!object.ok()) return object.status();
  auto class_def = GetClass(object.value()->class_name());
  if (!class_def.ok()) return class_def.status();
  const AttributeDef* attr_def = class_def.value()->FindAttribute(attr);
  if (attr_def == nullptr) {
    return Status::NotFound("attribute " + object.value()->class_name() +
                            "." + attr);
  }
  if (!IsMediaAttrType(attr_def->type)) {
    return Status::InvalidArgument("attribute " + attr + " is scalar");
  }
  AVDB_RETURN_IF_ERROR(CheckMediaType(attr_def->type, value));
  AVDB_RETURN_IF_ERROR(
      CheckQuality(attr_def->video_quality, attr_def->audio_quality, value));
  return StoreVersion(oid, attr, value, device_name,
                      &object.value()->MediaAttr(attr));
}

Result<MediaValuePtr> AvDatabase::LoadMediaAttribute(Oid oid,
                                                     const std::string& attr,
                                                     int version) {
  auto object = GetObject(oid);
  if (!object.ok()) return object.status();
  auto resolved = ResolveMediaPath(*object.value(), attr);
  if (!resolved.ok()) return resolved.status();
  const MediaAttrState& state = *resolved.value().state;
  const MediaVersion* chosen = nullptr;
  if (version < 0) {
    chosen = &state.Current();
  } else {
    for (const auto& v : state.versions) {
      if (v.version == version) chosen = &v;
    }
  }
  if (chosen == nullptr) {
    return Status::NotFound("version " + std::to_string(version) + " of " +
                            attr);
  }
  auto fetched = devices_.Fetch(chosen->blob_name);
  if (!fetched.ok()) return fetched.status();
  return value_serializer::Deserialize(fetched.value().data);
}

Result<std::vector<MediaVersion>> AvDatabase::MediaHistory(
    Oid oid, const std::string& attr) const {
  auto object = GetObject(oid);
  if (!object.ok()) return object.status();
  auto resolved = ResolveMediaPath(*object.value(), attr);
  if (!resolved.ok()) return resolved.status();
  return resolved.value().state->versions;
}

Result<AvDatabase::ResolvedAttr> AvDatabase::ResolveMediaPath(
    const DbObject& object, const std::string& attr_path) const {
  auto class_def = GetClass(object.class_name());
  if (!class_def.ok()) return class_def.status();

  const size_t dot = attr_path.find('.');
  if (dot == std::string::npos) {
    const AttributeDef* attr_def = class_def.value()->FindAttribute(attr_path);
    if (attr_def == nullptr || !IsMediaAttrType(attr_def->type)) {
      return Status::NotFound("media attribute " + object.class_name() + "." +
                              attr_path);
    }
    auto state = object.FindMediaAttr(attr_path);
    if (!state.ok()) return state.status();
    return ResolvedAttr{state.value(), attr_def->type, WorldTime()};
  }

  const std::string tcomp_name = attr_path.substr(0, dot);
  const std::string track_name = attr_path.substr(dot + 1);
  const TcompDef* tcomp_def = class_def.value()->FindTcomp(tcomp_name);
  if (tcomp_def == nullptr) {
    return Status::NotFound("tcomp " + object.class_name() + "." + tcomp_name);
  }
  const TrackDef* track_def = tcomp_def->FindTrack(track_name);
  if (track_def == nullptr) {
    return Status::NotFound("track " + attr_path);
  }
  auto instance = object.FindTcomp(tcomp_name);
  if (!instance.ok()) return instance.status();
  auto track_it = instance.value()->tracks.find(track_name);
  if (track_it == instance.value()->tracks.end() ||
      !track_it->second.HasValue()) {
    return Status::NotFound("track " + attr_path + " unset on object");
  }
  WorldTime offset;
  auto interval = instance.value()->timeline.TrackInterval(track_name);
  if (interval.ok()) {
    const WorldTime span_start = instance.value()->timeline.Span().start();
    offset = interval.value().start() - span_start;
  }
  return ResolvedAttr{&track_it->second, track_def->type, offset};
}

Result<std::string> AvDatabase::WhereIsAttribute(
    Oid oid, const std::string& attr_path) const {
  auto object = GetObject(oid);
  if (!object.ok()) return object.status();
  auto resolved = ResolveMediaPath(*object.value(), attr_path);
  if (!resolved.ok()) return resolved.status();
  return resolved.value().state->Current().device;
}

Result<WorldTime> AvDatabase::MoveAttribute(Oid oid,
                                            const std::string& attr_path,
                                            const std::string& to_device) {
  auto object = GetObject(oid);
  if (!object.ok()) return object.status();
  auto resolved = ResolveMediaPath(*object.value(), attr_path);
  if (!resolved.ok()) return resolved.status();
  // A stream holding a shared lock does not block the move in this model;
  // real systems would require an exclusive latch on the blob.
  const MediaVersion current = resolved.value().state->Current();
  const std::string temp_name = current.blob_name + ".moving";
  auto copied = devices_.Copy(current.blob_name, to_device, temp_name);
  if (!copied.ok()) return copied.status();
  AVDB_RETURN_IF_ERROR(devices_.Delete(current.blob_name));
  // Re-store under the canonical name on the target device.
  auto fetched = devices_.Fetch(temp_name);
  if (!fetched.ok()) return fetched.status();
  auto stored =
      devices_.Store(current.blob_name, fetched.value().data, to_device);
  if (!stored.ok()) return stored.status();
  AVDB_RETURN_IF_ERROR(devices_.Delete(temp_name));
  // Update the version record in place.
  auto* mutable_state = const_cast<MediaAttrState*>(resolved.value().state);
  mutable_state->versions.back().device = to_device;
  return copied.value() + stored.value();
}

// --- tcomp ------------------------------------------------------------------------

Status AvDatabase::SetTcompTrack(Oid oid, const std::string& tcomp,
                                 const std::string& track,
                                 const MediaValue& value,
                                 const std::string& device_name,
                                 WorldTime start, WorldTime duration) {
  auto object = GetObject(oid);
  if (!object.ok()) return object.status();
  auto class_def = GetClass(object.value()->class_name());
  if (!class_def.ok()) return class_def.status();
  const TcompDef* tcomp_def = class_def.value()->FindTcomp(tcomp);
  if (tcomp_def == nullptr) {
    return Status::NotFound("tcomp " + object.value()->class_name() + "." +
                            tcomp);
  }
  const TrackDef* track_def = tcomp_def->FindTrack(track);
  if (track_def == nullptr) {
    return Status::NotFound("track " + tcomp + "." + track);
  }
  AVDB_RETURN_IF_ERROR(CheckMediaType(track_def->type, value));
  AVDB_RETURN_IF_ERROR(CheckQuality(track_def->video_quality,
                                    track_def->audio_quality, value));
  TcompInstance& instance = object.value()->Tcomp(tcomp);
  AVDB_RETURN_IF_ERROR(StoreVersion(oid, tcomp + "." + track, value,
                                    device_name, &instance.tracks[track]));
  if (instance.timeline.HasTrack(track)) {
    AVDB_RETURN_IF_ERROR(instance.timeline.MoveTrack(track, start, duration));
  } else {
    AVDB_RETURN_IF_ERROR(instance.timeline.AddTrack(track, start, duration));
  }
  return Status::OK();
}

Result<const TcompInstance*> AvDatabase::GetTcomp(
    Oid oid, const std::string& tcomp) const {
  auto object = GetObject(oid);
  if (!object.ok()) return object.status();
  return object.value()->FindTcomp(tcomp);
}

// --- query -------------------------------------------------------------------------

Result<std::vector<Oid>> AvDatabase::Select(const std::string& class_name,
                                            const std::string& where) const {
  auto predicate = ParsePredicate(where);
  if (!predicate.ok()) return predicate.status();
  return Select(class_name, predicate.value());
}

Result<std::vector<Oid>> AvDatabase::Select(
    const std::string& class_name, const PredicatePtr& predicate) const {
  AVDB_RETURN_IF_ERROR(GetClass(class_name).status());
  auto extent_it = extents_.find(class_name);
  std::vector<Oid> results;
  if (extent_it == extents_.end()) return results;

  // Equality-pinned predicates prefilter through the index.
  std::string pin_attr;
  ScalarValue pin_value;
  if (predicate->EqualityPin(&pin_attr, &pin_value)) {
    auto idx_it = index_.find(class_name + "." + pin_attr);
    if (idx_it != index_.end()) {
      auto [begin, end] = idx_it->second.equal_range(
          ScalarToString(pin_value));
      for (auto it = begin; it != end; ++it) {
        const auto object = GetObject(it->second);
        if (object.ok() && predicate->Matches(*object.value())) {
          results.push_back(it->second);
        }
      }
      std::sort(results.begin(), results.end());
      return results;
    }
  }

  for (Oid oid : extent_it->second) {
    const auto object = GetObject(oid);
    if (object.ok() && predicate->Matches(*object.value())) {
      results.push_back(oid);
    }
  }
  return results;
}

// --- activity mediation ---------------------------------------------------------------

Result<MediaActivityPtr> AvDatabase::MakeSource(
    const std::string& name, Oid oid, const std::string& attr_path,
    const ResolvedAttr& resolved, std::vector<PooledDemand>* demands,
    const VideoQuality* quality) {
  const MediaVersion& current = resolved.state->Current();
  auto store = devices_.GetStore(current.device);
  if (!store.ok()) return store.status();
  auto queue = DeviceQueue(current.device);
  if (!queue.ok()) return queue.status();
  auto value = LoadMediaAttribute(oid, attr_path);
  if (!value.ok()) return value.status();

  // §4.1 quality negotiation: the database maps a quality factor to a
  // representation — here, a layer subset of a scalable stream.
  if (quality != nullptr) {
    if (!quality->SatisfiableBy(current.stored_type)) {
      return Status::InvalidArgument(
          "stored " + current.stored_type.ToString() +
          " cannot satisfy requested quality " + quality->ToString());
    }
    auto encoded_value =
        std::dynamic_pointer_cast<EncodedVideoValue>(value.value());
    if (encoded_value != nullptr &&
        encoded_value->encoded().family == EncodingFamily::kScalable) {
      const int layers = ScalableCodec::LayersForResolution(
          current.stored_type, quality->width(), quality->height());
      auto view =
          ScalableVideoView::Create(encoded_value->encoded(), layers);
      if (!view.ok()) return view.status();
      value = MediaValuePtr(view.value());
    }
  }

  SourceOptions options;
  options.preroll = config_.source_preroll;
  options.start_offset = resolved.start_offset;
  options.store = store.value();
  options.blob_name = current.blob_name;
  options.device_queue = queue.value();
  options.costs = config_.costs;

  // Admission demands: device bandwidth, one buffer share, a decoder unit
  // for compressed representations, the arm of exclusive devices.
  //
  // Device bandwidth is charged conservatively: the stored data rate plus
  // a seek surcharge — concurrent streams interleave on the arm, so every
  // page-granular fetch repositions. The surcharge converts that seek time
  // into the bandwidth it forgoes, keeping the admission test consistent
  // with what the device model actually serves.
  const double stored_rate = StoredRate(current, *value.value());
  double seek_surcharge = 0;
  {
    auto holder = devices_.GetDevice(current.device);
    if (holder.ok()) {
      const DeviceProfile& profile = holder.value()->profile();
      const double seek_s = profile.seek_time.ToSecondsF() +
                            profile.rotational_latency.ToSecondsF();
      const double fetches_per_s =
          stored_rate / static_cast<double>(MediaStore::kCachePageBytes);
      seek_surcharge = fetches_per_s * seek_s *
                       static_cast<double>(profile.transfer_bytes_per_sec);
    }
  }
  demands->push_back({admission_.FindPool(current.device + ".bandwidth"),
                      stored_rate + seek_surcharge});
  demands->push_back({admission_.FindPool("db.buffers"),
                      static_cast<double>(config_.buffer_bytes_per_stream)});
  if (current.stored_type.IsCompressed()) {
    demands->push_back({admission_.FindPool("db.decoders"), 1});
  }
  auto device = devices_.GetDevice(current.device);
  if (device.ok() && device.value()->profile().exclusive) {
    demands->push_back({admission_.FindPool(current.device + ".arm"), 1});
  }

  MediaActivityPtr source;
  switch (resolved.type) {
    case AttrType::kVideo: {
      auto activity = VideoSource::Create(name, ActivityLocation::kDatabase,
                                          env(), options);
      AVDB_RETURN_IF_ERROR(
          activity->Bind(value.value(), VideoSource::kPortOut));
      source = activity;
      break;
    }
    case AttrType::kAudio: {
      auto activity = AudioSource::Create(name, ActivityLocation::kDatabase,
                                          env(), options);
      AVDB_RETURN_IF_ERROR(
          activity->Bind(value.value(), AudioSource::kPortOut));
      source = activity;
      break;
    }
    case AttrType::kText: {
      auto activity = TextSource::Create(name, ActivityLocation::kDatabase,
                                         env(), options);
      AVDB_RETURN_IF_ERROR(
          activity->Bind(value.value(), TextSource::kPortOut));
      source = activity;
      break;
    }
    default:
      return Status::InvalidArgument("unsupported media type for source");
  }
  return source;
}

Result<StreamHandle> AvDatabase::FinishStream(
    const std::string& session, Oid oid, MediaActivityPtr source,
    std::vector<PooledDemand> demands) {
  auto ticket = admission_.Admit(demands);
  if (!ticket.ok()) return ticket.status();
  Status lock_status = locks_.Acquire(oid, LockMode::kShared, session);
  if (!lock_status.ok()) {
    admission_.Release(&ticket.value());
    return lock_status;
  }
  AVDB_RETURN_IF_ERROR(graph_.Add(source));

  StreamState state;
  state.session = session;
  state.oid = oid;
  state.source = source;
  state.ticket = std::move(ticket).value();
  const int64_t id = next_stream_id_++;
  streams_[id] = std::move(state);

  StreamHandle handle;
  handle.id = id;
  handle.source = source.get();
  return handle;
}

Result<StreamHandle> AvDatabase::NewSourceFor(const std::string& session,
                                              Oid oid,
                                              const std::string& attr_path) {
  auto object = GetObject(oid);
  if (!object.ok()) return object.status();
  auto resolved = ResolveMediaPath(*object.value(), attr_path);
  if (!resolved.ok()) return resolved.status();

  const std::string name = "dbSource" + std::to_string(next_activity_serial_++);
  std::vector<PooledDemand> demands;
  auto source = MakeSource(name, oid, attr_path, resolved.value(), &demands);
  if (!source.ok()) return source.status();
  return FinishStream(session, oid, std::move(source).value(),
                      std::move(demands));
}

Result<StreamHandle> AvDatabase::NewSourceFor(const std::string& session,
                                              Oid oid,
                                              const std::string& attr_path,
                                              const VideoQuality& quality) {
  auto object = GetObject(oid);
  if (!object.ok()) return object.status();
  auto resolved = ResolveMediaPath(*object.value(), attr_path);
  if (!resolved.ok()) return resolved.status();
  if (resolved.value().type != AttrType::kVideo) {
    return Status::InvalidArgument(
        "video quality factor on a non-video attribute: " + attr_path);
  }
  const std::string name = "dbSource" + std::to_string(next_activity_serial_++);
  std::vector<PooledDemand> demands;
  auto source =
      MakeSource(name, oid, attr_path, resolved.value(), &demands, &quality);
  if (!source.ok()) return source.status();
  return FinishStream(session, oid, std::move(source).value(),
                      std::move(demands));
}

Result<std::shared_ptr<VideoWriter>> AvDatabase::NewRecorderFor(
    const std::string& session, Oid oid, const std::string& attr,
    const std::string& device, MediaDataType video_type) {
  auto object = GetObject(oid);
  if (!object.ok()) return object.status();
  auto class_def = GetClass(object.value()->class_name());
  if (!class_def.ok()) return class_def.status();
  const AttributeDef* attr_def = class_def.value()->FindAttribute(attr);
  if (attr_def == nullptr || attr_def->type != AttrType::kVideo) {
    return Status::InvalidArgument("recorder needs a video attribute: " +
                                   attr);
  }
  AVDB_RETURN_IF_ERROR(devices_.GetDevice(device).status());
  // Recording mutates the object: exclusive lock for the session.
  AVDB_RETURN_IF_ERROR(locks_.Acquire(oid, LockMode::kExclusive, session));

  auto writer = VideoWriter::Create(
      "dbRecorder" + std::to_string(next_activity_serial_++),
      ActivityLocation::kDatabase, env(), std::move(video_type));
  // On end of stream the captured frames become the next version.
  const Status caught = writer->Catch(
      VideoWriter::kDone, [this, oid, attr, device,
                           writer_raw = writer.get()](const ActivityEvent&) {
        const Status stored = SetMediaAttribute(
            oid, attr, *writer_raw->captured(), device);
        if (!stored.ok()) {
          AVDB_LOG(Error) << "recorder commit failed: " << stored;
        }
      });
  AVDB_RETURN_IF_ERROR(caught);
  AVDB_RETURN_IF_ERROR(graph_.Add(writer));
  return writer;
}

Result<StreamHandle> AvDatabase::NewMultiSourceFor(const std::string& session,
                                                   Oid oid,
                                                   const std::string& tcomp,
                                                   SyncController* sink_sync) {
  auto object = GetObject(oid);
  if (!object.ok()) return object.status();
  auto instance = object.value()->FindTcomp(tcomp);
  if (!instance.ok()) return instance.status();

  auto composite = MultiSource::Create(
      "dbMultiSource" + std::to_string(next_activity_serial_++),
      ActivityLocation::kDatabase, env());

  std::vector<PooledDemand> demands;
  bool first = true;
  for (const auto& [track, state] : instance.value()->tracks) {
    if (!state.HasValue()) continue;
    const std::string path = tcomp + "." + track;
    auto resolved = ResolveMediaPath(*object.value(), path);
    if (!resolved.ok()) return resolved.status();
    auto child = MakeSource(composite->name() + "." + track, oid, path,
                            resolved.value(), &demands);
    if (!child.ok()) return child.status();
    // Audio is the conventional master; otherwise the first track.
    const bool master =
        resolved.value().type == AttrType::kAudio && first;
    AVDB_RETURN_IF_ERROR(
        composite->InstallSynced(std::move(child).value(), track, master));
    first = false;
  }
  if (composite->children().empty()) {
    return Status::FailedPrecondition("tcomp has no stored tracks: " + tcomp);
  }
  if (sink_sync != nullptr) {
    AVDB_RETURN_IF_ERROR(composite->UseSyncDomain(sink_sync));
  }
  return FinishStream(session, oid, composite, std::move(demands));
}

Result<Connection*> AvDatabase::NewConnection(MediaActivity* from,
                                              const std::string& out_port,
                                              MediaActivity* to,
                                              const std::string& in_port,
                                              const std::string& channel_name) {
  ChannelPtr channel;
  int64_t reserved = 0;
  if (!channel_name.empty()) {
    auto found = GetChannel(channel_name);
    if (!found.ok()) return found.status();
    channel = found.value();
    auto port = from->FindPort(out_port);
    if (!port.ok()) return port.status();
    const double rate = port.value()->data_type().NominalBytesPerSecond();
    auto reservation =
        channel->ReserveBandwidth(static_cast<int64_t>(rate) + 1);
    if (!reservation.ok()) return reservation.status();
    reserved = reservation.value();
  }
  auto connection = graph_.Connect(from, out_port, to, in_port, channel);
  if (!connection.ok()) {
    if (channel != nullptr) channel->ReleaseBandwidth(reserved);
    return connection.status();
  }
  // Attach the reservation to the source's stream (if any) for release.
  for (auto& [id, state] : streams_) {
    if (state.source.get() == from) {
      state.reservations.emplace_back(channel, reserved);
      break;
    }
  }
  return connection;
}

Status AvDatabase::StartStream(const StreamHandle& handle) {
  auto it = streams_.find(handle.id);
  if (it == streams_.end()) {
    return Status::NotFound("stream " + std::to_string(handle.id));
  }
  // `start videostream` (§4.3) starts the whole stream. Consumers first:
  // every idle sink/transformer in the graph is brought up (idle *sources*
  // stay idle — they belong to other, unstarted streams), then the stream's
  // own source begins producing.
  for (const auto& activity : graph_.activities()) {
    if (activity->state() == MediaActivity::State::kIdle &&
        activity->Kind() != ActivityKind::kSource) {
      AVDB_RETURN_IF_ERROR(activity->Start());
    }
  }
  return it->second.source->Start();
}

Status AvDatabase::PauseStream(const StreamHandle& handle) {
  auto it = streams_.find(handle.id);
  if (it == streams_.end()) {
    return Status::NotFound("stream " + std::to_string(handle.id));
  }
  // Stop production only; resources and locks stay held (§3.3: streams tie
  // up resources for as long as the client keeps them).
  return it->second.source->Stop();
}

Status AvDatabase::ResumeStream(const StreamHandle& handle) {
  auto it = streams_.find(handle.id);
  if (it == streams_.end()) {
    return Status::NotFound("stream " + std::to_string(handle.id));
  }
  // Sources retain their position across Stop; Start re-schedules the
  // remaining elements from one preroll after "now".
  return it->second.source->Start();
}

Status AvDatabase::StopStream(const StreamHandle& handle) {
  auto it = streams_.find(handle.id);
  if (it == streams_.end()) {
    return Status::NotFound("stream " + std::to_string(handle.id));
  }
  StreamState& state = it->second;
  AVDB_RETURN_IF_ERROR(state.source->Stop());
  admission_.Release(&state.ticket);
  for (auto& [channel, bytes] : state.reservations) {
    if (channel != nullptr) channel->ReleaseBandwidth(bytes);
  }
  locks_.Release(state.oid, state.session);
  streams_.erase(it);
  return Status::OK();
}

Status AvDatabase::CloseSession(const std::string& session) {
  std::vector<int64_t> to_stop;
  for (const auto& [id, state] : streams_) {
    if (state.session == session) to_stop.push_back(id);
  }
  for (int64_t id : to_stop) {
    StreamHandle handle;
    handle.id = id;
    AVDB_RETURN_IF_ERROR(StopStream(handle));
  }
  locks_.ReleaseAll(session);
  return Status::OK();
}

}  // namespace avdb

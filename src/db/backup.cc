#include <sstream>

#include "db/database.h"

// Backup & recovery for AvDatabase (declared in database.h). The §2 survey
// lists "backup and recovery" among the database functions multimedia
// systems must provide; this file implements a full logical dump: schema,
// objects (scalars, media version records, tcomp timelines) and the raw
// bytes of every stored blob, restorable into a fresh database with the
// same device names.

namespace avdb {

namespace {

constexpr uint32_t kBackupMagic = 0x41564442;  // 'AVDB'
constexpr uint32_t kBackupVersion = 1;

void AppendQuality(Buffer* out, const std::optional<VideoQuality>& vq,
                   const std::optional<AudioQuality>& aq) {
  out->AppendU8(vq.has_value() ? 1 : 0);
  if (vq.has_value()) {
    out->AppendI32(vq->width());
    out->AppendI32(vq->height());
    out->AppendI32(vq->depth_bits());
    out->AppendI64(vq->rate().num());
    out->AppendI64(vq->rate().den());
  }
  out->AppendU8(aq.has_value() ? 1 : 0);
  if (aq.has_value()) out->AppendU8(static_cast<uint8_t>(*aq));
}

Status ReadQuality(BufferReader* r, std::optional<VideoQuality>* vq,
                   std::optional<AudioQuality>* aq) {
  auto has_vq = r->ReadU8();
  if (!has_vq.ok()) return has_vq.status();
  if (has_vq.value() != 0) {
    auto w = r->ReadI32();
    if (!w.ok()) return w.status();
    auto h = r->ReadI32();
    if (!h.ok()) return h.status();
    auto d = r->ReadI32();
    if (!d.ok()) return d.status();
    auto num = r->ReadI64();
    if (!num.ok()) return num.status();
    auto den = r->ReadI64();
    if (!den.ok()) return den.status();
    if (den.value() == 0) return Status::DataLoss("zero rate in backup");
    *vq = VideoQuality(w.value(), h.value(), d.value(),
                       Rational(num.value(), den.value()));
  }
  auto has_aq = r->ReadU8();
  if (!has_aq.ok()) return has_aq.status();
  if (has_aq.value() != 0) {
    auto q = r->ReadU8();
    if (!q.ok()) return q.status();
    *aq = static_cast<AudioQuality>(q.value());
  }
  return Status::OK();
}

void AppendMediaState(Buffer* out, const MediaAttrState& state) {
  out->AppendU32(static_cast<uint32_t>(state.versions.size()));
  for (const MediaVersion& v : state.versions) {
    out->AppendI32(v.version);
    out->AppendString(v.blob_name);
    out->AppendString(v.device);
    out->AppendI64(v.stored_bytes);
  }
}

Status ReadMediaState(BufferReader* r, MediaAttrState* state) {
  auto count = r->ReadU32();
  if (!count.ok()) return count.status();
  for (uint32_t i = 0; i < count.value(); ++i) {
    MediaVersion v;
    auto version = r->ReadI32();
    if (!version.ok()) return version.status();
    v.version = version.value();
    auto blob = r->ReadString();
    if (!blob.ok()) return blob.status();
    v.blob_name = std::move(blob).value();
    auto device = r->ReadString();
    if (!device.ok()) return device.status();
    v.device = std::move(device).value();
    auto bytes = r->ReadI64();
    if (!bytes.ok()) return bytes.status();
    v.stored_bytes = bytes.value();
    state->versions.push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace

Result<Buffer> AvDatabase::SaveBackup() const {
  Buffer out;
  out.AppendU32(kBackupMagic);
  out.AppendU32(kBackupVersion);

  // --- schema ---------------------------------------------------------------
  out.AppendU32(static_cast<uint32_t>(classes_.size()));
  for (const auto& [name, def] : classes_) {
    out.AppendString(name);
    out.AppendU32(static_cast<uint32_t>(def.attributes().size()));
    for (const AttributeDef& a : def.attributes()) {
      out.AppendString(a.name);
      out.AppendU8(static_cast<uint8_t>(a.type));
      AppendQuality(&out, a.video_quality, a.audio_quality);
    }
    out.AppendU32(static_cast<uint32_t>(def.tcomps().size()));
    for (const TcompDef& t : def.tcomps()) {
      out.AppendString(t.name);
      out.AppendU32(static_cast<uint32_t>(t.tracks.size()));
      for (const TrackDef& track : t.tracks) {
        out.AppendString(track.name);
        out.AppendU8(static_cast<uint8_t>(track.type));
        AppendQuality(&out, track.video_quality, track.audio_quality);
      }
    }
  }

  // --- objects ----------------------------------------------------------------
  out.AppendU64(next_oid_);
  out.AppendU32(static_cast<uint32_t>(objects_.size()));
  for (const auto& [oid, object] : objects_) {
    out.AppendU64(oid.value());
    out.AppendString(object->class_name());
    out.AppendU32(static_cast<uint32_t>(object->scalars().size()));
    for (const auto& [attr, value] : object->scalars()) {
      out.AppendString(attr);
      if (std::holds_alternative<int64_t>(value)) {
        out.AppendU8(1);
        out.AppendI64(std::get<int64_t>(value));
      } else {
        out.AppendU8(0);
        out.AppendString(std::get<std::string>(value));
      }
    }
    out.AppendU32(static_cast<uint32_t>(object->media().size()));
    for (const auto& [attr, state] : object->media()) {
      out.AppendString(attr);
      AppendMediaState(&out, state);
    }
    out.AppendU32(static_cast<uint32_t>(object->tcomps().size()));
    for (const auto& [tcomp_name, instance] : object->tcomps()) {
      out.AppendString(tcomp_name);
      out.AppendU32(
          static_cast<uint32_t>(instance.timeline.entries().size()));
      for (const TimelineEntry& entry : instance.timeline.entries()) {
        out.AppendString(entry.track);
        out.AppendI64(entry.interval.start().seconds().num());
        out.AppendI64(entry.interval.start().seconds().den());
        out.AppendI64(entry.interval.duration().seconds().num());
        out.AppendI64(entry.interval.duration().seconds().den());
      }
      out.AppendU32(static_cast<uint32_t>(instance.tracks.size()));
      for (const auto& [track, state] : instance.tracks) {
        out.AppendString(track);
        AppendMediaState(&out, state);
      }
    }
  }

  // --- blob bytes ---------------------------------------------------------------
  // Collected from every version record (the authoritative inventory).
  std::vector<std::pair<std::string, std::string>> blob_inventory;
  for (const auto& [oid, object] : objects_) {
    for (const auto& [attr, state] : object->media()) {
      for (const MediaVersion& v : state.versions) {
        blob_inventory.emplace_back(v.blob_name, v.device);
      }
    }
    for (const auto& [tcomp_name, instance] : object->tcomps()) {
      for (const auto& [track, state] : instance.tracks) {
        for (const MediaVersion& v : state.versions) {
          blob_inventory.emplace_back(v.blob_name, v.device);
        }
      }
    }
  }
  out.AppendU32(static_cast<uint32_t>(blob_inventory.size()));
  // Fetching is const in spirit (reads); DeviceManager::Fetch is non-const,
  // so go through the mutable reference of this object.
  auto& mutable_devices = const_cast<DeviceManager&>(devices_);
  for (const auto& [blob_name, device] : blob_inventory) {
    auto fetched = mutable_devices.Fetch(blob_name);
    if (!fetched.ok()) return fetched.status();
    out.AppendString(blob_name);
    out.AppendString(device);
    out.AppendU32(static_cast<uint32_t>(fetched.value().data.size()));
    out.AppendBuffer(fetched.value().data);
  }
  return out;
}

Status AvDatabase::RestoreBackup(const Buffer& image) {
  if (!classes_.empty() || !objects_.empty()) {
    return Status::FailedPrecondition(
        "restore requires an empty database");
  }
  BufferReader r(image);
  auto magic = r.ReadU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != kBackupMagic) {
    return Status::DataLoss("bad backup magic");
  }
  auto version = r.ReadU32();
  if (!version.ok()) return version.status();
  if (version.value() != kBackupVersion) {
    return Status::DataLoss("unsupported backup version");
  }

  // --- schema ---------------------------------------------------------------
  auto class_count = r.ReadU32();
  if (!class_count.ok()) return class_count.status();
  for (uint32_t c = 0; c < class_count.value(); ++c) {
    auto name = r.ReadString();
    if (!name.ok()) return name.status();
    ClassDef def(name.value());
    auto attr_count = r.ReadU32();
    if (!attr_count.ok()) return attr_count.status();
    for (uint32_t a = 0; a < attr_count.value(); ++a) {
      AttributeDef attr;
      auto attr_name = r.ReadString();
      if (!attr_name.ok()) return attr_name.status();
      attr.name = std::move(attr_name).value();
      auto type = r.ReadU8();
      if (!type.ok()) return type.status();
      attr.type = static_cast<AttrType>(type.value());
      AVDB_RETURN_IF_ERROR(
          ReadQuality(&r, &attr.video_quality, &attr.audio_quality));
      AVDB_RETURN_IF_ERROR(def.AddAttribute(std::move(attr)));
    }
    auto tcomp_count = r.ReadU32();
    if (!tcomp_count.ok()) return tcomp_count.status();
    for (uint32_t t = 0; t < tcomp_count.value(); ++t) {
      TcompDef tcomp;
      auto tcomp_name = r.ReadString();
      if (!tcomp_name.ok()) return tcomp_name.status();
      tcomp.name = std::move(tcomp_name).value();
      auto track_count = r.ReadU32();
      if (!track_count.ok()) return track_count.status();
      for (uint32_t k = 0; k < track_count.value(); ++k) {
        TrackDef track;
        auto track_name = r.ReadString();
        if (!track_name.ok()) return track_name.status();
        track.name = std::move(track_name).value();
        auto type = r.ReadU8();
        if (!type.ok()) return type.status();
        track.type = static_cast<AttrType>(type.value());
        AVDB_RETURN_IF_ERROR(
            ReadQuality(&r, &track.video_quality, &track.audio_quality));
        tcomp.tracks.push_back(std::move(track));
      }
      AVDB_RETURN_IF_ERROR(def.AddTcomp(std::move(tcomp)));
    }
    AVDB_RETURN_IF_ERROR(DefineClass(std::move(def)));
  }

  // --- objects ----------------------------------------------------------------
  auto next_oid = r.ReadU64();
  if (!next_oid.ok()) return next_oid.status();
  auto object_count = r.ReadU32();
  if (!object_count.ok()) return object_count.status();
  for (uint32_t o = 0; o < object_count.value(); ++o) {
    auto oid_value = r.ReadU64();
    if (!oid_value.ok()) return oid_value.status();
    auto class_name = r.ReadString();
    if (!class_name.ok()) return class_name.status();
    const Oid oid(oid_value.value());
    objects_[oid] =
        std::make_unique<DbObject>(oid, class_name.value());
    extents_[class_name.value()].push_back(oid);
    DbObject* object = objects_[oid].get();

    auto scalar_count = r.ReadU32();
    if (!scalar_count.ok()) return scalar_count.status();
    for (uint32_t s = 0; s < scalar_count.value(); ++s) {
      auto attr = r.ReadString();
      if (!attr.ok()) return attr.status();
      auto is_int = r.ReadU8();
      if (!is_int.ok()) return is_int.status();
      if (is_int.value() != 0) {
        auto value = r.ReadI64();
        if (!value.ok()) return value.status();
        AVDB_RETURN_IF_ERROR(object->SetScalar(attr.value(), value.value()));
      } else {
        auto value = r.ReadString();
        if (!value.ok()) return value.status();
        AVDB_RETURN_IF_ERROR(
            object->SetScalar(attr.value(), std::move(value).value()));
      }
      UpdateIndex(class_name.value(), attr.value(), *object);
    }

    auto media_count = r.ReadU32();
    if (!media_count.ok()) return media_count.status();
    for (uint32_t m = 0; m < media_count.value(); ++m) {
      auto attr = r.ReadString();
      if (!attr.ok()) return attr.status();
      AVDB_RETURN_IF_ERROR(
          ReadMediaState(&r, &object->MediaAttr(attr.value())));
    }

    auto tcomp_count = r.ReadU32();
    if (!tcomp_count.ok()) return tcomp_count.status();
    for (uint32_t t = 0; t < tcomp_count.value(); ++t) {
      auto tcomp_name = r.ReadString();
      if (!tcomp_name.ok()) return tcomp_name.status();
      TcompInstance& instance = object->Tcomp(tcomp_name.value());
      auto entry_count = r.ReadU32();
      if (!entry_count.ok()) return entry_count.status();
      for (uint32_t e = 0; e < entry_count.value(); ++e) {
        auto track = r.ReadString();
        if (!track.ok()) return track.status();
        auto sn = r.ReadI64();
        if (!sn.ok()) return sn.status();
        auto sd = r.ReadI64();
        if (!sd.ok()) return sd.status();
        auto dn = r.ReadI64();
        if (!dn.ok()) return dn.status();
        auto dd = r.ReadI64();
        if (!dd.ok()) return dd.status();
        if (sd.value() == 0 || dd.value() == 0) {
          return Status::DataLoss("zero denominator in timeline");
        }
        AVDB_RETURN_IF_ERROR(instance.timeline.AddTrack(
            track.value(),
            WorldTime(Rational(sn.value(), sd.value())),
            WorldTime(Rational(dn.value(), dd.value()))));
      }
      auto track_count = r.ReadU32();
      if (!track_count.ok()) return track_count.status();
      for (uint32_t k = 0; k < track_count.value(); ++k) {
        auto track = r.ReadString();
        if (!track.ok()) return track.status();
        AVDB_RETURN_IF_ERROR(
            ReadMediaState(&r, &instance.tracks[track.value()]));
      }
    }
  }
  next_oid_ = next_oid.value();

  // --- blob bytes ---------------------------------------------------------------
  auto blob_count = r.ReadU32();
  if (!blob_count.ok()) return blob_count.status();
  for (uint32_t b = 0; b < blob_count.value(); ++b) {
    auto blob_name = r.ReadString();
    if (!blob_name.ok()) return blob_name.status();
    auto device = r.ReadString();
    if (!device.ok()) return device.status();
    auto size = r.ReadU32();
    if (!size.ok()) return size.status();
    Buffer data;
    data.Resize(size.value());
    AVDB_RETURN_IF_ERROR(r.ReadBytes(data.data(), size.value()));
    AVDB_RETURN_IF_ERROR(
        devices_.Store(blob_name.value(), data, device.value()).status());
  }
  return Status::OK();
}

std::string AvDatabase::DescribePlatform() const {
  std::ostringstream os;
  os << "AV database platform\n";
  os << "  devices:\n";
  for (const auto& name : devices_.DeviceNames()) {
    auto device = const_cast<DeviceManager&>(devices_).GetDevice(name);
    if (!device.ok()) continue;
    const DeviceProfile& p = device.value()->profile();
    os << "    " << name << " [" << p.model << "] "
       << p.transfer_bytes_per_sec / 1024 << " KB/s, "
       << device.value()->used_bytes() / 1024 << " KB used";
    if (p.exclusive) os << ", exclusive";
    os << "\n";
  }
  os << "  channels:\n";
  for (const auto& [name, channel] : channels_) {
    os << "    " << name << " [" << channel->profile().model << "] "
       << channel->AvailableBandwidth() / 1024 << " of "
       << channel->profile().bandwidth_bytes_per_sec / 1024
       << " KB/s unreserved\n";
  }
  os << "  classes: " << classes_.size()
     << ", objects: " << objects_.size()
     << ", active streams: " << streams_.size() << "\n";
  return os.str();
}

}  // namespace avdb

#include "db/query.h"

#include <cctype>

#include "base/strings.h"

namespace avdb {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kContains:
      return "contains";
  }
  return "?";
}

namespace {

// ------------------------------------------------------------- AST nodes --

class TrueNode final : public Predicate {
 public:
  bool Matches(const DbObject&) const override { return true; }
  std::string ToString() const override { return "true"; }
  bool EqualityPin(std::string*, ScalarValue*) const override { return false; }
};

class CompareNode final : public Predicate {
 public:
  CompareNode(std::string attr, CompareOp op, ScalarValue literal)
      : attr_(std::move(attr)), op_(op), literal_(std::move(literal)) {}

  bool Matches(const DbObject& object) const override {
    auto value = object.GetScalar(attr_);
    if (!value.ok()) return false;
    return Compare(value.value());
  }

  std::string ToString() const override {
    std::string lit = std::holds_alternative<std::string>(literal_)
                          ? "\"" + std::get<std::string>(literal_) + "\""
                          : std::to_string(std::get<int64_t>(literal_));
    return attr_ + " " + std::string(CompareOpName(op_)) + " " + lit;
  }

  bool EqualityPin(std::string* attribute, ScalarValue* value) const override {
    if (op_ != CompareOp::kEq) return false;
    *attribute = attr_;
    *value = literal_;
    return true;
  }

 private:
  bool Compare(const ScalarValue& lhs) const {
    // Numeric comparison when both sides are ints; otherwise string
    // comparison of the rendered forms (dates compare correctly this way).
    if (std::holds_alternative<int64_t>(lhs) &&
        std::holds_alternative<int64_t>(literal_)) {
      return Apply(std::get<int64_t>(lhs), std::get<int64_t>(literal_));
    }
    const std::string l = ScalarToString(lhs);
    const std::string r = ScalarToString(literal_);
    if (op_ == CompareOp::kContains) {
      return l.find(r) != std::string::npos;
    }
    return Apply(l, r);
  }

  template <typename T>
  bool Apply(const T& l, const T& r) const {
    switch (op_) {
      case CompareOp::kEq:
        return l == r;
      case CompareOp::kNe:
        return l != r;
      case CompareOp::kLt:
        return l < r;
      case CompareOp::kLe:
        return l <= r;
      case CompareOp::kGt:
        return l > r;
      case CompareOp::kGe:
        return l >= r;
      case CompareOp::kContains:
        return false;  // handled above for strings
    }
    return false;
  }

  std::string attr_;
  CompareOp op_;
  ScalarValue literal_;
};

class AndNode final : public Predicate {
 public:
  AndNode(PredicatePtr l, PredicatePtr r) : l_(std::move(l)), r_(std::move(r)) {}
  bool Matches(const DbObject& o) const override {
    return l_->Matches(o) && r_->Matches(o);
  }
  std::string ToString() const override {
    return "(" + l_->ToString() + " and " + r_->ToString() + ")";
  }
  bool EqualityPin(std::string* attribute, ScalarValue* value) const override {
    // Any conjunct's pin narrows the whole conjunction.
    return l_->EqualityPin(attribute, value) ||
           r_->EqualityPin(attribute, value);
  }

 private:
  PredicatePtr l_;
  PredicatePtr r_;
};

class OrNode final : public Predicate {
 public:
  OrNode(PredicatePtr l, PredicatePtr r) : l_(std::move(l)), r_(std::move(r)) {}
  bool Matches(const DbObject& o) const override {
    return l_->Matches(o) || r_->Matches(o);
  }
  std::string ToString() const override {
    return "(" + l_->ToString() + " or " + r_->ToString() + ")";
  }
  bool EqualityPin(std::string*, ScalarValue*) const override {
    return false;  // a disjunction pins nothing
  }

 private:
  PredicatePtr l_;
  PredicatePtr r_;
};

class NotNode final : public Predicate {
 public:
  explicit NotNode(PredicatePtr inner) : inner_(std::move(inner)) {}
  bool Matches(const DbObject& o) const override {
    return !inner_->Matches(o);
  }
  std::string ToString() const override {
    return "(not " + inner_->ToString() + ")";
  }
  bool EqualityPin(std::string*, ScalarValue*) const override {
    return false;
  }

 private:
  PredicatePtr inner_;
};

// -------------------------------------------------------------- Tokenizer --

enum class TokenKind {
  kIdent,
  kString,
  kNumber,
  kOp,      // = != < <= > >=
  kLparen,
  kRparen,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t position;
};

class Tokenizer {
 public:
  explicit Tokenizer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      const size_t start = pos_;
      if (c == '(') {
        tokens.push_back({TokenKind::kLparen, "(", start});
        ++pos_;
      } else if (c == ')') {
        tokens.push_back({TokenKind::kRparen, ")", start});
        ++pos_;
      } else if (c == '"' || c == '\'') {
        auto s = ReadQuoted(c);
        if (!s.ok()) return s.status();
        tokens.push_back({TokenKind::kString, s.value(), start});
      } else if (c == '=' ) {
        tokens.push_back({TokenKind::kOp, "=", start});
        ++pos_;
      } else if (c == '!' || c == '<' || c == '>') {
        std::string op(1, c);
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') {
          op += '=';
          ++pos_;
        }
        if (op == "!") {
          return Status::InvalidArgument("stray '!' at position " +
                                         std::to_string(start));
        }
        tokens.push_back({TokenKind::kOp, op, start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
        std::string num;
        if (c == '-') {
          num += c;
          ++pos_;
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          num += text_[pos_++];
        }
        if (num.empty() || num == "-") {
          return Status::InvalidArgument("bad number at position " +
                                         std::to_string(start));
        }
        tokens.push_back({TokenKind::kNumber, num, start});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string ident;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '.')) {
          ident += text_[pos_++];
        }
        tokens.push_back({TokenKind::kIdent, ident, start});
      } else {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at position " +
                                       std::to_string(start));
      }
    }
    tokens.push_back({TokenKind::kEnd, "", text_.size()});
    return tokens;
  }

 private:
  Result<std::string> ReadQuoted(char quote) {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated string literal");
    }
    ++pos_;  // closing quote
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ----------------------------------------------------------------- Parser --

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<PredicatePtr> Parse() {
    auto expr = ParseOr();
    if (!expr.ok()) return expr;
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input");
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const std::string& kw) const {
    return Peek().kind == TokenKind::kIdent &&
           AsciiToLower(Peek().text) == kw;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("query syntax error at position " +
                                   std::to_string(Peek().position) + ": " +
                                   message);
  }

  Result<PredicatePtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    PredicatePtr node = lhs.value();
    while (PeekKeyword("or")) {
      Advance();
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      node = std::make_shared<OrNode>(node, rhs.value());
    }
    return node;
  }

  Result<PredicatePtr> ParseAnd() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    PredicatePtr node = lhs.value();
    while (PeekKeyword("and")) {
      Advance();
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      node = std::make_shared<AndNode>(node, rhs.value());
    }
    return node;
  }

  Result<PredicatePtr> ParseUnary() {
    if (PeekKeyword("not")) {
      Advance();
      auto inner = ParseUnary();
      if (!inner.ok()) return inner;
      return PredicatePtr(std::make_shared<NotNode>(inner.value()));
    }
    if (Peek().kind == TokenKind::kLparen) {
      Advance();
      auto inner = ParseOr();
      if (!inner.ok()) return inner;
      if (Peek().kind != TokenKind::kRparen) {
        return Error("expected ')'");
      }
      Advance();
      return inner;
    }
    return ParseComparison();
  }

  Result<PredicatePtr> ParseComparison() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected attribute name");
    }
    const std::string attr = Advance().text;

    CompareOp op;
    if (Peek().kind == TokenKind::kOp) {
      const std::string text = Advance().text;
      if (text == "=") {
        op = CompareOp::kEq;
      } else if (text == "!=") {
        op = CompareOp::kNe;
      } else if (text == "<") {
        op = CompareOp::kLt;
      } else if (text == "<=") {
        op = CompareOp::kLe;
      } else if (text == ">") {
        op = CompareOp::kGt;
      } else {
        op = CompareOp::kGe;
      }
    } else if (PeekKeyword("contains")) {
      Advance();
      op = CompareOp::kContains;
    } else {
      return Error("expected comparison operator");
    }

    if (Peek().kind == TokenKind::kString) {
      return PredicatePtr(
          std::make_shared<CompareNode>(attr, op, Advance().text));
    }
    if (Peek().kind == TokenKind::kNumber) {
      auto value = ParseInt64(Advance().text);
      if (!value.ok()) return value.status();
      return PredicatePtr(
          std::make_shared<CompareNode>(attr, op, value.value()));
    }
    return Error("expected literal");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<PredicatePtr> ParsePredicate(const std::string& text) {
  if (StripWhitespace(text).empty()) return TruePredicate();
  Tokenizer tokenizer(text);
  auto tokens = tokenizer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

PredicatePtr TruePredicate() {
  static const PredicatePtr node = std::make_shared<TrueNode>();
  return node;
}

}  // namespace avdb

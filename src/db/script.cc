#include "db/script.h"

#include <cctype>
#include <sstream>

#include "base/status.h"
#include "base/strings.h"

namespace avdb {

namespace {

/// Splits a statement into tokens, keeping quoted strings (with their
/// quotes) intact so `select ... where title = "60 Minutes"` survives.
std::vector<std::string> Tokenize(const std::string& statement) {
  std::vector<std::string> tokens;
  std::string current;
  char quote = 0;
  for (char c : statement) {
    if (quote != 0) {
      current += c;
      if (c == quote) quote = 0;
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
      current += c;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
      continue;
    }
    current += c;
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

/// Splits "name.port" at the last dot.
Result<std::pair<std::string, std::string>> SplitEndpoint(
    const std::string& endpoint) {
  const size_t dot = endpoint.rfind('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 == endpoint.size()) {
    return Status::InvalidArgument("expected NAME.PORT, got: " + endpoint);
  }
  return std::make_pair(endpoint.substr(0, dot), endpoint.substr(dot + 1));
}

}  // namespace

ScriptSession::ScriptSession(AvDatabase* db, std::string session_name)
    : db_(db), session_(std::move(session_name)) {}

ScriptSession::~ScriptSession() {
  AVDB_IGNORE_STATUS(db_->CloseSession(session_),
                     "best-effort close in destructor; nowhere to report");
}

Result<std::string> ScriptSession::Execute(const std::string& statement) {
  const std::string trimmed(StripWhitespace(statement));
  if (trimmed.empty() || trimmed[0] == '#') return std::string("");
  auto tokens = Tokenize(trimmed);

  // VAR = select ...
  if (tokens.size() >= 3 && tokens[1] == "=" && tokens[2] == "select") {
    const size_t select_at = trimmed.find("select");
    return SelectInto(tokens[0], trimmed.substr(select_at));
  }
  const std::string& verb = tokens[0];
  if (verb == "new" && tokens.size() >= 2 && tokens[1] == "activity") {
    return NewActivity(tokens);
  }
  if (verb == "new" && tokens.size() >= 2 && tokens[1] == "connection") {
    return NewConnection(tokens);
  }
  if (verb == "bind") return Bind(tokens);
  if (verb == "cue") return Cue(tokens);
  if (verb == "start" && tokens.size() == 2) return StartByName(tokens[1]);
  if ((verb == "stop" || verb == "pause" || verb == "resume") &&
      tokens.size() == 2) {
    return Control(verb, tokens[1]);
  }
  if (verb == "run") return Run(tokens);
  return Status::InvalidArgument("unrecognized statement: " + trimmed);
}

Status ScriptSession::ExecuteScript(const std::string& script,
                                    std::ostream* log) {
  std::istringstream lines(script);
  std::string line;
  while (std::getline(lines, line)) {
    const std::string trimmed(StripWhitespace(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto result = Execute(trimmed);
    if (log != nullptr) {
      *log << "> " << trimmed << "\n";
      if (result.ok() && !result.value().empty()) {
        *log << "  " << result.value() << "\n";
      }
      if (!result.ok()) *log << "  ERROR: " << result.status() << "\n";
    }
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

Result<std::string> ScriptSession::NewActivity(
    const std::vector<std::string>& tokens) {
  // new activity KIND (for PATH | quality Q) as NAME
  if (tokens.size() < 6 || tokens[tokens.size() - 2] != "as") {
    return Status::InvalidArgument(
        "expected: new activity KIND ... as NAME");
  }
  const std::string& kind = tokens[2];
  const std::string& name = tokens.back();
  if (client_activities_.count(name) > 0 || sources_.count(name) > 0) {
    return Status::AlreadyExists("script name taken: " + name);
  }

  if (kind == "VideoSource" || kind == "AudioSource" ||
      kind == "MultiSource") {
    if (tokens[3] != "for") {
      return Status::InvalidArgument("expected: ... " + kind +
                                     " for CLASS.PATH as NAME");
    }
    PendingSource source;
    source.kind = kind;
    source.attr_or_tcomp_path = tokens[4];
    sources_[name] = std::move(source);
    return "activity " + name + " declared for " + tokens[4] +
           " (materializes at bind)";
  }

  if (kind == "VideoWindow") {
    if (tokens[3] != "quality") {
      return Status::InvalidArgument(
          "expected: ... VideoWindow quality WxHxD@R as NAME");
    }
    auto quality = VideoQuality::Parse(tokens[4]);
    if (!quality.ok()) return quality.status();
    auto window = VideoWindow::Create(name, ActivityLocation::kClient,
                                      db_->env(), quality.value());
    AVDB_RETURN_IF_ERROR(db_->graph().Add(window));
    client_activities_[name] = window;
    return "activity " + name + " created: " + window->Describe();
  }

  if (kind == "AudioSink") {
    if (tokens[3] != "quality") {
      return Status::InvalidArgument(
          "expected: ... AudioSink quality (voice|FM|CD) as NAME");
    }
    auto quality = ParseAudioQuality(tokens[4]);
    if (!quality.ok()) return quality.status();
    auto sink = AudioSink::Create(name, ActivityLocation::kClient,
                                  db_->env(), quality.value());
    AVDB_RETURN_IF_ERROR(db_->graph().Add(sink));
    client_activities_[name] = sink;
    return "activity " + name + " created: " + sink->Describe();
  }

  return Status::InvalidArgument("unknown activity kind: " + kind);
}

Result<std::string> ScriptSession::NewConnection(
    const std::vector<std::string>& tokens) {
  // new connection from A.P to B.Q [via CH] as NAME
  if (tokens.size() < 8 || tokens[2] != "from" || tokens[4] != "to" ||
      tokens[tokens.size() - 2] != "as") {
    return Status::InvalidArgument(
        "expected: new connection from A.P to B.Q [via CHANNEL] as NAME");
  }
  PendingConnection connection;
  auto from = SplitEndpoint(tokens[3]);
  if (!from.ok()) return from.status();
  auto to = SplitEndpoint(tokens[5]);
  if (!to.ok()) return to.status();
  connection.from_activity = from.value().first;
  connection.from_port = from.value().second;
  connection.to_activity = to.value().first;
  connection.to_port = to.value().second;
  connection.name = tokens.back();
  if (tokens.size() >= 10 && tokens[6] == "via") {
    connection.channel = tokens[7];
    AVDB_RETURN_IF_ERROR(db_->GetChannel(connection.channel).status());
  }
  for (const auto& existing : connections_) {
    if (existing.name == connection.name) {
      return Status::AlreadyExists("connection name taken: " +
                                   connection.name);
    }
  }
  connections_.push_back(std::move(connection));
  std::string report;
  AVDB_RETURN_IF_ERROR(EstablishReadyConnections(&report));
  if (!report.empty()) return "connection declared; " + report;
  return std::string("connection declared (wires when both ends exist)");
}

Result<std::string> ScriptSession::SelectInto(const std::string& variable,
                                              const std::string& rest) {
  // rest = select CLASS [where PRED]
  auto tokens = Tokenize(rest);
  if (tokens.size() < 2) {
    return Status::InvalidArgument("expected: select CLASS [where ...]");
  }
  const std::string& class_name = tokens[1];
  std::string predicate;
  const size_t where_at = rest.find(" where ");
  if (where_at != std::string::npos) {
    predicate = rest.substr(where_at + 7);
  }
  auto oids = db_->Select(class_name, predicate);
  if (!oids.ok()) return oids.status();
  variables_[variable] = oids.value();
  return variable + " = " + std::to_string(oids.value().size()) +
         " reference(s)";
}

Result<std::string> ScriptSession::Bind(
    const std::vector<std::string>& tokens) {
  // bind VAR.PATH to NAME
  if (tokens.size() != 4 || tokens[2] != "to") {
    return Status::InvalidArgument("expected: bind VAR.PATH to NAME");
  }
  const size_t dot = tokens[1].find('.');
  if (dot == std::string::npos) {
    return Status::InvalidArgument("expected VAR.PATH, got: " + tokens[1]);
  }
  const std::string variable = tokens[1].substr(0, dot);
  const std::string path = tokens[1].substr(dot + 1);
  auto var_it = variables_.find(variable);
  if (var_it == variables_.end()) {
    return Status::NotFound("variable: " + variable);
  }
  if (var_it->second.empty()) {
    return Status::FailedPrecondition("variable " + variable +
                                      " holds no references");
  }
  const Oid oid = var_it->second.front();

  auto source_it = sources_.find(tokens[3]);
  if (source_it == sources_.end()) {
    return Status::NotFound("source activity: " + tokens[3]);
  }
  PendingSource& source = source_it->second;
  if (source.materialized) {
    return Status::FailedPrecondition("source already bound: " + tokens[3]);
  }

  Result<StreamHandle> handle = Status::Internal("unset");
  if (source.kind == "MultiSource") {
    handle = db_->NewMultiSourceFor(session_, oid, path, nullptr);
  } else {
    handle = db_->NewSourceFor(session_, oid, path);
  }
  if (!handle.ok()) return handle.status();
  source.handle = handle.value();
  source.materialized = true;
  if (source.has_cue) {
    AVDB_RETURN_IF_ERROR(source.handle.source->Cue(source.cue));
  }
  std::string report;
  AVDB_RETURN_IF_ERROR(EstablishReadyConnections(&report));
  std::string out = "bound " + tokens[1] + " to " + tokens[3];
  if (!report.empty()) out += "; " + report;
  return out;
}

Result<std::string> ScriptSession::Cue(
    const std::vector<std::string>& tokens) {
  // cue NAME to SECONDS
  if (tokens.size() != 4 || tokens[2] != "to") {
    return Status::InvalidArgument("expected: cue NAME to SECONDS");
  }
  auto seconds = ParseDouble(tokens[3]);
  if (!seconds.ok()) return seconds.status();
  const WorldTime at = WorldTime(
      Rational(static_cast<int64_t>(seconds.value() * 1000), 1000));
  auto source_it = sources_.find(tokens[1]);
  if (source_it != sources_.end()) {
    if (source_it->second.materialized) {
      AVDB_RETURN_IF_ERROR(source_it->second.handle.source->Cue(at));
    } else {
      source_it->second.cue = at;
      source_it->second.has_cue = true;
    }
    return "cued " + tokens[1] + " to " + at.ToString();
  }
  auto activity = Resolve(tokens[1]);
  if (!activity.ok()) return activity.status();
  AVDB_RETURN_IF_ERROR(activity.value()->Cue(at));
  return "cued " + tokens[1] + " to " + at.ToString();
}

Result<std::string> ScriptSession::StartByName(const std::string& name) {
  // A connection name starts its source's stream; a source name works too.
  for (const auto& connection : connections_) {
    if (connection.name != name) continue;
    if (!connection.established) {
      return Status::FailedPrecondition("connection " + name +
                                        " is not wired yet (bind first)");
    }
    auto source_it = sources_.find(connection.from_activity);
    if (source_it != sources_.end() && source_it->second.materialized) {
      AVDB_RETURN_IF_ERROR(db_->StartStream(source_it->second.handle));
      return "started " + name;
    }
    // Client-side producer (rare): start directly.
    auto activity = Resolve(connection.from_activity);
    if (!activity.ok()) return activity.status();
    AVDB_RETURN_IF_ERROR(activity.value()->Start());
    return "started " + name;
  }
  auto source_it = sources_.find(name);
  if (source_it != sources_.end() && source_it->second.materialized) {
    AVDB_RETURN_IF_ERROR(db_->StartStream(source_it->second.handle));
    return "started " + name;
  }
  return Status::NotFound("nothing startable named " + name);
}

Result<std::string> ScriptSession::Control(const std::string& verb,
                                           const std::string& name) {
  // Resolve to a stream handle through a connection or source name.
  const PendingSource* source = nullptr;
  auto source_it = sources_.find(name);
  if (source_it != sources_.end()) {
    source = &source_it->second;
  } else {
    for (const auto& connection : connections_) {
      if (connection.name == name) {
        auto from_it = sources_.find(connection.from_activity);
        if (from_it != sources_.end()) source = &from_it->second;
        break;
      }
    }
  }
  if (source == nullptr || !source->materialized) {
    return Status::NotFound("no stream behind name " + name);
  }
  std::string past;
  if (verb == "stop") {
    AVDB_RETURN_IF_ERROR(db_->StopStream(source->handle));
    past = "stopped";
  } else if (verb == "pause") {
    AVDB_RETURN_IF_ERROR(db_->PauseStream(source->handle));
    past = "paused";
  } else {
    AVDB_RETURN_IF_ERROR(db_->ResumeStream(source->handle));
    past = "resumed";
  }
  return past + " " + name;
}

Result<std::string> ScriptSession::Run(
    const std::vector<std::string>& tokens) {
  if (tokens.size() == 1) {
    const int64_t events = db_->RunUntilIdle();
    return "ran to idle (" + std::to_string(events) + " events), t=" +
           db_->engine().Now().ToString();
  }
  auto seconds = ParseDouble(tokens[1]);
  if (!seconds.ok()) return seconds.status();
  const WorldTime until =
      db_->engine().Now() +
      WorldTime(Rational(static_cast<int64_t>(seconds.value() * 1000), 1000));
  db_->RunUntil(until);
  return "ran to t=" + db_->engine().Now().ToString();
}

Result<MediaActivity*> ScriptSession::Resolve(const std::string& name) const {
  auto client_it = client_activities_.find(name);
  if (client_it != client_activities_.end()) return client_it->second.get();
  auto source_it = sources_.find(name);
  if (source_it != sources_.end() && source_it->second.materialized) {
    return source_it->second.handle.source;
  }
  return Status::NotFound("activity: " + name);
}

Status ScriptSession::EstablishReadyConnections(std::string* report) {
  for (auto& connection : connections_) {
    if (connection.established) continue;
    auto from = Resolve(connection.from_activity);
    auto to = Resolve(connection.to_activity);
    if (!from.ok() || !to.ok()) continue;  // still pending
    auto established = db_->NewConnection(from.value(), connection.from_port,
                                          to.value(), connection.to_port,
                                          connection.channel);
    if (!established.ok()) return established.status();
    connection.established = true;
    if (!report->empty()) *report += ", ";
    *report += "wired " + connection.name + " (" +
               established.value()->Describe() + ")";
  }
  return Status::OK();
}

Result<std::vector<Oid>> ScriptSession::Variable(
    const std::string& name) const {
  auto it = variables_.find(name);
  if (it == variables_.end()) return Status::NotFound("variable: " + name);
  return it->second;
}

Result<MediaActivity*> ScriptSession::Activity(const std::string& name) const {
  return Resolve(name);
}

}  // namespace avdb

#include "db/lock_manager.h"

namespace avdb {

Status LockManager::Acquire(Oid oid, LockMode mode, const std::string& owner) {
  Entry& entry = locks_[oid];
  if (mode == LockMode::kShared) {
    if (!entry.exclusive_holder.empty()) {
      // An exclusive holder's shared request is subsumed by its stronger
      // lock; anyone else conflicts.
      if (entry.exclusive_holder == owner) return Status::OK();
      ++stats_.conflicts;
      return Status::Unavailable("object " + std::to_string(oid.value()) +
                                 " exclusively locked by " +
                                 entry.exclusive_holder);
    }
    entry.shared_holders.insert(owner);
    ++stats_.acquired;
    return Status::OK();
  }
  // Exclusive.
  if (!entry.exclusive_holder.empty()) {
    if (entry.exclusive_holder == owner) return Status::OK();
    ++stats_.conflicts;
    return Status::Unavailable("object " + std::to_string(oid.value()) +
                               " exclusively locked by " +
                               entry.exclusive_holder);
  }
  const bool others_share =
      !entry.shared_holders.empty() &&
      !(entry.shared_holders.size() == 1 &&
        entry.shared_holders.count(owner) == 1);
  if (others_share) {
    ++stats_.conflicts;
    return Status::Unavailable("object " + std::to_string(oid.value()) +
                               " share-locked by other sessions");
  }
  entry.shared_holders.erase(owner);  // upgrade
  entry.exclusive_holder = owner;
  ++stats_.acquired;
  return Status::OK();
}

void LockManager::Release(Oid oid, const std::string& owner) {
  auto it = locks_.find(oid);
  if (it == locks_.end()) return;
  it->second.shared_holders.erase(owner);
  if (it->second.exclusive_holder == owner) {
    it->second.exclusive_holder.clear();
  }
  if (it->second.shared_holders.empty() &&
      it->second.exclusive_holder.empty()) {
    locks_.erase(it);
  }
}

void LockManager::ReleaseAll(const std::string& owner) {
  for (auto it = locks_.begin(); it != locks_.end();) {
    it->second.shared_holders.erase(owner);
    if (it->second.exclusive_holder == owner) {
      it->second.exclusive_holder.clear();
    }
    if (it->second.shared_holders.empty() &&
        it->second.exclusive_holder.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

bool LockManager::Holds(Oid oid, LockMode mode,
                        const std::string& owner) const {
  auto it = locks_.find(oid);
  if (it == locks_.end()) return false;
  if (it->second.exclusive_holder == owner) return true;
  return mode == LockMode::kShared &&
         it->second.shared_holders.count(owner) > 0;
}

size_t LockManager::HolderCount(Oid oid) const {
  auto it = locks_.find(oid);
  if (it == locks_.end()) return 0;
  return it->second.shared_holders.size() +
         (it->second.exclusive_holder.empty() ? 0 : 1);
}

}  // namespace avdb

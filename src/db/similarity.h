#ifndef AVDB_DB_SIMILARITY_H_
#define AVDB_DB_SIMILARITY_H_

#include <array>
#include <string>
#include <vector>

#include "base/buffer.h"
#include "base/result.h"
#include "db/object.h"
#include "media/video_value.h"

namespace avdb {

/// Content-based retrieval for video — the facility the paper's §2 survey
/// calls "problematic for image and audio, but at least discussed in
/// several lists of requirements", modelled on REDI's query-by-example:
/// features are extracted once and queries run against the features, "to
/// avoid retrieval and processing of the originals."
///
/// A VideoSignature summarizes a value as `kSegments` temporal segments,
/// each carrying a normalized luma histogram plus a motion-energy scalar.
/// Distance is L1 over the concatenated features; it is a true metric, so
/// identical values are at distance 0 and reorderings/retints move away
/// smoothly.
class VideoSignature {
 public:
  static constexpr int kSegments = 8;
  static constexpr int kBins = 16;

  VideoSignature() = default;

  /// Extracts a signature by decoding (a subsample of) the value's frames.
  /// InvalidArgument for empty values.
  static Result<VideoSignature> Extract(const VideoValue& video);

  /// L1 distance in [0, ~2·kSegments]; 0 iff feature-identical.
  double DistanceTo(const VideoSignature& other) const;

  /// Serialization for catalog storage.
  Buffer Serialize() const;
  static Result<VideoSignature> Deserialize(const Buffer& buffer);

  friend bool operator==(const VideoSignature& a, const VideoSignature& b) {
    return a.features_ == b.features_;
  }

 private:
  /// Per segment: kBins histogram weights summing to 1, then one motion
  /// scalar in [0, 1].
  std::array<double, kSegments*(kBins + 1)> features_{};
};

/// An in-memory feature index over registered videos: the "extracted
/// information" store of §2's image-database discussion.
class SimilarityIndex {
 public:
  struct Match {
    Oid oid;
    std::string attr_path;
    double distance = 0;
  };

  SimilarityIndex() = default;

  /// Registers (or replaces) the signature for `oid.attr_path`.
  void Add(Oid oid, const std::string& attr_path, VideoSignature signature);

  /// Removes an entry; false when absent.
  [[nodiscard]] bool Remove(Oid oid, const std::string& attr_path);

  size_t size() const { return entries_.size(); }

  /// The `k` nearest entries to `query`, ascending by distance.
  std::vector<Match> FindSimilar(const VideoSignature& query, int k) const;

  /// Convenience: nearest neighbours of a registered entry, excluding the
  /// entry itself (NotFound when unregistered).
  Result<std::vector<Match>> FindSimilarTo(Oid oid,
                                           const std::string& attr_path,
                                           int k) const;

 private:
  struct Entry {
    Oid oid;
    std::string attr_path;
    VideoSignature signature;
  };
  std::vector<Entry> entries_;
};

}  // namespace avdb

#endif  // AVDB_DB_SIMILARITY_H_

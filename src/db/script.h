#ifndef AVDB_DB_SCRIPT_H_
#define AVDB_DB_SCRIPT_H_

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "base/result.h"
#include "db/database.h"

namespace avdb {

/// An interpreter for the paper's §4.3 pseudo-code, so its application
/// examples run (nearly) verbatim against the live system:
///
///   new activity VideoSource for SimpleNewscast.videoTrack as dbSource
///   new activity VideoWindow quality 320x240x8@30 as appSink
///   new connection from dbSource.video_out to appSink.video_in via net
///       as videostream
///   myNews = select SimpleNewscast where title = "60 Minutes"
///   bind myNews.videoTrack to dbSource
///   start videostream
///   run 5
///   stop videostream
///
/// Statement grammar (one per line; `#` starts a comment):
///   new activity VideoSource for CLASS.PATH as NAME
///   new activity AudioSource for CLASS.PATH as NAME
///   new activity MultiSource for CLASS.TCOMP as NAME
///   new activity VideoWindow quality WxHxD@R as NAME
///   new activity AudioSink quality (voice|FM|CD) as NAME
///   new connection from NAME.PORT to NAME.PORT [via CHANNEL] as NAME
///   VAR = select CLASS where PREDICATE
///   bind VAR.PATH to NAME
///   cue NAME to SECONDS
///   start NAME          (a connection name or a bound source name)
///   pause NAME | resume NAME | stop NAME
///   run [SECONDS]       (advance virtual time; bare `run` = until idle)
///
/// Divergence from the paper, documented: §4.3 allocates database
/// resources at statement 1 (`new activity ... for ...`). Here the
/// database-side source is *materialized at `bind`* (when the object is
/// known), so admission failures surface at the bind statement;
/// connections declared before the bind are kept pending and wired the
/// moment the source exists.
class ScriptSession {
 public:
  /// Statements run against `db` as session `session_name` (locks and
  /// streams are owned by that session).
  ScriptSession(AvDatabase* db, std::string session_name);

  ~ScriptSession();

  ScriptSession(const ScriptSession&) = delete;
  ScriptSession& operator=(const ScriptSession&) = delete;

  /// Executes one statement; returns a one-line human-readable result.
  Result<std::string> Execute(const std::string& statement);

  /// Executes a multi-line script, stopping at the first failing
  /// statement. Each statement's echo + result is written to `log`
  /// (may be null).
  Status ExecuteScript(const std::string& script, std::ostream* log);

  /// Oids bound to a select variable.
  Result<std::vector<Oid>> Variable(const std::string& name) const;

  /// A client-side activity created by the script (e.g. the VideoWindow),
  /// for inspecting results after the run.
  Result<MediaActivity*> Activity(const std::string& name) const;

 private:
  struct PendingSource {
    std::string attr_or_tcomp_path;  // "CLASS.PATH" as written
    std::string kind;                // VideoSource/AudioSource/MultiSource
    bool materialized = false;
    StreamHandle handle;             // valid once materialized
    WorldTime cue;                   // applied at materialization
    bool has_cue = false;
  };
  struct PendingConnection {
    std::string from_activity;
    std::string from_port;
    std::string to_activity;
    std::string to_port;
    std::string channel;
    std::string name;
    bool established = false;
  };

  Result<std::string> NewActivity(const std::vector<std::string>& tokens);
  Result<std::string> NewConnection(const std::vector<std::string>& tokens);
  Result<std::string> SelectInto(const std::string& variable,
                                 const std::string& rest);
  Result<std::string> Bind(const std::vector<std::string>& tokens);
  Result<std::string> Cue(const std::vector<std::string>& tokens);
  Result<std::string> StartByName(const std::string& name);
  Result<std::string> Control(const std::string& verb,
                              const std::string& name);
  Result<std::string> Run(const std::vector<std::string>& tokens);

  /// Finds the live MediaActivity behind a script name (client activity or
  /// materialized source).
  Result<MediaActivity*> Resolve(const std::string& name) const;

  /// Wires any pending connections whose endpoints now both exist.
  Status EstablishReadyConnections(std::string* report);

  AvDatabase* db_;
  std::string session_;
  std::map<std::string, std::vector<Oid>> variables_;
  std::map<std::string, MediaActivityPtr> client_activities_;
  std::map<std::string, PendingSource> sources_;
  std::vector<PendingConnection> connections_;
};

}  // namespace avdb

#endif  // AVDB_DB_SCRIPT_H_

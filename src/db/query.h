#ifndef AVDB_DB_QUERY_H_
#define AVDB_DB_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "db/object.h"

namespace avdb {

/// Comparison operators of the predicate language.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

std::string_view CompareOpName(CompareOp op);

/// A parsed predicate over one class's scalar attributes — the `where`
/// clause of the paper's pseudo-code:
///
///   select SimpleNewscast where (title = "60 Minutes" and
///                                whenBroadcast = someDate)
///
/// Grammar (case-insensitive keywords):
///   expr    := orExpr
///   orExpr  := andExpr ( 'or' andExpr )*
///   andExpr := unary ( 'and' unary )*
///   unary   := 'not' unary | '(' expr ')' | comparison
///   comparison := IDENT OP literal
///   OP      := '=' '!=' '<' '<=' '>' '>=' 'contains'
///   literal := quoted string | integer
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Evaluates against an object; unset attributes make comparisons false.
  virtual bool Matches(const DbObject& object) const = 0;

  /// Re-rendered predicate text (canonical form, for diagnostics).
  virtual std::string ToString() const = 0;

  /// If this predicate (or some conjunct of it) pins `attribute = value`,
  /// reports the attribute and value so an equality index can prefilter.
  /// Returns false when no such conjunct exists.
  virtual bool EqualityPin(std::string* attribute,
                           ScalarValue* value) const = 0;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// Parses a predicate. Returns InvalidArgument with a position-annotated
/// message on syntax errors.
Result<PredicatePtr> ParsePredicate(const std::string& text);

/// Always-true predicate (an empty `where` clause).
PredicatePtr TruePredicate();

}  // namespace avdb

#endif  // AVDB_DB_QUERY_H_

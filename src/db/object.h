#ifndef AVDB_DB_OBJECT_H_
#define AVDB_DB_OBJECT_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "base/result.h"
#include "db/schema.h"
#include "media/media_value.h"
#include "time/timeline.h"

namespace avdb {

/// Object identifier. §3.1: "certain requests, such as queries, may return
/// references (i.e., names or identifiers) to AV values rather than the
/// values themselves." Oids are those references.
class Oid {
 public:
  Oid() = default;
  explicit Oid(uint64_t value) : value_(value) {}

  uint64_t value() const { return value_; }
  bool IsNull() const { return value_ == 0; }

  friend bool operator==(Oid a, Oid b) { return a.value_ == b.value_; }
  friend bool operator!=(Oid a, Oid b) { return !(a == b); }
  friend bool operator<(Oid a, Oid b) { return a.value_ < b.value_; }

 private:
  uint64_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, Oid oid);

/// Value of a scalar attribute.
using ScalarValue = std::variant<std::string, int64_t>;

std::string ScalarToString(const ScalarValue& v);

/// One stored version of a media attribute: where the serialized value
/// lives (blob name + device are tracked by the database) and its media
/// data type for quality matching.
struct MediaVersion {
  int version = 1;
  std::string blob_name;
  std::string device;
  MediaDataType stored_type;
  int64_t stored_bytes = 0;
};

/// State of one media attribute: full version history, newest last —
/// the version control the multimedia-database survey (§2) calls for.
struct MediaAttrState {
  std::vector<MediaVersion> versions;

  bool HasValue() const { return !versions.empty(); }
  const MediaVersion& Current() const { return versions.back(); }
};

/// Per-instance state of a temporal composite: the per-track media
/// attributes plus the Fig. 1 timeline giving each track's placement.
struct TcompInstance {
  Timeline timeline;
  std::map<std::string, MediaAttrState> tracks;
};

/// A stored database object: an instance of a ClassDef. Holds scalar
/// values, media attribute references, and tcomp instances. The object
/// never embeds AV bytes — media lives in device blobs, exactly the
/// separation the paper's client interface assumes.
class DbObject {
 public:
  DbObject(Oid oid, std::string class_name)
      : oid_(oid), class_name_(std::move(class_name)) {}

  Oid oid() const { return oid_; }
  const std::string& class_name() const { return class_name_; }

  // Scalars -----------------------------------------------------------------
  Status SetScalar(const std::string& attr, ScalarValue value);
  Result<ScalarValue> GetScalar(const std::string& attr) const;
  bool HasScalar(const std::string& attr) const {
    return scalars_.count(attr) > 0;
  }
  const std::map<std::string, ScalarValue>& scalars() const {
    return scalars_;
  }

  // Media attributes ----------------------------------------------------------
  MediaAttrState& MediaAttr(const std::string& attr) {
    return media_[attr];
  }
  Result<const MediaAttrState*> FindMediaAttr(const std::string& attr) const;
  const std::map<std::string, MediaAttrState>& media() const { return media_; }

  // Temporal composites -------------------------------------------------------
  TcompInstance& Tcomp(const std::string& name) { return tcomps_[name]; }
  Result<const TcompInstance*> FindTcomp(const std::string& name) const;
  const std::map<std::string, TcompInstance>& tcomps() const {
    return tcomps_;
  }

 private:
  Oid oid_;
  std::string class_name_;
  std::map<std::string, ScalarValue> scalars_;
  std::map<std::string, MediaAttrState> media_;
  std::map<std::string, TcompInstance> tcomps_;
};

}  // namespace avdb

#endif  // AVDB_DB_OBJECT_H_

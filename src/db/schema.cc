#include "db/schema.h"

#include <sstream>

namespace avdb {

std::string_view AttrTypeName(AttrType type) {
  switch (type) {
    case AttrType::kString:
      return "String";
    case AttrType::kInt:
      return "Int";
    case AttrType::kDate:
      return "Date";
    case AttrType::kVideo:
      return "VideoValue";
    case AttrType::kAudio:
      return "AudioValue";
    case AttrType::kText:
      return "TextStreamValue";
  }
  return "Unknown";
}

bool IsMediaAttrType(AttrType type) {
  return type == AttrType::kVideo || type == AttrType::kAudio ||
         type == AttrType::kText;
}

const TrackDef* TcompDef::FindTrack(const std::string& track_name) const {
  for (const auto& t : tracks) {
    if (t.name == track_name) return &t;
  }
  return nullptr;
}

bool ClassDef::NameTaken(const std::string& name) const {
  return FindAttribute(name) != nullptr || FindTcomp(name) != nullptr;
}

Status ClassDef::AddAttribute(AttributeDef attr) {
  if (attr.name.empty()) return Status::InvalidArgument("empty attribute name");
  if (NameTaken(attr.name)) {
    return Status::AlreadyExists("attribute exists: " + name_ + "." +
                                 attr.name);
  }
  attributes_.push_back(std::move(attr));
  return Status::OK();
}

Status ClassDef::AddTcomp(TcompDef tcomp) {
  if (tcomp.name.empty()) return Status::InvalidArgument("empty tcomp name");
  if (NameTaken(tcomp.name)) {
    return Status::AlreadyExists("attribute exists: " + name_ + "." +
                                 tcomp.name);
  }
  if (tcomp.tracks.empty()) {
    return Status::InvalidArgument("tcomp needs at least one track");
  }
  for (size_t i = 0; i < tcomp.tracks.size(); ++i) {
    if (!IsMediaAttrType(tcomp.tracks[i].type)) {
      return Status::InvalidArgument("tcomp track must be media-typed: " +
                                     tcomp.tracks[i].name);
    }
    for (size_t j = i + 1; j < tcomp.tracks.size(); ++j) {
      if (tcomp.tracks[i].name == tcomp.tracks[j].name) {
        return Status::InvalidArgument("duplicate track name: " +
                                       tcomp.tracks[i].name);
      }
    }
  }
  tcomps_.push_back(std::move(tcomp));
  return Status::OK();
}

const AttributeDef* ClassDef::FindAttribute(
    const std::string& attr_name) const {
  for (const auto& a : attributes_) {
    if (a.name == attr_name) return &a;
  }
  return nullptr;
}

const TcompDef* ClassDef::FindTcomp(const std::string& tcomp_name) const {
  for (const auto& t : tcomps_) {
    if (t.name == tcomp_name) return &t;
  }
  return nullptr;
}

std::string ClassDef::ToString() const {
  std::ostringstream os;
  os << "class " << name_ << " {\n";
  for (const auto& a : attributes_) {
    os << "  " << AttrTypeName(a.type) << " " << a.name;
    if (a.video_quality.has_value()) {
      os << " quality " << a.video_quality->ToString();
    }
    if (a.audio_quality.has_value()) {
      os << " quality " << AudioQualityName(*a.audio_quality);
    }
    os << "\n";
  }
  for (const auto& t : tcomps_) {
    os << "  tcomp " << t.name << " {\n";
    for (const auto& track : t.tracks) {
      os << "    " << AttrTypeName(track.type) << " " << track.name;
      if (track.video_quality.has_value()) {
        os << " quality " << track.video_quality->ToString();
      }
      if (track.audio_quality.has_value()) {
        os << " quality " << AudioQualityName(*track.audio_quality);
      }
      os << "\n";
    }
    os << "  }\n";
  }
  os << "}";
  return os.str();
}

}  // namespace avdb

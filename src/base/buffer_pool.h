#ifndef AVDB_BASE_BUFFER_POOL_H_
#define AVDB_BASE_BUFFER_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/buffer.h"
#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace avdb {

/// Instrument names under which the obs layer exports the shared pool's
/// stats (see obs/pool_metrics.h). Defined here so the names live with the
/// data they describe and keep the `avdb_base_` layer prefix.
inline constexpr char kPoolAcquiresMetric[] = "avdb_base_pool_acquires";
inline constexpr char kPoolReusesMetric[] = "avdb_base_pool_reuses";
inline constexpr char kPoolAllocationsMetric[] = "avdb_base_pool_allocations";
inline constexpr char kPoolReleasesMetric[] = "avdb_base_pool_releases";
inline constexpr char kPoolDropsMetric[] = "avdb_base_pool_drops";

/// Thread-safe free-list of the backing stores the codec inner loops churn
/// through: byte planes (`std::vector<uint8_t>`, also the store behind
/// `Buffer` and `VideoFrame`) and centered-sample planes
/// (`std::vector<int16_t>`). Per-frame encode/decode used to heap-allocate
/// several planes per frame; recycling them through this pool makes the
/// steady-state hot path allocation-free.
///
/// Acquire returns a block resized to the requested length with
/// *unspecified contents* — callers overwrite every element (all current
/// call sites fill the full plane). Release hands the capacity back;
/// blocks beyond `max_free_per_class` are dropped to bound idle footprint.
class BufferPool {
 public:
  explicit BufferPool(size_t max_free_per_class = 32)
      : max_free_(max_free_per_class) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Process-wide pool used by the codec kernels. Never destroyed.
  static BufferPool& Shared();

  std::vector<uint8_t> AcquireBytes(size_t size) { return bytes_.Acquire(size); }
  void Release(std::vector<uint8_t>&& block) {
    bytes_.Release(std::move(block), max_free_);
  }

  std::vector<int16_t> AcquireI16(size_t size) { return i16_.Acquire(size); }
  void Release(std::vector<int16_t>&& block) {
    i16_.Release(std::move(block), max_free_);
  }

  /// Buffer built over a pooled byte block (empty, with `reserve` bytes of
  /// capacity ready to append into).
  Buffer AcquireBuffer(size_t reserve) {
    std::vector<uint8_t> block = AcquireBytes(reserve);
    block.clear();
    return Buffer(std::move(block));
  }
  void Release(Buffer&& buffer) { Release(std::move(buffer.bytes())); }

  /// Drops every cached free block.
  void Trim() {
    bytes_.Trim();
    i16_.Trim();
  }

  struct Stats {
    int64_t acquires = 0;     ///< total Acquire* calls
    int64_t reuses = 0;       ///< acquires served without a heap allocation
    int64_t allocations = 0;  ///< acquires that had to touch the heap
    int64_t releases = 0;     ///< blocks handed back
    int64_t drops = 0;        ///< releases discarded because the list was full
  };
  Stats stats() const {
    Stats s;
    s.acquires = bytes_.acquires + i16_.acquires;
    s.reuses = bytes_.reuses + i16_.reuses;
    s.allocations = bytes_.allocations + i16_.allocations;
    s.releases = bytes_.releases + i16_.releases;
    s.drops = bytes_.drops + i16_.drops;
    return s;
  }
  void ResetStats() {
    bytes_.ResetStats();
    i16_.ResetStats();
  }

  /// RAII lease of a byte plane: acquires on construction, releases on
  /// destruction. Keeps codec kernels exception/early-return safe.
  class BytesLease {
   public:
    BytesLease(BufferPool* pool, size_t size)
        : pool_(pool), block_(pool->AcquireBytes(size)) {}
    ~BytesLease() { pool_->Release(std::move(block_)); }
    BytesLease(const BytesLease&) = delete;
    BytesLease& operator=(const BytesLease&) = delete;
    std::vector<uint8_t>& operator*() { return block_; }
    std::vector<uint8_t>* operator->() { return &block_; }

   private:
    BufferPool* pool_;
    std::vector<uint8_t> block_;
  };

  /// RAII lease of a centered-sample plane.
  class I16Lease {
   public:
    I16Lease(BufferPool* pool, size_t size)
        : pool_(pool), block_(pool->AcquireI16(size)) {}
    ~I16Lease() { pool_->Release(std::move(block_)); }
    I16Lease(const I16Lease&) = delete;
    I16Lease& operator=(const I16Lease&) = delete;
    std::vector<int16_t>& operator*() { return block_; }
    std::vector<int16_t>* operator->() { return &block_; }

   private:
    BufferPool* pool_;
    std::vector<int16_t> block_;
  };

 private:
  template <typename T>
  struct FreeList {
    Mutex mu;
    std::vector<std::vector<T>> free AVDB_GUARDED_BY(mu);
    std::atomic<int64_t> acquires{0};
    std::atomic<int64_t> reuses{0};
    std::atomic<int64_t> allocations{0};
    std::atomic<int64_t> releases{0};
    std::atomic<int64_t> drops{0};

    std::vector<T> Acquire(size_t size) AVDB_EXCLUDES(mu) {
      acquires.fetch_add(1, std::memory_order_relaxed);
      std::vector<T> block;
      {
        // Best fit: the smallest cached block that already holds `size`.
        // The codec working set mixes capacity classes (whole frames,
        // single planes, bitstream scratch); taking blocks LIFO would hand
        // a plane-sized block to a frame-sized request and force a heap
        // miss every cycle. The list is bounded (max_free), so the scan is
        // a few dozen capacity reads at worst.
        MutexLock lock(mu);
        size_t best = free.size();
        for (size_t i = 0; i < free.size(); ++i) {
          if (free[i].capacity() < size) continue;
          if (best == free.size() ||
              free[i].capacity() < free[best].capacity()) {
            best = i;
          }
        }
        if (size > 0 && best < free.size()) {
          block = std::move(free[best]);
          free[best] = std::move(free.back());
          free.pop_back();
        }
        // No fit (or zero-size request): leave the cache alone and allocate
        // fresh, so existing capacity classes survive for the requests they
        // do fit.
      }
      if (size > 0) {
        // A recycled capacity >= size means resize() cannot allocate; the
        // steady-state zero-allocation guarantee hangs off this counter.
        if (block.capacity() >= size) {
          reuses.fetch_add(1, std::memory_order_relaxed);
        } else {
          allocations.fetch_add(1, std::memory_order_relaxed);
        }
      }
      block.resize(size);
      return block;
    }

    void Release(std::vector<T>&& block, size_t max_free) AVDB_EXCLUDES(mu) {
      releases.fetch_add(1, std::memory_order_relaxed);
      if (block.capacity() == 0) return;
      MutexLock lock(mu);
      if (free.size() >= max_free) {
        drops.fetch_add(1, std::memory_order_relaxed);
        return;  // block freed on scope exit
      }
      free.push_back(std::move(block));
    }

    void Trim() AVDB_EXCLUDES(mu) {
      MutexLock lock(mu);
      free.clear();
    }

    void ResetStats() {
      acquires = 0;
      reuses = 0;
      allocations = 0;
      releases = 0;
      drops = 0;
    }
  };

  size_t max_free_;
  FreeList<uint8_t> bytes_;
  FreeList<int16_t> i16_;
};

}  // namespace avdb

#endif  // AVDB_BASE_BUFFER_POOL_H_

#ifndef AVDB_BASE_RATIONAL_H_
#define AVDB_BASE_RATIONAL_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace avdb {

/// Exact rational number over int64. Media timing is full of non-binary
/// rates (NTSC's 30000/1001 fps, 44.1 kHz audio against 25 fps video), so
/// the temporal substrate computes in rationals and converts to ticks only
/// at device boundaries. Always stored in lowest terms with positive
/// denominator.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /// Integer value.
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT(runtime/explicit): ints are exact rationals
  /// num/den; den must be nonzero (checked).
  Rational(int64_t num, int64_t den);

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  bool IsZero() const { return num_ == 0; }
  bool IsNegative() const { return num_ < 0; }
  bool IsInteger() const { return den_ == 1; }

  double ToDouble() const { return static_cast<double>(num_) / den_; }

  /// Truncation toward zero.
  int64_t Truncated() const { return num_ / den_; }
  /// Largest integer <= value.
  int64_t Floor() const;
  /// Smallest integer >= value.
  int64_t Ceil() const;
  /// Nearest integer, halves away from zero.
  int64_t Rounded() const;

  Rational operator-() const { return Rational(-num_, den_); }
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Division; `o` must be nonzero (checked).
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  Rational Reciprocal() const;
  Rational Abs() const { return num_ < 0 ? -*this : *this; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator<=(const Rational& a, const Rational& b) {
    return a == b || a < b;
  }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return b <= a;
  }

  /// "num/den", or just "num" when integral.
  std::string ToString() const;

 private:
  void Normalize();

  int64_t num_;
  int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace avdb

#endif  // AVDB_BASE_RATIONAL_H_

#include "base/fault_injector.h"

#include <cstdio>

namespace avdb {

FaultSpec FaultSpec::TransientReads(double p) {
  FaultSpec spec;
  spec.read_error_rate = p;
  spec.latency_spike_rate = p / 2;
  spec.latency_spike_ns = 30 * 1000 * 1000;  // 30 ms bus hiccup
  return spec;
}

FaultSpec FaultSpec::PowerCut(int64_t nth_write) {
  FaultSpec spec;
  spec.power_cut_at_write = nth_write;
  return spec;
}

FaultSpec FaultSpec::NodeCrash(int64_t nth_op) {
  FaultSpec spec;
  spec.node_crash_at_op = nth_op;
  return spec;
}

bool FaultSpec::Enabled() const {
  return read_error_rate > 0 || latency_spike_rate > 0 ||
         stuck_head_rate > 0 || exchange_failure_rate > 0 ||
         bandwidth_collapse_rate > 0 || WritesEnabled() ||
         NodeFaultsEnabled();
}

bool FaultSpec::WritesEnabled() const {
  return torn_write_rate > 0 || dropped_write_rate > 0 ||
         write_bit_flip_rate > 0 || power_cut_at_write > 0;
}

bool FaultSpec::NodeFaultsEnabled() const {
  return node_crash_at_op > 0 || node_partition_rate > 0 ||
         node_slow_rate > 0 || repair_crash_rate > 0;
}

std::string FaultSpec::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "read=%.3f spike=%.3f/%lldns stuck=%.3f exch=%.3f "
                "collapse=%.3f@%.2f torn=%.3f drop=%.3f flip=%.3f cut@%lld "
                "crash@%lld part=%.3f/%lld slow=%.3f@%.1fx repair=%.3f",
                read_error_rate, latency_spike_rate,
                static_cast<long long>(latency_spike_ns), stuck_head_rate,
                exchange_failure_rate, bandwidth_collapse_rate,
                bandwidth_collapse_factor, torn_write_rate, dropped_write_rate,
                write_bit_flip_rate,
                static_cast<long long>(power_cut_at_write),
                static_cast<long long>(node_crash_at_op), node_partition_rate,
                static_cast<long long>(node_partition_ops), node_slow_rate,
                node_slow_factor, repair_crash_rate);
  return buf;
}

FaultDecision FaultInjector::OnDeviceRead(bool needs_exchange) {
  if (powered_off_) {
    FaultDecision decision;
    decision.fail = true;
    decision.kind = "power-off";
    ++stats_.decisions;
    ++stats_.read_errors;
    return decision;
  }
  // A fixed draw order per decision keeps the trace a pure function of the
  // call sequence even as individual rates change between specs.
  const bool read_error = rng_.NextBool(spec_.read_error_rate);
  const bool exchange_failure = rng_.NextBool(spec_.exchange_failure_rate);
  const bool spike = rng_.NextBool(spec_.latency_spike_rate);
  const bool stuck = rng_.NextBool(spec_.stuck_head_rate);

  FaultDecision decision;
  ++stats_.decisions;
  if (needs_exchange && exchange_failure) {
    decision.fail = true;
    decision.kind = "exchange";
    ++stats_.exchange_failures;
    return decision;
  }
  if (read_error) {
    decision.fail = true;
    decision.kind = "read-error";
    ++stats_.read_errors;
    return decision;
  }
  if (stuck) {
    decision.extra_latency_ns += spec_.stuck_head_stall_ns;
    decision.kind = "stuck-head";
    ++stats_.stuck_heads;
  }
  if (spike) {
    decision.extra_latency_ns += spec_.latency_spike_ns;
    if (decision.kind[0] == '\0') decision.kind = "spike";
    ++stats_.latency_spikes;
  }
  stats_.extra_latency_ns += decision.extra_latency_ns;
  return decision;
}

WriteFaultDecision FaultInjector::OnDeviceWrite(int64_t length) {
  WriteFaultDecision decision;
  if (!spec_.WritesEnabled()) return decision;
  if (powered_off_) {
    decision.fail = true;
    decision.persist_bytes = 0;
    decision.kind = "power-off";
    ++stats_.write_decisions;
    return decision;
  }
  ++stats_.write_decisions;
  ++writes_seen_;
  // Fixed draw order, always five variates, so the trace stays a pure
  // function of (seed, spec, call sequence).
  const bool torn = rng_.NextBool(spec_.torn_write_rate);
  const bool dropped = rng_.NextBool(spec_.dropped_write_rate);
  const bool flip = rng_.NextBool(spec_.write_bit_flip_rate);
  const double fraction = rng_.NextDouble();
  const uint64_t position = rng_.NextU64();

  if (spec_.power_cut_at_write > 0 &&
      writes_seen_ >= spec_.power_cut_at_write) {
    // The in-flight write persists a strict prefix (possibly empty), then
    // the lights go out.
    decision.fail = true;
    decision.power_cut = true;
    decision.persist_bytes =
        length <= 0 ? 0 : static_cast<int64_t>(fraction * length);
    if (decision.persist_bytes >= length) decision.persist_bytes = length - 1;
    decision.kind = "power-cut";
    powered_off_ = true;
    ++stats_.power_cuts;
    return decision;
  }
  if (torn) {
    decision.fail = true;
    decision.persist_bytes =
        length <= 0 ? 0 : static_cast<int64_t>(fraction * length);
    if (decision.persist_bytes >= length) decision.persist_bytes = length - 1;
    decision.kind = "torn-write";
    ++stats_.torn_writes;
    return decision;
  }
  if (dropped) {
    decision.persist_bytes = 0;  // reports success; nothing reaches media
    decision.kind = "dropped-write";
    ++stats_.dropped_writes;
    return decision;
  }
  if (flip) {
    decision.bit_flip = true;
    decision.flip_offset = position;
    decision.flip_mask = static_cast<uint8_t>(1u << (position % 8));
    decision.kind = "bit-flip";
    ++stats_.write_bit_flips;
  }
  return decision;
}

NodeFaultDecision FaultInjector::OnNodeOp() {
  NodeFaultDecision decision;
  if (!spec_.NodeFaultsEnabled()) return decision;
  if (node_down_) {
    decision.fail = true;
    decision.kind = "node-down";
    ++stats_.node_ops;
    return decision;
  }
  ++stats_.node_ops;
  ++node_ops_seen_;
  // Fixed draw order, always two variates, so the node-fault trace is a
  // pure function of (seed, spec, call sequence) like every other class.
  const bool partition = rng_.NextBool(spec_.node_partition_rate);
  const bool slow = rng_.NextBool(spec_.node_slow_rate);

  if (spec_.node_crash_at_op > 0 && node_ops_seen_ >= spec_.node_crash_at_op &&
      stats_.node_crashes == 0) {
    decision.fail = true;
    decision.kind = "node-crash";
    node_down_ = true;
    ++stats_.node_crashes;
    return decision;
  }
  if (partition_ops_left_ > 0 || (partition && spec_.node_partition_ops > 0)) {
    if (partition_ops_left_ <= 0) partition_ops_left_ = spec_.node_partition_ops;
    --partition_ops_left_;
    decision.fail = true;
    decision.unresponsive = true;
    decision.kind = "node-partition";
    ++stats_.node_partition_ops;
    return decision;
  }
  if (slow && spec_.node_slow_factor > 1.0) {
    decision.slow_factor = spec_.node_slow_factor;
    decision.kind = "node-slow";
    ++stats_.node_slow_ops;
  }
  return decision;
}

NodeFaultDecision FaultInjector::OnRepairOp() {
  NodeFaultDecision decision;
  if (node_down_) {
    decision.fail = true;
    decision.kind = "node-down";
    ++stats_.repair_ops;
    return decision;
  }
  if (spec_.repair_crash_rate <= 0) return decision;  // draws nothing
  ++stats_.repair_ops;
  const bool crash = rng_.NextBool(spec_.repair_crash_rate);
  if (crash) {
    decision.fail = true;
    decision.kind = "repair-crash";
    node_down_ = true;
    ++stats_.repair_crashes;
  }
  return decision;
}

double FaultInjector::OnTransfer() {
  ++stats_.transfers;
  const bool collapse = rng_.NextBool(spec_.bandwidth_collapse_rate);
  if (!collapse || spec_.bandwidth_collapse_factor >= 1.0 ||
      spec_.bandwidth_collapse_factor <= 0.0) {
    return 1.0;
  }
  ++stats_.collapses;
  return 1.0 / spec_.bandwidth_collapse_factor;
}

}  // namespace avdb

#include "base/fault_injector.h"

#include <cstdio>

namespace avdb {

FaultSpec FaultSpec::TransientReads(double p) {
  FaultSpec spec;
  spec.read_error_rate = p;
  spec.latency_spike_rate = p / 2;
  spec.latency_spike_ns = 30 * 1000 * 1000;  // 30 ms bus hiccup
  return spec;
}

bool FaultSpec::Enabled() const {
  return read_error_rate > 0 || latency_spike_rate > 0 ||
         stuck_head_rate > 0 || exchange_failure_rate > 0 ||
         bandwidth_collapse_rate > 0;
}

std::string FaultSpec::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "read=%.3f spike=%.3f/%lldns stuck=%.3f exch=%.3f "
                "collapse=%.3f@%.2f",
                read_error_rate, latency_spike_rate,
                static_cast<long long>(latency_spike_ns), stuck_head_rate,
                exchange_failure_rate, bandwidth_collapse_rate,
                bandwidth_collapse_factor);
  return buf;
}

FaultDecision FaultInjector::OnDeviceRead(bool needs_exchange) {
  // A fixed draw order per decision keeps the trace a pure function of the
  // call sequence even as individual rates change between specs.
  const bool read_error = rng_.NextBool(spec_.read_error_rate);
  const bool exchange_failure = rng_.NextBool(spec_.exchange_failure_rate);
  const bool spike = rng_.NextBool(spec_.latency_spike_rate);
  const bool stuck = rng_.NextBool(spec_.stuck_head_rate);

  FaultDecision decision;
  ++stats_.decisions;
  if (needs_exchange && exchange_failure) {
    decision.fail = true;
    decision.kind = "exchange";
    ++stats_.exchange_failures;
    return decision;
  }
  if (read_error) {
    decision.fail = true;
    decision.kind = "read-error";
    ++stats_.read_errors;
    return decision;
  }
  if (stuck) {
    decision.extra_latency_ns += spec_.stuck_head_stall_ns;
    decision.kind = "stuck-head";
    ++stats_.stuck_heads;
  }
  if (spike) {
    decision.extra_latency_ns += spec_.latency_spike_ns;
    if (decision.kind[0] == '\0') decision.kind = "spike";
    ++stats_.latency_spikes;
  }
  stats_.extra_latency_ns += decision.extra_latency_ns;
  return decision;
}

double FaultInjector::OnTransfer() {
  ++stats_.transfers;
  const bool collapse = rng_.NextBool(spec_.bandwidth_collapse_rate);
  if (!collapse || spec_.bandwidth_collapse_factor >= 1.0 ||
      spec_.bandwidth_collapse_factor <= 0.0) {
    return 1.0;
  }
  ++stats_.collapses;
  return 1.0 / spec_.bandwidth_collapse_factor;
}

}  // namespace avdb

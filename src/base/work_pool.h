#ifndef AVDB_BASE_WORK_POOL_H_
#define AVDB_BASE_WORK_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace avdb {

/// Fixed-size worker-thread pool for CPU-bound data-parallel work (the
/// codec transformers of Table 1 are the dominant consumers). The pool is
/// deliberately simple: a locked FIFO of tasks, `workers` threads draining
/// it, and a deterministic fork/join helper (`ParallelFor`/`ParallelMap`)
/// layered on top.
///
/// Design rules:
///  - The *calling* thread of `ParallelFor` always participates in the
///    work loop, so completion never depends on a worker being free. This
///    makes nested `ParallelFor` calls (a frame-parallel encode whose
///    per-frame kernel is itself plane-parallel) deadlock-free by
///    construction: the nesting lane can finish all inner work alone.
///  - Results are joined in index order, so parallel output is always
///    byte-identical to the serial loop regardless of scheduling.
///  - This pool is for *real-time* CPU work only. Activities on the
///    virtual-time EventEngine must never block on it mid-event; codec
///    calls use it internally and return only when all work is done, so
///    virtual-time semantics are unaffected (see DESIGN.md, "Concurrency
///    model").
class WorkPool {
 public:
  /// Spawns `workers` threads (0 is legal: every helper then runs inline
  /// on the calling thread).
  explicit WorkPool(int workers);
  ~WorkPool();

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  int worker_count() const { return static_cast<int>(threads_.size()); }

  /// Enqueues one task. The future resolves after the task ran; an
  /// exception escaping the task is captured and rethrown by `get()`.
  std::future<void> Submit(std::function<void()> task);

  /// Process-wide pool. Sized from the AVDB_POOL_WORKERS environment
  /// variable when set, else std::thread::hardware_concurrency(), clamped
  /// to [1, 16]. Created on first use and never destroyed.
  static WorkPool& Shared();

  /// Runs fn(i) for every i in [0, n), using at most `width` concurrent
  /// lanes (the calling thread counts as one lane and always
  /// participates). Blocks until every index has completed. width <= 1 or
  /// n <= 1 degrades to a plain serial loop on the caller. The first
  /// exception thrown by `fn` aborts remaining indices and is rethrown
  /// here once in-flight lanes have drained.
  template <typename Fn>
  void ParallelFor(int width, int64_t n, Fn&& fn) {
    if (n <= 0) return;
    if (width > n) width = static_cast<int>(n);
    if (width <= 1 || worker_count() == 0) {
      for (int64_t i = 0; i < n; ++i) fn(i);
      return;
    }
    auto state = std::make_shared<ForState>();
    state->n = n;
    // The body is held by shared_ptr so a lane task that is only dequeued
    // after this call returned (possible when the queue is backed up) can
    // still run its no-op claim check safely.
    auto body = std::make_shared<std::decay_t<Fn>>(std::forward<Fn>(fn));
    auto lane = [state, body] {
      state->in_flight.fetch_add(1, std::memory_order_acq_rel);
      for (;;) {
        if (state->abort.load(std::memory_order_relaxed)) break;
        const int64_t i = state->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= state->n) break;
        try {
          (*body)(i);
        } catch (...) {
          {
            MutexLock lock(state->mu);
            if (!state->error) state->error = std::current_exception();
          }
          state->abort.store(true, std::memory_order_relaxed);
        }
      }
      {
        MutexLock lock(state->mu);
        state->in_flight.fetch_sub(1, std::memory_order_acq_rel);
      }
      state->cv.NotifyAll();
    };
    for (int l = 1; l < width; ++l) Post(lane);
    lane();  // caller participates and can finish all work alone
    {
      MutexLock lock(state->mu);
      while (!(state->in_flight.load(std::memory_order_acquire) == 0 &&
               (state->next.load(std::memory_order_relaxed) >= state->n ||
                state->abort.load(std::memory_order_relaxed)))) {
        state->cv.Wait(state->mu);
      }
      if (state->error) std::rethrow_exception(state->error);
    }
  }

  /// Ordered-join map: returns {fn(0), fn(1), ..., fn(n-1)} with element i
  /// always at index i, independent of which lane computed it — the
  /// property the codecs rely on for bit-exact parallel output. `T` only
  /// needs to be movable.
  template <typename T, typename Fn>
  std::vector<T> ParallelMap(int width, int64_t n, Fn&& fn) {
    std::vector<std::optional<T>> slots(static_cast<size_t>(n));
    ParallelFor(width, n,
                [&](int64_t i) { slots[static_cast<size_t>(i)].emplace(fn(i)); });
    std::vector<T> out;
    out.reserve(static_cast<size_t>(n));
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  struct ForState {
    std::atomic<int64_t> next{0};
    std::atomic<int> in_flight{0};
    std::atomic<bool> abort{false};
    int64_t n = 0;
    Mutex mu;
    CondVar cv;
    std::exception_ptr error AVDB_GUARDED_BY(mu);
  };

  /// Fire-and-forget enqueue (no future) used by ParallelFor lanes.
  void Post(std::function<void()> task) AVDB_EXCLUDES(mu_);
  void WorkerLoop() AVDB_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ AVDB_GUARDED_BY(mu_);
  bool stopping_ AVDB_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace avdb

#endif  // AVDB_BASE_WORK_POOL_H_

#include "base/buffer_pool.h"

namespace avdb {

BufferPool& BufferPool::Shared() {
  static BufferPool* pool = new BufferPool(/*max_free_per_class=*/64);
  return *pool;
}

}  // namespace avdb

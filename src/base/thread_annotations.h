#ifndef AVDB_BASE_THREAD_ANNOTATIONS_H_
#define AVDB_BASE_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes behind AVDB_ macros.
///
/// The annotations let `-Wthread-safety` prove, at compile time and on every
/// path, the invariants the concurrent subsystems (WorkPool, BufferPool)
/// otherwise only enforce under TSan on the paths tests happen to execute:
/// "this field is only touched while this mutex is held", "this function
/// must be entered with the lock held", "this scope releases on exit".
///
/// On compilers without the attribute (GCC, MSVC) every macro expands to
/// nothing, so the annotated tree builds identically everywhere; the
/// analysis itself runs in the Clang CI job (AVDB_THREAD_SAFETY=ON adds
/// `-Wthread-safety -Werror=thread-safety`).
///
/// Annotate with the avdb::Mutex / MutexLock / CondVar facade from
/// base/mutex.h — raw std::mutex cannot carry capability attributes.

#if defined(__clang__) && (!defined(SWIG))
#define AVDB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define AVDB_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Declares a class to be a lockable capability, e.g.
/// `class AVDB_CAPABILITY("mutex") Mutex { ... };`.
#define AVDB_CAPABILITY(x) AVDB_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (MutexLock).
#define AVDB_SCOPED_CAPABILITY AVDB_THREAD_ANNOTATION_(scoped_lockable)

/// Data member may only be read or written while `x` is held.
#define AVDB_GUARDED_BY(x) AVDB_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member: the *pointed-to* data is protected by `x`.
#define AVDB_PT_GUARDED_BY(x) AVDB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Caller must hold the listed capabilities exclusively on entry.
#define AVDB_REQUIRES(...) \
  AVDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must hold the listed capabilities at least shared on entry.
#define AVDB_REQUIRES_SHARED(...) \
  AVDB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define AVDB_ACQUIRE(...) \
  AVDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability; it must be held on entry.
#define AVDB_RELEASE(...) \
  AVDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define AVDB_TRY_ACQUIRE(b, ...) \
  AVDB_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define AVDB_EXCLUDES(...) AVDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that this mutex must be acquired after `x` (lock ordering).
#define AVDB_ACQUIRED_AFTER(...) \
  AVDB_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Declares that this mutex must be acquired before `x`.
#define AVDB_ACQUIRED_BEFORE(...) \
  AVDB_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Returns a reference to the capability guarding the annotated value.
#define AVDB_RETURN_CAPABILITY(x) AVDB_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function body is exempt from analysis. Use only in the
/// facade internals (e.g. CondVar::Wait juggling adopt/release), never to
/// silence a finding in library code — fix the code or the annotation.
#define AVDB_NO_THREAD_SAFETY_ANALYSIS \
  AVDB_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // AVDB_BASE_THREAD_ANNOTATIONS_H_

#ifndef AVDB_BASE_RNG_H_
#define AVDB_BASE_RNG_H_

#include <cstdint>

namespace avdb {

/// Deterministic pseudo-random generator (xoshiro256**). Every stochastic
/// component in the library (jitter models, synthetic content, workloads)
/// draws from an explicitly seeded Rng so runs are exactly reproducible.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical sequences.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next 64 uniformly distributed bits.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Normally distributed double (Box–Muller), mean 0 stddev 1.
  double NextGaussian();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p = 0.5);

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace avdb

#endif  // AVDB_BASE_RNG_H_

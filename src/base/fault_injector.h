#ifndef AVDB_BASE_FAULT_INJECTOR_H_
#define AVDB_BASE_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

#include "base/rng.h"

namespace avdb {

/// Configuration of a deterministic adversary for the simulated hardware:
/// each field is the per-operation probability (or magnitude) of one fault
/// class. All delays are virtual nanoseconds — faults cost simulated
/// WorldTime, never host time, so faulty runs replay exactly.
///
/// The fault classes mirror what the paper's §3.3 resource discussion takes
/// for granted can go wrong on 1993 hardware: transient SCSI/read errors,
/// latency spikes from bus contention, a jukebox arm failing a disc swap,
/// a stuck head that stalls the stream, and a network whose effective rate
/// collapses under cross traffic.
struct FaultSpec {
  /// P(one device read fails with Unavailable) — transient I/O error.
  double read_error_rate = 0.0;
  /// P(one device read is slowed by `latency_spike_ns`).
  double latency_spike_rate = 0.0;
  int64_t latency_spike_ns = 0;
  /// P(one device read stalls for `stuck_head_stall_ns`) — recalibration.
  double stuck_head_rate = 0.0;
  int64_t stuck_head_stall_ns = 0;
  /// P(a read that needs a disc exchange fails with Unavailable) — the
  /// jukebox robot missing a swap. Only consulted on exchange reads.
  double exchange_failure_rate = 0.0;
  /// P(one channel transfer runs at `bandwidth_collapse_factor` of line
  /// rate) — congestion collapse on the shared link.
  double bandwidth_collapse_rate = 0.0;
  /// Effective-rate multiplier during a collapse, in (0, 1].
  double bandwidth_collapse_factor = 1.0;

  // --- write-path faults ---------------------------------------------------
  // Where read faults threaten liveness, write faults threaten *custody*:
  // bytes the client handed over silently fail to reach the platter. Torn
  // and power-cut writes surface an error at write time; dropped and
  // bit-flipped writes report success and are only caught later by page
  // checksums (Get/ReadRange/Scrub).

  /// P(one device write persists only a strict prefix and fails with
  /// Unavailable) — an I/O error mid-transfer.
  double torn_write_rate = 0.0;
  /// P(one device write persists nothing but *reports success*) — a lost
  /// write (e.g. dead cache battery). Silent until a checksum catches it.
  double dropped_write_rate = 0.0;
  /// P(one device write persists with a single flipped bit, reporting
  /// success) — media corruption in flight. Silent until checked.
  double write_bit_flip_rate = 0.0;
  /// Deterministic power cut: the Nth consulted write (1-based) persists
  /// only a strict prefix, then the device is frozen — every later read or
  /// write fails with Unavailable until the injector is detached (the
  /// "reboot"). 0 disables.
  int64_t power_cut_at_write = 0;

  // --- node-granularity faults --------------------------------------------
  // Consulted by a cluster ServerNode once per served request, *before* the
  // node's device/channel injectors see anything — a whole machine failing,
  // layered on top of the per-device fault classes above.

  /// Deterministic node crash: the Nth consulted node operation (1-based)
  /// finds the node dead, and every later operation fails fast with
  /// Unavailable until the node is revived. 0 disables.
  int64_t node_crash_at_op = 0;
  /// P(one node operation opens a network partition lasting
  /// `node_partition_ops` consulted operations, this one included). A
  /// partitioned node is unreachable-but-alive: requests to it burn their
  /// entire deadline budget before failing, unlike a crash's fast refusal.
  double node_partition_rate = 0.0;
  int64_t node_partition_ops = 0;
  /// P(one node operation is served `node_slow_factor`x slower than its
  /// modeled duration) — a struggling node (page cache cold, CPU stolen)
  /// that still answers. Factor must be >= 1 to have any effect.
  double node_slow_rate = 0.0;
  double node_slow_factor = 1.0;
  /// P(one repair/resync apply crashes the node mid-apply) — consulted only
  /// by the repair write path (ApplyRepair), once before the old entry is
  /// dropped and once before the replacement lands, so a firing can leave a
  /// torn repair for the next anti-entropy round to finish. The crashed
  /// node fails fast like a deterministic crash until revived.
  double repair_crash_rate = 0.0;

  /// All-zero spec: injecting with it never perturbs anything.
  static FaultSpec None() { return FaultSpec{}; }

  /// Uniform transient-read-fault profile at probability `p` with mild
  /// latency spikes — the knob the fault-rate sweeps turn.
  static FaultSpec TransientReads(double p);

  /// Power-cut-only spec: cut at the `nth_write`-th device write.
  static FaultSpec PowerCut(int64_t nth_write);

  /// True when any fault class can fire.
  bool Enabled() const;

  /// True when any *write* fault class can fire. Writes consult the rng
  /// only when this holds, so read-only fault traces are unchanged by the
  /// presence of (fault-free) writes in the call sequence.
  bool WritesEnabled() const;

  /// True when any node-granularity fault class can fire. Node operations
  /// draw from the rng only when this holds, so attaching a node injector
  /// with a device-only spec leaves the device trace untouched.
  bool NodeFaultsEnabled() const;

  /// Node-kill-only spec: the node dies at its `nth_op`-th consulted
  /// operation — the replication bench's mid-stream node loss.
  static FaultSpec NodeCrash(int64_t nth_op);

  std::string ToString() const;
};

/// Outcome of consulting the injector for one device operation.
struct FaultDecision {
  /// The operation fails with Unavailable (retry may succeed).
  bool fail = false;
  /// Extra modeled latency charged to the operation (spikes, stalls).
  int64_t extra_latency_ns = 0;
  /// Label of the fault class that fired ("", "read-error", "exchange",
  /// "spike", "stuck-head", "power-off") for logs and typed notifications.
  const char* kind = "";
};

/// Outcome of consulting the injector for one device write.
struct WriteFaultDecision {
  /// The write fails with Unavailable (torn, power-cut, powered-off).
  /// Silent faults (drop, bit flip) leave this false.
  bool fail = false;
  /// Bytes of the write that actually persist; -1 means all of them.
  /// 0 with `fail == false` is a dropped (lost) write.
  int64_t persist_bytes = -1;
  /// One bit of the persisted bytes is flipped: byte `flip_offset %
  /// persisted-length`, mask `flip_mask`.
  bool bit_flip = false;
  uint64_t flip_offset = 0;
  uint8_t flip_mask = 1;
  /// This write tripped the power cut: the device freezes after it.
  bool power_cut = false;
  /// "", "torn-write", "dropped-write", "bit-flip", "power-cut",
  /// "power-off".
  const char* kind = "";
};

/// Outcome of consulting the injector for one node-level operation.
struct NodeFaultDecision {
  /// The operation fails with Unavailable (crash) or DeadlineExceeded
  /// (partition — the caller charges its whole remaining budget first).
  bool fail = false;
  /// The node is unresponsive rather than refusing: the request times out
  /// instead of failing fast.
  bool unresponsive = false;
  /// Multiplier (>= 1) on the operation's modeled duration; 1.0 when no
  /// slow-node fault fired.
  double slow_factor = 1.0;
  /// "", "node-crash", "node-partition", "node-slow", "node-down".
  const char* kind = "";
};

/// Deterministic, seeded fault source shared by simulated devices and
/// channels. Every decision draws a fixed number of variates from one
/// explicitly seeded Rng in a fixed order, so the fault trace is a pure
/// function of (seed, spec, call sequence): two runs with equal seeds see
/// byte-identical fault schedules — the property the robustness tests pin.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec, uint64_t seed = 1)
      : spec_(spec), rng_(seed) {}

  const FaultSpec& spec() const { return spec_; }

  /// Decision for one device read. `needs_exchange` marks reads that cross
  /// discs (eligible for disc-exchange failure). After a power cut every
  /// read fails ("power-off") without drawing from the rng.
  FaultDecision OnDeviceRead(bool needs_exchange);

  /// Decision for one device write of `length` bytes. Draws nothing (and
  /// fires nothing) unless the spec enables write faults, so read-only
  /// traces are unaffected by interleaved writes.
  WriteFaultDecision OnDeviceWrite(int64_t length);

  /// Slowdown factor (>= 1) applied to one transfer's serialization time;
  /// 1.0 when no collapse fires.
  double OnTransfer();

  /// Decision for one node-level operation (a ServerNode serving a
  /// request). Draws nothing unless the spec enables node faults, so
  /// device/channel traces are unaffected by node-fault consultation.
  /// After the deterministic crash every operation fails ("node-down")
  /// without drawing.
  NodeFaultDecision OnNodeOp();

  /// Decision for one repair apply step (read-repair / anti-entropy
  /// rewrite). Draws one variate iff `repair_crash_rate > 0`, so repair
  /// consultation never perturbs node-op or device traces. A firing downs
  /// the node ("repair-crash") until Revive(); a downed node refuses
  /// without drawing.
  NodeFaultDecision OnRepairOp();

  /// True once the deterministic node crash has fired; operations fail
  /// until Revive().
  bool node_down() const { return node_down_; }
  /// Reboots a crashed node: subsequent operations draw faults normally
  /// again. The crash count in stats() keeps the history.
  void Revive() { node_down_ = false; }

  /// True once the deterministic power cut has fired; every subsequent
  /// device operation fails until the injector is detached (reboot).
  bool powered_off() const { return powered_off_; }

  struct Stats {
    int64_t decisions = 0;          ///< device reads consulted
    int64_t read_errors = 0;
    int64_t exchange_failures = 0;
    int64_t latency_spikes = 0;
    int64_t stuck_heads = 0;
    int64_t transfers = 0;          ///< channel transfers consulted
    int64_t collapses = 0;
    int64_t extra_latency_ns = 0;   ///< total injected delay
    int64_t write_decisions = 0;    ///< device writes consulted (and drawn)
    int64_t torn_writes = 0;
    int64_t dropped_writes = 0;
    int64_t write_bit_flips = 0;
    int64_t power_cuts = 0;         ///< 0 or 1
    int64_t node_ops = 0;           ///< node operations consulted
    int64_t node_crashes = 0;       ///< deterministic crashes fired (0 or 1)
    int64_t node_partition_ops = 0; ///< ops lost to a partition window
    int64_t node_slow_ops = 0;      ///< ops served slow
    int64_t repair_ops = 0;         ///< repair apply steps consulted
    int64_t repair_crashes = 0;     ///< repairs that crashed the node
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  FaultSpec spec_;
  Rng rng_;
  Stats stats_;
  int64_t writes_seen_ = 0;  ///< writes consulted while write faults enabled
  bool powered_off_ = false;
  int64_t node_ops_seen_ = 0;  ///< node ops consulted while node faults on
  int64_t partition_ops_left_ = 0;
  bool node_down_ = false;
};

}  // namespace avdb

#endif  // AVDB_BASE_FAULT_INJECTOR_H_

#ifndef AVDB_BASE_FAULT_INJECTOR_H_
#define AVDB_BASE_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

#include "base/rng.h"

namespace avdb {

/// Configuration of a deterministic adversary for the simulated hardware:
/// each field is the per-operation probability (or magnitude) of one fault
/// class. All delays are virtual nanoseconds — faults cost simulated
/// WorldTime, never host time, so faulty runs replay exactly.
///
/// The fault classes mirror what the paper's §3.3 resource discussion takes
/// for granted can go wrong on 1993 hardware: transient SCSI/read errors,
/// latency spikes from bus contention, a jukebox arm failing a disc swap,
/// a stuck head that stalls the stream, and a network whose effective rate
/// collapses under cross traffic.
struct FaultSpec {
  /// P(one device read fails with Unavailable) — transient I/O error.
  double read_error_rate = 0.0;
  /// P(one device read is slowed by `latency_spike_ns`).
  double latency_spike_rate = 0.0;
  int64_t latency_spike_ns = 0;
  /// P(one device read stalls for `stuck_head_stall_ns`) — recalibration.
  double stuck_head_rate = 0.0;
  int64_t stuck_head_stall_ns = 0;
  /// P(a read that needs a disc exchange fails with Unavailable) — the
  /// jukebox robot missing a swap. Only consulted on exchange reads.
  double exchange_failure_rate = 0.0;
  /// P(one channel transfer runs at `bandwidth_collapse_factor` of line
  /// rate) — congestion collapse on the shared link.
  double bandwidth_collapse_rate = 0.0;
  /// Effective-rate multiplier during a collapse, in (0, 1].
  double bandwidth_collapse_factor = 1.0;

  /// All-zero spec: injecting with it never perturbs anything.
  static FaultSpec None() { return FaultSpec{}; }

  /// Uniform transient-read-fault profile at probability `p` with mild
  /// latency spikes — the knob the fault-rate sweeps turn.
  static FaultSpec TransientReads(double p);

  /// True when any fault class can fire.
  bool Enabled() const;

  std::string ToString() const;
};

/// Outcome of consulting the injector for one device operation.
struct FaultDecision {
  /// The operation fails with Unavailable (retry may succeed).
  bool fail = false;
  /// Extra modeled latency charged to the operation (spikes, stalls).
  int64_t extra_latency_ns = 0;
  /// Label of the fault class that fired ("", "read-error", "exchange",
  /// "spike", "stuck-head") for logs and typed notifications.
  const char* kind = "";
};

/// Deterministic, seeded fault source shared by simulated devices and
/// channels. Every decision draws a fixed number of variates from one
/// explicitly seeded Rng in a fixed order, so the fault trace is a pure
/// function of (seed, spec, call sequence): two runs with equal seeds see
/// byte-identical fault schedules — the property the robustness tests pin.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec, uint64_t seed = 1)
      : spec_(spec), rng_(seed) {}

  const FaultSpec& spec() const { return spec_; }

  /// Decision for one device read. `needs_exchange` marks reads that cross
  /// discs (eligible for disc-exchange failure).
  FaultDecision OnDeviceRead(bool needs_exchange);

  /// Slowdown factor (>= 1) applied to one transfer's serialization time;
  /// 1.0 when no collapse fires.
  double OnTransfer();

  struct Stats {
    int64_t decisions = 0;          ///< device reads consulted
    int64_t read_errors = 0;
    int64_t exchange_failures = 0;
    int64_t latency_spikes = 0;
    int64_t stuck_heads = 0;
    int64_t transfers = 0;          ///< channel transfers consulted
    int64_t collapses = 0;
    int64_t extra_latency_ns = 0;   ///< total injected delay
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  FaultSpec spec_;
  Rng rng_;
  Stats stats_;
};

}  // namespace avdb

#endif  // AVDB_BASE_FAULT_INJECTOR_H_

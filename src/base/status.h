#ifndef AVDB_BASE_STATUS_H_
#define AVDB_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace avdb {

/// Outcome category for an operation. Mirrors the error taxonomy used by
/// storage engines (RocksDB/Arrow style): a small closed set of codes plus a
/// free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a malformed or out-of-domain value.
  kNotFound,          ///< Named entity (object, class, device...) is absent.
  kAlreadyExists,     ///< Unique name or id collision.
  kFailedPrecondition,///< Object is in the wrong state for the request.
  kResourceExhausted, ///< Admission control or allocator refused the request.
  kUnavailable,       ///< Device or channel is busy / exclusively held.
  kDeadlineExceeded,  ///< Operation (with retries) blew its time budget.
  kDataLoss,          ///< Stored bytes failed validation.
  kUnimplemented,     ///< Declared but not supported by this component.
  kInternal,          ///< Invariant violation inside the library.
};

/// Short stable name for a status code, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation that can fail. `Status` is cheap to copy for the
/// OK case and carries a message for errors. The library never throws;
/// every fallible public API returns `Status` or `Result<T>`.
///
/// The class is [[nodiscard]]: ignoring a returned Status is a compile
/// error (with AVDB_WERROR, the default). A deliberately ignored status —
/// best-effort cleanup, logging-only paths — must be consumed through
/// AVDB_IGNORE_STATUS with a justification the reader can audit.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

namespace internal_status {
/// Sink for AVDB_IGNORE_STATUS. A function call (not a void cast) so the
/// discard survives macro hygiene and shows up in searches.
inline void IgnoreStatus(const Status&) {}
}  // namespace internal_status

}  // namespace avdb

/// Explicitly discards a Status with a reviewer-facing justification:
///   AVDB_IGNORE_STATUS(store.Flush(), "best-effort flush on shutdown");
/// The justification must be a non-empty string literal; avdb-lint flags
/// bare (void)-casts of fallible calls so this stays the only escape hatch.
#define AVDB_IGNORE_STATUS(expr, justification)             \
  do {                                                      \
    static_assert(sizeof(justification) > 1,                \
                  "AVDB_IGNORE_STATUS needs a reason");     \
    ::avdb::internal_status::IgnoreStatus((expr));          \
  } while (false)

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define AVDB_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::avdb::Status _avdb_status = (expr);            \
    if (!_avdb_status.ok()) return _avdb_status;     \
  } while (false)

#endif  // AVDB_BASE_STATUS_H_

#ifndef AVDB_BASE_CPUID_H_
#define AVDB_BASE_CPUID_H_

namespace avdb {

/// Instruction-set features the running CPU supports, as relevant to the
/// codec kernel dispatch (src/codec/simd). Detection runs once; the result
/// is immutable for the life of the process.
struct CpuFeatures {
  bool sse2 = false;  ///< x86-64 baseline; always true on that arch
  bool avx2 = false;  ///< 256-bit integer SIMD (Haswell+)
  bool neon = false;  ///< AArch64 Advanced SIMD; always true on that arch
};

/// Detects the host CPU's features (cached after the first call).
const CpuFeatures& DetectCpuFeatures();

}  // namespace avdb

#endif  // AVDB_BASE_CPUID_H_

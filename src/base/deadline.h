#ifndef AVDB_BASE_DEADLINE_H_
#define AVDB_BASE_DEADLINE_H_

#include <cstdint>

namespace avdb {

/// Per-request time budget, propagated down the serving stack and
/// decremented at every hop (device read, channel transfer, retry backoff,
/// failover attempt, hedge). Derived once at the top from the element's
/// presentation deadline — budget = presentation time + tolerated lateness
/// − now — so any layer can tell that work is already doomed and cancel it
/// instead of finishing (or retrying) a result nobody can use.
///
/// All arithmetic is virtual nanoseconds; an unlimited budget behaves like
/// the pre-deadline code paths at every consumer (a single branch).
class DeadlineBudget {
 public:
  /// No deadline: never expires, Charge is a no-op. The default, so
  /// zero-initialized options mean "pre-deadline behavior".
  constexpr DeadlineBudget() = default;

  /// Budget of `ns` nanoseconds from now (negative = already spent).
  static constexpr DeadlineBudget FromNs(int64_t ns) {
    DeadlineBudget b;
    b.unlimited_ = false;
    b.remaining_ns_ = ns;
    return b;
  }
  static constexpr DeadlineBudget Unlimited() { return DeadlineBudget(); }

  constexpr bool unlimited() const { return unlimited_; }
  /// Remaining time; meaningless (and huge) when unlimited.
  constexpr int64_t remaining_ns() const { return remaining_ns_; }
  /// True when the budget is spent: the operation should fail fast with
  /// DeadlineExceeded instead of starting.
  constexpr bool expired() const { return !unlimited_ && remaining_ns_ <= 0; }

  /// Charges `ns` of elapsed (virtual) time against the budget.
  constexpr void Charge(int64_t ns) {
    if (!unlimited_) remaining_ns_ -= ns;
  }

  /// True when an operation needing `ns` more time cannot fit.
  constexpr bool CannotAfford(int64_t ns) const {
    return !unlimited_ && ns > remaining_ns_;
  }

  /// The smaller of `cap_ns` and what remains — the per-attempt deadline a
  /// retry policy may spend without overdrawing the request budget.
  constexpr int64_t CapNs(int64_t cap_ns) const {
    if (unlimited_) return cap_ns;
    return remaining_ns_ < cap_ns ? remaining_ns_ : cap_ns;
  }

 private:
  bool unlimited_ = true;
  int64_t remaining_ns_ = INT64_MAX;
};

}  // namespace avdb

#endif  // AVDB_BASE_DEADLINE_H_

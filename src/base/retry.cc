#include "base/retry.h"

#include <algorithm>
#include <string>

#include "base/rng.h"

namespace avdb {

int64_t RetryPolicy::BackoffNs(int retry) const {
  if (retry <= 0) return 0;
  if (jitter_seed != 0) {
    // Decorrelated jitter: backoff(r) is uniform over
    // [initial, min(cap, 3 * backoff(r-1))]. Re-deriving the chain from a
    // fresh Rng each call keeps the value a pure function of
    // (jitter_seed, retry) — RetryState may probe BackoffNs(r+1) for its
    // deadline check without perturbing the schedule.
    Rng rng(jitter_seed);
    int64_t backoff = initial_backoff_ns;
    for (int i = 1; i <= retry; ++i) {
      const int64_t upper =
          std::min(max_backoff_ns,
                   backoff > max_backoff_ns ? max_backoff_ns : 3 * backoff);
      backoff = upper <= initial_backoff_ns
                    ? initial_backoff_ns
                    : rng.NextInRange(initial_backoff_ns, upper);
    }
    return backoff;
  }
  double backoff = static_cast<double>(initial_backoff_ns);
  for (int i = 1; i < retry; ++i) backoff *= backoff_multiplier;
  const double cap = static_cast<double>(max_backoff_ns);
  if (backoff > cap) backoff = cap;
  return static_cast<int64_t>(backoff);
}

Status RetryState::BeforeRetry(const Status& failure) {
  if (failure.ok()) {
    return Status::Internal("BeforeRetry called with OK status");
  }
  if (!IsRetryable(failure)) return failure;
  if (retries_ + 1 >= policy_.max_attempts) {
    return Status(failure.code(),
                  failure.message() + " (after " +
                      std::to_string(policy_.max_attempts) + " attempts)");
  }
  const int64_t backoff = policy_.BackoffNs(retries_ + 1);
  if (charged_ns_ + backoff > policy_.deadline_ns) {
    return Status::DeadlineExceeded(
        "retry budget of " + std::to_string(policy_.deadline_ns) +
        "ns exhausted after " + std::to_string(retries_ + 1) +
        " attempts: " + failure.message());
  }
  ++retries_;
  charged_ns_ += backoff;
  return Status::OK();
}

}  // namespace avdb

#include "base/retry.h"

#include <string>

namespace avdb {

int64_t RetryPolicy::BackoffNs(int retry) const {
  if (retry <= 0) return 0;
  double backoff = static_cast<double>(initial_backoff_ns);
  for (int i = 1; i < retry; ++i) backoff *= backoff_multiplier;
  const double cap = static_cast<double>(max_backoff_ns);
  if (backoff > cap) backoff = cap;
  return static_cast<int64_t>(backoff);
}

Status RetryState::BeforeRetry(const Status& failure) {
  if (failure.ok()) {
    return Status::Internal("BeforeRetry called with OK status");
  }
  if (!IsRetryable(failure)) return failure;
  if (retries_ + 1 >= policy_.max_attempts) {
    return Status(failure.code(),
                  failure.message() + " (after " +
                      std::to_string(policy_.max_attempts) + " attempts)");
  }
  const int64_t backoff = policy_.BackoffNs(retries_ + 1);
  if (charged_ns_ + backoff > policy_.deadline_ns) {
    return Status::DeadlineExceeded(
        "retry budget of " + std::to_string(policy_.deadline_ns) +
        "ns exhausted after " + std::to_string(retries_ + 1) +
        " attempts: " + failure.message());
  }
  ++retries_;
  charged_ns_ += backoff;
  return Status::OK();
}

}  // namespace avdb

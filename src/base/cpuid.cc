#include "base/cpuid.h"

namespace avdb {

namespace {

CpuFeatures Detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
  f.sse2 = true;  // architectural baseline on x86-64
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
#elif defined(__aarch64__)
  f.neon = true;  // architectural baseline on AArch64
#endif
  return f;
}

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

}  // namespace avdb

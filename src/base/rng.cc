#include "base/rng.h"

#include <cmath>

namespace avdb {

namespace {
// SplitMix64, used to expand the single seed into generator state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace avdb

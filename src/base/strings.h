#ifndef AVDB_BASE_STRINGS_H_
#define AVDB_BASE_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace avdb {

/// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Lowercases ASCII letters.
std::string AsciiToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict parse of a base-10 signed integer covering the whole string.
Result<int64_t> ParseInt64(std::string_view s);

/// Strict parse of a floating-point number covering the whole string.
Result<double> ParseDouble(std::string_view s);

/// Joins pieces with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Human-readable byte count, e.g. "1.5 MB".
std::string FormatBytes(uint64_t bytes);

/// Fixed-precision decimal formatting, e.g. FormatDouble(3.14159, 2) == "3.14".
std::string FormatDouble(double v, int precision);

}  // namespace avdb

#endif  // AVDB_BASE_STRINGS_H_

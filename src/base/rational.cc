#include "base/rational.h"

#include <numeric>

#include "base/logging.h"

namespace avdb {

Rational::Rational(int64_t num, int64_t den) : num_(num), den_(den) {
  AVDB_CHECK(den != 0) << "Rational with zero denominator";
  Normalize();
}

void Rational::Normalize() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

int64_t Rational::Floor() const {
  const int64_t q = num_ / den_;
  return (num_ % den_ != 0 && num_ < 0) ? q - 1 : q;
}

int64_t Rational::Ceil() const {
  const int64_t q = num_ / den_;
  return (num_ % den_ != 0 && num_ > 0) ? q + 1 : q;
}

int64_t Rational::Rounded() const {
  // Halves round away from zero.
  const int64_t twice = 2 * num_;
  const int64_t q = twice / (2 * den_);
  const int64_t rem = twice % (2 * den_);
  if (rem >= den_) return q + 1;
  if (rem <= -den_) return q - 1;
  return q;
}

Rational Rational::operator+(const Rational& o) const {
  // Cross-reduce before multiplying to delay overflow.
  const int64_t g = std::gcd(den_, o.den_);
  const int64_t lhs_scale = o.den_ / g;
  const int64_t rhs_scale = den_ / g;
  return Rational(num_ * lhs_scale + o.num_ * rhs_scale, den_ * lhs_scale);
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  const int64_t g1 = std::gcd(num_ < 0 ? -num_ : num_, o.den_);
  const int64_t g2 = std::gcd(o.num_ < 0 ? -o.num_ : o.num_, den_);
  return Rational((num_ / g1) * (o.num_ / g2), (den_ / g2) * (o.den_ / g1));
}

Rational Rational::operator/(const Rational& o) const {
  AVDB_CHECK(!o.IsZero()) << "Rational division by zero";
  return *this * o.Reciprocal();
}

Rational Rational::Reciprocal() const {
  AVDB_CHECK(num_ != 0) << "Reciprocal of zero";
  return Rational(den_, num_);
}

bool operator<(const Rational& a, const Rational& b) {
  // a.num/a.den < b.num/b.den  <=>  a.num*b.den < b.num*a.den (dens > 0).
  return a.num_ * b.den_ < b.num_ * a.den_;
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.ToString();
}

}  // namespace avdb

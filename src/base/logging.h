#ifndef AVDB_BASE_LOGGING_H_
#define AVDB_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace avdb {

/// Severity of a log record. `kFatal` aborts after emitting the record.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum severity; records below it are dropped. Defaults to
/// kWarning so tests and benches stay quiet unless something is wrong.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal_logging {

/// Accumulates one log record and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the record is below the threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Lets a conditional expression of type void appear on the false branch of
/// `?:` while the streaming chain binds first (& has lower precedence
/// than <<).
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace avdb

#define AVDB_LOG(level)                                                   \
  (static_cast<int>(::avdb::LogLevel::k##level) <                         \
   static_cast<int>(::avdb::MinLogLevel()))                               \
      ? (void)0                                                           \
      : ::avdb::internal_logging::Voidify() &                             \
            ::avdb::internal_logging::LogMessage(                         \
                ::avdb::LogLevel::k##level, __FILE__, __LINE__)           \
                .stream()

/// Always-on invariant check; aborts with a message when `cond` is false.
/// Used for programmer errors only — recoverable failures return Status.
#define AVDB_CHECK(cond)                                                  \
  (cond) ? (void)0                                                        \
         : ::avdb::internal_logging::Voidify() &                          \
               ::avdb::internal_logging::LogMessage(                      \
                   ::avdb::LogLevel::kFatal, __FILE__, __LINE__)          \
                   .stream()                                              \
                   << "Check failed: " #cond " "

#define AVDB_DCHECK(cond) AVDB_CHECK(cond)

/// Aborts (with the expression text) unless `expr` — a Status or Result
/// expression — is OK. For bench/example/test *setup* steps whose failure
/// would silently invalidate everything measured afterwards. Library code
/// returns Status instead; deliberate discards go through
/// AVDB_IGNORE_STATUS (base/status.h).
#define AVDB_MUST(expr) AVDB_CHECK((expr).ok()) << #expr

#endif  // AVDB_BASE_LOGGING_H_

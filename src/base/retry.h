#ifndef AVDB_BASE_RETRY_H_
#define AVDB_BASE_RETRY_H_

#include <cstdint>

#include "base/status.h"

namespace avdb {

/// Retry discipline for operations against faulty simulated hardware:
/// exponential backoff with a hard per-operation deadline. All waits are
/// charged in *virtual* nanoseconds — the caller adds the backoff to the
/// operation's modeled duration, so retries cost stream time (and show up
/// as lateness) without ever touching the host clock.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retry).
  int max_attempts = 4;
  /// Backoff before the first retry.
  int64_t initial_backoff_ns = 2 * 1000 * 1000;  // 2 ms
  /// Backoff growth per retry.
  double backoff_multiplier = 2.0;
  /// Cap on a single backoff wait.
  int64_t max_backoff_ns = 50 * 1000 * 1000;  // 50 ms
  /// Hard budget for one logical operation, attempts + backoffs included.
  /// Exceeding it fails the operation with DeadlineExceeded even if
  /// attempts remain — a stalled stream must be told, not kept waiting.
  int64_t deadline_ns = 200 * 1000 * 1000;  // 200 ms
  /// Decorrelated jitter. 0 keeps the deterministic exponential schedule
  /// (byte-identical to pre-jitter traces). Non-zero spreads each backoff
  /// uniformly over [initial, min(cap, 3 * previous backoff)] — the
  /// decorrelated-jitter discipline — so sessions that hit the same failed
  /// replica retry at different times instead of re-converging on it in
  /// lockstep (a retry storm). The whole schedule is a pure function of
  /// (jitter_seed, retry number): traces still replay exactly; give each
  /// session its own seed to desynchronize them.
  uint64_t jitter_seed = 0;

  /// Single-attempt policy (retries disabled).
  static RetryPolicy None() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }

  /// Backoff before retry number `retry` (1-based). Exponential, capped.
  int64_t BackoffNs(int retry) const;
};

/// Per-operation retry ledger. Usage:
///
///   RetryState state(policy);
///   for (;;) {
///     auto r = op();
///     if (r.ok()) break;                     // charged_ns() owed to caller
///     AVDB_RETURN_IF_ERROR(state.BeforeRetry(r.status()));
///   }
///
/// `BeforeRetry` decides whether one more attempt is allowed: the failure
/// must be retryable (Unavailable — transient by contract), attempts must
/// remain, and the accumulated virtual-time charge plus the next backoff
/// must fit the deadline. On approval it charges the backoff; otherwise it
/// returns the terminal status (the original error, or DeadlineExceeded
/// when the budget ran out).
class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy) : policy_(policy) {}

  /// OK (and charges backoff) when another attempt may run; terminal
  /// status otherwise.
  Status BeforeRetry(const Status& failure);

  /// Attempts begun so far (first attempt counts once `BeforeRetry` has
  /// been consulted; starts at 1 conceptually).
  int retries() const { return retries_; }
  /// Total virtual time charged to backoff waits.
  int64_t charged_ns() const { return charged_ns_; }

  /// True for status codes a retry can plausibly cure.
  [[nodiscard]] static bool IsRetryable(const Status& status) {
    return status.code() == StatusCode::kUnavailable;
  }

 private:
  RetryPolicy policy_;
  int retries_ = 0;
  int64_t charged_ns_ = 0;
};

}  // namespace avdb

#endif  // AVDB_BASE_RETRY_H_

#include "base/buffer.h"

#include <cstring>

namespace avdb {

void Buffer::AppendU16(uint16_t v) {
  AppendU8(static_cast<uint8_t>(v & 0xFF));
  AppendU8(static_cast<uint8_t>((v >> 8) & 0xFF));
}

void Buffer::AppendU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) AppendU8(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
}

void Buffer::AppendU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) AppendU8(static_cast<uint8_t>((v >> (8 * i)) & 0xFF));
}

void Buffer::AppendF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(bits);
}

void Buffer::AppendString(const std::string& s) {
  AppendU32(static_cast<uint32_t>(s.size()));
  AppendBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

void Buffer::AppendBytes(const uint8_t* p, size_t n) {
  bytes_.insert(bytes_.end(), p, p + n);
}

uint64_t Buffer::Hash64() const {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (uint8_t b : bytes_) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

namespace {

inline uint64_t LoadLaneLE(const uint8_t* p) {
  uint64_t lane = 0;
  std::memcpy(&lane, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  lane = __builtin_bswap64(lane);
#endif
  return lane;
}

}  // namespace

uint64_t FastHash64(const uint8_t* data, size_t size) {
  constexpr uint64_t kPrime = 0x100000001B3ULL;
  // Four independent FNV accumulators over interleaved 8-byte lanes: the
  // multiply chains run in parallel, so throughput is bounded by multiplier
  // ports rather than one chain's latency (~4x a single accumulator).
  uint64_t h0 = 0xCBF29CE484222325ULL ^ (size * kPrime);
  uint64_t h1 = 0x9E3779B97F4A7C15ULL;
  uint64_t h2 = 0xC2B2AE3D27D4EB4FULL;
  uint64_t h3 = 0x165667B19E3779F9ULL;
  size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    h0 = (h0 ^ LoadLaneLE(data + i)) * kPrime;
    h1 = (h1 ^ LoadLaneLE(data + i + 8)) * kPrime;
    h2 = (h2 ^ LoadLaneLE(data + i + 16)) * kPrime;
    h3 = (h3 ^ LoadLaneLE(data + i + 24)) * kPrime;
  }
  uint64_t h = (((((h0 ^ h1) * kPrime) ^ h2) * kPrime) ^ h3) * kPrime;
  for (; i + 8 <= size; i += 8) {
    h = (h ^ LoadLaneLE(data + i)) * kPrime;
  }
  for (; i < size; ++i) {
    h = (h ^ data[i]) * kPrime;
  }
  // Final avalanche so short inputs still spread across all 64 bits.
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

Result<uint8_t> BufferReader::ReadU8() {
  if (remaining() < 1) return Status::DataLoss("buffer underrun reading u8");
  return data_[pos_++];
}

Result<uint16_t> BufferReader::ReadU16() {
  if (remaining() < 2) return Status::DataLoss("buffer underrun reading u16");
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> BufferReader::ReadU32() {
  if (remaining() < 4) return Status::DataLoss("buffer underrun reading u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> BufferReader::ReadU64() {
  if (remaining() < 8) return Status::DataLoss("buffer underrun reading u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int32_t> BufferReader::ReadI32() {
  auto r = ReadU32();
  if (!r.ok()) return r.status();
  return static_cast<int32_t>(r.value());
}

Result<int64_t> BufferReader::ReadI64() {
  auto r = ReadU64();
  if (!r.ok()) return r.status();
  return static_cast<int64_t>(r.value());
}

Result<double> BufferReader::ReadF64() {
  auto r = ReadU64();
  if (!r.ok()) return r.status();
  double v;
  uint64_t bits = r.value();
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BufferReader::ReadString() {
  auto len = ReadU32();
  if (!len.ok()) return len.status();
  if (remaining() < len.value()) {
    return Status::DataLoss("buffer underrun reading string body");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len.value());
  pos_ += len.value();
  return s;
}

Status BufferReader::ReadBytes(uint8_t* out, size_t n) {
  if (remaining() < n) return Status::DataLoss("buffer underrun reading bytes");
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status BufferReader::Skip(size_t n) {
  if (remaining() < n) return Status::DataLoss("buffer underrun skipping bytes");
  pos_ += n;
  return Status::OK();
}

}  // namespace avdb

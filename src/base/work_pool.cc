#include "base/work_pool.h"

#include <cstdlib>

#include "base/strings.h"

namespace avdb {

WorkPool::WorkPool(int workers) {
  if (workers < 0) workers = 0;
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkPool::~WorkPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void WorkPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void WorkPool::Post(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

std::future<void> WorkPool::Submit(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  Post([packaged] { (*packaged)(); });
  return future;
}

WorkPool& WorkPool::Shared() {
  static WorkPool* pool = [] {
    int workers = 0;
    if (const char* env = std::getenv("AVDB_POOL_WORKERS")) {
      auto parsed = ParseInt64(env);
      if (parsed.ok()) workers = static_cast<int>(parsed.value());
    }
    if (workers <= 0) {
      workers = static_cast<int>(std::thread::hardware_concurrency());
    }
    if (workers < 1) workers = 1;
    if (workers > 16) workers = 16;
    return new WorkPool(workers);
  }();
  return *pool;
}

}  // namespace avdb

#ifndef AVDB_BASE_BUFFER_H_
#define AVDB_BASE_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/status.h"

namespace avdb {

/// Owned, growable byte buffer with little-endian primitive append/read
/// helpers. All on-disk and on-wire encodings in the library go through
/// Buffer so layout is explicit and platform-independent.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}
  explicit Buffer(size_t size, uint8_t fill = 0) : bytes_(size, fill) {}

  Buffer(const Buffer&) = default;
  Buffer& operator=(const Buffer&) = default;
  Buffer(Buffer&&) = default;
  Buffer& operator=(Buffer&&) = default;

  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  const uint8_t* data() const { return bytes_.data(); }
  uint8_t* data() { return bytes_.data(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t>& bytes() { return bytes_; }

  uint8_t operator[](size_t i) const { return bytes_[i]; }
  uint8_t& operator[](size_t i) { return bytes_[i]; }

  void Clear() { bytes_.clear(); }
  void Resize(size_t n, uint8_t fill = 0) { bytes_.resize(n, fill); }
  void Reserve(size_t n) { bytes_.reserve(n); }

  void AppendU8(uint8_t v) { bytes_.push_back(v); }
  void AppendU16(uint16_t v);
  void AppendU32(uint32_t v);
  void AppendU64(uint64_t v);
  void AppendI32(int32_t v) { AppendU32(static_cast<uint32_t>(v)); }
  void AppendI64(int64_t v) { AppendU64(static_cast<uint64_t>(v)); }
  void AppendF64(double v);
  /// Appends a u32 length prefix followed by the raw characters.
  void AppendString(const std::string& s);
  void AppendBytes(const uint8_t* p, size_t n);
  void AppendBuffer(const Buffer& other) {
    AppendBytes(other.data(), other.size());
  }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.bytes_ == b.bytes_;
  }

  /// FNV-1a hash of the contents; used for stored-chunk checksums.
  uint64_t Hash64() const;

 private:
  std::vector<uint8_t> bytes_;
};

/// Fast 64-bit hash over a byte span: FNV-1a over 8-byte lanes with a
/// byte-wise tail, folded once at the end. Roughly 8x the throughput of
/// `Buffer::Hash64`, which matters because the storage layer hashes every
/// page it reads; the two hashes are distinct functions and must not be
/// mixed on the same stored field. Deterministic across platforms (lanes
/// are assembled little-endian).
uint64_t FastHash64(const uint8_t* data, size_t size);

/// Sequential reader over a Buffer (or any byte span). Each Read* returns
/// DataLoss when the remaining bytes are too short — decoding stored or
/// transmitted data must never walk off the end.
class BufferReader {
 public:
  explicit BufferReader(const Buffer& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}
  BufferReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ >= size_; }

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();
  /// Reads a u32 length prefix then that many characters.
  Result<std::string> ReadString();
  Status ReadBytes(uint8_t* out, size_t n);
  /// Skips `n` bytes.
  Status Skip(size_t n);

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace avdb

#endif  // AVDB_BASE_BUFFER_H_

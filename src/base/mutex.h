#ifndef AVDB_BASE_MUTEX_H_
#define AVDB_BASE_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"

namespace avdb {

/// Annotated wrapper over std::mutex. All lock-protected state in the
/// library hangs off one of these via AVDB_GUARDED_BY so Clang's
/// thread-safety analysis can prove, on every path, that the guard is held
/// at every access (std::mutex itself cannot carry capability attributes).
/// Zero overhead: the wrapper is exactly a std::mutex.
class AVDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AVDB_ACQUIRE() { mu_.lock(); }
  void Unlock() AVDB_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() AVDB_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock scope over avdb::Mutex — the only way library code should
/// take a Mutex (manual Lock/Unlock pairs defeat the scoped analysis).
class AVDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AVDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() AVDB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with avdb::Mutex. Wait takes the Mutex the
/// caller already holds (enforced by AVDB_REQUIRES), so guarded state read
/// in the predicate loop stays visible to the analysis:
///
///   MutexLock lock(mu_);
///   cv_.Wait(mu_, [&]() AVDB_REQUIRES(mu_) { return ready_; });
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  /// `mu` must be held by the caller. The adopt/release dance below hands
  /// the already-held lock to std::condition_variable without double
  /// locking; the analysis can't follow it, hence the exemption — the
  /// REQUIRES contract is what callers see.
  void Wait(Mutex& mu) AVDB_REQUIRES(mu) AVDB_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // caller still owns the mutex
  }

  /// Waits until `pred()` holds. `pred` runs with `mu` held.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) AVDB_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace avdb

#endif  // AVDB_BASE_MUTEX_H_

#ifndef AVDB_BASE_RESULT_H_
#define AVDB_BASE_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "base/status.h"

namespace avdb {

/// Either a value of type `T` or a non-OK `Status`. The library's analogue of
/// `arrow::Result`: fallible functions returning a value use this instead of
/// exceptions or out-parameters.
///
/// Usage:
///   Result<Foo> MakeFoo();
///   auto r = MakeFoo();
///   if (!r.ok()) return r.status();
///   Foo foo = std::move(r).value();
/// Like Status, Result is [[nodiscard]]: a dropped Result is a dropped
/// error. See AVDB_IGNORE_STATUS for deliberate discards (pass
/// `expr.status()`).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : repr_(std::move(value)) {}
  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error and is converted to an internal error.
  Result(Status status) : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Status of the operation; OK() when a value is held.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Access the held value. Aborts if no value is held — callers must check
  /// `ok()` first (the no-exceptions contract leaves no other escape).
  const T& value() const& {
    CheckHasValue();
    return std::get<T>(repr_);
  }
  T& value() & {
    CheckHasValue();
    return std::get<T>(repr_);
  }
  /// Rvalue overload returns by value (one move) rather than T&&: the
  /// materialized temporary is lifetime-extended by bindings like
  /// `for (x : F().value())`, which with a reference return would dangle.
  T value() && {
    CheckHasValue();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  void CheckHasValue() const {
    if (!ok()) {
      std::cerr << "avdb: Result::value() called on error result: "
                << std::get<Status>(repr_).ToString() << std::endl;
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

}  // namespace avdb

/// Assigns the value of `rexpr` (a Result<T> expression) to `lhs`, or returns
/// its status from the enclosing function.
#define AVDB_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  AVDB_ASSIGN_OR_RETURN_IMPL_(                                  \
      AVDB_RESULT_CONCAT_(_avdb_result, __LINE__), lhs, rexpr)

#define AVDB_RESULT_CONCAT_INNER_(a, b) a##b
#define AVDB_RESULT_CONCAT_(a, b) AVDB_RESULT_CONCAT_INNER_(a, b)

#define AVDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // AVDB_BASE_RESULT_H_

#include "base/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace avdb {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty integer");
  std::string tmp(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tmp.c_str(), &end, 10);
  if (errno == ERANGE) return Status::InvalidArgument("integer out of range: " + tmp);
  if (end != tmp.c_str() + tmp.size()) {
    return Status::InvalidArgument("trailing characters in integer: " + tmp);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty number");
  std::string tmp(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tmp.c_str(), &end);
  if (errno == ERANGE) return Status::InvalidArgument("number out of range: " + tmp);
  if (end != tmp.c_str() + tmp.size()) {
    return Status::InvalidArgument("trailing characters in number: " + tmp);
  }
  return v;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace avdb

#ifndef AVDB_MEDIA_QUALITY_H_
#define AVDB_MEDIA_QUALITY_H_

#include <ostream>
#include <string>

#include "base/rational.h"
#include "base/result.h"
#include "media/media_type.h"

namespace avdb {

/// §4.1: "A video quality factor is an expression of the form w×h×d@r."
/// Applications use these instead of naming concrete representations; the
/// database maps a quality factor to a stored representation (possibly a
/// scalable layer subset) and to resource requirements.
class VideoQuality {
 public:
  /// 0x0x0@0 — matches nothing; prefer Parse or the field constructor.
  VideoQuality() = default;
  VideoQuality(int width, int height, int depth_bits, Rational rate)
      : width_(width), height_(height), depth_bits_(depth_bits), rate_(rate) {}

  /// Parses "640x480x8@30" (also accepts fractional rates "@29.97").
  static Result<VideoQuality> Parse(std::string_view text);

  int width() const { return width_; }
  int height() const { return height_; }
  int depth_bits() const { return depth_bits_; }
  Rational rate() const { return rate_; }

  /// Raw bytes/second a stream at this quality needs uncompressed.
  double RawBytesPerSecond() const {
    return static_cast<double>(width_) * height_ * (depth_bits_ / 8.0) *
           rate_.ToDouble();
  }

  /// True when a value of data type `t` can be presented at this quality
  /// without adding information: every stored dimension is >= the requested
  /// one (scaling down is always possible; §4.1 notes scaling up "does not
  /// add information").
  bool SatisfiableBy(const MediaDataType& t) const;

  /// True when this quality asks for no more than `other` in every
  /// dimension (a partial order; used to pick the cheapest layer).
  bool WeakerOrEqual(const VideoQuality& other) const;

  /// "wxhxd@r".
  std::string ToString() const;

  friend bool operator==(const VideoQuality& a, const VideoQuality& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.depth_bits_ == b.depth_bits_ && a.rate_ == b.rate_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int depth_bits_ = 0;
  Rational rate_;
};

std::ostream& operator<<(std::ostream& os, const VideoQuality& q);

/// §4.1: "An audio quality factor is a description such as voice-quality,
/// FM-quality, or CD-quality."
enum class AudioQuality {
  kVoice,  ///< mono 8 kHz
  kFm,     ///< stereo 22.05 kHz
  kCd,     ///< stereo 44.1 kHz
};

std::string_view AudioQualityName(AudioQuality q);

/// Parses "voice" / "FM" / "CD" (case-insensitive, optional "-quality").
Result<AudioQuality> ParseAudioQuality(std::string_view text);

/// Channel count the preset implies.
int AudioQualityChannels(AudioQuality q);
/// Sample rate the preset implies.
Rational AudioQualitySampleRate(AudioQuality q);

/// True when PCM of data type `t` can satisfy the preset.
bool AudioQualitySatisfiableBy(AudioQuality q, const MediaDataType& t);

/// Raw bytes/second of 16-bit PCM at the preset.
double AudioQualityBytesPerSecond(AudioQuality q);

}  // namespace avdb

#endif  // AVDB_MEDIA_QUALITY_H_

#ifndef AVDB_MEDIA_SYNTHETIC_H_
#define AVDB_MEDIA_SYNTHETIC_H_

#include <memory>
#include <string>

#include "media/audio_value.h"
#include "media/text_stream_value.h"
#include "media/video_value.h"

namespace avdb {

/// Deterministic synthetic content generators. These stand in for the
/// paper's newscast / promotional footage (see DESIGN.md §5): content is
/// only a carrier for the data model, and synthetic frames make codec and
/// synchronization behaviour exactly reproducible. All generators are pure
/// functions of their parameters and `seed`.
namespace synthetic {

/// Visual texture of generated video.
enum class VideoPattern {
  kMovingGradient,   ///< Smooth diagonal gradient drifting per frame —
                     ///< compresses well, exercises DC-heavy paths.
  kCheckerboard,     ///< Phase-shifting checkerboard — hard edges.
  kNoise,            ///< Seeded per-pixel noise — worst case for codecs.
  kMovingBox,        ///< Static background with a moving bright box —
                     ///< favourable to inter/delta codecs.
};

/// Generates `frame_count` frames of `pattern` at the geometry/rate of
/// `type` (must be raw video).
Result<std::shared_ptr<RawVideoValue>> GenerateVideo(MediaDataType type,
                                                     int64_t frame_count,
                                                     VideoPattern pattern,
                                                     uint64_t seed = 1);

/// One frame of `pattern` at time index `frame_index` (what GenerateVideo
/// produces at that index) — used by live-source activities (cameras).
VideoFrame GeneratePatternFrame(int width, int height, int depth_bits,
                                int64_t frame_index, VideoPattern pattern,
                                uint64_t seed = 1);

/// Audible texture of generated audio.
enum class AudioPattern {
  kTone,          ///< Fixed 440 Hz sine.
  kChirp,         ///< Rising sweep 200 Hz -> 2 kHz.
  kSpeechLike,    ///< Amplitude-modulated band-limited noise, speech-ish
                  ///< envelope — exercises ADPCM adaptation.
  kSilence,
};

/// Generates `sample_count` sample frames of `pattern` at the channel
/// count/rate of `type` (must be raw audio). Stereo channels are decorrelated
/// by a small phase offset.
Result<std::shared_ptr<RawAudioValue>> GenerateAudio(MediaDataType type,
                                                     int64_t sample_count,
                                                     AudioPattern pattern,
                                                     uint64_t seed = 1);

/// Generates a subtitle track: `caption_count` captions, each `hold`
/// elements long with `gap` elements between, texts "<prefix> 1"... at the
/// rate of `type` (must be text).
Result<std::shared_ptr<TextStreamValue>> GenerateSubtitles(
    MediaDataType type, int caption_count, int64_t hold, int64_t gap,
    const std::string& prefix);

}  // namespace synthetic
}  // namespace avdb

#endif  // AVDB_MEDIA_SYNTHETIC_H_

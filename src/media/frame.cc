#include "media/frame.h"

#include <cmath>
#include <cstdlib>

#include "base/logging.h"

namespace avdb {

VideoFrame::VideoFrame(int width, int height, int depth_bits)
    : width_(width), height_(height), depth_bits_(depth_bits) {
  AVDB_CHECK(width >= 0 && height >= 0) << "negative frame geometry";
  AVDB_CHECK(depth_bits == 8 || depth_bits == 24)
      << "unsupported frame depth " << depth_bits;
  data_.assign(static_cast<size_t>(width) * height * (depth_bits / 8), 0);
}

std::vector<uint8_t> VideoFrame::ExtractPlane(int p) const {
  std::vector<uint8_t> plane;
  ExtractPlaneInto(p, &plane);
  return plane;
}

void VideoFrame::ExtractPlaneInto(int p, std::vector<uint8_t>* out) const {
  const int bpp = bytes_per_pixel();
  AVDB_CHECK(p >= 0 && p < bpp) << "plane index out of range";
  out->resize(static_cast<size_t>(width_) * height_);
  std::vector<uint8_t>& plane = *out;
  for (size_t i = 0; i < plane.size(); ++i) plane[i] = data_[i * bpp + p];
}

Status VideoFrame::SetPlane(int p, const std::vector<uint8_t>& plane) {
  const int bpp = bytes_per_pixel();
  if (p < 0 || p >= bpp) return Status::InvalidArgument("plane index");
  if (plane.size() != static_cast<size_t>(width_) * height_) {
    return Status::InvalidArgument("plane size mismatch");
  }
  for (size_t i = 0; i < plane.size(); ++i) data_[i * bpp + p] = plane[i];
  return Status::OK();
}

Result<double> VideoFrame::MeanAbsoluteError(const VideoFrame& other) const {
  if (width_ != other.width_ || height_ != other.height_ ||
      depth_bits_ != other.depth_bits_) {
    return Status::InvalidArgument("frame geometry mismatch in MAE");
  }
  if (data_.empty()) return 0.0;
  uint64_t total = 0;
  for (size_t i = 0; i < data_.size(); ++i) {
    total += static_cast<uint64_t>(
        std::abs(static_cast<int>(data_[i]) - static_cast<int>(other.data_[i])));
  }
  return static_cast<double>(total) / static_cast<double>(data_.size());
}

}  // namespace avdb

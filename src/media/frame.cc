#include "media/frame.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "base/buffer_pool.h"
#include "base/logging.h"

namespace avdb {

namespace {

std::atomic<int64_t> g_plane_copies{0};

}  // namespace

VideoFrame::VideoFrame(int width, int height, int depth_bits)
    : width_(width), height_(height), depth_bits_(depth_bits) {
  AVDB_CHECK(width >= 0 && height >= 0) << "negative frame geometry";
  AVDB_CHECK(depth_bits == 8 || depth_bits == 24)
      << "unsupported frame depth " << depth_bits;
  data_ = BufferPool::Shared().AcquireBytes(
      static_cast<size_t>(width) * height * (depth_bits / 8));
  std::fill(data_.begin(), data_.end(), uint8_t{0});
}

VideoFrame::~VideoFrame() {
  BufferPool::Shared().Release(std::move(data_));
}

VideoFrame::VideoFrame(const VideoFrame& other)
    : width_(other.width_),
      height_(other.height_),
      depth_bits_(other.depth_bits_) {
  data_ = BufferPool::Shared().AcquireBytes(other.data_.size());
  if (!other.data_.empty()) {
    std::memcpy(data_.data(), other.data_.data(), other.data_.size());
  }
}

VideoFrame& VideoFrame::operator=(const VideoFrame& other) {
  if (this == &other) return *this;
  width_ = other.width_;
  height_ = other.height_;
  depth_bits_ = other.depth_bits_;
  data_.resize(other.data_.size());  // reuses capacity in steady state
  if (!other.data_.empty()) {
    std::memcpy(data_.data(), other.data_.data(), other.data_.size());
  }
  return *this;
}

VideoFrame::VideoFrame(VideoFrame&& other) noexcept
    : width_(other.width_),
      height_(other.height_),
      depth_bits_(other.depth_bits_),
      data_(std::move(other.data_)) {
  other.width_ = 0;
  other.height_ = 0;
  other.data_.clear();
}

VideoFrame& VideoFrame::operator=(VideoFrame&& other) noexcept {
  if (this == &other) return *this;
  BufferPool::Shared().Release(std::move(data_));
  width_ = other.width_;
  height_ = other.height_;
  depth_bits_ = other.depth_bits_;
  data_ = std::move(other.data_);
  other.width_ = 0;
  other.height_ = 0;
  other.data_.clear();
  return *this;
}

std::vector<uint8_t> VideoFrame::ExtractPlane(int p) const {
  std::vector<uint8_t> plane;
  ExtractPlaneInto(p, &plane);
  return plane;
}

void VideoFrame::ExtractPlaneInto(int p, std::vector<uint8_t>* out) const {
  AVDB_CHECK(p >= 0 && p < bytes_per_pixel()) << "plane index out of range";
  g_plane_copies.fetch_add(1, std::memory_order_relaxed);
  out->resize(plane_size());
  if (plane_size() > 0) {
    std::memcpy(out->data(), data_.data() + plane_size() * p, plane_size());
  }
}

Status VideoFrame::SetPlane(int p, const std::vector<uint8_t>& plane) {
  if (p < 0 || p >= bytes_per_pixel()) {
    return Status::InvalidArgument("plane index");
  }
  if (plane.size() != plane_size()) {
    return Status::InvalidArgument("plane size mismatch");
  }
  g_plane_copies.fetch_add(1, std::memory_order_relaxed);
  if (!plane.empty()) {
    std::memcpy(data_.data() + plane_size() * p, plane.data(), plane.size());
  }
  return Status::OK();
}

int64_t VideoFrame::plane_copies() {
  return g_plane_copies.load(std::memory_order_relaxed);
}

Result<double> VideoFrame::MeanAbsoluteError(const VideoFrame& other) const {
  if (width_ != other.width_ || height_ != other.height_ ||
      depth_bits_ != other.depth_bits_) {
    return Status::InvalidArgument("frame geometry mismatch in MAE");
  }
  if (data_.empty()) return 0.0;
  uint64_t total = 0;
  for (size_t i = 0; i < data_.size(); ++i) {
    total += static_cast<uint64_t>(
        std::abs(static_cast<int>(data_[i]) - static_cast<int>(other.data_[i])));
  }
  return static_cast<double>(total) / static_cast<double>(data_.size());
}

AudioBlock::AudioBlock(int channels, int frame_count) : channels_(channels) {
  samples_ = BufferPool::Shared().AcquireI16(static_cast<size_t>(channels) *
                                             frame_count);
  std::fill(samples_.begin(), samples_.end(), int16_t{0});
}

AudioBlock::~AudioBlock() {
  BufferPool::Shared().Release(std::move(samples_));
}

AudioBlock::AudioBlock(const AudioBlock& other) : channels_(other.channels_) {
  samples_ = BufferPool::Shared().AcquireI16(other.samples_.size());
  if (!other.samples_.empty()) {
    std::memcpy(samples_.data(), other.samples_.data(),
                other.samples_.size() * sizeof(int16_t));
  }
}

AudioBlock& AudioBlock::operator=(const AudioBlock& other) {
  if (this == &other) return *this;
  channels_ = other.channels_;
  samples_.resize(other.samples_.size());
  if (!other.samples_.empty()) {
    std::memcpy(samples_.data(), other.samples_.data(),
                other.samples_.size() * sizeof(int16_t));
  }
  return *this;
}

AudioBlock::AudioBlock(AudioBlock&& other) noexcept
    : channels_(other.channels_), samples_(std::move(other.samples_)) {
  other.channels_ = 0;
  other.samples_.clear();
}

AudioBlock& AudioBlock::operator=(AudioBlock&& other) noexcept {
  if (this == &other) return *this;
  BufferPool::Shared().Release(std::move(samples_));
  channels_ = other.channels_;
  samples_ = std::move(other.samples_);
  other.channels_ = 0;
  other.samples_.clear();
  return *this;
}

}  // namespace avdb

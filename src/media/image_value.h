#ifndef AVDB_MEDIA_IMAGE_VALUE_H_
#define AVDB_MEDIA_IMAGE_VALUE_H_

#include <memory>

#include "media/frame.h"
#include "media/media_value.h"

namespace avdb {

/// A still raster image — the paper's `ImageValue`, the element type of
/// video values and the payload of the virtual-world scenario's
/// "high-resolution raster images". A one-element media value.
class ImageValue final : public MediaValue {
 public:
  /// Wraps a frame as an image value.
  static Result<std::shared_ptr<ImageValue>> FromFrame(VideoFrame frame);

  int64_t ElementCount() const override { return 1; }

  const VideoFrame& frame() const { return frame_; }

 private:
  ImageValue(MediaDataType type, VideoFrame frame)
      : MediaValue(std::move(type)), frame_(std::move(frame)) {}

  VideoFrame frame_;
};

using ImageValuePtr = std::shared_ptr<ImageValue>;

}  // namespace avdb

#endif  // AVDB_MEDIA_IMAGE_VALUE_H_

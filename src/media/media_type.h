#ifndef AVDB_MEDIA_MEDIA_TYPE_H_
#define AVDB_MEDIA_MEDIA_TYPE_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>

#include "base/rational.h"
#include "base/result.h"

namespace avdb {

/// The medium a value or port carries.
enum class MediaKind { kVideo, kAudio, kText, kImage };

std::string_view MediaKindName(MediaKind kind);

/// Encoding family of a media data type. `kRaw` is uncompressed; the others
/// are the paper's representative compressed-video families (§3.1, §4.1),
/// realized by the codecs in `src/codec/`. For flow composition, ports carry
/// a MediaDataType and an "in" port connects to an "out" port only when the
/// types agree (§4.2 rule 1).
enum class EncodingFamily {
  kRaw,        ///< Uncompressed samples/frames.
  kIntra,      ///< Independently coded frames (JPEG-style).
  kInter,      ///< GOP-structured predictive coding (MPEG-style).
  kDelta,      ///< Frame-difference coding (DVI RTV-style).
  kScalable,   ///< Layered encoding; quality selectable at decode (§4.1).
  kAdpcm,      ///< 4-bit adaptive differential audio.
  kMulaw,      ///< 8-bit companded audio.
};

std::string_view EncodingFamilyName(EncodingFamily family);

/// §3.1, definition 2: "each AV value has a media data type governing the
/// encoding and interpretation of its elements. The type of v determines r,
/// the data rate of v."
///
/// A MediaDataType fixes the medium, the element geometry (resolution /
/// channels / sample depth), the element rate, and the encoding family.
/// Well-known 1993 types are provided as factories (CD audio, CCIR 601,
/// CIF...). Value-semantic and comparable, so port-compatibility checks are
/// plain equality.
class MediaDataType {
 public:
  /// Untyped placeholder (kind video, 0x0). Prefer the factories.
  MediaDataType() = default;

  /// Uncompressed video: `width`×`height` at `depth_bits` (8 or 24), `rate`
  /// frames/second.
  static MediaDataType RawVideo(int width, int height, int depth_bits,
                                Rational rate);
  /// Compressed video of the given family with a nominal compression ratio
  /// used for rate estimates (actual sizes come from the codec).
  static MediaDataType CompressedVideo(EncodingFamily family, int width,
                                       int height, int depth_bits,
                                       Rational rate);
  /// Uncompressed 16-bit PCM audio.
  static MediaDataType RawAudio(int channels, Rational sample_rate);
  /// Compressed audio of the given family.
  static MediaDataType CompressedAudio(EncodingFamily family, int channels,
                                       Rational sample_rate);
  /// Timed text stream (`rate` = element rate used for object time).
  static MediaDataType Text(Rational rate);
  /// Still image (single element).
  static MediaDataType Image(int width, int height, int depth_bits);

  // --- Well-known types from the paper -----------------------------------
  /// "CD encoded audio (pairs of 16-bit samples at 44.1 kHz)".
  static MediaDataType CdAudio() { return RawAudio(2, Rational(44100)); }
  /// "CCIR 601 digital video" — 720×486 8-bit at NTSC rate (30000/1001).
  static MediaDataType Ccir601() {
    return RawVideo(720, 486, 8, Rational(30000, 1001));
  }
  /// CIF: 352×288, 24-bit colour, 30 fps — typical early-90s desktop video.
  static MediaDataType Cif() { return RawVideo(352, 288, 24, Rational(30)); }
  /// QCIF: 176×144, 8-bit, 15 fps.
  static MediaDataType Qcif() { return RawVideo(176, 144, 8, Rational(15)); }
  /// Telephone-quality audio: mono 8 kHz.
  static MediaDataType VoiceAudio() { return RawAudio(1, Rational(8000)); }

  MediaKind kind() const { return kind_; }
  EncodingFamily family() const { return family_; }
  bool IsCompressed() const { return family_ != EncodingFamily::kRaw; }

  int width() const { return width_; }
  int height() const { return height_; }
  int depth_bits() const { return depth_bits_; }
  int channels() const { return channels_; }

  /// Elements per second: frame rate for video, sample rate for audio.
  Rational element_rate() const { return element_rate_; }

  /// Bytes of one uncompressed element (frame or per-channel sample set).
  int64_t ElementSizeBytes() const;

  /// §3.1's r: nominal data rate in bytes/second. For compressed families
  /// this is the uncompressed rate divided by the family's nominal ratio —
  /// the number used by admission control before actual sizes are known.
  double NominalBytesPerSecond() const;

  /// Nominal compression ratio of the family (1 for raw).
  double NominalCompressionRatio() const;

  /// e.g. "video/raw 720x486x8@29.97" or "audio/raw 2ch@44100Hz".
  std::string ToString() const;

  friend bool operator==(const MediaDataType& a, const MediaDataType& b);
  friend bool operator!=(const MediaDataType& a, const MediaDataType& b) {
    return !(a == b);
  }

 private:
  MediaKind kind_ = MediaKind::kVideo;
  EncodingFamily family_ = EncodingFamily::kRaw;
  int width_ = 0;
  int height_ = 0;
  int depth_bits_ = 8;
  int channels_ = 0;
  Rational element_rate_;
};

std::ostream& operator<<(std::ostream& os, const MediaDataType& t);

}  // namespace avdb

#endif  // AVDB_MEDIA_MEDIA_TYPE_H_

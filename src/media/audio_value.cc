#include "media/audio_value.h"

namespace avdb {

Result<std::shared_ptr<RawAudioValue>> RawAudioValue::Create(
    MediaDataType type) {
  if (type.kind() != MediaKind::kAudio) {
    return Status::InvalidArgument("RawAudioValue requires an audio type");
  }
  if (type.IsCompressed()) {
    return Status::InvalidArgument("RawAudioValue requires a raw type");
  }
  if (type.channels() <= 0) {
    return Status::InvalidArgument("audio type needs >= 1 channel");
  }
  auto value = std::shared_ptr<RawAudioValue>(new RawAudioValue(type));
  value->block_ = AudioBlock(type.channels(), 0);
  return value;
}

Result<std::shared_ptr<RawAudioValue>> RawAudioValue::FromBlock(
    MediaDataType type, AudioBlock block) {
  auto value = Create(std::move(type));
  if (!value.ok()) return value.status();
  if (block.channels() != value.value()->channels()) {
    return Status::InvalidArgument("audio block channel count mismatch");
  }
  value.value()->block_ = std::move(block);
  return value;
}

Result<AudioBlock> RawAudioValue::Samples(int64_t first, int64_t count) const {
  if (first < 0 || count < 0 || first + count > ElementCount()) {
    return Status::InvalidArgument("sample range out of bounds");
  }
  AudioBlock out(channels(), static_cast<int>(count));
  for (int64_t f = 0; f < count; ++f) {
    for (int c = 0; c < channels(); ++c) {
      out.Set(static_cast<int>(f), c,
              block_.At(static_cast<int>(first + f), c));
    }
  }
  return out;
}

Status RawAudioValue::Append(const AudioBlock& more) {
  if (more.channels() != channels()) {
    return Status::InvalidArgument("audio block channel count mismatch");
  }
  block_.samples().insert(block_.samples().end(), more.samples().begin(),
                          more.samples().end());
  return Status::OK();
}

}  // namespace avdb

#include "media/synthetic.h"

#include <cmath>

#include "base/rng.h"

namespace avdb {
namespace synthetic {

VideoFrame GeneratePatternFrame(int width, int height, int depth_bits,
                                int64_t frame_index, VideoPattern pattern,
                                uint64_t seed) {
  VideoFrame frame(width, height, depth_bits);
  const int bpp = frame.bytes_per_pixel();
  switch (pattern) {
    case VideoPattern::kMovingGradient: {
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          for (int c = 0; c < bpp; ++c) {
            const int v =
                (x + y + static_cast<int>(frame_index) * (3 + c)) & 0xFF;
            frame.Set(x, y, static_cast<uint8_t>(v), c);
          }
        }
      }
      break;
    }
    case VideoPattern::kCheckerboard: {
      const int phase = static_cast<int>(frame_index) % 16;
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          const bool on = (((x + phase) / 8) + (y / 8)) % 2 == 0;
          for (int c = 0; c < bpp; ++c) {
            frame.Set(x, y, on ? 230 : 25, c);
          }
        }
      }
      break;
    }
    case VideoPattern::kNoise: {
      Rng rng(seed * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(frame_index));
      for (auto& b : frame.data()) b = static_cast<uint8_t>(rng.NextU64());
      break;
    }
    case VideoPattern::kMovingBox: {
      // Textured static background.
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          for (int c = 0; c < bpp; ++c) {
            frame.Set(x, y, static_cast<uint8_t>(64 + ((x * 7 + y * 3) & 31)),
                      c);
          }
        }
      }
      // Bright box orbiting the frame.
      const int bw = std::max(4, width / 8);
      const int bh = std::max(4, height / 8);
      const int span_x = std::max(1, width - bw);
      const int span_y = std::max(1, height - bh);
      const int bx = static_cast<int>((frame_index * 5) % span_x);
      const int by = static_cast<int>((frame_index * 3) % span_y);
      for (int y = by; y < by + bh && y < height; ++y) {
        for (int x = bx; x < bx + bw && x < width; ++x) {
          for (int c = 0; c < bpp; ++c) frame.Set(x, y, 250, c);
        }
      }
      break;
    }
  }
  return frame;
}

Result<std::shared_ptr<RawVideoValue>> GenerateVideo(MediaDataType type,
                                                     int64_t frame_count,
                                                     VideoPattern pattern,
                                                     uint64_t seed) {
  auto value = RawVideoValue::Create(type);
  if (!value.ok()) return value.status();
  for (int64_t i = 0; i < frame_count; ++i) {
    AVDB_RETURN_IF_ERROR(value.value()->AppendFrame(
        GeneratePatternFrame(type.width(), type.height(), type.depth_bits(),
                             i, pattern, seed)));
  }
  return value;
}

Result<std::shared_ptr<RawAudioValue>> GenerateAudio(MediaDataType type,
                                                     int64_t sample_count,
                                                     AudioPattern pattern,
                                                     uint64_t seed) {
  auto value = RawAudioValue::Create(type);
  if (!value.ok()) return value.status();
  const int channels = type.channels();
  const double rate = type.element_rate().ToDouble();
  AudioBlock block(channels, static_cast<int>(sample_count));
  Rng rng(seed);
  double lowpass = 0.0;
  for (int64_t i = 0; i < sample_count; ++i) {
    const double t = static_cast<double>(i) / rate;
    for (int c = 0; c < channels; ++c) {
      const double phase = c * 0.1;  // decorrelate channels slightly
      double sample = 0.0;
      switch (pattern) {
        case AudioPattern::kTone:
          sample = 0.6 * std::sin(2.0 * M_PI * 440.0 * t + phase);
          break;
        case AudioPattern::kChirp: {
          const double f = 200.0 + 1800.0 * t;  // rising sweep
          sample = 0.6 * std::sin(2.0 * M_PI * f * t + phase);
          break;
        }
        case AudioPattern::kSpeechLike: {
          // 4 Hz syllable envelope over low-passed noise.
          if (c == 0) {
            const double noise = rng.NextDouble() * 2.0 - 1.0;
            lowpass += 0.2 * (noise - lowpass);
          }
          const double envelope =
              0.5 * (1.0 + std::sin(2.0 * M_PI * 4.0 * t + phase));
          sample = 0.8 * envelope * lowpass;
          break;
        }
        case AudioPattern::kSilence:
          sample = 0.0;
          break;
      }
      block.Set(static_cast<int>(i), c,
                static_cast<int16_t>(sample * 32000.0));
    }
  }
  AVDB_RETURN_IF_ERROR(value.value()->Append(block));
  return value;
}

Result<std::shared_ptr<TextStreamValue>> GenerateSubtitles(
    MediaDataType type, int caption_count, int64_t hold, int64_t gap,
    const std::string& prefix) {
  auto value = TextStreamValue::Create(type);
  if (!value.ok()) return value.status();
  int64_t at = 0;
  for (int i = 0; i < caption_count; ++i) {
    AVDB_RETURN_IF_ERROR(value.value()->AppendSpan(
        at, hold, prefix + " " + std::to_string(i + 1)));
    at += hold + gap;
  }
  return value;
}

}  // namespace synthetic
}  // namespace avdb

#ifndef AVDB_MEDIA_TEXT_STREAM_VALUE_H_
#define AVDB_MEDIA_TEXT_STREAM_VALUE_H_

#include <memory>
#include <string>
#include <vector>

#include "media/media_value.h"

namespace avdb {

/// One timed caption: text shown from element `first_element` for
/// `element_count` elements of the stream's own clock.
struct TextSpan {
  int64_t first_element;
  int64_t element_count;
  std::string text;
};

/// Timed text — the paper's `TextStreamValue` used for the Newscast
/// `subtitleTrack` (§4.1). Elements tick at the stream's element rate
/// (conventionally the video frame rate so subtitles cut on frames);
/// each element maps to at most one visible span.
class TextStreamValue final : public MediaValue {
 public:
  /// Creates an empty stream ticking at `type.element_rate()`; `type` must
  /// be a text type with positive rate.
  static Result<std::shared_ptr<TextStreamValue>> Create(MediaDataType type);

  int64_t ElementCount() const override { return element_count_; }

  /// Appends a span; spans must be non-overlapping and appended in order
  /// (InvalidArgument otherwise).
  Status AppendSpan(int64_t first_element, int64_t element_count,
                    std::string text);

  /// Text visible at element `element`, or "" when none.
  std::string TextAtElement(int64_t element) const;

  /// Text visible at world instant `t` (through the temporal transform).
  Result<std::string> TextAt(WorldTime t) const;

  const std::vector<TextSpan>& spans() const { return spans_; }

 private:
  explicit TextStreamValue(MediaDataType type)
      : MediaValue(std::move(type)) {}

  std::vector<TextSpan> spans_;
  int64_t element_count_ = 0;
};

using TextStreamValuePtr = std::shared_ptr<TextStreamValue>;

}  // namespace avdb

#endif  // AVDB_MEDIA_TEXT_STREAM_VALUE_H_

#include "media/media_ops.h"

#include <algorithm>

namespace avdb {
namespace media_ops {

namespace {

MediaDataType RawTypeOf(const VideoValue& video) {
  return MediaDataType::RawVideo(video.width(), video.height(),
                                 video.depth_bits(), video.frame_rate());
}

Status CheckSameVideoFormat(const VideoValue& a, const VideoValue& b) {
  if (a.width() != b.width() || a.height() != b.height() ||
      a.depth_bits() != b.depth_bits() || a.frame_rate() != b.frame_rate()) {
    return Status::InvalidArgument(
        "video formats differ: " + a.type().ToString() + " vs " +
        b.type().ToString());
  }
  return Status::OK();
}

Status CheckSameAudioFormat(const AudioValue& a, const AudioValue& b) {
  if (a.channels() != b.channels() || a.sample_rate() != b.sample_rate()) {
    return Status::InvalidArgument(
        "audio formats differ: " + a.type().ToString() + " vs " +
        b.type().ToString());
  }
  return Status::OK();
}

Status AppendRange(const VideoValue& source, int64_t first, int64_t count,
                   RawVideoValue* out) {
  // Bulk-fetch in bounded batches so encoded sources can decode a range in
  // one pass (in parallel when their params ask for it) without holding
  // the whole segment in raw form twice.
  constexpr int64_t kBatch = 64;
  for (int64_t start = 0; start < count; start += kBatch) {
    const int64_t take = std::min(kBatch, count - start);
    auto frames = source.Frames(first + start, take);
    if (!frames.ok()) return frames.status();
    for (VideoFrame& frame : frames.value()) {
      AVDB_RETURN_IF_ERROR(out->AppendFrame(std::move(frame)));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<RawVideoValue>> ExtractSegment(const VideoValue& video,
                                                      int64_t first,
                                                      int64_t count) {
  if (first < 0 || count < 0 || first + count > video.FrameCount()) {
    return Status::InvalidArgument("segment out of bounds");
  }
  auto out = RawVideoValue::Create(RawTypeOf(video));
  if (!out.ok()) return out.status();
  AVDB_RETURN_IF_ERROR(AppendRange(video, first, count, out.value().get()));
  return out;
}

Result<std::shared_ptr<RawVideoValue>> Concatenate(const VideoValue& a,
                                                   const VideoValue& b) {
  AVDB_RETURN_IF_ERROR(CheckSameVideoFormat(a, b));
  auto out = RawVideoValue::Create(RawTypeOf(a));
  if (!out.ok()) return out.status();
  AVDB_RETURN_IF_ERROR(AppendRange(a, 0, a.FrameCount(), out.value().get()));
  AVDB_RETURN_IF_ERROR(AppendRange(b, 0, b.FrameCount(), out.value().get()));
  return out;
}

Result<std::shared_ptr<RawVideoValue>> Dissolve(const VideoValue& a,
                                                const VideoValue& b,
                                                int64_t overlap) {
  AVDB_RETURN_IF_ERROR(CheckSameVideoFormat(a, b));
  if (overlap < 0 || overlap > a.FrameCount() || overlap > b.FrameCount()) {
    return Status::InvalidArgument("dissolve overlap out of bounds");
  }
  auto out = RawVideoValue::Create(RawTypeOf(a));
  if (!out.ok()) return out.status();
  // Head of a, untouched.
  AVDB_RETURN_IF_ERROR(
      AppendRange(a, 0, a.FrameCount() - overlap, out.value().get()));
  // Cross-fade region.
  for (int64_t i = 0; i < overlap; ++i) {
    auto frame_a = a.Frame(a.FrameCount() - overlap + i);
    if (!frame_a.ok()) return frame_a.status();
    auto frame_b = b.Frame(i);
    if (!frame_b.ok()) return frame_b.status();
    const double t = overlap == 1
                         ? 0.5
                         : static_cast<double>(i) / (overlap - 1);
    VideoFrame mixed(a.width(), a.height(), a.depth_bits());
    for (size_t p = 0; p < mixed.data().size(); ++p) {
      mixed.data()[p] = static_cast<uint8_t>(
          (1.0 - t) * frame_a.value().data()[p] +
          t * frame_b.value().data()[p]);
    }
    AVDB_RETURN_IF_ERROR(out.value()->AppendFrame(std::move(mixed)));
  }
  // Tail of b, untouched.
  AVDB_RETURN_IF_ERROR(
      AppendRange(b, overlap, b.FrameCount() - overlap, out.value().get()));
  return out;
}

Result<std::shared_ptr<RawVideoValue>> InsertClip(const VideoValue& base,
                                                  const VideoValue& clip,
                                                  int64_t at) {
  AVDB_RETURN_IF_ERROR(CheckSameVideoFormat(base, clip));
  if (at < 0 || at > base.FrameCount()) {
    return Status::InvalidArgument("insert position out of bounds");
  }
  auto out = RawVideoValue::Create(RawTypeOf(base));
  if (!out.ok()) return out.status();
  AVDB_RETURN_IF_ERROR(AppendRange(base, 0, at, out.value().get()));
  AVDB_RETURN_IF_ERROR(
      AppendRange(clip, 0, clip.FrameCount(), out.value().get()));
  AVDB_RETURN_IF_ERROR(AppendRange(base, at, base.FrameCount() - at,
                                   out.value().get()));
  return out;
}

Result<std::shared_ptr<RawAudioValue>> ExtractAudio(const AudioValue& audio,
                                                    int64_t first,
                                                    int64_t count) {
  auto block = audio.Samples(first, count);
  if (!block.ok()) return block.status();
  return RawAudioValue::FromBlock(
      MediaDataType::RawAudio(audio.channels(), audio.sample_rate()),
      std::move(block).value());
}

Result<std::shared_ptr<RawAudioValue>> ConcatenateAudio(const AudioValue& a,
                                                        const AudioValue& b) {
  AVDB_RETURN_IF_ERROR(CheckSameAudioFormat(a, b));
  auto out = RawAudioValue::Create(
      MediaDataType::RawAudio(a.channels(), a.sample_rate()));
  if (!out.ok()) return out.status();
  auto block_a = a.Samples(0, a.SampleCount());
  if (!block_a.ok()) return block_a.status();
  AVDB_RETURN_IF_ERROR(out.value()->Append(block_a.value()));
  auto block_b = b.Samples(0, b.SampleCount());
  if (!block_b.ok()) return block_b.status();
  AVDB_RETURN_IF_ERROR(out.value()->Append(block_b.value()));
  return out;
}

Result<std::shared_ptr<RawAudioValue>> MixAudio(const AudioValue& a,
                                                const AudioValue& b,
                                                double gain_a,
                                                double gain_b) {
  AVDB_RETURN_IF_ERROR(CheckSameAudioFormat(a, b));
  const int64_t frames = std::max(a.SampleCount(), b.SampleCount());
  const int channels = a.channels();
  AudioBlock mixed(channels, static_cast<int>(frames));
  auto block_a = a.Samples(0, a.SampleCount());
  if (!block_a.ok()) return block_a.status();
  auto block_b = b.Samples(0, b.SampleCount());
  if (!block_b.ok()) return block_b.status();
  for (int64_t f = 0; f < frames; ++f) {
    for (int c = 0; c < channels; ++c) {
      double sample = 0;
      if (f < a.SampleCount()) {
        sample += gain_a * block_a.value().At(static_cast<int>(f), c);
      }
      if (f < b.SampleCount()) {
        sample += gain_b * block_b.value().At(static_cast<int>(f), c);
      }
      if (sample > 32767) sample = 32767;
      if (sample < -32768) sample = -32768;
      mixed.Set(static_cast<int>(f), c, static_cast<int16_t>(sample));
    }
  }
  return RawAudioValue::FromBlock(
      MediaDataType::RawAudio(channels, a.sample_rate()), std::move(mixed));
}

}  // namespace media_ops
}  // namespace avdb

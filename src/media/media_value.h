#ifndef AVDB_MEDIA_MEDIA_VALUE_H_
#define AVDB_MEDIA_MEDIA_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "base/rational.h"
#include "base/result.h"
#include "media/media_type.h"
#include "time/interval.h"
#include "time/temporal_transform.h"
#include "time/world_time.h"

namespace avdb {

/// Abstract root of the AV data model (§4.1 of the paper):
///
///   class MediaValue {
///     WorldTime duration; WorldTime start;
///     ObjectTime WorldToObject(WorldTime); WorldTime ObjectToWorld(ObjectTime);
///     Scale(float); Translate(WorldTime); MediaValue Element(WorldTime);
///   }
///
/// A media value is a finite sequence of elements (frames, samples, text
/// records) with a natural element rate, placed on the world-time axis by a
/// temporal transform. `Scale` and `Translate` adjust that placement;
/// `WorldToObject`/`ObjectToWorld` convert between the shared presentation
/// axis and the value's own element numbering.
///
/// Subclasses fix the medium (video/audio/text/image) and the storage
/// representation; applications work against this interface and are
/// "screened from underlying differences in representation" (§4.1).
class MediaValue {
 public:
  virtual ~MediaValue() = default;

  MediaValue(const MediaValue&) = delete;
  MediaValue& operator=(const MediaValue&) = delete;

  /// Media data type governing encoding and interpretation (definition 2).
  const MediaDataType& type() const { return type_; }
  MediaKind kind() const { return type_.kind(); }

  /// Number of elements in the sequence (definition 1's finite |v|).
  virtual int64_t ElementCount() const = 0;

  /// Elements per second on the value's own axis.
  Rational ElementRate() const { return type_.element_rate(); }

  /// Placement of this value on the world-time axis.
  const TemporalTransform& transform() const { return transform_; }

  /// World instant of the first element.
  WorldTime start() const {
    return transform_.ToWorld(WorldTime());
  }

  /// Presented duration on the world axis (natural duration / |scale|).
  WorldTime duration() const;

  /// [start, start+duration) on the world axis.
  Interval Extent() const { return Interval(start(), duration()); }

  /// Natural (unscaled) duration: ElementCount / ElementRate.
  WorldTime NaturalDuration() const {
    return WorldTime::FromElements(ElementCount(), ElementRate());
  }

  /// Plays the value at `factor`× natural speed (paper's `Scale`).
  /// A factor of 2 halves the presented duration. Must be nonzero (checked).
  void Scale(Rational factor);

  /// Moves the value `offset` later on the world axis (paper's `Translate`).
  void Translate(WorldTime offset);

  /// Resets placement to scale 1 at world origin.
  void ResetPlacement() { transform_ = TemporalTransform(); }

  /// Element index presented at world instant `t` (paper's `WorldToObject`).
  /// Clamped to [0, ElementCount-1]; InvalidArgument for empty values or
  /// instants outside the extent.
  Result<ObjectTime> WorldToObject(WorldTime t) const;

  /// World instant at which element `o` begins (paper's `ObjectToWorld`).
  /// InvalidArgument if `o` is outside [0, ElementCount).
  Result<WorldTime> ObjectToWorld(ObjectTime o) const;

  /// Human-readable summary, e.g. "video/raw 352x288x24@30.00, 90 frames".
  virtual std::string Describe() const;

 protected:
  explicit MediaValue(MediaDataType type) : type_(std::move(type)) {}

  void set_type(MediaDataType type) { type_ = std::move(type); }

 private:
  MediaDataType type_;
  TemporalTransform transform_;
};

using MediaValuePtr = std::shared_ptr<MediaValue>;

}  // namespace avdb

#endif  // AVDB_MEDIA_MEDIA_VALUE_H_

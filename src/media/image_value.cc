#include "media/image_value.h"

namespace avdb {

Result<std::shared_ptr<ImageValue>> ImageValue::FromFrame(VideoFrame frame) {
  if (frame.width() <= 0 || frame.height() <= 0) {
    return Status::InvalidArgument("image must be non-empty");
  }
  MediaDataType type =
      MediaDataType::Image(frame.width(), frame.height(), frame.depth_bits());
  return std::shared_ptr<ImageValue>(
      new ImageValue(std::move(type), std::move(frame)));
}

}  // namespace avdb

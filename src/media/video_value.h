#ifndef AVDB_MEDIA_VIDEO_VALUE_H_
#define AVDB_MEDIA_VIDEO_VALUE_H_

#include <memory>
#include <vector>

#include "media/frame.h"
#include "media/media_value.h"

namespace avdb {

/// Abstract video value — the paper's `VideoValue` subclass of `MediaValue`
/// with attributes width/height/depth/numFrame. Concrete subclasses differ
/// in representation (raw frames here; encoded representations live in
/// `src/codec/` as the paper's JPEG-/MPEG-/DVI-VideoValue analogues), and
/// "an application working with existing AV values can use the generic
/// VideoValue class" (§4.1).
class VideoValue : public MediaValue {
 public:
  int width() const { return type().width(); }
  int height() const { return type().height(); }
  int depth_bits() const { return type().depth_bits(); }
  int64_t FrameCount() const { return ElementCount(); }
  Rational frame_rate() const { return ElementRate(); }

  /// Decodes/fetches frame `index` (0-based). InvalidArgument when out of
  /// range; DataLoss when a stored representation fails to decode.
  virtual Result<VideoFrame> Frame(int64_t index) const = 0;

  /// Bulk fetch of frames [first, first+count) in order. The default
  /// simply loops Frame(); representations with an internal decoder
  /// (EncodedVideoValue) override to decode the range in one pass, in
  /// parallel when the stream's codec params ask for concurrency > 1.
  /// Results are identical to the serial loop either way.
  virtual Result<std::vector<VideoFrame>> Frames(int64_t first,
                                                 int64_t count) const;

  /// Frame presented at world instant `t` (through the temporal transform).
  Result<VideoFrame> FrameAt(WorldTime t) const;

  /// Stored size in bytes (representation-dependent).
  virtual int64_t StoredBytes() const = 0;

  /// Stored bytes of frame `index` — what a streaming reader fetches from
  /// the device for that frame. Defaults to the uncompressed frame size;
  /// encoded representations override with their actual chunk sizes.
  virtual int64_t StoredFrameBytes(int64_t index) const {
    (void)index;
    return static_cast<int64_t>(width()) * height() * (depth_bits() / 8);
  }

 protected:
  explicit VideoValue(MediaDataType type) : MediaValue(std::move(type)) {}
};

using VideoValuePtr = std::shared_ptr<VideoValue>;

/// Uncompressed in-memory video: a plain sequence of frames. The reference
/// representation every codec round-trips against.
class RawVideoValue final : public VideoValue {
 public:
  /// Creates an empty value of the given geometry. `type` must be raw video.
  static Result<std::shared_ptr<RawVideoValue>> Create(MediaDataType type);

  /// Creates from existing frames; all frames must match the type's
  /// geometry (InvalidArgument otherwise).
  static Result<std::shared_ptr<RawVideoValue>> FromFrames(
      MediaDataType type, std::vector<VideoFrame> frames);

  int64_t ElementCount() const override {
    return static_cast<int64_t>(frames_.size());
  }
  Result<VideoFrame> Frame(int64_t index) const override;
  int64_t StoredBytes() const override;

  /// Appends a frame (must match geometry).
  Status AppendFrame(VideoFrame frame);

  /// Replaces frame `index` — the paper's example of a passive-state
  /// modification ("perhaps changing particular frames", §4.2).
  Status ReplaceFrame(int64_t index, VideoFrame frame);

  /// Removes frames [first, first+count).
  Status DeleteFrames(int64_t first, int64_t count);

  /// Inserts frames before `index`.
  Status InsertFrames(int64_t index, std::vector<VideoFrame> frames);

 private:
  explicit RawVideoValue(MediaDataType type) : VideoValue(std::move(type)) {}

  Status ValidateFrame(const VideoFrame& frame) const;

  std::vector<VideoFrame> frames_;
};

}  // namespace avdb

#endif  // AVDB_MEDIA_VIDEO_VALUE_H_

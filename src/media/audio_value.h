#ifndef AVDB_MEDIA_AUDIO_VALUE_H_
#define AVDB_MEDIA_AUDIO_VALUE_H_

#include <memory>
#include <vector>

#include "media/frame.h"
#include "media/media_value.h"

namespace avdb {

/// Abstract audio value — the paper's `AudioValue` (numChannel/depth/
/// numSample). Elements are sample frames (one sample per channel);
/// concrete subclasses fix the representation (raw PCM here, compressed
/// representations in `src/codec/`).
class AudioValue : public MediaValue {
 public:
  int channels() const { return type().channels(); }
  Rational sample_rate() const { return ElementRate(); }
  int64_t SampleCount() const { return ElementCount(); }

  /// Reads `count` sample frames starting at `first` into an AudioBlock.
  /// InvalidArgument when the range is out of bounds.
  virtual Result<AudioBlock> Samples(int64_t first, int64_t count) const = 0;

  /// Stored size in bytes (representation-dependent).
  virtual int64_t StoredBytes() const = 0;

 protected:
  explicit AudioValue(MediaDataType type) : MediaValue(std::move(type)) {}
};

using AudioValuePtr = std::shared_ptr<AudioValue>;

/// Uncompressed 16-bit PCM audio held in memory.
class RawAudioValue final : public AudioValue {
 public:
  /// Empty PCM value; `type` must be raw audio.
  static Result<std::shared_ptr<RawAudioValue>> Create(MediaDataType type);

  /// From an existing block; channel count must match the type.
  static Result<std::shared_ptr<RawAudioValue>> FromBlock(MediaDataType type,
                                                          AudioBlock block);

  int64_t ElementCount() const override { return block_.frame_count(); }
  Result<AudioBlock> Samples(int64_t first, int64_t count) const override;
  int64_t StoredBytes() const override {
    return static_cast<int64_t>(block_.SizeBytes());
  }

  /// Appends sample frames (channel count must match).
  Status Append(const AudioBlock& more);

  const AudioBlock& block() const { return block_; }

 private:
  explicit RawAudioValue(MediaDataType type) : AudioValue(std::move(type)) {}

  AudioBlock block_;
};

}  // namespace avdb

#endif  // AVDB_MEDIA_AUDIO_VALUE_H_

#include "media/media_type.h"

#include "base/logging.h"
#include "base/strings.h"

namespace avdb {

std::string_view MediaKindName(MediaKind kind) {
  switch (kind) {
    case MediaKind::kVideo:
      return "video";
    case MediaKind::kAudio:
      return "audio";
    case MediaKind::kText:
      return "text";
    case MediaKind::kImage:
      return "image";
  }
  return "unknown";
}

std::string_view EncodingFamilyName(EncodingFamily family) {
  switch (family) {
    case EncodingFamily::kRaw:
      return "raw";
    case EncodingFamily::kIntra:
      return "intra";
    case EncodingFamily::kInter:
      return "inter";
    case EncodingFamily::kDelta:
      return "delta";
    case EncodingFamily::kScalable:
      return "scalable";
    case EncodingFamily::kAdpcm:
      return "adpcm";
    case EncodingFamily::kMulaw:
      return "mulaw";
  }
  return "unknown";
}

MediaDataType MediaDataType::RawVideo(int width, int height, int depth_bits,
                                      Rational rate) {
  AVDB_CHECK(depth_bits == 8 || depth_bits == 24)
      << "unsupported video depth " << depth_bits;
  MediaDataType t;
  t.kind_ = MediaKind::kVideo;
  t.family_ = EncodingFamily::kRaw;
  t.width_ = width;
  t.height_ = height;
  t.depth_bits_ = depth_bits;
  t.element_rate_ = rate;
  return t;
}

MediaDataType MediaDataType::CompressedVideo(EncodingFamily family, int width,
                                             int height, int depth_bits,
                                             Rational rate) {
  MediaDataType t = RawVideo(width, height, depth_bits, rate);
  AVDB_CHECK(family != EncodingFamily::kRaw &&
             family != EncodingFamily::kAdpcm &&
             family != EncodingFamily::kMulaw)
      << "not a video encoding family";
  t.family_ = family;
  return t;
}

MediaDataType MediaDataType::RawAudio(int channels, Rational sample_rate) {
  MediaDataType t;
  t.kind_ = MediaKind::kAudio;
  t.family_ = EncodingFamily::kRaw;
  t.channels_ = channels;
  t.depth_bits_ = 16;
  t.element_rate_ = sample_rate;
  return t;
}

MediaDataType MediaDataType::CompressedAudio(EncodingFamily family,
                                             int channels,
                                             Rational sample_rate) {
  MediaDataType t = RawAudio(channels, sample_rate);
  AVDB_CHECK(family == EncodingFamily::kAdpcm ||
             family == EncodingFamily::kMulaw)
      << "not an audio encoding family";
  t.family_ = family;
  return t;
}

MediaDataType MediaDataType::Text(Rational rate) {
  MediaDataType t;
  t.kind_ = MediaKind::kText;
  t.element_rate_ = rate;
  t.depth_bits_ = 0;
  return t;
}

MediaDataType MediaDataType::Image(int width, int height, int depth_bits) {
  MediaDataType t;
  t.kind_ = MediaKind::kImage;
  t.width_ = width;
  t.height_ = height;
  t.depth_bits_ = depth_bits;
  t.element_rate_ = Rational(0);
  return t;
}

int64_t MediaDataType::ElementSizeBytes() const {
  switch (kind_) {
    case MediaKind::kVideo:
    case MediaKind::kImage:
      return static_cast<int64_t>(width_) * height_ * (depth_bits_ / 8);
    case MediaKind::kAudio:
      return static_cast<int64_t>(channels_) * 2;  // 16-bit PCM
    case MediaKind::kText:
      return 32;  // nominal subtitle record
  }
  return 0;
}

double MediaDataType::NominalCompressionRatio() const {
  switch (family_) {
    case EncodingFamily::kRaw:
      return 1.0;
    case EncodingFamily::kIntra:
      return 8.0;   // JPEG-class
    case EncodingFamily::kInter:
      return 25.0;  // MPEG-class
    case EncodingFamily::kDelta:
      return 5.0;   // DVI RTV-class
    case EncodingFamily::kScalable:
      return 6.0;   // full-layer scalable
    case EncodingFamily::kAdpcm:
      return 4.0;
    case EncodingFamily::kMulaw:
      return 2.0;
  }
  return 1.0;
}

double MediaDataType::NominalBytesPerSecond() const {
  const double raw =
      static_cast<double>(ElementSizeBytes()) * element_rate_.ToDouble();
  return raw / NominalCompressionRatio();
}

std::string MediaDataType::ToString() const {
  std::string out(MediaKindName(kind_));
  out += "/";
  out += EncodingFamilyName(family_);
  switch (kind_) {
    case MediaKind::kVideo:
      out += " " + std::to_string(width_) + "x" + std::to_string(height_) +
             "x" + std::to_string(depth_bits_) + "@" +
             FormatDouble(element_rate_.ToDouble(), 2);
      break;
    case MediaKind::kAudio:
      out += " " + std::to_string(channels_) + "ch@" +
             FormatDouble(element_rate_.ToDouble(), 0) + "Hz";
      break;
    case MediaKind::kText:
      out += " @" + FormatDouble(element_rate_.ToDouble(), 2);
      break;
    case MediaKind::kImage:
      out += " " + std::to_string(width_) + "x" + std::to_string(height_) +
             "x" + std::to_string(depth_bits_);
      break;
  }
  return out;
}

bool operator==(const MediaDataType& a, const MediaDataType& b) {
  return a.kind_ == b.kind_ && a.family_ == b.family_ && a.width_ == b.width_ &&
         a.height_ == b.height_ && a.depth_bits_ == b.depth_bits_ &&
         a.channels_ == b.channels_ && a.element_rate_ == b.element_rate_;
}

std::ostream& operator<<(std::ostream& os, const MediaDataType& t) {
  return os << t.ToString();
}

}  // namespace avdb

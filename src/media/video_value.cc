#include "media/video_value.h"

namespace avdb {

Result<std::vector<VideoFrame>> VideoValue::Frames(int64_t first,
                                                   int64_t count) const {
  if (first < 0 || count < 0 || first + count > FrameCount()) {
    return Status::InvalidArgument("frame range out of bounds");
  }
  std::vector<VideoFrame> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    AVDB_ASSIGN_OR_RETURN(VideoFrame frame, Frame(first + i));
    out.push_back(std::move(frame));
  }
  return out;
}

Result<VideoFrame> VideoValue::FrameAt(WorldTime t) const {
  auto o = WorldToObject(t);
  if (!o.ok()) return o.status();
  return Frame(o.value().ticks());
}

Result<std::shared_ptr<RawVideoValue>> RawVideoValue::Create(
    MediaDataType type) {
  if (type.kind() != MediaKind::kVideo) {
    return Status::InvalidArgument("RawVideoValue requires a video type");
  }
  if (type.IsCompressed()) {
    return Status::InvalidArgument("RawVideoValue requires a raw type");
  }
  return std::shared_ptr<RawVideoValue>(new RawVideoValue(std::move(type)));
}

Result<std::shared_ptr<RawVideoValue>> RawVideoValue::FromFrames(
    MediaDataType type, std::vector<VideoFrame> frames) {
  auto value = Create(std::move(type));
  if (!value.ok()) return value.status();
  for (auto& f : frames) {
    AVDB_RETURN_IF_ERROR(value.value()->AppendFrame(std::move(f)));
  }
  return value;
}

Status RawVideoValue::ValidateFrame(const VideoFrame& frame) const {
  if (frame.width() != width() || frame.height() != height() ||
      frame.depth_bits() != depth_bits()) {
    return Status::InvalidArgument(
        "frame geometry does not match video value type");
  }
  return Status::OK();
}

Result<VideoFrame> RawVideoValue::Frame(int64_t index) const {
  if (index < 0 || index >= ElementCount()) {
    return Status::InvalidArgument("frame index out of range");
  }
  return frames_[static_cast<size_t>(index)];
}

int64_t RawVideoValue::StoredBytes() const {
  int64_t total = 0;
  for (const auto& f : frames_) total += static_cast<int64_t>(f.SizeBytes());
  return total;
}

Status RawVideoValue::AppendFrame(VideoFrame frame) {
  AVDB_RETURN_IF_ERROR(ValidateFrame(frame));
  frames_.push_back(std::move(frame));
  return Status::OK();
}

Status RawVideoValue::ReplaceFrame(int64_t index, VideoFrame frame) {
  if (index < 0 || index >= ElementCount()) {
    return Status::InvalidArgument("frame index out of range");
  }
  AVDB_RETURN_IF_ERROR(ValidateFrame(frame));
  frames_[static_cast<size_t>(index)] = std::move(frame);
  return Status::OK();
}

Status RawVideoValue::DeleteFrames(int64_t first, int64_t count) {
  if (first < 0 || count < 0 || first + count > ElementCount()) {
    return Status::InvalidArgument("frame range out of bounds");
  }
  frames_.erase(frames_.begin() + first, frames_.begin() + first + count);
  return Status::OK();
}

Status RawVideoValue::InsertFrames(int64_t index,
                                   std::vector<VideoFrame> frames) {
  if (index < 0 || index > ElementCount()) {
    return Status::InvalidArgument("insert position out of bounds");
  }
  for (const auto& f : frames) AVDB_RETURN_IF_ERROR(ValidateFrame(f));
  frames_.insert(frames_.begin() + index,
                 std::make_move_iterator(frames.begin()),
                 std::make_move_iterator(frames.end()));
  return Status::OK();
}

}  // namespace avdb

#include "media/text_stream_value.h"

namespace avdb {

Result<std::shared_ptr<TextStreamValue>> TextStreamValue::Create(
    MediaDataType type) {
  if (type.kind() != MediaKind::kText) {
    return Status::InvalidArgument("TextStreamValue requires a text type");
  }
  if (!(type.element_rate() > Rational(0))) {
    return Status::InvalidArgument("text stream needs a positive rate");
  }
  return std::shared_ptr<TextStreamValue>(
      new TextStreamValue(std::move(type)));
}

Status TextStreamValue::AppendSpan(int64_t first_element,
                                   int64_t element_count, std::string text) {
  if (first_element < 0 || element_count <= 0) {
    return Status::InvalidArgument("span must have positive extent");
  }
  if (!spans_.empty()) {
    const TextSpan& last = spans_.back();
    if (first_element < last.first_element + last.element_count) {
      return Status::InvalidArgument(
          "spans must be appended in order without overlap");
    }
  }
  spans_.push_back({first_element, element_count, std::move(text)});
  element_count_ =
      std::max(element_count_, first_element + element_count);
  return Status::OK();
}

std::string TextStreamValue::TextAtElement(int64_t element) const {
  for (const auto& s : spans_) {
    if (element >= s.first_element &&
        element < s.first_element + s.element_count) {
      return s.text;
    }
  }
  return "";
}

Result<std::string> TextStreamValue::TextAt(WorldTime t) const {
  auto o = WorldToObject(t);
  if (!o.ok()) return o.status();
  return TextAtElement(o.value().ticks());
}

}  // namespace avdb

#ifndef AVDB_MEDIA_FRAME_H_
#define AVDB_MEDIA_FRAME_H_

#include <cstdint>
#include <vector>

#include "base/result.h"
#include "base/status.h"

namespace avdb {

/// One uncompressed raster frame: `width`×`height` pixels at `depth_bits`
/// bits per pixel. Supported depths are 8 (single 8-bit luma plane) and 24
/// (interleaved RGB). This is the unit that flows through video ports, the
/// paper's "raw" port data type.
class VideoFrame {
 public:
  /// Empty 0x0 frame.
  VideoFrame() = default;
  /// Allocates a zero-filled frame. Depth must be 8 or 24 (checked).
  VideoFrame(int width, int height, int depth_bits);

  int width() const { return width_; }
  int height() const { return height_; }
  int depth_bits() const { return depth_bits_; }
  int bytes_per_pixel() const { return depth_bits_ / 8; }
  int plane_count() const { return bytes_per_pixel(); }
  size_t SizeBytes() const { return data_.size(); }

  const std::vector<uint8_t>& data() const { return data_; }
  std::vector<uint8_t>& data() { return data_; }

  /// Pixel component `c` (0..bytes_per_pixel-1) at (x, y); coordinates are
  /// caller's responsibility in release paths, checked in debug.
  uint8_t At(int x, int y, int c = 0) const {
    return data_[(static_cast<size_t>(y) * width_ + x) * bytes_per_pixel() + c];
  }
  void Set(int x, int y, uint8_t v, int c = 0) {
    data_[(static_cast<size_t>(y) * width_ + x) * bytes_per_pixel() + c] = v;
  }

  /// Copies out component plane `p` as a width×height byte array.
  std::vector<uint8_t> ExtractPlane(int p) const;
  /// Same, but into a caller-provided (possibly pooled) block, which is
  /// resized to width·height — the allocation-free path the codec inner
  /// loops use.
  void ExtractPlaneInto(int p, std::vector<uint8_t>* out) const;
  /// Overwrites component plane `p`; `plane` must have width·height bytes.
  Status SetPlane(int p, const std::vector<uint8_t>& plane);

  /// Mean absolute per-component difference against `other`; used as the
  /// distortion measure in codec tests and the quality bench. Frames must
  /// have equal geometry (InvalidArgument otherwise).
  Result<double> MeanAbsoluteError(const VideoFrame& other) const;

  friend bool operator==(const VideoFrame& a, const VideoFrame& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.depth_bits_ == b.depth_bits_ && a.data_ == b.data_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int depth_bits_ = 8;
  std::vector<uint8_t> data_;
};

/// A block of interleaved 16-bit PCM audio samples: `channels` interleaved
/// streams. `frame_count` is samples per channel. The unit that flows
/// through audio ports.
class AudioBlock {
 public:
  AudioBlock() = default;
  AudioBlock(int channels, int frame_count)
      : channels_(channels),
        samples_(static_cast<size_t>(channels) * frame_count, 0) {}

  int channels() const { return channels_; }
  int frame_count() const {
    return channels_ == 0 ? 0 : static_cast<int>(samples_.size()) / channels_;
  }
  size_t SizeBytes() const { return samples_.size() * sizeof(int16_t); }

  const std::vector<int16_t>& samples() const { return samples_; }
  std::vector<int16_t>& samples() { return samples_; }

  int16_t At(int frame, int channel) const {
    return samples_[static_cast<size_t>(frame) * channels_ + channel];
  }
  void Set(int frame, int channel, int16_t v) {
    samples_[static_cast<size_t>(frame) * channels_ + channel] = v;
  }

  friend bool operator==(const AudioBlock& a, const AudioBlock& b) {
    return a.channels_ == b.channels_ && a.samples_ == b.samples_;
  }

 private:
  int channels_ = 0;
  std::vector<int16_t> samples_;
};

}  // namespace avdb

#endif  // AVDB_MEDIA_FRAME_H_

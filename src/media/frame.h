#ifndef AVDB_MEDIA_FRAME_H_
#define AVDB_MEDIA_FRAME_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "base/result.h"
#include "base/status.h"

namespace avdb {

/// Read-only view of one component plane of a VideoFrame: width×height
/// bytes, contiguous in raster order. A view borrows the frame's storage —
/// it is valid only while the frame outlives it and is not resized.
/// Codecs iterate these directly instead of copying planes out.
class PlaneView {
 public:
  PlaneView() = default;
  PlaneView(const uint8_t* data, int width, int height)
      : data_(data), width_(width), height_(height) {}

  const uint8_t* data() const { return data_; }
  int width() const { return width_; }
  int height() const { return height_; }
  size_t size() const { return static_cast<size_t>(width_) * height_; }
  uint8_t at(int x, int y) const {
    return data_[static_cast<size_t>(y) * width_ + x];
  }
  const uint8_t* row(int y) const {
    return data_ + static_cast<size_t>(y) * width_;
  }

 private:
  const uint8_t* data_ = nullptr;
  int width_ = 0;
  int height_ = 0;
};

/// Mutable counterpart of PlaneView. Aliasing rule: a PlaneSpan must not
/// overlap a PlaneView of the same plane inside one kernel call — the
/// codecs write either a different frame or a different plane than they
/// read.
class PlaneSpan {
 public:
  PlaneSpan() = default;
  PlaneSpan(uint8_t* data, int width, int height)
      : data_(data), width_(width), height_(height) {}

  uint8_t* data() const { return data_; }
  int width() const { return width_; }
  int height() const { return height_; }
  size_t size() const { return static_cast<size_t>(width_) * height_; }
  uint8_t* row(int y) const {
    return data_ + static_cast<size_t>(y) * width_;
  }
  operator PlaneView() const { return PlaneView(data_, width_, height_); }

 private:
  uint8_t* data_ = nullptr;
  int width_ = 0;
  int height_ = 0;
};

/// One uncompressed raster frame: `width`×`height` pixels at `depth_bits`
/// bits per pixel. Supported depths are 8 (single 8-bit luma plane) and 24
/// (RGB). This is the unit that flows through video ports, the paper's
/// "raw" port data type.
///
/// Storage is *planar* (plane-major: all of component 0, then 1, then 2),
/// so each component plane is a contiguous width×height byte run exposed
/// zero-copy through plane()/plane_span(). Backing stores are leased from
/// BufferPool::Shared() and recycled on destruction, so steady-state frame
/// churn performs no heap allocations once the pool is warm.
class VideoFrame {
 public:
  /// Empty 0x0 frame.
  VideoFrame() = default;
  /// Allocates a zero-filled frame. Depth must be 8 or 24 (checked).
  VideoFrame(int width, int height, int depth_bits);
  ~VideoFrame();

  VideoFrame(const VideoFrame& other);
  VideoFrame& operator=(const VideoFrame& other);
  VideoFrame(VideoFrame&& other) noexcept;
  VideoFrame& operator=(VideoFrame&& other) noexcept;

  int width() const { return width_; }
  int height() const { return height_; }
  int depth_bits() const { return depth_bits_; }
  int bytes_per_pixel() const { return depth_bits_ / 8; }
  int plane_count() const { return bytes_per_pixel(); }
  size_t SizeBytes() const { return data_.size(); }
  size_t plane_size() const { return static_cast<size_t>(width_) * height_; }

  const std::vector<uint8_t>& data() const { return data_; }
  std::vector<uint8_t>& data() { return data_; }

  /// Zero-copy view of component plane `p` (0..plane_count-1).
  PlaneView plane(int p) const {
    return PlaneView(data_.data() + plane_size() * p, width_, height_);
  }
  /// Zero-copy mutable span of component plane `p`.
  PlaneSpan plane_span(int p) {
    return PlaneSpan(data_.data() + plane_size() * p, width_, height_);
  }

  /// Pixel component `c` (0..bytes_per_pixel-1) at (x, y); coordinates are
  /// caller's responsibility in release paths, checked in debug.
  uint8_t At(int x, int y, int c = 0) const {
    return data_[plane_size() * c + static_cast<size_t>(y) * width_ + x];
  }
  void Set(int x, int y, uint8_t v, int c = 0) {
    data_[plane_size() * c + static_cast<size_t>(y) * width_ + x] = v;
  }

  /// Copies out component plane `p` as a width×height byte array. Prefer
  /// plane() — these copying accessors remain for tests and cold paths and
  /// are counted (see plane_copies()) so hot paths can prove they avoid
  /// them.
  std::vector<uint8_t> ExtractPlane(int p) const;
  /// Same, but into a caller-provided (possibly pooled) block, which is
  /// resized to width·height.
  void ExtractPlaneInto(int p, std::vector<uint8_t>* out) const;
  /// Overwrites component plane `p`; `plane` must have width·height bytes.
  Status SetPlane(int p, const std::vector<uint8_t>& plane);

  /// Process-wide count of plane copies (ExtractPlane/ExtractPlaneInto/
  /// SetPlane calls). Regression tests pin hot-path counts to zero.
  static int64_t plane_copies();

  /// Mean absolute per-component difference against `other`; used as the
  /// distortion measure in codec tests and the quality bench. Frames must
  /// have equal geometry (InvalidArgument otherwise).
  Result<double> MeanAbsoluteError(const VideoFrame& other) const;

  friend bool operator==(const VideoFrame& a, const VideoFrame& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.depth_bits_ == b.depth_bits_ && a.data_ == b.data_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int depth_bits_ = 8;
  std::vector<uint8_t> data_;  // plane-major, leased from BufferPool
};

/// A block of interleaved 16-bit PCM audio samples: `channels` interleaved
/// streams. `frame_count` is samples per channel. The unit that flows
/// through audio ports. Backing stores are pooled like VideoFrame's.
class AudioBlock {
 public:
  AudioBlock() = default;
  AudioBlock(int channels, int frame_count);
  ~AudioBlock();

  AudioBlock(const AudioBlock& other);
  AudioBlock& operator=(const AudioBlock& other);
  AudioBlock(AudioBlock&& other) noexcept;
  AudioBlock& operator=(AudioBlock&& other) noexcept;

  int channels() const { return channels_; }
  int frame_count() const {
    return channels_ == 0 ? 0 : static_cast<int>(samples_.size()) / channels_;
  }
  size_t SizeBytes() const { return samples_.size() * sizeof(int16_t); }

  const std::vector<int16_t>& samples() const { return samples_; }
  std::vector<int16_t>& samples() { return samples_; }

  int16_t At(int frame, int channel) const {
    return samples_[static_cast<size_t>(frame) * channels_ + channel];
  }
  void Set(int frame, int channel, int16_t v) {
    samples_[static_cast<size_t>(frame) * channels_ + channel] = v;
  }

  friend bool operator==(const AudioBlock& a, const AudioBlock& b) {
    return a.channels_ == b.channels_ && a.samples_ == b.samples_;
  }

 private:
  int channels_ = 0;
  std::vector<int16_t> samples_;  // leased from BufferPool
};

}  // namespace avdb

#endif  // AVDB_MEDIA_FRAME_H_

#include "media/media_value.h"

#include "base/logging.h"

namespace avdb {

WorldTime MediaValue::duration() const {
  const Rational scale = transform_.scale().Abs();
  AVDB_CHECK(!scale.IsZero()) << "media value with zero time scale";
  return WorldTime(NaturalDuration().seconds() / scale);
}

void MediaValue::Scale(Rational factor) {
  AVDB_CHECK(!factor.IsZero()) << "MediaValue::Scale(0)";
  transform_ = transform_.Scaled(factor);
}

void MediaValue::Translate(WorldTime offset) {
  transform_ = transform_.Translated(offset);
}

Result<ObjectTime> MediaValue::WorldToObject(WorldTime t) const {
  const int64_t count = ElementCount();
  if (count == 0) return Status::InvalidArgument("empty media value");
  if (!Extent().Contains(t)) {
    return Status::InvalidArgument("instant " + t.ToString() +
                                   " outside value extent " +
                                   Extent().ToString());
  }
  ObjectTime o = transform_.WorldToObject(t, ElementRate());
  // Rounding at the right edge can land one past the final element.
  if (o.ticks() < 0) o = ObjectTime(0);
  if (o.ticks() >= count) o = ObjectTime(count - 1);
  return o;
}

Result<WorldTime> MediaValue::ObjectToWorld(ObjectTime o) const {
  if (o.ticks() < 0 || o.ticks() >= ElementCount()) {
    return Status::InvalidArgument("element index out of range");
  }
  return transform_.ObjectToWorld(o, ElementRate());
}

std::string MediaValue::Describe() const {
  return type_.ToString() + ", " + std::to_string(ElementCount()) +
         " elements";
}

}  // namespace avdb

#ifndef AVDB_MEDIA_MEDIA_OPS_H_
#define AVDB_MEDIA_MEDIA_OPS_H_

#include <memory>

#include "base/result.h"
#include "media/audio_value.h"
#include "media/video_value.h"

namespace avdb {

/// §4.2's *passive-state* operations: "it should be possible to take a
/// Newscast object and modify the value of its videoTrack attribute;
/// perhaps changing particular frames or perhaps adding or deleting
/// frames. These operations have no timing constraints."
///
/// These are the non-linear editing primitives the corporate scenario
/// (§3.2) needs: cutting, splicing and dissolving stored values without
/// streaming them. All functions produce new raw values; inputs may be any
/// representation (frames are decoded as needed).
namespace media_ops {

/// Frames [first, first+count) of `video` as a new value.
/// InvalidArgument when the range is out of bounds.
Result<std::shared_ptr<RawVideoValue>> ExtractSegment(const VideoValue& video,
                                                      int64_t first,
                                                      int64_t count);

/// `a` followed by `b`. Both must share geometry and rate.
Result<std::shared_ptr<RawVideoValue>> Concatenate(const VideoValue& a,
                                                   const VideoValue& b);

/// `a` followed by `b`, with the last `overlap` frames of `a` cross-faded
/// into the first `overlap` frames of `b` (a linear dissolve — the classic
/// editing transition). `overlap` must fit in both inputs.
Result<std::shared_ptr<RawVideoValue>> Dissolve(const VideoValue& a,
                                                const VideoValue& b,
                                                int64_t overlap);

/// Frames of `clip` spliced into `base` before frame `at`.
Result<std::shared_ptr<RawVideoValue>> InsertClip(const VideoValue& base,
                                                  const VideoValue& clip,
                                                  int64_t at);

/// Sample frames [first, first+count) of `audio` as a new value.
Result<std::shared_ptr<RawAudioValue>> ExtractAudio(const AudioValue& audio,
                                                    int64_t first,
                                                    int64_t count);

/// `a` followed by `b`; channel counts and rates must match.
Result<std::shared_ptr<RawAudioValue>> ConcatenateAudio(const AudioValue& a,
                                                        const AudioValue& b);

/// Sample-wise mix of two equal-format values, `gain_a`/`gain_b` in [0,1];
/// output length is the longer input (the shorter is zero-padded). Samples
/// saturate rather than wrap.
Result<std::shared_ptr<RawAudioValue>> MixAudio(const AudioValue& a,
                                                const AudioValue& b,
                                                double gain_a = 0.5,
                                                double gain_b = 0.5);

}  // namespace media_ops
}  // namespace avdb

#endif  // AVDB_MEDIA_MEDIA_OPS_H_

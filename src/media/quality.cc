#include "media/quality.h"

#include "base/strings.h"

namespace avdb {

Result<VideoQuality> VideoQuality::Parse(std::string_view text) {
  // Grammar: INT 'x' INT 'x' INT '@' NUMBER, whitespace tolerated.
  const std::string cleaned = [&] {
    std::string s;
    for (char c : text) {
      if (!std::isspace(static_cast<unsigned char>(c))) s += c;
    }
    return s;
  }();
  const size_t at = cleaned.find('@');
  if (at == std::string::npos) {
    return Status::InvalidArgument("video quality missing '@rate': " +
                                   std::string(text));
  }
  const auto dims = StrSplit(cleaned.substr(0, at), 'x');
  if (dims.size() != 3) {
    return Status::InvalidArgument("video quality needs WxHxD: " +
                                   std::string(text));
  }
  int64_t vals[3];
  for (int i = 0; i < 3; ++i) {
    auto v = ParseInt64(dims[i]);
    if (!v.ok()) return v.status();
    if (v.value() <= 0) {
      return Status::InvalidArgument("video quality dimension must be > 0");
    }
    vals[i] = v.value();
  }
  if (vals[2] != 8 && vals[2] != 24) {
    return Status::InvalidArgument("video quality depth must be 8 or 24");
  }
  auto rate = ParseDouble(cleaned.substr(at + 1));
  if (!rate.ok()) return rate.status();
  if (rate.value() <= 0) {
    return Status::InvalidArgument("video quality rate must be > 0");
  }
  // Keep common NTSC rates exact.
  Rational r;
  const double rv = rate.value();
  if (rv == 29.97) {
    r = Rational(30000, 1001);
  } else if (rv == static_cast<int64_t>(rv)) {
    r = Rational(static_cast<int64_t>(rv));
  } else {
    r = Rational(static_cast<int64_t>(rv * 1000 + 0.5), 1000);
  }
  return VideoQuality(static_cast<int>(vals[0]), static_cast<int>(vals[1]),
                      static_cast<int>(vals[2]), r);
}

bool VideoQuality::SatisfiableBy(const MediaDataType& t) const {
  if (t.kind() != MediaKind::kVideo) return false;
  return t.width() >= width_ && t.height() >= height_ &&
         t.depth_bits() >= depth_bits_ && t.element_rate() >= rate_;
}

bool VideoQuality::WeakerOrEqual(const VideoQuality& other) const {
  return width_ <= other.width_ && height_ <= other.height_ &&
         depth_bits_ <= other.depth_bits_ && rate_ <= other.rate_;
}

std::string VideoQuality::ToString() const {
  return std::to_string(width_) + "x" + std::to_string(height_) + "x" +
         std::to_string(depth_bits_) + "@" +
         FormatDouble(rate_.ToDouble(), 2);
}

std::ostream& operator<<(std::ostream& os, const VideoQuality& q) {
  return os << q.ToString();
}

std::string_view AudioQualityName(AudioQuality q) {
  switch (q) {
    case AudioQuality::kVoice:
      return "voice";
    case AudioQuality::kFm:
      return "FM";
    case AudioQuality::kCd:
      return "CD";
  }
  return "unknown";
}

Result<AudioQuality> ParseAudioQuality(std::string_view text) {
  std::string s = AsciiToLower(StripWhitespace(text));
  if (EndsWith(s, "-quality")) s = s.substr(0, s.size() - 8);
  if (s == "voice") return AudioQuality::kVoice;
  if (s == "fm") return AudioQuality::kFm;
  if (s == "cd") return AudioQuality::kCd;
  return Status::InvalidArgument("unknown audio quality: " + std::string(text));
}

int AudioQualityChannels(AudioQuality q) {
  return q == AudioQuality::kVoice ? 1 : 2;
}

Rational AudioQualitySampleRate(AudioQuality q) {
  switch (q) {
    case AudioQuality::kVoice:
      return Rational(8000);
    case AudioQuality::kFm:
      return Rational(22050);
    case AudioQuality::kCd:
      return Rational(44100);
  }
  return Rational(8000);
}

bool AudioQualitySatisfiableBy(AudioQuality q, const MediaDataType& t) {
  if (t.kind() != MediaKind::kAudio) return false;
  return t.channels() >= AudioQualityChannels(q) &&
         t.element_rate() >= AudioQualitySampleRate(q);
}

double AudioQualityBytesPerSecond(AudioQuality q) {
  return AudioQualityChannels(q) * 2.0 * AudioQualitySampleRate(q).ToDouble();
}

}  // namespace avdb

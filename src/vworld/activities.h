#ifndef AVDB_VWORLD_ACTIVITIES_H_
#define AVDB_VWORLD_ACTIVITIES_H_

#include <memory>
#include <vector>

#include "activity/cost_model.h"
#include "activity/media_activity.h"
#include "sched/service_queue.h"
#include "vworld/raycaster.h"
#include "vworld/scene.h"

namespace avdb {

/// Fig. 4's `move` activity: the user-driven navigation source. Emits the
/// camera pose (serialized through a text-typed port "pose_out") at a fixed
/// rate, interpolating along a scripted waypoint path — our deterministic
/// stand-in for interactive input (DESIGN.md §5).
class MoveSource : public MediaActivity {
 public:
  static constexpr const char* kPortOut = "pose_out";

  /// Walks `waypoints` (at least 2) over `duration`, emitting poses at
  /// `rate` per second.
  static std::shared_ptr<MoveSource> Create(const std::string& name,
                                            ActivityLocation location,
                                            ActivityEnv env,
                                            std::vector<Pose> waypoints,
                                            WorldTime duration,
                                            Rational rate);

 protected:
  Status OnStart() override;

 private:
  MoveSource(const std::string& name, ActivityLocation location,
             ActivityEnv env, std::vector<Pose> waypoints, WorldTime duration,
             Rational rate);

  void Tick(int64_t index, int64_t stream_start_ns, int64_t gen);
  Pose PoseAt(double fraction) const;

  Port* out_;
  std::vector<Pose> waypoints_;
  WorldTime duration_;
  Rational rate_;
};

/// Fig. 4's `render` activity: "processes two streams — one coming from
/// the user driven activity, move, the other from a video source — and
/// generates a stream of raster images." A transformer with ports
/// "pose_in" (text), "video_in" (raw video) and "video_out" (raw video at
/// the renderer's geometry). Emits one rendered frame per incoming video
/// frame using the latest pose; rendering pays modeled time scaled by the
/// host's CostModel — which is precisely what differs between the
/// database-side and client-side placements of Fig. 4.
class RenderActivity : public MediaActivity {
 public:
  static constexpr const char* kPortPose = "pose_in";
  static constexpr const char* kPortVideo = "video_in";
  static constexpr const char* kPortOut = "video_out";

  /// `video_type` is the incoming wall-video type; output geometry comes
  /// from `options`.
  static std::shared_ptr<RenderActivity> Create(
      const std::string& name, ActivityLocation location, ActivityEnv env,
      const Scene* scene, Raycaster::Options options,
      MediaDataType video_type, CostModel costs = {});

  void OnElement(Port* in, const StreamElement& element) override;

  int64_t frames_rendered() const { return frames_rendered_; }
  const Pose& current_pose() const { return pose_; }

 private:
  RenderActivity(const std::string& name, ActivityLocation location,
                 ActivityEnv env, const Scene* scene,
                 Raycaster::Options options, MediaDataType video_type,
                 CostModel costs);

  Port* pose_in_;
  Port* video_in_;
  Port* out_;
  Raycaster raycaster_;
  CostModel costs_;
  ServiceQueue render_unit_;
  Pose pose_;
  std::shared_ptr<const VideoFrame> current_video_;
  int64_t frames_rendered_ = 0;
};

}  // namespace avdb

#endif  // AVDB_VWORLD_ACTIVITIES_H_

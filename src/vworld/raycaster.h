#ifndef AVDB_VWORLD_RAYCASTER_H_
#define AVDB_VWORLD_RAYCASTER_H_

#include "media/frame.h"
#include "vworld/scene.h"

namespace avdb {

/// Software renderer for the virtual-world scenario: grid raycasting (DDA)
/// with distance shading, procedural wall texture, and video projection —
/// video-wall columns sample the current video frame, which is how "video
/// imagery stored in the database is incorporated in the scene" (§4.3).
/// Deterministic, pure function of (scene, pose, video frame).
class Raycaster {
 public:
  struct Options {
    int width = 160;
    int height = 120;
    double fov = 1.15;           ///< horizontal field of view, radians
    double max_distance = 32.0;  ///< ray cutoff
  };

  Raycaster(const Scene* scene, Options options)
      : scene_(scene), options_(options) {}

  const Options& options() const { return options_; }

  /// Renders one 8-bit luma frame from `pose`. `video_frame` (may be null)
  /// textures video walls; its geometry is arbitrary (sampled
  /// proportionally).
  VideoFrame Render(const Pose& pose, const VideoFrame* video_frame) const;

 private:
  struct Hit {
    double distance = 0;
    CellKind kind = CellKind::kEmpty;
    double texture_u = 0;  ///< horizontal texture coordinate in [0,1)
    bool side = false;     ///< true when the ray hit a y-axis face
  };

  Hit CastRay(const Pose& pose, double ray_angle) const;

  const Scene* scene_;
  Options options_;
};

}  // namespace avdb

#endif  // AVDB_VWORLD_RAYCASTER_H_

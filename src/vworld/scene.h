#ifndef AVDB_VWORLD_SCENE_H_
#define AVDB_VWORLD_SCENE_H_

#include <string>
#include <vector>

#include "base/result.h"

namespace avdb {

/// Camera pose in the virtual world: position on the 2D plan plus heading.
struct Pose {
  double x = 0;
  double y = 0;
  double angle = 0;  ///< radians, 0 = +x axis

  /// Serialized as "x y angle" for transport through text-typed ports.
  std::string Serialize() const;
  static Result<Pose> Parse(const std::string& text);
};

/// Cell contents of the world grid.
enum class CellKind : uint8_t {
  kEmpty = 0,
  kWall,        ///< solid wall, procedurally shaded
  kVideoWall,   ///< wall whose surface shows the current video frame —
                ///< §3.2: "the video material could be projected on a wall
                ///< in the virtual world"
};

/// The virtual world of Scenario II: a grid-map 2.5D scene (the classic
/// early-90s representation) in which some wall faces are video surfaces.
/// Stand-in for the paper's "3D scenes / surface scan data" contents
/// (DESIGN.md §5) — what matters to the experiment is that rendering
/// consumes a pose stream and a video stream and produces a raster stream.
class Scene {
 public:
  /// Builds an empty (all-walls-border) world of the given grid size.
  Scene(int width, int height);

  /// The demo museum room used by examples and benches: a rectangular
  /// gallery with pillars and one video wall.
  static Scene MuseumRoom();

  int width() const { return width_; }
  int height() const { return height_; }

  CellKind At(int x, int y) const;
  Status Set(int x, int y, CellKind kind);

  /// True when (x, y) in continuous coordinates lies in a solid cell.
  bool IsSolid(double x, double y) const;

  /// A default camera start inside the room.
  Pose DefaultPose() const;

 private:
  /// Set() for construction-time layout with coordinates known in bounds;
  /// aborts on failure instead of returning it.
  void MustSet(int x, int y, CellKind kind);

  int width_;
  int height_;
  std::vector<CellKind> cells_;
};

}  // namespace avdb

#endif  // AVDB_VWORLD_SCENE_H_

#include "vworld/scene.h"

#include <cmath>
#include <cstdio>

#include "base/logging.h"
#include "base/strings.h"

namespace avdb {

std::string Pose::Serialize() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.12g %.12g %.12g", x, y, angle);
  return buf;
}

Result<Pose> Pose::Parse(const std::string& text) {
  const auto parts = StrSplit(text, ' ');
  if (parts.size() != 3) {
    return Status::InvalidArgument("pose needs 'x y angle': " + text);
  }
  Pose pose;
  auto x = ParseDouble(parts[0]);
  if (!x.ok()) return x.status();
  auto y = ParseDouble(parts[1]);
  if (!y.ok()) return y.status();
  auto angle = ParseDouble(parts[2]);
  if (!angle.ok()) return angle.status();
  pose.x = x.value();
  pose.y = y.value();
  pose.angle = angle.value();
  return pose;
}

Scene::Scene(int width, int height)
    : width_(width), height_(height),
      cells_(static_cast<size_t>(width) * height, CellKind::kEmpty) {
  for (int x = 0; x < width_; ++x) {
    MustSet(x, 0, CellKind::kWall);
    MustSet(x, height_ - 1, CellKind::kWall);
  }
  for (int y = 0; y < height_; ++y) {
    MustSet(0, y, CellKind::kWall);
    MustSet(width_ - 1, y, CellKind::kWall);
  }
}

void Scene::MustSet(int x, int y, CellKind kind) {
  const Status status = Set(x, y, kind);
  AVDB_CHECK(status.ok()) << "layout cell out of bounds: " << x << "," << y;
}

Scene Scene::MuseumRoom() {
  Scene scene(16, 12);
  // Two pillars.
  scene.MustSet(5, 4, CellKind::kWall);
  scene.MustSet(5, 7, CellKind::kWall);
  scene.MustSet(10, 4, CellKind::kWall);
  scene.MustSet(10, 7, CellKind::kWall);
  // The video wall along the east side.
  for (int y = 3; y <= 8; ++y) {
    scene.MustSet(15, y, CellKind::kVideoWall);
  }
  return scene;
}

CellKind Scene::At(int x, int y) const {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return CellKind::kWall;
  return cells_[static_cast<size_t>(y) * width_ + x];
}

Status Scene::Set(int x, int y, CellKind kind) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    return Status::InvalidArgument("cell out of bounds");
  }
  cells_[static_cast<size_t>(y) * width_ + x] = kind;
  return Status::OK();
}

bool Scene::IsSolid(double x, double y) const {
  return At(static_cast<int>(std::floor(x)), static_cast<int>(std::floor(y))) !=
         CellKind::kEmpty;
}

Pose Scene::DefaultPose() const {
  Pose pose;
  pose.x = 2.5;
  pose.y = height_ / 2.0;
  pose.angle = 0.0;
  return pose;
}

}  // namespace avdb

#include "vworld/raycaster.h"

#include <cmath>

namespace avdb {

Raycaster::Hit Raycaster::CastRay(const Pose& pose, double ray_angle) const {
  // Standard DDA grid traversal.
  const double dx = std::cos(ray_angle);
  const double dy = std::sin(ray_angle);
  int map_x = static_cast<int>(std::floor(pose.x));
  int map_y = static_cast<int>(std::floor(pose.y));
  const double delta_x = dx == 0 ? 1e30 : std::abs(1.0 / dx);
  const double delta_y = dy == 0 ? 1e30 : std::abs(1.0 / dy);
  int step_x;
  int step_y;
  double side_x;
  double side_y;
  if (dx < 0) {
    step_x = -1;
    side_x = (pose.x - map_x) * delta_x;
  } else {
    step_x = 1;
    side_x = (map_x + 1.0 - pose.x) * delta_x;
  }
  if (dy < 0) {
    step_y = -1;
    side_y = (pose.y - map_y) * delta_y;
  } else {
    step_y = 1;
    side_y = (map_y + 1.0 - pose.y) * delta_y;
  }

  Hit hit;
  bool side = false;
  for (int iter = 0; iter < 1024; ++iter) {
    if (side_x < side_y) {
      side_x += delta_x;
      map_x += step_x;
      side = false;
    } else {
      side_y += delta_y;
      map_y += step_y;
      side = true;
    }
    const CellKind kind = scene_->At(map_x, map_y);
    if (kind != CellKind::kEmpty) {
      const double distance =
          side ? side_y - delta_y : side_x - delta_x;
      hit.distance = distance < 1e-6 ? 1e-6 : distance;
      hit.kind = kind;
      hit.side = side;
      const double hit_coord = side ? pose.x + hit.distance * dx
                                    : pose.y + hit.distance * dy;
      hit.texture_u = hit_coord - std::floor(hit_coord);
      return hit;
    }
    if ((side ? side_y : side_x) > options_.max_distance) break;
  }
  hit.distance = options_.max_distance;
  hit.kind = CellKind::kEmpty;
  return hit;
}

VideoFrame Raycaster::Render(const Pose& pose,
                             const VideoFrame* video_frame) const {
  VideoFrame frame(options_.width, options_.height, 8);
  const int w = options_.width;
  const int h = options_.height;
  for (int col = 0; col < w; ++col) {
    const double ray_angle =
        pose.angle + options_.fov * (static_cast<double>(col) / w - 0.5);
    const Hit hit = CastRay(pose, ray_angle);
    // Correct fish-eye: project distance onto the view axis.
    const double corrected =
        hit.distance * std::cos(ray_angle - pose.angle);
    const int wall_height =
        hit.kind == CellKind::kEmpty
            ? 0
            : static_cast<int>(h / (corrected < 0.1 ? 0.1 : corrected));
    const int top = std::max(0, (h - wall_height) / 2);
    const int bottom = std::min(h, (h + wall_height) / 2);

    for (int y = 0; y < h; ++y) {
      uint8_t shade;
      if (y < top) {
        shade = 40;  // ceiling
      } else if (y >= bottom) {
        shade = 70;  // floor
      } else {
        const double v =
            wall_height == 0
                ? 0
                : static_cast<double>(y - (h - wall_height) / 2) / wall_height;
        if (hit.kind == CellKind::kVideoWall && video_frame != nullptr &&
            video_frame->width() > 0) {
          // Project the current video frame onto the wall face.
          int sx = static_cast<int>(hit.texture_u * video_frame->width());
          int sy = static_cast<int>(v * video_frame->height());
          if (sx >= video_frame->width()) sx = video_frame->width() - 1;
          if (sy >= video_frame->height()) sy = video_frame->height() - 1;
          if (sx < 0) sx = 0;
          if (sy < 0) sy = 0;
          shade = video_frame->At(sx, sy, 0);
        } else {
          // Procedural brick-ish texture.
          const int tex =
              (static_cast<int>(hit.texture_u * 16) % 2 == 0) ? 180 : 140;
          shade = static_cast<uint8_t>(tex - (static_cast<int>(v * 8) % 2) * 20);
        }
        // Distance shading; y-faces slightly darker for depth cue.
        double attenuation = 1.0 / (1.0 + corrected * 0.15);
        if (hit.side) attenuation *= 0.8;
        shade = static_cast<uint8_t>(shade * attenuation);
      }
      frame.Set(col, y, shade);
    }
  }
  return frame;
}

}  // namespace avdb

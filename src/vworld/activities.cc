#include "vworld/activities.h"

#include <cmath>

#include "base/logging.h"

namespace avdb {

// --------------------------------------------------------------- MoveSource --

MoveSource::MoveSource(const std::string& name, ActivityLocation location,
                       ActivityEnv env, std::vector<Pose> waypoints,
                       WorldTime duration, Rational rate)
    : MediaActivity(name, location, env),
      waypoints_(std::move(waypoints)),
      duration_(duration),
      rate_(rate) {
  out_ = DeclarePort(kPortOut, PortDirection::kOut, MediaDataType::Text(rate));
}

std::shared_ptr<MoveSource> MoveSource::Create(const std::string& name,
                                               ActivityLocation location,
                                               ActivityEnv env,
                                               std::vector<Pose> waypoints,
                                               WorldTime duration,
                                               Rational rate) {
  AVDB_CHECK(waypoints.size() >= 2) << "path needs at least two waypoints";
  AVDB_CHECK(rate > Rational(0)) << "pose rate must be positive";
  return std::shared_ptr<MoveSource>(new MoveSource(
      name, location, env, std::move(waypoints), duration, rate));
}

Pose MoveSource::PoseAt(double fraction) const {
  if (fraction <= 0) return waypoints_.front();
  if (fraction >= 1) return waypoints_.back();
  const double scaled = fraction * (waypoints_.size() - 1);
  const size_t segment = static_cast<size_t>(scaled);
  const double t = scaled - segment;
  const Pose& a = waypoints_[segment];
  const Pose& b = waypoints_[segment + 1];
  Pose pose;
  pose.x = a.x + (b.x - a.x) * t;
  pose.y = a.y + (b.y - a.y) * t;
  // Shortest angular interpolation.
  double da = b.angle - a.angle;
  while (da > M_PI) da -= 2 * M_PI;
  while (da < -M_PI) da += 2 * M_PI;
  pose.angle = a.angle + da * t;
  return pose;
}

Status MoveSource::OnStart() {
  const int64_t start_ns = engine()->now_ns();
  const int64_t gen = generation();
  ScheduleOwned(start_ns,
                       [this, start_ns, gen] { Tick(0, start_ns, gen); });
  return Status::OK();
}

void MoveSource::Tick(int64_t index, int64_t stream_start_ns, int64_t gen) {
  if (state() != State::kRunning || gen != generation()) return;
  const int64_t period_ns = (Rational(1000000000) / rate_).Rounded();
  const int64_t ideal = stream_start_ns + index * period_ns;
  const int64_t total_ns = VirtualClock::ToNs(duration_);
  if (index * period_ns > total_ns) {
    Emit(out_, StreamElement::EndOfStream(index, ideal));
    SelfStop();
    return;
  }
  const double fraction =
      total_ns == 0 ? 1.0
                    : static_cast<double>(index * period_ns) / total_ns;
  StreamElement element;
  element.index = index;
  element.ideal_time_ns = ideal;
  element.text =
      std::make_shared<const std::string>(PoseAt(fraction).Serialize());
  element.size_bytes = static_cast<int64_t>(element.text->size());
  Emit(out_, std::move(element));
  ScheduleOwned(ideal + period_ns,
                       [this, next = index + 1, stream_start_ns, gen] {
                         Tick(next, stream_start_ns, gen);
                       });
}

// ----------------------------------------------------------- RenderActivity --

RenderActivity::RenderActivity(const std::string& name,
                               ActivityLocation location, ActivityEnv env,
                               const Scene* scene, Raycaster::Options options,
                               MediaDataType video_type, CostModel costs)
    : MediaActivity(name, location, env),
      raycaster_(scene, options),
      costs_(costs),
      render_unit_(name + ".unit"),
      pose_(scene->DefaultPose()) {
  pose_in_ = DeclarePort(kPortPose, PortDirection::kIn,
                         MediaDataType::Text(Rational(30)));
  video_in_ = DeclarePort(kPortVideo, PortDirection::kIn, video_type);
  out_ = DeclarePort(kPortOut, PortDirection::kOut,
                     MediaDataType::RawVideo(options.width, options.height, 8,
                                             video_type.element_rate()));
}

std::shared_ptr<RenderActivity> RenderActivity::Create(
    const std::string& name, ActivityLocation location, ActivityEnv env,
    const Scene* scene, Raycaster::Options options, MediaDataType video_type,
    CostModel costs) {
  AVDB_CHECK(scene != nullptr) << "render needs a scene";
  return std::shared_ptr<RenderActivity>(new RenderActivity(
      name, location, env, scene, options, std::move(video_type), costs));
}

void RenderActivity::OnElement(Port* in, const StreamElement& element) {
  if (in == pose_in_) {
    if (element.end_of_stream || element.text == nullptr) return;
    auto pose = Pose::Parse(*element.text);
    if (pose.ok()) {
      pose_ = pose.value();
    } else {
      AVDB_LOG(Warning) << name() << ": bad pose: " << pose.status();
    }
    return;
  }
  AVDB_DCHECK(in == video_in_);
  if (element.end_of_stream) {
    Emit(out_, element);
    SelfStop();
    return;
  }
  if (element.frame == nullptr) {
    AVDB_LOG(Error) << name() << ": video element without frame";
    return;
  }
  current_video_ = element.frame;
  VideoFrame rendered = raycaster_.Render(pose_, current_video_.get());
  const int64_t pixels = static_cast<int64_t>(raycaster_.options().width) *
                         raycaster_.options().height;
  const int64_t ready_ns =
      render_unit_.Submit(engine()->now_ns(), costs_.RenderNs(pixels));
  StreamElement out_element;
  out_element.index = element.index;
  out_element.ideal_time_ns = element.ideal_time_ns;
  out_element.frame =
      std::make_shared<const VideoFrame>(std::move(rendered));
  out_element.size_bytes =
      static_cast<int64_t>(out_element.frame->SizeBytes());
  ++frames_rendered_;
  ScheduleOwned(ready_ns,
                       [this, out_element = std::move(out_element)] {
                         if (state() != State::kRunning) return;
                         Emit(out_, out_element);
                       });
}

}  // namespace avdb

#ifndef AVDB_OBS_TRACE_H_
#define AVDB_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/mutex.h"

namespace avdb {
namespace obs {

/// One structured trace record in virtual time. Spans arrive as a
/// 'B'(egin)/'E'(nd) pair sharing a span id; instants are phase 'I'.
struct TraceEvent {
  int64_t seq = 0;       ///< monotone, never reused (survives ring eviction)
  int64_t t_ns = 0;      ///< virtual time
  char phase = 'I';      ///< 'B' | 'E' | 'I'
  int64_t span_id = 0;   ///< nonzero for 'B'/'E'; pairs the two halves
  std::string category;  ///< emitting layer: "activity", "sched", ...
  std::string name;      ///< verb: "bind", "admit", "journal_commit", ...
  std::string actor;     ///< activity/stream/pool/device the event is about
  std::string detail;    ///< free-form context, may be empty
};

/// Bounded virtual-time trace recorder. Every layer appends lifecycle
/// spans (bind → cue → start → stop), retries, degradation-ladder
/// transitions, journal commits, admission decisions... into one ring
/// buffer; `DumpJson()` is the machine-readable timeline the figure
/// benches emit. When the ring is full the oldest events are evicted and
/// counted in `dropped`, so a runaway stream cannot grow memory.
///
/// Timestamps are explicit (`*At` overloads) or read from the clock
/// function installed with SetClock — typically the event engine's
/// virtual now_ns. No wall clock anywhere.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit Tracer(size_t capacity = kDefaultCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Installs the virtual-time source used by the clockless overloads.
  /// Without one they stamp t=0.
  void SetClock(std::function<int64_t()> now_fn);

  /// Per-element delivery events are high-volume; they are only recorded
  /// when explicitly enabled so lifecycle spans survive in the ring.
  void set_capture_deliveries(bool on);
  bool capture_deliveries() const;

  // --- recording -----------------------------------------------------------

  /// Opens a span; returns its id for EndSpan. Id 0 is never issued.
  int64_t BeginSpan(const std::string& category, const std::string& name,
                    const std::string& actor, const std::string& detail = "");
  int64_t BeginSpanAt(int64_t t_ns, const std::string& category,
                      const std::string& name, const std::string& actor,
                      const std::string& detail = "");
  /// Closes a span by id; unknown/already-closed ids are ignored (the
  /// begin half may have been evicted — closing must stay safe).
  void EndSpan(int64_t span_id, const std::string& detail = "");
  void EndSpanAt(int64_t span_id, int64_t t_ns,
                 const std::string& detail = "");

  /// Records an instant event.
  void Event(const std::string& category, const std::string& name,
             const std::string& actor, const std::string& detail = "");
  void EventAt(int64_t t_ns, const std::string& category,
               const std::string& name, const std::string& actor,
               const std::string& detail = "");

  // --- inspection ----------------------------------------------------------

  struct Stats {
    int64_t recorded = 0;  ///< events ever appended
    int64_t dropped = 0;   ///< events evicted by ring wraparound
  };
  Stats stats() const;
  size_t capacity() const { return capacity_; }

  /// Events currently held, oldest first.
  std::vector<TraceEvent> Events() const;

  /// The timeline as one JSON object, oldest event first — byte-stable for
  /// a fixed virtual-time schedule:
  ///   {"capacity":N,"recorded":R,"dropped":D,"events":[{...},...]}
  std::string DumpJson() const;

 private:
  void Append(TraceEvent event, int64_t t_ns) AVDB_REQUIRES(mu_);
  void EndSpanAtLocked(int64_t span_id, int64_t t_ns,
                       const std::string& detail) AVDB_REQUIRES(mu_);
  /// Samples the installed clock. The callback is copied out under a
  /// short-lived lock and invoked with mu_ released: the clock is caller
  /// code (typically the event engine) and may itself call back into the
  /// tracer, so running it under mu_ would self-deadlock.
  int64_t Now() const AVDB_EXCLUDES(mu_);

  const size_t capacity_;
  mutable Mutex mu_;
  std::function<int64_t()> now_fn_ AVDB_GUARDED_BY(mu_);
  bool capture_deliveries_ AVDB_GUARDED_BY(mu_) = false;
  std::vector<TraceEvent> ring_ AVDB_GUARDED_BY(mu_);
  size_t head_ AVDB_GUARDED_BY(mu_) = 0;  ///< next write slot once full
  int64_t next_seq_ AVDB_GUARDED_BY(mu_) = 0;
  int64_t next_span_id_ AVDB_GUARDED_BY(mu_) = 1;
  /// Open spans: id -> (category, name, actor) so EndSpan can emit a
  /// self-describing 'E' record.
  std::map<int64_t, std::array<std::string, 3>> open_spans_
      AVDB_GUARDED_BY(mu_);
  Stats stats_ AVDB_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace avdb

#endif  // AVDB_OBS_TRACE_H_

#include "obs/trace.h"

#include <utility>

#include "obs/metrics.h"

namespace avdb {
namespace obs {

Tracer::Tracer(size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {
  MutexLock lock(mu_);
  ring_.reserve(capacity_);
}

void Tracer::SetClock(std::function<int64_t()> now_fn) {
  MutexLock lock(mu_);
  now_fn_ = std::move(now_fn);
}

void Tracer::set_capture_deliveries(bool on) {
  MutexLock lock(mu_);
  capture_deliveries_ = on;
}

bool Tracer::capture_deliveries() const {
  MutexLock lock(mu_);
  return capture_deliveries_;
}

int64_t Tracer::Now() const {
  std::function<int64_t()> now_fn;
  {
    MutexLock lock(mu_);
    now_fn = now_fn_;
  }
  return now_fn ? now_fn() : 0;
}

void Tracer::Append(TraceEvent event, int64_t t_ns) {
  event.seq = next_seq_++;
  event.t_ns = t_ns;
  ++stats_.recorded;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
  ++stats_.dropped;
}

int64_t Tracer::BeginSpan(const std::string& category, const std::string& name,
                          const std::string& actor,
                          const std::string& detail) {
  const int64_t t = Now();
  MutexLock lock(mu_);
  const int64_t id = next_span_id_++;
  open_spans_[id] = {category, name, actor};
  TraceEvent e;
  e.phase = 'B';
  e.span_id = id;
  e.category = category;
  e.name = name;
  e.actor = actor;
  e.detail = detail;
  Append(std::move(e), t);
  return id;
}

int64_t Tracer::BeginSpanAt(int64_t t_ns, const std::string& category,
                            const std::string& name, const std::string& actor,
                            const std::string& detail) {
  MutexLock lock(mu_);
  const int64_t id = next_span_id_++;
  open_spans_[id] = {category, name, actor};
  TraceEvent e;
  e.phase = 'B';
  e.span_id = id;
  e.category = category;
  e.name = name;
  e.actor = actor;
  e.detail = detail;
  Append(std::move(e), t_ns);
  return id;
}

void Tracer::EndSpan(int64_t span_id, const std::string& detail) {
  const int64_t t = Now();
  MutexLock lock(mu_);
  EndSpanAtLocked(span_id, t, detail);
}

void Tracer::EndSpanAt(int64_t span_id, int64_t t_ns,
                       const std::string& detail) {
  MutexLock lock(mu_);
  EndSpanAtLocked(span_id, t_ns, detail);
}

void Tracer::EndSpanAtLocked(int64_t span_id, int64_t t_ns,
                             const std::string& detail) {
  auto it = open_spans_.find(span_id);
  if (it == open_spans_.end()) return;
  TraceEvent e;
  e.phase = 'E';
  e.span_id = span_id;
  e.category = it->second[0];
  e.name = it->second[1];
  e.actor = it->second[2];
  e.detail = detail;
  open_spans_.erase(it);
  Append(std::move(e), t_ns);
}

void Tracer::Event(const std::string& category, const std::string& name,
                   const std::string& actor, const std::string& detail) {
  const int64_t t = Now();
  MutexLock lock(mu_);
  TraceEvent e;
  e.category = category;
  e.name = name;
  e.actor = actor;
  e.detail = detail;
  Append(std::move(e), t);
}

void Tracer::EventAt(int64_t t_ns, const std::string& category,
                     const std::string& name, const std::string& actor,
                     const std::string& detail) {
  MutexLock lock(mu_);
  TraceEvent e;
  e.category = category;
  e.name = name;
  e.actor = actor;
  e.detail = detail;
  Append(std::move(e), t_ns);
}

Tracer::Stats Tracer::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::vector<TraceEvent> Tracer::Events() const {
  MutexLock lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  return out;
}

std::string Tracer::DumpJson() const {
  const std::vector<TraceEvent> events = Events();
  const Stats stats = this->stats();
  std::string out = "{\"capacity\":" + std::to_string(capacity_) +
                    ",\"recorded\":" + std::to_string(stats.recorded) +
                    ",\"dropped\":" + std::to_string(stats.dropped) +
                    ",\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ",";
    out += "{\"seq\":" + std::to_string(e.seq) +
           ",\"t_ns\":" + std::to_string(e.t_ns) + ",\"ph\":\"" + e.phase +
           "\"";
    if (e.span_id != 0) out += ",\"id\":" + std::to_string(e.span_id);
    out += ",\"cat\":\"" + JsonEscape(e.category) + "\",\"name\":\"" +
           JsonEscape(e.name) + "\",\"actor\":\"" + JsonEscape(e.actor) +
           "\"";
    if (!e.detail.empty()) {
      out += ",\"detail\":\"" + JsonEscape(e.detail) + "\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace avdb

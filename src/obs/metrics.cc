#include "obs/metrics.h"

#include <algorithm>

#include "base/logging.h"

namespace avdb {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool ValidMetricName(std::string_view name) {
  if (name.substr(0, 5) != "avdb_") return false;
  int segments = 1;
  char prev = '_';
  for (size_t i = 5; i < name.size(); ++i) {
    const char c = name[i];
    if (c == '_') {
      if (prev == '_') return false;  // empty segment
      ++segments;
    } else if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))) {
      return false;
    }
    prev = c;
  }
  return segments >= 3 && prev != '_';
}

Histogram::Histogram(std::string name, std::string help,
                     std::vector<int64_t> bounds)
    : name_(std::move(name)),
      help_(std::move(help)),
      bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1) {
  AVDB_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram " << name_ << " bounds must be ascending";
}

void Histogram::Observe(int64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  AVDB_CHECK(ValidMetricName(name))
      << "instrument name violates the naming convention: " << name;
  MutexLock lock(mu_);
  AVDB_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0)
      << name << " already registered as a different instrument kind";
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name, help);
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  AVDB_CHECK(ValidMetricName(name))
      << "instrument name violates the naming convention: " << name;
  MutexLock lock(mu_);
  AVDB_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0)
      << name << " already registered as a different instrument kind";
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name, help);
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds,
                                         const std::string& help) {
  AVDB_CHECK(ValidMetricName(name))
      << "instrument name violates the naming convention: " << name;
  MutexLock lock(mu_);
  AVDB_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0)
      << name << " already registered as a different instrument kind";
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(name, help, std::move(bounds));
  }
  return slot.get();
}

std::string MetricsRegistry::PrometheusText() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    if (!c->help().empty()) {
      out += "# HELP " + name + " " + c->help() + "\n";
    }
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c->Value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    if (!g->help().empty()) {
      out += "# HELP " + name + " " + g->help() + "\n";
    }
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(g->Value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    if (!h->help().empty()) {
      out += "# HELP " + name + " " + h->help() + "\n";
    }
    out += "# TYPE " + name + " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += h->BucketCount(i);
      out += name + "_bucket{le=\"" + std::to_string(h->bounds()[i]) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h->Count()) + "\n";
    out += name + "_sum " + std::to_string(h->Sum()) + "\n";
    out += name + "_count " + std::to_string(h->Count()) + "\n";
  }
  return out;
}

std::string MetricsRegistry::Json() const {
  MutexLock lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(c->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(g->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"buckets\":[";
    for (size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i > 0) out += ",";
      out += "[";
      out += i < h->bounds().size() ? std::to_string(h->bounds()[i])
                                    : std::string("null");
      out += "," + std::to_string(h->BucketCount(i)) + "]";
    }
    out += "],\"sum\":" + std::to_string(h->Sum()) +
           ",\"count\":" + std::to_string(h->Count()) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace obs
}  // namespace avdb

#ifndef AVDB_OBS_POOL_METRICS_H_
#define AVDB_OBS_POOL_METRICS_H_

#include "base/buffer_pool.h"

namespace avdb {
namespace obs {

class MetricsRegistry;

/// Publishes a point-in-time snapshot of `pool`'s counters into `registry`
/// as gauges under the names declared next to BufferPool
/// (`avdb_base_pool_*`). Pool counters are cumulative but resettable
/// (ResetStats clears them between bench phases), so they export as gauges
/// rather than monotone counters.
///
/// Call at export points — end of a bench phase, experiment teardown, or a
/// metrics scrape — not per frame; the hot path never touches the registry.
/// No-op when `registry` is null (observability off).
void PublishBufferPoolStats(const BufferPool& pool, MetricsRegistry* registry);

/// Convenience overload for the process-wide pool the codecs lease from.
void PublishSharedBufferPoolStats(MetricsRegistry* registry);

}  // namespace obs
}  // namespace avdb

#endif  // AVDB_OBS_POOL_METRICS_H_

#ifndef AVDB_OBS_METRICS_H_
#define AVDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.h"

namespace avdb {
namespace obs {

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared by the metrics and trace
/// exporters so both emit byte-stable, parseable JSON.
std::string JsonEscape(std::string_view s);

/// True when `name` follows the repo-wide instrument convention
/// `avdb_<layer>_<metric>` — lowercase, digits and underscores only, at
/// least three segments. avdb-lint additionally checks that `<layer>`
/// matches the include-DAG layer of the defining file.
bool ValidMetricName(std::string_view name);

/// Monotone event count. Increments are relaxed atomics: instruments are
/// shared across the real-time bridge threads (work pool) and the
/// single-threaded event engine, and a counter needs no ordering beyond
/// its own total.
class Counter {
 public:
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  std::string name_;
  std::string help_;
  std::atomic<int64_t> value_{0};
};

/// Point-in-time level (reserved bandwidth, queue depth, ladder position).
class Gauge {
 public:
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  std::string name_;
  std::string help_;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds in ascending
/// order; an implicit +Inf bucket catches the rest. Observation cost is one
/// binary search plus two relaxed atomic adds — cheap enough for per-element
/// lateness on the streaming path.
class Histogram {
 public:
  Histogram(std::string name, std::string help, std::vector<int64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(int64_t value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Per-bucket (non-cumulative) count; index bounds().size() is +Inf.
  int64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  const std::vector<int64_t>& bounds() const { return bounds_; }

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  std::string name_;
  std::string help_;
  std::vector<int64_t> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1 (+Inf)
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Process-wide instrument directory: get-or-create by name, stable
/// pointers for the registry's lifetime, deterministic (name-sorted)
/// export. One registry per experiment; layers receive it by pointer and
/// treat nullptr as "observability off" — the disabled path is a single
/// branch.
///
/// All instrument values are integers (counts, ns, bytes), so both export
/// formats are byte-stable across runs of the same virtual-time schedule.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. The name must satisfy ValidMetricName and must not be
  /// registered as a different instrument kind (programmer error; fails a
  /// CHECK — the registry is not a hot-path layer).
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  /// `bounds` must be ascending; ignored when the histogram already exists.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds,
                          const std::string& help = "");

  /// Prometheus text exposition (HELP/TYPE comments, cumulative `le`
  /// buckets, `_sum`/`_count` series), instruments in name order.
  std::string PrometheusText() const;
  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}},
  /// instruments in name order.
  std::string Json() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      AVDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ AVDB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      AVDB_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace avdb

#endif  // AVDB_OBS_METRICS_H_

#include "obs/pool_metrics.h"

#include "obs/metrics.h"

namespace avdb {
namespace obs {

void PublishBufferPoolStats(const BufferPool& pool, MetricsRegistry* registry) {
  if (registry == nullptr) return;
  const BufferPool::Stats s = pool.stats();
  registry->GetGauge(kPoolAcquiresMetric, "buffer pool Acquire* calls")
      ->Set(s.acquires);
  registry->GetGauge(kPoolReusesMetric, "pool acquires served from free list")
      ->Set(s.reuses);
  registry
      ->GetGauge(kPoolAllocationsMetric, "pool acquires that hit the heap")
      ->Set(s.allocations);
  registry->GetGauge(kPoolReleasesMetric, "blocks handed back to the pool")
      ->Set(s.releases);
  registry->GetGauge(kPoolDropsMetric, "releases dropped (free list full)")
      ->Set(s.drops);
}

void PublishSharedBufferPoolStats(MetricsRegistry* registry) {
  PublishBufferPoolStats(BufferPool::Shared(), registry);
}

}  // namespace obs
}  // namespace avdb

#ifndef AVDB_ACTIVITY_SOURCES_H_
#define AVDB_ACTIVITY_SOURCES_H_

#include <functional>
#include <memory>
#include <string>

#include "activity/cost_model.h"
#include "activity/media_activity.h"
#include "codec/encoded_value.h"
#include "codec/scalable_codec.h"
#include "media/audio_value.h"
#include "media/synthetic.h"
#include "media/text_stream_value.h"
#include "media/video_value.h"
#include "sched/degradation.h"
#include "sched/service_queue.h"
#include "sched/sync_controller.h"
#include "storage/media_store.h"

namespace avdb {

/// Pluggable range-fetch hook: (blob, offset, length, deadline_budget_ns)
/// → the same ReadResult a MediaStore read produces. The indirection lets a
/// layer *above* activity (the cluster router, with replica selection,
/// failover and hedged reads) serve fetches without the activity layer
/// depending on it. `deadline_budget_ns` is the element's remaining
/// presentation budget at fetch time; non-positive means the element is
/// already doomed and the fetcher should fail fast.
using RangeFetcher = std::function<Result<MediaStore::ReadResult>(
    const std::string& blob, int64_t offset, int64_t length,
    int64_t deadline_budget_ns)>;

/// Shared knobs of rate-based source activities.
struct SourceOptions {
  /// Elements are fetched this far ahead of their ideal presentation time,
  /// absorbing pipeline and transfer delays.
  WorldTime preroll = WorldTime::FromMillis(80);
  /// Extra delay before element 0's ideal time (track offset from a
  /// temporal composite's timeline, Fig. 1).
  WorldTime start_offset;
  /// When set, every fetch charges modeled device time: the source reads
  /// the value's bytes from this store (blob `blob_name`) through
  /// `device_queue`, so concurrent streams on one device contend.
  MediaStore* store = nullptr;
  std::string blob_name;
  ServiceQueue* device_queue = nullptr;
  /// When set, fetches go through this hook instead of `store` (which is
  /// then ignored). Each call carries the element's deadline budget:
  /// ideal presentation time + `deadline_slack` − now, so every hop below
  /// (router, channel, replica device) can cancel work that can no longer
  /// present on time.
  RangeFetcher fetcher;
  /// Tolerated presentation lateness used to derive the fetch deadline
  /// budget when `fetcher` is set. An element this late is still worth
  /// producing; beyond it the fetch is doomed work.
  WorldTime deadline_slack = WorldTime::FromMillis(100);
  /// When set with `sync_track`, the source consults the controller before
  /// each element and skips elements a lagging track is told to drop.
  SyncController* sync = nullptr;
  std::string sync_track;
  /// Processing-cost model for any internal decode.
  CostModel costs;
  /// When set, the source degrades instead of stalling: it consults the
  /// controller's ladder each tick (drop frame / lower quality / pause /
  /// abort), tolerates post-retry fetch failures as dropped elements, and
  /// surfaces every step as a typed event. When null (the default) fetch
  /// failures stop the stream exactly as before.
  DegradationController* degrade = nullptr;
};

/// The paper's `VideoSource` (§4.2/§4.3): a source activity producing the
/// frames of a bound `VideoValue` through port "video_out" at the value's
/// frame rate.
///
///   events = {EACH_FRAME, LAST_FRAME}
///
/// The output port type adapts to the bound value on Bind (§4.3: "dynamic
/// configuration of dbSource is necessary"): binding an encoded value with
/// `emit_encoded` produces compressed chunks for a downstream decoder
/// (Table 1's "video reader"); otherwise the source decodes internally
/// (paying modeled decode time) and produces raw frames.
class VideoSource : public MediaActivity {
 public:
  static constexpr const char* kEachFrame = "EACH_FRAME";
  static constexpr const char* kLastFrame = "LAST_FRAME";
  static constexpr const char* kPortOut = "video_out";
  // Robustness events (raised only when options.degrade is set, except
  // FAULT_RETRY which reports any absorbed storage retries).
  static constexpr const char* kFaultRetry = "FAULT_RETRY";
  static constexpr const char* kFrameDropped = "FRAME_DROPPED";
  static constexpr const char* kQualityChanged = "QUALITY_CHANGED";
  static constexpr const char* kStreamPaused = "STREAM_PAUSED";
  static constexpr const char* kStreamAborted = "STREAM_ABORTED";

  /// `emit_encoded` selects chunk output for encoded bound values.
  static std::shared_ptr<VideoSource> Create(const std::string& name,
                                             ActivityLocation location,
                                             ActivityEnv env,
                                             SourceOptions options = {},
                                             bool emit_encoded = false);

  /// Binds a VideoValue to "video_out" and re-types the port.
  Status DoBind(MediaValuePtr value, const std::string& port_name) override;

  /// Positions so the next produced frame is the one at local time `t` of
  /// the bound value.
  Status DoCue(WorldTime t) override;

  const VideoValuePtr& bound_value() const { return value_; }
  int64_t next_index() const { return next_index_; }

  /// Scalable layers currently decoded / at bind time. Equal unless the
  /// degradation ladder stepped quality down; 0 when the bound value is not
  /// layer-scalable.
  int active_layers() const { return active_layers_; }
  int nominal_layers() const { return nominal_layers_; }

  Status ConfigureSync(SyncController* sync,
                       const std::string& track) override;

 protected:
  Status OnStart() override;

 private:
  VideoSource(const std::string& name, ActivityLocation location,
              ActivityEnv env, SourceOptions options, bool emit_encoded);

  void ScheduleTick(int64_t index, int64_t stream_start_ns);
  void Tick(int64_t index, int64_t stream_start_ns, int64_t gen);
  int64_t PeriodNs() const;
  /// Byte size of frame `i` in the *active* representation (a degraded view
  /// reads fewer bytes than the stored frame occupies).
  int64_t FrameBytes(int64_t i) const;
  /// Byte offset of frame `i` within the stored blob (approximate layout:
  /// frames in sequence, at the *bound* value's full frame sizes — quality
  /// steps change how many bytes are read, never where frames live).
  int64_t FrameOffset(int64_t i) const;
  /// Steps the active scalable view by `delta` layers (-1 lower, +1 raise).
  /// Returns false when the value is not scalable or already at the bound.
  [[nodiscard]] bool ApplyQualityStep(int delta);
  /// Drops element `index` (ladder decision or tolerated fetch failure) and
  /// schedules the next tick.
  void DropElement(int64_t index, int64_t stream_start_ns,
                   const std::string& why);

  SourceOptions options_;
  bool emit_encoded_;
  Port* out_;
  VideoValuePtr value_;
  /// The originally bound value — owns the blob layout (FrameOffset) and
  /// the nominal quality the ladder recovers toward.
  VideoValuePtr layout_value_;
  std::shared_ptr<EncodedVideoValue> encoded_;  // set when value is encoded
  /// Scalable stream backing quality steps (nullptr when not scalable).
  const EncodedVideo* scalable_stream_ = nullptr;
  int nominal_layers_ = 0;
  int active_layers_ = 0;
  ServiceQueue decode_unit_;
  int64_t next_index_ = 0;
};

/// Audio counterpart of VideoSource: produces PCM blocks of
/// `kBlockFrames` sample frames through "audio_out".
///
///   events = {EACH_BLOCK, LAST_BLOCK}
class AudioSource : public MediaActivity {
 public:
  static constexpr const char* kEachBlock = "EACH_BLOCK";
  static constexpr const char* kLastBlock = "LAST_BLOCK";
  static constexpr const char* kPortOut = "audio_out";
  static constexpr const char* kFaultRetry = "FAULT_RETRY";
  static constexpr const char* kBlockDropped = "BLOCK_DROPPED";
  static constexpr const char* kStreamAborted = "STREAM_ABORTED";
  static constexpr int kBlockFrames = 1024;

  static std::shared_ptr<AudioSource> Create(const std::string& name,
                                             ActivityLocation location,
                                             ActivityEnv env,
                                             SourceOptions options = {});

  Status DoBind(MediaValuePtr value, const std::string& port_name) override;
  Status DoCue(WorldTime t) override;

  const AudioValuePtr& bound_value() const { return value_; }

  Status ConfigureSync(SyncController* sync,
                       const std::string& track) override;

 protected:
  Status OnStart() override;

 private:
  AudioSource(const std::string& name, ActivityLocation location,
              ActivityEnv env, SourceOptions options);

  void Tick(int64_t block_index, int64_t stream_start_ns, int64_t gen);
  int64_t BlockCount() const;
  int64_t PeriodNs() const;

  SourceOptions options_;
  Port* out_;
  AudioValuePtr value_;
  ServiceQueue decode_unit_;
  int64_t next_block_ = 0;
};

/// Produces caption elements of a bound TextStreamValue through
/// "text_out": one element per span, at the span's start time.
class TextSource : public MediaActivity {
 public:
  static constexpr const char* kPortOut = "text_out";

  static std::shared_ptr<TextSource> Create(const std::string& name,
                                            ActivityLocation location,
                                            ActivityEnv env,
                                            SourceOptions options = {});

  Status DoBind(MediaValuePtr value, const std::string& port_name) override;
  Status DoCue(WorldTime t) override;

  /// Captions are sparse; the track joins the domain but never skips.
  Status ConfigureSync(SyncController* sync,
                       const std::string& track) override;

 protected:
  Status OnStart() override;

 private:
  TextSource(const std::string& name, ActivityLocation location,
             ActivityEnv env, SourceOptions options);

  SourceOptions options_;
  Port* out_;
  TextStreamValuePtr value_;
  size_t next_span_ = 0;
};

/// Table 1's "video digitizer": a live source producing synthetic camera
/// frames at rate through "video_out" until stopped — the paper's example
/// of a value that "is impossible to compress prior to exchange" because it
/// does not exist in advance.
class VideoDigitizer : public MediaActivity {
 public:
  static constexpr const char* kPortOut = "video_out";
  static constexpr const char* kEachFrame = "EACH_FRAME";

  /// Digitizes at the geometry/rate of `type` (must be raw video) with the
  /// given synthetic pattern. `frame_limit` < 0 runs until Stop().
  static std::shared_ptr<VideoDigitizer> Create(
      const std::string& name, ActivityLocation location, ActivityEnv env,
      MediaDataType type, synthetic::VideoPattern pattern,
      int64_t frame_limit = -1, uint64_t seed = 1);

 protected:
  Status OnStart() override;

 private:
  VideoDigitizer(const std::string& name, ActivityLocation location,
                 ActivityEnv env, MediaDataType type,
                 synthetic::VideoPattern pattern, int64_t frame_limit,
                 uint64_t seed);

  void Tick(int64_t index, int64_t stream_start_ns, int64_t gen);

  Port* out_;
  MediaDataType type_;
  synthetic::VideoPattern pattern_;
  int64_t frame_limit_;
  uint64_t seed_;
};

/// Live audio source (microphone / line-in simulator): produces synthetic
/// PCM blocks at rate until stopped or `sample_limit` is reached — the
/// audio analogue of VideoDigitizer and the other half of the paper's
/// "live sources" footnote (values that cannot be compressed in advance).
class AudioCapture : public MediaActivity {
 public:
  static constexpr const char* kPortOut = "audio_out";
  static constexpr const char* kEachBlock = "EACH_BLOCK";
  static constexpr int kBlockFrames = 1024;

  /// Captures at the channel count/rate of `type` (must be raw audio).
  /// `sample_limit` < 0 runs until Stop().
  static std::shared_ptr<AudioCapture> Create(
      const std::string& name, ActivityLocation location, ActivityEnv env,
      MediaDataType type, synthetic::AudioPattern pattern,
      int64_t sample_limit = -1, uint64_t seed = 1);

 protected:
  Status OnStart() override;

 private:
  AudioCapture(const std::string& name, ActivityLocation location,
               ActivityEnv env, MediaDataType type,
               synthetic::AudioPattern pattern, int64_t sample_limit,
               uint64_t seed);

  void Tick(int64_t block_index, int64_t stream_start_ns, int64_t gen);

  Port* out_;
  MediaDataType type_;
  synthetic::AudioPattern pattern_;
  int64_t sample_limit_;
  uint64_t seed_;
  std::shared_ptr<RawAudioValue> generated_;  // lazily generated signal
};

}  // namespace avdb

#endif  // AVDB_ACTIVITY_SOURCES_H_

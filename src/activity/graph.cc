#include "activity/graph.h"

#include <algorithm>
#include <sstream>

#include "base/logging.h"

namespace avdb {

std::string Connection::Describe() const {
  std::string out = from_->FullName() + " -> " + to_->FullName();
  if (channel_ != nullptr) {
    out += " via " + channel_->name();
  }
  return out;
}

Status ActivityGraph::Add(MediaActivityPtr activity) {
  if (activity == nullptr) return Status::InvalidArgument("null activity");
  const auto [it, inserted] =
      by_name_.emplace(activity->name(), activity.get());
  if (!inserted) {
    return Status::AlreadyExists("activity exists: " + activity->name());
  }
  activities_.push_back(std::move(activity));
  return Status::OK();
}

Result<MediaActivity*> ActivityGraph::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("activity: " + name);
  return it->second;
}

Result<Connection*> ActivityGraph::Connect(MediaActivity* from,
                                           const std::string& out_port,
                                           MediaActivity* to,
                                           const std::string& in_port,
                                           ChannelPtr channel) {
  auto out = from->FindPort(out_port);
  if (!out.ok()) return out.status();
  auto in = to->FindPort(in_port);
  if (!in.ok()) return in.status();
  if (out.value()->direction() != PortDirection::kOut) {
    return Status::InvalidArgument(out.value()->FullName() +
                                   " is not an output port");
  }
  if (in.value()->direction() != PortDirection::kIn) {
    return Status::InvalidArgument(in.value()->FullName() +
                                   " is not an input port");
  }
  if (out.value()->data_type() != in.value()->data_type()) {
    return Status::InvalidArgument(
        "port type mismatch: " + out.value()->FullName() + " carries " +
        out.value()->data_type().ToString() + " but " +
        in.value()->FullName() + " expects " +
        in.value()->data_type().ToString());
  }
  if (out.value()->IsConnected()) {
    return Status::FailedPrecondition(out.value()->FullName() +
                                      " already connected");
  }
  if (in.value()->IsConnected()) {
    return Status::FailedPrecondition(in.value()->FullName() +
                                      " already connected");
  }
  connections_.push_back(std::make_unique<Connection>(
      out.value(), in.value(), std::move(channel)));
  Connection* c = connections_.back().get();
  out.value()->set_connection(c);
  in.value()->set_connection(c);
  return c;
}

Status ActivityGraph::Disconnect(Connection* connection) {
  if (connection == nullptr) {
    return Status::NotFound("connection not in this graph");
  }
  auto it = std::find_if(
      connections_.begin(), connections_.end(),
      [connection](const auto& c) { return c.get() == connection; });
  if (it == connections_.end()) {
    return Status::NotFound("connection not in this graph");
  }
  connection->from()->set_connection(nullptr);
  connection->to()->set_connection(nullptr);
  connections_.erase(it);
  return Status::OK();
}

Status ActivityGraph::Validate() const {
  for (const auto& a : activities_) {
    for (Port* in : a->InputPorts()) {
      if (!in->IsConnected()) {
        return Status::FailedPrecondition("dangling input port: " +
                                          in->FullName());
      }
    }
  }
  return Status::OK();
}

Status ActivityGraph::StartAll() {
  // Non-sources first so every consumer is running before producers emit.
  std::vector<MediaActivity*> order;
  for (const auto& a : activities_) {
    if (a->Kind() != ActivityKind::kSource) order.push_back(a.get());
  }
  for (const auto& a : activities_) {
    if (a->Kind() == ActivityKind::kSource) order.push_back(a.get());
  }
  for (MediaActivity* a : order) {
    const Status status = a->Start();
    if (!status.ok()) {
      // The start error is the primary failure; a rollback failure on top
      // of it must not vanish silently.
      const Status rollback = StopAll();
      if (!rollback.ok()) {
        AVDB_LOG(Warning) << "StartAll rollback failed: " << rollback;
      }
      return status;
    }
  }
  return Status::OK();
}

Status ActivityGraph::StopAll() {
  Status first_error;
  for (const auto& a : activities_) {
    const Status status = a->Stop();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

std::string ActivityGraph::Describe() const {
  std::ostringstream os;
  os << "activity graph (" << activities_.size() << " activities, "
     << connections_.size() << " connections)\n";
  for (const auto& a : activities_) {
    os << "  " << a->Describe() << "\n";
  }
  for (const auto& c : connections_) {
    os << "  " << c->Describe() << "\n";
  }
  return os.str();
}

}  // namespace avdb

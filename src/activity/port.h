#ifndef AVDB_ACTIVITY_PORT_H_
#define AVDB_ACTIVITY_PORT_H_

#include <string>

#include "media/media_type.h"

namespace avdb {

class MediaActivity;
class Connection;

/// Direction of a port, §4.2: "a port has a direction, either 'in' or
/// 'out', and a media data type."
enum class PortDirection { kIn, kOut };

std::string_view PortDirectionName(PortDirection d);

/// A typed stream endpoint on an activity. Activities are classified by
/// their ports (sources have only "out" ports, sinks only "in" ports,
/// transformers both), and connections are only legal between ports of the
/// same media data type (§4.2 flow-composition rule 1).
class Port {
 public:
  Port(MediaActivity* owner, std::string name, PortDirection direction,
       MediaDataType data_type)
      : owner_(owner),
        name_(std::move(name)),
        direction_(direction),
        data_type_(std::move(data_type)) {}

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  MediaActivity* owner() const { return owner_; }
  const std::string& name() const { return name_; }
  PortDirection direction() const { return direction_; }
  const MediaDataType& data_type() const { return data_type_; }

  /// The connection attached to this port, or nullptr.
  Connection* connection() const { return connection_; }
  bool IsConnected() const { return connection_ != nullptr; }

  /// "activity.port" label for diagnostics.
  std::string FullName() const;

  /// Re-types a port before the graph is wired (used by generic activities
  /// that adapt to the bound value's representation, §4.3's "dynamic
  /// configuration of dbSource").
  void set_data_type(MediaDataType type) { data_type_ = std::move(type); }

 private:
  friend class ActivityGraph;
  void set_connection(Connection* c) { connection_ = c; }

  MediaActivity* owner_;
  std::string name_;
  PortDirection direction_;
  MediaDataType data_type_;
  Connection* connection_ = nullptr;
};

}  // namespace avdb

#endif  // AVDB_ACTIVITY_PORT_H_

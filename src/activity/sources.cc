#include "activity/sources.h"

#include "base/logging.h"

namespace avdb {

namespace {

int64_t RateToPeriodNs(Rational rate) {
  AVDB_CHECK(rate > Rational(0)) << "element rate must be positive";
  return (Rational(1000000000) / rate).Rounded();
}

}  // namespace

// ------------------------------------------------------------ VideoSource --

VideoSource::VideoSource(const std::string& name, ActivityLocation location,
                         ActivityEnv env, SourceOptions options,
                         bool emit_encoded)
    : MediaActivity(name, location, env),
      options_(std::move(options)),
      emit_encoded_(emit_encoded),
      decode_unit_(name + ".decoder") {
  out_ = DeclarePort(kPortOut, PortDirection::kOut,
                     MediaDataType::RawVideo(0, 0, 8, Rational(1)));
  DeclareEvent(kEachFrame);
  DeclareEvent(kLastFrame);
}

std::shared_ptr<VideoSource> VideoSource::Create(const std::string& name,
                                                 ActivityLocation location,
                                                 ActivityEnv env,
                                                 SourceOptions options,
                                                 bool emit_encoded) {
  return std::shared_ptr<VideoSource>(
      new VideoSource(name, location, env, std::move(options), emit_encoded));
}

Status VideoSource::Bind(MediaValuePtr value, const std::string& port_name) {
  if (port_name != kPortOut) {
    return Status::NotFound("port " + name() + "." + port_name);
  }
  if (state() == State::kRunning) {
    return Status::FailedPrecondition("cannot bind while running");
  }
  auto video = std::dynamic_pointer_cast<VideoValue>(value);
  if (video == nullptr) {
    return Status::InvalidArgument("VideoSource requires a VideoValue");
  }
  value_ = video;
  encoded_ = std::dynamic_pointer_cast<EncodedVideoValue>(video);
  if (emit_encoded_ && encoded_ == nullptr) {
    return Status::InvalidArgument(
        "encoded-chunk output requires an encoded value");
  }
  // §4.3: configure the port type from the bound representation.
  if (emit_encoded_) {
    out_->set_data_type(encoded_->type());
  } else {
    out_->set_data_type(MediaDataType::RawVideo(
        video->width(), video->height(), video->depth_bits(),
        video->frame_rate()));
  }
  next_index_ = 0;
  return Status::OK();
}

Status VideoSource::Cue(WorldTime t) {
  if (state() == State::kRunning) {
    return Status::FailedPrecondition("cannot cue while running");
  }
  if (value_ == nullptr) {
    return Status::FailedPrecondition("cue before bind on " + name());
  }
  const int64_t index = (t.seconds() * value_->frame_rate()).Floor();
  if (index < 0 || index >= value_->FrameCount()) {
    return Status::InvalidArgument("cue time outside bound value");
  }
  next_index_ = index;
  return Status::OK();
}

Status VideoSource::ConfigureSync(SyncController* sync,
                                  const std::string& track) {
  options_.sync = sync;
  options_.sync_track = track;
  return Status::OK();
}

int64_t VideoSource::PeriodNs() const {
  return RateToPeriodNs(value_->frame_rate());
}

int64_t VideoSource::FrameBytes(int64_t i) const {
  // Representation-aware: encoded values report their chunk sizes, layer
  // views their restricted subset, raw values their frame size.
  return value_->StoredFrameBytes(i);
}

int64_t VideoSource::FrameOffset(int64_t i) const {
  int64_t offset = 0;
  for (int64_t f = 0; f < i; ++f) offset += value_->StoredFrameBytes(f);
  return offset;
}

Status VideoSource::OnStart() {
  if (value_ == nullptr) {
    return Status::FailedPrecondition("start before bind on " + name());
  }
  if (value_->FrameCount() == 0) {
    return Status::FailedPrecondition("bound video value is empty");
  }
  // Stream epoch: element `next_index_` presents after preroll+offset.
  const int64_t base = next_index_;
  const int64_t stream_start_ns =
      engine()->now_ns() + VirtualClock::ToNs(options_.preroll) +
      VirtualClock::ToNs(options_.start_offset) - base * PeriodNs();
  ScheduleTick(next_index_, stream_start_ns);
  return Status::OK();
}

void VideoSource::ScheduleTick(int64_t index, int64_t stream_start_ns) {
  const int64_t ideal = stream_start_ns + index * PeriodNs();
  const int64_t at = ideal - VirtualClock::ToNs(options_.preroll);
  const int64_t gen = generation();
  engine()->ScheduleAt(at, [this, index, stream_start_ns, gen] {
    Tick(index, stream_start_ns, gen);
  });
}

void VideoSource::Tick(int64_t index, int64_t stream_start_ns, int64_t gen) {
  if (state() != State::kRunning || gen != generation()) return;

  // Resynchronization: a lagging track drops frames to catch up (§3.3).
  if (options_.sync != nullptr && !options_.sync_track.empty()) {
    auto skip = options_.sync->RecommendSkip(options_.sync_track, PeriodNs());
    if (skip.ok() && skip.value() > 0) {
      index += skip.value();
    }
  }
  if (index >= value_->FrameCount()) {
    const int64_t ideal = stream_start_ns + index * PeriodNs();
    Emit(out_, StreamElement::EndOfStream(index, ideal));
    Raise(kLastFrame, value_->FrameCount() - 1);
    SelfStop();
    return;
  }

  const int64_t ideal = stream_start_ns + index * PeriodNs();
  int64_t ready_ns = engine()->now_ns();

  // Storage fetch: pay modeled device time, serialized on the device arm.
  if (options_.store != nullptr) {
    auto read = options_.store->ReadRange(options_.blob_name,
                                          FrameOffset(index),
                                          FrameBytes(index));
    if (!read.ok()) {
      AVDB_LOG(Error) << name() << ": read failed: " << read.status();
      SelfStop();
      return;
    }
    const int64_t service_ns =
        VirtualClock::ToNs(read.value().duration);
    if (options_.device_queue != nullptr) {
      ready_ns = options_.device_queue->Submit(ready_ns, service_ns);
    } else {
      ready_ns += service_ns;
    }
  }

  StreamElement element;
  element.index = index;
  element.ideal_time_ns = ideal;
  element.size_bytes = FrameBytes(index);

  if (emit_encoded_) {
    const auto& ef = encoded_->encoded().frames[static_cast<size_t>(index)];
    element.encoded = std::make_shared<Buffer>(ef.data);
    element.encoded_is_intra = ef.is_intra;
  } else {
    auto frame = value_->Frame(index);
    if (!frame.ok()) {
      AVDB_LOG(Error) << name() << ": decode failed: " << frame.status();
      SelfStop();
      return;
    }
    if (value_->type().IsCompressed()) {
      // Internal decode of a compressed representation costs time on this
      // source's decode unit.
      const int64_t pixels =
          static_cast<int64_t>(value_->width()) * value_->height();
      ready_ns = decode_unit_.Submit(ready_ns,
                                     options_.costs.VideoDecodeNs(pixels));
    }
    element.frame =
        std::make_shared<const VideoFrame>(std::move(frame).value());
    element.size_bytes = static_cast<int64_t>(element.frame->SizeBytes());
  }

  const int64_t this_index = index;
  engine()->ScheduleAt(ready_ns, [this, element = std::move(element),
                                  this_index, gen] {
    if (state() != State::kRunning || gen != generation()) return;
    Emit(out_, element);
    Raise(kEachFrame, this_index);
  });

  next_index_ = index + 1;
  ScheduleTick(next_index_, stream_start_ns);
}

// ------------------------------------------------------------ AudioSource --

AudioSource::AudioSource(const std::string& name, ActivityLocation location,
                         ActivityEnv env, SourceOptions options)
    : MediaActivity(name, location, env),
      options_(std::move(options)),
      decode_unit_(name + ".decoder") {
  out_ = DeclarePort(kPortOut, PortDirection::kOut,
                     MediaDataType::RawAudio(1, Rational(8000)));
  DeclareEvent(kEachBlock);
  DeclareEvent(kLastBlock);
}

std::shared_ptr<AudioSource> AudioSource::Create(const std::string& name,
                                                 ActivityLocation location,
                                                 ActivityEnv env,
                                                 SourceOptions options) {
  return std::shared_ptr<AudioSource>(
      new AudioSource(name, location, env, std::move(options)));
}

Status AudioSource::Bind(MediaValuePtr value, const std::string& port_name) {
  if (port_name != kPortOut) {
    return Status::NotFound("port " + name() + "." + port_name);
  }
  if (state() == State::kRunning) {
    return Status::FailedPrecondition("cannot bind while running");
  }
  auto audio = std::dynamic_pointer_cast<AudioValue>(value);
  if (audio == nullptr) {
    return Status::InvalidArgument("AudioSource requires an AudioValue");
  }
  value_ = audio;
  out_->set_data_type(
      MediaDataType::RawAudio(audio->channels(), audio->sample_rate()));
  next_block_ = 0;
  return Status::OK();
}

Status AudioSource::Cue(WorldTime t) {
  if (state() == State::kRunning) {
    return Status::FailedPrecondition("cannot cue while running");
  }
  if (value_ == nullptr) {
    return Status::FailedPrecondition("cue before bind on " + name());
  }
  const int64_t sample = (t.seconds() * value_->sample_rate()).Floor();
  if (sample < 0 || sample >= value_->SampleCount()) {
    return Status::InvalidArgument("cue time outside bound value");
  }
  next_block_ = sample / kBlockFrames;
  return Status::OK();
}

Status AudioSource::ConfigureSync(SyncController* sync,
                                  const std::string& track) {
  options_.sync = sync;
  options_.sync_track = track;
  return Status::OK();
}

int64_t AudioSource::BlockCount() const {
  return (value_->SampleCount() + kBlockFrames - 1) / kBlockFrames;
}

int64_t AudioSource::PeriodNs() const {
  return (Rational(kBlockFrames) / value_->sample_rate() *
          Rational(1000000000))
      .Rounded();
}

Status AudioSource::OnStart() {
  if (value_ == nullptr) {
    return Status::FailedPrecondition("start before bind on " + name());
  }
  if (value_->SampleCount() == 0) {
    return Status::FailedPrecondition("bound audio value is empty");
  }
  const int64_t base = next_block_;
  const int64_t stream_start_ns =
      engine()->now_ns() + VirtualClock::ToNs(options_.preroll) +
      VirtualClock::ToNs(options_.start_offset) - base * PeriodNs();
  const int64_t gen = generation();
  engine()->ScheduleAt(
      stream_start_ns + base * PeriodNs() -
          VirtualClock::ToNs(options_.preroll),
      [this, base, stream_start_ns, gen] { Tick(base, stream_start_ns, gen); });
  return Status::OK();
}

void AudioSource::Tick(int64_t block_index, int64_t stream_start_ns,
                       int64_t gen) {
  if (state() != State::kRunning || gen != generation()) return;

  if (options_.sync != nullptr && !options_.sync_track.empty()) {
    auto skip = options_.sync->RecommendSkip(options_.sync_track, PeriodNs());
    if (skip.ok() && skip.value() > 0) block_index += skip.value();
  }
  if (block_index >= BlockCount()) {
    const int64_t ideal = stream_start_ns + block_index * PeriodNs();
    Emit(out_, StreamElement::EndOfStream(block_index, ideal));
    Raise(kLastBlock, BlockCount() - 1);
    SelfStop();
    return;
  }

  const int64_t first = block_index * kBlockFrames;
  const int64_t count =
      std::min<int64_t>(kBlockFrames, value_->SampleCount() - first);
  auto block = value_->Samples(first, count);
  if (!block.ok()) {
    AVDB_LOG(Error) << name() << ": sample read failed: " << block.status();
    SelfStop();
    return;
  }

  int64_t ready_ns = engine()->now_ns();
  const int64_t payload_bytes = static_cast<int64_t>(block.value().SizeBytes());
  if (options_.store != nullptr) {
    // Approximate layout: fixed-rate bytes at the value's stored rate.
    const int64_t stored_bytes_per_block =
        value_->StoredBytes() / std::max<int64_t>(1, BlockCount());
    auto read = options_.store->ReadRange(
        options_.blob_name, block_index * stored_bytes_per_block,
        stored_bytes_per_block);
    if (!read.ok()) {
      AVDB_LOG(Error) << name() << ": read failed: " << read.status();
      SelfStop();
      return;
    }
    const int64_t service_ns = VirtualClock::ToNs(read.value().duration);
    ready_ns = options_.device_queue != nullptr
                   ? options_.device_queue->Submit(ready_ns, service_ns)
                   : ready_ns + service_ns;
  }
  if (value_->type().IsCompressed()) {
    ready_ns = decode_unit_.Submit(
        ready_ns, options_.costs.AudioDecodeNs(count * value_->channels()));
  }

  StreamElement element;
  element.index = block_index;
  element.ideal_time_ns = stream_start_ns + block_index * PeriodNs();
  element.size_bytes = payload_bytes;
  element.audio =
      std::make_shared<const AudioBlock>(std::move(block).value());

  engine()->ScheduleAt(ready_ns,
                       [this, element = std::move(element), block_index, gen] {
                         if (state() != State::kRunning ||
                             gen != generation()) {
                           return;
                         }
                         Emit(out_, element);
                         Raise(kEachBlock, block_index);
                       });

  next_block_ = block_index + 1;
  const int64_t next_at = stream_start_ns + next_block_ * PeriodNs() -
                          VirtualClock::ToNs(options_.preroll);
  engine()->ScheduleAt(next_at, [this, next = next_block_, stream_start_ns,
                                 gen] { Tick(next, stream_start_ns, gen); });
}

// ------------------------------------------------------------- TextSource --

TextSource::TextSource(const std::string& name, ActivityLocation location,
                       ActivityEnv env, SourceOptions options)
    : MediaActivity(name, location, env), options_(std::move(options)) {
  out_ = DeclarePort(kPortOut, PortDirection::kOut,
                     MediaDataType::Text(Rational(30)));
}

std::shared_ptr<TextSource> TextSource::Create(const std::string& name,
                                               ActivityLocation location,
                                               ActivityEnv env,
                                               SourceOptions options) {
  return std::shared_ptr<TextSource>(
      new TextSource(name, location, env, std::move(options)));
}

Status TextSource::Bind(MediaValuePtr value, const std::string& port_name) {
  if (port_name != kPortOut) {
    return Status::NotFound("port " + name() + "." + port_name);
  }
  auto text = std::dynamic_pointer_cast<TextStreamValue>(value);
  if (text == nullptr) {
    return Status::InvalidArgument("TextSource requires a TextStreamValue");
  }
  value_ = text;
  out_->set_data_type(text->type());
  next_span_ = 0;
  return Status::OK();
}

Status TextSource::Cue(WorldTime t) {
  if (value_ == nullptr) {
    return Status::FailedPrecondition("cue before bind on " + name());
  }
  const int64_t element = (t.seconds() * value_->ElementRate()).Floor();
  next_span_ = 0;
  while (next_span_ < value_->spans().size() &&
         value_->spans()[next_span_].first_element +
                 value_->spans()[next_span_].element_count <=
             element) {
    ++next_span_;
  }
  return Status::OK();
}

Status TextSource::ConfigureSync(SyncController* sync,
                                 const std::string& track) {
  options_.sync = sync;
  options_.sync_track = track;
  return Status::OK();
}

Status TextSource::OnStart() {
  if (value_ == nullptr) {
    return Status::FailedPrecondition("start before bind on " + name());
  }
  const int64_t stream_start_ns = engine()->now_ns() +
                                  VirtualClock::ToNs(options_.preroll) +
                                  VirtualClock::ToNs(options_.start_offset);
  const int64_t period_ns = RateToPeriodNs(value_->ElementRate());
  const int64_t gen = generation();
  // Schedule every remaining span up front (captions are sparse).
  for (size_t s = next_span_; s < value_->spans().size(); ++s) {
    const TextSpan& span = value_->spans()[s];
    const int64_t ideal = stream_start_ns + span.first_element * period_ns;
    StreamElement element;
    element.index = static_cast<int64_t>(s);
    element.ideal_time_ns = ideal;
    element.text = std::make_shared<const std::string>(span.text);
    element.size_bytes = static_cast<int64_t>(span.text.size());
    engine()->ScheduleAt(ideal - VirtualClock::ToNs(options_.preroll),
                         [this, element = std::move(element), gen] {
                           if (state() != State::kRunning ||
                               gen != generation()) {
                             return;
                           }
                           Emit(out_, element);
                         });
  }
  // End of stream after the last span expires.
  const int64_t end_ideal =
      stream_start_ns + value_->ElementCount() * period_ns;
  engine()->ScheduleAt(end_ideal, [this, gen, end_ideal] {
    if (state() != State::kRunning || gen != generation()) return;
    Emit(out_, StreamElement::EndOfStream(
                   static_cast<int64_t>(value_->spans().size()), end_ideal));
    SelfStop();
  });
  return Status::OK();
}

// --------------------------------------------------------- VideoDigitizer --

VideoDigitizer::VideoDigitizer(const std::string& name,
                               ActivityLocation location, ActivityEnv env,
                               MediaDataType type,
                               synthetic::VideoPattern pattern,
                               int64_t frame_limit, uint64_t seed)
    : MediaActivity(name, location, env),
      type_(std::move(type)),
      pattern_(pattern),
      frame_limit_(frame_limit),
      seed_(seed) {
  out_ = DeclarePort(kPortOut, PortDirection::kOut, type_);
  DeclareEvent(kEachFrame);
}

std::shared_ptr<VideoDigitizer> VideoDigitizer::Create(
    const std::string& name, ActivityLocation location, ActivityEnv env,
    MediaDataType type, synthetic::VideoPattern pattern, int64_t frame_limit,
    uint64_t seed) {
  return std::shared_ptr<VideoDigitizer>(new VideoDigitizer(
      name, location, env, std::move(type), pattern, frame_limit, seed));
}

Status VideoDigitizer::OnStart() {
  if (type_.kind() != MediaKind::kVideo || type_.IsCompressed()) {
    return Status::FailedPrecondition("digitizer needs a raw video type");
  }
  const int64_t stream_start_ns = engine()->now_ns();
  const int64_t gen = generation();
  engine()->ScheduleAt(stream_start_ns, [this, stream_start_ns, gen] {
    Tick(0, stream_start_ns, gen);
  });
  return Status::OK();
}

void VideoDigitizer::Tick(int64_t index, int64_t stream_start_ns,
                          int64_t gen) {
  if (state() != State::kRunning || gen != generation()) return;
  const int64_t period_ns = RateToPeriodNs(type_.element_rate());
  const int64_t ideal = stream_start_ns + index * period_ns;
  if (frame_limit_ >= 0 && index >= frame_limit_) {
    Emit(out_, StreamElement::EndOfStream(index, ideal));
    SelfStop();
    return;
  }
  StreamElement element;
  element.index = index;
  element.ideal_time_ns = ideal;
  element.frame = std::make_shared<const VideoFrame>(
      synthetic::GeneratePatternFrame(type_.width(), type_.height(),
                                      type_.depth_bits(), index, pattern_,
                                      seed_));
  element.size_bytes = static_cast<int64_t>(element.frame->SizeBytes());
  Emit(out_, std::move(element));
  Raise(kEachFrame, index);
  engine()->ScheduleAt(ideal + period_ns,
                       [this, next = index + 1, stream_start_ns, gen] {
                         Tick(next, stream_start_ns, gen);
                       });
}

// ----------------------------------------------------------- AudioCapture --

AudioCapture::AudioCapture(const std::string& name, ActivityLocation location,
                           ActivityEnv env, MediaDataType type,
                           synthetic::AudioPattern pattern,
                           int64_t sample_limit, uint64_t seed)
    : MediaActivity(name, location, env),
      type_(std::move(type)),
      pattern_(pattern),
      sample_limit_(sample_limit),
      seed_(seed) {
  out_ = DeclarePort(kPortOut, PortDirection::kOut, type_);
  DeclareEvent(kEachBlock);
}

std::shared_ptr<AudioCapture> AudioCapture::Create(
    const std::string& name, ActivityLocation location, ActivityEnv env,
    MediaDataType type, synthetic::AudioPattern pattern, int64_t sample_limit,
    uint64_t seed) {
  return std::shared_ptr<AudioCapture>(new AudioCapture(
      name, location, env, std::move(type), pattern, sample_limit, seed));
}

Status AudioCapture::OnStart() {
  if (type_.kind() != MediaKind::kAudio || type_.IsCompressed()) {
    return Status::FailedPrecondition("capture needs a raw audio type");
  }
  // Pre-generate the signal for the bounded case; unbounded capture
  // extends lazily per block.
  if (sample_limit_ >= 0) {
    auto generated =
        synthetic::GenerateAudio(type_, sample_limit_, pattern_, seed_);
    if (!generated.ok()) return generated.status();
    generated_ = std::move(generated).value();
  }
  const int64_t start_ns = engine()->now_ns();
  const int64_t gen = generation();
  engine()->ScheduleAt(start_ns,
                       [this, start_ns, gen] { Tick(0, start_ns, gen); });
  return Status::OK();
}

void AudioCapture::Tick(int64_t block_index, int64_t stream_start_ns,
                        int64_t gen) {
  if (state() != State::kRunning || gen != generation()) return;
  const int64_t period_ns =
      (Rational(kBlockFrames) / type_.element_rate() * Rational(1000000000))
          .Rounded();
  const int64_t ideal = stream_start_ns + block_index * period_ns;
  const int64_t first = block_index * kBlockFrames;
  if (sample_limit_ >= 0 && first >= sample_limit_) {
    Emit(out_, StreamElement::EndOfStream(block_index, ideal));
    SelfStop();
    return;
  }
  int64_t count = kBlockFrames;
  if (sample_limit_ >= 0) {
    count = std::min<int64_t>(count, sample_limit_ - first);
  }
  Result<AudioBlock> block = Status::Internal("uninitialized");
  if (generated_ != nullptr) {
    block = generated_->Samples(first, count);
  } else {
    // Unbounded capture: generate this block standalone (deterministic by
    // block index).
    auto value = synthetic::GenerateAudio(
        type_, count, pattern_,
        seed_ * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(block_index));
    if (value.ok()) block = value.value()->Samples(0, count);
  }
  if (!block.ok()) {
    AVDB_LOG(Error) << name() << ": capture failed: " << block.status();
    SelfStop();
    return;
  }
  StreamElement element;
  element.index = block_index;
  element.ideal_time_ns = ideal;
  element.audio = std::make_shared<const AudioBlock>(std::move(block).value());
  element.size_bytes = static_cast<int64_t>(element.audio->SizeBytes());
  Emit(out_, std::move(element));
  Raise(kEachBlock, block_index);
  engine()->ScheduleAt(ideal + period_ns,
                       [this, next = block_index + 1, stream_start_ns, gen] {
                         Tick(next, stream_start_ns, gen);
                       });
}

}  // namespace avdb

#include "activity/sources.h"

#include "base/logging.h"

namespace avdb {

namespace {

int64_t RateToPeriodNs(Rational rate) {
  AVDB_CHECK(rate > Rational(0)) << "element rate must be positive";
  return (Rational(1000000000) / rate).Rounded();
}

}  // namespace

// ------------------------------------------------------------ VideoSource --

VideoSource::VideoSource(const std::string& name, ActivityLocation location,
                         ActivityEnv env, SourceOptions options,
                         bool emit_encoded)
    : MediaActivity(name, location, env),
      options_(std::move(options)),
      emit_encoded_(emit_encoded),
      decode_unit_(name + ".decoder") {
  out_ = DeclarePort(kPortOut, PortDirection::kOut,
                     MediaDataType::RawVideo(0, 0, 8, Rational(1)));
  DeclareEvent(kEachFrame);
  DeclareEvent(kLastFrame);
  DeclareEvent(kFaultRetry);
  DeclareEvent(kFrameDropped);
  DeclareEvent(kQualityChanged);
  DeclareEvent(kStreamPaused);
  DeclareEvent(kStreamAborted);
}

std::shared_ptr<VideoSource> VideoSource::Create(const std::string& name,
                                                 ActivityLocation location,
                                                 ActivityEnv env,
                                                 SourceOptions options,
                                                 bool emit_encoded) {
  return std::shared_ptr<VideoSource>(
      new VideoSource(name, location, env, std::move(options), emit_encoded));
}

Status VideoSource::DoBind(MediaValuePtr value, const std::string& port_name) {
  if (port_name != kPortOut) {
    return Status::NotFound("port " + name() + "." + port_name);
  }
  if (state() == State::kRunning) {
    return Status::FailedPrecondition("cannot bind while running");
  }
  auto video = std::dynamic_pointer_cast<VideoValue>(value);
  if (video == nullptr) {
    return Status::InvalidArgument("VideoSource requires a VideoValue");
  }
  value_ = video;
  layout_value_ = video;
  encoded_ = std::dynamic_pointer_cast<EncodedVideoValue>(video);
  if (emit_encoded_ && encoded_ == nullptr) {
    return Status::InvalidArgument(
        "encoded-chunk output requires an encoded value");
  }
  // Quality fallback needs a layer-scalable representation decoded
  // internally; chunk passthrough must forward the stored bytes verbatim.
  scalable_stream_ = nullptr;
  nominal_layers_ = 0;
  active_layers_ = 0;
  if (!emit_encoded_) {
    if (auto view = std::dynamic_pointer_cast<ScalableVideoView>(video)) {
      scalable_stream_ = &view->encoded();
      nominal_layers_ = active_layers_ = view->layers();
    } else if (encoded_ != nullptr &&
               encoded_->encoded().family == EncodingFamily::kScalable) {
      scalable_stream_ = &encoded_->encoded();
      nominal_layers_ = active_layers_ =
          encoded_->encoded().params.layer_count;
    }
  }
  // §4.3: configure the port type from the bound representation.
  if (emit_encoded_) {
    out_->set_data_type(encoded_->type());
  } else {
    out_->set_data_type(MediaDataType::RawVideo(
        video->width(), video->height(), video->depth_bits(),
        video->frame_rate()));
  }
  next_index_ = 0;
  return Status::OK();
}

Status VideoSource::DoCue(WorldTime t) {
  if (state() == State::kRunning) {
    return Status::FailedPrecondition("cannot cue while running");
  }
  if (value_ == nullptr) {
    return Status::FailedPrecondition("cue before bind on " + name());
  }
  const int64_t index = (t.seconds() * value_->frame_rate()).Floor();
  if (index < 0 || index >= value_->FrameCount()) {
    return Status::InvalidArgument("cue time outside bound value");
  }
  next_index_ = index;
  return Status::OK();
}

Status VideoSource::ConfigureSync(SyncController* sync,
                                  const std::string& track) {
  options_.sync = sync;
  options_.sync_track = track;
  return Status::OK();
}

int64_t VideoSource::PeriodNs() const {
  return RateToPeriodNs(value_->frame_rate());
}

int64_t VideoSource::FrameBytes(int64_t i) const {
  // Representation-aware: encoded values report their chunk sizes, layer
  // views their restricted subset, raw values their frame size.
  return value_->StoredFrameBytes(i);
}

int64_t VideoSource::FrameOffset(int64_t i) const {
  // Offsets come from the *bound* value's layout: a degraded view reads a
  // prefix of each stored frame, it does not repack the blob.
  int64_t offset = 0;
  for (int64_t f = 0; f < i; ++f) offset += layout_value_->StoredFrameBytes(f);
  return offset;
}

bool VideoSource::ApplyQualityStep(int delta) {
  if (scalable_stream_ == nullptr || nominal_layers_ == 0) return false;
  const int target = active_layers_ + delta;
  if (target < 1 || target > nominal_layers_) return false;
  if (target == nominal_layers_) {
    // Fully recovered: the bound value is exactly the nominal view.
    value_ = layout_value_;
    active_layers_ = target;
    return true;
  }
  auto view = ScalableVideoView::Create(*scalable_stream_, target);
  if (!view.ok()) return false;
  value_ = std::move(view).value();
  active_layers_ = target;
  return true;
}

void VideoSource::DropElement(int64_t index, int64_t stream_start_ns,
                              const std::string& why) {
  if (options_.degrade != nullptr) {
    options_.degrade->AcknowledgeAction(DegradeAction::kDropFrame,
                                        engine()->now_ns());
  }
  Raise(kFrameDropped, index, why);
  next_index_ = index + 1;
  ScheduleTick(next_index_, stream_start_ns);
}

Status VideoSource::OnStart() {
  if (value_ == nullptr) {
    return Status::FailedPrecondition("start before bind on " + name());
  }
  if (value_->FrameCount() == 0) {
    return Status::FailedPrecondition("bound video value is empty");
  }
  // Stream epoch: element `next_index_` presents after preroll+offset.
  const int64_t base = next_index_;
  const int64_t stream_start_ns =
      engine()->now_ns() + VirtualClock::ToNs(options_.preroll) +
      VirtualClock::ToNs(options_.start_offset) - base * PeriodNs();
  ScheduleTick(next_index_, stream_start_ns);
  return Status::OK();
}

void VideoSource::ScheduleTick(int64_t index, int64_t stream_start_ns) {
  const int64_t ideal = stream_start_ns + index * PeriodNs();
  const int64_t at = ideal - VirtualClock::ToNs(options_.preroll);
  const int64_t gen = generation();
  ScheduleOwned(at, [this, index, stream_start_ns, gen] {
    Tick(index, stream_start_ns, gen);
  });
}

void VideoSource::Tick(int64_t index, int64_t stream_start_ns, int64_t gen) {
  if (state() != State::kRunning || gen != generation()) return;

  // Resynchronization: a lagging track drops frames to catch up (§3.3).
  if (options_.sync != nullptr && !options_.sync_track.empty()) {
    auto skip = options_.sync->RecommendSkip(options_.sync_track, PeriodNs());
    if (skip.ok() && skip.value() > 0) {
      index += skip.value();
    }
  }
  if (index >= value_->FrameCount()) {
    const int64_t ideal = stream_start_ns + index * PeriodNs();
    Emit(out_, StreamElement::EndOfStream(index, ideal));
    Raise(kLastFrame, value_->FrameCount() - 1);
    SelfStop();
    return;
  }

  // Graceful-degradation ladder: act on deadline pressure *before* paying
  // any fetch cost for this frame.
  const int64_t now_ns = engine()->now_ns();
  if (options_.degrade != nullptr) {
    const DegradeAction action = options_.degrade->Recommend(now_ns);
    switch (action) {
      case DegradeAction::kAbort: {
        options_.degrade->AcknowledgeAction(action, now_ns);
        Raise(kStreamAborted, index,
              std::to_string(options_.degrade->ConsecutiveFaults()) +
                  " consecutive faults");
        Emit(out_, StreamElement::EndOfStream(
                       index, stream_start_ns + index * PeriodNs()));
        SelfStop();
        return;
      }
      case DegradeAction::kPause: {
        // Re-anchor the stream epoch so this frame presents one preroll
        // from now: downstream lateness restarts from zero instead of
        // compounding frame after frame.
        const int64_t new_start = now_ns +
                                  VirtualClock::ToNs(options_.preroll) -
                                  index * PeriodNs();
        options_.degrade->AcknowledgeAction(action, now_ns);
        Raise(kStreamPaused, index,
              "epoch shifted " +
                  std::to_string((new_start - stream_start_ns) / 1000000) +
                  " ms");
        ScheduleTick(index, new_start);
        return;
      }
      case DegradeAction::kLowerQuality:
        if (ApplyQualityStep(-1)) {
          options_.degrade->AcknowledgeAction(action, now_ns);
          Raise(kQualityChanged, index,
                "layers " + std::to_string(active_layers_ + 1) + "->" +
                    std::to_string(active_layers_));
        } else {
          // Nothing left to shed but the frame itself.
          DropElement(index, stream_start_ns, "no lower quality available");
          return;
        }
        break;
      case DegradeAction::kRaiseQuality:
        if (ApplyQualityStep(+1)) {
          options_.degrade->AcknowledgeAction(action, now_ns);
          Raise(kQualityChanged, index,
                "layers " + std::to_string(active_layers_ - 1) + "->" +
                    std::to_string(active_layers_));
        }
        break;
      case DegradeAction::kDropFrame:
        DropElement(index, stream_start_ns, "deadline pressure");
        return;
      case DegradeAction::kNone:
        break;
    }
    // Proactive shedding: a fetch that would queue behind this much device
    // backlog cannot present on time, so skip it without paying the cost.
    if (options_.device_queue != nullptr) {
      const int64_t backlog = options_.device_queue->BacklogNs(now_ns);
      if (backlog > options_.degrade->policy().pause_threshold_ns) {
        DropElement(index, stream_start_ns,
                    "device backlog " + std::to_string(backlog / 1000000) +
                        " ms");
        return;
      }
    }
  }

  const int64_t ideal = stream_start_ns + index * PeriodNs();
  int64_t ready_ns = engine()->now_ns();

  // Storage fetch: pay modeled device time, serialized on the device arm.
  // A routed fetch (options_.fetcher) additionally carries the element's
  // remaining presentation budget so every hop below can cancel doomed work.
  if (options_.fetcher || options_.store != nullptr) {
    const int64_t budget_ns = ideal +
                              VirtualClock::ToNs(options_.deadline_slack) -
                              ready_ns;
    auto read = options_.fetcher
                    ? options_.fetcher(options_.blob_name, FrameOffset(index),
                                       FrameBytes(index), budget_ns)
                    : options_.store->ReadRange(options_.blob_name,
                                                FrameOffset(index),
                                                FrameBytes(index));
    if (!read.ok()) {
      // The store's retry policy already absorbed what it could; this
      // failure is terminal for the *frame*. With degradation the stream
      // sheds it and carries on; without, it stops (pre-fault-model
      // behavior).
      if (options_.degrade != nullptr) {
        options_.degrade->ReportFault(now_ns);
        DropElement(index, stream_start_ns,
                    "fetch failed: " + read.status().message());
        return;
      }
      AVDB_LOG(Error) << name() << ": read failed: " << read.status();
      SelfStop();
      return;
    }
    if (read.value().retries > 0) {
      Raise(kFaultRetry, index,
            std::to_string(read.value().retries) + " retries absorbed");
    }
    if (options_.degrade != nullptr) {
      options_.degrade->ReportFaultRecovered();
    }
    const int64_t service_ns =
        VirtualClock::ToNs(read.value().duration);
    if (options_.device_queue != nullptr) {
      ready_ns = options_.device_queue->Submit(ready_ns, service_ns);
    } else {
      ready_ns += service_ns;
    }
  }

  StreamElement element;
  element.index = index;
  element.ideal_time_ns = ideal;
  element.size_bytes = FrameBytes(index);

  if (emit_encoded_) {
    const auto& ef = encoded_->encoded().frames[static_cast<size_t>(index)];
    element.encoded = std::make_shared<Buffer>(ef.data);
    element.encoded_is_intra = ef.is_intra;
  } else {
    auto frame = value_->Frame(index);
    if (!frame.ok()) {
      if (options_.degrade != nullptr) {
        options_.degrade->ReportFault(now_ns);
        DropElement(index, stream_start_ns,
                    "decode failed: " + frame.status().message());
        return;
      }
      AVDB_LOG(Error) << name() << ": decode failed: " << frame.status();
      SelfStop();
      return;
    }
    if (value_->type().IsCompressed()) {
      // Internal decode of a compressed representation costs time on this
      // source's decode unit.
      const int64_t pixels =
          static_cast<int64_t>(value_->width()) * value_->height();
      ready_ns = decode_unit_.Submit(ready_ns,
                                     options_.costs.VideoDecodeNs(pixels));
    }
    element.frame =
        std::make_shared<const VideoFrame>(std::move(frame).value());
    element.size_bytes = static_cast<int64_t>(element.frame->SizeBytes());
  }

  const int64_t this_index = index;
  ScheduleOwned(ready_ns, [this, element = std::move(element),
                                  this_index, gen] {
    if (state() != State::kRunning || gen != generation()) return;
    Emit(out_, element);
    Raise(kEachFrame, this_index);
  });

  next_index_ = index + 1;
  ScheduleTick(next_index_, stream_start_ns);
}

// ------------------------------------------------------------ AudioSource --

AudioSource::AudioSource(const std::string& name, ActivityLocation location,
                         ActivityEnv env, SourceOptions options)
    : MediaActivity(name, location, env),
      options_(std::move(options)),
      decode_unit_(name + ".decoder") {
  out_ = DeclarePort(kPortOut, PortDirection::kOut,
                     MediaDataType::RawAudio(1, Rational(8000)));
  DeclareEvent(kEachBlock);
  DeclareEvent(kLastBlock);
  DeclareEvent(kFaultRetry);
  DeclareEvent(kBlockDropped);
  DeclareEvent(kStreamAborted);
}

std::shared_ptr<AudioSource> AudioSource::Create(const std::string& name,
                                                 ActivityLocation location,
                                                 ActivityEnv env,
                                                 SourceOptions options) {
  return std::shared_ptr<AudioSource>(
      new AudioSource(name, location, env, std::move(options)));
}

Status AudioSource::DoBind(MediaValuePtr value, const std::string& port_name) {
  if (port_name != kPortOut) {
    return Status::NotFound("port " + name() + "." + port_name);
  }
  if (state() == State::kRunning) {
    return Status::FailedPrecondition("cannot bind while running");
  }
  auto audio = std::dynamic_pointer_cast<AudioValue>(value);
  if (audio == nullptr) {
    return Status::InvalidArgument("AudioSource requires an AudioValue");
  }
  value_ = audio;
  out_->set_data_type(
      MediaDataType::RawAudio(audio->channels(), audio->sample_rate()));
  next_block_ = 0;
  return Status::OK();
}

Status AudioSource::DoCue(WorldTime t) {
  if (state() == State::kRunning) {
    return Status::FailedPrecondition("cannot cue while running");
  }
  if (value_ == nullptr) {
    return Status::FailedPrecondition("cue before bind on " + name());
  }
  const int64_t sample = (t.seconds() * value_->sample_rate()).Floor();
  if (sample < 0 || sample >= value_->SampleCount()) {
    return Status::InvalidArgument("cue time outside bound value");
  }
  next_block_ = sample / kBlockFrames;
  return Status::OK();
}

Status AudioSource::ConfigureSync(SyncController* sync,
                                  const std::string& track) {
  options_.sync = sync;
  options_.sync_track = track;
  return Status::OK();
}

int64_t AudioSource::BlockCount() const {
  return (value_->SampleCount() + kBlockFrames - 1) / kBlockFrames;
}

int64_t AudioSource::PeriodNs() const {
  return (Rational(kBlockFrames) / value_->sample_rate() *
          Rational(1000000000))
      .Rounded();
}

Status AudioSource::OnStart() {
  if (value_ == nullptr) {
    return Status::FailedPrecondition("start before bind on " + name());
  }
  if (value_->SampleCount() == 0) {
    return Status::FailedPrecondition("bound audio value is empty");
  }
  const int64_t base = next_block_;
  const int64_t stream_start_ns =
      engine()->now_ns() + VirtualClock::ToNs(options_.preroll) +
      VirtualClock::ToNs(options_.start_offset) - base * PeriodNs();
  const int64_t gen = generation();
  ScheduleOwned(
      stream_start_ns + base * PeriodNs() -
          VirtualClock::ToNs(options_.preroll),
      [this, base, stream_start_ns, gen] { Tick(base, stream_start_ns, gen); });
  return Status::OK();
}

void AudioSource::Tick(int64_t block_index, int64_t stream_start_ns,
                       int64_t gen) {
  if (state() != State::kRunning || gen != generation()) return;

  if (options_.sync != nullptr && !options_.sync_track.empty()) {
    auto skip = options_.sync->RecommendSkip(options_.sync_track, PeriodNs());
    if (skip.ok() && skip.value() > 0) block_index += skip.value();
  }
  if (block_index >= BlockCount()) {
    const int64_t ideal = stream_start_ns + block_index * PeriodNs();
    Emit(out_, StreamElement::EndOfStream(block_index, ideal));
    Raise(kLastBlock, BlockCount() - 1);
    SelfStop();
    return;
  }

  const int64_t first = block_index * kBlockFrames;
  const int64_t count =
      std::min<int64_t>(kBlockFrames, value_->SampleCount() - first);
  auto block = value_->Samples(first, count);
  if (!block.ok()) {
    AVDB_LOG(Error) << name() << ": sample read failed: " << block.status();
    SelfStop();
    return;
  }

  int64_t ready_ns = engine()->now_ns();
  const int64_t payload_bytes = static_cast<int64_t>(block.value().SizeBytes());
  if (options_.fetcher || options_.store != nullptr) {
    // Approximate layout: fixed-rate bytes at the value's stored rate.
    const int64_t stored_bytes_per_block =
        value_->StoredBytes() / std::max<int64_t>(1, BlockCount());
    const int64_t budget_ns = stream_start_ns + block_index * PeriodNs() +
                              VirtualClock::ToNs(options_.deadline_slack) -
                              ready_ns;
    auto read = options_.fetcher
                    ? options_.fetcher(options_.blob_name,
                                       block_index * stored_bytes_per_block,
                                       stored_bytes_per_block, budget_ns)
                    : options_.store->ReadRange(
                          options_.blob_name,
                          block_index * stored_bytes_per_block,
                          stored_bytes_per_block);
    if (!read.ok()) {
      if (options_.degrade != nullptr) {
        const int64_t now_ns = engine()->now_ns();
        options_.degrade->ReportFault(now_ns);
        if (options_.degrade->Recommend(now_ns) == DegradeAction::kAbort) {
          options_.degrade->AcknowledgeAction(DegradeAction::kAbort, now_ns);
          Raise(kStreamAborted, block_index,
                std::to_string(options_.degrade->ConsecutiveFaults()) +
                    " consecutive faults");
          Emit(out_, StreamElement::EndOfStream(
                         block_index,
                         stream_start_ns + block_index * PeriodNs()));
          SelfStop();
          return;
        }
        // One block of silence beats a stalled stream; carry on.
        options_.degrade->AcknowledgeAction(DegradeAction::kDropFrame,
                                            now_ns);
        Raise(kBlockDropped, block_index,
              "fetch failed: " + read.status().message());
        next_block_ = block_index + 1;
        const int64_t retry_at = stream_start_ns + next_block_ * PeriodNs() -
                                 VirtualClock::ToNs(options_.preroll);
        ScheduleOwned(retry_at,
                             [this, next = next_block_, stream_start_ns, gen] {
                               Tick(next, stream_start_ns, gen);
                             });
        return;
      }
      AVDB_LOG(Error) << name() << ": read failed: " << read.status();
      SelfStop();
      return;
    }
    if (read.value().retries > 0) {
      Raise(kFaultRetry, block_index,
            std::to_string(read.value().retries) + " retries absorbed");
    }
    if (options_.degrade != nullptr) {
      options_.degrade->ReportFaultRecovered();
    }
    const int64_t service_ns = VirtualClock::ToNs(read.value().duration);
    ready_ns = options_.device_queue != nullptr
                   ? options_.device_queue->Submit(ready_ns, service_ns)
                   : ready_ns + service_ns;
  }
  if (value_->type().IsCompressed()) {
    ready_ns = decode_unit_.Submit(
        ready_ns, options_.costs.AudioDecodeNs(count * value_->channels()));
  }

  StreamElement element;
  element.index = block_index;
  element.ideal_time_ns = stream_start_ns + block_index * PeriodNs();
  element.size_bytes = payload_bytes;
  element.audio =
      std::make_shared<const AudioBlock>(std::move(block).value());

  ScheduleOwned(ready_ns,
                       [this, element = std::move(element), block_index, gen] {
                         if (state() != State::kRunning ||
                             gen != generation()) {
                           return;
                         }
                         Emit(out_, element);
                         Raise(kEachBlock, block_index);
                       });

  next_block_ = block_index + 1;
  const int64_t next_at = stream_start_ns + next_block_ * PeriodNs() -
                          VirtualClock::ToNs(options_.preroll);
  ScheduleOwned(next_at, [this, next = next_block_, stream_start_ns,
                                 gen] { Tick(next, stream_start_ns, gen); });
}

// ------------------------------------------------------------- TextSource --

TextSource::TextSource(const std::string& name, ActivityLocation location,
                       ActivityEnv env, SourceOptions options)
    : MediaActivity(name, location, env), options_(std::move(options)) {
  out_ = DeclarePort(kPortOut, PortDirection::kOut,
                     MediaDataType::Text(Rational(30)));
}

std::shared_ptr<TextSource> TextSource::Create(const std::string& name,
                                               ActivityLocation location,
                                               ActivityEnv env,
                                               SourceOptions options) {
  return std::shared_ptr<TextSource>(
      new TextSource(name, location, env, std::move(options)));
}

Status TextSource::DoBind(MediaValuePtr value, const std::string& port_name) {
  if (port_name != kPortOut) {
    return Status::NotFound("port " + name() + "." + port_name);
  }
  auto text = std::dynamic_pointer_cast<TextStreamValue>(value);
  if (text == nullptr) {
    return Status::InvalidArgument("TextSource requires a TextStreamValue");
  }
  value_ = text;
  out_->set_data_type(text->type());
  next_span_ = 0;
  return Status::OK();
}

Status TextSource::DoCue(WorldTime t) {
  if (value_ == nullptr) {
    return Status::FailedPrecondition("cue before bind on " + name());
  }
  const int64_t element = (t.seconds() * value_->ElementRate()).Floor();
  next_span_ = 0;
  while (next_span_ < value_->spans().size() &&
         value_->spans()[next_span_].first_element +
                 value_->spans()[next_span_].element_count <=
             element) {
    ++next_span_;
  }
  return Status::OK();
}

Status TextSource::ConfigureSync(SyncController* sync,
                                 const std::string& track) {
  options_.sync = sync;
  options_.sync_track = track;
  return Status::OK();
}

Status TextSource::OnStart() {
  if (value_ == nullptr) {
    return Status::FailedPrecondition("start before bind on " + name());
  }
  const int64_t stream_start_ns = engine()->now_ns() +
                                  VirtualClock::ToNs(options_.preroll) +
                                  VirtualClock::ToNs(options_.start_offset);
  const int64_t period_ns = RateToPeriodNs(value_->ElementRate());
  const int64_t gen = generation();
  // Schedule every remaining span up front (captions are sparse).
  for (size_t s = next_span_; s < value_->spans().size(); ++s) {
    const TextSpan& span = value_->spans()[s];
    const int64_t ideal = stream_start_ns + span.first_element * period_ns;
    StreamElement element;
    element.index = static_cast<int64_t>(s);
    element.ideal_time_ns = ideal;
    element.text = std::make_shared<const std::string>(span.text);
    element.size_bytes = static_cast<int64_t>(span.text.size());
    ScheduleOwned(ideal - VirtualClock::ToNs(options_.preroll),
                         [this, element = std::move(element), gen] {
                           if (state() != State::kRunning ||
                               gen != generation()) {
                             return;
                           }
                           Emit(out_, element);
                         });
  }
  // End of stream after the last span expires.
  const int64_t end_ideal =
      stream_start_ns + value_->ElementCount() * period_ns;
  ScheduleOwned(end_ideal, [this, gen, end_ideal] {
    if (state() != State::kRunning || gen != generation()) return;
    Emit(out_, StreamElement::EndOfStream(
                   static_cast<int64_t>(value_->spans().size()), end_ideal));
    SelfStop();
  });
  return Status::OK();
}

// --------------------------------------------------------- VideoDigitizer --

VideoDigitizer::VideoDigitizer(const std::string& name,
                               ActivityLocation location, ActivityEnv env,
                               MediaDataType type,
                               synthetic::VideoPattern pattern,
                               int64_t frame_limit, uint64_t seed)
    : MediaActivity(name, location, env),
      type_(std::move(type)),
      pattern_(pattern),
      frame_limit_(frame_limit),
      seed_(seed) {
  out_ = DeclarePort(kPortOut, PortDirection::kOut, type_);
  DeclareEvent(kEachFrame);
}

std::shared_ptr<VideoDigitizer> VideoDigitizer::Create(
    const std::string& name, ActivityLocation location, ActivityEnv env,
    MediaDataType type, synthetic::VideoPattern pattern, int64_t frame_limit,
    uint64_t seed) {
  return std::shared_ptr<VideoDigitizer>(new VideoDigitizer(
      name, location, env, std::move(type), pattern, frame_limit, seed));
}

Status VideoDigitizer::OnStart() {
  if (type_.kind() != MediaKind::kVideo || type_.IsCompressed()) {
    return Status::FailedPrecondition("digitizer needs a raw video type");
  }
  const int64_t stream_start_ns = engine()->now_ns();
  const int64_t gen = generation();
  ScheduleOwned(stream_start_ns, [this, stream_start_ns, gen] {
    Tick(0, stream_start_ns, gen);
  });
  return Status::OK();
}

void VideoDigitizer::Tick(int64_t index, int64_t stream_start_ns,
                          int64_t gen) {
  if (state() != State::kRunning || gen != generation()) return;
  const int64_t period_ns = RateToPeriodNs(type_.element_rate());
  const int64_t ideal = stream_start_ns + index * period_ns;
  if (frame_limit_ >= 0 && index >= frame_limit_) {
    Emit(out_, StreamElement::EndOfStream(index, ideal));
    SelfStop();
    return;
  }
  StreamElement element;
  element.index = index;
  element.ideal_time_ns = ideal;
  element.frame = std::make_shared<const VideoFrame>(
      synthetic::GeneratePatternFrame(type_.width(), type_.height(),
                                      type_.depth_bits(), index, pattern_,
                                      seed_));
  element.size_bytes = static_cast<int64_t>(element.frame->SizeBytes());
  Emit(out_, std::move(element));
  Raise(kEachFrame, index);
  ScheduleOwned(ideal + period_ns,
                       [this, next = index + 1, stream_start_ns, gen] {
                         Tick(next, stream_start_ns, gen);
                       });
}

// ----------------------------------------------------------- AudioCapture --

AudioCapture::AudioCapture(const std::string& name, ActivityLocation location,
                           ActivityEnv env, MediaDataType type,
                           synthetic::AudioPattern pattern,
                           int64_t sample_limit, uint64_t seed)
    : MediaActivity(name, location, env),
      type_(std::move(type)),
      pattern_(pattern),
      sample_limit_(sample_limit),
      seed_(seed) {
  out_ = DeclarePort(kPortOut, PortDirection::kOut, type_);
  DeclareEvent(kEachBlock);
}

std::shared_ptr<AudioCapture> AudioCapture::Create(
    const std::string& name, ActivityLocation location, ActivityEnv env,
    MediaDataType type, synthetic::AudioPattern pattern, int64_t sample_limit,
    uint64_t seed) {
  return std::shared_ptr<AudioCapture>(new AudioCapture(
      name, location, env, std::move(type), pattern, sample_limit, seed));
}

Status AudioCapture::OnStart() {
  if (type_.kind() != MediaKind::kAudio || type_.IsCompressed()) {
    return Status::FailedPrecondition("capture needs a raw audio type");
  }
  // Pre-generate the signal for the bounded case; unbounded capture
  // extends lazily per block.
  if (sample_limit_ >= 0) {
    auto generated =
        synthetic::GenerateAudio(type_, sample_limit_, pattern_, seed_);
    if (!generated.ok()) return generated.status();
    generated_ = std::move(generated).value();
  }
  const int64_t start_ns = engine()->now_ns();
  const int64_t gen = generation();
  ScheduleOwned(start_ns,
                       [this, start_ns, gen] { Tick(0, start_ns, gen); });
  return Status::OK();
}

void AudioCapture::Tick(int64_t block_index, int64_t stream_start_ns,
                        int64_t gen) {
  if (state() != State::kRunning || gen != generation()) return;
  const int64_t period_ns =
      (Rational(kBlockFrames) / type_.element_rate() * Rational(1000000000))
          .Rounded();
  const int64_t ideal = stream_start_ns + block_index * period_ns;
  const int64_t first = block_index * kBlockFrames;
  if (sample_limit_ >= 0 && first >= sample_limit_) {
    Emit(out_, StreamElement::EndOfStream(block_index, ideal));
    SelfStop();
    return;
  }
  int64_t count = kBlockFrames;
  if (sample_limit_ >= 0) {
    count = std::min<int64_t>(count, sample_limit_ - first);
  }
  Result<AudioBlock> block = Status::Internal("uninitialized");
  if (generated_ != nullptr) {
    block = generated_->Samples(first, count);
  } else {
    // Unbounded capture: generate this block standalone (deterministic by
    // block index).
    auto value = synthetic::GenerateAudio(
        type_, count, pattern_,
        seed_ * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(block_index));
    if (value.ok()) block = value.value()->Samples(0, count);
  }
  if (!block.ok()) {
    AVDB_LOG(Error) << name() << ": capture failed: " << block.status();
    SelfStop();
    return;
  }
  StreamElement element;
  element.index = block_index;
  element.ideal_time_ns = ideal;
  element.audio = std::make_shared<const AudioBlock>(std::move(block).value());
  element.size_bytes = static_cast<int64_t>(element.audio->SizeBytes());
  Emit(out_, std::move(element));
  Raise(kEachBlock, block_index);
  ScheduleOwned(ideal + period_ns,
                       [this, next = block_index + 1, stream_start_ns, gen] {
                         Tick(next, stream_start_ns, gen);
                       });
}

}  // namespace avdb

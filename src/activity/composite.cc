#include "activity/composite.h"

#include <sstream>

namespace avdb {

CompositeActivity::CompositeActivity(const std::string& name,
                                     ActivityLocation location,
                                     ActivityEnv env)
    : MediaActivity(name, location, env), children_(env) {}

std::shared_ptr<CompositeActivity> CompositeActivity::Create(
    const std::string& name, ActivityLocation location, ActivityEnv env) {
  return std::shared_ptr<CompositeActivity>(
      new CompositeActivity(name, location, env));
}

Status CompositeActivity::Install(MediaActivityPtr child) {
  if (child == nullptr) return Status::InvalidArgument("null child");
  if (child->location() != location()) {
    return Status::InvalidArgument(
        "child " + child->name() + " located at " +
        std::string(ActivityLocationName(child->location())) +
        " cannot join composite at " +
        std::string(ActivityLocationName(location())));
  }
  return children_.Add(std::move(child));
}

Status CompositeActivity::ExposePort(const std::string& child_name,
                                     const std::string& child_port,
                                     const std::string& as_name) {
  auto child = children_.Find(child_name);
  if (!child.ok()) return child.status();
  auto port = child.value()->FindPort(child_port);
  if (!port.ok()) return port.status();
  if (exposed_.count(as_name) > 0) {
    return Status::AlreadyExists("exposed port exists: " + name() + "." +
                                 as_name);
  }
  if (port.value()->IsConnected()) {
    return Status::FailedPrecondition("port already connected internally: " +
                                      port.value()->FullName());
  }
  exposed_[as_name] = {child.value(), child_port};
  return Status::OK();
}

Result<Connection*> CompositeActivity::ConnectChildren(
    const std::string& from_child, const std::string& out_port,
    const std::string& to_child, const std::string& in_port) {
  auto from = children_.Find(from_child);
  if (!from.ok()) return from.status();
  auto to = children_.Find(to_child);
  if (!to.ok()) return to.status();
  return children_.Connect(from.value(), out_port, to.value(), in_port);
}

Result<Port*> CompositeActivity::FindPort(const std::string& name) const {
  auto it = exposed_.find(name);
  if (it != exposed_.end()) {
    return it->second.first->FindPort(it->second.second);
  }
  return MediaActivity::FindPort(name);
}

ActivityKind CompositeActivity::Kind() const {
  bool has_in = false;
  bool has_out = false;
  for (const auto& [as_name, target] : exposed_) {
    auto port = target.first->FindPort(target.second);
    if (!port.ok()) continue;
    if (port.value()->direction() == PortDirection::kIn) has_in = true;
    if (port.value()->direction() == PortDirection::kOut) has_out = true;
  }
  if (has_in && has_out) return ActivityKind::kTransformer;
  if (has_out) return ActivityKind::kSource;
  if (has_in) return ActivityKind::kSink;
  return ActivityKind::kOther;
}

Status CompositeActivity::InstallSynced(MediaActivityPtr child,
                                        const std::string& track,
                                        bool master) {
  MediaActivity* raw = child.get();
  AVDB_RETURN_IF_ERROR(Install(std::move(child)));
  AVDB_RETURN_IF_ERROR(sync_.AddTrack(track, master));
  AVDB_RETURN_IF_ERROR(raw->ConfigureSync(&sync_, track));
  track_of_.emplace_back(raw, track);
  // Expose the child's boundary port under the track name.
  const auto kind = raw->Kind();
  if (kind == ActivityKind::kSource) {
    auto outs = raw->OutputPorts();
    if (outs.size() != 1) {
      return Status::InvalidArgument("synced source child must have exactly "
                                     "one output port: " + raw->name());
    }
    return ExposePort(raw->name(), outs[0]->name(), track + "_out");
  }
  if (kind == ActivityKind::kSink) {
    auto ins = raw->InputPorts();
    if (ins.size() != 1) {
      return Status::InvalidArgument("synced sink child must have exactly "
                                     "one input port: " + raw->name());
    }
    return ExposePort(raw->name(), ins[0]->name(), track + "_in");
  }
  return Status::InvalidArgument(
      "synced child must be a source or a sink: " + raw->name());
}

Status CompositeActivity::DoBind(MediaValuePtr value,
                               const std::string& port_name) {
  auto it = exposed_.find(port_name);
  if (it == exposed_.end()) {
    return Status::NotFound("exposed port " + name() + "." + port_name);
  }
  return it->second.first->Bind(std::move(value), it->second.second);
}

Status CompositeActivity::DoCue(WorldTime t) {
  for (const auto& child : children_.activities()) {
    if (child->Kind() == ActivityKind::kSource) {
      AVDB_RETURN_IF_ERROR(child->Cue(t));
    }
  }
  return Status::OK();
}

Status CompositeActivity::OnStart() { return children_.StartAll(); }

Status CompositeActivity::OnStop() { return children_.StopAll(); }

Status CompositeActivity::RepointSync(SyncController* sync) {
  if (sync == nullptr) return Status::InvalidArgument("null sync domain");
  for (const auto& [child, track] : track_of_) {
    AVDB_RETURN_IF_ERROR(child->ConfigureSync(sync, track));
  }
  return Status::OK();
}

std::string CompositeActivity::Describe() const {
  std::ostringstream os;
  os << name() << " [composite " << ActivityKindName(Kind()) << " @ "
     << ActivityLocationName(location()) << "]";
  for (const auto& [as_name, target] : exposed_) {
    os << " " << as_name << "->" << target.first->name() << "."
       << target.second;
  }
  os << " {";
  for (const auto& child : children()) {
    os << " " << child->name();
  }
  os << " }";
  return os.str();
}

std::shared_ptr<MultiSource> MultiSource::Create(const std::string& name,
                                                 ActivityLocation location,
                                                 ActivityEnv env) {
  return std::shared_ptr<MultiSource>(new MultiSource(name, location, env));
}

Status MultiSource::UseSyncDomain(SyncController* sync) {
  return RepointSync(sync);
}

std::shared_ptr<MultiSink> MultiSink::Create(const std::string& name,
                                             ActivityLocation location,
                                             ActivityEnv env) {
  return std::shared_ptr<MultiSink>(new MultiSink(name, location, env));
}

}  // namespace avdb

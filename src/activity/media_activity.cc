#include "activity/media_activity.h"

#include <algorithm>

#include "activity/graph.h"
#include "base/logging.h"

namespace avdb {

std::string_view ActivityLocationName(ActivityLocation loc) {
  switch (loc) {
    case ActivityLocation::kDatabase:
      return "database";
    case ActivityLocation::kClient:
      return "client";
  }
  return "unknown";
}

std::string_view ActivityKindName(ActivityKind kind) {
  switch (kind) {
    case ActivityKind::kSource:
      return "source";
    case ActivityKind::kTransformer:
      return "transformer";
    case ActivityKind::kSink:
      return "sink";
    case ActivityKind::kOther:
      return "other";
  }
  return "unknown";
}

std::string_view PortDirectionName(PortDirection d) {
  return d == PortDirection::kIn ? "in" : "out";
}

std::string Port::FullName() const {
  return owner_->name() + "." + name_;
}

Result<Port*> MediaActivity::FindPort(const std::string& name) const {
  for (const auto& p : ports_) {
    if (p->name() == name) return p.get();
  }
  return Status::NotFound("port " + name_ + "." + name);
}

std::vector<Port*> MediaActivity::InputPorts() const {
  std::vector<Port*> out;
  for (const auto& p : ports_) {
    if (p->direction() == PortDirection::kIn) out.push_back(p.get());
  }
  return out;
}

std::vector<Port*> MediaActivity::OutputPorts() const {
  std::vector<Port*> out;
  for (const auto& p : ports_) {
    if (p->direction() == PortDirection::kOut) out.push_back(p.get());
  }
  return out;
}

ActivityKind MediaActivity::Kind() const {
  const bool has_in = !InputPorts().empty();
  const bool has_out = !OutputPorts().empty();
  if (has_in && has_out) return ActivityKind::kTransformer;
  if (has_out) return ActivityKind::kSource;
  if (has_in) return ActivityKind::kSink;
  return ActivityKind::kOther;
}

Status MediaActivity::Catch(const std::string& kind,
                            ActivityEventHandler handler) {
  bool declared = false;
  for (const auto& k : event_kinds_) {
    if (k == kind) {
      declared = true;
      break;
    }
  }
  if (!declared) {
    return Status::NotFound("activity " + name_ + " has no event " + kind);
  }
  handlers_.emplace(kind, std::move(handler));
  return Status::OK();
}

MediaActivity::MediaActivity(std::string name, ActivityLocation location,
                             ActivityEnv env)
    : name_(std::move(name)), location_(location), env_(env) {
  if (env_.metrics != nullptr) {
    elements_counter_ =
        env_.metrics->GetCounter("avdb_activity_elements_emitted_total",
                                 "stream elements sent through Emit");
    emit_bytes_counter_ = env_.metrics->GetCounter(
        "avdb_activity_emit_bytes_total", "payload bytes sent through Emit");
    events_counter_ = env_.metrics->GetCounter(
        "avdb_activity_events_total", "activity events raised to handlers");
  }
}

Status MediaActivity::Bind(MediaValuePtr value, const std::string& port_name) {
  int64_t span = 0;
  if (env_.tracer != nullptr) {
    span = env_.tracer->BeginSpan("activity", "bind", name_, port_name);
  }
  const Status status = DoBind(std::move(value), port_name);
  if (env_.tracer != nullptr) {
    env_.tracer->EndSpan(span, status.ok() ? "ok" : status.message());
  }
  return status;
}

Status MediaActivity::Cue(WorldTime t) {
  int64_t span = 0;
  if (env_.tracer != nullptr) {
    span = env_.tracer->BeginSpan("activity", "cue", name_,
                                  std::to_string(t.ToMillis()) + " ms");
  }
  const Status status = DoCue(t);
  if (env_.tracer != nullptr) {
    env_.tracer->EndSpan(span, status.ok() ? "ok" : status.message());
  }
  return status;
}

Status MediaActivity::DoBind(MediaValuePtr /*value*/,
                             const std::string& port_name) {
  return Status::FailedPrecondition("activity " + name_ +
                                    " does not support binding on port " +
                                    port_name);
}

Status MediaActivity::DoCue(WorldTime /*t*/) {
  return Status::FailedPrecondition("activity " + name_ +
                                    " does not support cueing");
}

Status MediaActivity::ConfigureSync(SyncController* /*sync*/,
                                    const std::string& /*track*/) {
  return Status::Unimplemented("activity " + name_ +
                               " does not participate in sync domains");
}

Status MediaActivity::Start() {
  if (state_ == State::kRunning) {
    return Status::FailedPrecondition("activity " + name_ +
                                      " already running");
  }
  AVDB_CHECK(env_.engine != nullptr)
      << "activity " << name_ << " has no event engine";
  int64_t span = 0;
  if (env_.tracer != nullptr) {
    span = env_.tracer->BeginSpan("activity", "start", name_);
  }
  state_ = State::kRunning;
  const Status status = OnStart();
  if (!status.ok()) state_ = State::kStopped;
  if (env_.tracer != nullptr) {
    env_.tracer->EndSpan(span, status.ok() ? "ok" : status.message());
    if (status.ok()) {
      run_span_id_ = env_.tracer->BeginSpan("activity", "run", name_);
    }
  }
  return status;
}

Status MediaActivity::Stop() {
  if (state_ != State::kRunning) return Status::OK();
  state_ = State::kStopped;
  ++generation_;
  CancelOwnedTimers();
  int64_t span = 0;
  if (env_.tracer != nullptr) {
    env_.tracer->EndSpan(run_span_id_);
    run_span_id_ = 0;
    span = env_.tracer->BeginSpan("activity", "stop", name_);
  }
  const Status status = OnStop();
  if (env_.tracer != nullptr) {
    env_.tracer->EndSpan(span, status.ok() ? "ok" : status.message());
  }
  return status;
}

void MediaActivity::SelfStop() {
  state_ = State::kStopped;
  CancelOwnedTimers();
  if (env_.tracer != nullptr) {
    env_.tracer->EndSpan(run_span_id_, "eos");
    run_span_id_ = 0;
    const int64_t span =
        env_.tracer->BeginSpan("activity", "stop", name_, "eos");
    env_.tracer->EndSpan(span);
  }
}

void MediaActivity::OnElement(Port* in, const StreamElement& /*element*/) {
  AVDB_LOG(Warning) << "activity " << name_ << " ignoring element on "
                    << in->name();
}

Port* MediaActivity::DeclarePort(const std::string& name,
                                 PortDirection direction,
                                 MediaDataType type) {
  ports_.push_back(
      std::make_unique<Port>(this, name, direction, std::move(type)));
  return ports_.back().get();
}

void MediaActivity::Raise(const std::string& kind, int64_t element_index) {
  Raise(kind, element_index, std::string());
}

void MediaActivity::Raise(const std::string& kind, int64_t element_index,
                          std::string detail) {
  ActivityEvent event;
  event.kind = kind;
  event.element_index = element_index;
  event.time_ns = env_.engine != nullptr ? env_.engine->now_ns() : 0;
  event.detail = std::move(detail);
  if (events_counter_ != nullptr) events_counter_->Increment();
  // Per-element kinds (EACH_FRAME, ...) would swamp the trace ring; only
  // milestone events land in the timeline.
  if (env_.tracer != nullptr && kind.rfind("EACH_", 0) != 0) {
    env_.tracer->Event("activity", "raise", name_,
                       event.detail.empty() ? kind
                                            : kind + ": " + event.detail);
  }
  auto [begin, end] = handlers_.equal_range(kind);
  for (auto it = begin; it != end; ++it) it->second(event);
}

void MediaActivity::Emit(Port* out, StreamElement element) {
  AVDB_DCHECK(out->owner() == this) << "emitting on foreign port";
  AVDB_DCHECK(out->direction() == PortDirection::kOut)
      << "emitting on input port " << out->FullName();
  Connection* connection = out->connection();
  if (connection == nullptr) {
    ++dropped_elements_;
    return;
  }
  connection->CountElement(element.size_bytes);
  int64_t delivery_ns = engine()->now_ns();
  if (connection->channel() != nullptr) {
    delivery_ns =
        connection->channel()->Transfer(delivery_ns, element.size_bytes);
  }
  if (env_.jitter != nullptr) {
    delivery_ns += env_.jitter->Sample();
  }
  if (elements_counter_ != nullptr) {
    elements_counter_->Increment();
    emit_bytes_counter_->Increment(element.size_bytes);
  }
  if (env_.tracer != nullptr && env_.tracer->capture_deliveries()) {
    env_.tracer->EventAt(delivery_ns, "activity", "deliver", out->FullName(),
                         std::to_string(element.size_bytes) + " B");
  }
  MediaActivity* receiver = connection->to()->owner();
  Port* in = connection->to();
  const int64_t receiver_generation = receiver->generation_;
  // The delivery belongs to the *receiver*: if it stops, in-flight elements
  // are cancelled outright (they would have been dropped by the generation
  // guard anyway — the guard stays as defense against foreign schedulers).
  const TimerHandle h = engine()->ScheduleAt(
      delivery_ns, [receiver, in, element = std::move(element),
                    receiver_generation] {
        if (receiver->state() == State::kRunning &&
            receiver->generation_ == receiver_generation) {
          receiver->OnElement(in, element);
        }
      });
  receiver->RecordOwnedTimer(h);
}

TimerHandle MediaActivity::ScheduleOwned(int64_t t_ns,
                                         EventEngine::Callback cb) {
  const TimerHandle h = engine()->ScheduleAt(t_ns, std::move(cb));
  RecordOwnedTimer(h);
  return h;
}

void MediaActivity::RecordOwnedTimer(TimerHandle h) {
  if (owned_timers_.size() >= 8) {
    EventEngine* e = engine();
    owned_timers_.erase(
        std::remove_if(owned_timers_.begin(), owned_timers_.end(),
                       [e](TimerHandle t) { return !e->IsPending(t); }),
        owned_timers_.end());
  }
  owned_timers_.push_back(h);
}

void MediaActivity::CancelOwnedTimers() {
  if (env_.engine == nullptr) return;
  for (TimerHandle h : owned_timers_) env_.engine->Cancel(h);
  owned_timers_.clear();
}

std::string MediaActivity::Describe() const {
  std::string out = name_;
  out += " [";
  out += ActivityKindName(Kind());
  out += " @ ";
  out += ActivityLocationName(location_);
  out += "]";
  for (const auto& p : ports_) {
    out += " ";
    out += std::string(PortDirectionName(p->direction()));
    out += ":";
    out += p->name();
    out += "(";
    out += p->data_type().ToString();
    out += ")";
  }
  return out;
}

}  // namespace avdb

#ifndef AVDB_ACTIVITY_STREAM_ELEMENT_H_
#define AVDB_ACTIVITY_STREAM_ELEMENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "base/buffer.h"
#include "media/frame.h"

namespace avdb {

/// One element travelling through an activity graph: a video frame, an
/// audio block, a caption, or an encoded chunk, stamped with its stream
/// index and ideal presentation time. This is the unit of §4.2's "streams"
/// — AV data in its *active* state.
///
/// Payload fields are shared_ptr/value so tees fan the same element out
/// without copying frame data.
struct StreamElement {
  /// Element index within the stream (0-based).
  int64_t index = 0;
  /// Virtual time at which a sink should present this element.
  int64_t ideal_time_ns = 0;
  /// Payload size used for transfer/bandwidth modeling.
  int64_t size_bytes = 0;
  /// True on the final element of a stream; payload fields may be empty.
  bool end_of_stream = false;

  // Exactly one payload is set for non-EOS elements, matching the port's
  // media data type.
  std::shared_ptr<const VideoFrame> frame;    ///< raw video
  std::shared_ptr<const AudioBlock> audio;    ///< raw PCM audio
  std::shared_ptr<const std::string> text;    ///< caption text
  std::shared_ptr<const Buffer> encoded;      ///< compressed payload
  /// For encoded video: whether this chunk is a random-access point.
  bool encoded_is_intra = true;

  static StreamElement EndOfStream(int64_t index, int64_t ideal_time_ns) {
    StreamElement e;
    e.index = index;
    e.ideal_time_ns = ideal_time_ns;
    e.end_of_stream = true;
    return e;
  }
};

}  // namespace avdb

#endif  // AVDB_ACTIVITY_STREAM_ELEMENT_H_

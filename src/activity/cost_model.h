#ifndef AVDB_ACTIVITY_COST_MODEL_H_
#define AVDB_ACTIVITY_COST_MODEL_H_

#include <cstdint>

namespace avdb {

/// Modeled processing costs of media operations, standing in for the
/// special-purpose hardware of §3.3 (DSPs, JPEG chips, graphics pipelines;
/// DESIGN.md §5). Costs scale with the work unit (pixels, samples) so CIF
/// decode lands near its early-90s real-time budget (~12 ms/frame), and a
/// software-only client is modeled by simply scaling these up.
struct CostModel {
  double decode_ns_per_pixel = 120.0;
  double encode_ns_per_pixel = 250.0;
  double mix_ns_per_pixel = 60.0;
  double render_ns_per_pixel = 100.0;
  double convert_ns_per_pixel = 40.0;
  double audio_decode_ns_per_sample = 300.0;
  double audio_mix_ns_per_sample = 100.0;

  int64_t VideoDecodeNs(int64_t pixels) const {
    return static_cast<int64_t>(decode_ns_per_pixel * pixels);
  }
  int64_t VideoEncodeNs(int64_t pixels) const {
    return static_cast<int64_t>(encode_ns_per_pixel * pixels);
  }
  int64_t MixNs(int64_t pixels) const {
    return static_cast<int64_t>(mix_ns_per_pixel * pixels);
  }
  int64_t RenderNs(int64_t pixels) const {
    return static_cast<int64_t>(render_ns_per_pixel * pixels);
  }
  int64_t ConvertNs(int64_t pixels) const {
    return static_cast<int64_t>(convert_ns_per_pixel * pixels);
  }
  int64_t AudioDecodeNs(int64_t samples) const {
    return static_cast<int64_t>(audio_decode_ns_per_sample * samples);
  }

  /// A hardware-assisted platform (the database site of Fig. 4): several
  /// times faster than the default software path.
  static CostModel Accelerated() {
    CostModel m;
    m.decode_ns_per_pixel = 30.0;
    m.encode_ns_per_pixel = 60.0;
    m.mix_ns_per_pixel = 15.0;
    m.render_ns_per_pixel = 25.0;
    m.convert_ns_per_pixel = 10.0;
    m.audio_decode_ns_per_sample = 80.0;
    return m;
  }

  /// A weak software-only client (the thin client of Fig. 4 bottom).
  static CostModel SlowClient() {
    CostModel m;
    m.decode_ns_per_pixel = 400.0;
    m.encode_ns_per_pixel = 900.0;
    m.mix_ns_per_pixel = 200.0;
    m.render_ns_per_pixel = 350.0;
    m.convert_ns_per_pixel = 120.0;
    m.audio_decode_ns_per_sample = 900.0;
    return m;
  }
};

}  // namespace avdb

#endif  // AVDB_ACTIVITY_COST_MODEL_H_

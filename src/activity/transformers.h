#ifndef AVDB_ACTIVITY_TRANSFORMERS_H_
#define AVDB_ACTIVITY_TRANSFORMERS_H_

#include <map>
#include <memory>
#include <string>

#include "activity/cost_model.h"
#include "activity/media_activity.h"
#include "codec/encoded_value.h"
#include "codec/intra_codec.h"
#include "sched/service_queue.h"

namespace avdb {

/// Table 1's "video decoder": transformer with a compressed "compressed_in"
/// port and a raw "video_out" port. Decoding consumes the incoming encoded
/// chunk stream; predictive families need the stream's decode state, so the
/// activity is bound to the same EncodedVideoValue the upstream reader
/// produces chunks from (its session keeps the reference frames). Each
/// frame pays modeled decode time on the activity's decode unit.
class VideoDecoderActivity : public MediaActivity {
 public:
  static constexpr const char* kPortIn = "compressed_in";
  static constexpr const char* kPortOut = "video_out";

  static std::shared_ptr<VideoDecoderActivity> Create(
      const std::string& name, ActivityLocation location, ActivityEnv env,
      CostModel costs = {});

  /// Binds the encoded value whose chunk stream will arrive; re-types both
  /// ports to match.
  Status DoBind(MediaValuePtr value, const std::string& port_name) override;

  void OnElement(Port* in, const StreamElement& element) override;

  int64_t frames_decoded() const { return frames_decoded_; }

 private:
  VideoDecoderActivity(const std::string& name, ActivityLocation location,
                       ActivityEnv env, CostModel costs);

  Port* in_;
  Port* out_;
  CostModel costs_;
  ServiceQueue decode_unit_;
  std::shared_ptr<EncodedVideoValue> value_;
  int64_t frames_decoded_ = 0;
};

/// Table 1's "video encoder": raw "video_in" -> intra-coded
/// "compressed_out". Streaming encode is intra-only (each frame coded
/// independently), matching the real-time-encode hardware of the era.
class VideoEncoderActivity : public MediaActivity {
 public:
  static constexpr const char* kPortIn = "video_in";
  static constexpr const char* kPortOut = "compressed_out";

  /// Ports typed for `input_type` (must be raw video); output is the intra
  /// compressed counterpart.
  static std::shared_ptr<VideoEncoderActivity> Create(
      const std::string& name, ActivityLocation location, ActivityEnv env,
      MediaDataType input_type, int quality = 75, CostModel costs = {});

  void OnElement(Port* in, const StreamElement& element) override;

  int64_t frames_encoded() const { return frames_encoded_; }
  int64_t bytes_out() const { return bytes_out_; }

 private:
  VideoEncoderActivity(const std::string& name, ActivityLocation location,
                       ActivityEnv env, MediaDataType input_type, int quality,
                       CostModel costs);

  Port* in_;
  Port* out_;
  int quality_;
  CostModel costs_;
  ServiceQueue encode_unit_;
  int64_t frames_encoded_ = 0;
  int64_t bytes_out_ = 0;
};

/// Table 1's "video mixer": two raw inputs ("in_a", "in_b") -> one raw
/// output ("video_out"). The §3.3 data-placement example operation ("video
/// mixing is commonly used during video editing"). Elements pair by index;
/// output frame is a blend. When one input ends, the other passes through.
class VideoMixer : public MediaActivity {
 public:
  static constexpr const char* kPortInA = "in_a";
  static constexpr const char* kPortInB = "in_b";
  static constexpr const char* kPortOut = "video_out";

  /// Blend weight of input A in [0,1]; 0.5 is an equal dissolve.
  static std::shared_ptr<VideoMixer> Create(const std::string& name,
                                            ActivityLocation location,
                                            ActivityEnv env,
                                            MediaDataType video_type,
                                            double mix = 0.5,
                                            CostModel costs = {});

  void OnElement(Port* in, const StreamElement& element) override;

  int64_t frames_mixed() const { return frames_mixed_; }

 private:
  VideoMixer(const std::string& name, ActivityLocation location,
             ActivityEnv env, MediaDataType video_type, double mix,
             CostModel costs);

  void TryEmit(int64_t index);

  Port* in_a_;
  Port* in_b_;
  Port* out_;
  double mix_;
  CostModel costs_;
  ServiceQueue mix_unit_;
  std::map<int64_t, StreamElement> pending_a_;
  std::map<int64_t, StreamElement> pending_b_;
  bool a_done_ = false;
  bool b_done_ = false;
  bool eos_sent_ = false;
  int64_t frames_mixed_ = 0;
};

/// Table 1's "video tee": one raw input fanned out to `fanout` raw outputs
/// "out_0".."out_{n-1}" without copying frame data.
class VideoTee : public MediaActivity {
 public:
  static constexpr const char* kPortIn = "video_in";

  static std::shared_ptr<VideoTee> Create(const std::string& name,
                                          ActivityLocation location,
                                          ActivityEnv env,
                                          MediaDataType video_type,
                                          int fanout = 2);

  void OnElement(Port* in, const StreamElement& element) override;

 private:
  VideoTee(const std::string& name, ActivityLocation location,
           ActivityEnv env, MediaDataType video_type, int fanout);

  Port* in_;
  std::vector<Port*> outs_;
};

/// Audio counterpart of the video mixer: two PCM inputs ("in_a", "in_b")
/// -> one summed PCM output ("audio_out"), pairing blocks by index with
/// saturating addition — the dubbing/voice-over operation of the corporate
/// editing scenario. When one input ends, the other passes through.
class AudioMixerActivity : public MediaActivity {
 public:
  static constexpr const char* kPortInA = "in_a";
  static constexpr const char* kPortInB = "in_b";
  static constexpr const char* kPortOut = "audio_out";

  static std::shared_ptr<AudioMixerActivity> Create(
      const std::string& name, ActivityLocation location, ActivityEnv env,
      MediaDataType audio_type, double gain_a = 0.5, double gain_b = 0.5,
      CostModel costs = {});

  void OnElement(Port* in, const StreamElement& element) override;

  int64_t blocks_mixed() const { return blocks_mixed_; }

 private:
  AudioMixerActivity(const std::string& name, ActivityLocation location,
                     ActivityEnv env, MediaDataType audio_type, double gain_a,
                     double gain_b, CostModel costs);

  void TryEmit(int64_t index);

  Port* in_a_;
  Port* in_b_;
  Port* out_;
  double gain_a_;
  double gain_b_;
  CostModel costs_;
  ServiceQueue mix_unit_;
  std::map<int64_t, StreamElement> pending_a_;
  std::map<int64_t, StreamElement> pending_b_;
  bool a_done_ = false;
  bool b_done_ = false;
  bool eos_sent_ = false;
  int64_t blocks_mixed_ = 0;
};

/// Format conversion (§3.3 lists it among AV processing): raw video in one
/// geometry -> raw video in another (nearest-neighbour resample plus depth
/// conversion). Used to serve a lower quality factor than stored.
class FormatConverter : public MediaActivity {
 public:
  static constexpr const char* kPortIn = "video_in";
  static constexpr const char* kPortOut = "video_out";

  static std::shared_ptr<FormatConverter> Create(const std::string& name,
                                                 ActivityLocation location,
                                                 ActivityEnv env,
                                                 MediaDataType from,
                                                 MediaDataType to,
                                                 CostModel costs = {});

  void OnElement(Port* in, const StreamElement& element) override;

  /// The resampling kernel (exposed for tests).
  static VideoFrame Convert(const VideoFrame& src, int width, int height,
                            int depth_bits);

 private:
  FormatConverter(const std::string& name, ActivityLocation location,
                  ActivityEnv env, MediaDataType from, MediaDataType to,
                  CostModel costs);

  Port* in_;
  Port* out_;
  MediaDataType to_;
  CostModel costs_;
  ServiceQueue convert_unit_;
};

}  // namespace avdb

#endif  // AVDB_ACTIVITY_TRANSFORMERS_H_

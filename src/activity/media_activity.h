#ifndef AVDB_ACTIVITY_MEDIA_ACTIVITY_H_
#define AVDB_ACTIVITY_MEDIA_ACTIVITY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "activity/port.h"
#include "activity/stream_element.h"
#include "base/result.h"
#include "media/media_value.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/event_engine.h"
#include "sched/jitter.h"
#include "sched/sync_controller.h"
#include "time/world_time.h"

namespace avdb {

class ActivityGraph;

/// Where an activity executes (§4.2 "activity location"): within the
/// database system or within a client application. Location decides which
/// resources (devices, channels) an activity may touch and which side of a
/// connection pays network transfer.
enum class ActivityLocation { kDatabase, kClient };

std::string_view ActivityLocationName(ActivityLocation loc);

/// Classification by port directions (§3.1 / Table 1).
enum class ActivityKind { kSource, kTransformer, kSink, kOther };

std::string_view ActivityKindName(ActivityKind kind);

/// A notification raised by a running activity and caught by applications
/// (§4.2 "activity event notification", e.g. EACH_FRAME / LAST_FRAME).
struct ActivityEvent {
  std::string kind;
  int64_t element_index = 0;
  int64_t time_ns = 0;
  /// Free-form context for robustness events (FAULT_RETRY, QUALITY_CHANGED,
  /// ...): what happened and why, e.g. "layers 3->2" or "2 retries
  /// absorbed". Empty for plain per-element events.
  std::string detail;
};

using ActivityEventHandler = std::function<void(const ActivityEvent&)>;

/// Shared execution environment handed to every activity: the event engine
/// all temporal behaviour runs on, plus an optional jitter model applied to
/// element deliveries (§3.3's "unpredictable system latencies").
struct ActivityEnv {
  EventEngine* engine = nullptr;
  JitterModel* jitter = nullptr;
  /// Shared observability instruments (owned by the database). Either may
  /// be nullptr: an uninstrumented activity pays one null check per
  /// operation and nothing else.
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

/// Abstract base of all AV activities — the paper's central notion:
///
///   class MediaActivity {
///     PortSet ports; EventSet events;
///     Bind(MediaValue, Port); Cue(WorldTime); Start(); Stop();
///     Catch(Event, Handler);
///   }
///
/// An activity is the production and/or consumption of AV values at their
/// data rates (§3.1 definition). Concrete subclasses declare typed ports
/// and implement the streaming callbacks; applications drive them through
/// exactly the five verbs above. MediaActivity itself cannot be
/// instantiated (§4.2 "activity creation").
class MediaActivity {
 public:
  /// Lifecycle: created idle, Start() -> running, Stop()/EOS -> stopped.
  enum class State { kIdle, kRunning, kStopped };

  virtual ~MediaActivity() = default;

  MediaActivity(const MediaActivity&) = delete;
  MediaActivity& operator=(const MediaActivity&) = delete;

  const std::string& name() const { return name_; }
  ActivityLocation location() const { return location_; }
  State state() const { return state_; }
  const ActivityEnv& env() const { return env_; }

  // --- ports (PortSet) -----------------------------------------------------

  const std::vector<std::unique_ptr<Port>>& ports() const { return ports_; }
  /// Resolves a port by name. Virtual so composite activities can expose
  /// child ports under their own names (§4.2 flow-composition rule 2).
  virtual Result<Port*> FindPort(const std::string& name) const;
  std::vector<Port*> InputPorts() const;
  std::vector<Port*> OutputPorts() const;

  /// Source/transformer/sink per §3.1's classification by port directions.
  /// Virtual so composites classify by their exposed ports.
  virtual ActivityKind Kind() const;

  // --- events (EventSet) ---------------------------------------------------

  /// Event kinds this activity can raise.
  const std::vector<std::string>& event_kinds() const { return event_kinds_; }

  /// Registers a handler for `kind` (NotFound when the activity does not
  /// declare that kind).
  Status Catch(const std::string& kind, ActivityEventHandler handler);

  // --- control -------------------------------------------------------------

  /// Associates a media value with a port (§4.2 "activity binding").
  /// Non-virtual so every bind lands in the lifecycle trace; subclasses
  /// customize via DoBind (base rejects; source activities override).
  Status Bind(MediaValuePtr value, const std::string& port_name);

  /// Positions the activity at world time `t` of its bound value (§4.2
  /// "cueing a VideoSource to world time 0 would position it at the first
  /// frame"). Only meaningful while idle. Non-virtual for tracing;
  /// subclasses customize via DoCue.
  Status Cue(WorldTime t);

  /// Starts the activity: sources begin producing, sinks begin accepting.
  Status Start();

  /// Stops the activity; idempotent.
  Status Stop();

  /// Joins the activity to a synchronization domain as `track`: sinks will
  /// report presentations, sources will honour skip recommendations
  /// (§3.3's resynchronization). Default: unsupported.
  virtual Status ConfigureSync(SyncController* sync, const std::string& track);

  // --- streaming (driven by the graph/engine) ------------------------------

  /// Delivery of one element on an input port. Only called while running.
  virtual void OnElement(Port* in, const StreamElement& element);

  /// Human-readable one-line description.
  virtual std::string Describe() const;

 protected:
  MediaActivity(std::string name, ActivityLocation location, ActivityEnv env);

  /// Declares a port during construction; returns it for convenience.
  Port* DeclarePort(const std::string& name, PortDirection direction,
                    MediaDataType type);

  /// Declares an event kind during construction.
  void DeclareEvent(const std::string& kind) { event_kinds_.push_back(kind); }

  /// Raises an event to all registered handlers.
  void Raise(const std::string& kind, int64_t element_index);
  void Raise(const std::string& kind, int64_t element_index,
             std::string detail);

  /// Sends an element out of `out`: routes through the port's connection
  /// (modeled transfer + jitter) and schedules delivery at the peer. No-op
  /// with a drop count when the port is unconnected.
  void Emit(Port* out, StreamElement element);

  /// Subclass hooks behind the public Bind/Cue verbs (non-virtual
  /// interface: the base traces every lifecycle transition exactly once,
  /// whatever the subclass does).
  virtual Status DoBind(MediaValuePtr value, const std::string& port_name);
  virtual Status DoCue(WorldTime t);

  /// Subclass hooks for Start/Stop.
  virtual Status OnStart() { return Status::OK(); }
  virtual Status OnStop() { return Status::OK(); }

  /// Marks the activity stopped from inside (e.g. on end of stream).
  void SelfStop();

  /// Schedules `cb` on the engine and records the handle so Stop()/
  /// SelfStop() cancel it. Every periodic tick or deferred emit a subclass
  /// schedules for *itself* must go through here — a torn-down session then
  /// removes its events instead of leaving closures in the heap until their
  /// deadlines pass (the 10⁵-idle-session tombstone problem; DESIGN.md §16).
  TimerHandle ScheduleOwned(int64_t t_ns, EventEngine::Callback cb);
  TimerHandle ScheduleOwned(WorldTime t, EventEngine::Callback cb) {
    return ScheduleOwned(VirtualClock::ToNs(t), std::move(cb));
  }

  /// Cancels every still-pending owned timer (idempotent; called on every
  /// stop path).
  void CancelOwnedTimers();

  /// Monotone generation counter: bumped on Stop so stale scheduled events
  /// can recognize they belong to a previous run.
  int64_t generation() const { return generation_; }

  EventEngine* engine() const { return env_.engine; }

  int64_t dropped_elements() const { return dropped_elements_; }

 private:
  friend class ActivityGraph;

  /// Records `h` for cancellation on stop, pruning fired handles once the
  /// list grows past a small bound (amortized O(1) per scheduling).
  void RecordOwnedTimer(TimerHandle h);

  std::string name_;
  ActivityLocation location_;
  ActivityEnv env_;
  State state_ = State::kIdle;
  int64_t generation_ = 0;

  std::vector<std::unique_ptr<Port>> ports_;
  std::vector<std::string> event_kinds_;
  std::multimap<std::string, ActivityEventHandler> handlers_;
  std::vector<TimerHandle> owned_timers_;
  int64_t dropped_elements_ = 0;

  obs::Counter* elements_counter_ = nullptr;
  obs::Counter* emit_bytes_counter_ = nullptr;
  obs::Counter* events_counter_ = nullptr;
  int64_t run_span_id_ = 0;  ///< open "run" trace span while running
};

using MediaActivityPtr = std::shared_ptr<MediaActivity>;

}  // namespace avdb

#endif  // AVDB_ACTIVITY_MEDIA_ACTIVITY_H_

#ifndef AVDB_ACTIVITY_SINKS_H_
#define AVDB_ACTIVITY_SINKS_H_

#include <memory>
#include <string>

#include "activity/media_activity.h"
#include "media/audio_value.h"
#include "media/quality.h"
#include "media/video_value.h"
#include "sched/degradation.h"
#include "sched/stream_stats.h"
#include "sched/sync_controller.h"
#include "storage/media_store.h"

namespace avdb {

/// Common sink wiring: stats recording and optional sync reporting.
struct SinkOptions {
  /// When set with `sync_track`, each presentation is reported to the
  /// controller so lagging tracks can be resynchronized.
  SyncController* sync = nullptr;
  std::string sync_track;
  /// When set, each element's lateness feeds the shared degradation
  /// controller — the sink is the ladder's deadline-pressure sensor, the
  /// source its actuator.
  DegradationController* degrade = nullptr;
};

/// Table 1's "video window": a sink presenting raw frames on a (virtual)
/// display. Presentation happens at max(arrival, ideal) and every element's
/// lateness is recorded in StreamStats — our measuring substitute for the
/// paper's workstation window (DESIGN.md §5). Carries the §4.3 quality
/// factor ("new activity VideoWindow quality 320x240x8@30"); its input port
/// is typed to exactly that quality.
class VideoWindow : public MediaActivity {
 public:
  static constexpr const char* kPortIn = "video_in";
  static constexpr const char* kEachFrame = "EACH_FRAME";
  static constexpr const char* kLastFrame = "LAST_FRAME";

  static std::shared_ptr<VideoWindow> Create(const std::string& name,
                                             ActivityLocation location,
                                             ActivityEnv env,
                                             VideoQuality quality,
                                             SinkOptions options = {});

  ~VideoWindow() override;

  const VideoQuality& quality() const { return quality_; }
  const StreamStats& stats() const { return stats_; }

  /// Last frame presented (empty before the first arrival) — lets tests and
  /// examples inspect what "the screen" shows.
  const VideoFrame& last_frame() const { return last_frame_; }

  void OnElement(Port* in, const StreamElement& element) override;
  Status ConfigureSync(SyncController* sync,
                       const std::string& track) override;

 private:
  VideoWindow(const std::string& name, ActivityLocation location,
              ActivityEnv env, VideoQuality quality, SinkOptions options);

  Port* in_;
  VideoQuality quality_;
  SinkOptions options_;
  StreamStats stats_;
  VideoFrame last_frame_;
};

/// Audio sink (virtual DAC) with a named §4.1 audio quality ("quality
/// voice"). Statistics mirror VideoWindow's.
class AudioSink : public MediaActivity {
 public:
  static constexpr const char* kPortIn = "audio_in";
  static constexpr const char* kEachBlock = "EACH_BLOCK";
  static constexpr const char* kLastBlock = "LAST_BLOCK";

  static std::shared_ptr<AudioSink> Create(const std::string& name,
                                           ActivityLocation location,
                                           ActivityEnv env,
                                           AudioQuality quality,
                                           SinkOptions options = {});

  ~AudioSink() override;

  AudioQuality quality() const { return quality_; }
  const StreamStats& stats() const { return stats_; }

  void OnElement(Port* in, const StreamElement& element) override;
  Status ConfigureSync(SyncController* sync,
                       const std::string& track) override;

 private:
  AudioSink(const std::string& name, ActivityLocation location,
            ActivityEnv env, AudioQuality quality, SinkOptions options);

  Port* in_;
  AudioQuality quality_;
  SinkOptions options_;
  StreamStats stats_;
};

/// Caption sink: records presented captions (subtitle display).
class TextSink : public MediaActivity {
 public:
  static constexpr const char* kPortIn = "text_in";

  static std::shared_ptr<TextSink> Create(const std::string& name,
                                          ActivityLocation location,
                                          ActivityEnv env,
                                          SinkOptions options = {});

  ~TextSink() override;

  const StreamStats& stats() const { return stats_; }
  const std::vector<std::string>& presented() const { return presented_; }

  void OnElement(Port* in, const StreamElement& element) override;
  Status ConfigureSync(SyncController* sync,
                       const std::string& track) override;

 private:
  TextSink(const std::string& name, ActivityLocation location,
           ActivityEnv env, SinkOptions options);

  Port* in_;
  SinkOptions options_;
  StreamStats stats_;
  std::vector<std::string> presented_;
};

/// Table 1's "video writer": a sink accumulating raw frames into a
/// RawVideoValue — recording (§4.2's active-state *recording* operation).
/// Optionally persists the result to a media store on end of stream.
class VideoWriter : public MediaActivity {
 public:
  static constexpr const char* kPortIn = "video_in";
  static constexpr const char* kDone = "DONE";

  /// `store`/`blob_name` optional; when set the captured value is written
  /// out (serialized) at end of stream.
  static std::shared_ptr<VideoWriter> Create(const std::string& name,
                                             ActivityLocation location,
                                             ActivityEnv env,
                                             MediaDataType video_type,
                                             MediaStore* store = nullptr,
                                             std::string blob_name = "");

  void OnElement(Port* in, const StreamElement& element) override;

  /// The captured value (valid after end of stream or Stop()).
  const std::shared_ptr<RawVideoValue>& captured() const { return captured_; }
  int64_t frames_written() const { return frames_written_; }

 private:
  VideoWriter(const std::string& name, ActivityLocation location,
              ActivityEnv env, MediaDataType video_type, MediaStore* store,
              std::string blob_name);

  Port* in_;
  std::shared_ptr<RawVideoValue> captured_;
  MediaStore* store_;
  std::string blob_name_;
  int64_t frames_written_ = 0;
};

/// Audio recorder: accumulates PCM blocks into a RawAudioValue, optionally
/// persisting at end of stream — the audio half of Table 1's "writer" row
/// and the capture path of §4.2's *recording* operation.
class AudioWriter : public MediaActivity {
 public:
  static constexpr const char* kPortIn = "audio_in";
  static constexpr const char* kDone = "DONE";

  static std::shared_ptr<AudioWriter> Create(const std::string& name,
                                             ActivityLocation location,
                                             ActivityEnv env,
                                             MediaDataType audio_type,
                                             MediaStore* store = nullptr,
                                             std::string blob_name = "");

  void OnElement(Port* in, const StreamElement& element) override;

  const std::shared_ptr<RawAudioValue>& captured() const { return captured_; }
  int64_t blocks_written() const { return blocks_written_; }

 private:
  AudioWriter(const std::string& name, ActivityLocation location,
              ActivityEnv env, MediaDataType audio_type, MediaStore* store,
              std::string blob_name);

  Port* in_;
  std::shared_ptr<RawAudioValue> captured_;
  MediaStore* store_;
  std::string blob_name_;
  int64_t blocks_written_ = 0;
};

}  // namespace avdb

#endif  // AVDB_ACTIVITY_SINKS_H_

#include "activity/sinks.h"

#include "base/logging.h"
#include "storage/value_serializer.h"

namespace avdb {

namespace {

/// Lateness of an element: positive when it arrived after its ideal time.
int64_t LatenessNs(const EventEngine& engine, const StreamElement& element) {
  return engine.now_ns() - element.ideal_time_ns;
}

/// Presentation instant: early elements wait for their slot, late ones show
/// immediately — a sink "presents at max(arrival, ideal)".
int64_t PresentationNs(const EventEngine& engine,
                       const StreamElement& element) {
  return std::max(engine.now_ns(), element.ideal_time_ns);
}

/// Reports one presentation to the sync controller. A failed report means
/// the track was revoked mid-stream (SyncController::RemoveTrack); the
/// sink detaches from sync — presentation itself continues untouched —
/// rather than paying a dead lookup and swallowing the error per element.
void ReportSyncOrDetach(SinkOptions* options, const std::string& sink_name,
                        int64_t ideal_ns, int64_t actual_ns) {
  if (options->sync == nullptr || options->sync_track.empty()) return;
  const Status reported =
      options->sync->Report(options->sync_track, ideal_ns, actual_ns);
  if (!reported.ok()) {
    AVDB_LOG(Warning) << "sink " << sink_name
                      << " detaching from revoked sync track: " << reported;
    options->sync = nullptr;
  }
}

}  // namespace

// -------------------------------------------------------------- VideoWindow --

VideoWindow::VideoWindow(const std::string& name, ActivityLocation location,
                         ActivityEnv env, VideoQuality quality,
                         SinkOptions options)
    : MediaActivity(name, location, env),
      quality_(quality),
      options_(options) {
  in_ = DeclarePort(kPortIn, PortDirection::kIn,
                    MediaDataType::RawVideo(quality.width(), quality.height(),
                                            quality.depth_bits(),
                                            quality.rate()));
  DeclareEvent(kEachFrame);
  DeclareEvent(kLastFrame);
  stats_.BindTo(env.metrics);
  if (options_.degrade != nullptr) {
    options_.degrade->AttachStreamStats(&stats_);
  }
}

VideoWindow::~VideoWindow() {
  if (options_.degrade != nullptr) {
    options_.degrade->DetachStreamStats(&stats_);
  }
}

std::shared_ptr<VideoWindow> VideoWindow::Create(const std::string& name,
                                                 ActivityLocation location,
                                                 ActivityEnv env,
                                                 VideoQuality quality,
                                                 SinkOptions options) {
  return std::shared_ptr<VideoWindow>(
      new VideoWindow(name, location, env, quality, options));
}

void VideoWindow::OnElement(Port* in, const StreamElement& element) {
  AVDB_DCHECK(in == in_);
  if (element.end_of_stream) {
    Raise(kLastFrame, element.index);
    SelfStop();
    return;
  }
  if (element.frame == nullptr) {
    AVDB_LOG(Error) << name() << ": element without frame payload";
    return;
  }
  const int64_t lateness = LatenessNs(*engine(), element);
  stats_.Record(PresentationNs(*engine(), element), lateness, element.size_bytes);
  if (options_.degrade != nullptr) {
    options_.degrade->ReportLateness(engine()->now_ns(), lateness);
  }
  last_frame_ = *element.frame;
  ReportSyncOrDetach(&options_, name(), element.ideal_time_ns,
                     std::max(engine()->now_ns(), element.ideal_time_ns));
  Raise(kEachFrame, element.index);
}

Status VideoWindow::ConfigureSync(SyncController* sync,
                                  const std::string& track) {
  options_.sync = sync;
  options_.sync_track = track;
  return Status::OK();
}

// ---------------------------------------------------------------- AudioSink --

AudioSink::AudioSink(const std::string& name, ActivityLocation location,
                     ActivityEnv env, AudioQuality quality,
                     SinkOptions options)
    : MediaActivity(name, location, env),
      quality_(quality),
      options_(options) {
  in_ = DeclarePort(kPortIn, PortDirection::kIn,
                    MediaDataType::RawAudio(AudioQualityChannels(quality),
                                            AudioQualitySampleRate(quality)));
  DeclareEvent(kEachBlock);
  DeclareEvent(kLastBlock);
  stats_.BindTo(env.metrics);
  if (options_.degrade != nullptr) {
    options_.degrade->AttachStreamStats(&stats_);
  }
}

AudioSink::~AudioSink() {
  if (options_.degrade != nullptr) {
    options_.degrade->DetachStreamStats(&stats_);
  }
}

std::shared_ptr<AudioSink> AudioSink::Create(const std::string& name,
                                             ActivityLocation location,
                                             ActivityEnv env,
                                             AudioQuality quality,
                                             SinkOptions options) {
  return std::shared_ptr<AudioSink>(
      new AudioSink(name, location, env, quality, options));
}

void AudioSink::OnElement(Port* in, const StreamElement& element) {
  AVDB_DCHECK(in == in_);
  if (element.end_of_stream) {
    Raise(kLastBlock, element.index);
    SelfStop();
    return;
  }
  if (element.audio == nullptr) {
    AVDB_LOG(Error) << name() << ": element without audio payload";
    return;
  }
  const int64_t lateness = LatenessNs(*engine(), element);
  stats_.Record(PresentationNs(*engine(), element), lateness, element.size_bytes);
  if (options_.degrade != nullptr) {
    options_.degrade->ReportLateness(engine()->now_ns(), lateness);
  }
  ReportSyncOrDetach(&options_, name(), element.ideal_time_ns,
                     std::max(engine()->now_ns(), element.ideal_time_ns));
  Raise(kEachBlock, element.index);
}

Status AudioSink::ConfigureSync(SyncController* sync,
                                const std::string& track) {
  options_.sync = sync;
  options_.sync_track = track;
  return Status::OK();
}

// ----------------------------------------------------------------- TextSink --

TextSink::TextSink(const std::string& name, ActivityLocation location,
                   ActivityEnv env, SinkOptions options)
    : MediaActivity(name, location, env), options_(options) {
  in_ = DeclarePort(kPortIn, PortDirection::kIn,
                    MediaDataType::Text(Rational(30)));
  stats_.BindTo(env.metrics);
  if (options_.degrade != nullptr) {
    options_.degrade->AttachStreamStats(&stats_);
  }
}

TextSink::~TextSink() {
  if (options_.degrade != nullptr) {
    options_.degrade->DetachStreamStats(&stats_);
  }
}

std::shared_ptr<TextSink> TextSink::Create(const std::string& name,
                                           ActivityLocation location,
                                           ActivityEnv env,
                                           SinkOptions options) {
  return std::shared_ptr<TextSink>(
      new TextSink(name, location, env, options));
}

void TextSink::OnElement(Port* in, const StreamElement& element) {
  AVDB_DCHECK(in == in_);
  if (element.end_of_stream) {
    SelfStop();
    return;
  }
  if (element.text == nullptr) {
    AVDB_LOG(Error) << name() << ": element without text payload";
    return;
  }
  stats_.Record(PresentationNs(*engine(), element),
                LatenessNs(*engine(), element), element.size_bytes);
  presented_.push_back(*element.text);
  ReportSyncOrDetach(&options_, name(), element.ideal_time_ns,
                     std::max(engine()->now_ns(), element.ideal_time_ns));
}

Status TextSink::ConfigureSync(SyncController* sync,
                               const std::string& track) {
  options_.sync = sync;
  options_.sync_track = track;
  return Status::OK();
}

// -------------------------------------------------------------- VideoWriter --

VideoWriter::VideoWriter(const std::string& name, ActivityLocation location,
                         ActivityEnv env, MediaDataType video_type,
                         MediaStore* store, std::string blob_name)
    : MediaActivity(name, location, env),
      store_(store),
      blob_name_(std::move(blob_name)) {
  in_ = DeclarePort(kPortIn, PortDirection::kIn, video_type);
  DeclareEvent(kDone);
  auto captured = RawVideoValue::Create(video_type);
  AVDB_CHECK(captured.ok()) << "VideoWriter needs a raw video type: "
                            << captured.status();
  captured_ = std::move(captured).value();
}

std::shared_ptr<VideoWriter> VideoWriter::Create(const std::string& name,
                                                 ActivityLocation location,
                                                 ActivityEnv env,
                                                 MediaDataType video_type,
                                                 MediaStore* store,
                                                 std::string blob_name) {
  return std::shared_ptr<VideoWriter>(new VideoWriter(
      name, location, env, std::move(video_type), store,
      std::move(blob_name)));
}

void VideoWriter::OnElement(Port* in, const StreamElement& element) {
  AVDB_DCHECK(in == in_);
  if (element.end_of_stream) {
    if (store_ != nullptr && !blob_name_.empty()) {
      auto blob = value_serializer::Serialize(*captured_);
      if (blob.ok()) {
        auto put = store_->Put(blob_name_, blob.value());
        if (!put.ok()) {
          AVDB_LOG(Error) << name() << ": persist failed: " << put.status();
        }
      } else {
        AVDB_LOG(Error) << name() << ": serialize failed: " << blob.status();
      }
    }
    Raise(kDone, frames_written_);
    SelfStop();
    return;
  }
  if (element.frame == nullptr) {
    AVDB_LOG(Error) << name() << ": element without frame payload";
    return;
  }
  const Status status = captured_->AppendFrame(*element.frame);
  if (!status.ok()) {
    AVDB_LOG(Error) << name() << ": append failed: " << status;
    return;
  }
  ++frames_written_;
}

// -------------------------------------------------------------- AudioWriter --

AudioWriter::AudioWriter(const std::string& name, ActivityLocation location,
                         ActivityEnv env, MediaDataType audio_type,
                         MediaStore* store, std::string blob_name)
    : MediaActivity(name, location, env),
      store_(store),
      blob_name_(std::move(blob_name)) {
  in_ = DeclarePort(kPortIn, PortDirection::kIn, audio_type);
  DeclareEvent(kDone);
  auto captured = RawAudioValue::Create(audio_type);
  AVDB_CHECK(captured.ok()) << "AudioWriter needs a raw audio type: "
                            << captured.status();
  captured_ = std::move(captured).value();
}

std::shared_ptr<AudioWriter> AudioWriter::Create(const std::string& name,
                                                 ActivityLocation location,
                                                 ActivityEnv env,
                                                 MediaDataType audio_type,
                                                 MediaStore* store,
                                                 std::string blob_name) {
  return std::shared_ptr<AudioWriter>(new AudioWriter(
      name, location, env, std::move(audio_type), store,
      std::move(blob_name)));
}

void AudioWriter::OnElement(Port* in, const StreamElement& element) {
  AVDB_DCHECK(in == in_);
  if (element.end_of_stream) {
    if (store_ != nullptr && !blob_name_.empty()) {
      auto blob = value_serializer::Serialize(*captured_);
      if (blob.ok()) {
        auto put = store_->Put(blob_name_, blob.value());
        if (!put.ok()) {
          AVDB_LOG(Error) << name() << ": persist failed: " << put.status();
        }
      } else {
        AVDB_LOG(Error) << name() << ": serialize failed: " << blob.status();
      }
    }
    Raise(kDone, blocks_written_);
    SelfStop();
    return;
  }
  if (element.audio == nullptr) {
    AVDB_LOG(Error) << name() << ": element without audio payload";
    return;
  }
  const Status status = captured_->Append(*element.audio);
  if (!status.ok()) {
    AVDB_LOG(Error) << name() << ": append failed: " << status;
    return;
  }
  ++blocks_written_;
}

}  // namespace avdb

#include "activity/transformers.h"

#include "base/logging.h"
#include "codec/registry.h"

namespace avdb {

// --------------------------------------------------- VideoDecoderActivity --

VideoDecoderActivity::VideoDecoderActivity(const std::string& name,
                                           ActivityLocation location,
                                           ActivityEnv env, CostModel costs)
    : MediaActivity(name, location, env),
      costs_(costs),
      decode_unit_(name + ".unit") {
  in_ = DeclarePort(kPortIn, PortDirection::kIn,
                    MediaDataType::CompressedVideo(EncodingFamily::kIntra, 0,
                                                   0, 8, Rational(1)));
  out_ = DeclarePort(kPortOut, PortDirection::kOut,
                     MediaDataType::RawVideo(0, 0, 8, Rational(1)));
}

std::shared_ptr<VideoDecoderActivity> VideoDecoderActivity::Create(
    const std::string& name, ActivityLocation location, ActivityEnv env,
    CostModel costs) {
  return std::shared_ptr<VideoDecoderActivity>(
      new VideoDecoderActivity(name, location, env, costs));
}

Status VideoDecoderActivity::DoBind(MediaValuePtr value,
                                  const std::string& port_name) {
  if (port_name != kPortIn) {
    return Status::NotFound("port " + name() + "." + port_name);
  }
  auto encoded = std::dynamic_pointer_cast<EncodedVideoValue>(value);
  if (encoded == nullptr) {
    return Status::InvalidArgument(
        "VideoDecoderActivity requires an EncodedVideoValue");
  }
  value_ = encoded;
  in_->set_data_type(encoded->type());
  out_->set_data_type(MediaDataType::RawVideo(
      encoded->width(), encoded->height(), encoded->depth_bits(),
      encoded->frame_rate()));
  return Status::OK();
}

void VideoDecoderActivity::OnElement(Port* in, const StreamElement& element) {
  AVDB_DCHECK(in == in_);
  if (element.end_of_stream) {
    Emit(out_, element);
    SelfStop();
    return;
  }
  if (value_ == nullptr) {
    AVDB_LOG(Error) << name() << ": element before bind";
    return;
  }
  auto frame = value_->Frame(element.index);
  if (!frame.ok()) {
    AVDB_LOG(Error) << name() << ": decode failed: " << frame.status();
    return;
  }
  const int64_t pixels =
      static_cast<int64_t>(value_->width()) * value_->height();
  const int64_t ready_ns =
      decode_unit_.Submit(engine()->now_ns(), costs_.VideoDecodeNs(pixels));
  StreamElement out_element;
  out_element.index = element.index;
  out_element.ideal_time_ns = element.ideal_time_ns;
  out_element.frame =
      std::make_shared<const VideoFrame>(std::move(frame).value());
  out_element.size_bytes =
      static_cast<int64_t>(out_element.frame->SizeBytes());
  ++frames_decoded_;
  ScheduleOwned(ready_ns,
                       [this, out_element = std::move(out_element)] {
                         if (state() != State::kRunning) return;
                         Emit(out_, out_element);
                       });
}

// --------------------------------------------------- VideoEncoderActivity --

VideoEncoderActivity::VideoEncoderActivity(const std::string& name,
                                           ActivityLocation location,
                                           ActivityEnv env,
                                           MediaDataType input_type,
                                           int quality, CostModel costs)
    : MediaActivity(name, location, env),
      quality_(quality),
      costs_(costs),
      encode_unit_(name + ".unit") {
  in_ = DeclarePort(kPortIn, PortDirection::kIn, input_type);
  out_ = DeclarePort(kPortOut, PortDirection::kOut,
                     MediaDataType::CompressedVideo(
                         EncodingFamily::kIntra, input_type.width(),
                         input_type.height(), input_type.depth_bits(),
                         input_type.element_rate()));
}

std::shared_ptr<VideoEncoderActivity> VideoEncoderActivity::Create(
    const std::string& name, ActivityLocation location, ActivityEnv env,
    MediaDataType input_type, int quality, CostModel costs) {
  AVDB_CHECK(input_type.kind() == MediaKind::kVideo &&
             !input_type.IsCompressed())
      << "encoder input must be raw video";
  return std::shared_ptr<VideoEncoderActivity>(new VideoEncoderActivity(
      name, location, env, std::move(input_type), quality, costs));
}

void VideoEncoderActivity::OnElement(Port* in, const StreamElement& element) {
  AVDB_DCHECK(in == in_);
  if (element.end_of_stream) {
    Emit(out_, element);
    SelfStop();
    return;
  }
  if (element.frame == nullptr) {
    AVDB_LOG(Error) << name() << ": element without frame payload";
    return;
  }
  // Plane-parallel when the process-wide codec concurrency default says
  // so; the default of 1 keeps the virtual-time engine fully serial.
  Buffer bits = IntraCodec::EncodeFrame(*element.frame, quality_,
                                        CodecRegistry::default_concurrency());
  const int64_t pixels = static_cast<int64_t>(element.frame->width()) *
                         element.frame->height();
  const int64_t ready_ns =
      encode_unit_.Submit(engine()->now_ns(), costs_.VideoEncodeNs(pixels));
  StreamElement out_element;
  out_element.index = element.index;
  out_element.ideal_time_ns = element.ideal_time_ns;
  out_element.size_bytes = static_cast<int64_t>(bits.size());
  out_element.encoded = std::make_shared<const Buffer>(std::move(bits));
  out_element.encoded_is_intra = true;
  ++frames_encoded_;
  bytes_out_ += out_element.size_bytes;
  ScheduleOwned(ready_ns,
                       [this, out_element = std::move(out_element)] {
                         if (state() != State::kRunning) return;
                         Emit(out_, out_element);
                       });
}

// --------------------------------------------------------------- VideoMixer --

VideoMixer::VideoMixer(const std::string& name, ActivityLocation location,
                       ActivityEnv env, MediaDataType video_type, double mix,
                       CostModel costs)
    : MediaActivity(name, location, env),
      mix_(mix),
      costs_(costs),
      mix_unit_(name + ".unit") {
  in_a_ = DeclarePort(kPortInA, PortDirection::kIn, video_type);
  in_b_ = DeclarePort(kPortInB, PortDirection::kIn, video_type);
  out_ = DeclarePort(kPortOut, PortDirection::kOut, video_type);
}

std::shared_ptr<VideoMixer> VideoMixer::Create(const std::string& name,
                                               ActivityLocation location,
                                               ActivityEnv env,
                                               MediaDataType video_type,
                                               double mix, CostModel costs) {
  AVDB_CHECK(video_type.kind() == MediaKind::kVideo &&
             !video_type.IsCompressed())
      << "mixer works on raw video";
  if (mix < 0) mix = 0;
  if (mix > 1) mix = 1;
  return std::shared_ptr<VideoMixer>(
      new VideoMixer(name, location, env, std::move(video_type), mix, costs));
}

void VideoMixer::OnElement(Port* in, const StreamElement& element) {
  if (element.end_of_stream) {
    if (in == in_a_) a_done_ = true;
    if (in == in_b_) b_done_ = true;
    if (a_done_ && b_done_ && !eos_sent_) {
      eos_sent_ = true;
      Emit(out_, element);
      SelfStop();
    }
    return;
  }
  if (element.frame == nullptr) {
    AVDB_LOG(Error) << name() << ": element without frame payload";
    return;
  }
  if (in == in_a_) {
    pending_a_[element.index] = element;
  } else {
    pending_b_[element.index] = element;
  }
  TryEmit(element.index);
}

void VideoMixer::TryEmit(int64_t index) {
  // Pass-through once one side has ended.
  const bool have_a = pending_a_.count(index) > 0;
  const bool have_b = pending_b_.count(index) > 0;
  StreamElement out_element;
  if (have_a && have_b) {
    const StreamElement& a = pending_a_[index];
    const StreamElement& b = pending_b_[index];
    const VideoFrame& fa = *a.frame;
    const VideoFrame& fb = *b.frame;
    VideoFrame mixed(fa.width(), fa.height(), fa.depth_bits());
    if (fb.width() == fa.width() && fb.height() == fa.height() &&
        fb.depth_bits() == fa.depth_bits()) {
      for (size_t i = 0; i < mixed.data().size(); ++i) {
        mixed.data()[i] = static_cast<uint8_t>(mix_ * fa.data()[i] +
                                               (1.0 - mix_) * fb.data()[i]);
      }
    } else {
      mixed = fa;  // geometry mismatch: favour input A
    }
    out_element.index = index;
    out_element.ideal_time_ns =
        std::max(a.ideal_time_ns, b.ideal_time_ns);
    out_element.frame = std::make_shared<const VideoFrame>(std::move(mixed));
    out_element.size_bytes =
        static_cast<int64_t>(out_element.frame->SizeBytes());
    pending_a_.erase(index);
    pending_b_.erase(index);
  } else if (have_a && b_done_) {
    out_element = pending_a_[index];
    pending_a_.erase(index);
  } else if (have_b && a_done_) {
    out_element = pending_b_[index];
    pending_b_.erase(index);
  } else {
    return;  // waiting for the partner frame
  }
  const int64_t pixels = out_element.frame == nullptr
                             ? 0
                             : static_cast<int64_t>(out_element.frame->width()) *
                                   out_element.frame->height();
  const int64_t ready_ns =
      mix_unit_.Submit(engine()->now_ns(), costs_.MixNs(pixels));
  ++frames_mixed_;
  ScheduleOwned(ready_ns,
                       [this, out_element = std::move(out_element)] {
                         if (state() != State::kRunning) return;
                         Emit(out_, out_element);
                       });
}

// ----------------------------------------------------------------- VideoTee --

VideoTee::VideoTee(const std::string& name, ActivityLocation location,
                   ActivityEnv env, MediaDataType video_type, int fanout)
    : MediaActivity(name, location, env) {
  in_ = DeclarePort(kPortIn, PortDirection::kIn, video_type);
  for (int i = 0; i < fanout; ++i) {
    outs_.push_back(DeclarePort("out_" + std::to_string(i),
                                PortDirection::kOut, video_type));
  }
}

std::shared_ptr<VideoTee> VideoTee::Create(const std::string& name,
                                           ActivityLocation location,
                                           ActivityEnv env,
                                           MediaDataType video_type,
                                           int fanout) {
  AVDB_CHECK(fanout >= 1) << "tee fanout must be >= 1";
  return std::shared_ptr<VideoTee>(
      new VideoTee(name, location, env, std::move(video_type), fanout));
}

void VideoTee::OnElement(Port* in, const StreamElement& element) {
  AVDB_DCHECK(in == in_);
  for (Port* out : outs_) {
    Emit(out, element);  // shared payload, no copy
  }
  if (element.end_of_stream) SelfStop();
}

// ------------------------------------------------------- AudioMixerActivity --

AudioMixerActivity::AudioMixerActivity(const std::string& name,
                                       ActivityLocation location,
                                       ActivityEnv env,
                                       MediaDataType audio_type,
                                       double gain_a, double gain_b,
                                       CostModel costs)
    : MediaActivity(name, location, env),
      gain_a_(gain_a),
      gain_b_(gain_b),
      costs_(costs),
      mix_unit_(name + ".unit") {
  in_a_ = DeclarePort(kPortInA, PortDirection::kIn, audio_type);
  in_b_ = DeclarePort(kPortInB, PortDirection::kIn, audio_type);
  out_ = DeclarePort(kPortOut, PortDirection::kOut, audio_type);
}

std::shared_ptr<AudioMixerActivity> AudioMixerActivity::Create(
    const std::string& name, ActivityLocation location, ActivityEnv env,
    MediaDataType audio_type, double gain_a, double gain_b, CostModel costs) {
  AVDB_CHECK(audio_type.kind() == MediaKind::kAudio &&
             !audio_type.IsCompressed())
      << "audio mixer works on raw PCM";
  return std::shared_ptr<AudioMixerActivity>(
      new AudioMixerActivity(name, location, env, std::move(audio_type),
                             gain_a, gain_b, costs));
}

void AudioMixerActivity::OnElement(Port* in, const StreamElement& element) {
  if (element.end_of_stream) {
    if (in == in_a_) a_done_ = true;
    if (in == in_b_) b_done_ = true;
    if (a_done_ && b_done_ && !eos_sent_) {
      eos_sent_ = true;
      Emit(out_, element);
      SelfStop();
    }
    return;
  }
  if (element.audio == nullptr) {
    AVDB_LOG(Error) << name() << ": element without audio payload";
    return;
  }
  if (in == in_a_) {
    pending_a_[element.index] = element;
  } else {
    pending_b_[element.index] = element;
  }
  TryEmit(element.index);
}

void AudioMixerActivity::TryEmit(int64_t index) {
  const bool have_a = pending_a_.count(index) > 0;
  const bool have_b = pending_b_.count(index) > 0;
  StreamElement out_element;
  if (have_a && have_b) {
    const StreamElement& a = pending_a_[index];
    const StreamElement& b = pending_b_[index];
    const AudioBlock& block_a = *a.audio;
    const AudioBlock& block_b = *b.audio;
    const int frames =
        std::max(block_a.frame_count(), block_b.frame_count());
    AudioBlock mixed(block_a.channels(), frames);
    for (int f = 0; f < frames; ++f) {
      for (int c = 0; c < block_a.channels(); ++c) {
        double sample = 0;
        if (f < block_a.frame_count()) sample += gain_a_ * block_a.At(f, c);
        if (f < block_b.frame_count() && c < block_b.channels()) {
          sample += gain_b_ * block_b.At(f, c);
        }
        if (sample > 32767) sample = 32767;
        if (sample < -32768) sample = -32768;
        mixed.Set(f, c, static_cast<int16_t>(sample));
      }
    }
    out_element.index = index;
    out_element.ideal_time_ns = std::max(a.ideal_time_ns, b.ideal_time_ns);
    out_element.audio = std::make_shared<const AudioBlock>(std::move(mixed));
    out_element.size_bytes =
        static_cast<int64_t>(out_element.audio->SizeBytes());
    pending_a_.erase(index);
    pending_b_.erase(index);
  } else if (have_a && b_done_) {
    out_element = pending_a_[index];
    pending_a_.erase(index);
  } else if (have_b && a_done_) {
    out_element = pending_b_[index];
    pending_b_.erase(index);
  } else {
    return;
  }
  const int64_t samples =
      out_element.audio == nullptr
          ? 0
          : static_cast<int64_t>(out_element.audio->samples().size());
  const int64_t ready_ns = mix_unit_.Submit(
      engine()->now_ns(),
      static_cast<int64_t>(costs_.audio_mix_ns_per_sample * samples));
  ++blocks_mixed_;
  ScheduleOwned(ready_ns,
                       [this, out_element = std::move(out_element)] {
                         if (state() != State::kRunning) return;
                         Emit(out_, out_element);
                       });
}

// ---------------------------------------------------------- FormatConverter --

FormatConverter::FormatConverter(const std::string& name,
                                 ActivityLocation location, ActivityEnv env,
                                 MediaDataType from, MediaDataType to,
                                 CostModel costs)
    : MediaActivity(name, location, env), to_(to), costs_(costs),
      convert_unit_(name + ".unit") {
  in_ = DeclarePort(kPortIn, PortDirection::kIn, from);
  out_ = DeclarePort(kPortOut, PortDirection::kOut, to);
}

std::shared_ptr<FormatConverter> FormatConverter::Create(
    const std::string& name, ActivityLocation location, ActivityEnv env,
    MediaDataType from, MediaDataType to, CostModel costs) {
  AVDB_CHECK(from.kind() == MediaKind::kVideo &&
             to.kind() == MediaKind::kVideo)
      << "format converter works on video";
  return std::shared_ptr<FormatConverter>(new FormatConverter(
      name, location, env, std::move(from), std::move(to), costs));
}

VideoFrame FormatConverter::Convert(const VideoFrame& src, int width,
                                    int height, int depth_bits) {
  VideoFrame dst(width, height, depth_bits);
  const int src_bpp = src.bytes_per_pixel();
  const int dst_bpp = dst.bytes_per_pixel();
  for (int y = 0; y < height; ++y) {
    const int sy = height > 1 ? y * src.height() / height : 0;
    for (int x = 0; x < width; ++x) {
      const int sx = width > 1 ? x * src.width() / width : 0;
      for (int c = 0; c < dst_bpp; ++c) {
        uint8_t v;
        if (c < src_bpp) {
          v = src.At(sx, sy, c);
        } else {
          v = src.At(sx, sy, 0);  // grey -> replicate into RGB
        }
        dst.Set(x, y, v, c);
      }
      if (dst_bpp == 1 && src_bpp == 3) {
        // RGB -> grey: ITU-R 601 luma.
        const int grey = (299 * src.At(sx, sy, 0) + 587 * src.At(sx, sy, 1) +
                          114 * src.At(sx, sy, 2)) /
                         1000;
        dst.Set(x, y, static_cast<uint8_t>(grey), 0);
      }
    }
  }
  return dst;
}

void FormatConverter::OnElement(Port* in, const StreamElement& element) {
  AVDB_DCHECK(in == in_);
  if (element.end_of_stream) {
    Emit(out_, element);
    SelfStop();
    return;
  }
  if (element.frame == nullptr) {
    AVDB_LOG(Error) << name() << ": element without frame payload";
    return;
  }
  VideoFrame converted = Convert(*element.frame, to_.width(), to_.height(),
                                 to_.depth_bits());
  const int64_t pixels =
      static_cast<int64_t>(to_.width()) * to_.height();
  const int64_t ready_ns =
      convert_unit_.Submit(engine()->now_ns(), costs_.ConvertNs(pixels));
  StreamElement out_element;
  out_element.index = element.index;
  out_element.ideal_time_ns = element.ideal_time_ns;
  out_element.frame =
      std::make_shared<const VideoFrame>(std::move(converted));
  out_element.size_bytes =
      static_cast<int64_t>(out_element.frame->SizeBytes());
  ScheduleOwned(ready_ns,
                       [this, out_element = std::move(out_element)] {
                         if (state() != State::kRunning) return;
                         Emit(out_, out_element);
                       });
}

}  // namespace avdb

#ifndef AVDB_ACTIVITY_COMPOSITE_H_
#define AVDB_ACTIVITY_COMPOSITE_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "activity/graph.h"
#include "activity/media_activity.h"
#include "sched/sync_controller.h"

namespace avdb {

/// §4.2 flow-composition rule 2: "composite activities can be formed which
/// contain component activities. It is possible to connect an out port of a
/// component to the out of the composite in which it is contained."
///
/// A CompositeActivity owns an internal activity graph of installed
/// children, exposes selected child ports under its own names, and
/// cascades Start/Stop to the children — so "an application working with a
/// source activity need not be aware of its internal configuration"
/// (Fig. 2 bottom). The two §4.2 use cases are both served: composites that
/// process composite AV values keep their tracks synchronized through an
/// owned SyncController, and frequently-used sub-graphs (read+decode) hide
/// their wiring.
class CompositeActivity : public MediaActivity {
 public:
  static std::shared_ptr<CompositeActivity> Create(const std::string& name,
                                                   ActivityLocation location,
                                                   ActivityEnv env);

  /// Adds a child (the paper's `install ... in` from §4.3's pseudo-code).
  Status Install(MediaActivityPtr child);

  Result<MediaActivity*> FindChild(const std::string& name) const {
    return children_.Find(name);
  }
  const std::vector<MediaActivityPtr>& children() const {
    return children_.activities();
  }

  /// Exposes `child.port` as this composite's port `as_name`. The port must
  /// not be connected yet; same-type rule is inherited from the port
  /// itself. Direction must cross the boundary consistently (out stays
  /// out, in stays in).
  Status ExposePort(const std::string& child_name,
                    const std::string& child_port, const std::string& as_name);

  /// Connects two children inside the composite (same rules as a graph).
  Result<Connection*> ConnectChildren(const std::string& from_child,
                                      const std::string& out_port,
                                      const std::string& to_child,
                                      const std::string& in_port);

  /// Resolves exposed names to the underlying child ports, so external
  /// graph connections attach directly to the child (zero relay cost).
  Result<Port*> FindPort(const std::string& name) const override;

  /// Classification from the exposed boundary ports.
  ActivityKind Kind() const override;

  /// The composite's synchronization domain. Children installed through
  /// InstallSynced join it automatically.
  SyncController* sync() { return &sync_; }

  /// Installs a child and joins it to the composite's sync domain as
  /// `track` (master tracks define the reference clock; the first track
  /// becomes master if none is flagged). Exposes the child's single
  /// boundary-eligible port as "<track>_<dir>".
  Status InstallSynced(MediaActivityPtr child, const std::string& track,
                       bool master = false);

  /// Binding on an exposed port forwards to the owning child (so §4.3's
  /// `bind myNews.clip to dbSource` reaches the right component).
  Status DoBind(MediaValuePtr value, const std::string& port_name) override;

  /// Cue forwards to every child that supports it.
  Status DoCue(WorldTime t) override;

  std::string Describe() const override;

 protected:
  CompositeActivity(const std::string& name, ActivityLocation location,
                    ActivityEnv env);

  Status OnStart() override;
  Status OnStop() override;

  /// Re-points every synced child at another controller (keeping its track
  /// name) — how a MultiSource joins its MultiSink's domain.
  Status RepointSync(SyncController* sync);

 private:
  ActivityGraph children_;
  /// exposed name -> (child activity, child port name)
  std::map<std::string, std::pair<MediaActivity*, std::string>> exposed_;
  /// Synced children with their track names, in install order. Install
  /// order (not pointer order) so RepointSync re-points tracks in the
  /// same sequence on every run — iteration order here reaches
  /// SyncController configuration, which must be deterministic.
  std::vector<std::pair<MediaActivity*, std::string>> track_of_;
  SyncController sync_;
};

/// §4.3's `MultiSource`: a composite of source activities whose streams
/// belong to one temporal composite. InstallSynced registers each child
/// source as a track; lagging tracks skip to stay correlated.
class MultiSource final : public CompositeActivity {
 public:
  static std::shared_ptr<MultiSource> Create(const std::string& name,
                                             ActivityLocation location,
                                             ActivityEnv env);

  /// Attaches this source composite to its sink composite's sync domain:
  /// sinks observe presentation, these sources perform the skips. Call
  /// before starting.
  Status UseSyncDomain(SyncController* sync);

 private:
  MultiSource(const std::string& name, ActivityLocation location,
              ActivityEnv env)
      : CompositeActivity(name, location, env) {}
};

/// §4.3's `MultiSink`: a composite of sink activities presenting one
/// temporal composite. Owns the sync domain (presentation is where skew is
/// observable).
class MultiSink final : public CompositeActivity {
 public:
  static std::shared_ptr<MultiSink> Create(const std::string& name,
                                           ActivityLocation location,
                                           ActivityEnv env);

 private:
  MultiSink(const std::string& name, ActivityLocation location,
            ActivityEnv env)
      : CompositeActivity(name, location, env) {}
};

}  // namespace avdb

#endif  // AVDB_ACTIVITY_COMPOSITE_H_
